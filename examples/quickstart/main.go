// Quickstart: run rational fair consensus once on a complete network of 128
// agents split 60/40 between two colors, and inspect the result. The whole
// setting is one declarative fairgossip.Scenario value executed through the
// public API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/fairgossip"
)

func main() {
	// Protocol parameters: 128 agents, |Σ| = 2 colors, the library default
	// γ, and 60% of agents initially supporting color 0. Fairness
	// (Theorem 4) says color 0 should win with probability 0.6.
	runner, err := fairgossip.NewRunner(fairgossip.Scenario{
		N:             128,
		Colors:        2,
		ColorInit:     fairgossip.ColorsSplit,
		SplitFraction: 0.6,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	params := runner.Params()

	res, err := runner.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("agents: %d, colors: 60%%/40%%, q = %d rounds per phase\n", params.N, params.Q)
	fmt.Printf("outcome: %v (consensus on a single color; ⊥ would mean failure)\n", res)
	fmt.Printf("rounds: %d (schedule: 4q+1 = %d)\n", res.Rounds, params.Rounds)
	fmt.Printf("communication: %d messages, %d bits total, largest message %d bits\n",
		res.Metrics.Messages, res.Metrics.Bits, res.Metrics.MaxMessageBits)
	fmt.Printf("good execution (Definition 2): %v\n", res.Good.Good())

	// The same Scenario has a canonical JSON wire form — the document
	// cmd/serve accepts over HTTP:
	doc, err := fairgossip.Encode(runner.Scenario())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wire form:\n%s\n", doc)
}
