// Quickstart: run rational fair consensus once on a complete network of 128
// agents split 60/40 between two colors, and inspect the result. The whole
// setting is one declarative scenario.Scenario value.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
)

func main() {
	// Protocol parameters: 128 agents, |Σ| = 2 colors, the library default
	// γ, and 60% of agents initially supporting color 0. Fairness
	// (Theorem 4) says color 0 should win with probability 0.6.
	runner, err := scenario.NewRunner(scenario.Scenario{
		N:             128,
		Colors:        2,
		ColorInit:     scenario.ColorsSplit,
		SplitFraction: 0.6,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	params := runner.Params()

	res, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("agents: %d, colors: 60%%/40%%, q = %d rounds per phase\n", params.N, params.Q)
	fmt.Printf("outcome: %v (consensus on a single color; ⊥ would mean failure)\n", res.Outcome)
	fmt.Printf("rounds: %d (schedule: 4q+1 = %d)\n", res.Rounds, params.TotalRounds())
	fmt.Printf("communication: %d messages, %d bits total, largest message %d bits\n",
		res.Metrics.Messages, res.Metrics.Bits, res.Metrics.MaxMessageBits)
	fmt.Printf("good execution (Definition 2): %v\n", res.Good.Good())

	// Every honest agent decided the same color:
	for _, a := range res.Agents[:3] {
		fmt.Printf("  agent %d decided color %d\n", a.ID(), a.FinalColor())
	}
	fmt.Println("  ...")
}
