// Quickstart: run rational fair consensus once on a complete network of 128
// agents split 60/40 between two colors, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	const n = 128

	// Protocol parameters: n agents, |Σ| = 2 colors, phase length
	// q = ⌈γ·log₂ n⌉ rounds with the library default γ.
	params, err := core.NewParams(n, 2, core.DefaultGamma)
	if err != nil {
		log.Fatal(err)
	}

	// 60% of agents initially support color 0, 40% color 1. Fairness
	// (Theorem 4) says color 0 should win with probability 0.6.
	colors := core.SplitColors(n, 0.6)

	res, err := core.Run(core.RunConfig{
		Params: params,
		Colors: colors,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("agents: %d, colors: 60%%/40%%, q = %d rounds per phase\n", n, params.Q)
	fmt.Printf("outcome: %v (consensus on a single color; ⊥ would mean failure)\n", res.Outcome)
	fmt.Printf("rounds: %d (schedule: 4q+1 = %d)\n", res.Rounds, params.TotalRounds())
	fmt.Printf("communication: %d messages, %d bits total, largest message %d bits\n",
		res.Metrics.Messages, res.Metrics.Bits, res.Metrics.MaxMessageBits)
	fmt.Printf("good execution (Definition 2): %v\n", res.Good.Good())

	// Every honest agent decided the same color:
	for _, a := range res.Agents[:3] {
		fmt.Printf("  agent %d decided color %d\n", a.ID(), a.FinalColor())
	}
	fmt.Println("  ...")
}
