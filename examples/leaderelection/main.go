// Leader election: the special case of fair consensus where every agent's
// color is its own ID (Section 2), so consensus elects a uniformly random
// active agent. This example declares the leader-election scenario through
// the public fairgossip API, runs many elections, and shows the empirical
// winner histogram converging to uniform.
//
//	go run ./examples/leaderelection
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/fairgossip"
	"repro/internal/stats"
)

func main() {
	const n = 24
	const trials = 1200

	runner, err := fairgossip.NewRunner(fairgossip.Scenario{
		N:         n,
		ColorInit: fairgossip.ColorsLeader,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream rather than materialize: the histogram is the only state, so
	// the election count could grow unbounded without growing memory.
	wins := make([]int, n)
	fails := 0
	err = runner.Stream(context.Background(), fairgossip.StreamOptions{Trials: trials},
		func(_ int, res fairgossip.Result) {
			if res.Failed {
				fails++
				return
			}
			wins[res.Color]++
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fair leader election: n = %d agents, %d elections (%d failed)\n", n, trials, fails)
	fmt.Println("winner histogram (each agent should win ~1/n of elections):")
	max := 0
	for _, w := range wins {
		if w > max {
			max = w
		}
	}
	for id, w := range wins {
		bar := strings.Repeat("#", w*40/max)
		fmt.Printf("  agent %2d: %4d %s\n", id, w, bar)
	}

	expected := make([]float64, n)
	for i := range expected {
		expected[i] = 1.0 / n
	}
	gof, err := stats.ChiSquareGOF(wins, expected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chi-square uniformity test: statistic %.2f (df %d), p-value %.3f\n",
		gof.Stat, gof.DF, gof.PValue)
	if gof.PValue > 0.01 {
		fmt.Println("=> consistent with a fair lottery over agents")
	} else {
		fmt.Println("=> WARNING: uniformity rejected")
	}
}
