// Rational adversary: Theorem 7 says Protocol P is a whp t-strong
// equilibrium — no coalition of t = o(n/log n) deviating agents can increase
// every member's expected utility. This example declares one coalition
// scenario per deviation, derives the paired honest-vs-deviating evaluation
// from it, and prints the utility comparison.
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	"repro/internal/rational"
	"repro/internal/scenario"
)

func main() {
	const n = 128
	const trials = 250

	for _, devName := range []string{"min-k-liar", "adaptive-self-voter", "min-promoter-silent"} {
		runner, err := scenario.NewRunner(scenario.Scenario{
			N:         n,
			Colors:    2,
			Coalition: 4,
			Deviation: devName,
			Seed:      2024,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Failing hurts: utility −1 (χ = 1).
		cfg, err := runner.EquilibriumConfig(trials, 1)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := rational.EvaluateEquilibrium(cfg)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("deviation: %s (coalition %v, %d paired trials)\n", rep.Deviation, rep.Coalition, rep.Trials)
		fmt.Printf("  coalition-color win rate: honest %.1f%% vs deviating %.1f%% (fair share %.1f%%)\n",
			100*rep.HonestCoalitionWinRate, 100*rep.DevCoalitionWinRate, 100*rep.FairShare)
		fmt.Printf("  failure rate:             honest %.1f%% vs deviating %.1f%%\n",
			100*rep.HonestFailRate, 100*rep.DevFailRate)
		for _, m := range rep.Members {
			fmt.Printf("  member %3d: E[util] honest %+.3f, deviating %+.3f, gain %+.3f ± %.3f\n",
				m.ID, m.HonestMean, m.DevMean, m.Gain, m.GainCI95)
		}
		if rep.SomeMemberDoesNotProfit() {
			fmt.Println("  => equilibrium holds: no member profits significantly")
		} else {
			fmt.Println("  => WARNING: every member profited — equilibrium violated")
		}
		fmt.Println()
	}
}
