// Rational adversary: Theorem 7 says Protocol P is a whp t-strong
// equilibrium — no coalition of t = o(n/log n) deviating agents can
// increase every member's expected utility. This example declares one
// coalition scenario per deviation through the public fairgossip API and
// compares each against the honest profile: does deviating win the
// coalition's color more often, and what does it cost in failed runs?
//
// (The full per-member utility evaluation with confidence intervals lives
// in the T6 experiment table: `go run ./cmd/experiments -only T6`.)
//
//	go run ./examples/adversary
package main

import (
	"context"
	"fmt"
	"log"

	"repro/fairgossip"
)

func main() {
	const n = 128
	const coalition = 4
	const trials = 250
	ctx := context.Background()

	// The honest profile: the same network with nobody deviating. A fair
	// protocol should hand the coalition's colors their initial share.
	honest, err := fairgossip.MustRunner(fairgossip.Scenario{
		N: n, Colors: 2, Seed: 2024,
	}).Trials(ctx, trials)
	if err != nil {
		log.Fatal(err)
	}
	honestFails := 0
	for _, res := range honest {
		if res.Failed {
			honestFails++
		}
	}
	fmt.Printf("honest profile: n = %d, %d trials, failure rate %.1f%%\n\n",
		n, trials, 100*float64(honestFails)/trials)

	for _, devName := range []string{"min-k-liar", "adaptive-self-voter", "min-promoter-silent"} {
		runner, err := fairgossip.NewRunner(fairgossip.Scenario{
			N:         n,
			Colors:    2,
			Coalition: coalition,
			Deviation: devName,
			Seed:      2024,
		})
		if err != nil {
			log.Fatal(err)
		}
		var sum fairgossip.Summary
		err = runner.Stream(ctx, fairgossip.StreamOptions{Trials: trials},
			func(_ int, res fairgossip.Result) { sum.Add(res) })
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deviation: %s (coalition %v, %d trials)\n",
			devName, runner.CoalitionMembers(), sum.Trials)
		fmt.Printf("  coalition-color win rate: %.1f%%\n", 100*sum.CoalitionWinRate())
		fmt.Printf("  failure rate:             %.1f%% (honest profile: %.1f%%)\n",
			100*(1-sum.SuccessRate()), 100*float64(honestFails)/trials)
		switch {
		case sum.SuccessRate() < 0.99:
			fmt.Println("  => deviating mostly burns the run — failing hurts every member")
		default:
			fmt.Println("  => no failure penalty; see T6 for the per-member utility comparison")
		}
		fmt.Println()
	}
}
