// Rational adversary: Theorem 7 says Protocol P is a whp t-strong
// equilibrium — no coalition of t = o(n/log n) deviating agents can increase
// every member's expected utility. This example pits a coalition running the
// strongest forgery in the library (the min-k liar) against the protocol and
// prints the paired honest-vs-deviating utility comparison.
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rational"
)

func main() {
	const n = 128
	const trials = 250

	params, err := core.NewParams(n, 2, core.DefaultGamma)
	if err != nil {
		log.Fatal(err)
	}
	colors := core.UniformColors(n, 2)
	coalition := []int{10, 40, 70, 100}

	for _, dev := range []rational.Deviation{
		rational.MinKLiar{},
		rational.AdaptiveSelfVoter{},
		rational.MinPromoter{Push: false},
	} {
		rep, err := rational.EvaluateEquilibrium(rational.EquilibriumConfig{
			Params:    params,
			Colors:    colors,
			Coalition: coalition,
			Deviation: dev,
			Utility:   rational.Utility{Chi: 1}, // failing hurts: utility −1
			Trials:    trials,
			Seed:      2024,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("deviation: %s (coalition %v, %d paired trials)\n", rep.Deviation, rep.Coalition, rep.Trials)
		fmt.Printf("  coalition-color win rate: honest %.1f%% vs deviating %.1f%% (fair share %.1f%%)\n",
			100*rep.HonestCoalitionWinRate, 100*rep.DevCoalitionWinRate, 100*rep.FairShare)
		fmt.Printf("  failure rate:             honest %.1f%% vs deviating %.1f%%\n",
			100*rep.HonestFailRate, 100*rep.DevFailRate)
		for _, m := range rep.Members {
			fmt.Printf("  member %3d: E[util] honest %+.3f, deviating %+.3f, gain %+.3f ± %.3f\n",
				m.ID, m.HonestMean, m.DevMean, m.Gain, m.GainCI95)
		}
		if rep.SomeMemberDoesNotProfit() {
			fmt.Println("  => equilibrium holds: no member profits significantly")
		} else {
			fmt.Println("  => WARNING: every member profited — equilibrium violated")
		}
		fmt.Println()
	}
}
