// Sequential GOSSIP: the paper's second open problem (Section 4) asks about
// the asynchronous model where at each tick exactly one random agent wakes.
// This example runs the library's local-clock adaptation of Protocol P —
// declared as one async-scheduler fairgossip scenario — and reports
// ticks-to-consensus and the empirical fairness.
//
//	go run ./examples/asyncgossip
package main

import (
	"context"
	"fmt"
	"log"

	"repro/fairgossip"
)

func main() {
	const n = 96
	const trials = 150

	// The async adaptation needs a larger phase constant: local activation
	// clocks drift by Θ(√(q·log n)), so phases must outgrow the skew. The
	// scenario layer applies the async default automatically when the
	// scheduler is async and γ is left at its default.
	runner, err := fairgossip.NewRunner(fairgossip.Scenario{
		N:             n,
		Colors:        2,
		ColorInit:     fairgossip.ColorsSplit,
		SplitFraction: 0.7, // 70% color 0
		Scheduler:     fairgossip.SchedulerAsync,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	params := runner.Params()

	results, err := runner.Trials(context.Background(), trials)
	if err != nil {
		log.Fatal(err)
	}
	wins := make([]int, 2)
	fails := 0
	totalTicks := 0
	for _, res := range results {
		totalTicks += res.Rounds
		if res.Failed {
			fails++
			continue
		}
		wins[res.Color]++
	}

	fmt.Printf("sequential GOSSIP, n = %d, initial support 70%%/30%%, %d runs\n", n, trials)
	fmt.Printf("schedule: %d activations per agent (7q+1 with q = %d)\n",
		params.Activations, params.Q)
	fmt.Printf("mean ticks to consensus: %d (%.2f × n·activations)\n",
		totalTicks/trials,
		float64(totalTicks)/float64(trials)/float64(n*params.Activations))
	fmt.Printf("failures: %d/%d\n", fails, trials)
	ok := trials - fails
	fmt.Printf("color 0 won %.1f%% (fair: 70%%), color 1 won %.1f%% (fair: 30%%)\n",
		100*float64(wins[0])/float64(ok), 100*float64(wins[1])/float64(ok))
	fmt.Println("\nthe adaptation keeps the fairness property empirically; see EXPERIMENTS.md E10")
}
