// Worst-case permanent faults: Lemma 3 says Protocol P reaches fair
// consensus w.h.p. as long as the number of active agents is Ω(n), for any
// fault fraction α < 1 (with γ chosen accordingly). This example sweeps α
// and shows the success rate, and how a too-small γ breaks down first.
// Every (α, γ) cell is one fairgossip scenario executed as a Monte-Carlo
// batch through the public API.
//
//	go run ./examples/faults
package main

import (
	"context"
	"fmt"
	"log"

	"repro/fairgossip"
)

func main() {
	const n = 192
	const trials = 100
	ctx := context.Background()

	fmt.Printf("Protocol P under worst-case permanent faults (n = %d, %d trials each)\n\n", n, trials)
	fmt.Println("alpha  gamma=1    gamma=3")
	for _, alpha := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		fmt.Printf("%.1f  ", alpha)
		for gi, gamma := range []float64{1, 3} {
			sc := fairgossip.Scenario{
				N: n, Colors: 2, Gamma: gamma,
				Seed: uint64(alpha*100)*10 + uint64(gi) + 1,
			}
			if alpha > 0 {
				sc.Fault = fairgossip.FaultModel{Kind: fairgossip.FaultPermanent, Alpha: alpha}
			}
			runner, err := fairgossip.NewRunner(sc)
			if err != nil {
				log.Fatal(err)
			}
			var sum fairgossip.Summary
			err = runner.Stream(ctx, fairgossip.StreamOptions{Trials: trials},
				func(_ int, res fairgossip.Result) { sum.Add(res) })
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   %3.0f%%    ", 100*sum.SuccessRate())
		}
		fmt.Println()
	}
	fmt.Println("\nLemma 3: for every constant α < 1 there is a γ(α) making success w.h.p.;")
	fmt.Println("the γ=1 column shows the failure creeping in as faults starve the phases.")
}
