package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/fairgossip"
)

// options configures the handler independently of the process flags, so
// tests can build one directly.
type options struct {
	// maxTrials caps the per-request trial count; 0 means 1e6.
	maxTrials int
	// baseCtx is the server's lifetime context (the signal context in main);
	// its cancellation means "server shutting down", which the handler
	// distinguishes from "client went away" when a streamed batch dies. nil
	// means no server-side shutdown signal.
	baseCtx context.Context
}

// runRequest is the POST /v1/runs body. Exactly one of Name and Scenario
// selects the setting; Seed and Workers optionally override it per request.
type runRequest struct {
	// Name selects a registered scenario.
	Name string `json:"name,omitempty"`
	// Scenario is an inline version-1 scenario document.
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// Trials is the Monte-Carlo batch size (required, ≥ 1).
	Trials int `json:"trials"`
	// Seed optionally overrides the scenario's master seed.
	Seed *uint64 `json:"seed,omitempty"`
	// Workers optionally overrides the trial-level parallelism.
	Workers *int `json:"workers,omitempty"`
}

// runResponse is the aggregate summary of one scheduled batch. Scenario is
// the canonical (defaults-applied, versioned) wire form of what actually
// ran — clients can Decode it and replay the exact experiment.
type runResponse struct {
	Scenario       json.RawMessage `json:"scenario"`
	Trials         int             `json:"trials"`
	Successes      int             `json:"successes"`
	SuccessRate    float64         `json:"success_rate"`
	GoodExecutions *int            `json:"good_executions,omitempty"`
	GoodRate       *float64        `json:"good_rate,omitempty"`
	CoalitionWins  *int            `json:"coalition_wins,omitempty"`
	MinRounds      int             `json:"min_rounds"`
	MaxRounds      int             `json:"max_rounds"`
	MeanRounds     float64         `json:"mean_rounds"`
	MeanMessages   float64         `json:"mean_messages"`
	TotalBits      int64           `json:"total_bits"`
	ElapsedMS      int64           `json:"elapsed_ms"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

func newHandler(opts options) http.Handler {
	if opts.maxTrials <= 0 {
		opts.maxTrials = 1_000_000
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/runs", opts.handleRuns)
	mux.HandleFunc("/v1/scenarios", opts.handleScenarios)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleRuns schedules one Monte-Carlo batch and reports its aggregate.
func (o options) handleRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a run request to /v1/runs")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		if maxErr := new(http.MaxBytesError); errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req runRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	// Reject trailing data after the document — same contract as
	// fairgossip.Decode: concatenated or garbage-suffixed bodies are errors,
	// not silently half-read requests.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad request: trailing data after run request")
		return
	}

	sc, status, err := o.resolveScenario(req)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	switch {
	case req.Trials < 1:
		writeError(w, http.StatusBadRequest, "trials must be >= 1")
		return
	case req.Trials > o.maxTrials:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("trials %d exceeds this server's cap of %d", req.Trials, o.maxTrials))
		return
	}

	runner, err := fairgossip.NewRunner(sc)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	canonical, err := fairgossip.Encode(runner.Scenario())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	// The request context drives the batch: a client that disconnects (or a
	// server that shuts down) cancels the stream promptly mid-chunk.
	start := time.Now()
	var sum fairgossip.Summary
	err = runner.Stream(r.Context(), fairgossip.StreamOptions{Trials: req.Trials},
		func(_ int, res fairgossip.Result) { sum.Add(res) })
	if err != nil {
		// Both cancellations surface as the same stream error; tell them
		// apart by who died. The server's own shutdown deserves an honest
		// 503 while the response can still be written — only when the client
		// itself is gone is silence right, since nobody is listening.
		if o.baseCtx != nil && o.baseCtx.Err() != nil {
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		if r.Context().Err() != nil {
			return // client is gone; nobody is listening for the error
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	resp := runResponse{
		Scenario:     canonical,
		Trials:       sum.Trials,
		Successes:    sum.Successes,
		SuccessRate:  sum.SuccessRate(),
		MinRounds:    sum.MinRounds,
		MaxRounds:    sum.MaxRounds,
		MeanRounds:   sum.MeanRounds(),
		MeanMessages: sum.MeanMessages(),
		TotalBits:    sum.TotalBits,
		ElapsedMS:    time.Since(start).Milliseconds(),
	}
	if sum.HasGood {
		good, rate := sum.GoodExecutions, sum.GoodRate()
		resp.GoodExecutions, resp.GoodRate = &good, &rate
	}
	if sc.Coalition > 0 {
		wins := sum.CoalitionWins
		resp.CoalitionWins = &wins
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolveScenario turns a request into a concrete scenario, with the HTTP
// status its failure maps to.
func (o options) resolveScenario(req runRequest) (fairgossip.Scenario, int, error) {
	var sc fairgossip.Scenario
	switch {
	case req.Name != "" && len(req.Scenario) > 0:
		return sc, http.StatusBadRequest, errors.New(`give either "name" or "scenario", not both`)
	case req.Name != "":
		s, err := fairgossip.Lookup(req.Name)
		if err != nil {
			return sc, http.StatusNotFound, err
		}
		sc = s
	case len(req.Scenario) > 0:
		s, err := fairgossip.Decode(req.Scenario)
		if err != nil {
			return sc, http.StatusBadRequest, err
		}
		sc = s
	default:
		return sc, http.StatusBadRequest, errors.New(`a run request needs a "name" or an inline "scenario"`)
	}
	if req.Seed != nil {
		sc.Seed = *req.Seed
	}
	if req.Workers != nil {
		sc.Workers = *req.Workers
	}
	return sc, 0, nil
}

// handleScenarios lists the registry in canonical wire form, keyed by name.
func (o options) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /v1/scenarios")
		return
	}
	out := make(map[string]json.RawMessage, len(fairgossip.Names()))
	for _, name := range fairgossip.Names() {
		sc, err := fairgossip.Lookup(name)
		if err != nil {
			continue // raced with a concurrent (test) registration; skip
		}
		doc, err := fairgossip.Encode(sc)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		out[name] = doc
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a dead client
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
