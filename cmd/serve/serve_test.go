package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/fairgossip"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newHandler(options{maxTrials: 10_000}))
	t.Cleanup(srv.Close)
	return srv
}

func postRun(t *testing.T, srv *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestRunByName is the basic happy path: schedule a registered scenario.
func TestRunByName(t *testing.T) {
	srv := testServer(t)
	resp, body := postRun(t, srv, `{"name":"baseline","trials":5,"workers":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr runResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if rr.Trials != 5 || rr.Successes < 1 || rr.SuccessRate != float64(rr.Successes)/5 {
		t.Fatalf("implausible summary: %s", body)
	}
	if rr.GoodExecutions == nil || rr.MeanRounds <= 0 || rr.MeanMessages <= 0 {
		t.Fatalf("summary missing aggregates: %s", body)
	}
}

// TestRunInlineScenarioRoundTrips is the e2e acceptance pin: an inline
// version-1 scenario document is executed and echoed back in canonical
// form, and that echo decodes to exactly the defaults-applied request.
func TestRunInlineScenarioRoundTrips(t *testing.T) {
	srv := testServer(t)
	inline := fairgossip.Scenario{
		N: 64, Colors: 2, Seed: 5,
		Fault: fairgossip.FaultModel{Kind: fairgossip.FaultPermanent, Alpha: 0.25, Drop: 0.02},
	}
	doc, err := fairgossip.Encode(inline)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postRun(t, srv, `{"scenario":`+string(doc)+`,"trials":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr runResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	got, err := fairgossip.Decode(rr.Scenario)
	if err != nil {
		t.Fatalf("response scenario does not decode: %v\n%s", err, rr.Scenario)
	}
	if want := inline.WithDefaults(); !reflect.DeepEqual(got, want) {
		t.Fatalf("scenario did not round-trip:\ngot  %+v\nwant %+v", got, want)
	}
	if rr.Trials != 4 {
		t.Fatalf("ran %d trials, want 4", rr.Trials)
	}
}

// TestRunInlineDynamicScenario runs a dynamic-topology scenario end to end
// through the HTTP surface: the raw version-1 document (with the additive
// "dynamics" field) is accepted, the batch executes deterministically, and
// the canonical echo carries the graph process so the run can be replayed.
func TestRunInlineDynamicScenario(t *testing.T) {
	srv := testServer(t)
	req := `{"scenario":{"version":1,"n":48,"seed":7,` +
		`"dynamics":{"kind":"edge-markovian","birth":0.01,"death":0.03}},"trials":6,"workers":2}`
	resp, body := postRun(t, srv, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr runResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Trials != 6 {
		t.Fatalf("ran %d trials, want 6", rr.Trials)
	}
	got, err := fairgossip.Decode(rr.Scenario)
	if err != nil {
		t.Fatalf("response scenario does not decode: %v\n%s", err, rr.Scenario)
	}
	want := fairgossip.Dynamics{Kind: fairgossip.DynamicsEdgeMarkovian, Birth: 0.01, Death: 0.03}
	if got.Dynamics != want {
		t.Fatalf("echoed scenario lost the graph process: %+v", got.Dynamics)
	}
	// Same request again: dynamic runs derive the evolution from trial seeds,
	// so the whole response body (modulo timing) must be reproducible.
	resp2, body2 := postRun(t, srv, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run: status %d", resp2.StatusCode)
	}
	var rr2 runResponse
	if err := json.Unmarshal(body2, &rr2); err != nil {
		t.Fatal(err)
	}
	rr.ElapsedMS, rr2.ElapsedMS = 0, 0
	if !reflect.DeepEqual(rr, rr2) {
		t.Fatalf("dynamic batch not reproducible over HTTP:\nfirst  %+v\nsecond %+v", rr, rr2)
	}
}

// TestRunInlineProtocolScenario runs a protocol-variant scenario end to end
// through the HTTP surface: the raw version-1 document (with the additive
// "protocol" field) is accepted, the batch executes deterministically, and
// the canonical echo carries the variant so the run can be replayed.
func TestRunInlineProtocolScenario(t *testing.T) {
	srv := testServer(t)
	req := `{"scenario":{"version":1,"n":48,"seed":9,"fault":{"drop":0.05},` +
		`"protocol":{"variant":"relaxed","min_votes":12}},"trials":6,"workers":2}`
	resp, body := postRun(t, srv, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr runResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Trials != 6 {
		t.Fatalf("ran %d trials, want 6", rr.Trials)
	}
	got, err := fairgossip.Decode(rr.Scenario)
	if err != nil {
		t.Fatalf("response scenario does not decode: %v\n%s", err, rr.Scenario)
	}
	want := fairgossip.Protocol{Variant: fairgossip.ProtocolRelaxed, MinVotes: 12}
	if got.Protocol != want {
		t.Fatalf("echoed scenario lost the protocol variant: %+v", got.Protocol)
	}
	// Same request again: the whole response body (modulo timing) must be
	// reproducible.
	resp2, body2 := postRun(t, srv, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run: status %d", resp2.StatusCode)
	}
	var rr2 runResponse
	if err := json.Unmarshal(body2, &rr2); err != nil {
		t.Fatal(err)
	}
	rr.ElapsedMS, rr2.ElapsedMS = 0, 0
	if !reflect.DeepEqual(rr, rr2) {
		t.Fatalf("protocol-variant batch not reproducible over HTTP:\nfirst  %+v\nsecond %+v", rr, rr2)
	}
}

// TestRunSeedOverride pins the per-request override and determinism: the
// same request twice is byte-identical, a different seed may differ.
func TestRunSeedOverride(t *testing.T) {
	srv := testServer(t)
	_, a := postRun(t, srv, `{"name":"baseline","trials":3,"seed":42}`)
	_, b := postRun(t, srv, `{"name":"baseline","trials":3,"seed":42}`)
	a2, b2 := stripElapsed(t, a), stripElapsed(t, b)
	if !reflect.DeepEqual(a2, b2) {
		t.Fatalf("identical requests diverged:\n%s\n%s", a, b)
	}
	var rr runResponse
	if err := json.Unmarshal(a, &rr); err != nil {
		t.Fatal(err)
	}
	got, err := fairgossip.Decode(rr.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 {
		t.Fatalf("seed override ignored: ran seed %d", got.Seed)
	}
}

func stripElapsed(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "elapsed_ms")
	return m
}

// TestRunErrors pins the error taxonomy → status code mapping.
func TestRunErrors(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name   string
		body   string
		status int
		want   string
	}{
		{"unknown name", `{"name":"no-such","trials":3}`, http.StatusNotFound, "unknown scenario"},
		{"invalid inline", `{"scenario":{"version":1,"n":1,"seed":1},"trials":3}`, http.StatusBadRequest, "invalid scenario"},
		{"unversioned inline", `{"scenario":{"n":64,"seed":1},"trials":3}`, http.StatusBadRequest, "version"},
		{"both name and scenario", `{"name":"baseline","scenario":{"version":1,"n":64,"seed":1},"trials":3}`, http.StatusBadRequest, "not both"},
		{"neither", `{"trials":3}`, http.StatusBadRequest, "needs"},
		{"no trials", `{"name":"baseline"}`, http.StatusBadRequest, "trials"},
		{"trials over cap", `{"name":"baseline","trials":999999999}`, http.StatusBadRequest, "cap"},
		{"unknown request field", `{"name":"baseline","trials":3,"bogus":1}`, http.StatusBadRequest, "bogus"},
		{"trailing document", `{"name":"baseline","trials":3}{"name":"baseline","trials":3}`, http.StatusBadRequest, "trailing data"},
		{"trailing garbage", `{"name":"baseline","trials":3} xyz`, http.StatusBadRequest, "trailing data"},
	}
	for _, tc := range cases {
		resp, body := postRun(t, srv, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: body %s does not mention %q", tc.name, body, tc.want)
		}
	}
}

// TestShutdownMidStream pins the graceful-shutdown half of the cancellation
// story: when the server's base context dies while a batch is streaming, the
// still-connected client gets an honest 503 with a JSON error — not a silent
// hang-up, which is reserved for clients that already left.
func TestShutdownMidStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := httptest.NewUnstartedServer(newHandler(options{maxTrials: 10_000, baseCtx: ctx}))
	srv.Config.BaseContext = func(net.Listener) context.Context { return ctx }
	srv.Start()
	defer srv.Close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel() // the signal handler firing mid-batch
	}()
	resp, body := postRun(t, srv, `{"name":"baseline","trials":10000}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("503 body is not a JSON error: %v (%s)", err, body)
	}
	if !strings.Contains(e.Error, "shutting down") {
		t.Fatalf("error %q does not mention shutdown", e.Error)
	}
}

// TestScenarioList pins GET /v1/scenarios: every registered scenario comes
// back as a decodable canonical document.
func TestScenarioList(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"baseline", "churn", "lossy-links", "edge-markovian", "rewire-ring"} {
		doc, ok := out[name]
		if !ok {
			t.Fatalf("scenario list misses %q", name)
		}
		if _, err := fairgossip.Decode(doc); err != nil {
			t.Errorf("%s: listed document does not decode: %v", name, err)
		}
	}
}
