// Command serve is the reproduction's HTTP front end — the first external
// consumer of the public fairgossip API. It accepts version-1 scenario JSON
// and schedules Monte-Carlo batches:
//
//	POST /v1/runs      {"scenario": {...} | "name": "baseline", "trials": N}
//	GET  /v1/scenarios the registered scenario library, canonical wire form
//	GET  /healthz      liveness
//
// A run request executes trials of one scenario through Runner.Stream and
// returns the aggregate summary; the request context is the run's context,
// so a disconnecting client cancels its batch mid-flight instead of burning
// the worker pool.
//
//	go run ./cmd/serve -addr :8080 &
//	curl -s localhost:8080/v1/runs -d '{"name":"baseline","trials":100}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		maxTrials = flag.Int("max-trials", 1_000_000, "largest trial count one request may schedule")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(options{maxTrials: *maxTrials, baseCtx: ctx}),
		ReadHeaderTimeout: 5 * time.Second,
		// Request contexts derive from the signal context, so shutdown
		// cancels in-flight batches promptly mid-chunk instead of waiting
		// out a million-trial stream.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serve: listening on %s (max trials per request: %d)", *addr, *maxTrials)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("serve: shutdown: %v", err)
		}
		fmt.Fprintln(os.Stderr, "serve: stopped")
	}
}
