// Command fairconsensus runs one execution of the rational fair consensus
// protocol (Protocol P) and reports the outcome and communication costs.
// Every run is described by a declarative scenario (internal/scenario),
// built either from the shape flags below or looked up by name.
//
// Examples:
//
//	fairconsensus -n 1024 -colors 2
//	fairconsensus -n 512 -colors 8 -alpha 0.3 -gamma 4 -seed 7
//	fairconsensus -n 256 -leader            # fair leader election (colors = IDs)
//	fairconsensus -n 256 -async             # sequential GOSSIP adaptation
//	fairconsensus -n 256 -topology regular8 # open-problem-1 exploration
//	fairconsensus -n 128 -deviation min-k-liar -coalition 3 # rational attack
//	fairconsensus -n 256 -alpha 0.25 -fault crash -fault-round 30
//	fairconsensus -n 256 -colorinit zipf -zipf-s 1.5 -colors 4
//	fairconsensus -scenario churn           # a registered scenario by name
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/rational"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	var (
		scenarioName = flag.String("scenario", "", "run a registered scenario by name (see -list-scenarios); shape flags are ignored")
		listScen     = flag.Bool("list-scenarios", false, "print the scenario registry and exit")
		n            = flag.Int("n", 256, "number of agents")
		colors       = flag.Int("colors", 2, "number of colors |Σ|")
		leader       = flag.Bool("leader", false, "fair leader election (every agent supports its own ID)")
		colorInit    = flag.String("colorinit", "", "initial opinions: uniform | split | zipf | leader (default uniform)")
		split        = flag.Float64("split", 0.5, "color-0 share for -colorinit split")
		zipfS        = flag.Float64("zipf-s", 1.0, "Zipf exponent for -colorinit zipf")
		gamma        = flag.Float64("gamma", 0, "phase-length constant γ (0 = protocol default)")
		alpha        = flag.Float64("alpha", 0, "fraction of nodes affected by the fault model")
		faultKind    = flag.String("fault", "", "fault model: none | permanent | crash | churn (default: permanent when -alpha > 0)")
		faultRound   = flag.Int("fault-round", 30, "crash onset round for -fault crash")
		churnPeriod  = flag.Int("churn-period", 8, "up/down interval in rounds for -fault churn")
		seed         = flag.Uint64("seed", 1, "master random seed")
		async        = flag.Bool("async", false, "run the sequential (one agent per tick) adaptation")
		topoName     = flag.String("topology", "complete", "complete | ring | regular<d> | er")
		deviation    = flag.String("deviation", "", "deviation name (see -list-deviations) for a rational coalition")
		coalition    = flag.Int("coalition", 0, "coalition size when -deviation is set")
		list         = flag.Bool("list-deviations", false, "print the deviation library and exit")
		traceRun     = flag.Bool("trace", false, "print every engine event (use with small -n)")
	)
	flag.Parse()

	if *list {
		for _, d := range rational.AllDeviations() {
			fmt.Println(d.Name())
		}
		return
	}
	if *listScen {
		for _, name := range scenario.Names() {
			fmt.Println(name)
		}
		return
	}

	var sc scenario.Scenario
	if *scenarioName != "" {
		reg, ok := scenario.Lookup(*scenarioName)
		if !ok {
			fatal(fmt.Errorf("unknown scenario %q (see -list-scenarios)", *scenarioName))
		}
		sc = reg
		sc.Seed = *seed
	} else {
		sc = scenario.Scenario{
			N:             *n,
			Colors:        *colors,
			ColorInit:     scenario.ColorInit(*colorInit),
			SplitFraction: *split,
			ZipfS:         *zipfS,
			Gamma:         *gamma,
			Topology:      *topoName,
			Seed:          *seed,
		}
		if *leader {
			sc.ColorInit = scenario.ColorsLeader
		}
		if *async {
			sc.Scheduler = scenario.SchedulerAsync
		}
		if *alpha > 0 {
			kind := scenario.FaultKind(*faultKind)
			if kind == "" {
				kind = scenario.FaultPermanent
			}
			sc.Fault = scenario.FaultModel{
				Kind: kind, Alpha: *alpha, Round: *faultRound, Period: *churnPeriod,
			}
		}
		if *deviation != "" {
			sc.Deviation = *deviation
			sc.Coalition = *coalition
			if sc.Coalition < 1 {
				sc.Coalition = 1
			}
		}
	}

	runner, err := scenario.NewRunner(sc)
	if err != nil {
		fatal(err)
	}
	if *traceRun {
		runner.Trace = &trace.Writer{W: os.Stdout}
	}
	sc = runner.Scenario()
	p := runner.Params()
	fmt.Printf("protocol P: n=%d |Σ|=%d γ=%.1f q=%d m=%d rounds=%d topology=%s scheduler=%s fault=%s\n",
		p.N, p.NumColors, p.Gamma, p.Q, p.M, p.TotalRounds(), runner.Topology().Name(),
		sc.Scheduler, sc.Fault.Kind)

	res, err := runner.Run()
	if err != nil {
		fatal(err)
	}
	switch {
	case sc.Scheduler == scenario.SchedulerAsync:
		fmt.Printf("outcome: %s after %d ticks (%.2f activations/agent)\n",
			res.Outcome, res.Rounds, float64(res.Rounds)/float64(p.N))

	case sc.Coalition > 0:
		fmt.Printf("coalition: %v deviation: %s\n", runner.CoalitionMembers(), sc.Deviation)
		fmt.Printf("outcome: %s (coalition color won: %v)\n", res.Outcome, res.CoalitionColorWon)
		fmt.Printf("communication: %s\n", res.Metrics)

	default:
		fmt.Printf("outcome: %s in %d rounds\n", res.Outcome, res.Rounds)
		fmt.Printf("communication: %s\n", res.Metrics)
		fmt.Printf("good execution (Definition 2): %v (votes per agent in [%d, %d], distinct k: %v, certs agree: %v)\n",
			res.Good.Good(), res.Good.MinVotes, res.Good.MaxVotes, res.Good.DistinctK, res.Good.CertsAgree)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fairconsensus:", err)
	os.Exit(1)
}
