// Command fairconsensus runs one execution of the rational fair consensus
// protocol (Protocol P) and reports the outcome and communication costs.
// Every run is described by a public fairgossip.Scenario, built from the
// shape flags below, looked up by name, or decoded from a version-1 JSON
// document.
//
// Examples:
//
//	fairconsensus -n 1024 -colors 2
//	fairconsensus -n 512 -colors 8 -alpha 0.3 -gamma 4 -seed 7
//	fairconsensus -n 256 -leader            # fair leader election (colors = IDs)
//	fairconsensus -n 256 -async             # sequential GOSSIP adaptation
//	fairconsensus -n 256 -topology regular8 # open-problem-1 exploration
//	fairconsensus -n 128 -deviation min-k-liar -coalition 3 # rational attack
//	fairconsensus -n 256 -alpha 0.25 -fault crash -fault-round 30
//	fairconsensus -n 256 -drop 0.05         # 5% probabilistic message loss
//	fairconsensus -n 256 -drop 0.05 -variant relaxed -min-votes 20
//	fairconsensus -n 128 -variant retransmit -ttl 3
//	fairconsensus -scenario churn           # a registered scenario by name
//	fairconsensus -scenario-json run.json   # a version-1 scenario document
//	fairconsensus -n 256 -dump-scenario     # print the canonical JSON and exit
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/fairgossip"
	"repro/internal/bridge"
	"repro/internal/rational"
	"repro/internal/trace"
)

func main() {
	var (
		scenarioName = flag.String("scenario", "", "run a registered scenario by name (see -list-scenarios); shape flags are ignored")
		scenarioJSON = flag.String("scenario-json", "", "run a version-1 scenario JSON document from this file (- for stdin)")
		listScen     = flag.Bool("list-scenarios", false, "print the scenario registry and exit")
		dump         = flag.Bool("dump-scenario", false, "print the canonical scenario JSON instead of running")
		n            = flag.Int("n", 256, "number of agents")
		colors       = flag.Int("colors", 2, "number of colors |Σ|")
		leader       = flag.Bool("leader", false, "fair leader election (every agent supports its own ID)")
		colorInit    = flag.String("colorinit", "", "initial opinions: uniform | split | zipf | leader (default uniform)")
		split        = flag.Float64("split", 0.5, "color-0 share for -colorinit split")
		zipfS        = flag.Float64("zipf-s", 1.0, "Zipf exponent for -colorinit zipf")
		gamma        = flag.Float64("gamma", 0, "phase-length constant γ (0 = protocol default)")
		alpha        = flag.Float64("alpha", 0, "fraction of nodes affected by the fault model")
		faultKind    = flag.String("fault", "", "fault model: none | permanent | crash | churn (default: permanent when -alpha > 0)")
		faultRound   = flag.Int("fault-round", 30, "crash onset round for -fault crash")
		churnPeriod  = flag.Int("churn-period", 8, "up/down interval in rounds for -fault churn")
		drop         = flag.Float64("drop", 0, "probabilistic per-message loss rate in [0, 1)")
		variant      = flag.String("variant", "", "protocol variant: baseline | live-retarget | retransmit | relaxed")
		ttl          = flag.Int("ttl", 0, "sends per vote for -variant retransmit (0 = default 2)")
		minVotes     = flag.Int("min-votes", 0, "per-voter check threshold for -variant relaxed (required there)")
		seed         = flag.Uint64("seed", 1, "master random seed")
		async        = flag.Bool("async", false, "run the sequential (one agent per tick) adaptation")
		topoName     = flag.String("topology", "complete", "complete | ring | regular<d> | er")
		deviation    = flag.String("deviation", "", "deviation name (see -list-deviations) for a rational coalition")
		coalition    = flag.Int("coalition", 0, "coalition size when -deviation is set")
		list         = flag.Bool("list-deviations", false, "print the deviation library and exit")
		traceRun     = flag.Bool("trace", false, "print every engine event (use with small -n)")
		runtimeRun   = flag.Bool("runtime", false, "execute on the goroutine-per-node message-passing runtime and report wall-clock + latency")
		jitter       = flag.Duration("jitter", 0, "with -runtime: per-message transport delay ceiling (e.g. 200us)")
		tdrop        = flag.Float64("transport-drop", 0, "with -runtime: transport-level per-message loss rate in [0, 1)")
		transport    = flag.String("transport", "channel", "with -runtime: conduit messages cross (channel|unix|tcp)")
	)
	flag.Parse()

	if *list {
		for _, d := range rational.AllDeviations() {
			fmt.Println(d.Name())
		}
		return
	}
	if *listScen {
		for _, name := range fairgossip.Names() {
			fmt.Println(name)
		}
		return
	}

	var sc fairgossip.Scenario
	switch {
	case *scenarioName != "":
		reg, err := fairgossip.Lookup(*scenarioName)
		if err != nil {
			fatal(fmt.Errorf("%v (see -list-scenarios)", err))
		}
		sc = reg
		sc.Seed = *seed

	case *scenarioJSON != "":
		doc, err := readDoc(*scenarioJSON)
		if err != nil {
			fatal(err)
		}
		sc, err = fairgossip.Decode(doc)
		if err != nil {
			fatal(err)
		}
		// An explicit -seed overrides the document's, mirroring the
		// -scenario branch and cmd/serve's per-request override; the
		// document's own seed stands otherwise.
		if seedSet() {
			sc.Seed = *seed
		}

	default:
		sc = fairgossip.Scenario{
			N:             *n,
			Colors:        *colors,
			ColorInit:     fairgossip.ColorInit(*colorInit),
			SplitFraction: *split,
			ZipfS:         *zipfS,
			Gamma:         *gamma,
			Topology:      *topoName,
			Seed:          *seed,
		}
		if *leader {
			sc.ColorInit = fairgossip.ColorsLeader
		}
		if *async {
			sc.Scheduler = fairgossip.SchedulerAsync
		}
		if *alpha > 0 || *drop > 0 {
			kind := fairgossip.FaultKind(*faultKind)
			if kind == "" && *alpha > 0 {
				kind = fairgossip.FaultPermanent
			}
			sc.Fault = fairgossip.FaultModel{
				Kind: kind, Alpha: *alpha, Round: *faultRound, Period: *churnPeriod, Drop: *drop,
			}
		}
		if *deviation != "" {
			sc.Deviation = *deviation
			sc.Coalition = *coalition
			if sc.Coalition < 1 {
				sc.Coalition = 1
			}
		}
		if *variant != "" || *ttl != 0 || *minVotes != 0 {
			sc.Protocol = fairgossip.Protocol{
				Variant:  fairgossip.ProtocolVariant(*variant),
				TTL:      *ttl,
				MinVotes: *minVotes,
			}
		}
	}

	if *dump {
		doc, err := fairgossip.Encode(sc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", doc)
		return
	}

	runner, err := fairgossip.NewRunner(sc)
	if err != nil {
		fatal(err)
	}
	sc = runner.Scenario()
	p := runner.Params()
	fmt.Printf("protocol P: n=%d |Σ|=%d γ=%.1f q=%d rounds=%d variant=%s topology=%s scheduler=%s fault=%s\n",
		p.N, p.Colors, p.Gamma, p.Q, p.Rounds, protocolLabel(sc.Protocol), topologyLabel(sc), sc.Scheduler, faultLabel(sc.Fault))

	if *runtimeRun {
		rep, err := runner.RunLive(context.Background(), fairgossip.LiveOptions{
			Transport:     *transport,
			Jitter:        *jitter,
			TransportDrop: *tdrop,
		})
		if err != nil {
			fatal(err)
		}
		res := rep.Result
		fmt.Printf("outcome: %s in %d rounds\n", outcome(res), res.Rounds)
		fmt.Printf("communication: %s\n", metrics(res))
		fmt.Printf("runtime: transport=%s wall=%v delivered=%d (push=%d vote=%d query=%d reply=%d)\n",
			*transport, rep.WallClock, rep.Delivered, rep.Pushes, rep.Votes, rep.Queries, rep.Replies)
		fmt.Printf("latency: p50=%v p99=%v max=%v\n", rep.LatencyP50, rep.LatencyP99, rep.LatencyMax)
		return
	}

	res, err := runScenario(runner, sc, *traceRun)
	if err != nil {
		fatal(err)
	}
	switch {
	case sc.Scheduler == fairgossip.SchedulerAsync:
		fmt.Printf("outcome: %s after %d ticks (%.2f activations/agent)\n",
			outcome(res), res.Rounds, float64(res.Rounds)/float64(p.N))

	case sc.Coalition > 0:
		fmt.Printf("coalition: %v deviation: %s\n", runner.CoalitionMembers(), sc.Deviation)
		fmt.Printf("outcome: %s (coalition color won: %v)\n", outcome(res), res.CoalitionColorWon)
		fmt.Printf("communication: %s\n", metrics(res))

	default:
		fmt.Printf("outcome: %s in %d rounds\n", outcome(res), res.Rounds)
		fmt.Printf("communication: %s\n", metrics(res))
		fmt.Printf("good execution (Definition 2): %v (votes per agent in [%d, %d], distinct k: %v, certs agree: %v)\n",
			res.Good.Good(), res.Good.MinVotes, res.Good.MaxVotes, res.Good.DistinctK, res.Good.CertsAgree)
	}
}

// seedSet reports whether -seed was given explicitly on the command line.
func seedSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			set = true
		}
	})
	return set
}

// runScenario executes through the public API, or — for -trace, which needs
// an engine event sink the public surface does not expose — through the
// internal runner, snapshotting into the same public Result shape.
func runScenario(runner *fairgossip.Runner, sc fairgossip.Scenario, traced bool) (fairgossip.Result, error) {
	if !traced {
		return runner.Run(context.Background())
	}
	inner, err := bridge.NewRunner(sc)
	if err != nil {
		return fairgossip.Result{}, err
	}
	inner.Trace = &trace.Writer{W: os.Stdout}
	res, err := inner.Run()
	if err != nil {
		return fairgossip.Result{}, err
	}
	return bridge.ResultToPublic(res), nil
}

// topologyLabel names the communication graph: the static topology, or the
// graph process (with its rates) when the scenario is dynamic.
func topologyLabel(sc fairgossip.Scenario) string {
	d := sc.Dynamics
	switch {
	case d.Kind == fairgossip.DynamicsEdgeMarkovian:
		return fmt.Sprintf("%s(birth=%g,death=%g)", d.Kind, d.Birth, d.Death)
	case d.Kind == fairgossip.DynamicsRewireRing:
		return fmt.Sprintf("%s(beta=%g)", d.Kind, d.Beta)
	case d.Kind == fairgossip.DynamicsDRegular:
		return fmt.Sprintf("%s(degree=%d)", d.Kind, d.Degree)
	case d.Kind == fairgossip.DynamicsGeometric:
		return fmt.Sprintf("%s(degree=%d,jitter=%g)", d.Kind, d.Degree, d.Jitter)
	default:
		return sc.Topology
	}
}

// protocolLabel names the protocol variant with its parameter, if any.
func protocolLabel(p fairgossip.Protocol) string {
	switch p.Variant {
	case fairgossip.ProtocolRetransmit:
		return fmt.Sprintf("%s(ttl=%d)", p.Variant, p.TTL)
	case fairgossip.ProtocolRelaxed:
		return fmt.Sprintf("%s(min-votes=%d)", p.Variant, p.MinVotes)
	default:
		return string(p.Variant)
	}
}

func faultLabel(f fairgossip.FaultModel) string {
	if f.Drop > 0 {
		return fmt.Sprintf("%s+drop(%g)", f.Kind, f.Drop)
	}
	return string(f.Kind)
}

func outcome(res fairgossip.Result) string {
	if res.Failed {
		return "⊥"
	}
	return fmt.Sprintf("color(%d)", res.Color)
}

func metrics(res fairgossip.Result) string {
	m := res.Metrics
	return fmt.Sprintf("rounds=%d msgs=%d bits=%d maxMsgBits=%d pushes=%d pulls=%d unanswered=%d",
		m.Rounds, m.Messages, m.Bits, m.MaxMessageBits, m.Pushes, m.Pulls, m.UnansweredPulls)
}

func readDoc(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fairconsensus:", err)
	os.Exit(1)
}
