// Command fairconsensus runs one execution of the rational fair consensus
// protocol (Protocol P) and reports the outcome and communication costs.
//
// Examples:
//
//	fairconsensus -n 1024 -colors 2
//	fairconsensus -n 512 -colors 8 -alpha 0.3 -gamma 4 -seed 7
//	fairconsensus -n 256 -leader            # fair leader election (colors = IDs)
//	fairconsensus -n 256 -async             # sequential GOSSIP adaptation
//	fairconsensus -n 256 -topology regular8 # open-problem-1 exploration
//	fairconsensus -n 128 -deviation min-k-liar -coalition 3 # rational attack
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/rational"
	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	var (
		n         = flag.Int("n", 256, "number of agents")
		colors    = flag.Int("colors", 2, "number of colors |Σ|")
		leader    = flag.Bool("leader", false, "fair leader election (every agent supports its own ID)")
		gamma     = flag.Float64("gamma", core.DefaultGamma, "phase-length constant γ")
		alpha     = flag.Float64("alpha", 0, "fraction of worst-case permanent faults")
		seed      = flag.Uint64("seed", 1, "master random seed")
		async     = flag.Bool("async", false, "run the sequential (one agent per tick) adaptation")
		topoName  = flag.String("topology", "complete", "complete | ring | regular8 | er")
		deviation = flag.String("deviation", "", "deviation name (see -list-deviations) for a rational coalition")
		coalition = flag.Int("coalition", 0, "coalition size when -deviation is set")
		list      = flag.Bool("list-deviations", false, "print the deviation library and exit")
		traceRun  = flag.Bool("trace", false, "print every engine event (use with small -n)")
	)
	flag.Parse()

	if *list {
		for _, d := range rational.AllDeviations() {
			fmt.Println(d.Name())
		}
		return
	}

	numColors := *colors
	var colorVec []core.Color
	if *leader {
		numColors = *n
		colorVec = core.LeaderElectionColors(*n)
	} else {
		colorVec = core.UniformColors(*n, numColors)
	}
	g := *gamma
	if *async && g == core.DefaultGamma {
		g = core.DefaultAsyncGamma
	}
	p, err := core.NewParams(*n, numColors, g)
	if err != nil {
		fatal(err)
	}
	var faulty []bool
	if *alpha > 0 {
		faulty = core.WorstCaseFaults(*n, *alpha)
	}

	var net topo.Topology
	switch strings.ToLower(*topoName) {
	case "complete":
		net = topo.NewComplete(*n)
	case "ring":
		net = topo.NewRing(*n)
	case "regular8":
		net = topo.NewRandomRegular(*n, 8, *seed)
	case "er":
		net = topo.NewErdosRenyi(*n, 16.0/float64(*n), *seed)
	default:
		fatal(fmt.Errorf("unknown topology %q", *topoName))
	}

	fmt.Printf("protocol P: n=%d |Σ|=%d γ=%.1f q=%d m=%d rounds=%d topology=%s\n",
		p.N, p.NumColors, p.Gamma, p.Q, p.M, p.TotalRounds(), net.Name())

	switch {
	case *async:
		out, ticks, err := core.RunAsync(core.AsyncRunConfig{
			Params: p, Colors: colorVec, Faulty: faulty, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("outcome: %s after %d ticks (%.2f activations/agent)\n",
			out, ticks, float64(ticks)/float64(*n))

	case *deviation != "":
		dev, err := rational.DeviationByName(*deviation)
		if err != nil {
			fatal(err)
		}
		t := *coalition
		if t < 1 {
			t = 1
		}
		members := make([]int, t)
		for i := range members {
			members[i] = (i * *n) / t
			if faulty != nil && faulty[members[i]] {
				members[i] = *n - 1 - i // keep coalition members active
			}
		}
		res, err := rational.RunGame(rational.GameConfig{
			Params: p, Colors: colorVec, Faulty: faulty,
			Coalition: members, Deviation: dev, Seed: *seed, Topology: net,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("coalition: %v deviation: %s\n", members, dev.Name())
		fmt.Printf("outcome: %s (coalition color won: %v)\n", res.Outcome, res.CoalitionColorWon)
		fmt.Printf("communication: %s\n", res.Metrics)

	default:
		var sink trace.Sink
		if *traceRun {
			sink = &trace.Writer{W: os.Stdout}
		}
		res, err := core.Run(core.RunConfig{
			Params: p, Colors: colorVec, Faulty: faulty, Seed: *seed, Topology: net, Trace: sink,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("outcome: %s in %d rounds\n", res.Outcome, res.Rounds)
		fmt.Printf("communication: %s\n", res.Metrics)
		fmt.Printf("good execution (Definition 2): %v (votes per agent in [%d, %d], distinct k: %v, certs agree: %v)\n",
			res.Good.Good(), res.Good.MinVotes, res.Good.MaxVotes, res.Good.DistinctK, res.Good.CertsAgree)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fairconsensus:", err)
	os.Exit(1)
}
