// Command experiments regenerates every table and figure in EXPERIMENTS.md:
// the empirical validation of Theorem 4 (rounds, message size, fairness),
// Lemma 3 (fault tolerance), Theorem 7 (equilibrium), the ablation and
// baseline comparisons, and the two open-problem explorations.
//
// Usage:
//
//	experiments                 # full run (a few minutes)
//	experiments -quick          # scaled-down run (seconds)
//	experiments -only T4,T6     # a subset by table ID
//	experiments -csv            # also print figure series as CSV
//	experiments -scenario churn -trials 100  # Monte-Carlo over one registered scenario
//	experiments -only E16 -cpuprofile e16.prof -memprofile e16.mprof
//	                            # profile any table's generation with pprof
//
// -cpuprofile records a CPU profile over the whole table-generation run and
// -memprofile writes a heap profile (after a final GC) as the run ends; both
// work with any table selection and are read with `go tool pprof`. Perf PRs
// attach profiles of the tables they move so the hot path is arguable from
// data.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	stdruntime "runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/fairgossip"
	"repro/internal/sim"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "run scaled-down experiment configurations")
		workers  = flag.Int("workers", 0, "trial-level parallelism (0 = all CPUs)")
		only     = flag.String("only", "", "comma-separated table IDs to run (default: all)")
		listTabs = flag.Bool("list", false, "print every table/figure ID with its description and exit")
		csv      = flag.Bool("csv", false, "print figure series as CSV blocks")
		scenName = flag.String("scenario", "", "run a registered scenario instead of the tables (see fairconsensus -list-scenarios)")
		trials   = flag.Int("trials", 100, "trials for -scenario mode")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			stdruntime.GC() // settle live objects so the profile shows retained state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	if *listTabs {
		for _, e := range sim.Catalog() {
			fmt.Printf("%-10s %s\n", strings.Join(e.IDs, ","), e.Line)
		}
		return
	}

	if *scenName != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := runScenario(ctx, *scenName, *trials, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			wanted[id] = true
		}
	}

	start := time.Now()
	var tables []*sim.Table
	if len(wanted) == 0 {
		if *quick {
			tables = sim.RunAllQuick(*workers)
		} else {
			tables = sim.RunAll(*workers)
		}
	} else {
		tables = runSelected(wanted, *quick, *workers)
	}

	for _, t := range tables {
		if t.Series {
			if *csv {
				fmt.Printf("%s — %s\n%s\n", t.ID, t.Title, t.CSV())
			}
			continue
		}
		fmt.Println(t.String())
	}
	fmt.Printf("regenerated %d artifacts in %s\n", len(tables), time.Since(start).Round(time.Millisecond))
}

// runScenario executes a Monte-Carlo batch of one registered scenario
// through the public fairgossip API and prints a compact summary — the
// quickest way to probe a new axis without defining a table.
func runScenario(ctx context.Context, name string, trials, workers int) error {
	sc, err := fairgossip.Lookup(name)
	if err != nil {
		return fmt.Errorf("%v; registered: %s", err, strings.Join(fairgossip.Names(), ", "))
	}
	sc.Workers = workers
	runner, err := fairgossip.NewRunner(sc)
	if err != nil {
		return err
	}
	start := time.Now()
	var sum fairgossip.Summary
	if err := runner.Stream(ctx, fairgossip.StreamOptions{Trials: trials},
		func(_ int, res fairgossip.Result) { sum.Add(res) }); err != nil {
		return err
	}
	p := runner.Params()
	fault := string(sc.Fault.Kind)
	if sc.Fault.Drop > 0 {
		fault = fmt.Sprintf("%s+drop(%g)", sc.Fault.Kind, sc.Fault.Drop)
	}
	fmt.Printf("scenario %s: n=%d |Σ|=%d γ=%.1f topology=%s scheduler=%s fault=%s\n",
		name, p.N, p.Colors, p.Gamma, sc.Topology, sc.Scheduler, fault)
	fmt.Printf("trials=%d success=%.1f%%", sum.Trials, 100*sum.SuccessRate())
	if sum.HasGood {
		fmt.Printf(" good-exec=%.1f%%", 100*sum.GoodRate())
	}
	fmt.Printf(" rounds(mean)=%.1f msgs(mean)=%.0f", sum.MeanRounds(), sum.MeanMessages())
	if sc.Coalition > 0 {
		fmt.Printf(" coalition-win=%.1f%%", 100*sum.CoalitionWinRate())
	}
	fmt.Printf(" (%s)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runSelected executes only the experiments producing the requested IDs.
func runSelected(wanted map[string]bool, quick bool, workers int) []*sim.Table {
	var out []*sim.Table
	add := func(ids []string, run func() []*sim.Table) {
		for _, id := range ids {
			if wanted[id] {
				out = append(out, run()...)
				return
			}
		}
	}
	perf := sim.DefaultPerfOptions()
	fair := sim.DefaultFairnessOptions()
	faults := sim.DefaultFaultOptions()
	eq := sim.DefaultEquilibriumOptions()
	abl := sim.DefaultAblationOptions()
	bl := sim.DefaultBaselineOptions()
	tp := sim.DefaultTopologyOptions()
	as := sim.DefaultAsyncOptions()
	sc := sim.DefaultScalingOptions()
	dy := sim.DefaultDynamicsOptions()
	cs := sim.DefaultChurnScaleOptions()
	pv := sim.DefaultProtocolOptions()
	rt := sim.DefaultRuntimeOptions()
	tr := sim.DefaultTransportOptions()
	if quick {
		perf, fair, faults = sim.QuickPerfOptions(), sim.QuickFairnessOptions(), sim.QuickFaultOptions()
		eq, abl, bl = sim.QuickEquilibriumOptions(), sim.QuickAblationOptions(), sim.QuickBaselineOptions()
		tp, as = sim.QuickTopologyOptions(), sim.QuickAsyncOptions()
		sc, dy, cs = sim.QuickScalingOptions(), sim.QuickDynamicsOptions(), sim.QuickChurnScaleOptions()
		pv, rt = sim.QuickProtocolOptions(), sim.QuickRuntimeOptions()
		tr = sim.QuickTransportOptions()
	}
	perf.Workers, fair.Workers, faults.Workers, eq.Workers = workers, workers, workers, workers
	abl.Workers, bl.Workers, tp.Workers, as.Workers = workers, workers, workers, workers
	sc.Workers, dy.Workers, cs.Workers, pv.Workers = workers, workers, workers, workers
	rt.Workers, tr.Workers = workers, workers

	add([]string{"T0"}, func() []*sim.Table { return sim.RunT0Predictions(perf) })
	add([]string{"T1", "F1"}, func() []*sim.Table { return sim.RunT1Rounds(perf) })
	add([]string{"T2"}, func() []*sim.Table { return sim.RunT2MessageSize(perf) })
	add([]string{"T3"}, func() []*sim.Table { return sim.RunT3Communication(perf) })
	add([]string{"T4", "F2"}, func() []*sim.Table { return sim.RunT4Fairness(fair) })
	add([]string{"T5"}, func() []*sim.Table { return sim.RunT5Faults(faults) })
	add([]string{"T6", "F3"}, func() []*sim.Table { return sim.RunT6Equilibrium(eq) })
	add([]string{"T7"}, func() []*sim.Table { return sim.RunT7Ablation(abl) })
	add([]string{"T8"}, func() []*sim.Table { return sim.RunT8Baselines(bl) })
	add([]string{"E9"}, func() []*sim.Table { return sim.RunE9Topologies(tp) })
	add([]string{"E10"}, func() []*sim.Table { return sim.RunE10Async(as) })
	add([]string{"E11"}, func() []*sim.Table { return sim.RunE11CoalitionScaling(sc) })
	add([]string{"E12"}, func() []*sim.Table { return sim.RunE12Dynamics(dy) })
	add([]string{"E13"}, func() []*sim.Table { return sim.RunE13ChurnAtScale(cs) })
	add([]string{"E14"}, func() []*sim.Table { return sim.RunE14ProtocolVariants(pv) })
	add([]string{"E15"}, func() []*sim.Table { return sim.RunE15Runtime(rt) })
	add([]string{"E16"}, func() []*sim.Table { return sim.RunE16Transports(tr) })
	return out
}
