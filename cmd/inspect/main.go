// Command inspect runs one small protocol execution and prints a complete
// transcript of its internal state: declarations, votes, lottery values, the
// winning certificate, and every verifier's verdict. The run is described by
// a public fairgossip scenario (by shape flags, name, or JSON document) and
// executed through internal/bridge + core.Run for full state access — the
// one thing the public API deliberately does not expose.
//
//	go run ./cmd/inspect -n 8 -seed 3
//	go run ./cmd/inspect -scenario-json run.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/fairgossip"
	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/inspect"
)

func main() {
	var (
		n            = flag.Int("n", 8, "number of agents (keep small; the transcript is per-agent)")
		colors       = flag.Int("colors", 2, "number of colors")
		gamma        = flag.Float64("gamma", 0, "phase-length constant (0 = protocol default)")
		alpha        = flag.Float64("alpha", 0, "fault fraction")
		drop         = flag.Float64("drop", 0, "probabilistic per-message loss rate in [0, 1)")
		seed         = flag.Uint64("seed", 1, "random seed")
		scenarioJSON = flag.String("scenario-json", "", "inspect a version-1 scenario JSON document from this file instead of the shape flags")
	)
	flag.Parse()

	var sc fairgossip.Scenario
	if *scenarioJSON != "" {
		doc, err := os.ReadFile(*scenarioJSON)
		if err != nil {
			fatal(err)
		}
		if sc, err = fairgossip.Decode(doc); err != nil {
			fatal(err)
		}
	} else {
		sc = fairgossip.Scenario{N: *n, Colors: *colors, Gamma: *gamma, Seed: *seed}
		if *alpha > 0 {
			sc.Fault = fairgossip.FaultModel{Kind: fairgossip.FaultPermanent, Alpha: *alpha}
		}
		sc.Fault.Drop = *drop
	}
	runner, err := bridge.NewRunner(sc)
	if err != nil {
		fatal(err)
	}
	// The inspector needs core.Run's full result (agents and their
	// transcripts), so it executes the scenario's core-level configuration
	// directly through the bridge.
	res, err := core.Run(runner.RunConfig(runner.Scenario().Seed))
	if err != nil {
		fatal(err)
	}
	inspect.Report(os.Stdout, res)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inspect:", err)
	os.Exit(1)
}
