// Command inspect runs one small protocol execution and prints a complete
// transcript of its internal state: declarations, votes, lottery values, the
// winning certificate, and every verifier's verdict. The run is described by
// a declarative scenario and executed through core.Run for full state access.
//
//	go run ./cmd/inspect -n 8 -seed 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/inspect"
	"repro/internal/scenario"
)

func main() {
	var (
		n      = flag.Int("n", 8, "number of agents (keep small; the transcript is per-agent)")
		colors = flag.Int("colors", 2, "number of colors")
		gamma  = flag.Float64("gamma", 0, "phase-length constant (0 = protocol default)")
		alpha  = flag.Float64("alpha", 0, "fault fraction")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	sc := scenario.Scenario{N: *n, Colors: *colors, Gamma: *gamma, Seed: *seed}
	if *alpha > 0 {
		sc.Fault = scenario.FaultModel{Kind: scenario.FaultPermanent, Alpha: *alpha}
	}
	runner, err := scenario.NewRunner(sc)
	if err != nil {
		fatal(err)
	}
	// The inspector needs core.Run's full result, so it executes the
	// scenario's core-level configuration directly.
	res, err := core.Run(runner.RunConfig(*seed))
	if err != nil {
		fatal(err)
	}
	inspect.Report(os.Stdout, res)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inspect:", err)
	os.Exit(1)
}
