// Command inspect runs one small protocol execution and prints a complete
// transcript of its internal state: declarations, votes, lottery values, the
// winning certificate, and every verifier's verdict.
//
//	go run ./cmd/inspect -n 8 -seed 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/inspect"
)

func main() {
	var (
		n      = flag.Int("n", 8, "number of agents (keep small; the transcript is per-agent)")
		colors = flag.Int("colors", 2, "number of colors")
		gamma  = flag.Float64("gamma", core.DefaultGamma, "phase-length constant")
		alpha  = flag.Float64("alpha", 0, "fault fraction")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	p, err := core.NewParams(*n, *colors, *gamma)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(1)
	}
	var faulty []bool
	if *alpha > 0 {
		faulty = core.WorstCaseFaults(*n, *alpha)
	}
	res, err := core.Run(core.RunConfig{
		Params: p,
		Colors: core.UniformColors(*n, *colors),
		Faulty: faulty,
		Seed:   *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(1)
	}
	inspect.Report(os.Stdout, res)
}
