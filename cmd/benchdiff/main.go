// Command benchdiff compares `go test -bench` output against a committed
// baseline and fails on regressions, giving CI a benchmark gate without
// external dependencies.
//
// Usage:
//
//	go test -run='^$' -bench=ScenarioRunnerBatch -benchmem -count=5 . > bench.txt
//	go run ./cmd/benchdiff -baseline BENCH_BASELINE.json bench.txt        # gate
//	go run ./cmd/benchdiff -baseline BENCH_BASELINE.json -update bench.txt # refresh
//
// A refresh keeps exactly the benchmark set already pinned in the baseline
// (updating their numbers); it never grows the set on its own, because bench
// output routinely contains sub-benchmarks the gate must not pin — the
// parallel workers>1 rows allocate GOMAXPROCS-dependent per-chunk state. Use
// -update -filter '<regexp>' to add names deliberately (or to bootstrap a
// baseline from nothing).
//
// Multiple -count runs of one benchmark are reduced to their median, which
// is robust against the odd noisy run. Two classes of regression are gated
// independently:
//
//   - allocations (allocs/op and B/op) are deterministic per code version and
//     are compared unconditionally — exceeding the baseline by more than
//     -alloc-threshold fails;
//   - ns/op is hardware-dependent, so it is gated (at -ns-threshold) only
//     when the measuring CPU matches the baseline's recorded CPU string; on
//     different hardware the wall-clock comparison is reported but advisory,
//     which keeps the gate meaningful on a developer machine that refreshed
//     the baseline while preventing spurious CI failures on whatever runner
//     class the CI provider hands out.
//
// Benchmarks present in the baseline but missing from the new output fail the
// gate (a silently deleted benchmark is a silently dropped guarantee); new
// benchmarks absent from the baseline are reported and skipped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark reference (BENCH_BASELINE.json).
type Baseline struct {
	// CPU is the `cpu:` line of the machine that produced the baseline;
	// ns/op gating is conditional on it matching.
	CPU        string               `json:"cpu"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's reference numbers (medians over -count runs).
type Benchmark struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	var (
		baselinePath   = flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON path")
		update         = flag.Bool("update", false, "rewrite the baseline from the measured results instead of comparing")
		filter         = flag.String("filter", "", "with -update, regexp of benchmark names to (also) include; by default a refresh keeps exactly the benchmark set already in the baseline")
		nsThreshold    = flag.Float64("ns-threshold", 0.15, "maximum tolerated ns/op regression (fraction)")
		allocThreshold = flag.Float64("alloc-threshold", 0.15, "maximum tolerated allocs/op and B/op regression (fraction)")
	)
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	cpu, results, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results in input"))
	}

	if *update {
		med := medians(results)
		// A refresh keeps the baseline's curated benchmark set: the bench
		// output usually contains sub-benchmarks the gate deliberately
		// excludes (the parallel workers>1 table allocates GOMAXPROCS-
		// dependent per-chunk state), and blindly writing everything would
		// re-introduce them. -filter opts names in explicitly; with no
		// existing baseline the filter (default: everything) bootstraps it.
		keep := med
		var prev Baseline
		if data, err := os.ReadFile(*baselinePath); err == nil {
			if err := json.Unmarshal(data, &prev); err != nil {
				fatal(fmt.Errorf("parsing existing %s: %w", *baselinePath, err))
			}
		}
		var include *regexp.Regexp
		if *filter != "" {
			var err error
			if include, err = regexp.Compile(*filter); err != nil {
				fatal(fmt.Errorf("bad -filter: %w", err))
			}
		}
		if prev.Benchmarks != nil {
			keep = make(map[string]Benchmark)
			for name, b := range med {
				_, inPrev := prev.Benchmarks[name]
				if inPrev || (include != nil && include.MatchString(name)) {
					keep[name] = b
				}
			}
			for name := range prev.Benchmarks {
				if _, ok := keep[name]; !ok {
					fmt.Printf("benchdiff: warning: %s in baseline but not in results; dropping it\n", name)
				}
			}
		} else if include != nil {
			keep = make(map[string]Benchmark)
			for name, b := range med {
				if include.MatchString(name) {
					keep[name] = b
				}
			}
		}
		if len(keep) == 0 {
			fatal(fmt.Errorf("refusing to write an empty baseline (no benchmark matched)"))
		}
		b := Baseline{CPU: cpu, Benchmarks: keep}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %s (%d benchmarks, cpu %q)\n", *baselinePath, len(keep), cpu)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *baselinePath, err))
	}
	sameCPU := cpu != "" && cpu == base.CPU
	if !sameCPU {
		fmt.Printf("benchdiff: cpu %q != baseline cpu %q — ns/op is advisory on this machine\n", cpu, base.CPU)
	}

	med := medians(results)
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := med[name]
		if !ok {
			fmt.Printf("FAIL %s: present in baseline but missing from results\n", name)
			failed = true
			continue
		}
		nsBad := exceeded(got.NsPerOp, want.NsPerOp, *nsThreshold)
		allocBad := exceeded(got.AllocsPerOp, want.AllocsPerOp, *allocThreshold)
		bytesBad := exceeded(got.BytesPerOp, want.BytesPerOp, *allocThreshold)
		status := "ok  "
		if allocBad || bytesBad || (nsBad && sameCPU) {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s: ns/op %s  B/op %s  allocs/op %s\n", status, name,
			delta(got.NsPerOp, want.NsPerOp, nsBad && sameCPU),
			delta(got.BytesPerOp, want.BytesPerOp, bytesBad),
			delta(got.AllocsPerOp, want.AllocsPerOp, allocBad))
	}
	for name := range med {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("note %s: not in baseline, not gated (benchdiff -update -filter can pin it)\n", name)
		}
	}
	if failed {
		fmt.Println("benchdiff: FAIL — regression past threshold (or missing benchmark)")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

// exceeded reports whether got regressed past want by more than threshold.
// A zero baseline only tolerates zero (relevant for allocs/op pinned at 0).
func exceeded(got, want, threshold float64) bool {
	if want == 0 {
		return got > 0
	}
	return got > want*(1+threshold)
}

// delta renders "got (+x%)" against the baseline value.
func delta(got, want float64, bad bool) string {
	pct := 0.0
	if want != 0 {
		pct = (got - want) / want * 100
	}
	mark := ""
	if bad {
		mark = "!"
	}
	return fmt.Sprintf("%.4g (%+.1f%%%s)", got, pct, mark)
}

// medians reduces repeated runs of each benchmark to per-metric medians.
func medians(results map[string][]Benchmark) map[string]Benchmark {
	out := make(map[string]Benchmark, len(results))
	for name, runs := range results {
		out[name] = Benchmark{
			NsPerOp:     median(runs, func(b Benchmark) float64 { return b.NsPerOp }),
			BytesPerOp:  median(runs, func(b Benchmark) float64 { return b.BytesPerOp }),
			AllocsPerOp: median(runs, func(b Benchmark) float64 { return b.AllocsPerOp }),
		}
	}
	return out
}

func median(runs []Benchmark, get func(Benchmark) float64) float64 {
	xs := make([]float64, len(runs))
	for i, r := range runs {
		xs[i] = get(r)
	}
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
var metricRe = regexp.MustCompile(`([0-9.]+) (B/op|allocs/op)`)

// parseBench reads `go test -bench` output: the cpu: header line and every
// benchmark result line (one entry per -count repetition).
func parseBench(r io.Reader) (cpu string, results map[string][]Benchmark, err error) {
	results = make(map[string][]Benchmark)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1][len("Benchmark"):]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return "", nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		b := Benchmark{NsPerOp: ns}
		for _, mm := range metricRe.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				return "", nil, fmt.Errorf("bad metric in %q: %w", line, err)
			}
			switch mm[2] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		results[name] = append(results[name], b)
	}
	return cpu, results, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
