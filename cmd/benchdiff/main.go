// Command benchdiff compares `go test -bench` output against a committed
// baseline and fails on regressions, giving CI a benchmark gate without
// external dependencies.
//
// Usage:
//
//	go test -run='^$' -bench='ScenarioRunnerBatch|DynamicScenarioBatch' -benchmem -count=5 . > bench.txt
//	go run ./cmd/benchdiff -baseline BENCH_BASELINE.json bench.txt        # gate
//	go run ./cmd/benchdiff -baseline BENCH_BASELINE.json -update bench.txt # refresh
//
// A refresh keeps exactly the benchmark set already pinned in the baseline
// (updating their numbers); it never grows the set on its own, because bench
// output routinely contains sub-benchmarks the gate must not pin — the
// parallel workers>1 rows allocate GOMAXPROCS-dependent per-chunk state. Use
// -update -filter '<regexp>' to add names deliberately (or to bootstrap a
// baseline from nothing). A refresh preserves any per-benchmark threshold
// overrides the baseline carries.
//
// Multiple -count runs of one benchmark are reduced to their median, which
// is robust against the odd noisy run. Two classes of regression are gated
// independently:
//
//   - allocations (allocs/op and B/op) are deterministic per code version and
//     are compared unconditionally — exceeding the baseline by more than
//     the allocation threshold fails;
//   - ns/op is hardware-dependent, so it is gated (at the ns threshold) only
//     when the measuring CPU matches the baseline's recorded CPU string; on
//     different hardware the wall-clock comparison is reported but advisory,
//     which keeps the gate meaningful on a developer machine that refreshed
//     the baseline while preventing spurious CI failures on whatever runner
//     class the CI provider hands out.
//
// With several benchmarks gated at once, one shared threshold rarely fits
// all: a 13 ms macro-benchmark tolerates 15% noise, a 100 µs one may need
// more, a pure-alloc gate may want 0. The -ns-threshold / -alloc-threshold
// flags therefore set the shared default, and any baseline entry may carry
// its own "ns_threshold" / "alloc_threshold" fields overriding the flags for
// that benchmark alone.
//
// Benchmarks present in the baseline but missing from the new output fail the
// gate (a silently deleted benchmark is a silently dropped guarantee); new
// benchmarks absent from the baseline are reported and skipped. The skip is
// deliberate for incidental sub-benchmarks, but it also means a benchmark
// everyone *believes* is gated can silently not be: -require '<regexp>'
// closes that hole by failing, with an explicit message, when a measured
// benchmark matching the regexp has no baseline entry.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark reference (BENCH_BASELINE.json).
type Baseline struct {
	// CPU is the `cpu:` line of the machine that produced the baseline;
	// ns/op gating is conditional on it matching.
	CPU        string               `json:"cpu"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's reference numbers (medians over -count runs),
// plus optional per-benchmark gate thresholds overriding the shared flags.
type Benchmark struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// NsThreshold, when non-nil, replaces the -ns-threshold flag for this
	// benchmark (fraction; 0 tolerates no ns/op regression at all).
	NsThreshold *float64 `json:"ns_threshold,omitempty"`
	// AllocThreshold, when non-nil, replaces the -alloc-threshold flag for
	// this benchmark's allocs/op and B/op comparisons.
	AllocThreshold *float64 `json:"alloc_threshold,omitempty"`
}

// gateOptions configures a comparison run.
type gateOptions struct {
	// NsThreshold and AllocThreshold are the shared regression tolerances
	// (fractions), overridable per baseline entry.
	NsThreshold    float64
	AllocThreshold float64
	// CPU is the measuring machine's cpu: line; ns/op gating requires it to
	// equal the baseline's.
	CPU string
	// Require, when non-nil, names the benchmarks that must be gated: a
	// measured benchmark matching it without a baseline entry fails.
	Require *regexp.Regexp
}

func main() {
	var (
		baselinePath   = flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON path")
		update         = flag.Bool("update", false, "rewrite the baseline from the measured results instead of comparing")
		filter         = flag.String("filter", "", "with -update, regexp of benchmark names to (also) include; by default a refresh keeps exactly the benchmark set already in the baseline")
		nsThreshold    = flag.Float64("ns-threshold", 0.15, "default maximum tolerated ns/op regression (fraction); a baseline entry's ns_threshold overrides it")
		allocThreshold = flag.Float64("alloc-threshold", 0.15, "default maximum tolerated allocs/op and B/op regression (fraction); a baseline entry's alloc_threshold overrides it")
		require        = flag.String("require", "", "regexp of benchmark names that must have a baseline entry; a measured match without one fails instead of being silently skipped")
	)
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	cpu, results, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results in input"))
	}

	if *update {
		if err := updateBaseline(*baselinePath, cpu, medians(results), *filter); err != nil {
			fatal(err)
		}
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *baselinePath, err))
	}
	opts := gateOptions{NsThreshold: *nsThreshold, AllocThreshold: *allocThreshold, CPU: cpu}
	if *require != "" {
		if opts.Require, err = regexp.Compile(*require); err != nil {
			fatal(fmt.Errorf("bad -require: %w", err))
		}
	}
	lines, failed := gate(base, medians(results), opts)
	for _, l := range lines {
		fmt.Println(l)
	}
	if failed {
		fmt.Println("benchdiff: FAIL — regression past threshold, missing benchmark, or ungated required benchmark")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

// updateBaseline rewrites the baseline from the measured medians. A refresh
// keeps the baseline's curated benchmark set: the bench output usually
// contains sub-benchmarks the gate deliberately excludes (the parallel
// workers>1 tables allocate GOMAXPROCS-dependent per-chunk state), and
// blindly writing everything would re-introduce them. filter opts names in
// explicitly; with no existing baseline the filter (default: everything)
// bootstraps it. Per-benchmark threshold overrides carry over from the
// previous baseline.
func updateBaseline(path, cpu string, med map[string]Benchmark, filter string) error {
	keep := med
	var prev Baseline
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &prev); err != nil {
			return fmt.Errorf("parsing existing %s: %w", path, err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		// Only a genuinely absent baseline may be bootstrapped from scratch:
		// treating a permission or I/O error as "no baseline" would silently
		// discard the curated benchmark set and its threshold overrides.
		return fmt.Errorf("reading existing %s: %w", path, err)
	}
	var include *regexp.Regexp
	if filter != "" {
		var err error
		if include, err = regexp.Compile(filter); err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
	}
	if prev.Benchmarks != nil {
		keep = make(map[string]Benchmark)
		for name, b := range med {
			old, inPrev := prev.Benchmarks[name]
			if inPrev || (include != nil && include.MatchString(name)) {
				b.NsThreshold = old.NsThreshold
				b.AllocThreshold = old.AllocThreshold
				keep[name] = b
			}
		}
		for name := range prev.Benchmarks {
			if _, ok := keep[name]; !ok {
				fmt.Printf("benchdiff: warning: %s in baseline but not in results; dropping it\n", name)
			}
		}
	} else if include != nil {
		keep = make(map[string]Benchmark)
		for name, b := range med {
			if include.MatchString(name) {
				keep[name] = b
			}
		}
	}
	if len(keep) == 0 {
		return fmt.Errorf("refusing to write an empty baseline (no benchmark matched)")
	}
	b := Baseline{CPU: cpu, Benchmarks: keep}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchdiff: wrote %s (%d benchmarks, cpu %q)\n", path, len(keep), cpu)
	return nil
}

// gate compares measured medians against the baseline and returns the report
// lines plus whether the gate failed. It is main's comparison logic, split
// out so tests can drive it without a process boundary.
func gate(base Baseline, med map[string]Benchmark, opts gateOptions) (lines []string, failed bool) {
	sameCPU := opts.CPU != "" && opts.CPU == base.CPU
	if !sameCPU {
		lines = append(lines, fmt.Sprintf("benchdiff: cpu %q != baseline cpu %q — ns/op is advisory on this machine", opts.CPU, base.CPU))
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := med[name]
		if !ok {
			lines = append(lines, fmt.Sprintf("FAIL %s: present in baseline but missing from results", name))
			failed = true
			continue
		}
		nsT, allocT := opts.NsThreshold, opts.AllocThreshold
		if want.NsThreshold != nil {
			nsT = *want.NsThreshold
		}
		if want.AllocThreshold != nil {
			allocT = *want.AllocThreshold
		}
		nsBad := exceeded(got.NsPerOp, want.NsPerOp, nsT)
		allocBad := exceeded(got.AllocsPerOp, want.AllocsPerOp, allocT)
		bytesBad := exceeded(got.BytesPerOp, want.BytesPerOp, allocT)
		status := "ok  "
		if allocBad || bytesBad || (nsBad && sameCPU) {
			status = "FAIL"
			failed = true
		}
		lines = append(lines, fmt.Sprintf("%s %s: ns/op %s  B/op %s  allocs/op %s", status, name,
			delta(got.NsPerOp, want.NsPerOp, nsBad && sameCPU),
			delta(got.BytesPerOp, want.BytesPerOp, bytesBad),
			delta(got.AllocsPerOp, want.AllocsPerOp, allocBad)))
	}
	ungated := make([]string, 0)
	for name := range med {
		if _, ok := base.Benchmarks[name]; !ok {
			ungated = append(ungated, name)
		}
	}
	sort.Strings(ungated)
	for _, name := range ungated {
		if opts.Require != nil && opts.Require.MatchString(name) {
			lines = append(lines, fmt.Sprintf("FAIL %s: matches -require but has no baseline entry — it is NOT gated; pin it with `benchdiff -update -filter '%s'`", name, regexp.QuoteMeta(name)))
			failed = true
			continue
		}
		lines = append(lines, fmt.Sprintf("note %s: not in baseline, not gated (benchdiff -update -filter can pin it)", name))
	}
	return lines, failed
}

// exceeded reports whether got regressed past want by more than threshold.
// A zero baseline only tolerates zero (relevant for allocs/op pinned at 0).
func exceeded(got, want, threshold float64) bool {
	if want == 0 {
		return got > 0
	}
	return got > want*(1+threshold)
}

// delta renders "got (+x%)" against the baseline value.
func delta(got, want float64, bad bool) string {
	pct := 0.0
	if want != 0 {
		pct = (got - want) / want * 100
	}
	mark := ""
	if bad {
		mark = "!"
	}
	return fmt.Sprintf("%.4g (%+.1f%%%s)", got, pct, mark)
}

// medians reduces repeated runs of each benchmark to per-metric medians.
func medians(results map[string][]Benchmark) map[string]Benchmark {
	out := make(map[string]Benchmark, len(results))
	for name, runs := range results {
		out[name] = Benchmark{
			NsPerOp:     median(runs, func(b Benchmark) float64 { return b.NsPerOp }),
			BytesPerOp:  median(runs, func(b Benchmark) float64 { return b.BytesPerOp }),
			AllocsPerOp: median(runs, func(b Benchmark) float64 { return b.AllocsPerOp }),
		}
	}
	return out
}

func median(runs []Benchmark, get func(Benchmark) float64) float64 {
	xs := make([]float64, len(runs))
	for i, r := range runs {
		xs[i] = get(r)
	}
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
var metricRe = regexp.MustCompile(`([0-9.]+) (B/op|allocs/op)`)

// parseBench reads `go test -bench` output: the cpu: header line and every
// benchmark result line (one entry per -count repetition).
func parseBench(r io.Reader) (cpu string, results map[string][]Benchmark, err error) {
	results = make(map[string][]Benchmark)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1][len("Benchmark"):]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return "", nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		b := Benchmark{NsPerOp: ns}
		for _, mm := range metricRe.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				return "", nil, fmt.Errorf("bad metric in %q: %w", line, err)
			}
			switch mm[2] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		results[name] = append(results[name], b)
	}
	return cpu, results, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
