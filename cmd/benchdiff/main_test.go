package main

import (
	"regexp"
	"strings"
	"testing"
)

func f64(v float64) *float64 { return &v }

func baseline(entries map[string]Benchmark) Baseline {
	return Baseline{CPU: "test-cpu", Benchmarks: entries}
}

// hasLine reports whether any report line contains all the given substrings.
func hasLine(lines []string, subs ...string) bool {
	for _, l := range lines {
		ok := true
		for _, s := range subs {
			if !strings.Contains(l, s) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestGatePassesWithinThresholds(t *testing.T) {
	base := baseline(map[string]Benchmark{
		"A/workers=1": {NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10},
	})
	med := map[string]Benchmark{
		"A/workers=1": {NsPerOp: 1100, BytesPerOp: 110, AllocsPerOp: 11},
	}
	lines, failed := gate(base, med, gateOptions{NsThreshold: 0.15, AllocThreshold: 0.15, CPU: "test-cpu"})
	if failed {
		t.Fatalf("gate failed within thresholds:\n%s", strings.Join(lines, "\n"))
	}
}

func TestGateFailsOnAllocRegression(t *testing.T) {
	base := baseline(map[string]Benchmark{"A": {NsPerOp: 1000, AllocsPerOp: 10}})
	med := map[string]Benchmark{"A": {NsPerOp: 1000, AllocsPerOp: 20}}
	lines, failed := gate(base, med, gateOptions{NsThreshold: 0.15, AllocThreshold: 0.15, CPU: "other"})
	if !failed || !hasLine(lines, "FAIL A") {
		t.Fatalf("alloc regression not caught:\n%s", strings.Join(lines, "\n"))
	}
}

func TestGateNsAdvisoryOnDifferentCPU(t *testing.T) {
	base := baseline(map[string]Benchmark{"A": {NsPerOp: 1000, AllocsPerOp: 10}})
	med := map[string]Benchmark{"A": {NsPerOp: 5000, AllocsPerOp: 10}}
	lines, failed := gate(base, med, gateOptions{NsThreshold: 0.15, AllocThreshold: 0.15, CPU: "other"})
	if failed {
		t.Fatalf("ns/op gated despite CPU mismatch:\n%s", strings.Join(lines, "\n"))
	}
	if _, failed = gate(base, med, gateOptions{NsThreshold: 0.15, AllocThreshold: 0.15, CPU: "test-cpu"}); !failed {
		t.Fatal("ns/op regression not gated on matching CPU")
	}
}

func TestGateFailsOnBenchmarkMissingFromResults(t *testing.T) {
	base := baseline(map[string]Benchmark{"A": {NsPerOp: 1000}, "B": {NsPerOp: 1000}})
	med := map[string]Benchmark{"A": {NsPerOp: 1000}}
	lines, failed := gate(base, med, gateOptions{NsThreshold: 0.15, AllocThreshold: 0.15, CPU: "test-cpu"})
	if !failed || !hasLine(lines, "FAIL B", "missing from results") {
		t.Fatalf("missing benchmark not caught:\n%s", strings.Join(lines, "\n"))
	}
}

// TestGateRequireCatchesUngatedBenchmark pins the -require contract: a
// measured benchmark everyone believes is gated but that has no baseline
// entry must fail loudly instead of passing as an ignorable note.
func TestGateRequireCatchesUngatedBenchmark(t *testing.T) {
	base := baseline(map[string]Benchmark{"A/workers=1": {NsPerOp: 1000}})
	med := map[string]Benchmark{
		"A/workers=1": {NsPerOp: 1000},
		"B/workers=1": {NsPerOp: 999999}, // any numbers: it has no baseline to regress against
		"B/workers=4": {NsPerOp: 1},      // not required: parallel rows stay un-pinned
	}
	opts := gateOptions{NsThreshold: 0.15, AllocThreshold: 0.15, CPU: "test-cpu",
		Require: regexp.MustCompile(`workers=1$`)}
	lines, failed := gate(base, med, opts)
	if !failed || !hasLine(lines, "FAIL B/workers=1", "NOT gated") {
		t.Fatalf("ungated required benchmark not caught:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "note B/workers=4") {
		t.Fatalf("non-required new benchmark should stay an ignorable note:\n%s", strings.Join(lines, "\n"))
	}
	// Without -require the same input passes (the pre-require behavior).
	opts.Require = nil
	if _, failed := gate(base, med, opts); failed {
		t.Fatal("gate failed without -require")
	}
}

// TestGatePerBenchmarkThresholds pins the override semantics: an entry's own
// ns_threshold / alloc_threshold replace the shared flags for that entry
// only.
func TestGatePerBenchmarkThresholds(t *testing.T) {
	base := baseline(map[string]Benchmark{
		"tight": {NsPerOp: 1000, AllocsPerOp: 100, AllocThreshold: f64(0)},
		"loose": {NsPerOp: 1000, AllocsPerOp: 100, NsThreshold: f64(1.0)},
		"plain": {NsPerOp: 1000, AllocsPerOp: 100},
	})
	med := map[string]Benchmark{
		"tight": {NsPerOp: 1000, AllocsPerOp: 101}, // +1% allocs: over its 0 threshold
		"loose": {NsPerOp: 1900, AllocsPerOp: 100}, // +90% ns: within its 100% threshold
		"plain": {NsPerOp: 1900, AllocsPerOp: 100}, // +90% ns: over the shared 15%
	}
	lines, failed := gate(base, med, gateOptions{NsThreshold: 0.15, AllocThreshold: 0.15, CPU: "test-cpu"})
	if !failed {
		t.Fatalf("gate passed:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "FAIL tight") {
		t.Fatalf("per-benchmark alloc_threshold 0 not applied:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "ok   loose") {
		t.Fatalf("per-benchmark ns_threshold 1.0 not applied:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "FAIL plain") {
		t.Fatalf("shared ns threshold not applied to plain entry:\n%s", strings.Join(lines, "\n"))
	}
}

func TestParseBenchReadsGoTestOutput(t *testing.T) {
	out := `goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkScenarioRunnerBatch/workers=1-4         	      88	  13524585 ns/op	         0.3500 failRate	   59215 B/op	     102 allocs/op
BenchmarkScenarioRunnerBatch/workers=1-4         	      90	  13000000 ns/op	         0.3500 failRate	   59000 B/op	     100 allocs/op
BenchmarkPlain 	 5	 200 ns/op
PASS
`
	cpu, results, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) Processor @ 2.70GHz" {
		t.Fatalf("cpu = %q", cpu)
	}
	if got := len(results["ScenarioRunnerBatch/workers=1"]); got != 2 {
		t.Fatalf("parsed %d runs for the sub-benchmark", got)
	}
	med := medians(results)
	if med["ScenarioRunnerBatch/workers=1"].AllocsPerOp != 101 {
		t.Fatalf("median allocs/op = %v", med["ScenarioRunnerBatch/workers=1"].AllocsPerOp)
	}
	if med["Plain"].NsPerOp != 200 {
		t.Fatalf("plain benchmark ns/op = %v", med["Plain"].NsPerOp)
	}
}
