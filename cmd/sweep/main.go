// Command sweep runs a parameter sweep of Protocol P and emits one CSV row
// per configuration × aggregate, convenient for plotting scaling behaviour.
// Each (n, α) cell is a declarative scenario executed by scenario.Runner;
// cell seeds are derived by rng splitting, so no two cells can share trial
// seed streams (the additive seed+n+α·1e6 salt this replaces could collide).
//
// Example:
//
//	sweep -sizes 128,256,512,1024 -alphas 0,0.3 -trials 50 > sweep.csv
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		sizes   = flag.String("sizes", "128,256,512,1024", "comma-separated network sizes")
		alphas  = flag.String("alphas", "0", "comma-separated fault fractions")
		fault   = flag.String("fault", "permanent", "fault model applied at each α > 0: permanent | crash | churn")
		gamma   = flag.Float64("gamma", 0, "phase-length constant γ (0 = protocol default)")
		colors  = flag.Int("colors", 2, "number of colors")
		trials  = flag.Int("trials", 50, "trials per configuration")
		seed    = flag.Uint64("seed", 1, "master seed")
		workers = flag.Int("workers", 0, "parallelism (0 = all CPUs)")
	)
	flag.Parse()

	ns, err := parseInts(*sizes)
	if err != nil {
		fatal(err)
	}
	as, err := parseFloats(*alphas)
	if err != nil {
		fatal(err)
	}

	fmt.Println("n,alpha,gamma,trials,success_rate,rounds_median,messages_mean,bits_mean,max_msg_bits_median,good_exec_rate")
	for _, n := range ns {
		for _, alpha := range as {
			sc := scenario.Scenario{
				N: n, Colors: *colors, Gamma: *gamma,
				Seed:    sim.ConfigSeed(*seed, uint64(n), math.Float64bits(alpha)),
				Workers: *workers,
			}
			if alpha > 0 {
				sc.Fault = scenario.FaultModel{
					Kind: scenario.FaultKind(*fault), Alpha: alpha, Round: 30, Period: 8,
				}
			}
			runner, err := scenario.NewRunner(sc)
			if err != nil {
				fatal(err)
			}
			outs, err := runner.Trials(*trials)
			if err != nil {
				fatal(err)
			}
			okC, goodC := 0, 0
			var rounds, maxMB []float64
			var msgs, bits float64
			for _, o := range outs {
				if !o.Outcome.Failed {
					okC++
				}
				if o.HasGood && o.Good.Good() {
					goodC++
				}
				rounds = append(rounds, float64(o.Rounds))
				maxMB = append(maxMB, float64(o.Metrics.MaxMessageBits))
				msgs += float64(o.Metrics.Messages)
				bits += float64(o.Metrics.Bits)
			}
			t := float64(*trials)
			fmt.Printf("%d,%g,%g,%d,%.4f,%.0f,%.0f,%.0f,%.0f,%.4f\n",
				n, alpha, runner.Params().Gamma, *trials,
				float64(okC)/t,
				stats.Summarize(rounds).Median,
				msgs/t, bits/t,
				stats.Summarize(maxMB).Median,
				float64(goodC)/t)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad fraction %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
