// Command sweep runs a parameter sweep of Protocol P and emits one CSV row
// per configuration × aggregate, convenient for plotting scaling behaviour.
// Each (n, α) cell is a declarative scenario executed through the public
// fairgossip API; cell seeds are derived by rng splitting, so no two cells
// can share trial seed streams. Interrupting the process (SIGINT/SIGTERM)
// cancels the in-flight cell promptly mid-batch via context cancellation.
//
// Two execution modes share the same CSV schema:
//
//   - batch (default): each cell's trials are materialized in memory —
//     simple, fine up to ~10⁵ trials;
//   - streaming (-stream): trials flow through bounded-memory running
//     statistics (Welford moments, counting-histogram medians) in chunks of
//     -chunk, so million-trial cells run in constant memory. -checkpoint K
//     emits a partial aggregate row to stderr every K trials, making
//     long cells observable and restart decisions cheap.
//
// Example:
//
//	sweep -sizes 128,256,512,1024 -alphas 0,0.3 -trials 50 > sweep.csv
//	sweep -sizes 1024 -trials 1000000 -stream -checkpoint 100000 > sweep.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/fairgossip"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		sizes      = flag.String("sizes", "128,256,512,1024", "comma-separated network sizes")
		alphas     = flag.String("alphas", "0", "comma-separated fault fractions")
		fault      = flag.String("fault", "permanent", "fault model applied at each α > 0: permanent | crash | churn")
		drop       = flag.Float64("drop", 0, "probabilistic per-message loss rate applied to every cell")
		gamma      = flag.Float64("gamma", 0, "phase-length constant γ (0 = protocol default)")
		colors     = flag.Int("colors", 2, "number of colors")
		trials     = flag.Int("trials", 50, "trials per configuration")
		seed       = flag.Uint64("seed", 1, "master seed")
		workers    = flag.Int("workers", 0, "parallelism (0 = all CPUs)")
		stream     = flag.Bool("stream", false, "stream trials through bounded-memory running stats (for very large -trials)")
		chunk      = flag.Int("chunk", 0, "streaming chunk size (0 = default)")
		checkpoint = flag.Int("checkpoint", 0, "with -stream, emit a partial aggregate to stderr every K trials (0 = off)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if !*stream && (*chunk > 0 || *checkpoint > 0) {
		fatal(fmt.Errorf("-chunk and -checkpoint require -stream (batch mode materializes every trial)"))
	}

	ns, err := parseInts(*sizes)
	if err != nil {
		fatal(err)
	}
	as, err := parseFloats(*alphas)
	if err != nil {
		fatal(err)
	}

	fmt.Println("n,alpha,gamma,trials,success_rate,rounds_median,messages_mean,bits_mean,max_msg_bits_median,good_exec_rate")
	for _, n := range ns {
		for _, alpha := range as {
			sc := fairgossip.Scenario{
				N: n, Colors: *colors, Gamma: *gamma,
				Seed:    sim.ConfigSeed(*seed, uint64(n), math.Float64bits(alpha)),
				Workers: *workers,
				Fault:   fairgossip.FaultModel{Drop: *drop},
			}
			if alpha > 0 {
				sc.Fault.Kind = fairgossip.FaultKind(*fault)
				sc.Fault.Alpha = alpha
				sc.Fault.Round = 30
				sc.Fault.Period = 8
			}
			runner, err := fairgossip.NewRunner(sc)
			if err != nil {
				fatal(err)
			}
			var agg cellAggregate
			if *stream {
				err = runner.Stream(ctx, fairgossip.StreamOptions{Trials: *trials, Chunk: *chunk},
					func(i int, res fairgossip.Result) {
						agg.add(res)
						if *checkpoint > 0 && (i+1)%*checkpoint == 0 {
							fmt.Fprintf(os.Stderr, "# checkpoint n=%d alpha=%g %s\n",
								n, alpha, agg.row(i+1))
						}
					})
			} else {
				var outs []fairgossip.Result
				outs, err = runner.Trials(ctx, *trials)
				for i := range outs {
					agg.add(outs[i])
				}
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%d,%g,%g,%d,%s\n", n, alpha, runner.Params().Gamma, *trials, agg.row(*trials))
		}
	}
}

// cellAggregate folds one cell's trials into the CSV aggregates in bounded
// memory: counting histograms for the (integral) medians, running sums for
// the means. Batch and streaming modes share it, so both emit identical rows.
type cellAggregate struct {
	ok, good   int
	rounds     stats.IntMedian
	maxMsgBits stats.IntMedian
	msgs, bits stats.Running
}

func (a *cellAggregate) add(res fairgossip.Result) {
	if res.Success() {
		a.ok++
	}
	if res.HasGood && res.Good.Good() {
		a.good++
	}
	a.rounds.Add(res.Rounds)
	a.maxMsgBits.Add(res.Metrics.MaxMessageBits)
	a.msgs.Add(float64(res.Metrics.Messages))
	a.bits.Add(float64(res.Metrics.Bits))
}

// row renders the aggregate columns over the first trials runs (the
// success_rate … good_exec_rate tail of a CSV line).
func (a *cellAggregate) row(trials int) string {
	t := float64(trials)
	return fmt.Sprintf("%.4f,%.0f,%.0f,%.0f,%.0f,%.4f",
		float64(a.ok)/t,
		a.rounds.Median(),
		a.msgs.Mean(), a.bits.Mean(),
		a.maxMsgBits.Median(),
		float64(a.good)/t)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad fraction %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
