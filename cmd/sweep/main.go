// Command sweep runs a parameter sweep of Protocol P and emits one CSV row
// per configuration × aggregate, convenient for plotting scaling behaviour.
//
// Example:
//
//	sweep -sizes 128,256,512,1024 -alphas 0,0.3 -trials 50 > sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		sizes   = flag.String("sizes", "128,256,512,1024", "comma-separated network sizes")
		alphas  = flag.String("alphas", "0", "comma-separated fault fractions")
		gamma   = flag.Float64("gamma", core.DefaultGamma, "phase-length constant γ")
		colors  = flag.Int("colors", 2, "number of colors")
		trials  = flag.Int("trials", 50, "trials per configuration")
		seed    = flag.Uint64("seed", 1, "master seed")
		workers = flag.Int("workers", 0, "parallelism (0 = all CPUs)")
	)
	flag.Parse()

	ns, err := parseInts(*sizes)
	if err != nil {
		fatal(err)
	}
	as, err := parseFloats(*alphas)
	if err != nil {
		fatal(err)
	}

	fmt.Println("n,alpha,gamma,trials,success_rate,rounds_median,messages_mean,bits_mean,max_msg_bits_median,good_exec_rate")
	for _, n := range ns {
		for _, alpha := range as {
			p, err := core.NewParams(n, *colors, *gamma)
			if err != nil {
				fatal(err)
			}
			colorVec := core.UniformColors(n, *colors)
			var faulty []bool
			if alpha > 0 {
				faulty = core.WorstCaseFaults(n, alpha)
			}
			type out struct {
				ok, good      bool
				rounds, maxMB float64
				msgs, bits    float64
			}
			outs := sim.ParallelTrials(*trials, *workers, *seed+uint64(n)+uint64(alpha*1e6),
				func(i int, s uint64) out {
					res, err := core.Run(core.RunConfig{
						Params: p, Colors: colorVec, Faulty: faulty, Seed: s, Workers: 1,
					})
					if err != nil {
						panic(err)
					}
					return out{
						ok:     !res.Outcome.Failed,
						good:   res.Good.Good(),
						rounds: float64(res.Rounds),
						maxMB:  float64(res.Metrics.MaxMessageBits),
						msgs:   float64(res.Metrics.Messages),
						bits:   float64(res.Metrics.Bits),
					}
				})
			okC, goodC := 0, 0
			var rounds, maxMB []float64
			var msgs, bits float64
			for _, o := range outs {
				if o.ok {
					okC++
				}
				if o.good {
					goodC++
				}
				rounds = append(rounds, o.rounds)
				maxMB = append(maxMB, o.maxMB)
				msgs += o.msgs
				bits += o.bits
			}
			t := float64(*trials)
			fmt.Printf("%d,%g,%g,%d,%.4f,%.0f,%.0f,%.0f,%.0f,%.4f\n",
				n, alpha, *gamma, *trials,
				float64(okC)/t,
				stats.Summarize(rounds).Median,
				msgs/t, bits/t,
				stats.Summarize(maxMB).Median,
				float64(goodC)/t)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad fraction %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
