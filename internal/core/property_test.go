package core

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/topo"
)

// randomCert builds a structurally random (not necessarily valid) certificate.
func randomCert(r *rng.Source, p Params) *Certificate {
	w := make([]WEntry, r.Intn(6))
	for i := range w {
		w[i] = WEntry{Voter: int32(r.Intn(p.N)), Value: r.Uint64n(p.M) + 1}
	}
	return &Certificate{
		P:     p,
		K:     r.Uint64n(p.M),
		W:     w,
		Color: Color(r.Intn(p.NumColors)),
		Owner: int32(r.Intn(p.N)),
	}
}

func TestCertificateEqualIsEquivalence(t *testing.T) {
	p := MustParams(16, 4, 1)
	master := rng.New(31)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		a := randomCert(r, p)
		b := randomCert(r, p)
		// Reflexive, symmetric, and clone-equal.
		if !a.Equal(a) || !b.Equal(b) {
			return false
		}
		if a.Equal(b) != b.Equal(a) {
			return false
		}
		return a.Equal(a.Clone()) && b.Clone().Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateEqualPermutationInvariant(t *testing.T) {
	p := MustParams(32, 2, 1)
	master := rng.New(37)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		a := randomCert(r, p)
		b := a.Clone()
		rng.Shuffle(r, b.W)
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateLessIsStrictOrder(t *testing.T) {
	p := MustParams(16, 2, 1)
	master := rng.New(41)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		a := randomCert(r, p)
		b := randomCert(r, p)
		c := randomCert(r, p)
		// Irreflexive and antisymmetric.
		if a.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(a) {
			return false
		}
		// Transitive.
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		// Total on distinct (K, Owner) pairs.
		if a.K != b.K || a.Owner != b.Owner {
			if !a.Less(b) && !b.Less(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKIsSumInvariant(t *testing.T) {
	// Invariant: for any sequence of valid votes delivered in the voting
	// phase, the agent's k equals the modular sum of its W, and its own
	// certificate passes the structural half of verification.
	p := MustParams(32, 2, 1)
	master := rng.New(43)
	f := func(seed uint64, nVotes uint8) bool {
		r := master.Split(seed)
		a := NewAgent(0, p, 0, topo.NewComplete(p.N), r.Split(1))
		var want uint64
		for i := 0; i < int(nVotes%40); i++ {
			v := r.Uint64n(p.M) + 1
			a.HandlePush(p.Q, r.Intn(p.N), Vote{P: p, Value: v})
			want = (want + v) % p.M
		}
		if a.K() != want {
			return false
		}
		cert := a.EnsureCertificate()
		return SumVotesMod(cert.W, p.M) == cert.K
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVerificationRejectsAnySingleVoteMutation(t *testing.T) {
	// Invariant behind Claim 1: take an honest certificate whose voters are
	// all known to the verifier; mutate exactly one vote value (fixing k);
	// verification must reject.
	p := MustParams(32, 2, 1)
	master := rng.New(47)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		owner := int32(r.Intn(p.N))
		log := NewCommitmentLog()
		var w []WEntry
		for v := 0; v < 4; v++ {
			voter := int32(v)
			intents := []Intent{{H: r.Uint64n(p.M) + 1, Z: owner}}
			log.Record(voter, intents)
			w = append(w, WEntry{Voter: voter, Value: intents[0].H})
		}
		cert := &Certificate{P: p, K: SumVotesMod(w, p.M), W: w, Color: 0, Owner: owner}
		if VerifyCertificate(p, cert, log) != nil {
			return false // honest cert must pass
		}
		mut := cert.Clone()
		idx := r.Intn(len(mut.W))
		old := mut.W[idx].Value
		mut.W[idx].Value = old%p.M + 1
		if mut.W[idx].Value == old {
			mut.W[idx].Value = old - 1
			if mut.W[idx].Value == 0 {
				mut.W[idx].Value = 2
			}
		}
		mut.K = SumVotesMod(mut.W, p.M)
		return VerifyCertificate(p, mut, log) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCommitmentLogFirstWinsProperty(t *testing.T) {
	// Whatever interleaving of Record/MarkFaulty happens, the first verdict
	// about a voter is the one that sticks.
	f := func(ops []bool) bool {
		l := NewCommitmentLog()
		firstIsRecord := false
		recorded := false
		for i, isRecord := range ops {
			if isRecord {
				l.Record(7, []Intent{{H: uint64(i) + 1, Z: 0}})
			} else {
				l.MarkFaulty(7)
			}
			if !recorded {
				recorded = true
				firstIsRecord = isRecord
			}
		}
		if !recorded {
			return !l.Known(7)
		}
		if firstIsRecord {
			in, ok := l.Declared(7)
			return ok && !l.Faulty(7) && in[0].H == firstIndexValue(ops)
		}
		return l.Faulty(7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func firstIndexValue(ops []bool) uint64 {
	for i, isRecord := range ops {
		if isRecord {
			return uint64(i) + 1
		}
	}
	return 0
}
