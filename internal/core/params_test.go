package core

import (
	"math"
	"testing"
)

func TestNewParamsValid(t *testing.T) {
	p, err := NewParams(1024, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 1024 || p.NumColors != 2 || p.Gamma != 3 {
		t.Fatalf("params = %+v", p)
	}
	if p.Q != 30 { // ceil(3·log2(1024)) = 30
		t.Fatalf("Q = %d, want 30", p.Q)
	}
	if p.M != 1024*1024*1024 {
		t.Fatalf("M = %d, want n³", p.M)
	}
	if p.TotalRounds() != 4*30+1 {
		t.Fatalf("TotalRounds = %d", p.TotalRounds())
	}
}

func TestNewParamsQCeiling(t *testing.T) {
	p := MustParams(100, 2, 1)
	want := int(math.Ceil(math.Log2(100)))
	if p.Q != want {
		t.Fatalf("Q = %d, want %d", p.Q, want)
	}
}

func TestNewParamsErrors(t *testing.T) {
	cases := []struct {
		n, colors int
		gamma     float64
	}{
		{1, 1, 1},        // n too small
		{MaxN + 1, 2, 1}, // n too large
		{10, 0, 1},       // no colors
		{10, 11, 1},      // more colors than nodes
		{10, 2, 0},       // gamma zero
		{10, 2, -1},      // gamma negative
	}
	for _, c := range cases {
		if _, err := NewParams(c.n, c.colors, c.gamma); err == nil {
			t.Errorf("NewParams(%d,%d,%v) accepted", c.n, c.colors, c.gamma)
		}
	}
}

func TestMustParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParams did not panic on invalid input")
		}
	}()
	MustParams(0, 1, 1)
}

func TestPhaseOfBoundaries(t *testing.T) {
	p := MustParams(16, 2, 1) // Q = 4
	if p.Q != 4 {
		t.Fatalf("Q = %d, want 4", p.Q)
	}
	cases := []struct {
		round int
		want  Phase
	}{
		{0, PhaseCommitment}, {3, PhaseCommitment},
		{4, PhaseVoting}, {7, PhaseVoting},
		{8, PhaseFindMin}, {11, PhaseFindMin},
		{12, PhaseCoherence}, {15, PhaseCoherence},
		{16, PhaseVerification}, {100, PhaseVerification},
	}
	for _, c := range cases {
		if got := p.PhaseOf(c.round); got != c.want {
			t.Errorf("PhaseOf(%d) = %v, want %v", c.round, got, c.want)
		}
	}
}

func TestWithProtocolValidation(t *testing.T) {
	p := MustParams(16, 2, 1) // Q = 4
	cases := []struct {
		name  string
		proto Protocol
		ok    bool
	}{
		{"zero value", Protocol{}, true},
		{"explicit baseline", Protocol{Variant: ProtocolBaseline}, true},
		{"baseline stray passes", Protocol{Passes: 2}, false},
		{"baseline stray minVotes", Protocol{MinVotes: 2}, false},
		{"live-retarget", Protocol{Variant: ProtocolLiveRetarget}, true},
		{"live-retarget stray param", Protocol{Variant: ProtocolLiveRetarget, Passes: 2}, false},
		{"retransmit default passes", Protocol{Variant: ProtocolRetransmit}, true},
		{"retransmit explicit passes", Protocol{Variant: ProtocolRetransmit, Passes: MaxVotingPasses}, true},
		{"retransmit passes too large", Protocol{Variant: ProtocolRetransmit, Passes: MaxVotingPasses + 1}, false},
		{"retransmit passes too small", Protocol{Variant: ProtocolRetransmit, Passes: 1}, false},
		{"retransmit stray minVotes", Protocol{Variant: ProtocolRetransmit, MinVotes: 2}, false},
		{"relaxed", Protocol{Variant: ProtocolRelaxed, MinVotes: 4}, true},
		{"relaxed minVotes floor", Protocol{Variant: ProtocolRelaxed, MinVotes: 1}, true},
		{"relaxed minVotes missing", Protocol{Variant: ProtocolRelaxed}, false},
		{"relaxed minVotes over q", Protocol{Variant: ProtocolRelaxed, MinVotes: 5}, false},
		{"relaxed stray passes", Protocol{Variant: ProtocolRelaxed, MinVotes: 2, Passes: 2}, false},
		{"unknown variant", Protocol{Variant: "paxos"}, false},
	}
	for _, c := range cases {
		got, err := p.WithProtocol(c.proto)
		if (err == nil) != c.ok {
			t.Errorf("%s: WithProtocol(%+v) err = %v, want ok=%v", c.name, c.proto, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		switch c.proto.Variant {
		case "", ProtocolBaseline:
			if got.Proto != (Protocol{}) {
				t.Errorf("%s: baseline not normalized to the zero value: %+v", c.name, got.Proto)
			}
		case ProtocolRetransmit:
			if got.Proto.Passes < 2 {
				t.Errorf("%s: retransmit passes not defaulted: %+v", c.name, got.Proto)
			}
		}
	}
}

// TestVariantSchedule pins the retransmit schedule arithmetic: the Voting
// phase repeats its q-round push schedule Passes times, everything after it
// shifts, and the baseline schedule (and every other variant's) stays at
// 4q+1 rounds exactly as the paper defines it.
func TestVariantSchedule(t *testing.T) {
	base := MustParams(16, 2, 1) // Q = 4
	if got := base.TotalRounds(); got != 17 {
		t.Fatalf("baseline TotalRounds = %d, want 17", got)
	}
	lr, err := base.WithProtocol(Protocol{Variant: ProtocolLiveRetarget})
	if err != nil {
		t.Fatal(err)
	}
	if got := lr.TotalRounds(); got != 17 {
		t.Fatalf("live-retarget TotalRounds = %d, want 17 (schedule must not change)", got)
	}
	rt, err := base.WithProtocol(Protocol{Variant: ProtocolRetransmit, Passes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.TotalRounds(); got != (3+3)*4+1 {
		t.Fatalf("retransmit TotalRounds = %d, want %d", got, (3+3)*4+1)
	}
	cases := []struct {
		round int
		want  Phase
	}{
		{0, PhaseCommitment}, {3, PhaseCommitment},
		{4, PhaseVoting}, {7, PhaseVoting}, // pass 1
		{8, PhaseVoting}, {11, PhaseVoting}, // pass 2
		{12, PhaseVoting}, {15, PhaseVoting}, // pass 3
		{16, PhaseFindMin}, {19, PhaseFindMin},
		{20, PhaseCoherence}, {23, PhaseCoherence},
		{24, PhaseVerification}, {100, PhaseVerification},
	}
	for _, c := range cases {
		if got := rt.PhaseOf(c.round); got != c.want {
			t.Errorf("retransmit PhaseOf(%d) = %v, want %v", c.round, got, c.want)
		}
	}
	// The slot (which intention a voting round pushes) wraps per pass, so
	// every pass replays the same q declared votes in order.
	for _, c := range []struct{ round, slot int }{
		{4, 0}, {7, 3}, {8, 0}, {11, 3}, {12, 0}, {15, 3},
	} {
		if got := rt.votingSlot(c.round); got != c.slot {
			t.Errorf("retransmit votingSlot(%d) = %d, want %d", c.round, got, c.slot)
		}
	}
}

func TestPhaseString(t *testing.T) {
	for ph, want := range map[Phase]string{
		PhaseCommitment: "commitment", PhaseVoting: "voting",
		PhaseFindMin: "find-min", PhaseCoherence: "coherence",
		PhaseVerification: "verification", Phase(42): "phase(42)",
	} {
		if got := ph.String(); got != want {
			t.Errorf("Phase(%d).String() = %q, want %q", int(ph), got, want)
		}
	}
}

func TestMessageSizesScalePolylog(t *testing.T) {
	// The certificate of an agent with Θ(log n) votes must be O(log² n) bits.
	for _, n := range []int{64, 1024, 16384} {
		p := MustParams(n, 2, 2)
		w := make([]WEntry, p.Q) // ~γ·log n votes
		cert := Certificate{P: p, W: w}
		logn := math.Log2(float64(n))
		if got := float64(cert.SizeBits()); got > 20*logn*logn {
			t.Errorf("n=%d: cert size %v bits exceeds 20·log²n = %v", n, got, 20*logn*logn)
		}
		in := Intentions{P: p, Votes: make([]Intent, p.Q)}
		if got := float64(in.SizeBits()); got > 20*logn*logn {
			t.Errorf("n=%d: intentions size %v bits exceeds 20·log²n", n, got)
		}
		v := Vote{P: p}
		if got := float64(v.SizeBits()); got > 10*logn {
			t.Errorf("n=%d: vote size %v bits exceeds 10·log n", n, got)
		}
	}
}
