package core

import (
	"testing"

	"repro/internal/gossip"
	"repro/internal/rng"
	"repro/internal/topo"
)

func newTestAgent(t *testing.T, id, n int) *Agent {
	t.Helper()
	p := MustParams(n, 2, 1)
	return NewAgent(id, p, Color(id%2), topo.NewComplete(n), rng.New(uint64(id)+1))
}

// declWith builds a well-formed q-length declaration whose first entry is
// the given intent; the rest are filler votes for the last node.
func declWith(p Params, first Intent) []Intent {
	votes := make([]Intent, p.Q)
	votes[0] = first
	for i := 1; i < p.Q; i++ {
		votes[i] = Intent{H: uint64(i), Z: int32(p.N - 1)}
	}
	return votes
}

func TestNewAgentIntentions(t *testing.T) {
	a := newTestAgent(t, 0, 16)
	p := a.p
	if len(a.Intentions()) != p.Q {
		t.Fatalf("intentions count = %d, want q = %d", len(a.Intentions()), p.Q)
	}
	for i, in := range a.Intentions() {
		if in.H < 1 || in.H > p.M {
			t.Fatalf("intent %d value %d outside [1, m]", i, in.H)
		}
		if in.Z < 0 || int(in.Z) >= p.N {
			t.Fatalf("intent %d target %d outside [n]", i, in.Z)
		}
	}
}

func TestNewAgentRejectsInvalidColor(t *testing.T) {
	p := MustParams(8, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid color accepted")
		}
	}()
	NewAgent(0, p, Color(7), topo.NewComplete(8), rng.New(1))
}

func TestActSchedule(t *testing.T) {
	a := newTestAgent(t, 3, 16)
	q := a.p.Q

	for r := 0; r < q; r++ {
		act := a.Act(r)
		if act.Kind != gossip.ActPull {
			t.Fatalf("round %d (commitment): kind = %v, want pull", r, act.Kind)
		}
		if _, ok := act.Payload.(IntentQuery); !ok {
			t.Fatalf("round %d: query type %T", r, act.Payload)
		}
	}
	for r := q; r < 2*q; r++ {
		act := a.Act(r)
		if act.Kind != gossip.ActPush {
			t.Fatalf("round %d (voting): kind = %v, want push", r, act.Kind)
		}
		v, ok := act.Payload.(*Vote)
		if !ok {
			t.Fatalf("round %d: payload type %T", r, act.Payload)
		}
		in := a.Intentions()[r-q]
		if act.To != int(in.Z) || v.Value != in.H {
			t.Fatalf("round %d: pushed (%d,%d), declared (%d,%d)", r, act.To, v.Value, in.Z, in.H)
		}
	}
	for r := 2 * q; r < 3*q; r++ {
		act := a.Act(r)
		if act.Kind != gossip.ActPull {
			t.Fatalf("round %d (find-min): kind = %v, want pull", r, act.Kind)
		}
		if _, ok := act.Payload.(CertQuery); !ok {
			t.Fatalf("round %d: query type %T", r, act.Payload)
		}
	}
	for r := 3 * q; r < 4*q; r++ {
		act := a.Act(r)
		if act.Kind != gossip.ActPush {
			t.Fatalf("round %d (coherence): kind = %v, want push", r, act.Kind)
		}
		if _, ok := act.Payload.(*Certificate); !ok {
			t.Fatalf("round %d: payload type %T", r, act.Payload)
		}
	}
	act := a.Act(4 * q)
	if act.Kind != gossip.ActNone {
		t.Fatalf("verification round: kind = %v, want none", act.Kind)
	}
	if !a.Decided() {
		t.Fatal("agent not decided after verification round")
	}
}

func TestHandlePushCollectsVotes(t *testing.T) {
	a := newTestAgent(t, 0, 16)
	q := a.p.Q
	a.HandlePush(q, 5, Vote{P: a.p, Value: 100})
	a.HandlePush(q+1, 6, Vote{P: a.p, Value: 200})
	w := a.VotesReceived()
	if len(w) != 2 || w[0] != (WEntry{5, 100}) || w[1] != (WEntry{6, 200}) {
		t.Fatalf("W = %v", w)
	}
	if a.K() != 300%a.p.M {
		t.Fatalf("K = %d", a.K())
	}
}

func TestHandlePushDropsMalformedVotes(t *testing.T) {
	a := newTestAgent(t, 0, 16)
	q := a.p.Q
	a.HandlePush(q, 5, Vote{P: a.p, Value: 0})         // reserved zero
	a.HandlePush(q, 5, Vote{P: a.p, Value: a.p.M + 1}) // overflow
	a.HandlePush(q, 5, IntentQuery{P: a.p})            // wrong type
	if len(a.VotesReceived()) != 0 {
		t.Fatalf("malformed votes accepted: %v", a.VotesReceived())
	}
}

func TestHandlePushIgnoresVotesOutsideVotingPhase(t *testing.T) {
	a := newTestAgent(t, 0, 16)
	a.HandlePush(0, 5, Vote{P: a.p, Value: 10})       // commitment phase
	a.HandlePush(2*a.p.Q, 5, Vote{P: a.p, Value: 10}) // find-min phase
	if len(a.VotesReceived()) != 0 {
		t.Fatal("vote accepted outside voting phase")
	}
}

func TestHandlePushDropsVotesFromFaultyMarked(t *testing.T) {
	a := newTestAgent(t, 0, 16)
	a.HandlePullReply(0, 5, nil) // mark 5 faulty during commitment
	a.HandlePush(a.p.Q, 5, Vote{P: a.p, Value: 10})
	if len(a.VotesReceived()) != 0 {
		t.Fatal("vote from faulty-marked peer accepted")
	}
}

func TestHandlePullPerPhase(t *testing.T) {
	a := newTestAgent(t, 0, 16)
	q := a.p.Q

	if in, ok := a.HandlePull(0, 1, IntentQuery{P: a.p}).(Intentions); !ok || len(in.Votes) != q {
		t.Fatal("commitment pull did not return intentions")
	}
	if a.HandlePull(q, 1, CertQuery{P: a.p}) != nil {
		t.Fatal("voting-phase pull answered")
	}
	// Prime the certificate by entering find-min.
	a.Act(2 * q)
	reply := a.HandlePull(2*q, 1, CertQuery{P: a.p})
	cert, ok := reply.(*Certificate)
	if !ok || cert.Owner != 0 {
		t.Fatalf("find-min pull returned %T %v", reply, reply)
	}
	if a.HandlePull(4*q, 1, CertQuery{P: a.p}) != nil {
		t.Fatal("verification-phase pull answered")
	}
}

func TestHandlePullReplyCommitment(t *testing.T) {
	a := newTestAgent(t, 0, 16)
	a.HandlePullReply(0, 3, Intentions{P: a.p, Votes: declWith(a.p, Intent{H: 7, Z: 0})})
	got, ok := a.Log().Declared(3)
	if !ok || got[0].H != 7 {
		t.Fatal("declaration not recorded")
	}
	// Garbage reply marks faulty.
	a.HandlePullReply(0, 4, Vote{P: a.p, Value: 1})
	if !a.Log().Faulty(4) {
		t.Fatal("garbage reply did not mark faulty")
	}
	// First declaration is binding.
	a.HandlePullReply(1, 3, Intentions{P: a.p, Votes: declWith(a.p, Intent{H: 99, Z: 0})})
	got, _ = a.Log().Declared(3)
	if got[0].H != 7 {
		t.Fatal("second declaration overwrote the first")
	}
}

func TestHandlePullReplyRejectsMalformedDeclarations(t *testing.T) {
	a := newTestAgent(t, 0, 16)
	p := a.p
	cases := map[string][]Intent{
		"too short":             {{H: 1, Z: 0}},
		"too long":              append(declWith(p, Intent{H: 1, Z: 0}), Intent{H: 1, Z: 0}),
		"zero vote":             declWith(p, Intent{H: 0, Z: 0}),
		"huge vote":             declWith(p, Intent{H: p.M + 1, Z: 0}),
		"bad target (negative)": declWith(p, Intent{H: 1, Z: -1}),
		"bad target (too big)":  declWith(p, Intent{H: 1, Z: int32(p.N)}),
	}
	voter := int32(3)
	for name, votes := range cases {
		a2 := newTestAgent(t, 0, 16)
		a2.HandlePullReply(0, int(voter), Intentions{P: p, Votes: votes})
		if !a2.Log().Faulty(voter) {
			t.Errorf("%s: malformed declaration accepted", name)
		}
		_ = name
	}
}

func TestHandlePullReplyFindMinAdoptsSmaller(t *testing.T) {
	a := newTestAgent(t, 0, 16)
	q := a.p.Q
	a.HandlePush(q, 5, Vote{P: a.p, Value: 50}) // gives a.K() = 50
	a.Act(2 * q)                                // finalize own cert
	own := a.MinCertificate()
	if own.K != 50 {
		t.Fatalf("own cert K = %d", own.K)
	}
	smaller := &Certificate{P: a.p, K: 10, Color: 1, Owner: 7, W: []WEntry{{1, 10}}}
	a.HandlePullReply(2*q, 7, smaller)
	if a.MinCertificate().K != 10 {
		t.Fatal("smaller certificate not adopted")
	}
	bigger := &Certificate{P: a.p, K: 40, Color: 0, Owner: 9}
	a.HandlePullReply(2*q, 9, bigger)
	if a.MinCertificate().K != 10 {
		t.Fatal("bigger certificate adopted")
	}
	// Nil and garbage replies are ignored.
	a.HandlePullReply(2*q, 3, nil)
	a.HandlePullReply(2*q, 3, Vote{P: a.p, Value: 1})
	if a.MinCertificate().K != 10 {
		t.Fatal("garbage reply changed certificate")
	}
}

func TestFindMinReplyIsStartOfRoundSnapshot(t *testing.T) {
	// An agent that adopts a smaller certificate mid-round must keep
	// answering with the snapshot taken at Act time (one-hop-per-round
	// propagation).
	a := newTestAgent(t, 0, 16)
	q := a.p.Q
	a.HandlePush(q, 5, Vote{P: a.p, Value: 50}) // own k = 50, adoptable from below
	a.Act(2 * q)                                // snapshot own cert
	ownK := a.MinCertificate().K
	smaller := &Certificate{P: a.p, K: 1, Color: 1, Owner: 7, W: []WEntry{{1, 1}}}
	a.HandlePullReply(2*q, 7, smaller)
	reply := a.HandlePull(2*q, 3, CertQuery{P: a.p}).(*Certificate)
	if reply.K != ownK {
		t.Fatalf("reply K = %d, want start-of-round snapshot %d", reply.K, ownK)
	}
	// Next round's Act refreshes the snapshot.
	a.Act(2*q + 1)
	reply = a.HandlePull(2*q+1, 3, CertQuery{P: a.p}).(*Certificate)
	if reply.K != 1 {
		t.Fatalf("next-round reply K = %d, want 1", reply.K)
	}
}

func TestCoherenceMismatchFails(t *testing.T) {
	a := newTestAgent(t, 0, 16)
	q := a.p.Q
	a.Act(3 * q) // enters coherence with own cert
	mine := a.MinCertificate()
	a.HandlePush(3*q, 2, mine.Clone())
	if a.Failed() {
		t.Fatal("identical certificate caused failure")
	}
	other := mine.Clone()
	other.K++
	a.HandlePush(3*q, 2, other)
	if !a.Failed() {
		t.Fatal("mismatching certificate not detected")
	}
}

func TestVerifyAcceptsOwnHonestRun(t *testing.T) {
	// A lone agent that voted only for itself verifies successfully: its W
	// matches its own declared intents for itself.
	p := MustParams(2, 2, 1)
	a := NewAgent(0, p, 0, topo.NewComplete(2), rng.New(3))
	// Simulate the voting phase: agent receives its own declared self-votes.
	for _, in := range a.Intentions() {
		if in.Z == 0 {
			a.HandlePush(p.Q, 0, Vote{P: p, Value: in.H})
		}
	}
	a.Act(2 * p.Q)
	a.Act(4 * p.Q)
	if a.Failed() {
		t.Fatal("honest self-contained run failed verification")
	}
	if a.FinalColor() != 0 {
		t.Fatalf("FinalColor = %d", a.FinalColor())
	}
}

func TestVerifyFailsOnForgedMinCert(t *testing.T) {
	a := newTestAgent(t, 0, 16)
	q := a.p.Q
	// Record a commitment from voter 3 that includes a vote for agent 9.
	a.HandlePullReply(0, 3, Intentions{P: a.p, Votes: declWith(a.p, Intent{H: 42, Z: 9})})
	// Give the agent a vote so its own certificate has k = 50 > forged k.
	a.HandlePush(q, 5, Vote{P: a.p, Value: 50})
	a.Act(2 * q)
	// Adversary presents a forged winning certificate for owner 9 without
	// voter 3's committed vote.
	forged := &Certificate{P: a.p, K: 5, W: []WEntry{{Voter: 8, Value: 5}}, Color: 1, Owner: 9}
	a.HandlePullReply(2*q, 5, forged)
	a.Act(4 * q)
	if !a.Failed() || a.FinalColor() != ColorBot {
		t.Fatal("forged certificate passed verification")
	}
}

func TestAgentAccessors(t *testing.T) {
	a := newTestAgent(t, 4, 16)
	if a.ID() != 4 || a.InitialColor() != 0 {
		t.Fatalf("accessors: id=%d color=%d", a.ID(), a.InitialColor())
	}
	if a.Decided() {
		t.Fatal("decided before verification")
	}
	if a.FinalColor() != ColorBot {
		t.Fatal("FinalColor before decision should be ⊥")
	}
	if a.Output() != int(ColorBot) {
		t.Fatal("Output mismatch")
	}
}
