package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topo"
)

// The allocation budgets below pin the hot-path overhaul: the Find-Min adopt
// path must be allocation-free (certificates travel by pointer, not Clone),
// and a pooled cooperative run must stay within a tiny fixed budget so the
// Monte-Carlo batch path cannot silently regress to per-trial rebuilding.

func TestFindMinAdoptAllocFree(t *testing.T) {
	p := MustParams(64, 2, 2)
	net := topo.NewComplete(p.N)
	a := NewAgent(0, p, 0, net, rng.New(1))
	findMin := 2 * p.Q // first Find-Min round

	// Receive one vote so the agent's own k is nonzero and a k=0 certificate
	// strictly wins, then finalize (Act also snapshots the reply cert).
	a.HandlePush(p.Q, 3, Vote{P: p, Value: 7})
	a.Act(findMin)

	smaller := &Certificate{P: p, K: 0, W: []WEntry{{Voter: 3, Value: p.M}}, Color: 1, Owner: 3}
	larger := &Certificate{P: p, K: a.MinCertificate().K, W: a.MinCertificate().W,
		Color: a.MinCertificate().Color, Owner: int32(p.N - 1)}

	// Both the adopting reply (smaller k) and the rejecting reply must not
	// allocate: adoption is a pointer assignment.
	allocs := testing.AllocsPerRun(200, func() {
		a.HandlePullReply(findMin, 3, smaller)
		a.HandlePullReply(findMin, 4, larger)
	})
	if allocs != 0 {
		t.Fatalf("Find-Min adopt path allocates %v objects per reply pair, want 0", allocs)
	}
	if a.MinCertificate() != smaller {
		t.Fatal("agent did not adopt the smaller certificate by pointer")
	}

	// The Coherence-phase coherence check against the adopted (identical
	// pointer) certificate must not allocate either.
	coherence := 3 * p.Q
	allocs = testing.AllocsPerRun(200, func() {
		a.HandlePush(coherence, 5, smaller)
	})
	if allocs != 0 {
		t.Fatalf("Coherence check allocates %v objects per push, want 0", allocs)
	}
	if a.Failed() {
		t.Fatal("coherent push failed the agent")
	}
}

func TestPooledRunMatchesFreshRun(t *testing.T) {
	p := MustParams(96, 3, DefaultGamma)
	colors := UniformColors(p.N, 3)
	faulty := WorstCaseFaults(p.N, 0.25)
	pool := &RunPool{}
	for seed := uint64(1); seed <= 12; seed++ {
		fresh, err := Run(RunConfig{Params: p, Colors: colors, Faulty: faulty, Seed: seed, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := Run(RunConfig{Params: p, Colors: colors, Faulty: faulty, Seed: seed, Workers: 1, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Outcome != pooled.Outcome || fresh.Metrics != pooled.Metrics ||
			fresh.Rounds != pooled.Rounds || fresh.Good != pooled.Good {
			t.Fatalf("seed %d: pooled run diverged from fresh run\nfresh:  %+v %+v\npooled: %+v %+v",
				seed, fresh.Outcome, fresh.Metrics, pooled.Outcome, pooled.Metrics)
		}
	}
}

func TestPooledRunSteadyStateAllocs(t *testing.T) {
	p := MustParams(256, 2, DefaultGamma)
	colors := UniformColors(p.N, 2)
	faulty := WorstCaseFaults(p.N, 0.3)
	pool := &RunPool{}
	cfg := RunConfig{Params: p, Colors: colors, Faulty: faulty, Workers: 1, Pool: pool}

	// Warm the pool: first run sizes every buffer.
	cfg.Seed = 1
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	seed := uint64(2)
	allocs := testing.AllocsPerRun(5, func() {
		cfg.Seed = seed
		seed++
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// A full n=256 execution (~100 rounds, ~175 active agents) previously
	// allocated ~50k objects; the pooled budget leaves headroom only for
	// incidental growth (map rehashing, occasional slice growth on an
	// unusually vote-heavy seed, runtime variance across Go versions) —
	// measured ~66 at the time of the overhaul.
	const budget = 128
	if allocs > budget {
		t.Fatalf("pooled steady-state run allocates %v objects, budget %d", allocs, budget)
	}
}
