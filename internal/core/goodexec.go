package core

import "math"

// GoodExecution reports whether an execution satisfied the three properties
// of Definition 2, which Lemma 3 proves hold w.h.p. when at most αn agents
// are faulty:
//
//  1. every active agent received Θ(log n) votes,
//  2. the kᵤ values are pairwise distinct (so k_min is unique),
//  3. after Find-Min every active agent holds the same minimal certificate.
//
// The bounds for property 1 are the concrete Chernoff constants used in the
// Lemma 3 sketch: each active agent receives q·|A| independent u.a.r. votes
// in expectation |A|·q/n, so we test against [expected/4, 4·expected], a
// generous (β₁, β₂) pair that a good execution should satisfy easily.
type GoodExecution struct {
	VoteLowerOK  bool // every active agent got ≥ expected/4 votes
	VoteUpperOK  bool // every active agent got ≤ 4·expected votes
	DistinctK    bool // property 2
	CertsAgree   bool // property 3
	MinVotes     int  // smallest vote count over active agents
	MaxVotes     int  // largest vote count over active agents
	ActiveAgents int
}

// Good reports whether all properties hold.
func (g GoodExecution) Good() bool {
	return g.VoteLowerOK && g.VoteUpperOK && g.DistinctK && g.CertsAgree
}

// CheckGoodExecution inspects a finished execution's honest agents. The
// agents slice must contain the honest (protocol-following) active agents;
// deviating coalition members are excluded because Definition 5 restates the
// properties for them separately.
func CheckGoodExecution(p Params, agents []*Agent) GoodExecution {
	g := GoodExecution{
		VoteLowerOK: true,
		VoteUpperOK: true,
		DistinctK:   true,
		CertsAgree:  true,
		MinVotes:    math.MaxInt,
	}
	g.ActiveAgents = len(agents)
	if len(agents) == 0 {
		g.MinVotes = 0
		return g
	}
	expected := float64(len(agents)) * float64(p.Q) / float64(p.N)
	lower := int(math.Floor(expected / 4))
	upper := int(math.Ceil(expected * 4))

	seenK := make(map[uint64]bool, len(agents))
	var ref *Certificate
	for _, a := range agents {
		nv := len(a.VotesReceived())
		if nv < g.MinVotes {
			g.MinVotes = nv
		}
		if nv > g.MaxVotes {
			g.MaxVotes = nv
		}
		if nv < lower {
			g.VoteLowerOK = false
		}
		if nv > upper {
			g.VoteUpperOK = false
		}
		k := a.K()
		if seenK[k] {
			g.DistinctK = false
		}
		seenK[k] = true
		mc := a.MinCertificate()
		if ref == nil {
			ref = mc
			continue
		}
		if !ref.Equal(mc) {
			g.CertsAgree = false
		}
	}
	return g
}
