package core

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestColorValid(t *testing.T) {
	if ColorBot.Valid(5) {
		t.Fatal("⊥ reported valid")
	}
	if !Color(0).Valid(1) || !Color(4).Valid(5) {
		t.Fatal("valid colors rejected")
	}
	if Color(5).Valid(5) {
		t.Fatal("out-of-palette color accepted")
	}
}

func TestCertificateEqualOrderInsensitive(t *testing.T) {
	p := MustParams(8, 2, 1)
	a := &Certificate{P: p, K: 5, Color: 1, Owner: 3,
		W: []WEntry{{1, 10}, {2, 20}, {1, 30}}}
	b := &Certificate{P: p, K: 5, Color: 1, Owner: 3,
		W: []WEntry{{2, 20}, {1, 30}, {1, 10}}}
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("permuted W broke equality")
	}
}

func TestCertificateEqualDetectsDifferences(t *testing.T) {
	p := MustParams(8, 2, 1)
	base := func() *Certificate {
		return &Certificate{P: p, K: 5, Color: 1, Owner: 3, W: []WEntry{{1, 10}, {2, 20}}}
	}
	a := base()
	for name, mutate := range map[string]func(c *Certificate){
		"k":          func(c *Certificate) { c.K = 6 },
		"color":      func(c *Certificate) { c.Color = 0 },
		"owner":      func(c *Certificate) { c.Owner = 4 },
		"vote value": func(c *Certificate) { c.W[0].Value = 11 },
		"voter":      func(c *Certificate) { c.W[0].Voter = 7 },
		"extra vote": func(c *Certificate) { c.W = append(c.W, WEntry{3, 30}) },
		"fewer":      func(c *Certificate) { c.W = c.W[:1] },
	} {
		m := base()
		mutate(m)
		if a.Equal(m) {
			t.Errorf("mutation %q not detected", name)
		}
	}
}

func TestCertificateEqualNil(t *testing.T) {
	var nilCert *Certificate
	p := MustParams(8, 2, 1)
	c := &Certificate{P: p}
	if nilCert.Equal(c) || c.Equal(nilCert) {
		t.Fatal("nil compared equal to non-nil")
	}
	if !nilCert.Equal(nil) {
		t.Fatal("nil != nil")
	}
}

func TestCertificateCloneIsDeep(t *testing.T) {
	p := MustParams(8, 2, 1)
	orig := &Certificate{P: p, K: 1, W: []WEntry{{1, 10}}}
	cp := orig.Clone()
	cp.W[0].Value = 99
	cp.K = 2
	if orig.W[0].Value != 10 || orig.K != 1 {
		t.Fatal("Clone aliases the original")
	}
	if (*Certificate)(nil).Clone() != nil {
		t.Fatal("Clone of nil not nil")
	}
}

func TestCertificateLess(t *testing.T) {
	p := MustParams(8, 2, 1)
	a := &Certificate{P: p, K: 3, Owner: 5}
	b := &Certificate{P: p, K: 4, Owner: 1}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("K ordering wrong")
	}
	c := &Certificate{P: p, K: 3, Owner: 2}
	if !c.Less(a) || a.Less(c) {
		t.Fatal("owner tiebreak wrong")
	}
	if a.Less(a) {
		t.Fatal("Less not irreflexive")
	}
}

func TestCertificateString(t *testing.T) {
	if (*Certificate)(nil).String() == "" {
		t.Fatal("nil String empty")
	}
	p := MustParams(8, 2, 1)
	c := &Certificate{P: p, K: 7, Owner: 2, Color: 1, W: []WEntry{{0, 1}}}
	if s := c.String(); s == "" {
		t.Fatal("String empty")
	}
}

func TestSumVotesModBasic(t *testing.T) {
	if got := SumVotesMod(nil, 100); got != 0 {
		t.Fatalf("empty sum = %d", got)
	}
	w := []WEntry{{0, 30}, {1, 50}, {2, 40}}
	if got := SumVotesMod(w, 100); got != 20 {
		t.Fatalf("sum mod 100 = %d, want 20", got)
	}
}

func TestSumVotesModNoOverflow(t *testing.T) {
	// Values near m with m near 2^60: a naive sum of 1000 entries would
	// overflow uint64; modular accumulation must not.
	m := uint64(1) << 60
	w := make([]WEntry, 1000)
	for i := range w {
		w[i] = WEntry{Voter: int32(i), Value: m - 1}
	}
	want := (1000 * (m - 1)) % m // computed as: (-1000) mod m
	want = m - 1000%m
	if got := SumVotesMod(w, m); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestSumVotesModProperty(t *testing.T) {
	// Splitting a vote multiset in two and summing mod m commutes.
	p := MustParams(64, 2, 1)
	r := rng.New(5)
	f := func(cut uint8) bool {
		w := make([]WEntry, 50)
		for i := range w {
			w[i] = WEntry{Voter: int32(i), Value: r.Uint64n(p.M) + 1}
		}
		c := int(cut) % len(w)
		total := SumVotesMod(w, p.M)
		split := (SumVotesMod(w[:c], p.M) + SumVotesMod(w[c:], p.M)) % p.M
		return total == split
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadSizesPositive(t *testing.T) {
	p := MustParams(16, 2, 1)
	payloads := []interface{ SizeBits() int }{
		Intentions{P: p, Votes: make([]Intent, p.Q)},
		Vote{P: p, Value: 1},
		IntentQuery{P: p},
		CertQuery{P: p},
		&Certificate{P: p},
	}
	for i, pl := range payloads {
		if pl.SizeBits() <= 0 {
			t.Errorf("payload %d has non-positive size", i)
		}
	}
}
