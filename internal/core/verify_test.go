package core

import (
	"errors"
	"testing"

	"repro/internal/rng"
)

func TestCommitmentLogFirstDeclarationBinding(t *testing.T) {
	l := NewCommitmentLog()
	if !l.Record(3, []Intent{{H: 10, Z: 1}}) {
		t.Fatal("first Record rejected")
	}
	if l.Record(3, []Intent{{H: 99, Z: 1}}) {
		t.Fatal("second Record accepted")
	}
	in, ok := l.Declared(3)
	if !ok || len(in) != 1 || in[0].H != 10 {
		t.Fatalf("Declared = %v, %v", in, ok)
	}
}

func TestCommitmentLogMarkFaulty(t *testing.T) {
	l := NewCommitmentLog()
	l.MarkFaulty(5)
	if !l.Faulty(5) || !l.Known(5) {
		t.Fatal("faulty mark not recorded")
	}
	// A mark after a declaration must not erase the declaration.
	l.Record(7, []Intent{{H: 1, Z: 0}})
	l.MarkFaulty(7)
	if l.Faulty(7) {
		t.Fatal("declaration overwritten by faulty mark")
	}
	// A declaration after a mark must not unmark.
	if l.Record(5, []Intent{{H: 2, Z: 0}}) {
		t.Fatal("declaration accepted after faulty mark")
	}
	if l.Size() != 2 {
		t.Fatalf("Size = %d, want 2", l.Size())
	}
}

func TestExpectedVotesFor(t *testing.T) {
	l := NewCommitmentLog()
	l.Record(1, []Intent{{H: 30, Z: 9}, {H: 10, Z: 9}, {H: 20, Z: 4}})
	got := l.ExpectedVotesFor(1, 9)
	if len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("ExpectedVotesFor = %v, want sorted [10 30]", got)
	}
	if len(l.ExpectedVotesFor(1, 5)) != 0 {
		t.Fatal("votes for unrelated target")
	}
	l.MarkFaulty(2)
	if len(l.ExpectedVotesFor(2, 9)) != 0 {
		t.Fatal("faulty voter has expected votes")
	}
	if len(l.ExpectedVotesFor(99, 9)) != 0 {
		t.Fatal("unknown voter has expected votes")
	}
}

// buildHonestCert builds a certificate and a verifier log that are mutually
// consistent, as they would be after an honest execution.
func buildHonestCert(t *testing.T, p Params) (*Certificate, *CommitmentLog) {
	t.Helper()
	r := rng.New(1)
	owner := int32(2)
	log := NewCommitmentLog()
	var w []WEntry
	// Three voters declare intentions; all their votes for owner are in W.
	for voter := int32(3); voter <= 5; voter++ {
		intents := []Intent{
			{H: r.Uint64n(p.M) + 1, Z: owner},
			{H: r.Uint64n(p.M) + 1, Z: (owner + 1) % int32(p.N)},
		}
		log.Record(voter, intents)
		for _, in := range intents {
			if in.Z == owner {
				w = append(w, WEntry{Voter: voter, Value: in.H})
			}
		}
	}
	// One voter the verifier knows nothing about also voted.
	w = append(w, WEntry{Voter: 6, Value: 77})
	return &Certificate{P: p, K: SumVotesMod(w, p.M), W: w, Color: 1, Owner: owner}, log
}

func TestVerifyAcceptsHonestCertificate(t *testing.T) {
	p := MustParams(8, 2, 1)
	cert, log := buildHonestCert(t, p)
	if err := VerifyCertificate(p, cert, log); err != nil {
		t.Fatalf("honest certificate rejected: %v", err)
	}
}

func TestVerifyRejectsNil(t *testing.T) {
	p := MustParams(8, 2, 1)
	if err := VerifyCertificate(p, nil, NewCommitmentLog()); err == nil {
		t.Fatal("nil certificate accepted")
	}
}

func TestVerifyRejectsBadK(t *testing.T) {
	p := MustParams(8, 2, 1)
	cert, log := buildHonestCert(t, p)
	cert.K = (cert.K + 1) % p.M
	if err := VerifyCertificate(p, cert, log); err == nil {
		t.Fatal("k ≠ ΣW accepted")
	}
}

func TestVerifyRejectsKOutOfRange(t *testing.T) {
	p := MustParams(8, 2, 1)
	cert, log := buildHonestCert(t, p)
	cert.K = p.M
	if err := VerifyCertificate(p, cert, log); err == nil {
		t.Fatal("k ≥ m accepted")
	}
}

func TestVerifyRejectsAlteredVote(t *testing.T) {
	p := MustParams(8, 2, 1)
	cert, log := buildHonestCert(t, p)
	// Alter a committed vote and fix up k so the sum check passes: the
	// commitment consistency check must still catch it.
	old := cert.W[0].Value
	cert.W[0].Value = old%p.M + 1
	if cert.W[0].Value == old {
		cert.W[0].Value++
	}
	cert.K = SumVotesMod(cert.W, p.M)
	if err := VerifyCertificate(p, cert, log); err == nil {
		t.Fatal("altered committed vote accepted")
	}
}

func TestVerifyRejectsDroppedVote(t *testing.T) {
	p := MustParams(8, 2, 1)
	cert, log := buildHonestCert(t, p)
	// Drop a committed vote (the cheating-winner strategy for lowering k).
	cert.W = cert.W[1:]
	cert.K = SumVotesMod(cert.W, p.M)
	if err := VerifyCertificate(p, cert, log); err == nil {
		t.Fatal("dropped committed vote accepted")
	}
}

func TestVerifyRejectsExtraVote(t *testing.T) {
	p := MustParams(8, 2, 1)
	cert, log := buildHonestCert(t, p)
	// A known voter "voted" a second time beyond its declaration.
	cert.W = append(cert.W, WEntry{Voter: 3, Value: 123})
	cert.K = SumVotesMod(cert.W, p.M)
	if err := VerifyCertificate(p, cert, log); err == nil {
		t.Fatal("extra undeclared vote from known voter accepted")
	}
}

func TestVerifyRejectsVoteFromFaultyMarked(t *testing.T) {
	p := MustParams(8, 2, 1)
	cert, log := buildHonestCert(t, p)
	log.MarkFaulty(7)
	cert.W = append(cert.W, WEntry{Voter: 7, Value: 55})
	cert.K = SumVotesMod(cert.W, p.M)
	if err := VerifyCertificate(p, cert, log); err == nil {
		t.Fatal("vote from faulty-marked voter accepted")
	}
}

func TestVerifyAllowsUnknownVoters(t *testing.T) {
	p := MustParams(8, 2, 1)
	cert, log := buildHonestCert(t, p)
	cert.W = append(cert.W, WEntry{Voter: 0, Value: 100})
	cert.K = SumVotesMod(cert.W, p.M)
	if err := VerifyCertificate(p, cert, log); err != nil {
		t.Fatalf("vote from unknown voter rejected: %v", err)
	}
}

func TestVerifyRejectsStructuralJunk(t *testing.T) {
	p := MustParams(8, 2, 1)
	base, log := buildHonestCert(t, p)
	for name, mutate := range map[string]func(*Certificate){
		"owner negative":  func(c *Certificate) { c.Owner = -1 },
		"owner too large": func(c *Certificate) { c.Owner = int32(p.N) },
		"color bot":       func(c *Certificate) { c.Color = ColorBot },
		"color too large": func(c *Certificate) { c.Color = Color(p.NumColors) },
		"zero vote value": func(c *Certificate) {
			c.W = append(c.W, WEntry{Voter: 6, Value: 0})
		},
		"huge vote value": func(c *Certificate) {
			c.W = append(c.W, WEntry{Voter: 6, Value: p.M + 1})
		},
		"voter out of range": func(c *Certificate) {
			c.W = append(c.W, WEntry{Voter: 99, Value: 5})
		},
	} {
		c := base.Clone()
		mutate(c)
		c.K = SumVotesMod(c.W, p.M)
		if c.K >= p.M {
			c.K = 0 // keep the k-range check out of the way for value tests
		}
		if err := VerifyCertificate(p, c, log); err == nil {
			t.Errorf("structural junk %q accepted", name)
		}
	}
}

// withVariant derives variant params or fails the test.
func withVariant(t *testing.T, p Params, proto Protocol) Params {
	t.Helper()
	vp, err := p.WithProtocol(proto)
	if err != nil {
		t.Fatal(err)
	}
	return vp
}

// TestVerifyLiveRetargetAcceptsRetargetedVotes pins the sub-multiset rule:
// under live-retarget a vote's declared target is advisory, so a vote whose
// value was declared for a *different* target is consistent — exactly the
// certificate shape the baseline rejects as an extra undeclared vote.
func TestVerifyLiveRetargetAcceptsRetargetedVotes(t *testing.T) {
	p := MustParams(8, 2, 1)
	cert, log := buildHonestCert(t, p)
	// Voter 3's second intent was declared for another target; a re-sampled
	// push may legitimately land it at the owner.
	intents, _ := log.Declared(3)
	var other uint64
	for _, in := range intents {
		if in.Z != cert.Owner {
			other = in.H
		}
	}
	cert.W = append(cert.W, WEntry{Voter: 3, Value: other})
	cert.K = SumVotesMod(cert.W, p.M)
	if err := VerifyCertificate(p, cert, log); err == nil {
		t.Fatal("baseline accepted a retargeted vote")
	}
	lr := withVariant(t, p, Protocol{Variant: ProtocolLiveRetarget})
	if err := VerifyCertificate(lr, cert, log); err != nil {
		t.Fatalf("live-retarget rejected a retargeted declared vote: %v", err)
	}
}

// TestVerifyLiveRetargetRejectsUndeclaredValue pins that values stay binding
// even when targets do not: a vote value the voter never declared for any
// target still rejects.
func TestVerifyLiveRetargetRejectsUndeclaredValue(t *testing.T) {
	p := MustParams(8, 2, 1)
	lr := withVariant(t, p, Protocol{Variant: ProtocolLiveRetarget})
	cert, log := buildHonestCert(t, p)
	cert.W = append(cert.W, WEntry{Voter: 3, Value: 424242 % p.M})
	cert.K = SumVotesMod(cert.W, p.M)
	if err := VerifyCertificate(lr, cert, log); !errors.Is(err, ErrVoteMismatch) {
		t.Fatalf("undeclared value under live-retarget: err = %v, want ErrVoteMismatch", err)
	}
}

// TestVerifyLiveRetargetSkipsMissingVotes pins the dropped check: a declaring
// voter absent from W is fine under live-retarget (the vote may have landed
// elsewhere), while the baseline must keep rejecting it.
func TestVerifyLiveRetargetSkipsMissingVotes(t *testing.T) {
	p := MustParams(8, 2, 1)
	cert, log := buildHonestCert(t, p)
	cert.W = cert.W[1:] // drop voter 3's only vote for the owner
	cert.K = SumVotesMod(cert.W, p.M)
	if err := VerifyCertificate(p, cert, log); !errors.Is(err, ErrMissingVotes) {
		t.Fatalf("baseline: err = %v, want ErrMissingVotes", err)
	}
	lr := withVariant(t, p, Protocol{Variant: ProtocolLiveRetarget})
	if err := VerifyCertificate(lr, cert, log); err != nil {
		t.Fatalf("live-retarget rejected an absent (retargeted) voter: %v", err)
	}
}

// TestVerifyLiveRetargetRejectsFaultyVoter pins that the faulty-voter rule
// survives the relaxation: a faulty-marked voter commits to nothing, so any
// vote from it fails the sub-multiset check.
func TestVerifyLiveRetargetRejectsFaultyVoter(t *testing.T) {
	p := MustParams(8, 2, 1)
	lr := withVariant(t, p, Protocol{Variant: ProtocolLiveRetarget})
	cert, log := buildHonestCert(t, p)
	log.MarkFaulty(7)
	cert.W = append(cert.W, WEntry{Voter: 7, Value: 55})
	cert.K = SumVotesMod(cert.W, p.M)
	if err := VerifyCertificate(lr, cert, log); !errors.Is(err, ErrVoteMismatch) {
		t.Fatalf("vote from faulty-marked voter under live-retarget: err = %v, want ErrVoteMismatch", err)
	}
}

// TestVerifyRelaxedToleratesBoundedViolations pins the k-of-q rule: with
// MinVotes = q − 2, up to two violating voters (missing or mismatched) are
// tolerated and the third rejects with the typed sentinel.
func TestVerifyRelaxedToleratesBoundedViolations(t *testing.T) {
	p := MustParams(32, 4, 1) // Q = 5
	if p.Q != 5 {
		t.Fatalf("Q = %d, want 5", p.Q)
	}
	rx := withVariant(t, p, Protocol{Variant: ProtocolRelaxed, MinVotes: p.Q - 2})
	drop := func(violations int) error {
		cert, log := buildHonestCert(t, p)
		// Voters 3..5 hold one committed vote each for the owner; dropping a
		// voter's entry from W is one missing-votes violation.
		cert.W = cert.W[violations:]
		cert.K = SumVotesMod(cert.W, p.M)
		return VerifyCertificate(rx, cert, log)
	}
	for _, v := range []int{0, 1, 2} {
		if err := drop(v); err != nil {
			t.Errorf("relaxed with %d violations (slack 2) rejected: %v", v, err)
		}
	}
	if err := drop(3); !errors.Is(err, ErrTooManyViolations) {
		t.Errorf("relaxed with 3 violations (slack 2): err = %v, want ErrTooManyViolations", err)
	}
	// A mismatched vote counts exactly like a missing one.
	cert, log := buildHonestCert(t, p)
	cert.W[0].Value = cert.W[0].Value%p.M + 1
	cert.K = SumVotesMod(cert.W, p.M)
	if err := VerifyCertificate(rx, cert, log); err != nil {
		t.Errorf("relaxed with 1 mismatch violation rejected: %v", err)
	}
	if err := VerifyCertificate(p, cert, log); err == nil {
		t.Error("baseline accepted an altered vote")
	}
}

// TestVerifyRetransmitStaysStrict pins that retransmission changes delivery,
// not judgment: the verifier under retransmit params behaves exactly like
// the baseline.
func TestVerifyRetransmitStaysStrict(t *testing.T) {
	p := MustParams(8, 2, 1)
	rt := withVariant(t, p, Protocol{Variant: ProtocolRetransmit, Passes: 3})
	cert, log := buildHonestCert(t, p)
	if err := VerifyCertificate(rt, cert, log); err != nil {
		t.Fatalf("honest certificate rejected under retransmit: %v", err)
	}
	cert.W[0].Value = cert.W[0].Value%p.M + 1
	cert.K = SumVotesMod(cert.W, p.M)
	if err := VerifyCertificate(rt, cert, log); !errors.Is(err, ErrVoteMismatch) {
		t.Fatalf("altered vote under retransmit: err = %v, want ErrVoteMismatch", err)
	}
}

func TestVerifyPropertyHonestCertsAlwaysAccepted(t *testing.T) {
	// Property: any certificate built by faithfully collecting declared
	// votes is accepted by a verifier holding any subset of the declarations.
	p := MustParams(32, 4, 1)
	master := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		r := master.Split(uint64(trial))
		owner := int32(r.Intn(p.N))
		full := NewCommitmentLog()
		verifier := NewCommitmentLog()
		var w []WEntry
		voters := r.Intn(10) + 1
		for v := 0; v < voters; v++ {
			voter := int32(r.Intn(p.N))
			if full.Known(voter) {
				continue
			}
			intents := make([]Intent, r.Intn(4)+1)
			for i := range intents {
				intents[i] = Intent{H: r.Uint64n(p.M) + 1, Z: int32(r.Intn(p.N))}
			}
			full.Record(voter, intents)
			if r.Bool(0.5) {
				verifier.Record(voter, intents)
			}
			for _, in := range intents {
				if in.Z == owner {
					w = append(w, WEntry{Voter: voter, Value: in.H})
				}
			}
		}
		cert := &Certificate{
			P: p, K: SumVotesMod(w, p.M), W: w,
			Color: Color(r.Intn(p.NumColors)), Owner: owner,
		}
		if err := VerifyCertificate(p, cert, verifier); err != nil {
			t.Fatalf("trial %d: honest cert rejected: %v", trial, err)
		}
	}
}
