// Package core implements Protocol P from "Rational Fair Consensus in the
// GOSSIP Model" (Clementi, Gualà, Proietti, Scornavacca, 2017), Algorithm 1.
//
// The protocol elects a uniformly random active agent and drives the network
// to consensus on that agent's color, in five communicating phases of
// q = ⌈γ·log₂ n⌉ rounds each plus a local verification step:
//
//	Voting-Intention (local): agent u draws q votes (hᵤ,ᵢ, zᵤ,ᵢ) with
//	    hᵤ,ᵢ u.a.r. in [1, m], m = n³, and zᵤ,ᵢ u.a.r. in [n].
//	Commitment: u pulls vote intentions Hᵥ from u.a.r. peers into Lᵤ;
//	    a peer that does not answer (or answers garbage) is marked faulty
//	    and all its votes count as 0.
//	Voting: at the i-th voting round u pushes hᵤ,ᵢ to zᵤ,ᵢ and collects
//	    received votes in Wᵤ; then kᵤ = Σ Wᵤ mod m.
//	Find-Min: pull-based broadcast of the certificate (kᵤ, Wᵤ, cᵤ, u)
//	    with the minimum k.
//	Coherence: u pushes its minimal certificate to u.a.r. peers and fails
//	    the protocol upon seeing a different one.
//	Verification (local): accept the winner color only if k_min equals
//	    Σ W_min mod m and W_min is consistent with the commitments in Lᵤ.
//
// The value kᵤ of every agent contains at least one vote from an honest
// agent unknown to any coalition (w.h.p.), so k is uniform in [m] and the
// minimum is a fair lottery; the commitment/verification pair makes lying
// about k or W detectable. This yields fair consensus (Theorem 4) and a
// whp t-strong equilibrium for t = o(n/log n) (Theorem 7).
package core

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// MaxN bounds the network size so m = n³ fits in uint64 with room for
// modular sums.
const MaxN = 1 << 20

// DefaultGamma is a phase-length constant that makes good executions
// overwhelmingly likely for moderate fault fractions at simulation scales.
const DefaultGamma = 3.0

// DefaultAsyncGamma is the phase-length constant for the sequential
// (asynchronous) adaptation, where local activation clocks drift apart by
// Θ(√(q·log n)) activations and phases must outgrow that skew (see
// AsyncAgent).
const DefaultAsyncGamma = 6.0

// Params fixes one protocol instance. Build with NewParams.
type Params struct {
	N         int     // number of nodes (active + faulty)
	NumColors int     // |Σ|; colors are 0..NumColors-1
	Gamma     float64 // phase-length constant γ
	Q         int     // rounds per phase: ⌈γ·log₂ n⌉, at least 1
	M         uint64  // vote space size: n³

	// Precomputed wire widths.
	voteBits   int // bits to encode a value in [1, m]
	idBits     int // bits to encode a node ID
	colorBits  int // bits to encode a color
	indexBits  int // bits to encode a round index in [0, q)
	headerBits int // bits for a payload type tag
}

// NewParams validates and derives the protocol parameters.
func NewParams(n, numColors int, gamma float64) (Params, error) {
	if n < 2 || n > MaxN {
		return Params{}, fmt.Errorf("core: n = %d out of range [2, %d]", n, MaxN)
	}
	if numColors < 1 || numColors > n {
		return Params{}, fmt.Errorf("core: numColors = %d out of range [1, n]", numColors)
	}
	if gamma <= 0 {
		return Params{}, fmt.Errorf("core: gamma = %v must be positive", gamma)
	}
	q := int(math.Ceil(gamma * math.Log2(float64(n))))
	if q < 1 {
		q = 1
	}
	m := uint64(n) * uint64(n) * uint64(n)
	p := Params{
		N:         n,
		NumColors: numColors,
		Gamma:     gamma,
		Q:         q,
		M:         m,
	}
	p.voteBits = metrics.BitsForValues(m)
	p.idBits = metrics.BitsForValues(uint64(n))
	p.colorBits = metrics.BitsForValues(uint64(numColors))
	p.indexBits = metrics.BitsForValues(uint64(q))
	p.headerBits = 2
	return p, nil
}

// MustParams is NewParams that panics on error, for tests and examples.
func MustParams(n, numColors int, gamma float64) Params {
	p, err := NewParams(n, numColors, gamma)
	if err != nil {
		panic(err)
	}
	return p
}

// TotalRounds is the protocol's running time: four communicating phases of Q
// rounds plus the local verification round.
func (p Params) TotalRounds() int { return 4*p.Q + 1 }

// Phase identifies the protocol phase a given round belongs to.
type Phase int

// Protocol phases in schedule order.
const (
	PhaseCommitment Phase = iota
	PhaseVoting
	PhaseFindMin
	PhaseCoherence
	PhaseVerification
)

// String names the phase.
func (ph Phase) String() string {
	switch ph {
	case PhaseCommitment:
		return "commitment"
	case PhaseVoting:
		return "voting"
	case PhaseFindMin:
		return "find-min"
	case PhaseCoherence:
		return "coherence"
	case PhaseVerification:
		return "verification"
	default:
		return fmt.Sprintf("phase(%d)", int(ph))
	}
}

// PhaseOf maps a global round number to its phase. All agents know n and γ,
// so the schedule is common knowledge and phases stay aligned.
func (p Params) PhaseOf(round int) Phase {
	switch {
	case round < p.Q:
		return PhaseCommitment
	case round < 2*p.Q:
		return PhaseVoting
	case round < 3*p.Q:
		return PhaseFindMin
	case round < 4*p.Q:
		return PhaseCoherence
	default:
		return PhaseVerification
	}
}
