// Package core implements Protocol P from "Rational Fair Consensus in the
// GOSSIP Model" (Clementi, Gualà, Proietti, Scornavacca, 2017), Algorithm 1.
//
// The protocol elects a uniformly random active agent and drives the network
// to consensus on that agent's color, in five communicating phases of
// q = ⌈γ·log₂ n⌉ rounds each plus a local verification step:
//
//	Voting-Intention (local): agent u draws q votes (hᵤ,ᵢ, zᵤ,ᵢ) with
//	    hᵤ,ᵢ u.a.r. in [1, m], m = n³, and zᵤ,ᵢ u.a.r. in [n].
//	Commitment: u pulls vote intentions Hᵥ from u.a.r. peers into Lᵤ;
//	    a peer that does not answer (or answers garbage) is marked faulty
//	    and all its votes count as 0.
//	Voting: at the i-th voting round u pushes hᵤ,ᵢ to zᵤ,ᵢ and collects
//	    received votes in Wᵤ; then kᵤ = Σ Wᵤ mod m.
//	Find-Min: pull-based broadcast of the certificate (kᵤ, Wᵤ, cᵤ, u)
//	    with the minimum k.
//	Coherence: u pushes its minimal certificate to u.a.r. peers and fails
//	    the protocol upon seeing a different one.
//	Verification (local): accept the winner color only if k_min equals
//	    Σ W_min mod m and W_min is consistent with the commitments in Lᵤ.
//
// The value kᵤ of every agent contains at least one vote from an honest
// agent unknown to any coalition (w.h.p.), so k is uniform in [m] and the
// minimum is a fair lottery; the commitment/verification pair makes lying
// about k or W detectable. This yields fair consensus (Theorem 4) and a
// whp t-strong equilibrium for t = o(n/log n) (Theorem 7).
package core

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// MaxN bounds the network size so m = n³ fits in uint64 with room for
// modular sums.
const MaxN = 1 << 20

// DefaultGamma is a phase-length constant that makes good executions
// overwhelmingly likely for moderate fault fractions at simulation scales.
const DefaultGamma = 3.0

// DefaultAsyncGamma is the phase-length constant for the sequential
// (asynchronous) adaptation, where local activation clocks drift apart by
// Θ(√(q·log n)) activations and phases must outgrow that skew (see
// AsyncAgent).
const DefaultAsyncGamma = 6.0

// ProtocolVariant selects how the Voting/Verification pair trades the
// paper's binding-declaration property for delivery robustness. The empty
// string and ProtocolBaseline both mean Algorithm 1 unchanged.
type ProtocolVariant string

// The protocol variants. Every variant keeps the five-phase schedule and the
// fair-lottery structure (k = Σ W mod m over the minimum certificate); they
// differ only in how votes travel and how strictly W is checked against Lᵤ.
const (
	// ProtocolBaseline is Algorithm 1 exactly as the paper states it.
	ProtocolBaseline ProtocolVariant = "baseline"
	// ProtocolLiveRetarget re-samples each vote's target from the *current*
	// neighbor set at send time instead of honoring the target declared up to
	// 2q rounds earlier. Declared values stay binding: verification checks
	// that a known voter's votes in W are a sub-multiset of its declared
	// values (any target), and drops the missing-vote direction — a vote may
	// legitimately have landed elsewhere. Trades the anti-vote-dropping
	// guarantee for tolerance of edge churn and mid-Voting crashes, at zero
	// message overhead.
	ProtocolLiveRetarget ProtocolVariant = "live-retarget"
	// ProtocolRetransmit keeps bindings strict but sends every vote Passes
	// times: the Voting phase becomes Passes sub-phases of q rounds, and pass
	// p re-pushes vote i (same value, same declared target) at round
	// q + p·q + i. The preallocated vote buffer is the bounded outbox and
	// Passes is the per-item TTL, after which the item silently expires —
	// the SNIPPETS median-counter shape. Receivers dedup redeliveries by
	// (voter, slot), so W and strict verification are unchanged in the
	// fault-free case. Costs ≈ Passes× the Voting pushes.
	ProtocolRetransmit ProtocolVariant = "retransmit"
	// ProtocolRelaxed keeps Algorithm 1's schedule and bindings but accepts a
	// certificate when at least MinVotes of the q per-voter checks pass:
	// verification counts inconsistent voters (altered, extra, or missing
	// votes — one violation per voter) and rejects only when they exceed
	// q − MinVotes. Trades detection slack (a cheating winner may drop up to
	// q − MinVotes voters' votes undetected) for loss tolerance, at zero
	// message overhead.
	ProtocolRelaxed ProtocolVariant = "relaxed"
)

// MaxVotingPasses bounds ProtocolRetransmit's TTL: the schedule grows by q
// rounds per pass, and past a handful of redeliveries the remaining failure
// modes (quiescent targets, spurious faulty marks) are ones retransmission
// cannot fix anyway.
const MaxVotingPasses = 8

// Protocol fixes the variant an instance runs. The zero value is the
// baseline. It is all-scalar so Params stays comparable.
type Protocol struct {
	Variant  ProtocolVariant
	Passes   int // ProtocolRetransmit: total sends per vote (the per-item TTL)
	MinVotes int // ProtocolRelaxed: per-voter checks that must pass, in [1, q]
}

// Params fixes one protocol instance. Build with NewParams.
type Params struct {
	N         int      // number of nodes (active + faulty)
	NumColors int      // |Σ|; colors are 0..NumColors-1
	Gamma     float64  // phase-length constant γ
	Q         int      // rounds per phase: ⌈γ·log₂ n⌉, at least 1
	M         uint64   // vote space size: n³
	Proto     Protocol // protocol variant; zero value = baseline

	// Precomputed wire widths.
	voteBits   int // bits to encode a value in [1, m]
	idBits     int // bits to encode a node ID
	colorBits  int // bits to encode a color
	indexBits  int // bits to encode a round index in [0, q)
	headerBits int // bits for a payload type tag
}

// NewParams validates and derives the protocol parameters.
func NewParams(n, numColors int, gamma float64) (Params, error) {
	if n < 2 || n > MaxN {
		return Params{}, fmt.Errorf("core: n = %d out of range [2, %d]", n, MaxN)
	}
	if numColors < 1 || numColors > n {
		return Params{}, fmt.Errorf("core: numColors = %d out of range [1, n]", numColors)
	}
	if gamma <= 0 {
		return Params{}, fmt.Errorf("core: gamma = %v must be positive", gamma)
	}
	q := int(math.Ceil(gamma * math.Log2(float64(n))))
	if q < 1 {
		q = 1
	}
	m := uint64(n) * uint64(n) * uint64(n)
	p := Params{
		N:         n,
		NumColors: numColors,
		Gamma:     gamma,
		Q:         q,
		M:         m,
	}
	p.voteBits = metrics.BitsForValues(m)
	p.idBits = metrics.BitsForValues(uint64(n))
	p.colorBits = metrics.BitsForValues(uint64(numColors))
	p.indexBits = metrics.BitsForValues(uint64(q))
	p.headerBits = 2
	return p, nil
}

// MustParams is NewParams that panics on error, for tests and examples.
func MustParams(n, numColors int, gamma float64) Params {
	p, err := NewParams(n, numColors, gamma)
	if err != nil {
		panic(err)
	}
	return p
}

// WithProtocol validates proto and returns a copy of p running that variant.
// The baseline (explicit or empty) normalizes to the zero Protocol, so two
// ways of spelling "no variant" yield equal Params. Retransmit's Passes
// defaults to 2 when unset; Relaxed's MinVotes must be explicit — a silent
// default would silently weaken verification.
func (p Params) WithProtocol(proto Protocol) (Params, error) {
	switch proto.Variant {
	case "", ProtocolBaseline:
		if proto.Passes != 0 || proto.MinVotes != 0 {
			return p, fmt.Errorf("core: protocol parameters (passes=%d, minVotes=%d) need a variant", proto.Passes, proto.MinVotes)
		}
		p.Proto = Protocol{}
	case ProtocolLiveRetarget:
		if proto.Passes != 0 || proto.MinVotes != 0 {
			return p, fmt.Errorf("core: live-retarget takes no parameters")
		}
		p.Proto = Protocol{Variant: ProtocolLiveRetarget}
	case ProtocolRetransmit:
		if proto.MinVotes != 0 {
			return p, fmt.Errorf("core: minVotes belongs to the relaxed variant, not retransmit")
		}
		if proto.Passes == 0 {
			proto.Passes = 2
		}
		if proto.Passes < 2 || proto.Passes > MaxVotingPasses {
			return p, fmt.Errorf("core: retransmit passes %d outside [2, %d]", proto.Passes, MaxVotingPasses)
		}
		p.Proto = Protocol{Variant: ProtocolRetransmit, Passes: proto.Passes}
	case ProtocolRelaxed:
		if proto.Passes != 0 {
			return p, fmt.Errorf("core: passes belongs to the retransmit variant, not relaxed")
		}
		if proto.MinVotes < 1 || proto.MinVotes > p.Q {
			return p, fmt.Errorf("core: relaxed minVotes %d outside [1, q] (q = %d)", proto.MinVotes, p.Q)
		}
		p.Proto = Protocol{Variant: ProtocolRelaxed, MinVotes: proto.MinVotes}
	default:
		return p, fmt.Errorf("core: unknown protocol variant %q", proto.Variant)
	}
	return p, nil
}

// votingPasses is how many times the Voting phase repeats its q-round
// push schedule: 1 everywhere except under ProtocolRetransmit.
func (p Params) votingPasses() int {
	if p.Proto.Variant == ProtocolRetransmit && p.Proto.Passes > 1 {
		return p.Proto.Passes
	}
	return 1
}

// TotalRounds is the protocol's running time: the Commitment, Find-Min and
// Coherence phases of Q rounds each, a Voting phase of votingPasses·Q rounds
// (Q except under retransmit), plus the local verification round.
func (p Params) TotalRounds() int { return (3+p.votingPasses())*p.Q + 1 }

// Phase identifies the protocol phase a given round belongs to.
type Phase int

// Protocol phases in schedule order.
const (
	PhaseCommitment Phase = iota
	PhaseVoting
	PhaseFindMin
	PhaseCoherence
	PhaseVerification
)

// String names the phase.
func (ph Phase) String() string {
	switch ph {
	case PhaseCommitment:
		return "commitment"
	case PhaseVoting:
		return "voting"
	case PhaseFindMin:
		return "find-min"
	case PhaseCoherence:
		return "coherence"
	case PhaseVerification:
		return "verification"
	default:
		return fmt.Sprintf("phase(%d)", int(ph))
	}
}

// PhaseOf maps a global round number to its phase. All agents know n, γ and
// the protocol variant, so the schedule is common knowledge and phases stay
// aligned — including the retransmit variant's longer Voting phase.
func (p Params) PhaseOf(round int) Phase {
	voting := p.votingPasses() * p.Q
	switch {
	case round < p.Q:
		return PhaseCommitment
	case round < p.Q+voting:
		return PhaseVoting
	case round < 2*p.Q+voting:
		return PhaseFindMin
	case round < 3*p.Q+voting:
		return PhaseCoherence
	default:
		return PhaseVerification
	}
}

// votingSlot maps a Voting-phase round to the intention index pushed that
// round: pass p of the (possibly repeated) schedule pushes vote i at round
// q + p·q + i, so the slot is simply the position within the current pass.
func (p Params) votingSlot(round int) int { return (round - p.Q) % p.Q }
