package core

import "fmt"

// Participant is the read-only view of any protocol participant (honest or
// deviating) needed to evaluate an execution's outcome.
type Participant interface {
	Decided() bool
	Failed() bool
	FinalColor() Color
}

// Outcome is the result of one protocol execution: either a winning color
// c ∈ Σ agreed by every active agent, or ⊥.
type Outcome struct {
	Color  Color
	Failed bool
}

// String renders the outcome.
func (o Outcome) String() string {
	if o.Failed {
		return "⊥"
	}
	return fmt.Sprintf("color(%d)", o.Color)
}

// CollectOutcome evaluates agreement over all active participants: the
// outcome is color c iff every active participant decided c ∈ Σ; any
// failure, non-decision, or disagreement yields ⊥. This is the Agreement
// condition of Section 2 evaluated post-hoc by the experimenter.
//
// participants[i] may be nil only where faulty[i] is true; faulty may be nil
// for a fault-free run.
func CollectOutcome(participants []Participant, faulty []bool) Outcome {
	agreed := ColorBot
	first := true
	for i, p := range participants {
		if faulty != nil && faulty[i] {
			continue
		}
		if p == nil {
			panic(fmt.Sprintf("core: active participant %d is nil", i))
		}
		if !p.Decided() || p.Failed() {
			return Outcome{Failed: true}
		}
		c := p.FinalColor()
		if c == ColorBot {
			return Outcome{Failed: true}
		}
		if first {
			agreed = c
			first = false
			continue
		}
		if c != agreed {
			return Outcome{Failed: true}
		}
	}
	if first {
		// No active participants at all: vacuous failure.
		return Outcome{Failed: true}
	}
	return Outcome{Color: agreed}
}
