package core

import (
	"fmt"
	"testing"

	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topo"
)

func TestTopoDebug(t *testing.T) {
	const n = 64
	p := MustParams(n, 2, DefaultGamma)
	colors := SplitColors(n, 0.5)
	net := topo.NewRandomRegular(n, 8, 9)
	master := rng.New(12345)
	agents := make([]gossip.Agent, n)
	aa := make([]*Agent, n)
	for i := 0; i < n; i++ {
		a := NewAgent(i, p, colors[i], net, master.Split(uint64(i)))
		agents[i] = a
		aa[i] = a
	}
	var c metrics.Counters
	eng := gossip.NewEngine(gossip.Config{Topology: net, Counters: &c, Workers: 1}, agents)
	eng.Run(p.TotalRounds() + 1)
	fmt.Println("dropped actions:", eng.DroppedActions())
	coherence, verify := 0, 0
	var verr error
	certs := map[uint64]int{}
	for _, a := range aa {
		certs[a.MinCertificate().K]++
		if a.Failed() {
			if err := VerifyCertificate(p, a.MinCertificate(), a.Log()); err != nil {
				verify++
				if verr == nil {
					verr = err
				}
			} else {
				coherence++
			}
		}
	}
	fmt.Printf("coherenceFail=%d verifyFail=%d distinctMinCerts=%d err=%v\n", coherence, verify, len(certs), verr)
}
