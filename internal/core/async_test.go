package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topo"
)

func TestAsyncAgentLocalPhases(t *testing.T) {
	p := MustParams(16, 2, 1) // q = 4
	a := NewAsyncAgent(0, p, 0, topo.NewComplete(16), rng.New(1))
	var phases []asyncPhase
	for _, ph := range []asyncPhase{
		asyncCommitment, asyncVoting, asyncSettle, asyncSettle,
	} {
		for i := 0; i < p.Q; i++ {
			phases = append(phases, ph)
		}
	}
	for i := 0; i < 2*p.Q; i++ {
		phases = append(phases, asyncFindMin)
	}
	for i := 0; i < p.Q; i++ {
		phases = append(phases, asyncCoherence)
	}
	phases = append(phases, asyncVerification)
	if len(phases) != p.TotalActivations() {
		t.Fatalf("schedule length %d != TotalActivations %d", len(phases), p.TotalActivations())
	}
	for i, want := range phases {
		if got := a.localPhase(); got != want {
			t.Fatalf("activation %d: phase %v, want %v", i, got, want)
		}
		a.Act(i * 1000) // tick value must be irrelevant
	}
	if !a.Decided() {
		t.Fatal("agent not decided after 7q+1 activations")
	}
}

func TestAsyncAgentAnswersByQueryType(t *testing.T) {
	p := MustParams(16, 2, 1)
	a := NewAsyncAgent(0, p, 0, topo.NewComplete(16), rng.New(2))
	if _, ok := a.HandlePull(0, 1, IntentQuery{P: p}).(Intentions); !ok {
		t.Fatal("intent query unanswered")
	}
	if a.HandlePull(0, 1, CertQuery{P: p}) != nil {
		t.Fatal("cert query answered before finalization")
	}
	for i := 0; i < 4*p.Q; i++ {
		a.Act(i)
	}
	a.Act(4 * p.Q) // first find-min activation finalizes
	if _, ok := a.HandlePull(0, 1, CertQuery{P: p}).(*Certificate); !ok {
		t.Fatal("cert query unanswered after finalization")
	}
}

func TestAsyncAgentLateVotesDropped(t *testing.T) {
	p := MustParams(16, 2, 1)
	a := NewAsyncAgent(0, p, 0, topo.NewComplete(16), rng.New(3))
	a.HandlePush(0, 5, Vote{P: p, Value: 10})
	for i := 0; i <= 4*p.Q; i++ {
		a.Act(i) // reaches find-min, finalizes certificate
	}
	a.HandlePush(0, 6, Vote{P: p, Value: 20})
	if len(a.w) != 1 {
		t.Fatalf("late vote accepted: W=%v", a.w)
	}
}

func TestRunAsyncReachesFairConsensus(t *testing.T) {
	const n, trials = 32, 200
	p := MustParams(n, 2, DefaultAsyncGamma)
	colors := SplitColors(n, 0.5)
	wins := make([]int, 2)
	fails := 0
	for s := 0; s < trials; s++ {
		out, ticks, err := RunAsync(AsyncRunConfig{Params: p, Colors: colors, Seed: uint64(s) + 1})
		if err != nil {
			t.Fatal(err)
		}
		if ticks <= 0 {
			t.Fatal("no ticks consumed")
		}
		if out.Failed {
			fails++
			continue
		}
		wins[out.Color]++
	}
	// With the async phase constant, boundary losses are rare.
	if fails > trials/20 {
		t.Fatalf("async adaptation failed %d/%d runs", fails, trials)
	}
	gof, err := stats.ChiSquareGOF(wins, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if gof.PValue < 0.001 {
		t.Fatalf("async consensus unfair: %v p=%v", wins, gof.PValue)
	}
}

func TestRunAsyncWithFaults(t *testing.T) {
	const n = 32
	p := MustParams(n, 2, DefaultAsyncGamma)
	okRuns := 0
	for s := 0; s < 30; s++ {
		out, _, err := RunAsync(AsyncRunConfig{
			Params: p, Colors: UniformColors(n, 2),
			Faulty: WorstCaseFaults(n, 0.25), Seed: uint64(s) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Failed {
			okRuns++
		}
	}
	if okRuns < 27 {
		t.Fatalf("async with faults succeeded only %d/30", okRuns)
	}
}

func TestRunAsyncValidation(t *testing.T) {
	p := MustParams(8, 2, 1)
	if _, _, err := RunAsync(AsyncRunConfig{Params: p, Colors: make([]Color, 2)}); err == nil {
		t.Fatal("bad colors length accepted")
	}
}

func TestNewAsyncAgentRejectsInvalidColor(t *testing.T) {
	p := MustParams(8, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid color accepted")
		}
	}()
	NewAsyncAgent(0, p, 5, topo.NewComplete(8), rng.New(1))
}
