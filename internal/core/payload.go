package core

import (
	"fmt"
	"slices"
	"strings"
)

// Color is an element of the color space Σ, represented as an index in
// [0, NumColors). ColorBot is the failure outcome ⊥ ∉ Σ.
type Color int32

// ColorBot is the distinguished failure value ⊥.
const ColorBot Color = -1

// Valid reports whether the color is an element of Σ for the given palette
// size.
func (c Color) Valid(numColors int) bool { return c >= 0 && int(c) < numColors }

// Intent is one entry of a vote-intention list: "I will push value H to
// agent Z". A value of 0 is reserved to mean "no vote" (used for peers
// marked faulty).
type Intent struct {
	H uint64 // vote value in [1, m]
	Z int32  // target agent
}

// Intentions is the payload answering a Commitment-phase pull: the full
// declared list Hᵤ. Its wire size is q·(|h| + |z|) = O(log² n) bits, the
// protocol's largest regular message along with certificates.
//
// Like certificates, a published intention list is immutable: receivers
// (CommitmentLog.Record) alias the Votes slice instead of copying it, so a
// deviating agent that wants to show different declarations to different
// peers must build fresh slices — which is exactly what makes the first
// recorded declaration binding.
type Intentions struct {
	P     Params
	Votes []Intent
}

// SizeBits returns the wire size of the intention list.
func (in Intentions) SizeBits() int {
	return in.P.headerBits + len(in.Votes)*(in.P.voteBits+in.P.idBits)
}

// Vote is the payload pushed during the Voting phase: a single value in
// [1, m]. The voter identity is supplied by the secure channel, not the
// payload. Honest agents push *Vote pointers into per-agent preallocated
// buffers (interface-boxing a pointer is allocation-free); handlers accept
// both Vote and *Vote so hand-built payloads keep working.
type Vote struct {
	P     Params
	Value uint64
	// Index is the declared-slot index of this vote, in [0, q). It crosses
	// the wire only under ProtocolRetransmit, where receivers dedup
	// redelivered votes by (voter, Index); the other variants ignore it.
	Index int32
}

// SizeBits returns the wire size of one vote. Retransmit votes additionally
// carry their slot index, so redeliveries are distinguishable from a voter
// legitimately pushing the same value twice to one target.
func (v Vote) SizeBits() int {
	bits := v.P.headerBits + v.P.voteBits
	if v.P.Proto.Variant == ProtocolRetransmit {
		bits += v.P.indexBits
	}
	return bits
}

// IntentQuery asks a peer for its vote-intention list (Commitment phase).
type IntentQuery struct{ P Params }

// SizeBits returns the query size (a bare type tag).
func (IntentQuery) SizeBits() int { return 2 }

// CertQuery asks a peer for its current minimal certificate (Find-Min phase).
type CertQuery struct{ P Params }

// SizeBits returns the query size (a bare type tag).
func (CertQuery) SizeBits() int { return 2 }

// WEntry is one received vote inside a certificate: voter identity (stamped
// by the secure channel at receipt time) and value.
type WEntry struct {
	Voter int32
	Value uint64
}

// Certificate is CEᵤ = (kᵤ, Wᵤ, cᵤ, u): the claimed vote sum modulo m, the
// multiset of received votes backing it, the owner's color, and the owner's
// identity. Certificates travel as data — the Owner field is a claim, which
// is exactly why the Verification phase exists.
//
// Ownership: a certificate is immutable once published (handed to the engine
// as a payload or returned from a pull). Receivers adopt the pointer directly
// instead of deep-copying — the Find-Min hot path allocates nothing — so any
// agent, honest or deviating, that wants to send different data must build a
// new Certificate rather than mutate one it already published.
type Certificate struct {
	P     Params
	K     uint64
	W     []WEntry
	Color Color
	Owner int32
}

// SizeBits returns the certificate's wire size: O(log n) votes of O(log n)
// bits each in a good execution, hence O(log² n) overall.
func (c *Certificate) SizeBits() int {
	return c.P.headerBits + c.P.voteBits + len(c.W)*(c.P.idBits+c.P.voteBits) + c.P.colorBits + c.P.idBits
}

// Equal reports whether two certificates are identical, including the exact
// multiset of votes (order-insensitive). The Coherence phase fails the
// protocol on any inequality.
//
// The common cases — the very same (pointer-adopted) certificate, or two
// certificates listing the votes in the same order — are decided without
// allocating; only genuinely reordered vote lists fall back to sorting
// copies.
func (c *Certificate) Equal(o *Certificate) bool {
	if c == nil || o == nil {
		return c == o
	}
	if c == o {
		return true
	}
	if c.K != o.K || c.Color != o.Color || c.Owner != o.Owner || len(c.W) != len(o.W) {
		return false
	}
	sameOrder := true
	for i := range c.W {
		if c.W[i] != o.W[i] {
			sameOrder = false
			break
		}
	}
	if sameOrder {
		return true
	}
	a := append([]WEntry(nil), c.W...)
	b := append([]WEntry(nil), o.W...)
	sortWEntries(a)
	sortWEntries(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortWEntries orders entries by (voter, value). slices.SortFunc is
// non-reflective and allocation-free, unlike the sort.Slice call it replaced.
func sortWEntries(w []WEntry) {
	slices.SortFunc(w, func(a, b WEntry) int {
		if a.Voter != b.Voter {
			return int(a.Voter) - int(b.Voter)
		}
		switch {
		case a.Value < b.Value:
			return -1
		case a.Value > b.Value:
			return 1
		default:
			return 0
		}
	})
}

// Clone returns a deep copy. The honest adopt path no longer needs it —
// published certificates are immutable and adopted by pointer — but it
// remains for callers that build mutated variants (tests, deviations).
func (c *Certificate) Clone() *Certificate {
	if c == nil {
		return nil
	}
	cp := *c
	cp.W = append([]WEntry(nil), c.W...)
	return &cp
}

// Less orders certificates by K value with the owner ID as a deterministic
// tiebreaker (ties are a bad event — they violate Definition 2.2 — but the
// simulator must still behave deterministically when they occur).
func (c *Certificate) Less(o *Certificate) bool {
	if c.K != o.K {
		return c.K < o.K
	}
	return c.Owner < o.Owner
}

// String renders the certificate compactly for traces and errors.
func (c *Certificate) String() string {
	if c == nil {
		return "<nil cert>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "CE{k=%d owner=%d color=%d |W|=%d}", c.K, c.Owner, c.Color, len(c.W))
	return sb.String()
}

// SumVotesMod returns Σ values mod m, accumulating modularly so sums never
// overflow for m up to 2^62.
func SumVotesMod(w []WEntry, m uint64) uint64 {
	var sum uint64
	for _, e := range w {
		sum = (sum + e.Value%m) % m
	}
	return sum
}
