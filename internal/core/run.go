package core

import (
	"fmt"
	"math"

	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topo"
	"repro/internal/trace"
)

// RunConfig describes one cooperative (all-honest) protocol execution.
type RunConfig struct {
	Params Params
	// Colors assigns the initial color of every node (length N). Entries for
	// faulty nodes are ignored.
	Colors []Color
	// Faulty marks the worst-case permanent faults; nil = fault-free.
	Faulty []bool
	// Faults optionally adds a dynamic quiescence schedule (crash-at-round-r,
	// churn) on top of Faulty. Nodes it affects still get honest agents and
	// participate whenever the schedule lets them.
	Faults gossip.FaultSchedule
	// Unreliable marks the nodes affected by Faults. Like faulty nodes they
	// are excluded from the agreement requirement and from the good-execution
	// check, but unlike faulty nodes they run agents. nil = none.
	Unreliable []bool
	// Seed drives all randomness of the execution.
	Seed uint64
	// Drop is the probabilistic message-loss rate: every message crossing a
	// link is lost independently with this probability (gossip.Config.Drop).
	// The loss stream is derived from Seed, so lossy runs stay reproducible.
	// Must be in [0, 1); 0 disables loss.
	Drop float64
	// Topology defaults to the complete graph on N nodes when nil. A
	// topo.Dynamic topology (per-round graph process) is per-run mutable
	// state — pass a private instance; Run starts it from a stream derived
	// off Seed and the engine advances it once per round.
	Topology topo.Topology
	// Workers is the engine Act-phase parallelism (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Trace optionally receives engine events.
	Trace trace.Sink
	// Pool optionally supplies reusable per-run state. A pooled run produces
	// byte-identical results but its RunResult aliases pool memory — see
	// RunPool for the ownership rules. nil runs with private state.
	Pool *RunPool
}

// RunResult is the observable result of one execution.
type RunResult struct {
	Outcome Outcome
	Rounds  int
	Metrics metrics.Snapshot
	Good    GoodExecution
	// Agents exposes the honest agents for deeper inspection. For a pooled
	// run (RunConfig.Pool set) the agents live in the pool and are only valid
	// until the pool's next run; Outcome, Rounds, Metrics, and Good are plain
	// values and always safe to retain.
	Agents []*Agent
}

// dropStreamSalt separates the message-loss stream from every other use of
// the run seed.
const dropStreamSalt = 0xd10bab1e

// dynamicsStreamSalt separates a dynamic topology's edge-process stream from
// every other use of the run seed, so the graph evolution never perturbs the
// agents' (or the loss model's) randomness.
const dynamicsStreamSalt = 0x9a51f10e

// startDynamics starts a per-round graph process from the run seed. It must
// run before any agent is built: the agents' round-0 intention targets are
// sampled from the process's round-0 edge set. Two runs at the same seed see
// bit-identical edge sets round for round.
func startDynamics(net topo.Topology, seed uint64) {
	if dyn, ok := net.(topo.Dynamic); ok {
		dyn.Start(rng.Mix64(seed, dynamicsStreamSalt))
	}
}

// RunSetup is a prepared cooperative execution: agents built and seeded,
// dynamics started, counters reset — everything a scheduler needs to drive
// the rounds, plus the pieces to assemble the RunResult afterwards. The
// in-process engine (Run) and the goroutine-per-node message-passing runtime
// (internal/runtime) both execute off one PrepareRun, which is what makes
// their executions comparable seed for seed: the agents, their RNG streams,
// and the loss stream are bit-identical regardless of which scheduler
// delivers the messages.
type RunSetup struct {
	// Params are the protocol parameters of the run.
	Params Params
	// Net is the communication graph, already Started when dynamic.
	Net topo.Topology
	// Agents holds the agents as the delivery layer consumes them;
	// Agents[i] is nil exactly where Faulty[i] is set.
	Agents []gossip.Agent
	// Faulty is the permanent round-0 fault mask (may be nil).
	Faulty []bool
	// Faults is the optional dynamic quiescence schedule (may be nil).
	Faults gossip.FaultSchedule
	// Drop and DropRand are the probabilistic message-loss model: DropRand
	// is non-nil iff Drop > 0 and is derived from the run seed.
	Drop     float64
	DropRand *rng.Source
	// Counters receives the execution's communication accounting.
	Counters *metrics.Counters
	// Trace is the run's event sink (may be nil).
	Trace trace.Sink
	// MaxRounds is the round budget Run would give the engine.
	MaxRounds int

	cfg RunConfig
	pl  *RunPool
}

// PrepareRun validates cfg and builds the per-run state every scheduler
// shares: it starts a dynamic topology from the seed, seeds and resets the
// pooled agents, and derives the loss stream. The caller executes the rounds
// (through gossip.NewEngine or a runtime scheduler) and then calls Result.
func PrepareRun(cfg RunConfig) (*RunSetup, error) {
	p := cfg.Params
	if len(cfg.Colors) != p.N {
		return nil, fmt.Errorf("core: %d colors for n = %d", len(cfg.Colors), p.N)
	}
	net := cfg.Topology
	if net == nil {
		net = topo.NewComplete(p.N)
	}
	if net.N() != p.N {
		return nil, fmt.Errorf("core: topology has %d nodes, params n = %d", net.N(), p.N)
	}
	if cfg.Unreliable != nil && len(cfg.Unreliable) != p.N {
		return nil, fmt.Errorf("core: unreliable mask has %d entries for n = %d", len(cfg.Unreliable), p.N)
	}
	if cfg.Drop < 0 || cfg.Drop >= 1 {
		return nil, fmt.Errorf("core: drop probability %v outside [0, 1)", cfg.Drop)
	}
	startDynamics(net, cfg.Seed)
	pl := cfg.Pool
	if pl == nil {
		pl = &RunPool{} // private, thrown away with the result
	}
	pl.ensure(p.N)
	pl.master.Reseed(cfg.Seed)
	for i := 0; i < p.N; i++ {
		if cfg.Faulty != nil && cfg.Faulty[i] {
			pl.gagents[i] = nil
			pl.parts[i] = nil
			continue
		}
		if !cfg.Colors[i].Valid(p.NumColors) {
			return nil, fmt.Errorf("core: node %d has color %d outside Σ", i, cfg.Colors[i])
		}
		a := &pl.store[i]
		a.reset(i, p, cfg.Colors[i], net, pl.master.SplitSeed(uint64(i)))
		pl.gagents[i] = a
		pl.parts[i] = a
		pl.honest = append(pl.honest, a)
		if cfg.Unreliable == nil || !cfg.Unreliable[i] {
			pl.reliable = append(pl.reliable, a)
		}
	}
	pl.counters.Reset()
	var dropRand *rng.Source
	if cfg.Drop > 0 {
		// A private stream derived from the run seed keeps lossy executions
		// reproducible without perturbing the agents' randomness; the pool
		// slot keeps the hot batch path allocation-free.
		pl.droprng.Reseed(rng.Mix64(cfg.Seed, dropStreamSalt))
		dropRand = &pl.droprng
	}
	return &RunSetup{
		Params:    p,
		Net:       net,
		Agents:    pl.gagents,
		Faulty:    cfg.Faulty,
		Faults:    cfg.Faults,
		Drop:      cfg.Drop,
		DropRand:  dropRand,
		Counters:  &pl.counters,
		Trace:     cfg.Trace,
		MaxRounds: p.TotalRounds() + 1,
		cfg:       cfg,
		pl:        pl,
	}, nil
}

// Mem exposes the pooled engine scratch space so the in-process engine can
// stay allocation-free across pooled runs.
func (s *RunSetup) Mem() *gossip.EngineMem { return &s.pl.mem }

// Result evaluates the finished execution: agreement over the active
// participants, the communication snapshot, and the Definition-2 check.
// rounds is the number of rounds the scheduler executed.
func (s *RunSetup) Result(rounds int) RunResult {
	cfg, pl := s.cfg, s.pl
	excluded := cfg.Faulty
	if cfg.Unreliable != nil {
		excluded = pl.ensureExcluded(cfg.Params.N)
		for i := range excluded {
			excluded[i] = (cfg.Faulty != nil && cfg.Faulty[i]) || cfg.Unreliable[i]
		}
	}
	return RunResult{
		Outcome: CollectOutcome(pl.parts, excluded),
		Rounds:  rounds,
		Metrics: pl.counters.Snapshot(),
		Good:    CheckGoodExecution(cfg.Params, pl.reliable),
		Agents:  pl.honest,
	}
}

// Run executes Protocol P with all agents honest and returns the outcome.
// It is the cooperative-setting experiment of Section 3.1.
func Run(cfg RunConfig) (RunResult, error) {
	s, err := PrepareRun(cfg)
	if err != nil {
		return RunResult{}, err
	}
	eng := gossip.NewEngine(gossip.Config{
		Topology: s.Net,
		Faulty:   s.Faulty,
		Faults:   s.Faults,
		Counters: s.Counters,
		Trace:    s.Trace,
		Workers:  cfg.Workers,
		Drop:     s.Drop,
		DropRand: s.DropRand,
		Mem:      s.Mem(),
	}, s.Agents)
	rounds := eng.Run(s.MaxRounds)
	return s.Result(rounds), nil
}

// UniformColors assigns colors round-robin so each of numColors colors gets
// an (almost) equal share of the n nodes.
func UniformColors(n, numColors int) []Color {
	out := make([]Color, n)
	for i := range out {
		out[i] = Color(i % numColors)
	}
	return out
}

// SplitColors assigns the first ⌊fraction·n⌋ nodes color 0 and the rest
// color 1. It panics unless 0 ≤ fraction ≤ 1.
func SplitColors(n int, fraction float64) []Color {
	if fraction < 0 || fraction > 1 {
		panic("core: SplitColors fraction out of range")
	}
	cut := int(fraction * float64(n))
	out := make([]Color, n)
	for i := range out {
		if i < cut {
			out[i] = 0
		} else {
			out[i] = 1
		}
	}
	return out
}

// ZipfColors assigns each node an independent color drawn from a Zipf
// distribution over Σ: Pr[color = c] ∝ 1/(c+1)^s, so color 0 dominates and
// the tail thins polynomially — the skewed-opinion workload. s = 0 recovers
// the uniform distribution. All randomness comes from r.
func ZipfColors(n, numColors int, s float64, r *rng.Source) []Color {
	if numColors < 1 {
		panic("core: ZipfColors needs numColors >= 1")
	}
	weights := make([]float64, numColors)
	total := 0.0
	for c := range weights {
		weights[c] = math.Pow(float64(c+1), -s)
		total += weights[c]
	}
	out := make([]Color, n)
	for i := range out {
		x := r.Float64() * total
		for c, w := range weights {
			x -= w
			if x < 0 || c == numColors-1 {
				out[i] = Color(c)
				break
			}
		}
	}
	return out
}

// LeaderElectionColors gives every node its own color (color = ID), turning
// fair consensus into fair leader election, the special case highlighted in
// Sections 1–2.
func LeaderElectionColors(n int) []Color {
	out := make([]Color, n)
	for i := range out {
		out[i] = Color(i)
	}
	return out
}

// WorstCaseFaults marks the first ⌊α·n⌋ nodes faulty — a deterministic
// adversarial placement (IDs are exchangeable, so any fixed set is as
// adversarial as any other for this protocol).
func WorstCaseFaults(n int, alpha float64) []bool {
	if alpha < 0 || alpha >= 1 {
		panic("core: WorstCaseFaults needs 0 ≤ α < 1")
	}
	f := make([]bool, n)
	for i := 0; i < int(alpha*float64(n)); i++ {
		f[i] = true
	}
	return f
}
