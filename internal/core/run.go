package core

import (
	"fmt"

	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topo"
	"repro/internal/trace"
)

// RunConfig describes one cooperative (all-honest) protocol execution.
type RunConfig struct {
	Params Params
	// Colors assigns the initial color of every node (length N). Entries for
	// faulty nodes are ignored.
	Colors []Color
	// Faulty marks the worst-case permanent faults; nil = fault-free.
	Faulty []bool
	// Seed drives all randomness of the execution.
	Seed uint64
	// Topology defaults to the complete graph on N nodes when nil.
	Topology topo.Topology
	// Workers is the engine Act-phase parallelism (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Trace optionally receives engine events.
	Trace trace.Sink
}

// RunResult is the observable result of one execution.
type RunResult struct {
	Outcome Outcome
	Rounds  int
	Metrics metrics.Snapshot
	Good    GoodExecution
	// Agents exposes the honest agents for deeper inspection.
	Agents []*Agent
}

// Run executes Protocol P with all agents honest and returns the outcome.
// It is the cooperative-setting experiment of Section 3.1.
func Run(cfg RunConfig) (RunResult, error) {
	p := cfg.Params
	if len(cfg.Colors) != p.N {
		return RunResult{}, fmt.Errorf("core: %d colors for n = %d", len(cfg.Colors), p.N)
	}
	net := cfg.Topology
	if net == nil {
		net = topo.NewComplete(p.N)
	}
	if net.N() != p.N {
		return RunResult{}, fmt.Errorf("core: topology has %d nodes, params n = %d", net.N(), p.N)
	}
	master := rng.New(cfg.Seed)
	agents := make([]gossip.Agent, p.N)
	honest := make([]*Agent, 0, p.N)
	for i := 0; i < p.N; i++ {
		if cfg.Faulty != nil && cfg.Faulty[i] {
			continue
		}
		if !cfg.Colors[i].Valid(p.NumColors) {
			return RunResult{}, fmt.Errorf("core: node %d has color %d outside Σ", i, cfg.Colors[i])
		}
		a := NewAgent(i, p, cfg.Colors[i], net, master.Split(uint64(i)))
		agents[i] = a
		honest = append(honest, a)
	}
	var counters metrics.Counters
	eng := gossip.NewEngine(gossip.Config{
		Topology: net,
		Faulty:   cfg.Faulty,
		Counters: &counters,
		Trace:    cfg.Trace,
		Workers:  cfg.Workers,
	}, agents)
	rounds := eng.Run(p.TotalRounds() + 1)

	parts := make([]Participant, p.N)
	for i, ag := range agents {
		if ag != nil {
			parts[i] = ag.(*Agent)
		}
	}
	return RunResult{
		Outcome: CollectOutcome(parts, cfg.Faulty),
		Rounds:  rounds,
		Metrics: counters.Snapshot(),
		Good:    CheckGoodExecution(p, honest),
		Agents:  honest,
	}, nil
}

// UniformColors assigns colors round-robin so each of numColors colors gets
// an (almost) equal share of the n nodes.
func UniformColors(n, numColors int) []Color {
	out := make([]Color, n)
	for i := range out {
		out[i] = Color(i % numColors)
	}
	return out
}

// SplitColors assigns the first ⌊fraction·n⌋ nodes color 0 and the rest
// color 1. It panics unless 0 ≤ fraction ≤ 1.
func SplitColors(n int, fraction float64) []Color {
	if fraction < 0 || fraction > 1 {
		panic("core: SplitColors fraction out of range")
	}
	cut := int(fraction * float64(n))
	out := make([]Color, n)
	for i := range out {
		if i < cut {
			out[i] = 0
		} else {
			out[i] = 1
		}
	}
	return out
}

// LeaderElectionColors gives every node its own color (color = ID), turning
// fair consensus into fair leader election, the special case highlighted in
// Sections 1–2.
func LeaderElectionColors(n int) []Color {
	out := make([]Color, n)
	for i := range out {
		out[i] = Color(i)
	}
	return out
}

// WorstCaseFaults marks the first ⌊α·n⌋ nodes faulty — a deterministic
// adversarial placement (IDs are exchangeable, so any fixed set is as
// adversarial as any other for this protocol).
func WorstCaseFaults(n int, alpha float64) []bool {
	if alpha < 0 || alpha >= 1 {
		panic("core: WorstCaseFaults needs 0 ≤ α < 1")
	}
	f := make([]bool, n)
	for i := 0; i < int(alpha*float64(n)); i++ {
		f[i] = true
	}
	return f
}
