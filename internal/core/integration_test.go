package core

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func runOnce(t *testing.T, n int, colors []Color, faulty []bool, seed uint64) RunResult {
	t.Helper()
	numColors := 0
	for i, c := range colors {
		if faulty != nil && faulty[i] {
			continue
		}
		if int(c) >= numColors {
			numColors = int(c) + 1
		}
	}
	p := MustParams(n, numColors, DefaultGamma)
	res, err := Run(RunConfig{Params: p, Colors: colors, Faulty: faulty, Seed: seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunReachesConsensus(t *testing.T) {
	const n = 64
	res := runOnce(t, n, UniformColors(n, 2), nil, 42)
	if res.Outcome.Failed {
		t.Fatal("fault-free cooperative run failed")
	}
	if !res.Outcome.Color.Valid(2) {
		t.Fatalf("winning color %d invalid", res.Outcome.Color)
	}
	if !res.Good.Good() {
		t.Fatalf("execution not good: %+v", res.Good)
	}
}

func TestRunAllAgentsAgree(t *testing.T) {
	const n = 48
	res := runOnce(t, n, UniformColors(n, 3), nil, 7)
	if res.Outcome.Failed {
		t.Fatal("run failed")
	}
	for _, a := range res.Agents {
		if a.FinalColor() != res.Outcome.Color {
			t.Fatalf("agent %d decided %d, outcome %d", a.ID(), a.FinalColor(), res.Outcome.Color)
		}
	}
}

func TestRunWinnerColorWasSupported(t *testing.T) {
	// Validity: the winning color must be some active agent's initial color.
	const n = 40
	colors := SplitColors(n, 0.25)
	res := runOnce(t, n, colors, nil, 99)
	if res.Outcome.Failed {
		t.Fatal("run failed")
	}
	found := false
	for _, a := range res.Agents {
		if a.InitialColor() == res.Outcome.Color {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("winning color %d not initially supported", res.Outcome.Color)
	}
}

func TestRunDeterministicInSeed(t *testing.T) {
	const n = 32
	a := runOnce(t, n, UniformColors(n, 2), nil, 123)
	b := runOnce(t, n, UniformColors(n, 2), nil, 123)
	if a.Outcome != b.Outcome || a.Metrics != b.Metrics {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Outcome, b.Outcome)
	}
	c := runOnce(t, n, UniformColors(n, 2), nil, 124)
	_ = c // different seed may or may not differ in outcome; just must not crash
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	const n = 64
	p := MustParams(n, 2, DefaultGamma)
	base, err := Run(RunConfig{Params: p, Colors: UniformColors(n, 2), Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 0} {
		got, err := Run(RunConfig{Params: p, Colors: UniformColors(n, 2), Seed: 5, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if got.Outcome != base.Outcome || got.Metrics != base.Metrics {
			t.Fatalf("workers=%d diverged from serial run", w)
		}
	}
}

func TestRunRoundsMatchSchedule(t *testing.T) {
	const n = 64
	p := MustParams(n, 2, 2)
	res, err := Run(RunConfig{Params: p, Colors: UniformColors(n, 2), Seed: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Engine runs TotalRounds then one extra round to observe all-decided.
	if res.Rounds < p.TotalRounds() || res.Rounds > p.TotalRounds()+1 {
		t.Fatalf("rounds = %d, schedule = %d", res.Rounds, p.TotalRounds())
	}
}

func TestRunWithWorstCaseFaults(t *testing.T) {
	const n = 80
	for _, alpha := range []float64{0.1, 0.3, 0.5} {
		faulty := WorstCaseFaults(n, alpha)
		res := runOnce(t, n, UniformColors(n, 2), faulty, uint64(1000*alpha))
		if res.Outcome.Failed {
			t.Fatalf("α=%.1f: run failed", alpha)
		}
	}
}

func TestRunFairnessTwoColors(t *testing.T) {
	// 2/3 vs 1/3 split; the winner distribution over trials must match.
	const n, trials = 45, 600
	colors := SplitColors(n, 2.0/3.0)
	wins := make([]int, 2)
	fails := 0
	for s := 0; s < trials; s++ {
		res := runOnce(t, n, colors, nil, uint64(s)+1)
		if res.Outcome.Failed {
			fails++
			continue
		}
		wins[res.Outcome.Color]++
	}
	if fails > trials/50 {
		t.Fatalf("%d/%d runs failed", fails, trials)
	}
	res, err := stats.ChiSquareGOF(wins, []float64{2.0 / 3.0, 1.0 / 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.001 {
		t.Fatalf("fairness rejected: wins=%v p=%v", wins, res.PValue)
	}
}

func TestRunFairLeaderElection(t *testing.T) {
	// Every agent has its own color; each must win with probability 1/n.
	const n, trials = 16, 800
	colors := LeaderElectionColors(n)
	wins := make([]int, n)
	fails := 0
	for s := 0; s < trials; s++ {
		res := runOnce(t, n, colors, nil, uint64(s)+5000)
		if res.Outcome.Failed {
			fails++
			continue
		}
		wins[res.Outcome.Color]++
	}
	if fails > trials/20 {
		t.Fatalf("%d/%d runs failed", fails, trials)
	}
	expected := make([]float64, n)
	for i := range expected {
		expected[i] = 1.0 / n
	}
	gof, err := stats.ChiSquareGOF(wins, expected)
	if err != nil {
		t.Fatal(err)
	}
	if gof.PValue < 0.001 {
		t.Fatalf("leader election unfair: wins=%v p=%v", wins, gof.PValue)
	}
}

func TestRunFairnessExcludesFaulty(t *testing.T) {
	// With faults on the first quarter (all color 0), the winner
	// distribution must follow the ACTIVE agents' split, not the global one.
	const n, trials = 48, 500
	colors := SplitColors(n, 0.5)      // 24 zeros, 24 ones
	faulty := WorstCaseFaults(n, 0.25) // kills 12 zeros
	wantZero := 12.0 / 36.0            // active: 12 zeros, 24 ones
	wins := make([]int, 2)
	fails := 0
	for s := 0; s < trials; s++ {
		res := runOnce(t, n, colors, faulty, uint64(s)+9000)
		if res.Outcome.Failed {
			fails++
			continue
		}
		wins[res.Outcome.Color]++
	}
	if fails > trials/20 {
		t.Fatalf("%d/%d runs failed", fails, trials)
	}
	gof, err := stats.ChiSquareGOF(wins, []float64{wantZero, 1 - wantZero})
	if err != nil {
		t.Fatal(err)
	}
	if gof.PValue < 0.001 {
		t.Fatalf("faulty-adjusted fairness rejected: wins=%v p=%v", wins, gof.PValue)
	}
}

func TestRunMessageSizesPolylog(t *testing.T) {
	for _, n := range []int{64, 256} {
		p := MustParams(n, 2, 2)
		res, err := Run(RunConfig{Params: p, Colors: UniformColors(n, 2), Seed: 77, Workers: 0})
		if err != nil {
			t.Fatal(err)
		}
		logn := math.Log2(float64(n))
		if got := float64(res.Metrics.MaxMessageBits); got > 60*logn*logn {
			t.Errorf("n=%d: max message %v bits > 60·log²n = %v", n, got, 60*logn*logn)
		}
	}
}

func TestRunCommunicationSubquadratic(t *testing.T) {
	const n = 512
	p := MustParams(n, 2, 2)
	res, err := Run(RunConfig{Params: p, Colors: UniformColors(n, 2), Seed: 3, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics.Messages; got >= n*n/2 {
		t.Fatalf("messages = %d, not o(n²) at n=%d", got, n)
	}
}

func TestGoodExecutionHoldsWHP(t *testing.T) {
	const n, trials = 64, 100
	good := 0
	for s := 0; s < trials; s++ {
		res := runOnce(t, n, UniformColors(n, 2), nil, uint64(s)+400)
		if res.Good.Good() {
			good++
		}
	}
	if good < trials-2 {
		t.Fatalf("only %d/%d executions good", good, trials)
	}
}

func TestCheckGoodExecutionEmpty(t *testing.T) {
	p := MustParams(8, 2, 1)
	g := CheckGoodExecution(p, nil)
	if !g.Good() || g.ActiveAgents != 0 {
		t.Fatalf("empty check = %+v", g)
	}
}

func TestRunErrors(t *testing.T) {
	p := MustParams(8, 2, 1)
	if _, err := Run(RunConfig{Params: p, Colors: make([]Color, 3)}); err == nil {
		t.Fatal("bad colors length accepted")
	}
	bad := UniformColors(8, 2)
	bad[2] = 17
	if _, err := Run(RunConfig{Params: p, Colors: bad}); err == nil {
		t.Fatal("out-of-palette color accepted")
	}
}

func TestHelperConstructors(t *testing.T) {
	u := UniformColors(10, 3)
	counts := map[Color]int{}
	for _, c := range u {
		counts[c]++
	}
	if counts[0] != 4 || counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("UniformColors = %v", u)
	}
	s := SplitColors(10, 0.3)
	zeros := 0
	for _, c := range s {
		if c == 0 {
			zeros++
		}
	}
	if zeros != 3 {
		t.Fatalf("SplitColors zeros = %d", zeros)
	}
	le := LeaderElectionColors(5)
	for i, c := range le {
		if int(c) != i {
			t.Fatalf("LeaderElectionColors = %v", le)
		}
	}
	f := WorstCaseFaults(10, 0.4)
	nf := 0
	for _, b := range f {
		if b {
			nf++
		}
	}
	if nf != 4 {
		t.Fatalf("WorstCaseFaults marked %d", nf)
	}
}

func TestHelperPanics(t *testing.T) {
	for i, f := range []func(){
		func() { SplitColors(10, -0.1) },
		func() { SplitColors(10, 1.1) },
		func() { WorstCaseFaults(10, 1.0) },
		func() { WorstCaseFaults(10, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestOutcomeString(t *testing.T) {
	if (Outcome{Failed: true}).String() != "⊥" {
		t.Fatal("failed outcome string")
	}
	if (Outcome{Color: 3}).String() == "" {
		t.Fatal("color outcome string empty")
	}
}
