package core

import (
	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// RunPool holds every piece of per-execution state a cooperative synchronous
// Run needs — the agents (with their RNG streams, commitment logs, and
// payload buffers), the engine's per-round scratch, and the counters — so a
// Monte-Carlo loop can execute trials with near-zero steady-state allocation.
//
// Ownership: a pool may be used by one Run at a time. Everything a pooled
// RunResult exposes by reference (Agents, and anything reached through them:
// certificates, vote slices, logs) lives in the pool and is invalidated by
// the next Run that uses the same pool; callers that retain per-trial results
// must either copy what they need or hand each concurrent trial its own pool.
// The zero value is ready to use. Pooled and unpooled runs are byte-identical
// for a given seed.
type RunPool struct {
	master   rng.Source
	store    []Agent // agent slot storage; slot i serves node i
	gagents  []gossip.Agent
	honest   []*Agent
	reliable []*Agent
	parts    []Participant
	excluded []bool
	counters metrics.Counters
	droprng  rng.Source // message-loss stream, reseeded per lossy run
	mem      gossip.EngineMem
}

// ensure sizes the pool's per-node slices for n nodes, reusing capacity.
func (pl *RunPool) ensure(n int) {
	if cap(pl.store) < n {
		pl.store = make([]Agent, n)
		pl.gagents = make([]gossip.Agent, n)
		pl.parts = make([]Participant, n)
	}
	pl.store = pl.store[:n]
	pl.gagents = pl.gagents[:n]
	pl.parts = pl.parts[:n]
	if cap(pl.honest) < n {
		pl.honest = make([]*Agent, 0, n)
		pl.reliable = make([]*Agent, 0, n)
	}
	pl.honest = pl.honest[:0]
	pl.reliable = pl.reliable[:0]
}

// ensureExcluded returns a length-n scratch mask, reusing capacity.
func (pl *RunPool) ensureExcluded(n int) []bool {
	if cap(pl.excluded) < n {
		pl.excluded = make([]bool, n)
	}
	pl.excluded = pl.excluded[:n]
	for i := range pl.excluded {
		pl.excluded[i] = false
	}
	return pl.excluded
}
