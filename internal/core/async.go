package core

import (
	"fmt"

	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topo"
	"repro/internal/trace"
)

// AsyncAgent is an exploratory adaptation of Protocol P to the sequential
// (asynchronous) GOSSIP model of the paper's second open problem (Section 4):
// at every tick a single uniformly random agent wakes and performs one
// push/pull.
//
// Without a common round counter the phases cannot be globally aligned, so
// each agent advances through them by its own activation count. Activation
// counts concentrate around t/n with O(√(t/n)) skew, so adjacent phases
// overlap across agents; the adaptation compensates structurally:
//
//   - a settle gap of 2q idle activations sits between Voting and Find-Min,
//     so every vote is pushed well before any receiver finalizes its
//     certificate (the gap dominates the O(√q) activation-count skew);
//   - Find-Min runs for 2q activations, so the eventual winner's certificate
//     exists for (almost) the entire spreading window of every agent;
//   - intention queries are answered at any time (the list is fixed up front),
//     certificate queries once the certificate exists;
//   - a certificate pushed at an agent still in Find-Min is treated as
//     information (adopt if smaller) rather than a coherence check.
//
// The local schedule is thus: Commitment [0,q), Voting [q,2q), settle gap
// [2q,4q), Find-Min [4q,6q), Coherence [6q,7q), Verification at 7q. Residual
// boundary losses remain possible and surface as protocol failures; their
// measured rate is what experiment E10 reports. No equilibrium claim is made
// for this variant.
//
// The phase constant matters more here than in the synchronous model: the
// maximum clock skew across n agents after c·q activations is
// Θ(√(q·log n)) = Θ(√(1/γ))·q, a constant fraction of the phase length that
// shrinks only as γ grows. γ = DefaultAsyncGamma (6) pushes the failure rate
// to ≈ 0 at simulation scales, where the synchronous protocol is happy with
// γ = 3.
type AsyncAgent struct {
	id    int
	p     Params
	color Color
	r     *rng.Source
	net   topo.Topology

	activations int
	intentions  []Intent
	log         *CommitmentLog
	w           []WEntry
	ownCert     *Certificate
	minCert     *Certificate

	failed  bool
	decided bool
	out     Color
}

// NewAsyncAgent builds an honest sequential-model agent.
func NewAsyncAgent(id int, p Params, color Color, net topo.Topology, r *rng.Source) *AsyncAgent {
	if !color.Valid(p.NumColors) {
		panic("core: NewAsyncAgent with color outside Σ")
	}
	a := &AsyncAgent{id: id, p: p, color: color, r: r, net: net, log: NewCommitmentLog()}
	a.intentions = make([]Intent, p.Q)
	for i := range a.intentions {
		a.intentions[i] = Intent{H: r.Uint64n(p.M) + 1, Z: int32(net.SamplePeer(id, r))}
	}
	return a
}

// ID returns the agent's identity.
func (a *AsyncAgent) ID() int { return a.id }

// InitialColor returns the color supported at the onset.
func (a *AsyncAgent) InitialColor() Color { return a.color }

// asyncPhase adds the settle gap to the synchronous phase set.
type asyncPhase int

const (
	asyncCommitment asyncPhase = iota
	asyncVoting
	asyncSettle
	asyncFindMin
	asyncCoherence
	asyncVerification
)

// TotalActivations is the per-agent schedule length of the sequential
// adaptation: 7q scheduled activations plus the verification step.
func (p Params) TotalActivations() int { return 7*p.Q + 1 }

// localPhase maps the agent's own activation count to a phase of the
// gap-extended schedule.
func (a *AsyncAgent) localPhase() asyncPhase {
	q := a.p.Q
	switch {
	case a.activations < q:
		return asyncCommitment
	case a.activations < 2*q:
		return asyncVoting
	case a.activations < 4*q:
		return asyncSettle
	case a.activations < 6*q:
		return asyncFindMin
	case a.activations < 7*q:
		return asyncCoherence
	default:
		return asyncVerification
	}
}

// Act performs the agent's next scheduled operation; the tick argument is
// ignored (only the local activation count matters).
func (a *AsyncAgent) Act(tick int) gossip.Action {
	ph := a.localPhase()
	step := a.activations
	a.activations++
	switch ph {
	case asyncCommitment:
		return gossip.PullFrom(a.net.SamplePeer(a.id, a.r), IntentQuery{P: a.p})
	case asyncVoting:
		in := a.intentions[step-a.p.Q]
		return gossip.PushTo(int(in.Z), Vote{P: a.p, Value: in.H})
	case asyncSettle:
		return gossip.NoAction() // let in-flight phases drain
	case asyncFindMin:
		a.ensureCert()
		return gossip.PullFrom(a.net.SamplePeer(a.id, a.r), CertQuery{P: a.p})
	case asyncCoherence:
		a.ensureCert()
		return gossip.PushTo(a.net.SamplePeer(a.id, a.r), a.minCert)
	default:
		if !a.decided {
			a.verify()
		}
		return gossip.NoAction()
	}
}

func (a *AsyncAgent) ensureCert() {
	if a.ownCert != nil {
		return
	}
	// a.w is frozen from here on (HandlePush drops votes once ownCert is
	// set), so the certificate aliases it instead of copying.
	a.ownCert = &Certificate{
		P:     a.p,
		K:     SumVotesMod(a.w, a.p.M),
		W:     a.w,
		Color: a.color,
		Owner: int32(a.id),
	}
	a.minCert = a.ownCert
}

// HandlePush accepts votes until finalization and checks coherence after it.
func (a *AsyncAgent) HandlePush(tick, from int, p gossip.Payload) {
	if v, ok := p.(*Vote); ok && v != nil {
		a.handleVote(from, *v)
		return
	}
	switch m := p.(type) {
	case Vote:
		a.handleVote(from, m)
	case *Certificate:
		if a.activations < 6*a.p.Q {
			// The pusher is ahead of this agent (phases overlap under local
			// clocks); while still converging, a pushed certificate is
			// information, not a coherence check. Published certificates are
			// immutable, so adopting the pointer is safe.
			if a.ownCert != nil && m.Less(a.minCert) {
				a.minCert = m
			}
			return
		}
		if a.minCert != nil && !a.minCert.Equal(m) {
			a.failed = true
		}
	}
}

func (a *AsyncAgent) handleVote(from int, m Vote) {
	if a.ownCert != nil {
		return // too late; the boundary effect E10 measures
	}
	if m.Value == 0 || m.Value > a.p.M {
		return
	}
	if a.log.Faulty(int32(from)) {
		return
	}
	a.w = append(a.w, WEntry{Voter: int32(from), Value: m.Value})
}

// HandlePull answers by query type (phases cannot be trusted to align).
func (a *AsyncAgent) HandlePull(tick, from int, query gossip.Payload) gossip.Payload {
	switch query.(type) {
	case IntentQuery:
		return Intentions{P: a.p, Votes: a.intentions}
	case CertQuery:
		if a.minCert != nil {
			return a.minCert
		}
		return nil
	default:
		return nil
	}
}

// HandlePullReply consumes replies according to what was asked.
func (a *AsyncAgent) HandlePullReply(tick, from int, reply gossip.Payload) {
	switch a.localPhase() {
	case asyncCommitment, asyncVoting:
		// The last commitment pull's reply can arrive at the first voting
		// activation; classify by payload.
		if reply == nil {
			if a.localPhase() == asyncCommitment {
				a.log.MarkFaulty(int32(from))
			}
			return
		}
		if in, ok := reply.(Intentions); ok && validDeclarationFor(a.p, in.Votes) {
			a.log.Record(int32(from), in.Votes)
		}
	case asyncFindMin, asyncCoherence:
		cert, ok := reply.(*Certificate)
		if !ok || cert == nil {
			return
		}
		if a.minCert == nil || cert.Less(a.minCert) {
			a.minCert = cert // immutable once published; adopt the pointer
		}
	}
}

func (a *AsyncAgent) verify() {
	a.decided = true
	if a.failed {
		a.out = ColorBot
		return
	}
	if err := VerifyCertificate(a.p, a.minCert, a.log); err != nil {
		a.failed = true
		a.out = ColorBot
		return
	}
	a.out = a.minCert.Color
}

// Decided implements gossip.Decider and Participant.
func (a *AsyncAgent) Decided() bool { return a.decided }

// Failed implements Participant.
func (a *AsyncAgent) Failed() bool { return a.failed }

// Output implements gossip.Decider.
func (a *AsyncAgent) Output() int { return int(a.FinalColor()) }

// FinalColor implements Participant.
func (a *AsyncAgent) FinalColor() Color {
	if !a.decided || a.failed {
		return ColorBot
	}
	return a.out
}

// AsyncRunConfig configures one sequential-model execution.
// MaxTicks of 0 defaults to 10·n·TotalActivations.
type AsyncRunConfig struct {
	Params Params
	Colors []Color
	Faulty []bool
	// Faults optionally adds a dynamic quiescence schedule on top of Faulty;
	// affected nodes still get agents (see RunConfig.Faults).
	Faults gossip.FaultSchedule
	// Unreliable marks the nodes affected by Faults; they are excluded from
	// the agreement requirement like faulty ones.
	Unreliable []bool
	Seed       uint64
	MaxTicks   int
	// Drop is the probabilistic message-loss rate; see RunConfig.Drop.
	Drop float64
	// Topology defaults to the complete graph on N nodes when nil.
	Topology topo.Topology
	// Trace optionally receives engine events.
	Trace trace.Sink
}

// AsyncRunResult is the observable result of one sequential-model execution.
type AsyncRunResult struct {
	Outcome Outcome
	Ticks   int
	Metrics metrics.Snapshot
}

// RunAsyncResult executes one sequential-GOSSIP run of the adapted protocol
// and returns the outcome, tick count, and communication accounting.
func RunAsyncResult(cfg AsyncRunConfig) (AsyncRunResult, error) {
	p := cfg.Params
	if len(cfg.Colors) != p.N {
		return AsyncRunResult{Outcome: Outcome{Failed: true}},
			fmt.Errorf("core: %d colors for n = %d", len(cfg.Colors), p.N)
	}
	net := cfg.Topology
	if net == nil {
		net = topo.NewComplete(p.N)
	}
	if net.N() != p.N {
		return AsyncRunResult{Outcome: Outcome{Failed: true}},
			fmt.Errorf("core: topology has %d nodes, params n = %d", net.N(), p.N)
	}
	if cfg.Unreliable != nil && len(cfg.Unreliable) != p.N {
		return AsyncRunResult{Outcome: Outcome{Failed: true}},
			fmt.Errorf("core: unreliable mask has %d entries for n = %d", len(cfg.Unreliable), p.N)
	}
	startDynamics(net, cfg.Seed)
	master := rng.New(cfg.Seed)
	agents := make([]gossip.Agent, p.N)
	parts := make([]Participant, p.N)
	for i := 0; i < p.N; i++ {
		if cfg.Faulty != nil && cfg.Faulty[i] {
			continue
		}
		a := NewAsyncAgent(i, p, cfg.Colors[i], net, master.Split(uint64(i)))
		agents[i] = a
		parts[i] = a
	}
	max := cfg.MaxTicks
	if max == 0 {
		max = 10 * p.N * p.TotalActivations()
	}
	if cfg.Drop < 0 || cfg.Drop >= 1 {
		return AsyncRunResult{Outcome: Outcome{Failed: true}},
			fmt.Errorf("core: drop probability %v outside [0, 1)", cfg.Drop)
	}
	var dropRand *rng.Source
	if cfg.Drop > 0 {
		dropRand = rng.New(rng.Mix64(cfg.Seed, dropStreamSalt))
	}
	var counters metrics.Counters
	eng := gossip.NewAsyncEngine(gossip.Config{
		Topology: net, Faulty: cfg.Faulty, Faults: cfg.Faults,
		Counters: &counters, Trace: cfg.Trace, Workers: 1,
		Drop: cfg.Drop, DropRand: dropRand,
	}, agents, master.Split(1<<61))
	ticks := eng.Run(max)
	excluded := cfg.Faulty
	if cfg.Unreliable != nil {
		excluded = make([]bool, p.N)
		for i := range excluded {
			excluded[i] = (cfg.Faulty != nil && cfg.Faulty[i]) || cfg.Unreliable[i]
		}
	}
	return AsyncRunResult{
		Outcome: CollectOutcome(parts, excluded),
		Ticks:   ticks,
		Metrics: counters.Snapshot(),
	}, nil
}

// RunAsync executes one sequential-GOSSIP run of the adapted protocol and
// returns the outcome and the number of ticks consumed.
func RunAsync(cfg AsyncRunConfig) (Outcome, int, error) {
	res, err := RunAsyncResult(cfg)
	return res.Outcome, res.Ticks, err
}
