package core

import (
	"repro/internal/gossip"
	"repro/internal/rng"
	"repro/internal/topo"
)

// Agent is an honest (protocol-following) participant of Protocol P. It
// implements gossip.Agent plus the Participant interface used for outcome
// collection.
//
// The zero value is not usable; construct with NewAgent. An Agent is owned by
// a single engine and is not safe for concurrent use except as the engine
// prescribes (Act in parallel with other agents' Act only).
//
// Agents are pool-friendly: RunPool resets them in place between trials, so
// everything an agent hands out (Intentions, VotesReceived, certificates) is
// owned by the agent and valid only until the agent is reset for another run.
type Agent struct {
	id    int
	p     Params
	color Color
	r     *rng.Source
	net   topo.Topology

	// Voting-Intention output, fixed at construction (round-0 local step).
	intentions []Intent
	// voteMsgs[i] is the preallocated Voting-phase payload for intentions[i];
	// pushing &voteMsgs[i] boxes a pointer, which allocates nothing.
	voteMsgs []Vote

	// Boxed reusable payloads: queries depend only on Params and the
	// intention answer's slice header never moves, so steady-state rounds
	// re-send the same interface values instead of re-boxing per round.
	intentQ    gossip.Payload
	certQ      gossip.Payload
	intentsMsg gossip.Payload

	// Commitment state.
	log *CommitmentLog

	// Voting state. seenVotes dedups retransmit redeliveries by packed
	// (voter, slot) key — the bounded receive-side complement of the TTL
	// outbox; nil/unused outside ProtocolRetransmit.
	w         []WEntry
	seenVotes []uint64

	// Find-Min / Coherence state. ownCertBuf is the backing storage for the
	// agent's own certificate, reused across pooled runs; published
	// certificates are immutable, so minCert may alias a peer's memory.
	ownCert    *Certificate
	ownCertBuf Certificate
	minCert    *Certificate
	replyCert  *Certificate // snapshot answered to same-round pulls

	// vscratch backs the Verification phase's sort/compare buffers, reused
	// across pooled runs.
	vscratch verifyScratch

	failed  bool
	decided bool
	out     Color
}

// NewAgent builds an honest agent with identity id supporting color,
// drawing all randomness from r (which the agent takes ownership of).
func NewAgent(id int, p Params, color Color, net topo.Topology, r *rng.Source) *Agent {
	a := &Agent{r: r, log: NewCommitmentLog()}
	a.init(id, p, color, net)
	return a
}

// reset reinitializes the agent in place for a new run, reusing every buffer
// it already owns. Reseeding with seed yields exactly the stream NewAgent
// would draw from rng.New(seed), so pooled and fresh runs are byte-identical.
func (a *Agent) reset(id int, p Params, color Color, net topo.Topology, seed uint64) {
	if a.r == nil {
		a.r = &rng.Source{}
	}
	a.r.Reseed(seed)
	if a.log == nil {
		a.log = NewCommitmentLog()
	} else {
		a.log.Reset()
	}
	a.w = a.w[:0]
	a.seenVotes = a.seenVotes[:0]
	a.ownCert, a.minCert, a.replyCert = nil, nil, nil
	a.failed, a.decided = false, false
	a.out = 0
	a.init(id, p, color, net)
}

// init runs the round-0 local step shared by NewAgent and reset: it fixes the
// identity fields, draws the Voting-Intention list from a.r, and (re)builds
// the reusable payloads.
func (a *Agent) init(id int, p Params, color Color, net topo.Topology) {
	if !color.Valid(p.NumColors) {
		panic("core: NewAgent with color outside Σ")
	}
	a.id = id
	a.p = p
	a.color = color
	a.net = net

	// Voting-Intention phase: q votes, values u.a.r. in [1, m], targets
	// u.a.r. over the topology's sample space (all of [n] on the complete
	// graph, exactly the paper's "u.a.r. in [n]"; the neighbor set on
	// restricted graphs, where non-neighbors are unreachable).
	if cap(a.intentions) < p.Q {
		a.intentions = make([]Intent, p.Q)
	}
	if cap(a.voteMsgs) < p.Q {
		a.voteMsgs = make([]Vote, p.Q)
	}
	a.intentions = a.intentions[:p.Q]
	a.voteMsgs = a.voteMsgs[:p.Q]
	for i := range a.intentions {
		a.intentions[i] = Intent{
			H: a.r.Uint64n(p.M) + 1,
			Z: int32(net.SamplePeer(id, a.r)),
		}
		a.voteMsgs[i] = Vote{P: p, Value: a.intentions[i].H, Index: int32(i)}
	}

	// Re-box the reusable payloads only when their contents actually moved;
	// in steady-state pooled reuse all three survive from the previous run.
	if q, ok := a.intentQ.(IntentQuery); !ok || q.P != p {
		a.intentQ = IntentQuery{P: p}
	}
	if q, ok := a.certQ.(CertQuery); !ok || q.P != p {
		a.certQ = CertQuery{P: p}
	}
	if m, ok := a.intentsMsg.(Intentions); !ok || m.P != p ||
		len(m.Votes) != len(a.intentions) || &m.Votes[0] != &a.intentions[0] {
		a.intentsMsg = Intentions{P: p, Votes: a.intentions}
	}
}

// ID returns the agent's node identity.
func (a *Agent) ID() int { return a.id }

// Params returns the protocol parameters the agent runs with.
func (a *Agent) Params() Params { return a.p }

// Topology returns the communication topology the agent samples peers from.
func (a *Agent) Topology() topo.Topology { return a.net }

// Rand returns the agent's private randomness source. Deviation wrappers
// (which are logically the same agent) use it for their own peer sampling.
func (a *Agent) Rand() *rng.Source { return a.r }

// EnsureCertificate finalizes and returns the agent's own certificate; it is
// idempotent. Deviation wrappers that replace the Find-Min behaviour use it
// to obtain the honest certificate the wrapped agent would have built.
func (a *Agent) EnsureCertificate() *Certificate {
	if a.ownCert == nil {
		a.finalizeOwnCertificate()
	}
	return a.ownCert
}

// InitialColor returns the color the agent supports at the onset.
func (a *Agent) InitialColor() Color { return a.color }

// Intentions exposes the declared vote list (test and analysis hook). The
// slice is agent-owned; it is valid until the agent is reset by a pool.
func (a *Agent) Intentions() []Intent { return a.intentions }

// VotesReceived exposes Wᵤ (test and analysis hook). The slice is
// agent-owned; it is valid until the agent is reset by a pool.
func (a *Agent) VotesReceived() []WEntry { return a.w }

// K returns the agent's vote sum kᵤ; valid once the Voting phase ended.
func (a *Agent) K() uint64 { return SumVotesMod(a.w, a.p.M) }

// MinCertificate returns the minimal certificate currently held.
func (a *Agent) MinCertificate() *Certificate { return a.minCert }

// Log exposes the commitment log (test and analysis hook).
func (a *Agent) Log() *CommitmentLog { return a.log }

// Act implements the per-round schedule of Algorithm 1.
func (a *Agent) Act(round int) gossip.Action {
	switch a.p.PhaseOf(round) {
	case PhaseCommitment:
		return gossip.PullFrom(a.net.SamplePeer(a.id, a.r), a.intentQ)

	case PhaseVoting:
		i := a.p.votingSlot(round)
		if i < 0 || i >= len(a.intentions) {
			return gossip.NoAction()
		}
		if a.p.Proto.Variant == ProtocolLiveRetarget {
			// Targets are advisory under live-retarget: re-sample from the
			// current neighbor set at send time so the vote reaches somebody
			// even when the declared edge has since churned away. The declared
			// values stay binding (see verifyCertificate).
			return gossip.PushTo(a.net.SamplePeer(a.id, a.r), &a.voteMsgs[i])
		}
		// Under retransmit, later passes re-push the same preallocated
		// payload to the same declared target — the vote buffer is the
		// bounded outbox, and items expire when the passes run out.
		return gossip.PushTo(int(a.intentions[i].Z), &a.voteMsgs[i])

	case PhaseFindMin:
		if a.ownCert == nil {
			a.finalizeOwnCertificate()
		}
		// Snapshot the certificate answered to pulls arriving this round, so
		// information propagates one hop per round (synchronous semantics).
		a.replyCert = a.minCert
		return gossip.PullFrom(a.net.SamplePeer(a.id, a.r), a.certQ)

	case PhaseCoherence:
		if a.ownCert == nil { // defensive: q rounds always precede, but keep safe
			a.finalizeOwnCertificate()
		}
		a.replyCert = a.minCert
		return gossip.PushTo(a.net.SamplePeer(a.id, a.r), a.minCert)

	default: // PhaseVerification
		if !a.decided {
			a.verify()
		}
		return gossip.NoAction()
	}
}

// finalizeOwnCertificate computes kᵤ and CEᵤ from the collected votes; it
// runs once, at the first Find-Min round. The certificate aliases a.w, which
// is append-only during Voting and frozen afterwards, so no copy is needed.
func (a *Agent) finalizeOwnCertificate() {
	a.ownCertBuf = Certificate{
		P:     a.p,
		K:     SumVotesMod(a.w, a.p.M),
		W:     a.w,
		Color: a.color,
		Owner: int32(a.id),
	}
	a.ownCert = &a.ownCertBuf
	a.minCert = a.ownCert
}

// HandlePush processes pushed payloads according to the agent's own phase;
// anything outside the expected phase/type is ignored (a deviator cannot make
// an honest agent act out of protocol).
func (a *Agent) HandlePush(round, from int, p gossip.Payload) {
	switch a.p.PhaseOf(round) {
	case PhaseVoting:
		var v Vote
		switch m := p.(type) {
		case Vote:
			v = m
		case *Vote:
			if m == nil {
				return
			}
			v = *m
		default:
			return
		}
		// Malformed values are discarded at receipt so an honest agent's W
		// never contains junk a verifier would (rightly) reject.
		if v.Value == 0 || v.Value > a.p.M {
			return
		}
		// Votes from peers this agent marked faulty count as 0 (footnote 4).
		if a.log.Faulty(int32(from)) {
			return
		}
		if a.p.Proto.Variant == ProtocolRetransmit {
			// Redelivered votes carry their declared slot; keep the first copy
			// of each (voter, slot) so W matches the single-delivery multiset.
			// An out-of-range slot is malformed (and would let a deviator grow
			// the dedup set without bound), so it is discarded like a bad value.
			if v.Index < 0 || int(v.Index) >= a.p.Q {
				return
			}
			key := uint64(uint32(from))<<32 | uint64(uint32(v.Index))
			for _, k := range a.seenVotes {
				if k == key {
					return
				}
			}
			a.seenVotes = append(a.seenVotes, key)
		}
		a.w = append(a.w, WEntry{Voter: int32(from), Value: v.Value})

	case PhaseCoherence:
		cert, ok := p.(*Certificate)
		if !ok {
			return
		}
		if a.minCert != nil && !a.minCert.Equal(cert) {
			a.failNow()
		}
	}
}

// HandlePull answers a pull according to the agent's own phase: the
// intention list during Commitment, the (start-of-round) minimal certificate
// during Find-Min and Coherence, silence otherwise.
func (a *Agent) HandlePull(round, from int, query gossip.Payload) gossip.Payload {
	switch a.p.PhaseOf(round) {
	case PhaseCommitment:
		return a.intentsMsg
	case PhaseFindMin, PhaseCoherence:
		if a.replyCert != nil {
			return a.replyCert
		}
		if a.minCert != nil {
			return a.minCert
		}
		return nil
	default:
		return nil
	}
}

// HandlePullReply consumes the answer to this agent's own pull.
func (a *Agent) HandlePullReply(round, from int, reply gossip.Payload) {
	switch a.p.PhaseOf(round) {
	case PhaseCommitment:
		if reply == nil {
			a.log.MarkFaulty(int32(from))
			return
		}
		in, ok := reply.(Intentions)
		if !ok || !a.validDeclaration(in.Votes) {
			// "Replies in an unexpected way" — marked faulty (footnote 4).
			// A declaration is well-formed only if it has exactly q votes
			// with values in [1, m] and in-range targets: Hᵤ has exactly
			// that shape by construction, so anything else is a deviation
			// (and accepting unbounded lists would be a memory/bandwidth
			// attack on the verifiers).
			a.log.MarkFaulty(int32(from))
			return
		}
		a.log.Record(int32(from), in.Votes)

	case PhaseFindMin:
		cert, ok := reply.(*Certificate)
		if !ok || cert == nil {
			return // silent or garbage peer: the pull simply fails
		}
		// Published certificates are immutable: adopt the pointer. This is
		// the steady-state Find-Min path and it allocates nothing.
		if a.minCert == nil || cert.Less(a.minCert) {
			a.minCert = cert
		}
	}
}

// validDeclaration reports whether a pulled intention list has the exact
// shape the protocol prescribes (q votes, values in [1, m], targets in [n]).
func (a *Agent) validDeclaration(votes []Intent) bool {
	return validDeclarationFor(a.p, votes)
}

func validDeclarationFor(p Params, votes []Intent) bool {
	if len(votes) != p.Q {
		return false
	}
	for _, in := range votes {
		if in.H == 0 || in.H > p.M {
			return false
		}
		if in.Z < 0 || int(in.Z) >= p.N {
			return false
		}
	}
	return true
}

// verify runs the Verification phase and fixes the agent's output.
func (a *Agent) verify() {
	a.decided = true
	if a.failed {
		a.out = ColorBot
		return
	}
	if err := verifyCertificate(a.p, a.minCert, a.log, &a.vscratch); err != nil {
		a.failNow()
		a.out = ColorBot
		return
	}
	a.out = a.minCert.Color
}

func (a *Agent) failNow() {
	a.failed = true
}

// Failed reports whether the agent declared protocol failure.
func (a *Agent) Failed() bool { return a.failed }

// Decided reports whether the agent reached a final state.
func (a *Agent) Decided() bool { return a.decided }

// Output returns the agent's final color as an int for gossip.Decider;
// ColorBot (−1) encodes failure.
func (a *Agent) Output() int { return int(a.FinalColor()) }

// FinalColor returns the agent's final color, or ColorBot on failure or
// before deciding.
func (a *Agent) FinalColor() Color {
	if !a.decided || a.failed {
		return ColorBot
	}
	return a.out
}
