package core

import (
	"errors"
	"fmt"
	"slices"
)

// CommitmentLog is an agent's Lᵤ: the vote intentions it collected during
// the Commitment phase, plus the set of peers it marked faulty for not
// answering (whose votes all count as 0 per the protocol).
//
// The first declaration received from a peer is binding — subsequent
// declarations (which only a deviating peer would vary) are ignored, mirroring
// the h* definition in the proof of Theorem 7.
type CommitmentLog struct {
	declared map[int32][]Intent
	faulty   map[int32]bool
}

// NewCommitmentLog returns an empty log.
func NewCommitmentLog() *CommitmentLog {
	return &CommitmentLog{
		declared: make(map[int32][]Intent),
		faulty:   make(map[int32]bool),
	}
}

// Reset empties the log in place, keeping the map storage so pooled agents
// can reuse it across runs without reallocating.
func (l *CommitmentLog) Reset() {
	clear(l.declared)
	clear(l.faulty)
}

// Record stores voter's declared intentions if this is the first information
// about voter; it reports whether the declaration was recorded.
//
// The log aliases intents rather than copying: published intention lists are
// immutable (see Intentions), and binding means the first slice recorded
// stays the slice consulted — a deviator varying its declarations must hand
// out distinct slices, which the log then distinguishes per recorder.
func (l *CommitmentLog) Record(voter int32, intents []Intent) bool {
	if l.Known(voter) {
		return false
	}
	l.declared[voter] = intents
	return true
}

// MarkFaulty records that voter failed to answer a pull; all its votes are
// treated as 0 from now on. A voter already recorded stays recorded.
func (l *CommitmentLog) MarkFaulty(voter int32) {
	if l.Known(voter) {
		return
	}
	l.faulty[voter] = true
}

// Known reports whether the log holds any verdict (declaration or faulty
// mark) about voter.
func (l *CommitmentLog) Known(voter int32) bool {
	if _, ok := l.declared[voter]; ok {
		return true
	}
	return l.faulty[voter]
}

// Faulty reports whether voter was marked faulty.
func (l *CommitmentLog) Faulty(voter int32) bool { return l.faulty[voter] }

// Declared returns voter's recorded intention list and whether one exists.
func (l *CommitmentLog) Declared(voter int32) ([]Intent, bool) {
	in, ok := l.declared[voter]
	return in, ok
}

// Size returns the number of peers the log has information about.
func (l *CommitmentLog) Size() int { return len(l.declared) + len(l.faulty) }

// ExpectedVotesFor returns the multiset (sorted) of values voter committed
// to push to target. A faulty-marked voter commits to nothing.
func (l *CommitmentLog) ExpectedVotesFor(voter, target int32) []uint64 {
	return l.appendExpectedVotesFor(voter, target, nil)
}

// appendExpectedVotesFor appends voter's committed values for target to buf
// (sorted), reusing buf's capacity — the allocation-free form VerifyCertificate
// runs in a loop.
func (l *CommitmentLog) appendExpectedVotesFor(voter, target int32, buf []uint64) []uint64 {
	if l.faulty[voter] {
		return buf
	}
	start := len(buf)
	for _, in := range l.declared[voter] {
		if in.Z == target {
			buf = append(buf, in.H)
		}
	}
	slices.Sort(buf[start:])
	return buf
}

// appendDeclaredValues appends the sorted multiset of every value voter
// declared, regardless of target — the expectation live-retarget verification
// checks against, where targets are advisory but values stay binding. A
// faulty-marked voter commits to nothing.
func (l *CommitmentLog) appendDeclaredValues(voter int32, buf []uint64) []uint64 {
	if l.faulty[voter] {
		return buf
	}
	start := len(buf)
	for _, in := range l.declared[voter] {
		buf = append(buf, in.H)
	}
	slices.Sort(buf[start:])
	return buf
}

// The common rejection reasons are pre-declared sentinels rather than
// formatted errors: under message loss, mid-voting crashes, or edge churn,
// *every* verifier in a failing run takes one of these paths, so a formatted
// error per rejection is ~n allocations per failed trial — enough to dominate
// the churny-mode batch budgets. The structural rejections further down stay
// formatted: they only fire on malformed certificates from deviating agents,
// never in honest failing runs, and there the detail is worth the allocation.
var (
	// ErrNoCertificate rejects a verifier that never adopted any certificate
	// (possible when faults or churn starve the Find-Min phase).
	ErrNoCertificate = errors.New("verify: no certificate")
	// ErrVoteMismatch rejects a W whose votes from some known voter differ
	// from that voter's binding declaration (altered or extra votes — or
	// votes missing from a voter W still mentions).
	ErrVoteMismatch = errors.New("verify: votes in W differ from the voter's binding declaration")
	// ErrMissingVotes rejects a W that omits every vote of a voter the
	// verifier holds a nonempty declaration from — the direction that stops
	// a cheating winner from dropping votes to lower its k, and the one
	// unfulfilled declarations (lost messages, dead edges, mid-voting
	// crashes) trigger in honest runs.
	ErrMissingVotes = errors.New("verify: W omits a voter's committed votes")
	// ErrTooManyViolations rejects a relaxed-verification certificate whose
	// count of inconsistent voters exceeds the q − MinVotes slack.
	ErrTooManyViolations = errors.New("verify: inconsistent voters exceed the relaxed-verification slack")
)

// VerifyCertificate implements the Verification phase of Algorithm 1: it
// accepts the winning certificate only if
//
//  1. it is structurally sound (owner and color in range, vote values in
//     [1, m], k < m),
//  2. k = Σ_{h∈W} h mod m, and
//  3. W is consistent with the verifier's commitment log: for every voter
//     the verifier has information about, the multiset of that voter's votes
//     to the certificate owner inside W must exactly equal the declared
//     votes for the owner (none, for a voter marked faulty).
//
// Consistency is two-sided: an altered vote, an extra vote, and a *missing*
// committed vote all reject. The missing-vote direction is what stops a
// cheating winner from dropping votes to lower its k (Claim 1 in the paper's
// Theorem 7 proof relies on some honest agent holding the dropped voter's
// commitment).
//
// The protocol variants relax exactly step 3, never steps 1–2:
//
//   - ProtocolLiveRetarget checks that a known voter's votes in W form a
//     sub-multiset of that voter's declared values for *any* target, and
//     skips the missing-vote direction entirely — a vote absent from W may
//     legitimately have been retargeted elsewhere.
//   - ProtocolRelaxed keeps the strict per-voter checks but counts violating
//     voters (mismatched or missing — one violation each) and rejects only
//     when they exceed q − MinVotes.
//   - ProtocolRetransmit verifies strictly: receivers dedup redeliveries, so
//     W has baseline semantics.
//
// A nil error means the verifier supports cert.Color; any error means the
// verifier makes the protocol fail.
func VerifyCertificate(p Params, cert *Certificate, log *CommitmentLog) error {
	return verifyCertificate(p, cert, log, &verifyScratch{})
}

// verifyScratch holds the two buffers verification needs, so pooled agents
// verify without allocating.
type verifyScratch struct {
	w   []WEntry
	exp []uint64
}

func verifyCertificate(p Params, cert *Certificate, log *CommitmentLog, sc *verifyScratch) error {
	if cert == nil {
		return ErrNoCertificate
	}
	if cert.Owner < 0 || int(cert.Owner) >= p.N {
		return fmt.Errorf("verify: owner %d out of range", cert.Owner)
	}
	if !cert.Color.Valid(p.NumColors) {
		return fmt.Errorf("verify: color %d not in Σ", cert.Color)
	}
	if cert.K >= p.M {
		return fmt.Errorf("verify: k = %d outside [0, m)", cert.K)
	}
	for _, e := range cert.W {
		if e.Value == 0 || e.Value > p.M {
			return fmt.Errorf("verify: vote value %d from %d outside [1, m]", e.Value, e.Voter)
		}
		if e.Voter < 0 || int(e.Voter) >= p.N {
			return fmt.Errorf("verify: voter %d out of range", e.Voter)
		}
	}
	if got := SumVotesMod(cert.W, p.M); got != cert.K {
		return fmt.Errorf("verify: k = %d but ΣW mod m = %d", cert.K, got)
	}

	// Group W's values by voter: sort a copy by (voter, value) and walk the
	// runs. The sorted copy and the expectation buffer both come from the
	// caller's scratch, so a pooled verifier allocates nothing here.
	// ProtocolRelaxed tallies violating voters instead of rejecting on the
	// first one; the count is order-independent, so the map iteration below
	// stays deterministic in outcome.
	retarget := p.Proto.Variant == ProtocolLiveRetarget
	relaxed := p.Proto.Variant == ProtocolRelaxed
	violations := 0
	w := append(sc.w[:0], cert.W...)
	sc.w = w
	sortWEntries(w)
	for i := 0; i < len(w); {
		voter := w[i].Voter
		j := i
		for j < len(w) && w[j].Voter == voter {
			j++
		}
		if log.Known(voter) {
			// Run values are ascending (sortWEntries orders by value within a
			// voter), matching the sorted expectation list.
			var ok bool
			if retarget {
				sc.exp = log.appendDeclaredValues(voter, sc.exp[:0])
				ok = runSubsetSorted(w[i:j], sc.exp)
			} else {
				sc.exp = log.appendExpectedVotesFor(voter, cert.Owner, sc.exp[:0])
				ok = runEqualsSorted(w[i:j], sc.exp)
			}
			if !ok {
				if !relaxed {
					return ErrVoteMismatch
				}
				violations++
			}
		}
		i = j
	}
	// Voters the verifier knows about but that are absent from W must have
	// committed no votes for the owner. Live-retarget skips this direction:
	// with advisory targets, an absent vote may have landed at another peer.
	if !retarget {
		for voter := range log.declared {
			if hasVoter(w, voter) {
				continue // already checked above
			}
			if sc.exp = log.appendExpectedVotesFor(voter, cert.Owner, sc.exp[:0]); len(sc.exp) > 0 {
				if !relaxed {
					return ErrMissingVotes
				}
				violations++
			}
		}
	}
	if relaxed && violations > p.Q-p.Proto.MinVotes {
		return ErrTooManyViolations
	}
	return nil
}

// runSubsetSorted reports whether a (value-ascending) run of W entries is a
// sub-multiset of the sorted expectation list, by two-pointer merge.
func runSubsetSorted(run []WEntry, expected []uint64) bool {
	j := 0
	for _, e := range run {
		for j < len(expected) && expected[j] < e.Value {
			j++
		}
		if j >= len(expected) || expected[j] != e.Value {
			return false
		}
		j++
	}
	return true
}

// runEqualsSorted compares a (value-ascending) run of W entries against a
// sorted expectation list.
func runEqualsSorted(run []WEntry, expected []uint64) bool {
	if len(run) != len(expected) {
		return false
	}
	for i := range run {
		if run[i].Value != expected[i] {
			return false
		}
	}
	return true
}

// hasVoter reports whether the (voter-sorted) entries contain voter, by
// binary search.
func hasVoter(w []WEntry, voter int32) bool {
	lo, hi := 0, len(w)
	for lo < hi {
		mid := (lo + hi) / 2
		if w[mid].Voter < voter {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(w) && w[lo].Voter == voter
}
