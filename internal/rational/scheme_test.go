package rational

import (
	"testing"

	"repro/internal/core"
)

func TestUtilityImplementsScheme(t *testing.T) {
	var s Scheme = Utility{Chi: 2}
	if s.Payoff(1, core.Outcome{Color: 1}) != 1 {
		t.Fatal("own color payoff")
	}
	if s.Payoff(1, core.Outcome{Failed: true}) != -2 {
		t.Fatal("failure payoff")
	}
}

func TestRankedSchemePayoffs(t *testing.T) {
	s := RankedScheme{Values: []float64{1, 0.5, 0.25}, Chi: 1}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pref, winner core.Color
		want         float64
	}{
		{3, 3, 1},
		{3, 4, 0.5},
		{3, 2, 0.5},
		{3, 5, 0.25},
		{3, 7, 0}, // beyond the value table
	}
	for _, c := range cases {
		if got := s.Payoff(c.pref, core.Outcome{Color: c.winner}); got != c.want {
			t.Errorf("Payoff(%d, winner %d) = %v, want %v", c.pref, c.winner, got, c.want)
		}
	}
	if got := s.Payoff(3, core.Outcome{Failed: true}); got != -1 {
		t.Errorf("failure payoff = %v", got)
	}
}

func TestRankedSchemeCustomDistance(t *testing.T) {
	s := RankedScheme{
		Values:   []float64{1, 0.3},
		Distance: func(pref, winner core.Color) int { return int(winner) % 2 }, // parity metric
	}
	if got := s.Payoff(5, core.Outcome{Color: 2}); got != 1 {
		t.Errorf("even winner payoff = %v", got)
	}
	if got := s.Payoff(5, core.Outcome{Color: 3}); got != 0.3 {
		t.Errorf("odd winner payoff = %v", got)
	}
}

func TestRankedSchemeValidate(t *testing.T) {
	bad := []RankedScheme{
		{},                                   // no values
		{Values: []float64{1, 2}},            // increasing
		{Values: []float64{1, 1}},            // rank 1 not strictly worse
		{Values: []float64{1, 0.5}, Chi: -2}, // failure better than worst
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d validated", i)
		}
	}
	good := RankedScheme{Values: []float64{1, 0.5, 0}, Chi: 0}
	if err := good.Validate(); err != nil {
		t.Errorf("good scheme rejected: %v", err)
	}
}

func TestEquilibriumUnderRankedScheme(t *testing.T) {
	// Theorem 7's structure survives richer payoffs: with a graded scheme
	// over 4 colors, the min-k liar still cannot profit.
	const n, trials = 48, 80
	p := core.MustParams(n, 4, core.DefaultGamma)
	colors := core.UniformColors(n, 4)
	scheme := RankedScheme{Values: []float64{1, 0.4, 0.1, 0}, Chi: 1}
	if err := scheme.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := EvaluateEquilibrium(EquilibriumConfig{
		Params:    p,
		Colors:    colors,
		Coalition: []int{2, 17},
		Deviation: MinKLiar{},
		Utility:   Utility{Chi: 1},
		Scheme:    scheme,
		Trials:    trials,
		Seed:      77,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SomeMemberDoesNotProfit() {
		t.Fatalf("liar profited under ranked scheme: %+v", rep.Members)
	}
}
