package rational

import (
	"testing"

	"repro/internal/core"
)

func TestUtilityOf(t *testing.T) {
	u := Utility{Chi: 2}
	if got := u.Of(1, core.Outcome{Color: 1}); got != 1 {
		t.Fatalf("own color utility = %v", got)
	}
	if got := u.Of(1, core.Outcome{Color: 0}); got != 0 {
		t.Fatalf("other color utility = %v", got)
	}
	if got := u.Of(1, core.Outcome{Failed: true}); got != -2 {
		t.Fatalf("failure utility = %v", got)
	}
	if got := (Utility{}).Of(1, core.Outcome{Failed: true}); got != 0 {
		t.Fatalf("χ=0 failure utility = %v", got)
	}
}

func TestCoalitionBlackboard(t *testing.T) {
	c := NewCoalition([]int{3, 7})
	if !c.Contains(3) || !c.Contains(7) || c.Contains(5) {
		t.Fatal("Contains wrong")
	}
	c.ShareIntel(1, []core.Intent{{H: 10, Z: 2}})
	c.ShareIntel(1, []core.Intent{{H: 99, Z: 2}}) // second ignored
	in, ok := c.Intel(1)
	if !ok || in[0].H != 10 {
		t.Fatalf("Intel = %v, %v", in, ok)
	}
	if c.IntelSize() != 1 {
		t.Fatalf("IntelSize = %d", c.IntelSize())
	}
	if _, ok := c.Intel(2); ok {
		t.Fatal("phantom intel")
	}
}

func TestCoalitionMinCert(t *testing.T) {
	p := core.MustParams(8, 2, 1)
	c := NewCoalition([]int{1, 2})
	if c.MinCert() != nil {
		t.Fatal("MinCert before registration")
	}
	c.RegisterCert(1, &core.Certificate{P: p, K: 50, Owner: 1})
	c.RegisterCert(2, &core.Certificate{P: p, K: 10, Owner: 2})
	if got := c.MinCert(); got.K != 10 {
		t.Fatalf("MinCert K = %d", got.K)
	}
	// Cached once complete: later registrations do not change the choice.
	c.RegisterCert(1, &core.Certificate{P: p, K: 1, Owner: 1})
	if got := c.MinCert(); got.K != 10 {
		t.Fatalf("MinCert changed after caching: K = %d", got.K)
	}
}

func TestRunGameValidation(t *testing.T) {
	p := core.MustParams(16, 2, 1)
	colors := core.UniformColors(16, 2)
	cases := []GameConfig{
		{Params: p, Colors: colors[:3]},                                                                              // bad colors len
		{Params: p, Colors: colors, Coalition: []int{99}, Deviation: Honest{}},                                       // member out of range
		{Params: p, Colors: colors, Coalition: []int{1, 1}, Deviation: Honest{}},                                     // duplicate
		{Params: p, Colors: colors, Coalition: []int{1}},                                                             // nil deviation
		{Params: p, Colors: colors, Faulty: core.WorstCaseFaults(16, 0.2), Coalition: []int{0}, Deviation: Honest{}}, // faulty member
	}
	for i, cfg := range cases {
		if _, err := RunGame(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunGameHonestCoalitionMatchesPlainRun(t *testing.T) {
	// An all-honest "deviation" must leave the system in the cooperative
	// regime: no failures across seeds.
	p := core.MustParams(32, 2, core.DefaultGamma)
	colors := core.UniformColors(32, 2)
	for seed := uint64(0); seed < 30; seed++ {
		res, err := RunGame(GameConfig{
			Params: p, Colors: colors,
			Coalition: []int{3, 10}, Deviation: Honest{},
			Seed: seed, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome.Failed {
			t.Fatalf("seed %d: honest-coalition game failed", seed)
		}
	}
}

func TestRunGameDeterministic(t *testing.T) {
	p := core.MustParams(32, 2, core.DefaultGamma)
	colors := core.UniformColors(32, 2)
	cfg := GameConfig{
		Params: p, Colors: colors,
		Coalition: []int{0}, Deviation: MinKLiar{},
		Seed: 9, Workers: 1,
	}
	a, err := RunGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != b.Outcome || a.Metrics != b.Metrics {
		t.Fatal("same-seed games diverged")
	}
}

func countOutcomes(t *testing.T, dev Deviation, coalition []int, n, trials int) (fails, coalWins int) {
	t.Helper()
	p := core.MustParams(n, 2, core.DefaultGamma)
	colors := core.UniformColors(n, 2)
	for s := 0; s < trials; s++ {
		res, err := RunGame(GameConfig{
			Params: p, Colors: colors,
			Coalition: coalition, Deviation: dev,
			Seed: uint64(s) + 1, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome.Failed {
			fails++
			continue
		}
		if res.CoalitionColorWon {
			coalWins++
		}
	}
	return fails, coalWins
}

func TestMinKLiarIsCaught(t *testing.T) {
	// A forged minimal certificate must be detected by verifiers holding the
	// ringleader's binding declaration; the outcome collapses to ⊥ in
	// (nearly) every trial, and the coalition color must not win more often
	// than its fair share.
	const n, trials = 48, 60
	fails, wins := countOutcomes(t, MinKLiar{}, []int{5}, n, trials)
	if fails < trials*9/10 {
		t.Fatalf("forgery escaped detection: only %d/%d failures", fails, trials)
	}
	if wins > trials/4 {
		t.Fatalf("liar color won %d/%d times", wins, trials)
	}
}

func TestCertForgerIsCaught(t *testing.T) {
	const n, trials = 48, 60
	fails, wins := countOutcomes(t, CertForger{}, []int{5, 11}, n, trials)
	if fails < trials*3/4 {
		t.Fatalf("smart forgery escaped: only %d/%d failures", fails, trials)
	}
	if wins > trials/4 {
		t.Fatalf("forger colors won %d/%d times", wins, trials)
	}
}

func TestAdaptiveSelfVoterNeverProfitsUndetected(t *testing.T) {
	// Whenever the adaptive self-vote lands (k = 1 wins Find-Min), the
	// undeclared vote makes verification fail; the deviator's color must not
	// win above fair share.
	const n, trials = 48, 80
	_, wins := countOutcomes(t, AdaptiveSelfVoter{}, []int{7}, n, trials)
	// Fair share of color 1 (= 24/48): even at fair play wins ≈ trials/2;
	// the attack must not push it meaningfully above.
	if float64(wins) > 0.65*float64(trials) {
		t.Fatalf("adaptive self-voter color won %d/%d", wins, trials)
	}
}

func TestPretendFaultyDoesNotDisrupt(t *testing.T) {
	// A silent coalition looks like crashes; the protocol tolerates it and
	// failure stays rare.
	const n, trials = 48, 60
	fails, _ := countOutcomes(t, PretendFaulty{}, []int{2, 9, 17}, n, trials)
	if fails > trials/10 {
		t.Fatalf("pretend-faulty caused %d/%d failures", fails, trials)
	}
}

func TestMinPromoterSilentIsHarmless(t *testing.T) {
	const n, trials = 48, 60
	fails, _ := countOutcomes(t, MinPromoter{Push: false}, []int{4, 20}, n, trials)
	if fails > trials/10 {
		t.Fatalf("silent promoter caused %d/%d failures", fails, trials)
	}
}

func TestMinPromoterPushFailsOrLegit(t *testing.T) {
	// Pushing a non-minimal certificate during Coherence splits the view and
	// the protocol fails; wins only occur when the coalition honestly holds
	// the minimum. So wins stay near the owner share |C|/|A| and everything
	// else mostly fails.
	const n, trials = 48, 80
	fails, wins := countOutcomes(t, MinPromoter{Push: true}, []int{4, 20}, n, trials)
	if wins > trials/4 {
		t.Fatalf("pushy promoter colors won %d/%d", wins, trials)
	}
	if fails < trials/2 {
		t.Fatalf("pushy promoter only failed %d/%d (suppression went unnoticed)", fails, trials)
	}
}

func TestEquilibriumAcrossAllDeviations(t *testing.T) {
	// The headline claim (Theorem 7): for every deviation in the library,
	// at least one coalition member fails to profit significantly.
	const n, trials = 48, 120
	p := core.MustParams(n, 2, core.DefaultGamma)
	colors := core.UniformColors(n, 2)
	for _, dev := range AllDeviations() {
		rep, err := EvaluateEquilibrium(EquilibriumConfig{
			Params: p, Colors: colors,
			Coalition: []int{3, 12, 27},
			Deviation: dev,
			Utility:   Utility{Chi: 1},
			Trials:    trials,
			Seed:      42,
		})
		if err != nil {
			t.Fatalf("%s: %v", dev.Name(), err)
		}
		if !rep.SomeMemberDoesNotProfit() {
			t.Errorf("%s: every member profited significantly: %+v", dev.Name(), rep.Members)
		}
		if rep.DevCoalitionWinRate > rep.FairShare+0.15 {
			t.Errorf("%s: coalition win rate %.3f far above fair share %.3f",
				dev.Name(), rep.DevCoalitionWinRate, rep.FairShare)
		}
	}
}

func TestEvaluateEquilibriumValidation(t *testing.T) {
	p := core.MustParams(16, 2, 1)
	colors := core.UniformColors(16, 2)
	base := EquilibriumConfig{Params: p, Colors: colors, Coalition: []int{1},
		Deviation: Honest{}, Trials: 1}
	bad := base
	bad.Trials = 0
	if _, err := EvaluateEquilibrium(bad); err == nil {
		t.Error("zero trials accepted")
	}
	bad = base
	bad.Coalition = nil
	if _, err := EvaluateEquilibrium(bad); err == nil {
		t.Error("empty coalition accepted")
	}
	bad = base
	bad.Deviation = nil
	if _, err := EvaluateEquilibrium(bad); err == nil {
		t.Error("nil deviation accepted")
	}
}

func TestDeviationByName(t *testing.T) {
	for _, d := range AllDeviations() {
		got, err := DeviationByName(d.Name())
		if err != nil || got.Name() != d.Name() {
			t.Errorf("DeviationByName(%q) = %v, %v", d.Name(), got, err)
		}
	}
	if d, err := DeviationByName("honest"); err != nil || d.Name() != "honest" {
		t.Error("honest not found")
	}
	if _, err := DeviationByName("nope"); err == nil {
		t.Error("unknown deviation accepted")
	}
}

func TestAllDeviationNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range AllDeviations() {
		if seen[d.Name()] {
			t.Fatalf("duplicate deviation name %q", d.Name())
		}
		seen[d.Name()] = true
	}
}

func TestEquilibriumWithFaultsAndCoalition(t *testing.T) {
	// Theorem 7 holds with worst-case permanent faults AND a deviating
	// coalition at the same time. α = 0.25 faults, 3-member liar coalition.
	const n, trials = 48, 100
	p := core.MustParams(n, 2, core.DefaultGamma)
	colors := core.UniformColors(n, 2)
	faulty := core.WorstCaseFaults(n, 0.25) // kills IDs 0..11
	rep, err := EvaluateEquilibrium(EquilibriumConfig{
		Params: p, Colors: colors, Faulty: faulty,
		Coalition: []int{20, 30, 40},
		Deviation: MinKLiar{},
		Utility:   Utility{Chi: 1},
		Trials:    trials,
		Seed:      314,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HonestFailRate > 0.05 {
		t.Fatalf("honest profile with faults failed %v of runs", rep.HonestFailRate)
	}
	if !rep.SomeMemberDoesNotProfit() {
		t.Fatalf("liar profited under faults: %+v", rep.Members)
	}
	if rep.DevCoalitionWinRate > rep.FairShare+0.15 {
		t.Fatalf("coalition win rate %v above fair share %v", rep.DevCoalitionWinRate, rep.FairShare)
	}
}

func TestPretendFaultyStacksWithRealFaults(t *testing.T) {
	// Crash-mimicking deviators on top of real crashes: the protocol sees
	// an effectively larger α and still converges (Lemma 3 with α' > α).
	const n, trials = 48, 60
	p := core.MustParams(n, 2, core.DefaultGamma)
	colors := core.UniformColors(n, 2)
	faulty := core.WorstCaseFaults(n, 0.25)
	fails := 0
	for s := 0; s < trials; s++ {
		res, err := RunGame(GameConfig{
			Params: p, Colors: colors, Faulty: faulty,
			Coalition: []int{20, 25, 30, 35}, Deviation: PretendFaulty{},
			Seed: uint64(s) + 1, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome.Failed {
			fails++
		}
	}
	if fails > trials/10 {
		t.Fatalf("faults + crash-mimics caused %d/%d failures", fails, trials)
	}
}
