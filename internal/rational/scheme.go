package rational

import (
	"fmt"

	"repro/internal/core"
)

// Scheme generalizes the payoff model: the paper analyses the normalized
// scheme (Utility), and notes that richer profit-function classes have been
// studied for rational fair consensus (e.g. Abraham–Dolev–Halpern). A Scheme
// maps an agent's preference and the realized outcome to a payoff. All
// schemes here keep the two structural properties Theorem 7's proof uses:
// an agent's best outcome is its own color winning, and failure is never
// strictly better than any consensus.
type Scheme interface {
	Payoff(pref core.Color, o core.Outcome) float64
}

// Payoff implements Scheme for the paper's normalized payoff values.
func (u Utility) Payoff(pref core.Color, o core.Outcome) float64 { return u.Of(pref, o) }

// RankedScheme pays according to a preference ranking over colors: the
// winning color's payoff is Values[rank(pref, winner)], where rank 0 means
// "my color won". Failure pays −Chi. With Values = [1, 0, 0, …] this
// degenerates to the paper's scheme; decreasing non-negative Values model
// agents that prefer "near" colors (e.g. ordered preferences over proposals).
type RankedScheme struct {
	// Ranking[a] lists agent colors in order of preference for an agent
	// preferring color a; a itself must come first.
	Values []float64
	Chi    float64
	// Distance returns the preference rank of winner for an agent that
	// prefers pref; 0 iff winner == pref. Nil means |winner − pref| (a
	// line metric over color indices).
	Distance func(pref, winner core.Color) int
}

// Payoff implements Scheme.
func (s RankedScheme) Payoff(pref core.Color, o core.Outcome) float64 {
	if o.Failed {
		return -s.Chi
	}
	d := 0
	if s.Distance != nil {
		d = s.Distance(pref, o.Color)
	} else {
		d = int(o.Color - pref)
		if d < 0 {
			d = -d
		}
	}
	if d < 0 {
		d = 0
	}
	if d >= len(s.Values) {
		return 0
	}
	return s.Values[d]
}

// Validate checks the structural properties Theorem 7 relies on: the own
// color pays strictly more than any other rank, payoffs are non-increasing
// in distance, and failure pays no more than the worst consensus.
func (s RankedScheme) Validate() error {
	if len(s.Values) == 0 {
		return fmt.Errorf("rational: RankedScheme needs at least one value")
	}
	for i := 1; i < len(s.Values); i++ {
		if s.Values[i] > s.Values[i-1] {
			return fmt.Errorf("rational: RankedScheme values not non-increasing at rank %d", i)
		}
	}
	if len(s.Values) > 1 && s.Values[1] >= s.Values[0] {
		return fmt.Errorf("rational: own color must pay strictly more than rank 1")
	}
	if -s.Chi > s.Values[len(s.Values)-1] {
		return fmt.Errorf("rational: failure pays more than the worst consensus")
	}
	return nil
}
