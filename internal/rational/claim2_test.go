package rational

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// TestClaim2HonestKUniformUnderBombing is a direct empirical check of
// Claim 2 in Theorem 7's proof: every agent's lottery value k is uniform in
// [m], even when a coalition concentrates all of its (declared, faithful)
// votes on that agent. The coalition adds known values to the target's sum,
// but at least one honest vote it cannot see keeps the modular sum uniform —
// the deferred-decision argument, observed.
func TestClaim2HonestKUniformUnderBombing(t *testing.T) {
	const n, trials, target = 32, 400, 0
	p := core.MustParams(n, 2, core.DefaultGamma)
	colors := core.UniformColors(n, 2)
	dev := VoteConcentrator{HasTarget: true, Target: target}
	coalition := []int{5, 11, 23}

	ks := make([]float64, 0, trials)
	for s := 0; s < trials; s++ {
		res, err := RunGame(GameConfig{
			Params: p, Colors: colors,
			Coalition: coalition, Deviation: dev,
			Seed: uint64(s) + 1, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range res.HonestAgents {
			if a.ID() == target {
				ks = append(ks, float64(a.K())/float64(p.M))
			}
		}
	}
	if len(ks) != trials {
		t.Fatalf("collected %d k values, want %d", len(ks), trials)
	}
	stat, pv := stats.KSUniform(ks)
	if pv < 0.001 {
		t.Fatalf("bombed agent's k not uniform: KS stat=%v p=%v", stat, pv)
	}
}

// TestClaim2CoalitionMemberKUniform checks the same property for a coalition
// member's own k (part (i) of Claim 2): even adaptive self-voting cannot
// remove the uniformity of the *legitimate* value k* defined by its binding
// declarations — here observed through the weaker but measurable fact that
// the adaptive self-voter's wins stay at fair share (its controlled k wins
// Find-Min but dies at Verification, so realized wins still need the honest
// lottery).
func TestClaim2CoalitionMemberKUniform(t *testing.T) {
	const n, trials = 32, 300
	p := core.MustParams(n, 2, core.DefaultGamma)
	colors := core.UniformColors(n, 2)

	// Honest profile: every agent's k pooled over trials must be uniform.
	ks := make([]float64, 0, trials)
	for s := 0; s < trials; s++ {
		res, err := core.Run(core.RunConfig{Params: p, Colors: colors, Seed: uint64(s) + 5000, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ks = append(ks, float64(res.Agents[7].K())/float64(p.M))
	}
	stat, pv := stats.KSUniform(ks)
	if pv < 0.001 {
		t.Fatalf("honest agent k not uniform: KS stat=%v p=%v", stat, pv)
	}
}
