package rational

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/rng"
)

// devCore is the shared chassis of deviation agents: an embedded honest agent
// providing default protocol behaviour, plus a rational end-of-protocol
// decision. A rational deviator never makes itself fail — it outputs the
// color of the smallest certificate it believes the network converged on
// (whether the outcome is a consensus then depends on what the honest agents
// verified).
type devCore struct {
	*core.Agent
	P       core.Params
	decided bool
	best    *core.Certificate
}

func newDevCore(id int, ctx *BuildContext, r *rng.Source) *devCore {
	a := core.NewAgent(id, ctx.Params, ctx.Colors[id], ctx.Topology, r)
	return &devCore{Agent: a, P: ctx.Params}
}

// observe folds a certificate into the deviator's belief about the winner.
func (d *devCore) observe(c *core.Certificate) {
	if c == nil {
		return
	}
	if d.best == nil || c.Less(d.best) {
		d.best = c
	}
}

// decide fixes the deviator's output from everything observed so far.
func (d *devCore) decide() {
	d.observe(d.Agent.MinCertificate())
	d.decided = true
}

// Decided implements core.Participant.
func (d *devCore) Decided() bool { return d.decided }

// Failed implements core.Participant: a rational agent never self-fails.
func (d *devCore) Failed() bool { return false }

// FinalColor implements core.Participant.
func (d *devCore) FinalColor() core.Color {
	if d.best != nil {
		return d.best.Color
	}
	return d.Agent.InitialColor()
}

// buildWrapped is a helper running a per-member constructor.
func buildWrapped(ctx *BuildContext, mk func(i, id int, r *rng.Source) gossip.Agent) []gossip.Agent {
	out := make([]gossip.Agent, len(ctx.Coalition.Members))
	for i, id := range ctx.Coalition.Members {
		out[i] = mk(i, id, ctx.Rng.Split(uint64(id)))
	}
	return out
}

// Honest is the control "deviation": members follow Protocol P. Equilibrium
// experiments compare every real deviation's utilities against this profile.
type Honest struct{}

// Name implements Deviation.
func (Honest) Name() string { return "honest" }

// Build returns plain protocol agents.
func (Honest) Build(ctx *BuildContext) []gossip.Agent {
	return buildWrapped(ctx, func(i, id int, r *rng.Source) gossip.Agent {
		return core.NewAgent(id, ctx.Params, ctx.Colors[id], ctx.Topology, r)
	})
}

// MinKLiar has the coalition promote a forged certificate with a tiny k owned
// by the ringleader (the first member). The forged W is a single self-vote
// equal to k, so the sum check passes; the commitment consistency check is
// what must catch it (the ringleader's binding declaration does not contain
// that self-vote).
type MinKLiar struct {
	// ForgedK is the claimed k value; 0 means "use 1".
	ForgedK uint64
}

// Name implements Deviation.
func (d MinKLiar) Name() string { return "min-k-liar" }

// Build implements Deviation.
func (d MinKLiar) Build(ctx *BuildContext) []gossip.Agent {
	k := d.ForgedK
	if k == 0 {
		k = 1
	}
	ringleader := ctx.Coalition.Members[0]
	forged := &core.Certificate{
		P:     ctx.Params,
		K:     k,
		W:     []core.WEntry{{Voter: int32(ringleader), Value: k}},
		Color: ctx.Colors[ringleader],
		Owner: int32(ringleader),
	}
	return buildWrapped(ctx, func(i, id int, r *rng.Source) gossip.Agent {
		return &liarAgent{devCore: newDevCore(id, ctx, r), forged: forged}
	})
}

type liarAgent struct {
	*devCore
	forged *core.Certificate
}

func (a *liarAgent) Act(round int) gossip.Action {
	switch a.P.PhaseOf(round) {
	case core.PhaseFindMin:
		a.Agent.EnsureCertificate()
		// Keep pulling like an honest agent to learn the true minimum (for
		// the end-of-protocol output), while answering pulls with the forgery.
		return a.Agent.Act(round)
	case core.PhaseCoherence:
		return gossip.PushTo(a.Topology().SamplePeer(a.ID(), a.Rand()), a.forged)
	case core.PhaseVerification:
		if !a.decided {
			a.observe(a.forged)
			a.decide()
		}
		return gossip.NoAction()
	default:
		return a.Agent.Act(round)
	}
}

func (a *liarAgent) HandlePull(round, from int, q gossip.Payload) gossip.Payload {
	switch a.P.PhaseOf(round) {
	case core.PhaseFindMin, core.PhaseCoherence:
		return a.forged
	default:
		return a.Agent.HandlePull(round, from, q)
	}
}

func (a *liarAgent) HandlePush(round, from int, p gossip.Payload) {
	if a.P.PhaseOf(round) == core.PhaseCoherence {
		if c, ok := p.(*core.Certificate); ok {
			a.observe(c) // never fail; just learn
		}
		return
	}
	a.Agent.HandlePush(round, from, p)
}

// CertForger is the information-maximizing forgery: the coalition harvests
// commitment declarations during the Commitment phase, then forges a
// certificate for the ringleader containing every *known* real vote for the
// ringleader plus one fabricated vote from an agent outside the harvested
// set, tuned so the sum lands on a tiny k. It is caught (w.h.p.) either by a
// verifier who pulled the fabricated voter, or by one who pulled a real
// voter whose vote the forgery necessarily omits (Definition 5, property 3).
type CertForger struct {
	TargetK uint64 // claimed k; 0 means 1
}

// Name implements Deviation.
func (d CertForger) Name() string { return "cert-forger" }

// Build implements Deviation.
func (d CertForger) Build(ctx *BuildContext) []gossip.Agent {
	k := d.TargetK
	if k == 0 {
		k = 1
	}
	shared := &forgerShared{target: k, ctx: ctx}
	return buildWrapped(ctx, func(i, id int, r *rng.Source) gossip.Agent {
		a := &forgerAgent{devCore: newDevCore(id, ctx, r), shared: shared}
		// Members contribute their own binding declarations to the intel
		// pool so the forgery stays consistent with them.
		ctx.Coalition.ShareIntel(int32(id), a.Agent.Intentions())
		return a
	})
}

type forgerShared struct {
	target uint64
	ctx    *BuildContext

	mu     sync.Mutex
	forged *core.Certificate // built lazily at the start of Find-Min
}

// build assembles the forged certificate from the harvested intel. The first
// caller (any member's first Find-Min Act, possibly concurrent under a
// parallel engine) freezes it.
func (s *forgerShared) build() *core.Certificate {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.forged != nil {
		return s.forged
	}
	p := s.ctx.Params
	ringleader := int32(s.ctx.Coalition.Members[0])
	var w []core.WEntry
	var sum uint64
	for voter := int32(0); int(voter) < p.N; voter++ {
		intents, ok := s.ctx.Coalition.Intel(voter)
		if !ok {
			continue
		}
		for _, in := range intents {
			if in.Z == ringleader {
				w = append(w, core.WEntry{Voter: voter, Value: in.H})
				sum = (sum + in.H) % p.M
			}
		}
	}
	// Fabricate one balancing vote from an agent the coalition has no
	// information about (so no binding declaration contradicts it directly).
	fab := int32(-1)
	for cand := int32(0); int(cand) < p.N; cand++ {
		if _, known := s.ctx.Coalition.Intel(cand); known {
			continue
		}
		if s.ctx.Coalition.Contains(int(cand)) {
			continue
		}
		fab = cand
		break
	}
	if fab >= 0 {
		v := (s.target + p.M - sum) % p.M
		if v == 0 {
			v = p.M
		}
		w = append(w, core.WEntry{Voter: fab, Value: v})
	}
	s.forged = &core.Certificate{
		P:     p,
		K:     core.SumVotesMod(w, p.M),
		W:     w,
		Color: s.ctx.Colors[ringleader],
		Owner: ringleader,
	}
	return s.forged
}

type forgerAgent struct {
	*devCore
	shared *forgerShared
}

func (a *forgerAgent) Act(round int) gossip.Action {
	switch a.P.PhaseOf(round) {
	case core.PhaseFindMin:
		a.Agent.EnsureCertificate()
		a.shared.build()
		return a.Agent.Act(round)
	case core.PhaseCoherence:
		return gossip.PushTo(a.Topology().SamplePeer(a.ID(), a.Rand()), a.shared.build())
	case core.PhaseVerification:
		if !a.decided {
			a.observe(a.shared.build())
			a.decide()
		}
		return gossip.NoAction()
	default:
		return a.Agent.Act(round)
	}
}

func (a *forgerAgent) HandlePull(round, from int, q gossip.Payload) gossip.Payload {
	switch a.P.PhaseOf(round) {
	case core.PhaseFindMin, core.PhaseCoherence:
		return a.shared.build()
	default:
		return a.Agent.HandlePull(round, from, q)
	}
}

func (a *forgerAgent) HandlePush(round, from int, p gossip.Payload) {
	if a.P.PhaseOf(round) == core.PhaseCoherence {
		if c, ok := p.(*core.Certificate); ok {
			a.observe(c)
		}
		return
	}
	a.Agent.HandlePush(round, from, p)
}

func (a *forgerAgent) HandlePullReply(round, from int, reply gossip.Payload) {
	// Harvest declarations for the shared intel pool during Commitment.
	if a.P.PhaseOf(round) == core.PhaseCommitment {
		if in, ok := reply.(core.Intentions); ok {
			a.shared.ctx.Coalition.ShareIntel(int32(from), in.Votes)
		}
	}
	a.Agent.HandlePullReply(round, from, reply)
}

// VoteWithholder declares intentions honestly but never pushes a vote. Its
// committed votes are then missing from every target's W, so whenever one of
// its declared targets wins, verifiers that pulled the withholder fail the
// protocol — withholding can only destroy utility, never create it.
type VoteWithholder struct{}

// Name implements Deviation.
func (VoteWithholder) Name() string { return "vote-withholder" }

// Build implements Deviation.
func (VoteWithholder) Build(ctx *BuildContext) []gossip.Agent {
	return buildWrapped(ctx, func(i, id int, r *rng.Source) gossip.Agent {
		return &withholderAgent{devCore: newDevCore(id, ctx, r)}
	})
}

type withholderAgent struct{ *devCore }

func (a *withholderAgent) Act(round int) gossip.Action {
	switch a.P.PhaseOf(round) {
	case core.PhaseVoting:
		return gossip.NoAction()
	case core.PhaseVerification:
		if !a.decided {
			a.decide()
		}
		return gossip.NoAction()
	default:
		return a.Agent.Act(round)
	}
}

// PretendFaulty is fully quiescent: it never acts and never answers, exactly
// like a crashed node — the deviation Section 1 singles out ("a rational
// active agent can pretend to be a faulty node"). It still listens, and at
// the end outputs the color of the smallest certificate pushed to it during
// Coherence, free-riding on the consensus.
type PretendFaulty struct{}

// Name implements Deviation.
func (PretendFaulty) Name() string { return "pretend-faulty" }

// Build implements Deviation.
func (PretendFaulty) Build(ctx *BuildContext) []gossip.Agent {
	return buildWrapped(ctx, func(i, id int, r *rng.Source) gossip.Agent {
		return &pretendFaultyAgent{p: ctx.Params, color: ctx.Colors[id], total: ctx.Params.TotalRounds()}
	})
}

type pretendFaultyAgent struct {
	p       core.Params
	color   core.Color
	total   int
	best    *core.Certificate
	decided bool
}

func (a *pretendFaultyAgent) Act(round int) gossip.Action {
	if round >= a.total-1 {
		a.decided = true
	}
	return gossip.NoAction()
}

func (a *pretendFaultyAgent) HandlePush(round, from int, p gossip.Payload) {
	if c, ok := p.(*core.Certificate); ok {
		if a.best == nil || c.Less(a.best) {
			a.best = c.Clone()
		}
	}
}

func (a *pretendFaultyAgent) HandlePull(round, from int, q gossip.Payload) gossip.Payload {
	return nil // silence, indistinguishable from a crash
}

func (a *pretendFaultyAgent) HandlePullReply(round, from int, reply gossip.Payload) {}

// Decided implements core.Participant.
func (a *pretendFaultyAgent) Decided() bool { return a.decided }

// Failed implements core.Participant.
func (a *pretendFaultyAgent) Failed() bool { return false }

// FinalColor implements core.Participant.
func (a *pretendFaultyAgent) FinalColor() core.Color {
	if a.best != nil {
		return a.best.Color
	}
	return a.color
}

// MinPromoter is the coordinated suppression attack: members run the
// protocol honestly through Voting, then pool their true certificates, pick
// the coalition-minimal one, and answer every Find-Min pull with it —
// suppressing any smaller honest certificate they know of. With Push set
// they also push it during Coherence. Because the promoted certificate is
// genuine, verification passes when it happens to be the true minimum; when
// it is not, the honest true minimum still spreads through honest pulls and
// the Coherence phase detects the split.
type MinPromoter struct {
	// Push makes members push the promoted certificate during Coherence
	// (more aggressive, more detectable).
	Push bool
}

// Name implements Deviation.
func (d MinPromoter) Name() string {
	if d.Push {
		return "min-promoter-push"
	}
	return "min-promoter-silent"
}

// Build implements Deviation.
func (d MinPromoter) Build(ctx *BuildContext) []gossip.Agent {
	return buildWrapped(ctx, func(i, id int, r *rng.Source) gossip.Agent {
		return &promoterAgent{devCore: newDevCore(id, ctx, r), co: ctx.Coalition, push: d.Push}
	})
}

type promoterAgent struct {
	*devCore
	co   *Coalition
	push bool
}

func (a *promoterAgent) Act(round int) gossip.Action {
	switch a.P.PhaseOf(round) {
	case core.PhaseFindMin:
		a.co.RegisterCert(a.ID(), a.Agent.EnsureCertificate())
		return a.Agent.Act(round) // keep pulling to learn the honest minimum
	case core.PhaseCoherence:
		if a.push {
			if c := a.co.MinCert(); c != nil {
				return gossip.PushTo(a.Topology().SamplePeer(a.ID(), a.Rand()), c)
			}
		}
		return gossip.NoAction()
	case core.PhaseVerification:
		if !a.decided {
			a.observe(a.co.MinCert())
			a.decide()
		}
		return gossip.NoAction()
	default:
		return a.Agent.Act(round)
	}
}

func (a *promoterAgent) HandlePull(round, from int, q gossip.Payload) gossip.Payload {
	switch a.P.PhaseOf(round) {
	case core.PhaseFindMin, core.PhaseCoherence:
		if c := a.co.MinCert(); c != nil {
			return c
		}
		return a.Agent.HandlePull(round, from, q)
	default:
		return a.Agent.HandlePull(round, from, q)
	}
}

func (a *promoterAgent) HandlePush(round, from int, p gossip.Payload) {
	if a.P.PhaseOf(round) == core.PhaseCoherence {
		if c, ok := p.(*core.Certificate); ok {
			a.observe(c)
		}
		return
	}
	a.Agent.HandlePush(round, from, p)
}

// Equivocator gives different vote-intention declarations to different
// pullers during Commitment while voting according to its first list. Two
// verifiers holding conflicting declarations cannot both find the winner's W
// consistent whenever one of the equivocator's targets wins, so equivocation
// manufactures failures but no wins.
type Equivocator struct{}

// Name implements Deviation.
func (Equivocator) Name() string { return "equivocator" }

// Build implements Deviation.
func (Equivocator) Build(ctx *BuildContext) []gossip.Agent {
	return buildWrapped(ctx, func(i, id int, r *rng.Source) gossip.Agent {
		a := &equivocatorAgent{devCore: newDevCore(id, ctx, r)}
		// A second, independent intention list for alternate declarations.
		alt := r.Split(7)
		a.altIntents = make([]core.Intent, ctx.Params.Q)
		for j := range a.altIntents {
			a.altIntents[j] = core.Intent{
				H: alt.Uint64n(ctx.Params.M) + 1,
				Z: int32(ctx.Topology.SamplePeer(id, alt)),
			}
		}
		return a
	})
}

type equivocatorAgent struct {
	*devCore
	altIntents []core.Intent
	flip       bool
}

func (a *equivocatorAgent) Act(round int) gossip.Action {
	if a.P.PhaseOf(round) == core.PhaseVerification {
		if !a.decided {
			a.decide()
		}
		return gossip.NoAction()
	}
	return a.Agent.Act(round)
}

func (a *equivocatorAgent) HandlePull(round, from int, q gossip.Payload) gossip.Payload {
	if a.P.PhaseOf(round) == core.PhaseCommitment {
		a.flip = !a.flip
		if a.flip {
			return core.Intentions{P: a.P, Votes: a.altIntents}
		}
		return core.Intentions{P: a.P, Votes: a.Agent.Intentions()}
	}
	return a.Agent.HandlePull(round, from, q)
}

// AdaptiveSelfVoter exploits the adaptivity window the commitment scheme
// must close: it follows the protocol but replaces its final vote with a
// self-vote tuned so that its own k lands on TargetK (usually 1), making it
// the Find-Min winner whenever no further vote arrives afterwards. The vote
// is necessarily inconsistent with its binding declaration, so any verifier
// that pulled it during Commitment rejects — this deviation directly probes
// Definition 5 property 1.
type AdaptiveSelfVoter struct {
	TargetK uint64 // 0 means 1
}

// Name implements Deviation.
func (AdaptiveSelfVoter) Name() string { return "adaptive-self-voter" }

// Build implements Deviation.
func (d AdaptiveSelfVoter) Build(ctx *BuildContext) []gossip.Agent {
	k := d.TargetK
	if k == 0 {
		k = 1
	}
	return buildWrapped(ctx, func(i, id int, r *rng.Source) gossip.Agent {
		return &adaptiveVoterAgent{devCore: newDevCore(id, ctx, r), target: k}
	})
}

type adaptiveVoterAgent struct {
	*devCore
	target uint64
}

func (a *adaptiveVoterAgent) Act(round int) gossip.Action {
	p := a.P
	switch p.PhaseOf(round) {
	case core.PhaseVoting:
		if round == 2*p.Q-1 {
			// k so far is the sum of votes received before this round; pick
			// the self-vote value that lands the sum on the target.
			cur := a.Agent.K()
			v := (a.target + p.M - cur) % p.M
			if v == 0 {
				v = p.M
			}
			return gossip.PushTo(a.ID(), core.Vote{P: p, Value: v})
		}
		return a.Agent.Act(round)
	case core.PhaseVerification:
		if !a.decided {
			a.decide()
		}
		return gossip.NoAction()
	default:
		return a.Agent.Act(round)
	}
}

// VoteConcentrator is the fully protocol-compliant targeting attack: every
// coalition member declares — and then faithfully casts — all q of its votes
// for the ringleader. Nothing in the protocol forbids choosing targets
// adversarially, so this deviation is undetectable; it simply does not work,
// because the ringleader's k is a modular sum that also contains at least one
// honest vote the coalition can neither see nor influence (Claim 2), leaving
// k uniform. The measured win rate staying at the fair share is the sharpest
// empirical illustration of the deferred-decision argument.
type VoteConcentrator struct {
	// Target is the agent all coalition votes aim at; HasTarget false means
	// the ringleader (first member). Aiming at an honest agent turns this
	// into a lottery-bombing attack on that agent's k, which Claim 2 says is
	// equally futile.
	HasTarget bool
	Target    int
}

// Name implements Deviation.
func (VoteConcentrator) Name() string { return "vote-concentrator" }

// Build implements Deviation.
func (d VoteConcentrator) Build(ctx *BuildContext) []gossip.Agent {
	ringleader := int32(ctx.Coalition.Members[0])
	if d.HasTarget {
		ringleader = int32(d.Target)
	}
	return buildWrapped(ctx, func(i, id int, r *rng.Source) gossip.Agent {
		a := &concentratorAgent{devCore: newDevCore(id, ctx, r)}
		// Rewrite the intention list in place before anything is declared:
		// same random values, every target the ringleader.
		intents := a.Agent.Intentions()
		for j := range intents {
			intents[j].Z = ringleader
		}
		return a
	})
}

type concentratorAgent struct{ *devCore }

func (a *concentratorAgent) Act(round int) gossip.Action {
	if a.P.PhaseOf(round) == core.PhaseVerification {
		if !a.decided {
			a.decide()
		}
		return gossip.NoAction()
	}
	return a.Agent.Act(round) // fully honest mechanics over the rigged list
}

// IntentSpammer answers every Commitment pull with an oversized garbage
// declaration — a bandwidth/memory attack on verifiers rather than a fairness
// attack. Honest agents reject malformed declarations and mark the spammer
// faulty (footnote 4 semantics), so its votes count as zero everywhere and it
// effectively removes itself from the lottery.
type IntentSpammer struct {
	// Factor scales the spam list length relative to q (0 means 16×).
	Factor int
}

// Name implements Deviation.
func (IntentSpammer) Name() string { return "intent-spammer" }

// Build implements Deviation.
func (d IntentSpammer) Build(ctx *BuildContext) []gossip.Agent {
	factor := d.Factor
	if factor <= 0 {
		factor = 16
	}
	return buildWrapped(ctx, func(i, id int, r *rng.Source) gossip.Agent {
		a := &spammerAgent{devCore: newDevCore(id, ctx, r)}
		a.spam = make([]core.Intent, factor*ctx.Params.Q)
		for j := range a.spam {
			a.spam[j] = core.Intent{
				H: r.Uint64n(ctx.Params.M) + 1,
				Z: int32(ctx.Topology.SamplePeer(id, r)),
			}
		}
		return a
	})
}

type spammerAgent struct {
	*devCore
	spam []core.Intent
}

func (a *spammerAgent) Act(round int) gossip.Action {
	if a.P.PhaseOf(round) == core.PhaseVerification {
		if !a.decided {
			a.decide()
		}
		return gossip.NoAction()
	}
	return a.Agent.Act(round)
}

func (a *spammerAgent) HandlePull(round, from int, q gossip.Payload) gossip.Payload {
	if a.P.PhaseOf(round) == core.PhaseCommitment {
		return core.Intentions{P: a.P, Votes: a.spam}
	}
	return a.Agent.HandlePull(round, from, q)
}

// AllDeviations returns one instance of every deviation in the library, the
// adversary suite exercised by the Theorem 7 experiments.
func AllDeviations() []Deviation {
	return []Deviation{
		MinKLiar{},
		CertForger{},
		VoteWithholder{},
		PretendFaulty{},
		MinPromoter{Push: true},
		MinPromoter{Push: false},
		Equivocator{},
		AdaptiveSelfVoter{},
		VoteConcentrator{},
		IntentSpammer{},
	}
}

// DeviationByName returns the library deviation with the given name.
func DeviationByName(name string) (Deviation, error) {
	if name == "honest" {
		return Honest{}, nil
	}
	for _, d := range AllDeviations() {
		if d.Name() == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("rational: unknown deviation %q", name)
}
