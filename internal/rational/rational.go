// Package rational models the non-cooperative setting of Section 3.2: selfish
// agents with the paper's normalized payoff scheme (1 for one's own color,
// 0 for any other color, −χ for failure), coalitions of deviating agents, and
// a game harness that measures whether a deviation improves any coalition
// member's expected utility — the empirical content of the whp t-strong
// equilibrium claim (Theorem 7, Definition 1).
//
// Coalition members coordinate through shared memory, which strictly
// over-approximates anything a coalition could arrange over GOSSIP channels;
// a no-profit result against these deviations is therefore evidence for the
// equilibrium, not a weakening of the adversary.
package rational

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topo"
)

// Utility is the paper's payoff scheme, parametrized by the failure penalty
// χ ≥ 0.
type Utility struct {
	Chi float64
}

// Of returns an agent's payoff for an outcome given its supported color:
// 1 if its color won, −χ on failure, 0 otherwise.
func (u Utility) Of(pref core.Color, o core.Outcome) float64 {
	if o.Failed {
		return -u.Chi
	}
	if o.Color == pref {
		return 1
	}
	return 0
}

// Coalition is the shared blackboard deviating agents coordinate through.
// All exported methods are safe for concurrent use (the engine may run Act
// in parallel).
type Coalition struct {
	Members []int

	mu sync.Mutex
	// intel holds commitment declarations harvested by any member, keyed by
	// the declaring agent.
	intel map[int32][]core.Intent
	// certs holds members' true certificates once finalized.
	certs map[int]*core.Certificate
	// chosen caches the promoted certificate (e.g. coalition-minimal).
	chosen *core.Certificate
}

// NewCoalition returns an empty blackboard for the given member IDs.
func NewCoalition(members []int) *Coalition {
	return &Coalition{
		Members: append([]int(nil), members...),
		intel:   make(map[int32][]core.Intent),
		certs:   make(map[int]*core.Certificate),
	}
}

// Contains reports whether id is a coalition member.
func (c *Coalition) Contains(id int) bool {
	for _, m := range c.Members {
		if m == id {
			return true
		}
	}
	return false
}

// ShareIntel stores a harvested declaration (first one wins, matching the
// binding-declaration rule).
func (c *Coalition) ShareIntel(voter int32, intents []core.Intent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.intel[voter]; !ok {
		c.intel[voter] = append([]core.Intent(nil), intents...)
	}
}

// Intel returns the harvested declaration for voter, if any.
func (c *Coalition) Intel(voter int32) ([]core.Intent, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.intel[voter]
	return in, ok
}

// IntelSize returns how many declarations were harvested.
func (c *Coalition) IntelSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.intel)
}

// RegisterCert publishes a member's true certificate.
func (c *Coalition) RegisterCert(id int, cert *core.Certificate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.certs[id] = cert
}

// MinCert returns the registered certificate with the smallest k, or nil if
// none registered yet. The result is cached once all members registered.
func (c *Coalition) MinCert() *core.Certificate {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.chosen != nil {
		return c.chosen
	}
	var best *core.Certificate
	for _, cert := range c.certs {
		if best == nil || cert.Less(best) {
			best = cert
		}
	}
	if best != nil && len(c.certs) == len(c.Members) {
		c.chosen = best
	}
	return best
}

// BuildContext carries everything a Deviation needs to construct its agents.
type BuildContext struct {
	Params    core.Params
	Topology  topo.Topology
	Colors    []core.Color
	Coalition *Coalition
	// Rng is the coalition's private randomness; Build should Split it per
	// member.
	Rng *rng.Source
}

// Deviation builds the coalition's (restricted protocol) agents. Build must
// return one agent per ctx.Coalition.Members entry, in order; each returned
// agent must also implement core.Participant.
type Deviation interface {
	Name() string
	Build(ctx *BuildContext) []gossip.Agent
}

// GameConfig describes one execution of (P₋C, P′C).
type GameConfig struct {
	Params    core.Params
	Colors    []core.Color
	Faulty    []bool
	Coalition []int
	Deviation Deviation
	Seed      uint64
	Workers   int
	Topology  topo.Topology // nil = complete graph
}

// GameResult reports one execution against a deviating coalition.
type GameResult struct {
	Outcome core.Outcome
	Metrics metrics.Snapshot
	// CoalitionColorWon reports whether the winning color is supported by
	// some coalition member.
	CoalitionColorWon bool
	// HonestAgents exposes the honest agents for inspection.
	HonestAgents []*core.Agent
}

// RunGame executes Protocol P where the agents in cfg.Coalition follow
// cfg.Deviation and everyone else follows P honestly.
func RunGame(cfg GameConfig) (GameResult, error) {
	p := cfg.Params
	if len(cfg.Colors) != p.N {
		return GameResult{}, fmt.Errorf("rational: %d colors for n = %d", len(cfg.Colors), p.N)
	}
	net := cfg.Topology
	if net == nil {
		net = topo.NewComplete(p.N)
	}
	inCoalition := make(map[int]bool, len(cfg.Coalition))
	for _, id := range cfg.Coalition {
		if id < 0 || id >= p.N {
			return GameResult{}, fmt.Errorf("rational: coalition member %d out of range", id)
		}
		if cfg.Faulty != nil && cfg.Faulty[id] {
			return GameResult{}, fmt.Errorf("rational: coalition member %d is faulty", id)
		}
		if inCoalition[id] {
			return GameResult{}, fmt.Errorf("rational: duplicate coalition member %d", id)
		}
		inCoalition[id] = true
	}
	master := rng.New(cfg.Seed)
	agents := make([]gossip.Agent, p.N)
	var honest []*core.Agent
	for i := 0; i < p.N; i++ {
		if (cfg.Faulty != nil && cfg.Faulty[i]) || inCoalition[i] {
			continue
		}
		if !cfg.Colors[i].Valid(p.NumColors) {
			return GameResult{}, fmt.Errorf("rational: node %d has color %d outside Σ", i, cfg.Colors[i])
		}
		a := core.NewAgent(i, p, cfg.Colors[i], net, master.Split(uint64(i)))
		agents[i] = a
		honest = append(honest, a)
	}
	if len(cfg.Coalition) > 0 {
		if cfg.Deviation == nil {
			return GameResult{}, fmt.Errorf("rational: coalition without deviation")
		}
		ctx := &BuildContext{
			Params:    p,
			Topology:  net,
			Colors:    cfg.Colors,
			Coalition: NewCoalition(cfg.Coalition),
			Rng:       master.Split(1 << 62),
		}
		devs := cfg.Deviation.Build(ctx)
		if len(devs) != len(cfg.Coalition) {
			return GameResult{}, fmt.Errorf("rational: deviation built %d agents for %d members",
				len(devs), len(cfg.Coalition))
		}
		for i, id := range cfg.Coalition {
			if _, ok := devs[i].(core.Participant); !ok {
				return GameResult{}, fmt.Errorf("rational: deviation agent %d is not a Participant", id)
			}
			agents[id] = devs[i]
		}
	}
	var counters metrics.Counters
	eng := gossip.NewEngine(gossip.Config{
		Topology: net,
		Faulty:   cfg.Faulty,
		Counters: &counters,
		Workers:  cfg.Workers,
	}, agents)
	eng.Run(p.TotalRounds() + 1)

	parts := make([]core.Participant, p.N)
	for i, ag := range agents {
		if ag != nil {
			parts[i] = ag.(core.Participant)
		}
	}
	outcome := core.CollectOutcome(parts, cfg.Faulty)
	won := false
	if !outcome.Failed {
		for _, id := range cfg.Coalition {
			if cfg.Colors[id] == outcome.Color {
				won = true
				break
			}
		}
	}
	return GameResult{
		Outcome:           outcome,
		Metrics:           counters.Snapshot(),
		CoalitionColorWon: won,
		HonestAgents:      honest,
	}, nil
}
