package rational

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/rng"
	"repro/internal/topo"
)

// buildOne constructs a single-member coalition agent for mechanics tests.
func buildOne(t *testing.T, dev Deviation, n, member int) gossip.Agent {
	t.Helper()
	p := core.MustParams(n, 2, 1)
	ctx := &BuildContext{
		Params:    p,
		Topology:  topo.NewComplete(n),
		Colors:    core.UniformColors(n, 2),
		Coalition: NewCoalition([]int{member}),
		Rng:       rng.New(99),
	}
	agents := dev.Build(ctx)
	if len(agents) != 1 {
		t.Fatalf("Build returned %d agents", len(agents))
	}
	return agents[0]
}

func TestMinKLiarMechanics(t *testing.T) {
	p := core.MustParams(16, 2, 1)
	a := buildOne(t, MinKLiar{ForgedK: 3}, 16, 5).(*liarAgent)
	q := p.Q
	// During Find-Min the liar answers pulls with the forged certificate.
	reply := a.HandlePull(2*q, 1, core.CertQuery{P: p})
	cert, ok := reply.(*core.Certificate)
	if !ok || cert.K != 3 || cert.Owner != 5 {
		t.Fatalf("forged reply = %v", reply)
	}
	// The forged certificate passes the structural sum check by design...
	if got := core.SumVotesMod(cert.W, p.M); got != cert.K {
		t.Fatal("forged certificate fails its own sum check")
	}
	// ...but is rejected by a verifier holding the liar's real declaration.
	log := core.NewCommitmentLog()
	log.Record(5, a.Agent.Intentions())
	if err := core.VerifyCertificate(p, cert, log); err == nil {
		t.Fatal("forged certificate passed verification against the binding declaration")
	}
	// Coherence: the liar pushes the forgery.
	act := a.Act(3 * q)
	if act.Kind != gossip.ActPush {
		t.Fatalf("coherence action = %v", act.Kind)
	}
	if c, ok := act.Payload.(*core.Certificate); !ok || c.K != 3 {
		t.Fatal("liar does not push the forgery in coherence")
	}
	// The liar never self-fails and decides its own color when the forgery
	// is the minimum it saw.
	a.Act(4 * q)
	if !a.Decided() || a.Failed() {
		t.Fatal("liar participant state wrong")
	}
}

func TestVoteWithholderMechanics(t *testing.T) {
	a := buildOne(t, VoteWithholder{}, 16, 4).(*withholderAgent)
	p := a.P
	for r := p.Q; r < 2*p.Q; r++ {
		if act := a.Act(r); act.Kind != gossip.ActNone {
			t.Fatalf("withholder acted in voting round %d: %v", r, act.Kind)
		}
	}
	// Everything else follows the protocol.
	if act := a.Act(0); act.Kind != gossip.ActPull {
		t.Fatal("withholder skipped commitment")
	}
}

func TestEquivocatorAlternatesDeclarations(t *testing.T) {
	a := buildOne(t, Equivocator{}, 16, 4).(*equivocatorAgent)
	p := a.P
	r1 := a.HandlePull(0, 1, core.IntentQuery{P: p}).(core.Intentions)
	r2 := a.HandlePull(0, 2, core.IntentQuery{P: p}).(core.Intentions)
	same := true
	for i := range r1.Votes {
		if r1.Votes[i] != r2.Votes[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("equivocator gave identical declarations")
	}
	// Both declarations are well-formed (length q), so neither puller marks
	// it faulty — the lie only surfaces at verification.
	if len(r1.Votes) != p.Q || len(r2.Votes) != p.Q {
		t.Fatal("equivocator declaration malformed")
	}
}

func TestAdaptiveSelfVoterLandsOnTarget(t *testing.T) {
	a := buildOne(t, AdaptiveSelfVoter{TargetK: 1}, 16, 4).(*adaptiveVoterAgent)
	p := a.P
	// Feed some honest votes during voting.
	a.HandlePush(p.Q, 2, core.Vote{P: p, Value: 1000})
	a.HandlePush(p.Q, 3, core.Vote{P: p, Value: 2000})
	// Final voting round: the adaptive self-vote.
	act := a.Act(2*p.Q - 1)
	if act.Kind != gossip.ActPush || act.To != 4 {
		t.Fatalf("final vote action = %+v", act)
	}
	v := act.Payload.(core.Vote)
	// Deliver it to itself as the engine would.
	a.HandlePush(2*p.Q-1, 4, v)
	if got := a.Agent.K(); got != 1 {
		t.Fatalf("adaptive k = %d, want 1", got)
	}
}

func TestVoteConcentratorTargetsRingleader(t *testing.T) {
	p := core.MustParams(16, 2, 1)
	ctx := &BuildContext{
		Params:    p,
		Topology:  topo.NewComplete(16),
		Colors:    core.UniformColors(16, 2),
		Coalition: NewCoalition([]int{7, 11}),
		Rng:       rng.New(1),
	}
	agents := VoteConcentrator{}.Build(ctx)
	for _, ag := range agents {
		ca := ag.(*concentratorAgent)
		for _, in := range ca.Agent.Intentions() {
			if in.Z != 7 {
				t.Fatalf("member %d intent targets %d, want ringleader 7", ca.ID(), in.Z)
			}
		}
		// The declaration it serves matches what it will vote (undetectable).
		decl := ca.HandlePull(0, 1, core.IntentQuery{P: p}).(core.Intentions)
		if len(decl.Votes) != p.Q || decl.Votes[0].Z != 7 {
			t.Fatal("declaration does not match rigged intentions")
		}
	}
}

func TestIntentSpammerMarkedFaulty(t *testing.T) {
	n := 16
	p := core.MustParams(n, 2, 1)
	spammer := buildOne(t, IntentSpammer{}, n, 4).(*spammerAgent)
	decl := spammer.HandlePull(0, 1, core.IntentQuery{P: p}).(core.Intentions)
	if len(decl.Votes) <= p.Q {
		t.Fatalf("spam declaration has only %d votes", len(decl.Votes))
	}
	// An honest agent receiving it marks the spammer faulty.
	honest := core.NewAgent(0, p, 0, topo.NewComplete(n), rng.New(2))
	honest.HandlePullReply(0, 4, decl)
	if !honest.Log().Faulty(4) {
		t.Fatal("oversized declaration accepted")
	}
}

func TestVoteConcentratorNoProfitEndToEnd(t *testing.T) {
	// The undetectable deviation must not raise the coalition win rate above
	// fair share, and must not cause failures (it is protocol-compliant).
	const n, trials = 48, 150
	fails, wins := countOutcomes(t, VoteConcentrator{}, []int{5, 11, 23}, n, trials)
	if fails > trials/10 {
		t.Fatalf("compliant deviation caused %d/%d failures", fails, trials)
	}
	// Coalition supports color 1 (IDs 5,11,23 are odd → color 1 under
	// UniformColors with 2 colors); fair share of color 1 is 50%.
	if float64(wins) > 0.65*float64(trials) {
		t.Fatalf("vote concentration won %d/%d — targeting should not matter", wins, trials)
	}
}

func TestIntentSpammerNoProfitEndToEnd(t *testing.T) {
	const n, trials = 48, 100
	_, wins := countOutcomes(t, IntentSpammer{}, []int{6}, n, trials)
	if float64(wins) > 0.65*float64(trials) {
		t.Fatalf("spammer colors won %d/%d", wins, trials)
	}
}

func TestPretendFaultyLearnsWinner(t *testing.T) {
	a := buildOne(t, PretendFaulty{}, 16, 4).(*pretendFaultyAgent)
	p := core.MustParams(16, 2, 1)
	cert := &core.Certificate{P: p, K: 9, Color: 1, Owner: 2, W: []core.WEntry{{Voter: 1, Value: 9}}}
	a.HandlePush(3*p.Q, 2, cert)
	worse := &core.Certificate{P: p, K: 20, Color: 0, Owner: 3, W: []core.WEntry{{Voter: 1, Value: 20}}}
	a.HandlePush(3*p.Q, 3, worse)
	for r := 0; r <= p.TotalRounds(); r++ {
		if act := a.Act(r); act.Kind != gossip.ActNone {
			t.Fatal("pretend-faulty acted")
		}
	}
	if !a.Decided() || a.FinalColor() != 1 {
		t.Fatalf("pretend-faulty output = %d, want winner color 1", a.FinalColor())
	}
	if a.HandlePull(0, 1, core.IntentQuery{P: p}) != nil {
		t.Fatal("pretend-faulty answered a pull")
	}
}

func TestDevCoreFallbackOutput(t *testing.T) {
	// A deviator that saw no certificate outputs its own color.
	a := buildOne(t, VoteWithholder{}, 16, 4).(*withholderAgent)
	if a.FinalColor() != a.Agent.InitialColor() {
		t.Fatal("fallback output wrong")
	}
}
