package rational

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topo"
)

// EquilibriumConfig describes one Theorem 7 experiment: T independent trials
// of the honest profile and T trials of the deviating profile, identical in
// every other respect.
type EquilibriumConfig struct {
	Params    core.Params
	Colors    []core.Color
	Faulty    []bool
	Coalition []int
	Deviation Deviation
	Utility   Utility
	// Topology defaults to the complete graph on N nodes when nil.
	Topology topo.Topology
	// Scheme optionally replaces Utility with a generalized payoff model
	// (see Scheme); nil uses Utility.
	Scheme Scheme
	Trials int
	Seed   uint64
	// Workers parallelizes across trials (0 = GOMAXPROCS).
	Workers int
}

// MemberStats summarizes one coalition member's utilities across trials.
type MemberStats struct {
	ID          int
	Color       core.Color
	HonestMean  float64
	DevMean     float64
	Gain        float64 // DevMean − HonestMean
	GainCI95    float64 // half-width of a 95% CI on the gain
	Significant bool    // gain − CI > 0: a statistically significant profit
}

// EquilibriumReport is the outcome of an equilibrium experiment.
type EquilibriumReport struct {
	Deviation string
	Trials    int
	Coalition []int

	HonestFailRate float64
	DevFailRate    float64

	// Win rate of any coalition-supported color.
	HonestCoalitionWinRate float64
	DevCoalitionWinRate    float64
	// FairShare is the coalition's colors' fair winning probability: the
	// fraction of active agents supporting a coalition color.
	FairShare float64

	Members []MemberStats
	// MinGain / MaxGain over coalition members.
	MinGain float64
	MaxGain float64
}

// SomeMemberDoesNotProfit reports whether at least one coalition member shows
// no statistically significant utility gain — the defining property of a
// whp t-strong equilibrium (Definition 1).
func (r EquilibriumReport) SomeMemberDoesNotProfit() bool {
	for _, m := range r.Members {
		if !m.Significant {
			return true
		}
	}
	return len(r.Members) == 0
}

// EvaluateEquilibrium runs the paired honest/deviating Monte-Carlo experiment
// and reports per-member expected utilities.
func EvaluateEquilibrium(cfg EquilibriumConfig) (EquilibriumReport, error) {
	if cfg.Trials < 1 {
		return EquilibriumReport{}, fmt.Errorf("rational: trials = %d", cfg.Trials)
	}
	if len(cfg.Coalition) == 0 {
		return EquilibriumReport{}, fmt.Errorf("rational: empty coalition")
	}
	if cfg.Deviation == nil {
		return EquilibriumReport{}, fmt.Errorf("rational: nil deviation")
	}

	type trialOut struct {
		outcome core.Outcome
		err     error
	}
	run := func(dev Deviation, seedSalt uint64) []trialOut {
		outs := make([]trialOut, cfg.Trials)
		seeds := rng.New(cfg.Seed ^ seedSalt)
		trialSeeds := make([]uint64, cfg.Trials)
		for i := range trialSeeds {
			trialSeeds[i] = seeds.Uint64()
		}
		par.ForN(cfg.Workers, cfg.Trials, func(i int) {
			res, err := RunGame(GameConfig{
				Params:    cfg.Params,
				Colors:    cfg.Colors,
				Faulty:    cfg.Faulty,
				Coalition: cfg.Coalition,
				Deviation: dev,
				Seed:      trialSeeds[i],
				Workers:   1, // parallelism lives at the trial level
				Topology:  cfg.Topology,
			})
			outs[i] = trialOut{outcome: res.Outcome, err: err}
		})
		return outs
	}

	honestOuts := run(Honest{}, 0x9e3779b97f4a7c15)
	devOuts := run(cfg.Deviation, 0xc2b2ae3d27d4eb4f)
	for _, o := range append(append([]trialOut(nil), honestOuts...), devOuts...) {
		if o.err != nil {
			return EquilibriumReport{}, o.err
		}
	}

	report := EquilibriumReport{
		Deviation: cfg.Deviation.Name(),
		Trials:    cfg.Trials,
		Coalition: append([]int(nil), cfg.Coalition...),
	}

	coalColors := make(map[core.Color]bool)
	for _, id := range cfg.Coalition {
		coalColors[cfg.Colors[id]] = true
	}
	active, coalSupported := 0, 0
	for i, c := range cfg.Colors {
		if cfg.Faulty != nil && cfg.Faulty[i] {
			continue
		}
		active++
		if coalColors[c] {
			coalSupported++
		}
	}
	if active > 0 {
		report.FairShare = float64(coalSupported) / float64(active)
	}

	tally := func(outs []trialOut) (failRate, coalWinRate float64) {
		fails, wins := 0, 0
		for _, o := range outs {
			if o.outcome.Failed {
				fails++
				continue
			}
			if coalColors[o.outcome.Color] {
				wins++
			}
		}
		t := float64(len(outs))
		return float64(fails) / t, float64(wins) / t
	}
	report.HonestFailRate, report.HonestCoalitionWinRate = tally(honestOuts)
	report.DevFailRate, report.DevCoalitionWinRate = tally(devOuts)

	scheme := cfg.Scheme
	if scheme == nil {
		scheme = cfg.Utility
	}
	members := append([]int(nil), cfg.Coalition...)
	sort.Ints(members)
	report.MinGain = 2 // utilities live in [−χ, 1]; gains in [−1−χ, 1+χ]
	report.MaxGain = -2 - cfg.Utility.Chi
	for _, id := range members {
		pref := cfg.Colors[id]
		hu := make([]float64, cfg.Trials)
		du := make([]float64, cfg.Trials)
		for i := range honestOuts {
			hu[i] = scheme.Payoff(pref, honestOuts[i].outcome)
			du[i] = scheme.Payoff(pref, devOuts[i].outcome)
		}
		hm, hci := stats.MeanCI95(hu)
		dm, dci := stats.MeanCI95(du)
		gain := dm - hm
		ci := hci + dci // conservative union of the two CIs
		ms := MemberStats{
			ID: id, Color: pref,
			HonestMean: hm, DevMean: dm,
			Gain: gain, GainCI95: ci,
			Significant: gain-ci > 0,
		}
		report.Members = append(report.Members, ms)
		if gain < report.MinGain {
			report.MinGain = gain
		}
		if gain > report.MaxGain {
			report.MaxGain = gain
		}
	}
	return report, nil
}
