// Package baseline implements the comparison systems the paper positions
// Protocol P against:
//
//   - LocalSumElection: the LOCAL-model fair leader election in the style of
//     Abraham–Dolev–Halpern [2] — every agent broadcasts a random value to
//     everyone; the leader is selected by the sum modulo the number of
//     responders. It is fair and (in its commit–reveal form) robust to a
//     rushing agent, but costs Θ(n²) messages and Θ(n) local memory, the
//     inefficiency the paper's protocol removes.
//
//   - Polling: Hassin–Peleg proportionate-agreement polling [15] (the voter
//     model): each round every agent adopts the color of a u.a.r. peer. It is
//     fair in expectation and ultra-light per round, but needs Θ(n) rounds on
//     the complete graph and offers no protection against rational agents.
//
//   - NaiveMinGossip: Protocol P stripped of the Commitment and Verification
//     machinery — each agent draws its lottery value locally and the network
//     gossips the minimum. The ablation shows why the machinery exists: a
//     single liar claiming k = 0 wins every time.
package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topo"
)

// LocalSumConfig configures a LOCAL-model modular-sum fair leader election.
type LocalSumConfig struct {
	N      int
	Colors []core.Color
	Faulty []bool
	Seed   uint64
	// CommitReveal runs the two-round commit–reveal variant (robust to a
	// rushing deviator at twice the message cost).
	CommitReveal bool
	// HasRusher marks agent Rusher as a rushing deviator that waits for
	// everyone else's value before choosing its own so that it wins. Without
	// commit–reveal the rusher always succeeds; with it, the rusher's choice
	// is already locked.
	HasRusher bool
	Rusher    int
}

// LocalSumResult reports one LOCAL-model election.
type LocalSumResult struct {
	Outcome core.Outcome
	Leader  int
	Rounds  int
	// Messages counts point-to-point sends: every active agent addresses
	// every other node each round — the Ω(n²) cost the paper's protocol
	// avoids.
	Messages int
	Bits     int64
}

// RunLocalSum executes the baseline election analytically (the LOCAL model
// needs no gossip engine: all-to-all in each round).
func RunLocalSum(cfg LocalSumConfig) (LocalSumResult, error) {
	n := cfg.N
	if n < 2 {
		return LocalSumResult{}, fmt.Errorf("baseline: n = %d", n)
	}
	if len(cfg.Colors) != n {
		return LocalSumResult{}, fmt.Errorf("baseline: %d colors for n = %d", len(cfg.Colors), n)
	}
	if cfg.HasRusher && (cfg.Rusher < 0 || cfg.Rusher >= n) {
		return LocalSumResult{}, fmt.Errorf("baseline: rusher %d out of range", cfg.Rusher)
	}
	master := rng.New(cfg.Seed)
	var active []int
	for i := 0; i < n; i++ {
		if cfg.Faulty != nil && cfg.Faulty[i] {
			continue
		}
		active = append(active, i)
	}
	if len(active) == 0 {
		return LocalSumResult{Outcome: core.Outcome{Failed: true}}, nil
	}

	// Each active agent draws r_i u.a.r. in [0, |A|).
	values := make(map[int]int, len(active))
	for _, id := range active {
		values[id] = master.Split(uint64(id)).Intn(len(active))
	}

	sum := 0
	for _, id := range active {
		sum += values[id]
	}
	if cfg.HasRusher && !cfg.isFaulty(cfg.Rusher) {
		if !cfg.CommitReveal {
			// The rusher saw everyone else's value and replaces its own so
			// the index lands on itself.
			idx := indexOf(active, cfg.Rusher)
			if idx >= 0 {
				rest := sum - values[cfg.Rusher]
				want := (idx - rest) % len(active)
				if want < 0 {
					want += len(active)
				}
				values[cfg.Rusher] = want
				sum = rest + want
			}
		}
		// With commit–reveal the rusher's value was committed in round 1;
		// rushing the reveal gains nothing.
	}

	leader := active[sum%len(active)]
	rounds := 1
	if cfg.CommitReveal {
		rounds = 2
	}
	msgs := rounds * len(active) * (n - 1)
	valueBits := metrics.BitsForValues(uint64(len(active)))
	colorBits := metrics.BitsForValues(uint64(maxColor(cfg.Colors) + 1))
	bits := int64(msgs) * int64(valueBits+colorBits)
	return LocalSumResult{
		Outcome:  core.Outcome{Color: cfg.Colors[leader]},
		Leader:   leader,
		Rounds:   rounds,
		Messages: msgs,
		Bits:     bits,
	}, nil
}

func (cfg LocalSumConfig) isFaulty(id int) bool {
	return cfg.Faulty != nil && id >= 0 && id < len(cfg.Faulty) && cfg.Faulty[id]
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

func maxColor(cs []core.Color) int {
	m := 0
	for _, c := range cs {
		if int(c) > m {
			m = int(c)
		}
	}
	return m
}

// colorPayload carries a color in the polling protocol.
type colorPayload struct {
	c    core.Color
	bits int
}

func (p colorPayload) SizeBits() int { return p.bits }

// PollingAgent implements Hassin–Peleg proportionate polling: every round,
// pull a u.a.r. peer's current color and adopt it. There is no termination
// detection inside the protocol; the harness stops when the configuration is
// monochromatic.
type PollingAgent struct {
	id    int
	color core.Color
	reply core.Color // start-of-round snapshot answered to pulls
	bits  int
	net   topo.Topology
	r     *rng.Source
}

// NewPollingAgent builds a polling agent with the given initial color.
func NewPollingAgent(id int, color core.Color, numColors int, net topo.Topology, r *rng.Source) *PollingAgent {
	return &PollingAgent{
		id: id, color: color, reply: color,
		bits: metrics.BitsForValues(uint64(numColors)),
		net:  net, r: r,
	}
}

// Color returns the agent's current color.
func (a *PollingAgent) Color() core.Color { return a.color }

// Act pulls a u.a.r. peer. It also snapshots the color answered to pulls
// this round, so all adoptions in a round sample the start-of-round
// configuration — the synchronous voter model, whose winning probability is
// exactly proportional to the initial support (martingale argument). Without
// the snapshot, mid-round updates bias against agents that update early.
func (a *PollingAgent) Act(round int) gossip.Action {
	a.reply = a.color
	return gossip.PullFrom(a.net.SamplePeer(a.id, a.r), colorPayload{bits: 1})
}

// HandlePush ignores pushes (the protocol is pull-only).
func (a *PollingAgent) HandlePush(round, from int, p gossip.Payload) {}

// HandlePull answers with the start-of-round color.
func (a *PollingAgent) HandlePull(round, from int, q gossip.Payload) gossip.Payload {
	return colorPayload{c: a.reply, bits: a.bits}
}

// HandlePullReply adopts the pulled color.
func (a *PollingAgent) HandlePullReply(round, from int, reply gossip.Payload) {
	if cp, ok := reply.(colorPayload); ok {
		a.color = cp.c
	}
}

// PollingConfig configures a voter-model run.
type PollingConfig struct {
	N         int
	NumColors int
	Colors    []core.Color
	Faulty    []bool
	Seed      uint64
	MaxRounds int // 0 means 50·n
}

// PollingResult reports one voter-model run.
type PollingResult struct {
	Outcome core.Outcome
	Rounds  int
	Metrics metrics.Snapshot
}

// StubbornAgent is a PollingAgent that never updates its color — the
// one-line deviation that completely defeats the polling baseline: the voter
// model absorbed at a stubborn agent converges to that agent's color (or
// never terminates). Protocol P's lottery structure is immune to the
// analogous behaviour.
type StubbornAgent struct{ PollingAgent }

// HandlePullReply ignores the pulled color.
func (a *StubbornAgent) HandlePullReply(round, from int, reply gossip.Payload) {}

// RunPollingStubborn runs the polling baseline with one stubborn agent.
func RunPollingStubborn(cfg PollingConfig, stubborn int) (PollingResult, error) {
	if stubborn < 0 || stubborn >= cfg.N {
		return PollingResult{}, fmt.Errorf("baseline: stubborn agent %d out of range", stubborn)
	}
	return runPolling(cfg, stubborn)
}

// RunPolling executes the polling baseline until the active agents are
// monochromatic or MaxRounds elapse.
func RunPolling(cfg PollingConfig) (PollingResult, error) {
	return runPolling(cfg, -1)
}

func runPolling(cfg PollingConfig, stubborn int) (PollingResult, error) {
	n := cfg.N
	if len(cfg.Colors) != n {
		return PollingResult{}, fmt.Errorf("baseline: %d colors for n = %d", len(cfg.Colors), n)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 50 * n
	}
	net := topo.NewComplete(n)
	master := rng.New(cfg.Seed)
	agents := make([]gossip.Agent, n)
	var poll []*PollingAgent
	for i := 0; i < n; i++ {
		if cfg.Faulty != nil && cfg.Faulty[i] {
			continue
		}
		a := NewPollingAgent(i, cfg.Colors[i], cfg.NumColors, net, master.Split(uint64(i)))
		if i == stubborn {
			agents[i] = &StubbornAgent{PollingAgent: *a}
			poll = append(poll, &(agents[i].(*StubbornAgent).PollingAgent))
			continue
		}
		agents[i] = a
		poll = append(poll, a)
	}
	if len(poll) == 0 {
		return PollingResult{Outcome: core.Outcome{Failed: true}}, nil
	}
	var counters metrics.Counters
	eng := gossip.NewEngine(gossip.Config{
		Topology: net, Faulty: cfg.Faulty, Counters: &counters, Workers: 1,
	}, agents)
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		if mono(poll) {
			break
		}
		eng.Step()
	}
	out := core.Outcome{Failed: true}
	if mono(poll) {
		out = core.Outcome{Color: poll[0].Color()}
	}
	return PollingResult{Outcome: out, Rounds: rounds, Metrics: counters.Snapshot()}, nil
}

func mono(poll []*PollingAgent) bool {
	for _, a := range poll {
		if a.Color() != poll[0].Color() {
			return false
		}
	}
	return true
}
