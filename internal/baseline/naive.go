package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topo"
)

// naiveTicket is the payload of the naive min-gossip protocol: a lottery
// value with the owner's color. Unlike Protocol P's certificate it carries
// no evidence, so nothing stops an owner from just claiming value 0.
type naiveTicket struct {
	K     uint64
	Color core.Color
	Owner int32
	bits  int
}

func (t naiveTicket) SizeBits() int { return t.bits }

func (t naiveTicket) less(o naiveTicket) bool {
	if t.K != o.K {
		return t.K < o.K
	}
	return t.Owner < o.Owner
}

// NaiveAgent runs the ablated protocol: draw k u.a.r. locally, gossip the
// minimum ticket for q rounds (pull), then 	adopt the minimum's color. This is
// the "simple and natural idea" of Section 3 without the Commitment /
// Voting / Verification scaffolding.
type NaiveAgent struct {
	id      int
	q       int
	ticket  naiveTicket
	minTick naiveTicket
	reply   naiveTicket
	net     topo.Topology
	r       *rng.Source
	decided bool
}

// NewNaiveAgent builds an honest naive agent.
func NewNaiveAgent(id int, p core.Params, color core.Color, net topo.Topology, r *rng.Source) *NaiveAgent {
	t := naiveTicket{
		K:     r.Uint64n(p.M) + 1,
		Color: color,
		Owner: int32(id),
		bits:  metrics.BitsForValues(p.M) + metrics.BitsForValues(uint64(p.NumColors)) + metrics.BitsForValues(uint64(p.N)),
	}
	return &NaiveAgent{id: id, q: p.Q, ticket: t, minTick: t, reply: t, net: net, r: r}
}

// ForceTicket overrides the agent's lottery value — the one-line "deviation"
// that breaks the naive protocol (a liar claims the minimum possible value).
func (a *NaiveAgent) ForceTicket(k uint64) {
	a.ticket.K = k
	a.minTick = a.ticket
	a.reply = a.ticket
}

// Act pulls a u.a.r. peer's minimal ticket for q rounds, then decides.
func (a *NaiveAgent) Act(round int) gossip.Action {
	if round >= a.q {
		a.decided = true
		return gossip.NoAction()
	}
	a.reply = a.minTick
	return gossip.PullFrom(a.net.SamplePeer(a.id, a.r), colorPayload{bits: 1})
}

// HandlePush ignores pushes.
func (a *NaiveAgent) HandlePush(round, from int, p gossip.Payload) {}

// HandlePull answers with the start-of-round minimal ticket.
func (a *NaiveAgent) HandlePull(round, from int, q gossip.Payload) gossip.Payload {
	return a.reply
}

// HandlePullReply adopts a smaller ticket.
func (a *NaiveAgent) HandlePullReply(round, from int, reply gossip.Payload) {
	t, ok := reply.(naiveTicket)
	if !ok {
		return
	}
	if t.less(a.minTick) {
		a.minTick = t
	}
}

// Decided implements gossip.Decider / core.Participant.
func (a *NaiveAgent) Decided() bool { return a.decided }

// Failed implements core.Participant (the naive protocol cannot fail — that
// is exactly its weakness).
func (a *NaiveAgent) Failed() bool { return false }

// FinalColor implements core.Participant.
func (a *NaiveAgent) FinalColor() core.Color {
	if !a.decided {
		return core.ColorBot
	}
	return a.minTick.Color
}

// Output implements gossip.Decider.
func (a *NaiveAgent) Output() int { return int(a.FinalColor()) }

// NaiveConfig configures a naive min-gossip run.
type NaiveConfig struct {
	Params core.Params
	Colors []core.Color
	Faulty []bool
	Seed   uint64
	// Liar, when HasLiar, forces that agent's ticket to 0 — the trivially
	// winning deviation the ablation demonstrates.
	HasLiar bool
	Liar    int
}

// NaiveResult reports one naive run.
type NaiveResult struct {
	Outcome core.Outcome
	Rounds  int
	Metrics metrics.Snapshot
	// LiarWon reports whether the liar's color won.
	LiarWon bool
}

// RunNaive executes the ablated protocol.
func RunNaive(cfg NaiveConfig) (NaiveResult, error) {
	p := cfg.Params
	if len(cfg.Colors) != p.N {
		return NaiveResult{}, fmt.Errorf("baseline: %d colors for n = %d", len(cfg.Colors), p.N)
	}
	if cfg.HasLiar && (cfg.Liar < 0 || cfg.Liar >= p.N) {
		return NaiveResult{}, fmt.Errorf("baseline: liar %d out of range", cfg.Liar)
	}
	net := topo.NewComplete(p.N)
	master := rng.New(cfg.Seed)
	agents := make([]gossip.Agent, p.N)
	parts := make([]core.Participant, p.N)
	for i := 0; i < p.N; i++ {
		if cfg.Faulty != nil && cfg.Faulty[i] {
			continue
		}
		a := NewNaiveAgent(i, p, cfg.Colors[i], net, master.Split(uint64(i)))
		if cfg.HasLiar && i == cfg.Liar {
			a.ForceTicket(0)
		}
		agents[i] = a
		parts[i] = a
	}
	var counters metrics.Counters
	eng := gossip.NewEngine(gossip.Config{
		Topology: net, Faulty: cfg.Faulty, Counters: &counters, Workers: 1,
	}, agents)
	rounds := eng.Run(p.Q + 1)
	out := core.CollectOutcome(parts, cfg.Faulty)
	res := NaiveResult{Outcome: out, Rounds: rounds, Metrics: counters.Snapshot()}
	if cfg.HasLiar && !out.Failed && out.Color == cfg.Colors[cfg.Liar] {
		res.LiarWon = true
	}
	return res, nil
}
