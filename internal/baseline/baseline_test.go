package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestLocalSumBasic(t *testing.T) {
	const n = 32
	colors := core.UniformColors(n, 2)
	res, err := RunLocalSum(LocalSumConfig{N: n, Colors: colors, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Failed {
		t.Fatal("election failed")
	}
	if res.Leader < 0 || res.Leader >= n {
		t.Fatalf("leader = %d", res.Leader)
	}
	if res.Outcome.Color != colors[res.Leader] {
		t.Fatal("outcome color is not the leader's")
	}
	if res.Messages != n*(n-1) {
		t.Fatalf("messages = %d, want n(n-1) = %d", res.Messages, n*(n-1))
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestLocalSumCommitRevealDoublesMessages(t *testing.T) {
	const n = 16
	colors := core.UniformColors(n, 2)
	res, err := RunLocalSum(LocalSumConfig{N: n, Colors: colors, Seed: 1, CommitReveal: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2*n*(n-1) || res.Rounds != 2 {
		t.Fatalf("commit-reveal: messages=%d rounds=%d", res.Messages, res.Rounds)
	}
}

func TestLocalSumFairness(t *testing.T) {
	const n, trials = 10, 4000
	colors := core.LeaderElectionColors(n)
	wins := make([]int, n)
	for s := 0; s < trials; s++ {
		res, err := RunLocalSum(LocalSumConfig{N: n, Colors: colors, Seed: uint64(s) + 1})
		if err != nil {
			t.Fatal(err)
		}
		wins[res.Leader]++
	}
	expected := make([]float64, n)
	for i := range expected {
		expected[i] = 1.0 / n
	}
	gof, err := stats.ChiSquareGOF(wins, expected)
	if err != nil {
		t.Fatal(err)
	}
	if gof.PValue < 0.001 {
		t.Fatalf("LOCAL sum unfair: wins=%v p=%v", wins, gof.PValue)
	}
}

func TestLocalSumFaultsExcluded(t *testing.T) {
	const n = 20
	colors := core.UniformColors(n, 2)
	faulty := core.WorstCaseFaults(n, 0.5)
	for s := 0; s < 200; s++ {
		res, err := RunLocalSum(LocalSumConfig{N: n, Colors: colors, Faulty: faulty, Seed: uint64(s)})
		if err != nil {
			t.Fatal(err)
		}
		if faulty[res.Leader] {
			t.Fatalf("faulty leader %d elected", res.Leader)
		}
	}
}

func TestLocalSumRusherWinsWithoutCommitReveal(t *testing.T) {
	const n = 16
	colors := core.LeaderElectionColors(n)
	for s := 0; s < 100; s++ {
		res, err := RunLocalSum(LocalSumConfig{
			N: n, Colors: colors, Seed: uint64(s), HasRusher: true, Rusher: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Leader != 3 {
			t.Fatalf("seed %d: rusher did not win (leader %d)", s, res.Leader)
		}
	}
}

func TestLocalSumRusherBlockedByCommitReveal(t *testing.T) {
	const n, trials = 16, 600
	colors := core.LeaderElectionColors(n)
	rusherWins := 0
	for s := 0; s < trials; s++ {
		res, err := RunLocalSum(LocalSumConfig{
			N: n, Colors: colors, Seed: uint64(s),
			HasRusher: true, Rusher: 3, CommitReveal: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Leader == 3 {
			rusherWins++
		}
	}
	// Fair share is trials/n ≈ 37; allow generous slack.
	if rusherWins > 3*trials/n {
		t.Fatalf("rusher won %d/%d despite commit-reveal", rusherWins, trials)
	}
}

func TestLocalSumValidation(t *testing.T) {
	colors := core.UniformColors(4, 2)
	if _, err := RunLocalSum(LocalSumConfig{N: 1, Colors: colors[:1]}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := RunLocalSum(LocalSumConfig{N: 4, Colors: colors[:2]}); err == nil {
		t.Error("short colors accepted")
	}
	if _, err := RunLocalSum(LocalSumConfig{N: 4, Colors: colors, HasRusher: true, Rusher: 9}); err == nil {
		t.Error("out-of-range rusher accepted")
	}
}

func TestPollingReachesConsensus(t *testing.T) {
	const n = 64
	res, err := RunPolling(PollingConfig{
		N: n, NumColors: 2, Colors: core.UniformColors(n, 2), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Failed {
		t.Fatalf("polling failed after %d rounds", res.Rounds)
	}
	if !res.Outcome.Color.Valid(2) {
		t.Fatalf("invalid winner %d", res.Outcome.Color)
	}
}

func TestPollingFairInExpectation(t *testing.T) {
	// 75/25 split: color 0 should win ≈ 75% of runs (martingale argument).
	const n, trials = 32, 400
	colors := core.SplitColors(n, 0.75)
	wins := make([]int, 2)
	for s := 0; s < trials; s++ {
		res, err := RunPolling(PollingConfig{N: n, NumColors: 2, Colors: colors, Seed: uint64(s) + 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome.Failed {
			t.Fatal("polling failed")
		}
		wins[res.Outcome.Color]++
	}
	gof, err := stats.ChiSquareGOF(wins, []float64{0.75, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if gof.PValue < 0.001 {
		t.Fatalf("polling unfair: wins=%v p=%v", wins, gof.PValue)
	}
}

func TestPollingRoundsLinearInN(t *testing.T) {
	// The voter model needs Θ(n) rounds — the round-complexity price the
	// paper's protocol avoids. Check rounds grow superlogarithmically.
	mean := func(n int) float64 {
		total := 0
		const trials = 20
		for s := 0; s < trials; s++ {
			res, err := RunPolling(PollingConfig{
				N: n, NumColors: 2, Colors: core.UniformColors(n, 2), Seed: uint64(100*n + s),
			})
			if err != nil || res.Outcome.Failed {
				t.Fatalf("polling n=%d failed: %v", n, err)
			}
			total += res.Rounds
		}
		return float64(total) / trials
	}
	small, large := mean(16), mean(128)
	if large < 2*small {
		t.Fatalf("polling rounds: n=16→%.1f, n=128→%.1f; expected ~linear growth", small, large)
	}
}

func TestPollingWithFaults(t *testing.T) {
	const n = 48
	res, err := RunPolling(PollingConfig{
		N: n, NumColors: 2, Colors: core.UniformColors(n, 2),
		Faulty: core.WorstCaseFaults(n, 0.25), Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Failed {
		t.Fatal("polling with faults failed")
	}
}

func TestNaiveHonestIsFair(t *testing.T) {
	const n, trials = 24, 600
	p := core.MustParams(n, 2, core.DefaultGamma)
	colors := core.SplitColors(n, 0.5)
	wins := make([]int, 2)
	for s := 0; s < trials; s++ {
		res, err := RunNaive(NaiveConfig{Params: p, Colors: colors, Seed: uint64(s) + 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome.Failed {
			t.Fatal("honest naive run failed")
		}
		wins[res.Outcome.Color]++
	}
	gof, err := stats.ChiSquareGOF(wins, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if gof.PValue < 0.001 {
		t.Fatalf("honest naive unfair: %v p=%v", wins, gof.PValue)
	}
}

func TestNaiveLiarAlwaysWins(t *testing.T) {
	// The ablation headline: without commitment/verification, a single liar
	// claiming ticket 0 wins every run.
	const n, trials = 24, 100
	p := core.MustParams(n, 2, core.DefaultGamma)
	colors := core.UniformColors(n, 2)
	liarWins := 0
	for s := 0; s < trials; s++ {
		res, err := RunNaive(NaiveConfig{
			Params: p, Colors: colors, Seed: uint64(s) + 1, HasLiar: true, Liar: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.LiarWon {
			liarWins++
		}
	}
	if liarWins < trials*95/100 {
		t.Fatalf("naive liar won only %d/%d", liarWins, trials)
	}
}

func TestNaiveSubquadraticMessages(t *testing.T) {
	const n = 256
	p := core.MustParams(n, 2, 2)
	res, err := RunNaive(NaiveConfig{Params: p, Colors: core.UniformColors(n, 2), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages >= n*n/4 {
		t.Fatalf("naive messages = %d, not o(n²)", res.Metrics.Messages)
	}
}

func TestNaiveValidation(t *testing.T) {
	p := core.MustParams(8, 2, 1)
	if _, err := RunNaive(NaiveConfig{Params: p, Colors: make([]core.Color, 3)}); err == nil {
		t.Error("bad colors length accepted")
	}
	if _, err := RunNaive(NaiveConfig{Params: p, Colors: core.UniformColors(8, 2), HasLiar: true, Liar: 99}); err == nil {
		t.Error("out-of-range liar accepted")
	}
}
