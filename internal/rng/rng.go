// Package rng provides deterministic, splittable pseudo-random number
// generation for the simulator.
//
// Every random choice in a simulation (vote values, peer selection, fault
// placement, color assignment) is drawn from a stream derived from a single
// master seed, so an entire experiment is reproducible from one uint64 and
// results are independent of goroutine scheduling: each agent and each trial
// owns a private stream split off deterministically with Split.
//
// The generator is xoshiro256** seeded through splitmix64, the initialization
// recommended by the xoshiro authors. It is not cryptographically secure; it
// is a simulation RNG.
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 advances the splitmix64 state in *state and returns the next
// output. It is used both as a seed expander and as a cheap standalone
// generator for derived seeds.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes a pair of uint64 values into a well-distributed uint64.
// It is the basis for Split: Mix64(seed, index) yields independent-looking
// streams for distinct indices.
func Mix64(a, b uint64) uint64 {
	s := a ^ (b * 0xff51afd7ed558ccd)
	x := SplitMix64(&s)
	s ^= b
	return x ^ SplitMix64(&s)
}

// Source is a xoshiro256** generator. The zero value is invalid; construct
// with New or Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64. Distinct seeds give
// uncorrelated streams; seed 0 is valid.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed reinitializes the generator in place from seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro requires a nonzero state; splitmix64 of any seed produces one
	// with overwhelming probability, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Split derives a new independent Source from this one's seed lineage and the
// given index. Calling Split with distinct indices yields distinct streams;
// the parent stream is not advanced, so splitting is itself deterministic and
// order-independent.
func (r *Source) Split(index uint64) *Source {
	var dst Source
	r.SplitInto(index, &dst)
	return &dst
}

// SplitSeed returns the seed that Split(index) expands: deriving a stream via
// New(r.SplitSeed(i)) or dst.Reseed(r.SplitSeed(i)) is byte-identical to
// Split(i). It exists so pooled callers can re-derive per-agent streams into
// reused Sources without allocating.
func (r *Source) SplitSeed(index uint64) uint64 {
	// Combine the full parent state so streams split from different parents
	// differ even for equal indices.
	h := Mix64(r.s[0]^bits.RotateLeft64(r.s[2], 17), r.s[1]^bits.RotateLeft64(r.s[3], 31))
	return Mix64(h, index)
}

// SplitInto reseeds dst in place to the exact stream Split(index) would
// return, without allocating. The parent stream is not advanced.
func (r *Source) SplitInto(index uint64, dst *Source) {
	dst.Reseed(r.SplitSeed(index))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Int63 returns a non-negative int64, satisfying math/rand.Source64 shape.
func (r *Source) Int63() int64 { return int64(r.Uint64() >> 1) }

// Seed is present to satisfy math/rand.Source; it reseeds the stream.
func (r *Source) Seed(seed int64) { r.Reseed(uint64(seed)) }

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// It uses Lemire's multiply-shift rejection method (unbiased).
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// IntnExcept returns a uniform int in [0, n) \ {except}. It panics if n <= 1
// or except is outside [0, n).
func (r *Source) IntnExcept(n, except int) int {
	if n <= 1 {
		panic("rng: IntnExcept needs n > 1")
	}
	if except < 0 || except >= n {
		panic("rng: IntnExcept except out of range")
	}
	v := r.Intn(n - 1)
	if v >= except {
		v++
	}
	return v
}

// Range returns a uniform value in the inclusive integer range [lo, hi].
func (r *Source) Range(lo, hi int64) int64 {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + int64(r.Uint64n(uint64(hi-lo)+1))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns the number of failures before the first success in a
// sequence of independent Bernoulli(p) trials: P(G = k) = (1−p)^k · p for
// k ≥ 0. It is the waiting-time primitive behind skip-sampling: scanning a
// population and flipping a Bernoulli(p) coin per element is distributionally
// identical to jumping Geometric(p)+1 elements between successes, which
// turns an O(population) scan into O(expected successes) work.
//
// The draw is by inverse CDF, G = ⌊ln(U)/ln(1−p)⌋ with U uniform on (0, 1]:
// P(G ≥ k) = P(U ≤ (1−p)^k) = (1−p)^k, the exact geometric tail (up to
// float64 rounding of the logarithms). One uniform is consumed per call.
// p = 1 returns 0 without consuming randomness; p ≤ 0 panics (the waiting
// time would be infinite — callers handle the never-hits case themselves,
// typically via SkipPast returning past the end of their population).
func (r *Source) Geometric(p float64) uint64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with p <= 0")
	}
	// 1 − Float64() lies in (0, 1]: u = 1 exactly maps to G = 0, and the
	// smallest u (2⁻⁵³) bounds G ≤ 53·ln2/p, so the float division cannot
	// produce +Inf. Log1p keeps precision for small p, where ln(1−p) ≈ −p.
	u := 1.0 - r.Float64()
	g := math.Log(u) / math.Log1p(-p)
	if g >= maxGeometric {
		return math.MaxUint64
	}
	return uint64(g)
}

// maxGeometric guards the float→uint64 conversion in Geometric: any quotient
// at or beyond 2⁶³ is clamped to MaxUint64 (a skip past every population a
// uint64 can index, so callers see "no hit" uniformly).
const maxGeometric = 1 << 63

// SkipPast returns the index of the next success at or after position i when
// every element of a population is independently selected with probability p:
// i + Geometric(p). Scanning [i, n) with repeated SkipPast visits exactly the
// elements a per-element Bernoulli(p) scan would select, in ascending order,
// at O(selected) cost; a return ≥ n means no further element is selected.
// p ≤ 0 never hits: it returns MaxUint64 without consuming randomness.
func (r *Source) SkipPast(i uint64, p float64) uint64 {
	if p <= 0 {
		return math.MaxUint64
	}
	g := r.Geometric(p)
	if i > math.MaxUint64-g {
		return math.MaxUint64
	}
	return i + g
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place uniformly at random.
func Shuffle[T any](r *Source, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	// Partial Fisher–Yates over an index map; O(k) memory via sparse map for
	// large n, dense slice for small n.
	if n <= 4*k || n <= 1024 {
		p := r.Perm(n)
		return p[:k]
	}
	chosen := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		vj, ok := chosen[j]
		if !ok {
			vj = j
		}
		vi, ok := chosen[i]
		if !ok {
			vi = i
		}
		chosen[j] = vi
		out[i] = vj
	}
	return out
}
