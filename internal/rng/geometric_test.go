package rng

import (
	"math"
	"testing"
)

// The geometric sampler is the statistical foundation of the sparse dynamic-
// topology engine: skip-sampling is only exchangeable with a per-element
// Bernoulli scan if Geometric really has the P(G = k) = (1−p)^k·p law. These
// tests pin the pmf (chi-square), the moments, the skip-scan equivalence,
// and the edge cases. All seeds are fixed, so every check is deterministic.

// TestGeometricPMFChiSquare draws many geometrics and chi-square-tests the
// empirical pmf against (1−p)^k·p, tail pooled.
func TestGeometricPMFChiSquare(t *testing.T) {
	for _, p := range []float64{0.5, 0.2, 0.05} {
		r := New(41)
		const draws = 200000
		// Bin k = 0..K−1 plus a pooled tail, K chosen so the tail expectation
		// stays well above 5.
		K := int(math.Ceil(math.Log(20.0/draws) / math.Log(1-p)))
		hist := make([]float64, K+1)
		for i := 0; i < draws; i++ {
			g := r.Geometric(p)
			if g >= uint64(K) {
				hist[K]++
			} else {
				hist[g]++
			}
		}
		stat := 0.0
		for k := 0; k <= K; k++ {
			var want float64
			if k < K {
				want = math.Pow(1-p, float64(k)) * p * draws
			} else {
				want = math.Pow(1-p, float64(K)) * draws // tail P(G ≥ K)
			}
			stat += (hist[k] - want) * (hist[k] - want) / want
		}
		// df = K; the 0.001 critical value is ≈ df + 3.3√(2df), doubled for
		// deterministic-seed headroom.
		limit := 2 * (float64(K) + 3.3*math.Sqrt(2*float64(K)))
		if stat > limit {
			t.Errorf("p=%g: chi-square %.1f over %d bins, limit %.1f", p, stat, K+1, limit)
		}
	}
}

// TestGeometricMoments pins mean (1−p)/p and variance (1−p)/p² within
// sampling tolerance.
func TestGeometricMoments(t *testing.T) {
	for _, p := range []float64{0.3, 0.01, 0.001} {
		r := New(7)
		const draws = 300000
		var sum, sumsq float64
		for i := 0; i < draws; i++ {
			g := float64(r.Geometric(p))
			sum += g
			sumsq += g * g
		}
		mean := sum / draws
		wantMean := (1 - p) / p
		variance := sumsq/draws - mean*mean
		wantVar := (1 - p) / (p * p)
		// Sample-mean sd = √(var/draws); 5σ bands keep fixed seeds safe.
		tol := 5 * math.Sqrt(wantVar/draws)
		if math.Abs(mean-wantMean) > tol {
			t.Errorf("p=%g: mean %.2f, want %.2f ± %.2f", p, mean, wantMean, tol)
		}
		if variance < wantVar*0.9 || variance > wantVar*1.1 {
			t.Errorf("p=%g: variance %.4g, want ≈ %.4g", p, variance, wantVar)
		}
	}
}

// TestSkipPastMatchesBernoulliScan pins the exchangeability claim directly:
// selecting indices of [0, n) by repeated SkipPast must give every index the
// same marginal inclusion probability p and a Binomial(n, p) selection count,
// just like flipping one coin per index.
func TestSkipPastMatchesBernoulliScan(t *testing.T) {
	const n, p, trials = 200, 0.07, 20000
	r := New(99)
	perIndex := make([]float64, n)
	var count, countsq float64
	for trial := 0; trial < trials; trial++ {
		c := 0.0
		for i := r.SkipPast(0, p); i < n; i = r.SkipPast(i+1, p) {
			perIndex[i]++
			c++
		}
		count += c
		countsq += c * c
	}
	wantCount := float64(n) * p
	meanCount := count / trials
	sdCount := math.Sqrt(float64(n) * p * (1 - p))
	if math.Abs(meanCount-wantCount) > 5*sdCount/math.Sqrt(trials) {
		t.Errorf("mean selections %.3f, want %.3f", meanCount, wantCount)
	}
	varCount := countsq/trials - meanCount*meanCount
	if varCount < sdCount*sdCount*0.9 || varCount > sdCount*sdCount*1.1 {
		t.Errorf("selection-count variance %.3f, want ≈ %.3f", varCount, sdCount*sdCount)
	}
	// Every position — first, middle, last — must be hit at rate p: a
	// off-by-one in the skip (e.g. i+G instead of i+1+G between hits) shows
	// up here immediately.
	tol := 5 * math.Sqrt(p*(1-p)/trials)
	for i := 0; i < n; i++ {
		if got := perIndex[i] / trials; math.Abs(got-p) > tol {
			t.Errorf("index %d selected at rate %.4f, want %.3f ± %.4f", i, got, p, tol)
		}
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
		if g := r.Geometric(1.5); g != 0 {
			t.Fatalf("Geometric(1.5) = %d, want 0", g)
		}
	}
	// p ≤ 0 has no finite waiting time: Geometric panics, SkipPast reports
	// "no hit" without consuming randomness.
	for _, p := range []float64{0, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%g) did not panic", p)
				}
			}()
			r.Geometric(p)
		}()
		before := *r
		if got := r.SkipPast(17, p); got != math.MaxUint64 {
			t.Errorf("SkipPast(17, %g) = %d, want MaxUint64", p, got)
		}
		if *r != before {
			t.Errorf("SkipPast(17, %g) consumed randomness", p)
		}
	}
	// Tiny p cannot overflow into a small skip: the clamp keeps the result
	// at MaxUint64 (never wrapping), and near-1 increments never go backward.
	for i := 0; i < 1000; i++ {
		if got := r.SkipPast(math.MaxUint64-5, 0.5); got < math.MaxUint64-5 {
			t.Fatalf("SkipPast near MaxUint64 wrapped to %d", got)
		}
	}
	for i := 0; i < 1000; i++ {
		if g := r.Geometric(1e-300); g < 1<<40 {
			t.Fatalf("Geometric(1e-300) = %d: expected an astronomically large skip", g)
		}
	}
}
