package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams from equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from distinct seeds coincide %d/1000 times", same)
	}
}

func TestReseedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, step %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	a := parent.Split(0)
	b := parent.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincide %d/1000 times", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(5)
	b := New(5)
	_ = a.Split(3)
	_ = a.Split(4)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split advanced the parent stream (step %d)", i)
		}
	}
}

func TestSplitSameIndexSameStream(t *testing.T) {
	parent := New(123)
	a := parent.Split(9)
	b := parent.Split(9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-index splits diverged at step %d", i)
		}
	}
}

func TestSplitDifferentParents(t *testing.T) {
	a := New(1).Split(0)
	b := New(2).Split(0)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("splits of different parents coincide %d/1000 times", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(11)
	for _, n := range []uint64{1, 2, 3, 7, 16, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square-ish sanity: 10 buckets, 100k draws, each bucket within 5%
	// of expectation.
	r := New(2024)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d has %d draws, want %.0f±5%%", b, c, want)
		}
	}
}

func TestIntnExcept(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.IntnExcept(10, 4)
		if v == 4 || v < 0 || v >= 10 {
			t.Fatalf("IntnExcept(10,4) = %d", v)
		}
	}
	// Uniform over the remaining 9 values.
	counts := make([]int, 10)
	for i := 0; i < 90000; i++ {
		counts[r.IntnExcept(10, 0)]++
	}
	if counts[0] != 0 {
		t.Fatal("excluded value was drawn")
	}
	for v := 1; v < 10; v++ {
		if math.Abs(float64(counts[v])-10000) > 600 {
			t.Fatalf("value %d drawn %d times, want ~10000", v, counts[v])
		}
	}
}

func TestRange(t *testing.T) {
	r := New(8)
	for i := 0; i < 1000; i++ {
		v := r.Range(-5, 5)
		if v < -5 || v > 5 {
			t.Fatalf("Range(-5,5) = %d", v)
		}
	}
	if got := r.Range(7, 7); got != 7 {
		t.Fatalf("Range(7,7) = %d, want 7", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(21)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if math.Abs(float64(hits)/draws-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) rate = %v", float64(hits)/draws)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(29)
	xs := []int{1, 1, 2, 3, 5, 8, 13}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	Shuffle(r, xs)
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 || len(xs) != 7 {
		t.Fatalf("Shuffle changed contents: %v", xs)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(31)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 10}, {10, 3}, {100000, 5}, {1000, 999}} {
		s := r.Sample(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("Sample(%d,%d) len=%d", tc.n, tc.k, len(s))
		}
		seen := make(map[int]bool, tc.k)
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("Sample(%d,%d) invalid element %d", tc.n, tc.k, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleLargeNUniform(t *testing.T) {
	// Each element of [0,50) should appear in a 5-element sample with
	// probability 1/10.
	r := New(37)
	counts := make([]int, 50)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(50, 5) {
			counts[v]++
		}
	}
	want := float64(trials) * 5 / 50
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("element %d sampled %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestMix64Property(t *testing.T) {
	// Mix64 must be a function (deterministic) and sensitive to both args.
	f := func(a, b uint64) bool {
		return Mix64(a, b) == Mix64(a, b) &&
			(a == a+1 || Mix64(a, b) != Mix64(a+1, b)) &&
			(b == b+1 || Mix64(a, b) != Mix64(a, b+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPropertyInRange(t *testing.T) {
	r := New(41)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(43)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestSeedInterface(t *testing.T) {
	r := New(1)
	r.Seed(77)
	want := New(77)
	for i := 0; i < 50; i++ {
		if r.Uint64() != want.Uint64() {
			t.Fatal("Seed(77) != New(77)")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64n(1000003)
	}
	_ = sink
}

func TestSplitIntoMatchesSplit(t *testing.T) {
	parent := New(42)
	for idx := uint64(0); idx < 8; idx++ {
		want := parent.Split(idx)
		var got Source
		parent.SplitInto(idx, &got)
		viaSeed := New(parent.SplitSeed(idx))
		for i := 0; i < 64; i++ {
			w := want.Uint64()
			if g := got.Uint64(); g != w {
				t.Fatalf("index %d draw %d: SplitInto diverged from Split", idx, i)
			}
			if g := viaSeed.Uint64(); g != w {
				t.Fatalf("index %d draw %d: New(SplitSeed) diverged from Split", idx, i)
			}
		}
	}
}
