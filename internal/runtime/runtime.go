// Package runtime executes the protocol as a real message-passing system:
// every agent becomes a Node — its own goroutine with a typed, bounded
// mailbox — and all communication crosses a pluggable Conduit transport.
// It is the simulator-to-runtime ladder: in-process channels
// (ChannelConduit), fault-injecting transports layered on top
// (FaultConduit), and real OS sockets (the netconduit subpackage: framed
// deliveries over TCP or Unix-domain loopback with synchronous acks) — with
// the protocol logic (core.Agent) untouched at every rung. A conduit that
// holds transport resources implements io.Closer and is closed by Shutdown.
//
// # Scheduling and transcript equivalence
//
// The coordinator is a deterministic round-barrier scheduler that mirrors
// gossip.Engine.Step operation for operation: advance the dynamic topology
// at the round boundary, fan RoundStart out to every active node and collect
// their actions (the nodes run Act concurrently, like the engine's parallel
// Act phase), validate against the topology in node order, then deliver
// pushes and resolve pulls in ascending node-ID order, each delivery a
// synchronous round-trip through the conduit. Message loss (Config.Drop) is
// drawn from the same seed-derived stream in the same order as the
// simulator. Agents never emit trace events, so with the loss-free
// ChannelConduit the runtime's transcript is byte-identical to the
// simulator's for the same seed — every golden fixture and experiment
// finding carries over. See the equivalence suite in this package's tests.
//
// On top of that parity the runtime measures what the simulator cannot:
// wall-clock convergence and per-message delivery latency, reported as a
// metrics.Live with streaming quantiles (stats.QuantileSketch).
package runtime

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/trace"
)

// DefaultMailbox is the per-node inbox capacity when Config.Mailbox is 0.
// Under the round-barrier scheduler a mailbox never holds more than one
// in-flight message, but a small buffer keeps the fan-out phase from
// serializing on slow-to-wake nodes.
const DefaultMailbox = 4

// Config configures a Runtime. It mirrors gossip.Config — same topology,
// fault, accounting, and loss semantics — plus the transport knobs.
type Config struct {
	// Topology is the communication graph. A topo.Dynamic topology must be
	// Started by the caller; the runtime advances it once per round.
	Topology topo.Topology
	// Faulty marks permanently faulty nodes; nil means fault-free. Nodes in
	// this mask may have no agent and get no goroutine.
	Faulty []bool
	// Faults optionally adds a dynamic quiescence schedule on top of Faulty.
	Faults gossip.FaultSchedule
	// Counters receives communication accounting; nil allocates a private one.
	Counters *metrics.Counters
	// Trace receives events; nil disables tracing. Only the coordinator
	// emits, so the sink needs no synchronization.
	Trace trace.Sink
	// Drop and DropRand are the probabilistic message-loss model, with
	// exactly gossip.Config's semantics: the loss stream is drawn once per
	// non-self message in delivery order, so for the same seed the runtime
	// loses the same messages the simulator does.
	Drop     float64
	DropRand *rng.Source
	// Conduit is the transport; nil means ChannelConduit.
	Conduit Conduit
	// Mailbox is the per-node inbox capacity; 0 means DefaultMailbox.
	Mailbox int
}

// Runtime drives a set of Nodes through synchronous rounds. It is the
// deterministic round-barrier scheduler; all delivery decisions (loss,
// silence, validation) happen here on the coordinator goroutine, while the
// protocol handlers run on the node goroutines.
type Runtime struct {
	topo     topo.Topology
	dyn      topo.Dynamic // non-nil iff topo is a per-round graph process
	agents   []gossip.Agent
	faults   gossip.FaultSchedule
	counters *metrics.Counters
	sink     trace.Sink
	drop     float64
	dropRand *rng.Source
	conduit  Conduit

	nodes  []*Node
	events chan event
	stop   chan struct{}
	wg     sync.WaitGroup
	halt   sync.Once

	round   int
	dropped int
	tally   metrics.Delta
	actions []gossip.Action
	pushes  []int32
	pulls   []int32

	lat       stats.QuantileSketch
	delivered int64
	kinds     [msgKinds]int64
}

// New validates cfg, builds the node set, and starts one goroutine per
// active agent. agents[i] is the agent at node i; entries for faulty nodes
// may be nil. It panics on size mismatches, mirroring gossip.NewEngine. The
// caller must eventually call Shutdown to stop the node goroutines.
func New(cfg Config, agents []gossip.Agent) *Runtime {
	n := cfg.Topology.N()
	if len(agents) != n {
		panic(fmt.Sprintf("runtime: %d agents for %d nodes", len(agents), n))
	}
	faulty := cfg.Faulty
	if faulty == nil {
		faulty = make([]bool, n)
	}
	if len(faulty) != n {
		panic(fmt.Sprintf("runtime: faulty mask has %d entries for %d nodes", len(faulty), n))
	}
	for i, a := range agents {
		if a == nil && !faulty[i] {
			panic(fmt.Sprintf("runtime: active node %d has no agent", i))
		}
	}
	if cfg.Drop < 0 || cfg.Drop >= 1 {
		panic(fmt.Sprintf("runtime: drop probability %v outside [0, 1)", cfg.Drop))
	}
	if cfg.Drop > 0 && cfg.DropRand == nil {
		panic("runtime: Drop > 0 requires a DropRand source")
	}
	counters := cfg.Counters
	if counters == nil {
		counters = &metrics.Counters{}
	}
	var faults gossip.FaultSchedule = gossip.StaticFaults(faulty)
	if cfg.Faults != nil {
		faults = gossip.UnionFaults{faults, cfg.Faults}
	}
	conduit := cfg.Conduit
	if conduit == nil {
		conduit = ChannelConduit{}
	}
	mailbox := cfg.Mailbox
	if mailbox <= 0 {
		mailbox = DefaultMailbox
	}

	rt := &Runtime{
		topo:     cfg.Topology,
		agents:   agents,
		faults:   faults,
		counters: counters,
		sink:     cfg.Trace,
		drop:     cfg.Drop,
		dropRand: cfg.DropRand,
		conduit:  conduit,
		nodes:    make([]*Node, n),
		events:   make(chan event, n),
		stop:     make(chan struct{}),
		actions:  make([]gossip.Action, n),
	}
	rt.dyn, _ = cfg.Topology.(topo.Dynamic)
	for i, a := range agents {
		if a == nil {
			continue
		}
		rt.nodes[i] = &Node{
			id:     i,
			agent:  a,
			inbox:  make(chan Message, mailbox),
			events: rt.events,
			stop:   rt.stop,
		}
		rt.wg.Add(1)
		go rt.nodes[i].run(&rt.wg)
	}
	return rt
}

// Node returns the node at id (nil for faulty slots) — the handle conduit
// implementations and transport tests address messages to.
func (rt *Runtime) Node(id int) *Node { return rt.nodes[id] }

// Round returns the number of rounds executed so far.
func (rt *Runtime) Round() int { return rt.round }

// DroppedActions returns how many actions were discarded because they
// addressed a non-neighbor or an out-of-range node.
func (rt *Runtime) DroppedActions() int { return rt.dropped }

// Shutdown stops every node goroutine and waits for them to exit, then
// closes the conduit if it holds transport resources (implements io.Closer)
// — the socket conduit's listener and connections die with the runtime. It
// is idempotent and must be called exactly when no Run is in flight; after
// it returns, the agents' final state is safe to read from any goroutine.
func (rt *Runtime) Shutdown() {
	rt.halt.Do(func() { close(rt.stop) })
	rt.wg.Wait()
	if c, ok := rt.conduit.(io.Closer); ok {
		c.Close() //nolint:errcheck // best-effort teardown; Close is idempotent
	}
}

// Run executes rounds until every active Decider agent has decided, maxRounds
// have been executed, or ctx is cancelled (checked at round boundaries). It
// returns the number of rounds run and ctx's error if cancellation cut the
// run short. The caller still owns Shutdown.
func (rt *Runtime) Run(ctx context.Context, maxRounds int) (int, error) {
	start := rt.round
	done := ctx.Done()
	for rt.round-start < maxRounds {
		select {
		case <-done:
			return rt.round - start, ctx.Err()
		default:
		}
		if rt.allDecided() {
			break
		}
		rt.step()
	}
	return rt.round - start, nil
}

// Live reports the runtime-layer observables of the execution so far.
func (rt *Runtime) Live(wall time.Duration) metrics.Live {
	return metrics.Live{
		WallClock:  wall,
		Rounds:     rt.round,
		Delivered:  rt.delivered,
		Pushes:     rt.kinds[MsgPush],
		Votes:      rt.kinds[MsgVote],
		Queries:    rt.kinds[MsgQuery],
		Replies:    rt.kinds[MsgReply],
		LatencyP50: time.Duration(rt.lat.Quantile(0.50)),
		LatencyP99: time.Duration(rt.lat.Quantile(0.99)),
		LatencyMax: time.Duration(rt.lat.Max()),
	}
}

// silent reports whether node u is quiescent at round r.
func (rt *Runtime) silent(r, u int) bool {
	return rt.agents[u] == nil || rt.faults.Silent(r, u)
}

// lost draws one link crossing against the loss model — same stream, same
// order as the simulator's executor.
func (rt *Runtime) lost() bool {
	return rt.drop > 0 && rt.dropRand.Bool(rt.drop)
}

func (rt *Runtime) emit(ev trace.Event) {
	if rt.sink != nil {
		rt.sink.Emit(ev)
	}
}

// allDecided mirrors gossip.Engine: currently-silent nodes do not block
// termination. Reading agent state here is race-free — every agent mutation
// happens on its node goroutine before the completion event the coordinator
// has already received.
func (rt *Runtime) allDecided() bool {
	for i, a := range rt.agents {
		if rt.silent(rt.round, i) || a == nil {
			continue
		}
		d, ok := a.(gossip.Decider)
		if !ok || !d.Decided() {
			return false
		}
	}
	return true
}

// step executes one synchronous round with exactly the engine's structure:
// dynamics advance, parallel Act, validation in node order, pushes then
// pulls in ascending node-ID order, round accounting.
func (rt *Runtime) step() {
	round := rt.round
	if rt.dyn != nil && round > 0 {
		rt.dyn.Advance(round)
	}

	// Act fan-out: every active node computes its action concurrently on its
	// own goroutine; silent nodes contribute NoAction without being woken, so
	// their RNG streams stay untouched (exactly the engine's act()).
	pending := 0
	for i := range rt.agents {
		if rt.silent(round, i) {
			rt.actions[i] = gossip.NoAction()
			continue
		}
		rt.nodes[i].Send(Message{Kind: MsgRound, Round: round})
		pending++
	}
	for ; pending > 0; pending-- {
		ev := <-rt.events
		rt.actions[ev.id] = ev.action
	}

	rt.pushes = rt.pushes[:0]
	rt.pulls = rt.pulls[:0]
	for u := range rt.actions {
		rt.validate(round, u, &rt.actions[u])
		switch rt.actions[u].Kind {
		case gossip.ActPush:
			rt.pushes = append(rt.pushes, int32(u))
		case gossip.ActPull:
			rt.pulls = append(rt.pulls, int32(u))
		}
	}

	for _, u := range rt.pushes {
		rt.deliverPush(round, int(u), rt.actions[u])
	}
	for _, u := range rt.pulls {
		rt.resolvePull(round, int(u), rt.actions[u])
	}

	rt.tally.AddRound()
	rt.counters.AddDelta(0, rt.tally)
	rt.tally = metrics.Delta{}
	rt.round++
}

// validate enforces the topology on one action, tracing drops like the
// engine does.
func (rt *Runtime) validate(round, u int, a *gossip.Action) {
	if a.Kind == gossip.ActNone {
		return
	}
	if a.To < 0 || a.To >= len(rt.agents) || !rt.topo.CanSend(u, a.To) {
		rt.dropped++
		rt.emit(trace.Event{Round: round, Kind: trace.KindDrop, From: u, To: a.To})
		*a = gossip.NoAction()
	}
}

// roundTrip sends a scheduler-internal message directly into a node's
// mailbox — bypassing the conduit — and waits for its completion event.
// Self-operations and nil-reply notifications travel this way: they are not
// link crossings, so the transport gets no chance to delay or drop them.
func (rt *Runtime) roundTrip(to int, m Message) event {
	if !rt.nodes[to].Send(m) {
		return event{id: to}
	}
	return <-rt.events
}

// transport carries one payload message through the conduit and waits for
// the receiving node's completion event, folding the observed delivery
// latency into the run's sketch. It reports false when the conduit dropped
// the message (the caller then applies the simulator's loss semantics).
func (rt *Runtime) transport(to int, m Message) (event, bool) {
	m.SentAt = time.Now()
	if !rt.conduit.Deliver(rt.nodes[to], m) {
		return event{}, false
	}
	ev := <-rt.events
	if ev.timed {
		rt.lat.Add(int64(ev.latency))
		rt.delivered++
		rt.kinds[m.Kind]++
	}
	return ev, true
}

// deliverPush delivers one push with the executor's exact semantics: a
// self-push is local and free; a non-self push always incurs its cost, may
// be lost on the link (loss stream or transport), and lands in the void when
// the target is quiescent.
func (rt *Runtime) deliverPush(round, u int, a gossip.Action) {
	kind := classifyPush(a.Payload)
	m := Message{Kind: kind, Round: round, From: u, Payload: a.Payload}
	if u == a.To {
		rt.roundTrip(u, m)
		return
	}
	rt.tally.AddPush()
	rt.tally.AddMessage(gossip.PayloadBits(a.Payload))
	if rt.lost() {
		rt.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To, Note: "lost"})
		return
	}
	if rt.silent(round, a.To) {
		rt.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To})
		return
	}
	if _, ok := rt.transport(a.To, m); !ok {
		rt.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To, Note: "lost"})
		return
	}
	rt.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To})
}

// resolvePull resolves one pull — query out, optional reply back — with the
// executor's exact semantics and trace notes. The query and the reply cross
// the conduit; the nil-reply notification a failed pull produces goes
// directly to the puller's mailbox.
func (rt *Runtime) resolvePull(round, u int, a gossip.Action) {
	if u == a.To {
		rt.roundTrip(u, Message{Kind: MsgQuery, Round: round, From: u, Payload: a.Payload})
		return
	}
	rt.tally.AddMessage(gossip.PayloadBits(a.Payload))
	if rt.lost() {
		rt.failPull(round, u, a.To, "query-lost")
		return
	}
	if rt.silent(round, a.To) {
		rt.failPull(round, u, a.To, "no-reply")
		return
	}
	ev, ok := rt.transport(a.To, Message{Kind: MsgQuery, Round: round, From: u, Payload: a.Payload})
	if !ok {
		rt.failPull(round, u, a.To, "query-lost")
		return
	}
	if ev.reply == nil {
		rt.failPull(round, u, a.To, "refused")
		return
	}
	rt.tally.AddMessage(gossip.PayloadBits(ev.reply))
	if rt.lost() {
		rt.failPull(round, u, a.To, "reply-lost")
		return
	}
	if _, ok := rt.transport(u, Message{Kind: MsgReply, Round: round, From: a.To, Payload: ev.reply}); !ok {
		rt.failPull(round, u, a.To, "reply-lost")
		return
	}
	rt.tally.AddPull(true)
	rt.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: a.To})
}

// failPull accounts and traces one failed pull, then notifies the puller
// with a nil reply — the same observation a quiescent target produces.
func (rt *Runtime) failPull(round, u, to int, note string) {
	rt.tally.AddPull(false)
	rt.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: to, Note: note})
	rt.roundTrip(u, Message{Kind: MsgReply, Round: round, From: to})
}
