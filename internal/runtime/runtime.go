// Package runtime executes the protocol as a real message-passing system:
// every agent becomes a Node — its own goroutine with a typed, bounded
// mailbox — and all communication crosses a pluggable Conduit transport.
// It is the simulator-to-runtime ladder: in-process channels
// (ChannelConduit), fault-injecting transports layered on top
// (FaultConduit), and real OS sockets (the netconduit subpackage: framed
// deliveries over TCP or Unix-domain loopback with synchronous acks) — with
// the protocol logic (core.Agent) untouched at every rung. A conduit that
// holds transport resources implements io.Closer and is closed by Shutdown.
//
// # Scheduling and transcript equivalence
//
// The coordinator is a deterministic round-barrier scheduler that mirrors
// gossip.Engine.Step operation for operation: advance the dynamic topology
// at the round boundary, fan RoundStart out to every active node and collect
// their actions (the nodes run Act concurrently, like the engine's parallel
// Act phase), validate against the topology in node order, then deliver
// pushes and resolve pulls in ascending node-ID order. Message loss
// (Config.Drop) is drawn from the same seed-derived stream in the same order
// as the simulator. Agents never emit trace events, so with the loss-free
// ChannelConduit the runtime's transcript is byte-identical to the
// simulator's for the same seed — every golden fixture and experiment
// finding carries over. See the equivalence suite in this package's tests.
//
// # Pipelined delivery
//
// The protocol's correctness barrier is per round, so the coordinator does
// not need a synchronous transport round trip per message — only per-
// destination delivery order and coordinator-ordered observables. When the
// conduit implements BatchConduit, each phase of a round is dispatched as
// one pipelined wave: loss decisions are drawn from the Drop stream in
// simulator order before dispatch, the whole delivery set is handed to the
// transport without waiting per message, and results, trace events, and
// accounting are settled at the barrier in the simulator's order — so the
// transcript stays byte-identical while the transport coalesces frames and
// overlaps acknowledgements. Pull rounds pipeline only when Drop == 0: the
// simulator interleaves a pull's conditional reply-loss draw with the next
// pull's query draw, so a lossy pull phase keeps the serial per-message path
// to preserve the stream's exact order. Conduits without the batch seam
// (FaultConduit, external test transports) are always driven serially,
// exactly as before.
//
// On top of that parity the runtime measures what the simulator cannot:
// wall-clock convergence and per-message delivery latency, reported as a
// metrics.Live with streaming quantiles (stats.QuantileSketch).
package runtime

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/trace"
)

// DefaultMailbox is the per-node inbox capacity when Config.Mailbox is 0.
// Under the round-barrier scheduler a mailbox never holds more than one
// in-flight message, but a small buffer keeps the fan-out phase from
// serializing on slow-to-wake nodes.
const DefaultMailbox = 4

// Config configures a Runtime. It mirrors gossip.Config — same topology,
// fault, accounting, and loss semantics — plus the transport knobs.
type Config struct {
	// Topology is the communication graph. A topo.Dynamic topology must be
	// Started by the caller; the runtime advances it once per round.
	Topology topo.Topology
	// Faulty marks permanently faulty nodes; nil means fault-free. Nodes in
	// this mask may have no agent and get no goroutine.
	Faulty []bool
	// Faults optionally adds a dynamic quiescence schedule on top of Faulty.
	Faults gossip.FaultSchedule
	// Counters receives communication accounting; nil allocates a private one.
	Counters *metrics.Counters
	// Trace receives events; nil disables tracing. Only the coordinator
	// emits, so the sink needs no synchronization.
	Trace trace.Sink
	// Drop and DropRand are the probabilistic message-loss model, with
	// exactly gossip.Config's semantics: the loss stream is drawn once per
	// non-self message in delivery order, so for the same seed the runtime
	// loses the same messages the simulator does.
	Drop     float64
	DropRand *rng.Source
	// Conduit is the transport; nil means ChannelConduit.
	Conduit Conduit
	// Mailbox is the per-node inbox capacity; 0 means DefaultMailbox.
	Mailbox int
}

// Runtime drives a set of Nodes through synchronous rounds. It is the
// deterministic round-barrier scheduler; all delivery decisions (loss,
// silence, validation) happen here on the coordinator goroutine, while the
// protocol handlers run on the node goroutines.
type Runtime struct {
	topo     topo.Topology
	dyn      topo.Dynamic // non-nil iff topo is a per-round graph process
	agents   []gossip.Agent
	faults   gossip.FaultSchedule
	counters *metrics.Counters
	sink     trace.Sink
	drop     float64
	dropRand *rng.Source
	conduit  Conduit

	nodes  []*Node
	events chan event
	stop   chan struct{}
	wg     sync.WaitGroup
	halt   sync.Once

	round   int
	dropped int
	tally   metrics.Delta
	actions []gossip.Action
	pushes  []int32
	pulls   []int32

	// Pipelined-delivery scratch, reused every round. batch is non-nil iff
	// the conduit implements BatchConduit; evq/evhead are the per-destination
	// FIFO queues that match wave completions back to their dispatches.
	batch  Batch
	pfates []pushFate
	precs  []pullRec
	oks    []bool
	evq    [][]gossip.Payload
	evhead []int

	lat       stats.QuantileSketch
	delivered int64
	kinds     [msgKinds]int64
}

// pushFate is one push's pre-drawn, pre-dispatch disposition in a pipelined
// wave: the loss stream and silence mask are consulted in simulator order
// before anything is handed to the transport.
type pushFate uint8

const (
	pushSelf   pushFate = iota // local, free, rides the batch for FIFO order
	pushLost                   // killed by the Drop stream before dispatch
	pushSilent                 // target quiescent: cost paid, nothing sent
	pushSent                   // dispatched; transport decides the rest
)

// pullRec is one pull's bookkeeping across the query and reply waves of a
// pipelined pull phase. The final disposition (note, accounting) is settled
// at the barrier so trace bytes come out in exactly the serial order.
type pullRec struct {
	fate      pushFate // pushSelf / pushSilent ("no-reply") / pushSent (query dispatched)
	note      string   // final trace note; "" means a successful pull
	isReply   bool     // a real reply was dispatched in wave 2
	w2        int32    // index into the wave-2 results, -1 if none
	replyBits int32    // accounted size of the dispatched reply
}

// New validates cfg, builds the node set, and starts one goroutine per
// active agent. agents[i] is the agent at node i; entries for faulty nodes
// may be nil. It panics on size mismatches, mirroring gossip.NewEngine. The
// caller must eventually call Shutdown to stop the node goroutines.
func New(cfg Config, agents []gossip.Agent) *Runtime {
	n := cfg.Topology.N()
	if len(agents) != n {
		panic(fmt.Sprintf("runtime: %d agents for %d nodes", len(agents), n))
	}
	faulty := cfg.Faulty
	if faulty == nil {
		faulty = make([]bool, n)
	}
	if len(faulty) != n {
		panic(fmt.Sprintf("runtime: faulty mask has %d entries for %d nodes", len(faulty), n))
	}
	for i, a := range agents {
		if a == nil && !faulty[i] {
			panic(fmt.Sprintf("runtime: active node %d has no agent", i))
		}
	}
	if cfg.Drop < 0 || cfg.Drop >= 1 {
		panic(fmt.Sprintf("runtime: drop probability %v outside [0, 1)", cfg.Drop))
	}
	if cfg.Drop > 0 && cfg.DropRand == nil {
		panic("runtime: Drop > 0 requires a DropRand source")
	}
	counters := cfg.Counters
	if counters == nil {
		counters = &metrics.Counters{}
	}
	var faults gossip.FaultSchedule = gossip.StaticFaults(faulty)
	if cfg.Faults != nil {
		faults = gossip.UnionFaults{faults, cfg.Faults}
	}
	conduit := cfg.Conduit
	if conduit == nil {
		conduit = ChannelConduit{}
	}
	mailbox := cfg.Mailbox
	if mailbox <= 0 {
		mailbox = DefaultMailbox
	}

	rt := &Runtime{
		topo:     cfg.Topology,
		agents:   agents,
		faults:   faults,
		counters: counters,
		sink:     cfg.Trace,
		drop:     cfg.Drop,
		dropRand: cfg.DropRand,
		conduit:  conduit,
		nodes:    make([]*Node, n),
		events:   make(chan event, n),
		stop:     make(chan struct{}),
		actions:  make([]gossip.Action, n),
	}
	rt.dyn, _ = cfg.Topology.(topo.Dynamic)
	if bc, ok := conduit.(BatchConduit); ok {
		rt.batch = bc.NewBatch()
		rt.evq = make([][]gossip.Payload, n)
		rt.evhead = make([]int, n)
	}
	for i, a := range agents {
		if a == nil {
			continue
		}
		rt.nodes[i] = &Node{
			id:     i,
			agent:  a,
			inbox:  make(chan Message, mailbox),
			events: rt.events,
			stop:   rt.stop,
		}
		rt.wg.Add(1)
		go rt.nodes[i].run(&rt.wg)
	}
	return rt
}

// Node returns the node at id (nil for faulty slots) — the handle conduit
// implementations and transport tests address messages to.
func (rt *Runtime) Node(id int) *Node { return rt.nodes[id] }

// Round returns the number of rounds executed so far.
func (rt *Runtime) Round() int { return rt.round }

// DroppedActions returns how many actions were discarded because they
// addressed a non-neighbor or an out-of-range node.
func (rt *Runtime) DroppedActions() int { return rt.dropped }

// Shutdown stops every node goroutine and waits for them to exit, then
// closes the conduit if it holds transport resources (implements io.Closer)
// — the socket conduit's listener and connections die with the runtime. It
// is idempotent and must be called exactly when no Run is in flight; after
// it returns, the agents' final state is safe to read from any goroutine.
func (rt *Runtime) Shutdown() {
	rt.halt.Do(func() { close(rt.stop) })
	rt.wg.Wait()
	if c, ok := rt.conduit.(io.Closer); ok {
		c.Close() //nolint:errcheck // best-effort teardown; Close is idempotent
	}
}

// Run executes rounds until every active Decider agent has decided, maxRounds
// have been executed, or ctx is cancelled (checked at round boundaries). It
// returns the number of rounds run and ctx's error if cancellation cut the
// run short. The caller still owns Shutdown.
func (rt *Runtime) Run(ctx context.Context, maxRounds int) (int, error) {
	start := rt.round
	done := ctx.Done()
	for rt.round-start < maxRounds {
		select {
		case <-done:
			return rt.round - start, ctx.Err()
		default:
		}
		if rt.allDecided() {
			break
		}
		rt.step()
	}
	return rt.round - start, nil
}

// Live reports the runtime-layer observables of the execution so far.
func (rt *Runtime) Live(wall time.Duration) metrics.Live {
	return metrics.Live{
		WallClock:  wall,
		Rounds:     rt.round,
		Delivered:  rt.delivered,
		Pushes:     rt.kinds[MsgPush],
		Votes:      rt.kinds[MsgVote],
		Queries:    rt.kinds[MsgQuery],
		Replies:    rt.kinds[MsgReply],
		LatencyP50: time.Duration(rt.lat.Quantile(0.50)),
		LatencyP99: time.Duration(rt.lat.Quantile(0.99)),
		LatencyMax: time.Duration(rt.lat.Max()),
	}
}

// silent reports whether node u is quiescent at round r.
func (rt *Runtime) silent(r, u int) bool {
	return rt.agents[u] == nil || rt.faults.Silent(r, u)
}

// lost draws one link crossing against the loss model — same stream, same
// order as the simulator's executor.
func (rt *Runtime) lost() bool {
	return rt.drop > 0 && rt.dropRand.Bool(rt.drop)
}

func (rt *Runtime) emit(ev trace.Event) {
	if rt.sink != nil {
		rt.sink.Emit(ev)
	}
}

// allDecided mirrors gossip.Engine: currently-silent nodes do not block
// termination. Reading agent state here is race-free — every agent mutation
// happens on its node goroutine before the completion event the coordinator
// has already received.
func (rt *Runtime) allDecided() bool {
	for i, a := range rt.agents {
		if rt.silent(rt.round, i) || a == nil {
			continue
		}
		d, ok := a.(gossip.Decider)
		if !ok || !d.Decided() {
			return false
		}
	}
	return true
}

// step executes one synchronous round with exactly the engine's structure:
// dynamics advance, parallel Act, validation in node order, pushes then
// pulls in ascending node-ID order, round accounting.
func (rt *Runtime) step() {
	round := rt.round
	if rt.dyn != nil && round > 0 {
		rt.dyn.Advance(round)
	}

	// Act fan-out: every active node computes its action concurrently on its
	// own goroutine; silent nodes contribute NoAction without being woken, so
	// their RNG streams stay untouched (exactly the engine's act()).
	pending := 0
	for i := range rt.agents {
		if rt.silent(round, i) {
			rt.actions[i] = gossip.NoAction()
			continue
		}
		rt.nodes[i].Send(Message{Kind: MsgRound, Round: round})
		pending++
	}
	for ; pending > 0; pending-- {
		ev := <-rt.events
		rt.actions[ev.id] = ev.action
	}

	rt.pushes = rt.pushes[:0]
	rt.pulls = rt.pulls[:0]
	for u := range rt.actions {
		rt.validate(round, u, &rt.actions[u])
		switch rt.actions[u].Kind {
		case gossip.ActPush:
			rt.pushes = append(rt.pushes, int32(u))
		case gossip.ActPull:
			rt.pulls = append(rt.pulls, int32(u))
		}
	}

	// Delivery: pipelined waves when the conduit can batch, the serial
	// per-message path otherwise. A lossy pull phase always runs serially —
	// the simulator interleaves each pull's conditional reply-loss draw with
	// the next pull's query draw, so its stream order cannot be pre-drawn.
	// (Push losses are one unconditional draw per non-self push in sender
	// order, and all push draws precede all pull draws, so the push wave may
	// pipeline even under loss.)
	if rt.batch != nil {
		rt.deliverPushesBatched(round)
	} else {
		for _, u := range rt.pushes {
			rt.deliverPush(round, int(u), rt.actions[u])
		}
	}
	if rt.batch != nil && rt.drop == 0 {
		rt.resolvePullsBatched(round)
	} else {
		for _, u := range rt.pulls {
			rt.resolvePull(round, int(u), rt.actions[u])
		}
	}

	rt.tally.AddRound()
	rt.counters.AddDelta(0, rt.tally)
	rt.tally = metrics.Delta{}
	rt.round++
}

// validate enforces the topology on one action, tracing drops like the
// engine does.
func (rt *Runtime) validate(round, u int, a *gossip.Action) {
	if a.Kind == gossip.ActNone {
		return
	}
	if a.To < 0 || a.To >= len(rt.agents) || !rt.topo.CanSend(u, a.To) {
		rt.dropped++
		rt.emit(trace.Event{Round: round, Kind: trace.KindDrop, From: u, To: a.To})
		*a = gossip.NoAction()
	}
}

// roundTrip sends a scheduler-internal message directly into a node's
// mailbox — bypassing the conduit — and waits for its completion event.
// Self-operations and nil-reply notifications travel this way: they are not
// link crossings, so the transport gets no chance to delay or drop them.
func (rt *Runtime) roundTrip(to int, m Message) event {
	if !rt.nodes[to].Send(m) {
		return event{id: to}
	}
	return <-rt.events
}

// transport carries one payload message through the conduit and waits for
// the receiving node's completion event, folding the observed delivery
// latency into the run's sketch. It reports false when the conduit dropped
// the message (the caller then applies the simulator's loss semantics).
func (rt *Runtime) transport(to int, m Message) (event, bool) {
	m.SentAt = time.Now()
	if !rt.conduit.Deliver(rt.nodes[to], m) {
		return event{}, false
	}
	ev := <-rt.events
	if ev.timed {
		rt.lat.Add(int64(ev.latency))
		rt.delivered++
		rt.kinds[m.Kind]++
	}
	return ev, true
}

// deliverPush delivers one push with the executor's exact semantics: a
// self-push is local and free; a non-self push always incurs its cost, may
// be lost on the link (loss stream or transport), and lands in the void when
// the target is quiescent.
func (rt *Runtime) deliverPush(round, u int, a gossip.Action) {
	kind := classifyPush(a.Payload)
	m := Message{Kind: kind, Round: round, From: u, Payload: a.Payload}
	if u == a.To {
		rt.roundTrip(u, m)
		return
	}
	rt.tally.AddPush()
	rt.tally.AddMessage(gossip.PayloadBits(a.Payload))
	if rt.lost() {
		rt.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To, Note: "lost"})
		return
	}
	if rt.silent(round, a.To) {
		rt.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To})
		return
	}
	if _, ok := rt.transport(a.To, m); !ok {
		rt.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To, Note: "lost"})
		return
	}
	rt.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To})
}

// resolvePull resolves one pull — query out, optional reply back — with the
// executor's exact semantics and trace notes. The query and the reply cross
// the conduit; the nil-reply notification a failed pull produces goes
// directly to the puller's mailbox.
func (rt *Runtime) resolvePull(round, u int, a gossip.Action) {
	if u == a.To {
		rt.roundTrip(u, Message{Kind: MsgQuery, Round: round, From: u, Payload: a.Payload})
		return
	}
	rt.tally.AddMessage(gossip.PayloadBits(a.Payload))
	if rt.lost() {
		rt.failPull(round, u, a.To, "query-lost")
		return
	}
	if rt.silent(round, a.To) {
		rt.failPull(round, u, a.To, "no-reply")
		return
	}
	ev, ok := rt.transport(a.To, Message{Kind: MsgQuery, Round: round, From: u, Payload: a.Payload})
	if !ok {
		rt.failPull(round, u, a.To, "query-lost")
		return
	}
	if ev.reply == nil {
		rt.failPull(round, u, a.To, "refused")
		return
	}
	rt.tally.AddMessage(gossip.PayloadBits(ev.reply))
	if rt.lost() {
		rt.failPull(round, u, a.To, "reply-lost")
		return
	}
	if _, ok := rt.transport(u, Message{Kind: MsgReply, Round: round, From: a.To, Payload: ev.reply}); !ok {
		rt.failPull(round, u, a.To, "reply-lost")
		return
	}
	rt.tally.AddPull(true)
	rt.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: a.To})
}

// failPull accounts and traces one failed pull, then notifies the puller
// with a nil reply — the same observation a quiescent target produces.
func (rt *Runtime) failPull(round, u, to int, note string) {
	rt.tally.AddPull(false)
	rt.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: to, Note: note})
	rt.roundTrip(u, Message{Kind: MsgReply, Round: round, From: to})
}

// collectEvents drains n completion events, folding timed delivery latencies
// into the run's sketch. Used at a wave barrier, after Flush has reported how
// many deliveries reached a mailbox.
func (rt *Runtime) collectEvents(n int) {
	for ; n > 0; n-- {
		ev := <-rt.events
		if ev.timed {
			rt.lat.Add(int64(ev.latency))
		}
	}
}

// collectReplies is collectEvents for the query wave: each event additionally
// carries the target's HandlePull result, queued per target in processing
// order. Because a node's events arrive in its mailbox order, and the batch
// preserves per-destination Add order, popping evq[target] during the
// puller-ordered resolution pass matches each reply to its query.
func (rt *Runtime) collectReplies(n int) {
	for ; n > 0; n-- {
		ev := <-rt.events
		if ev.timed {
			rt.lat.Add(int64(ev.latency))
		}
		rt.evq[ev.id] = append(rt.evq[ev.id], ev.reply)
	}
}

// popReply consumes the next queued HandlePull result from node id. An
// out-of-range panic here means a delivered query produced no event — a
// broken conduit or node, worth failing loudly over.
func (rt *Runtime) popReply(id int) gossip.Payload {
	h := rt.evhead[id]
	rt.evhead[id]++
	return rt.evq[id][h]
}

// deliverPushesBatched delivers the round's push set as one pipelined wave:
// fates are pre-drawn in sender order (keeping the Drop stream aligned with
// the simulator), every surviving push is dispatched without a per-message
// wait, and accounting plus trace events are settled at the barrier in sender
// order — byte-identical to the serial path's transcript. Self-pushes ride
// the batch too (untimed, untallied): a direct mailbox send could overtake
// the wave's in-flight deliveries to the same node and reorder HandlePush.
func (rt *Runtime) deliverPushesBatched(round int) {
	if len(rt.pushes) == 0 {
		return
	}
	rt.pfates = rt.pfates[:0]
	now := time.Now()
	for _, u32 := range rt.pushes {
		u := int(u32)
		a := rt.actions[u]
		switch {
		case u == a.To:
			rt.batch.Add(rt.nodes[u], Message{Kind: classifyPush(a.Payload), Round: round, From: u, Payload: a.Payload})
			rt.pfates = append(rt.pfates, pushSelf)
		case rt.lost():
			rt.pfates = append(rt.pfates, pushLost)
		case rt.silent(round, a.To):
			rt.pfates = append(rt.pfates, pushSilent)
		default:
			rt.batch.Add(rt.nodes[a.To], Message{Kind: classifyPush(a.Payload), Round: round, From: u, Payload: a.Payload, SentAt: now})
			rt.pfates = append(rt.pfates, pushSent)
		}
	}
	rt.oks = append(rt.oks[:0], rt.batch.Flush()...)
	succ := 0
	for _, ok := range rt.oks {
		if ok {
			succ++
		}
	}
	rt.collectEvents(succ)

	// Barrier settlement, in sender order — the simulator's order.
	j := 0
	for i, u32 := range rt.pushes {
		u := int(u32)
		a := rt.actions[u]
		fate := rt.pfates[i]
		if fate == pushSelf {
			j++
			continue
		}
		rt.tally.AddPush()
		rt.tally.AddMessage(gossip.PayloadBits(a.Payload))
		switch fate {
		case pushLost:
			rt.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To, Note: "lost"})
		case pushSilent:
			rt.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To})
		case pushSent:
			ok := rt.oks[j]
			j++
			if !ok {
				rt.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To, Note: "lost"})
				continue
			}
			rt.delivered++
			rt.kinds[classifyPush(a.Payload)]++
			rt.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To})
		}
	}
}

// resolvePullsBatched resolves the round's pull set in pipelined waves (only
// when Drop == 0; see step). Wave 1 dispatches every query — self-pulls ride
// the batch for mailbox-order safety, quiescent targets dispatch nothing —
// and collects the targets' HandlePull results at the barrier. The resolution
// pass then walks pullers in ascending order, matching replies per-target
// FIFO, and assembles wave 2: real replies cross the conduit (timed), while
// nil-reply notifications go straight to the puller's mailbox exactly as the
// serial path's roundTrip does — they are not link crossings. Wave 2 has at
// most one message per puller, so no ordering hazard remains. Accounting and
// trace events are settled last, in puller order; a reply the transport loses
// (rare: a dying connection) is re-notified serially there.
func (rt *Runtime) resolvePullsBatched(round int) {
	if len(rt.pulls) == 0 {
		return
	}
	rt.precs = rt.precs[:0]
	now := time.Now()
	for _, u32 := range rt.pulls {
		u := int(u32)
		a := rt.actions[u]
		switch {
		case u == a.To:
			rt.batch.Add(rt.nodes[u], Message{Kind: MsgQuery, Round: round, From: u, Payload: a.Payload})
			rt.precs = append(rt.precs, pullRec{fate: pushSelf})
		case rt.silent(round, a.To):
			rt.precs = append(rt.precs, pullRec{fate: pushSilent, note: "no-reply"})
		default:
			rt.batch.Add(rt.nodes[a.To], Message{Kind: MsgQuery, Round: round, From: u, Payload: a.Payload, SentAt: now})
			rt.precs = append(rt.precs, pullRec{fate: pushSent})
		}
	}
	rt.oks = append(rt.oks[:0], rt.batch.Flush()...)
	succ := 0
	for _, ok := range rt.oks {
		if ok {
			succ++
		}
	}
	rt.collectReplies(succ)

	// Resolution pass, in puller order: match each delivered query to its
	// target's queued HandlePull result and dispatch the reply wave.
	now = time.Now()
	w2 := int32(0)
	notifies := 0
	j := 0
	for i := range rt.precs {
		u := int(rt.pulls[i])
		a := rt.actions[u]
		rec := &rt.precs[i]
		rec.w2 = -1
		switch rec.fate {
		case pushSelf:
			if rt.oks[j] {
				rt.popReply(u) // nil placeholder from the short-circuit event
			}
			j++
		case pushSilent:
			if rt.nodes[u].Send(Message{Kind: MsgReply, Round: round, From: a.To}) {
				notifies++
			}
		case pushSent:
			ok := rt.oks[j]
			j++
			if !ok {
				rec.note = "query-lost"
				if rt.nodes[u].Send(Message{Kind: MsgReply, Round: round, From: a.To}) {
					notifies++
				}
				continue
			}
			reply := rt.popReply(a.To)
			rt.delivered++
			rt.kinds[MsgQuery]++
			if reply == nil {
				rec.note = "refused"
				if rt.nodes[u].Send(Message{Kind: MsgReply, Round: round, From: a.To}) {
					notifies++
				}
				continue
			}
			rec.isReply = true
			rec.replyBits = int32(gossip.PayloadBits(reply))
			rec.w2 = w2
			w2++
			rt.batch.Add(rt.nodes[u], Message{Kind: MsgReply, Round: round, From: a.To, Payload: reply, SentAt: now})
		}
	}
	rt.oks = append(rt.oks[:0], rt.batch.Flush()...)
	succ = notifies
	for _, ok := range rt.oks {
		if ok {
			succ++
		}
	}
	rt.collectEvents(succ)

	// Barrier settlement, in puller order — the simulator's order.
	for i := range rt.precs {
		u := int(rt.pulls[i])
		a := rt.actions[u]
		rec := &rt.precs[i]
		switch rec.fate {
		case pushSelf:
			// Local and free, exactly the serial path: no cost, no trace.
		case pushSilent:
			rt.tally.AddMessage(gossip.PayloadBits(a.Payload))
			rt.tally.AddPull(false)
			rt.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: a.To, Note: rec.note})
		case pushSent:
			rt.tally.AddMessage(gossip.PayloadBits(a.Payload))
			if !rec.isReply {
				rt.tally.AddPull(false)
				rt.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: a.To, Note: rec.note})
				continue
			}
			rt.tally.AddMessage(int(rec.replyBits))
			if !rt.oks[rec.w2] {
				// The transport lost the reply after the target served it:
				// account the failure and re-notify the puller serially.
				rt.failPull(round, u, a.To, "reply-lost")
				continue
			}
			rt.delivered++
			rt.kinds[MsgReply]++
			rt.tally.AddPull(true)
			rt.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: a.To})
		}
	}

	// Reset the per-target reply queues touched this round.
	for i := range rt.precs {
		u := int(rt.pulls[i])
		dest := u
		if rt.precs[i].fate == pushSent {
			dest = rt.actions[u].To
		}
		rt.evq[dest] = rt.evq[dest][:0]
		rt.evhead[dest] = 0
	}
}
