package runtime

import (
	"context"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func goroutines() int { return stdruntime.NumGoroutine() }

// waitForGoroutines polls until the goroutine count drops back to at most
// want, failing the test after a generous deadline — the manual goleak
// bracket for shutdown tests.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if goroutines() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, want <= %d", goroutines(), want)
}

// testConfig builds a small prepared run for direct Runtime tests.
func testConfig(t *testing.T, n int, seed uint64) *core.RunSetup {
	t.Helper()
	p, err := core.NewParams(n, 2, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	setup, err := core.PrepareRun(core.RunConfig{
		Params: p,
		Colors: core.UniformColors(n, 2),
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return setup
}

func runtimeFor(setup *core.RunSetup, opts Options) *Runtime {
	return New(Config{
		Topology: setup.Net,
		Faulty:   setup.Faulty,
		Faults:   setup.Faults,
		Counters: setup.Counters,
		Trace:    setup.Trace,
		Drop:     setup.Drop,
		DropRand: setup.DropRand,
		Conduit:  opts.Conduit,
		Mailbox:  opts.Mailbox,
	}, setup.Agents)
}

// TestMailboxBackpressure pins the bounded-mailbox contract: Send fills the
// mailbox of a node that is not draining, then blocks — and unblocks, with
// a false return, when the runtime shuts down.
func TestMailboxBackpressure(t *testing.T) {
	stop := make(chan struct{})
	n := &Node{
		id:    0,
		inbox: make(chan Message, 2),
		stop:  stop,
	}
	// The node goroutine is deliberately not started: nothing drains.
	for i := 0; i < 2; i++ {
		if !n.Send(Message{Kind: MsgPush, Round: i}) {
			t.Fatalf("send %d into empty mailbox failed", i)
		}
	}
	blocked := make(chan bool, 1)
	go func() { blocked <- n.Send(Message{Kind: MsgPush, Round: 2}) }()
	select {
	case <-blocked:
		t.Fatal("send into a full mailbox did not block")
	case <-time.After(50 * time.Millisecond):
		// Blocked, as required: the mailbox is the backpressure boundary.
	}
	close(stop)
	select {
	case ok := <-blocked:
		if ok {
			t.Fatal("blocked send reported delivery after shutdown")
		}
	case <-time.After(time.Second):
		t.Fatal("blocked send did not unblock on shutdown")
	}
	if got := len(n.inbox); got != 2 {
		t.Fatalf("mailbox holds %d messages, want the 2 accepted", got)
	}
}

// TestShutdownMidRun pins context cancellation: a run cancelled between
// rounds returns the context error, a partial round count, and leaks no
// goroutines.
func TestShutdownMidRun(t *testing.T) {
	before := goroutines()
	setup := testConfig(t, 64, 11)
	rt := runtimeFor(setup, Options{})

	ctx, cancel := context.WithCancel(context.Background())
	// Run a few rounds, then cancel from a racing goroutine while the
	// coordinator is mid-flight.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	rounds, err := rt.Run(ctx, setup.MaxRounds)
	wg.Wait()
	rt.Shutdown()
	if err == nil {
		// The run may legitimately finish before the cancel lands on a fast
		// machine; what matters is that cancellation mid-run is clean when it
		// does land. Force the deterministic variant below in that case.
		t.Logf("run finished in %d rounds before cancellation", rounds)
	} else if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	} else if rounds >= setup.MaxRounds {
		t.Fatalf("cancelled run executed all %d rounds", rounds)
	}
	waitForGoroutines(t, before)

	// Deterministic variant: a context cancelled before the run starts must
	// execute zero rounds.
	before = goroutines()
	setup = testConfig(t, 64, 12)
	rt = runtimeFor(setup, Options{})
	ctx, cancel = context.WithCancel(context.Background())
	cancel()
	rounds, err = rt.Run(ctx, setup.MaxRounds)
	rt.Shutdown()
	if err != context.Canceled || rounds != 0 {
		t.Fatalf("pre-cancelled run: rounds=%d err=%v, want 0, context.Canceled", rounds, err)
	}
	waitForGoroutines(t, before)
}

// TestShutdownIdempotent pins that Shutdown is safe to call twice and that a
// completed Execute leaves no goroutines behind.
func TestShutdownIdempotent(t *testing.T) {
	before := goroutines()
	setup := testConfig(t, 32, 5)
	rt := runtimeFor(setup, Options{})
	if _, err := rt.Run(context.Background(), setup.MaxRounds); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	rt.Shutdown()
	waitForGoroutines(t, before)
}

// TestSendAfterShutdown pins the conduit-facing contract: delivery to a node
// of a stopped runtime reports false instead of blocking forever.
func TestSendAfterShutdown(t *testing.T) {
	setup := testConfig(t, 32, 6)
	rt := runtimeFor(setup, Options{})
	rt.Shutdown()
	if (ChannelConduit{}).Deliver(rt.Node(0), Message{Kind: MsgPush}) {
		t.Fatal("delivery to a stopped node reported success")
	}
}

// TestFaultConduitDeterminism pins that the fault-injecting transport is as
// reproducible as the clean one: same seed, same drops, same result.
func TestFaultConduitDeterminism(t *testing.T) {
	results := make([]core.RunResult, 2)
	for i := range results {
		setup := testConfig(t, 64, 21)
		rt := runtimeFor(setup, Options{Conduit: NewFaultConduit(nil, 21, 0.05, 0)})
		rounds, err := rt.Run(context.Background(), setup.MaxRounds)
		rt.Shutdown()
		if err != nil {
			t.Fatal(err)
		}
		results[i] = setup.Result(rounds)
		results[i].Agents = nil
	}
	if results[0].Rounds != results[1].Rounds ||
		results[0].Metrics != results[1].Metrics ||
		results[0].Outcome != results[1].Outcome {
		t.Fatalf("fault-conduit runs diverged:\n%+v\n%+v", results[0], results[1])
	}
}

// TestFaultConduitDrops pins that transport drops actually remove messages:
// with a heavy drop rate the delivered count falls well below the loss-free
// run's.
func TestFaultConduitDrops(t *testing.T) {
	delivered := func(c Conduit) int64 {
		setup := testConfig(t, 64, 9)
		rt := runtimeFor(setup, Options{Conduit: c})
		if _, err := rt.Run(context.Background(), setup.MaxRounds); err != nil {
			t.Fatal(err)
		}
		rt.Shutdown()
		return rt.delivered
	}
	clean := delivered(nil)
	lossy := delivered(NewFaultConduit(nil, 9, 0.3, 0))
	if clean == 0 {
		t.Fatal("clean run delivered nothing")
	}
	if lossy >= clean {
		t.Fatalf("30%% transport drop delivered %d >= clean %d", lossy, clean)
	}
}

// TestFaultConduitJitter pins that jitter shows up in the measured latency
// distribution: with a 200µs jitter ceiling the median delivery must be
// slower than the in-process channel handoff ever is.
func TestFaultConduitJitter(t *testing.T) {
	setup := testConfig(t, 16, 13)
	rt := runtimeFor(setup, Options{Conduit: NewFaultConduit(nil, 13, 0, 200*time.Microsecond)})
	if _, err := rt.Run(context.Background(), setup.MaxRounds); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	live := rt.Live(time.Millisecond)
	if live.Delivered == 0 {
		t.Fatal("no deliveries")
	}
	if live.LatencyP50 < 10*time.Microsecond {
		t.Fatalf("median latency %v under a 200µs jitter — jitter not applied", live.LatencyP50)
	}
}

// TestFaultConduitConcurrentDeliver exercises the Conduit concurrency
// contract on the fault layer under the race detector: many goroutines
// drawing drop and jitter from the one seed-derived stream. Run with -race;
// before the stream gained its mutex this was a data race.
func TestFaultConduitConcurrentDeliver(t *testing.T) {
	const workers, each = 8, 200
	stop := make(chan struct{})
	defer close(stop)
	// A bare node with a mailbox sized for every message: nothing drains, and
	// no Send ever blocks, so the test isolates the conduit's own state.
	n := &Node{id: 0, inbox: make(chan Message, workers*each), stop: stop}
	c := NewFaultConduit(nil, 1, 0.3, 50*time.Microsecond)
	var wg sync.WaitGroup
	var delivered atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if c.Deliver(n, Message{Kind: MsgPush, Round: i}) {
					delivered.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	got := delivered.Load()
	if got != int64(len(n.inbox)) {
		t.Fatalf("delivered %d, mailbox holds %d", got, len(n.inbox))
	}
	// With a 30% drop rate both outcomes must occur in 1600 draws; all-or-
	// nothing means the stream (or the drop draw) broke under concurrency.
	if got == 0 || got == workers*each {
		t.Fatalf("delivered %d of %d — drop stream degenerate", got, workers*each)
	}
}

// TestBackpressureDrain pins the other half of the mailbox contract: a
// draining node accepts an arbitrary stream through a small mailbox.
func TestBackpressureDrain(t *testing.T) {
	setup := testConfig(t, 32, 3)
	rt := runtimeFor(setup, Options{Mailbox: 1})
	rounds, err := rt.Run(context.Background(), setup.MaxRounds)
	rt.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Fatal("no rounds ran")
	}
	res := setup.Result(rounds)
	if res.Outcome.Failed {
		t.Fatal("run through capacity-1 mailboxes failed to agree")
	}
}
