package runtime_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/runtime/netconduit"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// transcriptBytes renders a trace into one byte string, so "byte-identical
// transcripts" is literal.
func transcriptBytes(events []trace.Event) []byte {
	var buf bytes.Buffer
	for _, ev := range events {
		fmt.Fprintf(&buf, "%d %v %d->%d %s\n", ev.Round, ev.Kind, ev.From, ev.To, ev.Note)
	}
	return buf.Bytes()
}

// simRun executes one builtin on the simulator at the given engine worker
// count, capturing the transcript.
func simRun(t *testing.T, name string, seed uint64, workers int) (core.RunResult, []byte) {
	t.Helper()
	sc, ok := scenario.Lookup(name)
	if !ok {
		t.Fatalf("builtin %q not registered", name)
	}
	r, err := scenario.NewRunner(sc)
	if err != nil {
		t.Fatalf("runner(%s): %v", name, err)
	}
	mem := &trace.Memory{}
	cfg := r.RunConfig(seed)
	cfg.Trace = mem
	cfg.Workers = workers
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatalf("core.Run(%s): %v", name, err)
	}
	return res, transcriptBytes(mem.Events())
}

// runtimeRun executes the same builtin on the goroutine-per-node runtime
// under the deterministic channel conduit.
func runtimeRun(t *testing.T, name string, seed uint64, opts runtime.Options) (core.RunResult, []byte) {
	t.Helper()
	sc, ok := scenario.Lookup(name)
	if !ok {
		t.Fatalf("builtin %q not registered", name)
	}
	r, err := scenario.NewRunner(sc)
	if err != nil {
		t.Fatalf("runner(%s): %v", name, err)
	}
	mem := &trace.Memory{}
	cfg := r.RunConfig(seed)
	cfg.Trace = mem
	res, _, err := runtime.Execute(context.Background(), cfg, opts)
	if err != nil {
		t.Fatalf("runtime.Execute(%s): %v", name, err)
	}
	return res, transcriptBytes(mem.Events())
}

// equivalenceBuiltins is the pinned scenario table: static topologies, the
// loss and crash fault axes, a dynamic graph, all three protocol variants,
// and the composite variant-on-dynamic-graph scenario.
var equivalenceBuiltins = []string{
	"baseline",
	"lossy-links",
	"crash-mid-voting",
	"churn",
	"edge-markovian",
	"geometric-torus",
	"live-retarget-churn",
	"retransmit-lossy",
	"relaxed-lossy",
	"relaxed-geometric",
	"faulty-third",
}

// socketConduit builds a loopback socket transport for one runtime run,
// failing the test if the listener cannot start. The runtime closes it on
// Shutdown.
func socketConduit(t *testing.T, network string) runtime.Conduit {
	t.Helper()
	c, err := netconduit.Listen(network)
	if err != nil {
		t.Fatalf("netconduit.Listen(%s): %v", network, err)
	}
	return c
}

// TestRuntimeTranscriptEquivalence pins the correctness anchor of the whole
// runtime layer: under the deterministic scheduler, the runtime and the
// simulator produce byte-identical trace transcripts and identical results
// for the same seed — at every simulator worker count, since the simulator
// itself is worker-independent, and through every loss-free transport. The
// round-barrier coordinator delivers serially and waits for each message's
// completion event, so a real TCP or Unix-domain loopback socket is just a
// slower ChannelConduit: same deliveries, same order, same bytes.
func TestRuntimeTranscriptEquivalence(t *testing.T) {
	const seed = 42
	for _, name := range equivalenceBuiltins {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel() // each subtest runs its own engines; registry access is read-only
			rtRes, rtTr := runtimeRun(t, name, seed, runtime.Options{})
			for _, workers := range []int{1, 4} {
				simRes, simTr := simRun(t, name, seed, workers)
				if !bytes.Equal(simTr, rtTr) {
					t.Fatalf("workers=%d: transcripts differ (sim %d bytes, runtime %d bytes)\nfirst sim lines:\n%s\nfirst runtime lines:\n%s",
						workers, len(simTr), len(rtTr), head(simTr), head(rtTr))
				}
				simRes.Agents, rtRes.Agents = nil, nil // pool-backed views, not results
				if !reflect.DeepEqual(simRes, rtRes) {
					t.Fatalf("workers=%d: results differ\nsim:     %+v\nruntime: %+v", workers, simRes, rtRes)
				}
			}
			if len(rtTr) == 0 {
				t.Fatal("empty transcript — the comparison proved nothing")
			}
			// The socket rung: every delivery crosses a real OS socket (frame
			// out, mailbox, ack back) and the transcript must not move a byte.
			for _, network := range []string{"unix", "tcp"} {
				sockRes, sockTr := runtimeRun(t, name, seed, runtime.Options{Conduit: socketConduit(t, network)})
				if !bytes.Equal(sockTr, rtTr) {
					t.Fatalf("%s: transcripts differ from channel conduit (%d vs %d bytes)\nfirst channel lines:\n%s\nfirst %s lines:\n%s",
						network, len(rtTr), len(sockTr), head(rtTr), network, head(sockTr))
				}
				sockRes.Agents = nil
				if !reflect.DeepEqual(sockRes, rtRes) {
					t.Fatalf("%s: results differ\nchannel: %+v\nsocket:  %+v", network, rtRes, sockRes)
				}
			}
		})
	}
}

// TestRuntimeTranscriptReproducible pins that two runtime executions of the
// same seed are byte-identical to each other — determinism does not depend
// on the simulator being around to compare against.
func TestRuntimeTranscriptReproducible(t *testing.T) {
	_, a := runtimeRun(t, "edge-markovian", 7, runtime.Options{})
	_, b := runtimeRun(t, "edge-markovian", 7, runtime.Options{})
	if !bytes.Equal(a, b) {
		t.Fatal("same seed, different runtime transcripts")
	}
}

// TestRuntimeLiveReport checks the runtime-layer observables: wall-clock and
// delivery accounting must reflect a real execution.
func TestRuntimeLiveReport(t *testing.T) {
	sc, _ := scenario.Lookup("baseline")
	r, err := scenario.NewRunner(sc)
	if err != nil {
		t.Fatal(err)
	}
	res, live, err := runtime.Execute(context.Background(), r.RunConfig(3), runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if live.WallClock <= 0 {
		t.Fatalf("wall clock %v", live.WallClock)
	}
	if live.Rounds != res.Rounds {
		t.Fatalf("live rounds %d, result rounds %d", live.Rounds, res.Rounds)
	}
	if live.Delivered == 0 {
		t.Fatal("no deliveries measured")
	}
	if got := live.Pushes + live.Votes + live.Queries + live.Replies; got != live.Delivered {
		t.Fatalf("kind counts sum to %d, delivered %d", got, live.Delivered)
	}
	if live.Votes == 0 {
		t.Fatal("no vote messages classified — the Voting phase crossed no link?")
	}
	if live.LatencyMax < live.LatencyP99 || live.LatencyP99 < live.LatencyP50 {
		t.Fatalf("latency quantiles out of order: p50=%v p99=%v max=%v",
			live.LatencyP50, live.LatencyP99, live.LatencyMax)
	}
}

func head(b []byte) []byte {
	const lines = 5
	idx := 0
	for i := 0; i < lines; i++ {
		next := bytes.IndexByte(b[idx:], '\n')
		if next < 0 {
			return b
		}
		idx += next + 1
	}
	return b[:idx]
}
