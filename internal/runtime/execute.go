package runtime

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Options selects the transport for one Execute.
type Options struct {
	// Conduit is the transport; nil means ChannelConduit (deterministic,
	// transcript-equivalent to the simulator).
	Conduit Conduit
	// Mailbox is the per-node inbox capacity; 0 means DefaultMailbox.
	Mailbox int
}

// Execute runs one cooperative execution on the message-passing runtime: the
// same core.PrepareRun setup core.Run uses — same agents, same RNG streams,
// same loss stream — but with every agent on its own goroutine and every
// message crossing the conduit. With the default conduit the RunResult and
// trace transcript are byte-identical to core.Run's for the same cfg; on top
// of them Execute reports the runtime-layer observables (wall-clock
// convergence, delivery-latency quantiles) as a metrics.Live.
//
// Cancelling ctx stops the run at the next round boundary; the partial Live
// report is still returned with the context's error. Node goroutines are
// always torn down before Execute returns.
func Execute(ctx context.Context, cfg core.RunConfig, opts Options) (core.RunResult, metrics.Live, error) {
	setup, err := core.PrepareRun(cfg)
	if err != nil {
		return core.RunResult{}, metrics.Live{}, err
	}
	rt := New(Config{
		Topology: setup.Net,
		Faulty:   setup.Faulty,
		Faults:   setup.Faults,
		Counters: setup.Counters,
		Trace:    setup.Trace,
		Drop:     setup.Drop,
		DropRand: setup.DropRand,
		Conduit:  opts.Conduit,
		Mailbox:  opts.Mailbox,
	}, setup.Agents)
	start := time.Now()
	rounds, runErr := rt.Run(ctx, setup.MaxRounds)
	rt.Shutdown()
	live := rt.Live(time.Since(start))
	if runErr != nil {
		return core.RunResult{}, live, runErr
	}
	return setup.Result(rounds), live, nil
}
