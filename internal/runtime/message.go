package runtime

import (
	"time"

	"repro/internal/core"
	"repro/internal/gossip"
)

// MsgKind types the traffic a node's mailbox carries. Control traffic
// (MsgRound) comes from the scheduler; payload traffic (push, vote, query,
// reply) crosses the Conduit and is what latency is measured over.
type MsgKind uint8

const (
	// MsgRound is the scheduler's round-start control message: the node
	// computes its agent's action for the round and reports it back.
	MsgRound MsgKind = iota
	// MsgPush carries a pushed payload into the target's HandlePush.
	MsgPush
	// MsgVote is a push whose payload is a protocol vote — separated so
	// per-kind traffic accounting can tell the Voting phase's traffic from
	// certificate spreading. Nodes handle it exactly like MsgPush.
	MsgVote
	// MsgQuery carries a pull query into the target's HandlePull. A query
	// from a node to itself resolves the whole pull locally (the simulator's
	// free self-pull short-circuit).
	MsgQuery
	// MsgReply carries a pull reply (nil for a failed pull) into the
	// puller's HandlePullReply.
	MsgReply

	msgKinds = iota
)

// String names the kind.
func (k MsgKind) String() string {
	switch k {
	case MsgRound:
		return "round"
	case MsgPush:
		return "push"
	case MsgVote:
		return "vote"
	case MsgQuery:
		return "query"
	case MsgReply:
		return "reply"
	}
	return "unknown"
}

// Message is one typed mailbox entry.
type Message struct {
	Kind    MsgKind
	Round   int
	From    int
	Payload gossip.Payload
	// SentAt is stamped when the message enters the conduit; zero for
	// scheduler-internal traffic. The receiving node measures delivery
	// latency against it.
	SentAt time.Time
}

// classifyPush maps a push payload to its message kind: protocol votes get
// their own kind, everything else (intentions, certificates) is a plain push.
func classifyPush(p gossip.Payload) MsgKind {
	switch p.(type) {
	case *core.Vote, core.Vote:
		return MsgVote
	}
	return MsgPush
}
