package runtime

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/rng"
)

// Conduit is the pluggable transport between the scheduler and a node's
// mailbox. The protocol logic never sees it: swapping the transport — for a
// lossy one, a delaying one, eventually a socket-backed one — changes how
// messages travel, never what they mean.
//
// Deliver carries one payload message into dst's mailbox, blocking while
// the mailbox is full (the runtime's backpressure). It reports whether the
// message survived transport: false means the conduit dropped it before it
// reached dst (dst is untouched), and the scheduler then applies the same
// loss semantics the simulator's FaultModel.Drop produces — a lost push, a
// failed pull. Delivery to a node that has shut down also reports false.
//
// Concurrency contract: implementations must be safe for concurrent Deliver
// calls. The round-barrier coordinator happens to deliver serially today,
// but conduits outlive that accident — the socket transport acks deliveries
// from listener goroutines, and a concurrent scheduler would overlap
// Delivers freely — so a conduit may never assume callers serialize it.
// (For seed-derived randomness this means guarding the stream; the draw
// order, and with it bit-for-bit reproducibility, is then still determined
// by whatever order the scheduler calls Deliver in — serial today.)
//
// A Conduit that holds transport resources may additionally implement
// io.Closer; Runtime.Shutdown closes it after every node goroutine has
// exited.
type Conduit interface {
	Deliver(dst *Node, m Message) bool
}

// BatchConduit is the round-batched seam of the transport: a conduit that
// can additionally accept a whole delivery wave without blocking per
// message. The coordinator uses it to pipeline a round — dispatch every
// delivery of one phase, then settle all results at the round barrier —
// instead of paying one synchronous transport round trip per message. A
// conduit that does not implement it (the fault-injecting layer, external
// test conduits) is driven through Deliver exactly as before.
//
// The protocol's correctness barrier is the round, not the message, so the
// only ordering a batch must preserve is per destination: messages Added for
// the same node must enter its mailbox in Add order (the simulator delivers
// in ascending sender order, and vote multisets, certificate W-entry order,
// and trace bytes all depend on it). Cross-destination interleaving is free.
type BatchConduit interface {
	Conduit
	// NewBatch returns an empty, reusable delivery batch. A batch is owned
	// by one goroutine (the coordinator) and is not safe for concurrent use;
	// the conduit itself must still honor Deliver's concurrency contract.
	NewBatch() Batch
}

// Batch collects one wave of deliveries. Add enqueues without waiting for
// the result; Flush forces everything onto the wire and blocks until every
// added delivery has resolved — mailbox-accepted (true) or lost in transport
// (false) — returning the results in Add order. The returned slice is valid
// until the next Add or Flush; the batch is empty and reusable afterwards.
//
// Add may still block on destination-mailbox backpressure (the channel
// transport hands off directly; the socket transport's server blocks the
// connection, not the caller) — what it never does is wait for a transport
// acknowledgement, which is what Flush settles in bulk.
type Batch interface {
	Add(dst *Node, m Message)
	Flush() []bool
}

// ChannelConduit is the loss-free, zero-latency in-process transport: a
// direct handoff into the destination's mailbox. Under the deterministic
// round-barrier scheduler it makes the runtime transcript-equivalent to the
// simulator.
type ChannelConduit struct{}

// Deliver hands the message straight to the destination node.
func (ChannelConduit) Deliver(dst *Node, m Message) bool { return dst.Send(m) }

// NewBatch implements BatchConduit. A channel batch has nothing to
// coalesce — each Add is the same direct mailbox handoff Deliver makes — so
// batching buys exactly the pipelining: the coordinator no longer waits for
// a completion event between handoffs, and node handlers overlap with the
// rest of the wave's dispatch.
func (ChannelConduit) NewBatch() Batch { return &channelBatch{} }

// channelBatch records direct-handoff results in Add order.
type channelBatch struct {
	results []bool
}

func (b *channelBatch) Add(dst *Node, m Message) {
	b.results = append(b.results, dst.Send(m))
}

func (b *channelBatch) Flush() []bool {
	r := b.results
	b.results = b.results[:0]
	return r
}

// conduitStreamSalt separates a FaultConduit's transport randomness from
// every other use of a run seed — in particular from the scheduler-level
// loss stream (core's dropStreamSalt), which must stay aligned with the
// simulator's draw order.
const conduitStreamSalt = 0xfa117c0d

// FaultConduit layers seed-derived per-message drop and latency jitter on
// top of an inner transport. Drops reuse the simulator's FaultModel.Drop
// observation model (the sender has paid, the receiver sees silence); jitter
// delays each delivery by a uniform [0, Jitter) sleep, turning the latency
// distribution from a point mass into something worth measuring. Both draws
// come from one private stream, so a faulty transport is exactly as
// reproducible as a clean one.
//
// The stream is guarded by a mutex: concurrent Delivers (see the Conduit
// concurrency contract) draw race-free, in whatever order they arrive. Under
// a serial caller — the round-barrier coordinator — the draw order is the
// call order and runs stay bit-for-bit reproducible.
type FaultConduit struct {
	inner  Conduit
	drop   float64
	jitter time.Duration

	mu sync.Mutex // guards r: one unguarded stream would race under concurrent Deliver
	r  rng.Source
}

// NewFaultConduit builds a fault-injecting transport over inner (nil means
// ChannelConduit). drop is the per-message transport loss probability in
// [0, 1); jitter is the maximum per-message delivery delay (0 disables).
// The stream is derived from seed, so runs repeat bit-for-bit.
func NewFaultConduit(inner Conduit, seed uint64, drop float64, jitter time.Duration) *FaultConduit {
	if drop < 0 || drop >= 1 {
		panic(fmt.Sprintf("runtime: conduit drop probability %v outside [0, 1)", drop))
	}
	if jitter < 0 {
		panic("runtime: negative conduit jitter")
	}
	if inner == nil {
		inner = ChannelConduit{}
	}
	c := &FaultConduit{inner: inner, drop: drop, jitter: jitter}
	c.r.Reseed(rng.Mix64(seed, conduitStreamSalt))
	return c
}

// Deliver draws the message's fate — drop, then delay — and forwards the
// survivors to the inner transport. Both draws happen under the stream lock;
// the jitter sleep itself does not, so concurrent deliveries delay each
// other only by their own jitter.
func (c *FaultConduit) Deliver(dst *Node, m Message) bool {
	c.mu.Lock()
	dropped := c.drop > 0 && c.r.Bool(c.drop)
	var delay time.Duration
	if !dropped && c.jitter > 0 {
		delay = time.Duration(c.r.Uint64n(uint64(c.jitter)))
	}
	c.mu.Unlock()
	if dropped {
		return false
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return c.inner.Deliver(dst, m)
}

// Close forwards to the inner transport when it holds resources (a wrapped
// socket conduit), so Runtime.Shutdown tears the whole transport stack down
// through the fault layer.
func (c *FaultConduit) Close() error {
	if cl, ok := c.inner.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}
