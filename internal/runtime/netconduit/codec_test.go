package netconduit

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/runtime"
)

// roundTrip encodes one message as a frame and decodes it back through the
// same epoch, failing the test on any mismatch.
func roundTrip(t *testing.T, m runtime.Message, to int) runtime.Message {
	t.Helper()
	epoch := time.Now()
	frame, err := appendMessageFrame(nil, 7, to, m, epoch)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	var cache paramsCache
	seq, gotTo, got, err := decodeMessage(frame[5:], epoch, &cache) // skip length prefix + frame type
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if seq != 7 || gotTo != to {
		t.Fatalf("seq/to = %d/%d, want 7/%d", seq, gotTo, to)
	}
	return got
}

func testParams(t *testing.T) core.Params {
	t.Helper()
	p, err := core.NewParams(64, 2, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCodecRoundTripPayloads pins that every concrete protocol payload
// crosses the frame codec content-identical, Params (including the derived
// unexported wire widths — Params is comparable, so == checks them all) and
// SizeBits included.
func TestCodecRoundTripPayloads(t *testing.T) {
	p := testParams(t)
	relaxed, err := p.WithProtocol(core.Protocol{Variant: core.ProtocolRelaxed, MinVotes: 3})
	if err != nil {
		t.Fatal(err)
	}
	retrans, err := p.WithProtocol(core.Protocol{Variant: core.ProtocolRetransmit, Passes: 3})
	if err != nil {
		t.Fatal(err)
	}
	payloads := []gossip.Payload{
		nil,
		core.Intentions{P: p, Votes: []core.Intent{{H: 1, Z: 0}, {H: 99, Z: 63}}},
		core.Vote{P: p, Value: 12345, Index: 4},
		core.Vote{P: retrans, Value: 1, Index: 17},
		core.IntentQuery{P: p},
		core.CertQuery{P: relaxed},
		&core.Certificate{
			P: p, K: 77,
			W:     []core.WEntry{{Voter: 3, Value: 9}, {Voter: 61, Value: 140608}},
			Color: 1, Owner: 3,
		},
		&core.Certificate{P: p, K: 0, W: nil, Color: core.ColorBot, Owner: 0},
	}
	for i, payload := range payloads {
		m := runtime.Message{Kind: runtime.MsgPush, Round: 13, From: 5, Payload: payload}
		got := roundTrip(t, m, 9)
		if got.Kind != m.Kind || got.Round != m.Round || got.From != m.From {
			t.Fatalf("payload %d: header changed: %+v vs %+v", i, got, m)
		}
		want := payload
		if c, ok := payload.(*core.Certificate); ok && len(c.W) == 0 {
			// A nil and an empty vote multiset are the same certificate; the
			// codec does not distinguish them.
			cc := *c
			cc.W = []core.WEntry{}
			want = &cc
		}
		if !reflect.DeepEqual(got.Payload, want) {
			t.Fatalf("payload %d changed across the wire:\nsent %#v\ngot  %#v", i, payload, got.Payload)
		}
		if payload != nil && got.Payload.SizeBits() != payload.SizeBits() {
			t.Fatalf("payload %d: SizeBits %d -> %d", i, payload.SizeBits(), got.Payload.SizeBits())
		}
	}
}

// TestCodecVotePointer pins that a *Vote encodes like its value: handlers
// accept both shapes, and the wire keeps the simpler one.
func TestCodecVotePointer(t *testing.T) {
	p := testParams(t)
	v := &core.Vote{P: p, Value: 8, Index: 1}
	got := roundTrip(t, runtime.Message{Kind: runtime.MsgVote, Round: 30, From: 2, Payload: v}, 3)
	if !reflect.DeepEqual(got.Payload, *v) {
		t.Fatalf("pointer vote decoded to %#v, want value %#v", got.Payload, *v)
	}
}

// TestCodecSentAtTicks pins the mono-relative timestamp: a SentAt stamped
// after the epoch survives the wire to sub-nanosecond identity when both
// ends share the epoch, and the zero time stays zero (untimed scheduler
// traffic must not grow a timestamp).
func TestCodecSentAtTicks(t *testing.T) {
	p := testParams(t)
	m := runtime.Message{Kind: runtime.MsgQuery, Round: 1, From: 0, Payload: core.IntentQuery{P: p}}
	if got := roundTrip(t, m, 1); !got.SentAt.IsZero() {
		t.Fatalf("zero SentAt decoded as %v", got.SentAt)
	}
	epoch := time.Now()
	m.SentAt = epoch.Add(1500 * time.Microsecond)
	frame, err := appendMessageFrame(nil, 1, 1, m, epoch)
	if err != nil {
		t.Fatal(err)
	}
	var cache paramsCache
	_, _, got, err := decodeMessage(frame[5:], epoch, &cache)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.SentAt.Sub(m.SentAt); d != 0 {
		t.Fatalf("SentAt drifted %v across the wire", d)
	}
}

// TestCodecParamsCache pins the per-connection Params memoization: the
// second decode of the same parameter block must return the cached value.
func TestCodecParamsCache(t *testing.T) {
	p := testParams(t)
	b, err := appendParams(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	var cache paramsCache
	first, err := readParams(&reader{b: b}, &cache)
	if err != nil {
		t.Fatal(err)
	}
	if first != p {
		t.Fatalf("decoded params %+v != original %+v", first, p)
	}
	if !cache.ok {
		t.Fatal("cache not primed")
	}
	second, err := readParams(&reader{b: b}, &cache)
	if err != nil {
		t.Fatal(err)
	}
	if second != p {
		t.Fatalf("cached params %+v != original %+v", second, p)
	}
}

// TestCodecAckRoundTrip covers both ack polarities.
func TestCodecAckRoundTrip(t *testing.T) {
	for _, ok := range []bool{true, false} {
		frame := appendAckFrame(nil, 42, ok)
		seq, got, err := decodeAck(frame[5:])
		if err != nil || seq != 42 || got != ok {
			t.Fatalf("ack(%v) round trip: seq=%d ok=%v err=%v", ok, seq, got, err)
		}
	}
}

// TestCodecRejectsMalformed walks the garbage taxonomy: every malformed body
// must come back as a codec error, never a panic or a silent success.
func TestCodecRejectsMalformed(t *testing.T) {
	p := testParams(t)
	good, err := appendMessageFrame(nil, 1, 2, runtime.Message{
		Kind: runtime.MsgPush, Round: 3, From: 1,
		Payload: core.Vote{P: p, Value: 5},
	}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	body := good[5:] // strip length prefix + frame type

	cases := map[string][]byte{
		"empty":            {},
		"bad version":      append([]byte{99}, body[1:]...),
		"truncated header": body[:2],
		"truncated params": body[:len(body)-6],
		"trailing bytes":   append(append([]byte{}, body...), 0xAA),
		// The 7-byte header (version, seq, kind, flags, round, from, to — all
		// single-byte varints here) followed by a tag outside the payload set.
		"bad payload tag": append(append([]byte{}, body[:7]...), 0x7F),
	}
	for name, b := range cases {
		var cache paramsCache
		if _, _, _, err := decodeMessage(b, time.Now(), &cache); !errors.Is(err, errCodec) {
			t.Errorf("%s: err = %v, want a codec error", name, err)
		}
	}
	if _, _, err := decodeAck([]byte{0x01}); !errors.Is(err, errCodec) {
		t.Errorf("truncated ack: err = %v", err)
	}
	if _, _, err := decodeAck([]byte{0x01, 0x05}); !errors.Is(err, errCodec) {
		t.Errorf("ack with ok byte 5: err = %v", err)
	}
}

// TestCodecRejectsHugeCounts pins the allocation guard: a garbage list count
// larger than the frame's remaining bytes is rejected before any allocation
// of that size.
func TestCodecRejectsHugeCounts(t *testing.T) {
	p := testParams(t)
	// Hand-build an intentions payload claiming 2^40 votes in a tiny frame.
	pb, err := appendParams([]byte{codecVersion, 1 /*seq*/, byte(runtime.MsgReply), 0 /*flags*/, 1, 1, 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Splice the payload tag in front of the params block we appended.
	msg := append(pb[:7], append([]byte{payIntentions}, pb[7:]...)...)
	msg = append(msg, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) // uvarint 2^56
	var cache paramsCache
	if _, _, _, err := decodeMessage(msg, time.Now(), &cache); !errors.Is(err, errCodec) {
		t.Fatalf("err = %v, want a codec error", err)
	}
}

// TestReadFrameBounds pins the frame-length guard: zero and oversized
// lengths are connection-fatal codec errors, and a truncated body surfaces
// as an I/O error — all without allocating MaxFrame-scale buffers for
// garbage.
func TestReadFrameBounds(t *testing.T) {
	var buf []byte
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0}), &buf); !errors.Is(err, errCodec) {
		t.Errorf("zero length: err = %v", err)
	}
	if _, err := readFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF}), &buf); !errors.Is(err, errCodec) {
		t.Errorf("oversized length: err = %v", err)
	}
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 9, 1, 2}), &buf); err == nil {
		t.Error("truncated body: no error")
	}
}
