package netconduit

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
)

// Dial/retry tuning. A Deliver makes at most maxAttempts passes over the
// dial-write sequence, sleeping a doubling backoff (capped at maxBackoff)
// after each failed dial, so a dead peer costs a bounded ~100ms before the
// delivery is reported lost instead of wedging the coordinator forever.
const (
	maxAttempts    = 6
	initialBackoff = time.Millisecond
	maxBackoff     = 32 * time.Millisecond
)

// SocketConduit is a runtime.Conduit whose deliveries cross a real OS
// socket. It is both halves of the transport: a listener that routes inbound
// message frames into the destination node's mailbox and answers with an ack
// frame, and a per-peer set of outbound connections (lazily dialed,
// reconnected with bounded backoff) that Deliver writes message frames to.
//
// With the default routing every node is hosted behind the conduit's own
// listener — the single-process loopback configuration the transcript-
// equivalence suite pins. Route redirects individual node IDs at other
// listeners, which is the seam the multi-process sharded-serve follow-up
// plugs into; the per-peer connection and reconnect machinery is already
// exercised across distinct conduits by this package's tests.
//
// Deliver is safe for concurrent use. Close is idempotent; Runtime.Shutdown
// calls it automatically (after all node goroutines have exited) when the
// conduit is the runtime's transport.
type SocketConduit struct {
	network string
	ln      net.Listener
	dir     string // temp dir holding the unix socket, removed on Close
	epoch   time.Time

	nodes     sync.Map // int -> *runtime.Node: local nodes inbound frames route to
	routes    sync.Map // int -> route: node IDs hosted behind other listeners
	peerCache sync.Map // int -> *peer: memoized peerFor, invalidated by Route

	// batchBytes caps one staged batch frame's body; 0 means
	// defaultBatchBytes. Tests shrink it to force multi-frame windows.
	batchBytes int

	mu    sync.Mutex
	peers map[string]*peer
	conns map[net.Conn]struct{} // accepted inbound connections

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	reconnects atomic.Int64 // outbound connections re-dialed after a failure
	rejects    atomic.Int64 // inbound connections dropped over malformed frames
}

// route addresses the listener hosting a non-local node.
type route struct{ network, addr string }

// Listen starts a socket conduit on the given network: "tcp" listens on a
// kernel-assigned loopback port, "unix" on a socket in a fresh temp
// directory. The caller owns the conduit until it hands it to a Runtime,
// whose Shutdown closes it; a conduit that never reaches a runtime must be
// Closed directly.
func Listen(network string) (*SocketConduit, error) {
	c := &SocketConduit{
		network: network,
		epoch:   time.Now(),
		peers:   make(map[string]*peer),
		conns:   make(map[net.Conn]struct{}),
		closed:  make(chan struct{}),
	}
	var err error
	switch network {
	case "tcp":
		c.ln, err = net.Listen("tcp", "127.0.0.1:0")
	case "unix":
		c.dir, err = os.MkdirTemp("", "netconduit")
		if err == nil {
			c.ln, err = net.Listen("unix", filepath.Join(c.dir, "conduit.sock"))
		}
	default:
		return nil, fmt.Errorf("netconduit: unsupported network %q (want tcp or unix)", network)
	}
	if err != nil {
		if c.dir != "" {
			os.RemoveAll(c.dir)
		}
		return nil, fmt.Errorf("netconduit: listen %s: %w", network, err)
	}
	c.wg.Add(1)
	go c.accept()
	return c, nil
}

// Addr returns the listener's address — what another conduit's Route points
// at.
func (c *SocketConduit) Addr() net.Addr { return c.ln.Addr() }

// Register makes a locally hosted node reachable by inbound frames. Deliver
// registers its destinations lazily, which covers the loopback case; a
// receiving process in a multi-listener topology registers its shard
// explicitly.
func (c *SocketConduit) Register(n *runtime.Node) {
	if n != nil {
		c.nodes.Store(n.ID(), n)
	}
}

// Route directs deliveries for one node ID at the listener on addr instead
// of this conduit's own.
func (c *SocketConduit) Route(id int, network, addr string) {
	c.routes.Store(id, route{network: network, addr: addr})
	c.peerCache.Delete(id)
}

// Deliver implements runtime.Conduit: encode the message, write it to the
// peer hosting dst (dialing or re-dialing as needed), and wait for the ack
// that says dst's mailbox accepted it. False means the message did not
// survive transport — encode-to-mailbox — and the scheduler applies its loss
// semantics.
func (c *SocketConduit) Deliver(dst *runtime.Node, m runtime.Message) bool {
	select {
	case <-c.closed:
		return false
	default:
	}
	c.register(dst)
	return c.peerFor(dst.ID()).deliver(dst.ID(), m)
}

// register lazily records dst as locally hosted. Load-then-store: on the
// steady-state path the node is already known and a sync.Map Load is a
// read-only fast path, where an unconditional Store would take the dirty-map
// lock and allocate an entry per delivery.
func (c *SocketConduit) register(dst *runtime.Node) {
	if v, ok := c.nodes.Load(dst.ID()); !ok || v != dst {
		c.nodes.Store(dst.ID(), dst)
	}
}

// Close shuts the conduit down: stop accepting, close every connection in
// both directions, wait for all conduit goroutines, and remove the unix
// socket's temp directory. Idempotent. Pending Delivers fail as losses. Close
// after the runtime's nodes have stopped (Runtime.Shutdown's order): a node
// blocked in a mailbox Send holds its inbound connection's read loop until
// the node's stop channel releases it.
func (c *SocketConduit) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.ln.Close()
		c.mu.Lock()
		for conn := range c.conns {
			conn.Close()
		}
		for _, p := range c.peers {
			p.closeConn()
		}
		c.mu.Unlock()
		c.wg.Wait()
		if c.dir != "" {
			os.RemoveAll(c.dir)
		}
	})
	return nil
}

// node resolves a locally hosted node ID; nil when unknown.
func (c *SocketConduit) node(id int) *runtime.Node {
	v, ok := c.nodes.Load(id)
	if !ok {
		return nil
	}
	return v.(*runtime.Node)
}

// peerFor returns (creating on first use) the outbound peer hosting id. The
// per-node cache keeps the steady-state path off the global mutex and away
// from the key-string allocation; Route invalidates the affected entry.
func (c *SocketConduit) peerFor(id int) *peer {
	if v, ok := c.peerCache.Load(id); ok {
		return v.(*peer)
	}
	network, addr := c.network, c.ln.Addr().String()
	if v, ok := c.routes.Load(id); ok {
		r := v.(route)
		network, addr = r.network, r.addr
	}
	key := network + "!" + addr
	c.mu.Lock()
	p, ok := c.peers[key]
	if !ok {
		p = &peer{c: c, network: network, addr: addr}
		c.peers[key] = p
	}
	c.mu.Unlock()
	c.peerCache.Store(id, p)
	return p
}

// accept owns the listener: every inbound connection gets its own serve
// goroutine.
func (c *SocketConduit) accept() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // Close closed the listener, or it is irrecoverably broken
		}
		c.mu.Lock()
		select {
		case <-c.closed:
			c.mu.Unlock()
			conn.Close()
			return
		default:
		}
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.serve(conn)
	}
}

// dropConn closes and forgets one inbound connection.
func (c *SocketConduit) dropConn(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	delete(c.conns, conn)
	c.mu.Unlock()
}

// serve is the inbound half of the round trip: read frames, route each
// message into the destination node's mailbox, ack with the Send result — a
// v1 message frame gets its own ack, a v2 batch frame is decoded streaming
// (each body Sent in order, preserving per-destination FIFO) and answered
// with one batched bitmap ack. Any malformed frame is connection-fatal — the
// peer's pending deliveries fail as losses and the conduit stays up for the
// next connection — so garbage on the wire can never wedge the coordinator.
func (c *SocketConduit) serve(conn net.Conn) {
	defer c.wg.Done()
	defer c.dropConn(conn)
	var buf, out, bits []byte
	var cache paramsCache
	for {
		body, err := readFrame(conn, &buf)
		if err != nil {
			if errors.Is(err, errCodec) || errors.Is(err, io.ErrUnexpectedEOF) {
				c.rejects.Add(1)
			}
			return
		}
		switch body[0] {
		case frameMessage:
			seq, to, m, err := decodeMessage(body[1:], c.epoch, &cache)
			if err != nil {
				c.rejects.Add(1)
				return
			}
			node := c.node(to)
			ok := node != nil && node.Send(m)
			out = appendAckFrame(out[:0], seq, ok)
		case frameBatch:
			r := &reader{b: body[1:]}
			seq, count, err := readBatchHeader(r)
			if err != nil {
				c.rejects.Add(1)
				return
			}
			need := (count + 7) / 8
			if cap(bits) < need {
				bits = make([]byte, need)
			}
			bits = bits[:need]
			clear(bits)
			for i := 0; i < count; i++ {
				to, m, err := readMessageBody(r, c.epoch, &cache)
				if err != nil {
					c.rejects.Add(1)
					return
				}
				if node := c.node(to); node != nil && node.Send(m) {
					bitmapSet(bits, i)
				}
			}
			if len(r.b) != 0 {
				c.rejects.Add(1)
				return
			}
			out = appendBatchAckFrame(out[:0], seq, bits, count)
		default:
			c.rejects.Add(1)
			return
		}
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

// peer is one outbound destination: the connection to a listener, its
// pending-ack table, and the reconnect state.
type peer struct {
	c       *SocketConduit
	network string
	addr    string
	seq     atomic.Uint64

	mu       sync.Mutex // guards pc and redialed (dial / kill)
	pc       *peerConn
	redialed bool // a connection died; the next successful dial is a reconnect
}

// peerConn is one live outbound connection. Pending acks — single and
// batched — are per-connection: when the connection dies, exactly the
// deliveries written to it fail — a retry on a fresh connection starts a
// fresh table.
type peerConn struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	pmu          sync.Mutex
	pending      map[uint64]chan bool
	pendingBatch map[uint64]*batchWaiter
	dead         bool
}

// batchWaiter is one in-flight batch frame's completion slot: resolved by
// the ack reader (ok plus the result bitmap, copied into waiter-owned
// storage) or failed by connection death, then signalled on done. The
// dispatching socketBatch owns it again once it has received done, so
// waiters recycle across flushes without a pool.
type batchWaiter struct {
	done chan struct{} // cap 1
	ok   bool          // an ack bitmap came back; false = frame lost whole
	bits []byte
	idxs []int32 // the frame's messages as indices into the wave's results
}

func (pc *peerConn) register(seq uint64, ch chan bool) {
	// Reset a pooled channel: a stale buffered result would corrupt this
	// registration's ack.
	select {
	case <-ch:
	default:
	}
	pc.pmu.Lock()
	if pc.dead {
		pc.pmu.Unlock()
		ch <- false
		return
	}
	pc.pending[seq] = ch
	pc.pmu.Unlock()
}

func (pc *peerConn) unregister(seq uint64) {
	pc.pmu.Lock()
	delete(pc.pending, seq)
	pc.pmu.Unlock()
}

func (pc *peerConn) resolve(seq uint64, ok bool) {
	pc.pmu.Lock()
	ch, found := pc.pending[seq]
	delete(pc.pending, seq)
	pc.pmu.Unlock()
	if found {
		ch <- ok
	}
}

// registerBatch parks a batch waiter under seq; false means the connection
// is already dead and the caller should fail or re-dial.
func (pc *peerConn) registerBatch(seq uint64, w *batchWaiter) bool {
	pc.pmu.Lock()
	if pc.dead {
		pc.pmu.Unlock()
		return false
	}
	pc.pendingBatch[seq] = w
	pc.pmu.Unlock()
	return true
}

func (pc *peerConn) unregisterBatch(seq uint64) {
	pc.pmu.Lock()
	delete(pc.pendingBatch, seq)
	pc.pmu.Unlock()
}

func (pc *peerConn) resolveBatch(seq uint64, bits []byte) {
	pc.pmu.Lock()
	w, found := pc.pendingBatch[seq]
	delete(pc.pendingBatch, seq)
	pc.pmu.Unlock()
	if found {
		w.bits = append(w.bits[:0], bits...)
		w.ok = true
		w.done <- struct{}{}
	}
}

// failAll resolves every pending delivery — single and batched — as lost;
// later registers fail immediately. A partially-acked window fails exactly
// its unacked remainder: frames the reader already resolved are gone from
// the table.
func (pc *peerConn) failAll() {
	pc.pmu.Lock()
	pending := pc.pending
	batches := pc.pendingBatch
	pc.pending = nil
	pc.pendingBatch = nil
	pc.dead = true
	pc.pmu.Unlock()
	for _, ch := range pending {
		ch <- false
	}
	for _, w := range batches {
		w.ok = false
		w.done <- struct{}{}
	}
}

func (pc *peerConn) write(frame []byte) error {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	_, err := pc.conn.Write(frame)
	return err
}

// bufPool recycles frame-encode buffers and ackChanPool the single-delivery
// ack channels, keeping the steady-state Deliver path allocation-free.
var (
	bufPool = sync.Pool{New: func() any {
		b := make([]byte, 0, 512)
		return &b
	}}
	ackChanPool = sync.Pool{New: func() any { return make(chan bool, 1) }}
)

// putAckChan drains and returns an ack channel to the pool. The drain covers
// a resolve that won the race with the waiter's exit path — the buffered
// result belongs to a registration that no longer exists.
func putAckChan(ch chan bool) {
	select {
	case <-ch:
	default:
	}
	ackChanPool.Put(ch)
}

// deliver runs one message through the write-then-ack round trip, re-dialing
// with bounded backoff when the connection is down or dies under the write.
// A failure after the write succeeded is not retried: the message may have
// reached the mailbox, and at-most-once is the loss semantics the scheduler
// expects.
func (p *peer) deliver(to int, m runtime.Message) bool {
	seq := p.seq.Add(1)
	bp := bufPool.Get().(*[]byte)
	defer bufPool.Put(bp)
	frame, err := appendMessageFrame((*bp)[:0], seq, to, m, p.c.epoch)
	if err != nil {
		// Only a payload type outside the protocol's set gets here: a
		// programming error, not a transport condition. Fail loudly instead
		// of folding it into the loss model.
		panic(fmt.Sprintf("netconduit: %v", err))
	}
	*bp = frame
	ch := ackChanPool.Get().(chan bool)
	defer putAckChan(ch)
	backoff := initialBackoff
	for attempt := 0; attempt < maxAttempts; attempt++ {
		select {
		case <-p.c.closed:
			return false
		default:
		}
		pc, err := p.ensureConn()
		if err != nil {
			select {
			case <-p.c.closed:
				return false
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		pc.register(seq, ch)
		if err := pc.write(frame); err != nil {
			pc.unregister(seq)
			p.kill(pc)
			continue
		}
		select {
		case ok := <-ch:
			return ok
		case <-p.c.closed:
			pc.unregister(seq)
			return false
		}
	}
	return false
}

// ensureConn returns the live connection, dialing one (and starting its ack
// reader) if needed.
func (p *peer) ensureConn() (*peerConn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pc != nil {
		return p.pc, nil
	}
	conn, err := net.DialTimeout(p.network, p.addr, time.Second)
	if err != nil {
		return nil, err
	}
	if p.redialed {
		p.redialed = false
		p.c.reconnects.Add(1)
	}
	pc := &peerConn{
		conn:         conn,
		pending:      make(map[uint64]chan bool),
		pendingBatch: make(map[uint64]*batchWaiter),
	}
	p.pc = pc
	p.c.wg.Add(1)
	go p.readAcks(pc)
	return pc, nil
}

// kill retires a connection: detach it so the next deliver re-dials, close
// it, and fail what was in flight on it.
func (p *peer) kill(pc *peerConn) {
	p.mu.Lock()
	if p.pc == pc {
		p.pc = nil
		p.redialed = true
	}
	p.mu.Unlock()
	pc.conn.Close()
	pc.failAll()
}

// closeConn is Close's half of kill: drop the live connection, if any.
func (p *peer) closeConn() {
	p.mu.Lock()
	pc := p.pc
	p.pc = nil
	p.mu.Unlock()
	if pc != nil {
		pc.conn.Close()
	}
}

// defaultBatchBytes caps one staged frame's body: large enough that a full
// wave of typical protocol messages (votes, certificates of O(log² n) bits)
// coalesces into one or two writes, small enough that a frame never
// approaches MaxFrame and the server's decode stays cache-friendly.
const defaultBatchBytes = 32 << 10

// NewBatch implements runtime.BatchConduit: deliveries staged through the
// returned batch coalesce per peer into v2 multi-message frames — one write
// and one batched bitmap ack per frame instead of a synchronous round trip
// per message — with a window of in-flight frames per peer that Flush
// settles at the round barrier. The batch is owned by one goroutine (the
// coordinator); the conduit's Deliver stays independently usable between
// flushes.
func (c *SocketConduit) NewBatch() runtime.Batch {
	return &socketBatch{c: c, stages: make(map[*peer]*peerStage)}
}

// socketBatch is one coordinator-owned delivery wave in flight: per-peer
// staging buffers of encoded message bodies, sealed into batch frames when
// they reach the size threshold (the window) or at Flush (the barrier).
type socketBatch struct {
	c        *SocketConduit
	stages   map[*peer]*peerStage
	active   []*peerStage   // stages holding bodies, in first-Add order
	inflight []*batchWaiter // dispatched frames, in dispatch order
	freeW    []*batchWaiter // settled waiters, recycled across flushes
	results  []bool
	frame    []byte // frame assembly scratch, reused per dispatch
	n        int    // deliveries Added since the last Flush
}

// peerStage accumulates one peer's staged messages: their encoded bodies
// back to back, and each one's index in the wave's result slice.
type peerStage struct {
	p    *peer
	buf  []byte
	idxs []int32
}

// Add implements runtime.Batch: encode the message into its peer's staging
// buffer — sealing and dispatching a frame when the buffer reaches the
// threshold, so a large wave pipelines as a window of in-flight frames
// rather than one giant write at the barrier. Nothing waits here.
func (b *socketBatch) Add(dst *runtime.Node, m runtime.Message) {
	idx := int32(b.n)
	b.n++
	id := dst.ID()
	b.c.register(dst)
	p := b.c.peerFor(id)
	st := b.stages[p]
	if st == nil {
		st = &peerStage{p: p}
		b.stages[p] = st
	}
	if len(st.idxs) == 0 {
		b.active = append(b.active, st)
	}
	start := len(st.buf)
	buf, err := appendMessageBody(st.buf, id, m, b.c.epoch)
	if err != nil {
		st.buf = st.buf[:start]
		// Same contract as deliver: an unencodable payload is a programming
		// error, not a transport condition.
		panic(fmt.Sprintf("netconduit: %v", err))
	}
	st.buf = buf
	st.idxs = append(st.idxs, idx)
	limit := b.c.batchBytes
	if limit <= 0 {
		limit = defaultBatchBytes
	}
	if len(st.buf) >= limit {
		b.dispatch(st)
	}
}

// Flush implements runtime.Batch: seal every remaining stage, then settle
// the whole window — blocking until each in-flight frame's bitmap ack (or
// connection death) arrives — and report per-delivery results in Add order.
func (b *socketBatch) Flush() []bool {
	for _, st := range b.active {
		if len(st.idxs) > 0 {
			b.dispatch(st)
		}
	}
	b.active = b.active[:0]
	if cap(b.results) < b.n {
		b.results = make([]bool, b.n)
	}
	results := b.results[:b.n]
	for i := range results {
		results[i] = false
	}
	for _, w := range b.inflight {
		<-w.done
		if w.ok {
			for j, gi := range w.idxs {
				if j/8 < len(w.bits) && bitmapGet(w.bits, j) {
					results[gi] = true
				}
			}
		}
		b.freeW = append(b.freeW, w)
	}
	b.inflight = b.inflight[:0]
	b.results = results
	b.n = 0
	return results
}

// getWaiter recycles a settled waiter or makes a fresh one.
func (b *socketBatch) getWaiter() *batchWaiter {
	if k := len(b.freeW); k > 0 {
		w := b.freeW[k-1]
		b.freeW = b.freeW[:k-1]
		w.ok = false
		w.idxs = w.idxs[:0]
		return w
	}
	return &batchWaiter{done: make(chan struct{}, 1)}
}

// fail settles a waiter locally: the frame never made it out.
func (b *socketBatch) fail(w *batchWaiter) {
	w.ok = false
	w.done <- struct{}{}
}

// dispatch seals one stage into a batch frame and writes it, leaving its
// waiter in flight for Flush to settle. The dial gets the same bounded
// backoff as a single delivery, but a frame is never re-written after a
// write error: in-flight frames on the dying connection could still be
// processed, and a rewrite on a fresh connection would overtake them and
// break per-destination FIFO order — so the frame's deliveries fail as
// transport losses instead (at-most-once, the scheduler's loss semantics).
func (b *socketBatch) dispatch(st *peerStage) {
	w := b.getWaiter()
	w.idxs = append(w.idxs, st.idxs...)
	b.inflight = append(b.inflight, w)
	count := len(st.idxs)
	p := st.p
	seq := p.seq.Add(1)
	frame, err := appendBatchFrame(b.frame[:0], seq, count, st.buf)
	b.frame = frame[:0]
	st.buf = st.buf[:0]
	st.idxs = st.idxs[:0]
	if err != nil {
		// Oversized frame: unreachable below the staging threshold, but fail
		// as losses rather than wedge the round.
		b.fail(w)
		return
	}
	backoff := initialBackoff
	for attempt := 0; attempt < maxAttempts; attempt++ {
		select {
		case <-b.c.closed:
			b.fail(w)
			return
		default:
		}
		pc, err := p.ensureConn()
		if err != nil {
			select {
			case <-b.c.closed:
				b.fail(w)
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		if !pc.registerBatch(seq, w) {
			continue // died under us; the next attempt re-dials
		}
		if err := pc.write(frame); err != nil {
			pc.unregisterBatch(seq)
			p.kill(pc)
			b.fail(w)
			return
		}
		return // in flight; Flush settles it
	}
	b.fail(w)
}

// readAcks drains one connection's ack stream — single acks and batch
// bitmaps — resolving pending deliveries, until the connection dies — then
// retires it so in-flight deliveries fail and the next one reconnects.
func (p *peer) readAcks(pc *peerConn) {
	defer p.c.wg.Done()
	var buf []byte
loop:
	for {
		body, err := readFrame(pc.conn, &buf)
		if err != nil {
			break
		}
		switch body[0] {
		case frameAck:
			seq, ok, err := decodeAck(body[1:])
			if err != nil {
				break loop
			}
			pc.resolve(seq, ok)
		case frameBatchAck:
			seq, bits, _, err := decodeBatchAck(body[1:])
			if err != nil {
				break loop
			}
			pc.resolveBatch(seq, bits)
		default:
			break loop
		}
	}
	p.kill(pc)
}
