package netconduit

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
)

// Dial/retry tuning. A Deliver makes at most maxAttempts passes over the
// dial-write sequence, sleeping a doubling backoff (capped at maxBackoff)
// after each failed dial, so a dead peer costs a bounded ~100ms before the
// delivery is reported lost instead of wedging the coordinator forever.
const (
	maxAttempts    = 6
	initialBackoff = time.Millisecond
	maxBackoff     = 32 * time.Millisecond
)

// SocketConduit is a runtime.Conduit whose deliveries cross a real OS
// socket. It is both halves of the transport: a listener that routes inbound
// message frames into the destination node's mailbox and answers with an ack
// frame, and a per-peer set of outbound connections (lazily dialed,
// reconnected with bounded backoff) that Deliver writes message frames to.
//
// With the default routing every node is hosted behind the conduit's own
// listener — the single-process loopback configuration the transcript-
// equivalence suite pins. Route redirects individual node IDs at other
// listeners, which is the seam the multi-process sharded-serve follow-up
// plugs into; the per-peer connection and reconnect machinery is already
// exercised across distinct conduits by this package's tests.
//
// Deliver is safe for concurrent use. Close is idempotent; Runtime.Shutdown
// calls it automatically (after all node goroutines have exited) when the
// conduit is the runtime's transport.
type SocketConduit struct {
	network string
	ln      net.Listener
	dir     string // temp dir holding the unix socket, removed on Close
	epoch   time.Time

	nodes  sync.Map // int -> *runtime.Node: local nodes inbound frames route to
	routes sync.Map // int -> route: node IDs hosted behind other listeners

	mu    sync.Mutex
	peers map[string]*peer
	conns map[net.Conn]struct{} // accepted inbound connections

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	reconnects atomic.Int64 // outbound connections re-dialed after a failure
	rejects    atomic.Int64 // inbound connections dropped over malformed frames
}

// route addresses the listener hosting a non-local node.
type route struct{ network, addr string }

// Listen starts a socket conduit on the given network: "tcp" listens on a
// kernel-assigned loopback port, "unix" on a socket in a fresh temp
// directory. The caller owns the conduit until it hands it to a Runtime,
// whose Shutdown closes it; a conduit that never reaches a runtime must be
// Closed directly.
func Listen(network string) (*SocketConduit, error) {
	c := &SocketConduit{
		network: network,
		epoch:   time.Now(),
		peers:   make(map[string]*peer),
		conns:   make(map[net.Conn]struct{}),
		closed:  make(chan struct{}),
	}
	var err error
	switch network {
	case "tcp":
		c.ln, err = net.Listen("tcp", "127.0.0.1:0")
	case "unix":
		c.dir, err = os.MkdirTemp("", "netconduit")
		if err == nil {
			c.ln, err = net.Listen("unix", filepath.Join(c.dir, "conduit.sock"))
		}
	default:
		return nil, fmt.Errorf("netconduit: unsupported network %q (want tcp or unix)", network)
	}
	if err != nil {
		if c.dir != "" {
			os.RemoveAll(c.dir)
		}
		return nil, fmt.Errorf("netconduit: listen %s: %w", network, err)
	}
	c.wg.Add(1)
	go c.accept()
	return c, nil
}

// Addr returns the listener's address — what another conduit's Route points
// at.
func (c *SocketConduit) Addr() net.Addr { return c.ln.Addr() }

// Register makes a locally hosted node reachable by inbound frames. Deliver
// registers its destinations lazily, which covers the loopback case; a
// receiving process in a multi-listener topology registers its shard
// explicitly.
func (c *SocketConduit) Register(n *runtime.Node) {
	if n != nil {
		c.nodes.Store(n.ID(), n)
	}
}

// Route directs deliveries for one node ID at the listener on addr instead
// of this conduit's own.
func (c *SocketConduit) Route(id int, network, addr string) {
	c.routes.Store(id, route{network: network, addr: addr})
}

// Deliver implements runtime.Conduit: encode the message, write it to the
// peer hosting dst (dialing or re-dialing as needed), and wait for the ack
// that says dst's mailbox accepted it. False means the message did not
// survive transport — encode-to-mailbox — and the scheduler applies its loss
// semantics.
func (c *SocketConduit) Deliver(dst *runtime.Node, m runtime.Message) bool {
	select {
	case <-c.closed:
		return false
	default:
	}
	c.nodes.Store(dst.ID(), dst)
	return c.peerFor(dst.ID()).deliver(dst.ID(), m)
}

// Close shuts the conduit down: stop accepting, close every connection in
// both directions, wait for all conduit goroutines, and remove the unix
// socket's temp directory. Idempotent. Pending Delivers fail as losses. Close
// after the runtime's nodes have stopped (Runtime.Shutdown's order): a node
// blocked in a mailbox Send holds its inbound connection's read loop until
// the node's stop channel releases it.
func (c *SocketConduit) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.ln.Close()
		c.mu.Lock()
		for conn := range c.conns {
			conn.Close()
		}
		for _, p := range c.peers {
			p.closeConn()
		}
		c.mu.Unlock()
		c.wg.Wait()
		if c.dir != "" {
			os.RemoveAll(c.dir)
		}
	})
	return nil
}

// node resolves a locally hosted node ID; nil when unknown.
func (c *SocketConduit) node(id int) *runtime.Node {
	v, ok := c.nodes.Load(id)
	if !ok {
		return nil
	}
	return v.(*runtime.Node)
}

// peerFor returns (creating on first use) the outbound peer hosting id.
func (c *SocketConduit) peerFor(id int) *peer {
	network, addr := c.network, c.ln.Addr().String()
	if v, ok := c.routes.Load(id); ok {
		r := v.(route)
		network, addr = r.network, r.addr
	}
	key := network + "!" + addr
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[key]
	if !ok {
		p = &peer{c: c, network: network, addr: addr}
		c.peers[key] = p
	}
	return p
}

// accept owns the listener: every inbound connection gets its own serve
// goroutine.
func (c *SocketConduit) accept() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // Close closed the listener, or it is irrecoverably broken
		}
		c.mu.Lock()
		select {
		case <-c.closed:
			c.mu.Unlock()
			conn.Close()
			return
		default:
		}
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.serve(conn)
	}
}

// dropConn closes and forgets one inbound connection.
func (c *SocketConduit) dropConn(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	delete(c.conns, conn)
	c.mu.Unlock()
}

// serve is the inbound half of the round trip: read message frames, route
// each into the destination node's mailbox, ack with the Send result. Any
// malformed frame is connection-fatal — the peer's pending deliveries fail
// as losses and the conduit stays up for the next connection — so garbage on
// the wire can never wedge the coordinator.
func (c *SocketConduit) serve(conn net.Conn) {
	defer c.wg.Done()
	defer c.dropConn(conn)
	var buf, out []byte
	var cache paramsCache
	for {
		body, err := readFrame(conn, &buf)
		if err != nil {
			if errors.Is(err, errCodec) || errors.Is(err, io.ErrUnexpectedEOF) {
				c.rejects.Add(1)
			}
			return
		}
		if body[0] != frameMessage {
			c.rejects.Add(1)
			return
		}
		seq, to, m, err := decodeMessage(body[1:], c.epoch, &cache)
		if err != nil {
			c.rejects.Add(1)
			return
		}
		node := c.node(to)
		ok := node != nil && node.Send(m)
		out = appendAckFrame(out[:0], seq, ok)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

// peer is one outbound destination: the connection to a listener, its
// pending-ack table, and the reconnect state.
type peer struct {
	c       *SocketConduit
	network string
	addr    string
	seq     atomic.Uint64

	mu       sync.Mutex // guards pc and redialed (dial / kill)
	pc       *peerConn
	redialed bool // a connection died; the next successful dial is a reconnect
}

// peerConn is one live outbound connection. Pending acks are per-connection:
// when the connection dies, exactly the deliveries written to it fail — a
// retry on a fresh connection starts a fresh table.
type peerConn struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	pending map[uint64]chan bool
	dead    bool
}

func (pc *peerConn) register(seq uint64) chan bool {
	ch := make(chan bool, 1)
	pc.pmu.Lock()
	if pc.dead {
		pc.pmu.Unlock()
		ch <- false
		return ch
	}
	pc.pending[seq] = ch
	pc.pmu.Unlock()
	return ch
}

func (pc *peerConn) unregister(seq uint64) {
	pc.pmu.Lock()
	delete(pc.pending, seq)
	pc.pmu.Unlock()
}

func (pc *peerConn) resolve(seq uint64, ok bool) {
	pc.pmu.Lock()
	ch, found := pc.pending[seq]
	delete(pc.pending, seq)
	pc.pmu.Unlock()
	if found {
		ch <- ok
	}
}

// failAll resolves every pending delivery as lost; later registers fail
// immediately.
func (pc *peerConn) failAll() {
	pc.pmu.Lock()
	pending := pc.pending
	pc.pending = nil
	pc.dead = true
	pc.pmu.Unlock()
	for _, ch := range pending {
		ch <- false
	}
}

func (pc *peerConn) write(frame []byte) error {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	_, err := pc.conn.Write(frame)
	return err
}

// deliver runs one message through the write-then-ack round trip, re-dialing
// with bounded backoff when the connection is down or dies under the write.
// A failure after the write succeeded is not retried: the message may have
// reached the mailbox, and at-most-once is the loss semantics the scheduler
// expects.
func (p *peer) deliver(to int, m runtime.Message) bool {
	seq := p.seq.Add(1)
	frame, err := appendMessageFrame(nil, seq, to, m, p.c.epoch)
	if err != nil {
		// Only a payload type outside the protocol's set gets here: a
		// programming error, not a transport condition. Fail loudly instead
		// of folding it into the loss model.
		panic(fmt.Sprintf("netconduit: %v", err))
	}
	backoff := initialBackoff
	for attempt := 0; attempt < maxAttempts; attempt++ {
		select {
		case <-p.c.closed:
			return false
		default:
		}
		pc, err := p.ensureConn()
		if err != nil {
			select {
			case <-p.c.closed:
				return false
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		ch := pc.register(seq)
		if err := pc.write(frame); err != nil {
			pc.unregister(seq)
			p.kill(pc)
			continue
		}
		select {
		case ok := <-ch:
			return ok
		case <-p.c.closed:
			pc.unregister(seq)
			return false
		}
	}
	return false
}

// ensureConn returns the live connection, dialing one (and starting its ack
// reader) if needed.
func (p *peer) ensureConn() (*peerConn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pc != nil {
		return p.pc, nil
	}
	conn, err := net.DialTimeout(p.network, p.addr, time.Second)
	if err != nil {
		return nil, err
	}
	if p.redialed {
		p.redialed = false
		p.c.reconnects.Add(1)
	}
	pc := &peerConn{conn: conn, pending: make(map[uint64]chan bool)}
	p.pc = pc
	p.c.wg.Add(1)
	go p.readAcks(pc)
	return pc, nil
}

// kill retires a connection: detach it so the next deliver re-dials, close
// it, and fail what was in flight on it.
func (p *peer) kill(pc *peerConn) {
	p.mu.Lock()
	if p.pc == pc {
		p.pc = nil
		p.redialed = true
	}
	p.mu.Unlock()
	pc.conn.Close()
	pc.failAll()
}

// closeConn is Close's half of kill: drop the live connection, if any.
func (p *peer) closeConn() {
	p.mu.Lock()
	pc := p.pc
	p.pc = nil
	p.mu.Unlock()
	if pc != nil {
		pc.conn.Close()
	}
}

// readAcks drains one connection's ack stream, resolving pending deliveries,
// until the connection dies — then retires it so in-flight deliveries fail
// and the next one reconnects.
func (p *peer) readAcks(pc *peerConn) {
	defer p.c.wg.Done()
	var buf []byte
	for {
		body, err := readFrame(pc.conn, &buf)
		if err != nil {
			break
		}
		if body[0] != frameAck {
			break
		}
		seq, ok, err := decodeAck(body[1:])
		if err != nil {
			break
		}
		pc.resolve(seq, ok)
	}
	p.kill(pc)
}
