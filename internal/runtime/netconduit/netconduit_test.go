package netconduit

import (
	"context"
	"net"
	"os"
	stdruntime "runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
)

// networks are the two socket flavors every robustness property must hold on.
var networks = []string{"unix", "tcp"}

// testSetup builds a small prepared run whose nodes the socket tests deliver
// into.
func testSetup(t *testing.T, n int, seed uint64) (*core.RunSetup, core.Params) {
	t.Helper()
	p, err := core.NewParams(n, 2, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	setup, err := core.PrepareRun(core.RunConfig{
		Params: p,
		Colors: core.UniformColors(n, 2),
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return setup, p
}

// testRuntime starts node goroutines on the loss-free channel conduit, so the
// socket conduit under test can be driven and torn down independently of the
// runtime's lifecycle.
func testRuntime(t *testing.T, n int, seed uint64) (*runtime.Runtime, core.Params) {
	t.Helper()
	setup, p := testSetup(t, n, seed)
	rt := runtime.New(runtime.Config{
		Topology: setup.Net,
		Faulty:   setup.Faulty,
		Faults:   setup.Faults,
		Counters: setup.Counters,
	}, setup.Agents)
	return rt, p
}

// voteMsg is a well-formed protocol message that round-0 agents ignore
// (commitment phase) — safe to inject outside a coordinated round.
func voteMsg(p core.Params) runtime.Message {
	return runtime.Message{Kind: runtime.MsgVote, Round: 0, From: 1, Payload: core.Vote{P: p, Value: 1}}
}

func listen(t *testing.T, network string) *SocketConduit {
	t.Helper()
	c, err := Listen(network)
	if err != nil {
		t.Fatalf("Listen(%s): %v", network, err)
	}
	return c
}

// TestDeliverAfterNodeShutdown pins the inbound half of the loss contract: a
// frame that reaches the listener after its destination node has shut down is
// acked false — Deliver reports a transport loss, the connection survives,
// and nothing counts as a malformed-frame reject.
func TestDeliverAfterNodeShutdown(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			rt, p := testRuntime(t, 32, 1)
			c := listen(t, network)
			defer c.Close()
			if !c.Deliver(rt.Node(3), voteMsg(p)) {
				t.Fatal("delivery to a live node failed")
			}
			rt.Shutdown()
			if c.Deliver(rt.Node(3), voteMsg(p)) {
				t.Fatal("delivery to a stopped node reported success")
			}
			if got := c.rejects.Load(); got != 0 {
				t.Fatalf("well-formed frames counted as rejects: %d", got)
			}
		})
	}
}

// TestReconnectAfterConnKilled pins the reconnect path: killing the outbound
// connection mid-run makes the next Deliver re-dial (counted in reconnects)
// and succeed, instead of failing forever or wedging.
func TestReconnectAfterConnKilled(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			rt, p := testRuntime(t, 32, 2)
			defer rt.Shutdown()
			c := listen(t, network)
			defer c.Close()
			if !c.Deliver(rt.Node(0), voteMsg(p)) {
				t.Fatal("first delivery failed")
			}
			// One loopback peer exists now; yank its live connection out from
			// under it, as a peer crash or network partition would.
			c.mu.Lock()
			if len(c.peers) != 1 {
				c.mu.Unlock()
				t.Fatalf("expected 1 peer, have %d", len(c.peers))
			}
			var p0 *peer
			for _, pe := range c.peers {
				p0 = pe
			}
			c.mu.Unlock()
			p0.mu.Lock()
			pc := p0.pc
			p0.mu.Unlock()
			if pc == nil {
				t.Fatal("no live outbound connection after a delivery")
			}
			pc.conn.Close()
			// The ack reader notices and retires the connection; wait for that
			// so the next delivery deterministically takes the re-dial path.
			deadline := time.Now().Add(5 * time.Second)
			for {
				p0.mu.Lock()
				gone := p0.pc == nil
				p0.mu.Unlock()
				if gone {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("killed connection never retired")
				}
				time.Sleep(time.Millisecond)
			}
			if !c.Deliver(rt.Node(1), voteMsg(p)) {
				t.Fatal("delivery after connection kill failed")
			}
			if got := c.reconnects.Load(); got != 1 {
				t.Fatalf("reconnects = %d, want 1", got)
			}
		})
	}
}

// closeWriter is the half-close both net.TCPConn and net.UnixConn provide —
// it lets a test send a truncated frame and still observe the server's
// reaction on the read side.
type closeWriter interface{ CloseWrite() error }

// TestGarbageFramesRejected walks raw garbage into the listener — oversized
// length prefix, unknown frame type, unsupported codec version, truncated
// body — and pins that each one is connection-fatal (the writer sees EOF),
// counted as a reject, and leaves the conduit fully usable.
func TestGarbageFramesRejected(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			rt, p := testRuntime(t, 32, 3)
			defer rt.Shutdown()
			c := listen(t, network)
			defer c.Close()
			addr := c.Addr()
			cases := [][]byte{
				{0xFF, 0xFF, 0xFF, 0xFF},       // length prefix beyond MaxFrame
				{0, 0, 0, 3, 9, 9, 9},          // unknown frame type 9
				{0, 0, 0, 2, frameMessage, 99}, // message frame, codec version 99
				{0, 0, 0, 10, frameMessage, 2}, // body truncated by half-close
				{0, 0, 0, 2, frameBatch, 99},   // batch frame, batch version 99
				{0, 0, 0, 4, frameBatch, batchVersion, 1, 0}, // batch of zero messages
				{0, 0, 0, 5, frameBatch, batchVersion, 1, 9, 0}, // count 9 overruns the frame
				{0, 0, 0, 6, frameBatch, batchVersion, 1, 1, 3, 0}, // message body truncated mid-header
			}
			for i, frame := range cases {
				conn, err := net.Dial(addr.Network(), addr.String())
				if err != nil {
					t.Fatalf("case %d: dial: %v", i, err)
				}
				if _, err := conn.Write(frame); err != nil {
					t.Fatalf("case %d: write: %v", i, err)
				}
				conn.(closeWriter).CloseWrite()
				// The server must close the connection on us — garbage is
				// connection-fatal, not something to resynchronize past.
				if _, err := conn.Read(make([]byte, 1)); err == nil {
					t.Fatalf("case %d: server kept the connection open", i)
				}
				conn.Close()
			}
			if got := c.rejects.Load(); got != int64(len(cases)) {
				t.Fatalf("rejects = %d, want %d", got, len(cases))
			}
			// The coordinator-facing path must be untouched by all of it.
			if !c.Deliver(rt.Node(0), voteMsg(p)) {
				t.Fatal("delivery after garbage storm failed")
			}
		})
	}
}

// TestConcurrentDeliver exercises the conduit's concurrency contract under
// the race detector: many goroutines delivering through one shared peer
// connection, every ack finding its own waiter.
func TestConcurrentDeliver(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			const workers, each = 8, 8
			rt, p := testRuntime(t, workers*each, 4)
			defer rt.Shutdown()
			c := listen(t, network)
			defer c.Close()
			var wg sync.WaitGroup
			failed := make(chan int, workers*each)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						id := w*each + i
						if !c.Deliver(rt.Node(id), voteMsg(p)) {
							failed <- id
						}
					}
				}(w)
			}
			wg.Wait()
			close(failed)
			for id := range failed {
				t.Errorf("concurrent delivery to node %d failed", id)
			}
		})
	}
}

// TestRouteAcrossConduits pins the multi-listener seam: a node registered
// behind a second conduit's listener is reachable through Route, over a
// second outbound peer — the exact machinery a sharded deployment uses.
func TestRouteAcrossConduits(t *testing.T) {
	rt, p := testRuntime(t, 16, 5)
	defer rt.Shutdown()
	a := listen(t, "tcp")
	defer a.Close()
	b := listen(t, "unix")
	defer b.Close()
	b.Register(rt.Node(5))
	a.Route(5, b.Addr().Network(), b.Addr().String())
	if !a.Deliver(rt.Node(5), voteMsg(p)) {
		t.Fatal("routed delivery through the remote listener failed")
	}
	if !a.Deliver(rt.Node(2), voteMsg(p)) {
		t.Fatal("loopback delivery alongside a route failed")
	}
	a.mu.Lock()
	peers := len(a.peers)
	a.mu.Unlock()
	if peers != 2 {
		t.Fatalf("sender holds %d peers, want 2 (loopback + routed)", peers)
	}
	if got := b.rejects.Load(); got != 0 {
		t.Fatalf("remote listener rejected %d frames", got)
	}
}

// TestBatchDeliver pins the batched seam directly: a wave of Adds across
// several nodes flushes to all-true results in Add order, both with the
// default threshold (one coalesced frame) and with batchBytes shrunk so
// every Add seals its own frame — a multi-frame in-flight window.
func TestBatchDeliver(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			for _, window := range []int{0, 1} {
				rt, p := testRuntime(t, 32, 7)
				c := listen(t, network)
				c.batchBytes = window
				b := c.NewBatch()
				const waves, per = 2, 12
				for w := 0; w < waves; w++ {
					for i := 0; i < per; i++ {
						b.Add(rt.Node(i), voteMsg(p))
					}
					oks := b.Flush()
					if len(oks) != per {
						t.Fatalf("window=%d: flush returned %d results, want %d", window, len(oks), per)
					}
					for i, ok := range oks {
						if !ok {
							t.Fatalf("window=%d wave %d: delivery %d reported lost", window, w, i)
						}
					}
				}
				if got := c.rejects.Load(); got != 0 {
					t.Fatalf("window=%d: well-formed batches counted as rejects: %d", window, got)
				}
				c.Close()
				rt.Shutdown()
			}
		})
	}
}

// TestDeliverSteadyStateAllocs is the alloc budget for the hot path: after
// warm-up (peer dialed, pools primed, node registered), a Deliver of a
// nil-payload message — encode, write, server decode, mailbox hand-off, ack
// — allocates nothing on either side. Payload-free messages isolate the
// transport: decoding a payload necessarily allocates its value.
func TestDeliverSteadyStateAllocs(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			rt, _ := testRuntime(t, 256, 8)
			defer rt.Shutdown()
			c := listen(t, network)
			defer c.Close()
			// Node 3 < 256 keeps the sync.Map key boxing on the runtime's
			// small-integer cache, off the allocator.
			m := runtime.Message{Kind: runtime.MsgVote, Round: 0, From: 1}
			for i := 0; i < 8; i++ {
				if !c.Deliver(rt.Node(3), m) {
					t.Fatal("warm-up delivery failed")
				}
			}
			avg := testing.AllocsPerRun(64, func() {
				if !c.Deliver(rt.Node(3), m) {
					t.Fatal("steady-state delivery failed")
				}
			})
			if avg != 0 {
				t.Fatalf("steady-state Deliver allocates %.1f objects/op, want 0", avg)
			}
		})
	}
}

// v1OnlyListener emulates a PR 9 peer that predates the v2 batch frame: it
// serves single message frames correctly and treats any other frame type —
// including frameBatch — as connection-fatal garbage, exactly what the old
// serve loop did.
func v1OnlyListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var buf, out []byte
				var cache paramsCache
				epoch := time.Now()
				for {
					body, err := readFrame(conn, &buf)
					if err != nil || body[0] != frameMessage {
						return
					}
					seq, _, _, err := decodeMessage(body[1:], epoch, &cache)
					if err != nil {
						return
					}
					out = appendAckFrame(out[:0], seq, true)
					if _, err := conn.Write(out); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln
}

// TestMixedVersionPeerFailsClosed pins the cross-version contract: a v2
// sender flushing a batch at a v1-only reader fails closed — the reader
// drops the connection, every delivery in the window is reported lost, and
// the conduit stays live (v1 single-message frames still get through, and
// the next batch to a v2 peer works untouched).
func TestMixedVersionPeerFailsClosed(t *testing.T) {
	rt, p := testRuntime(t, 32, 9)
	defer rt.Shutdown()
	old := v1OnlyListener(t)
	defer old.Close()
	c := listen(t, "tcp")
	defer c.Close()
	c.Route(7, "tcp", old.Addr().String())

	// The v1 rung still interoperates: a single Deliver speaks frame v1.
	if !c.Deliver(rt.Node(7), voteMsg(p)) {
		t.Fatal("v1 single-message delivery to the old peer failed")
	}
	// A batch at the old peer must fail whole — no partial acks, no hang.
	b := c.NewBatch()
	const k = 5
	for i := 0; i < k; i++ {
		b.Add(rt.Node(7), voteMsg(p))
	}
	oks := b.Flush()
	if len(oks) != k {
		t.Fatalf("flush returned %d results, want %d", len(oks), k)
	}
	for i, ok := range oks {
		if ok {
			t.Fatalf("delivery %d to a v1-only reader reported success", i)
		}
	}
	// The conduit is still live on both rungs: batches to a v2 peer work,
	// and the old peer is reachable again over v1 after a re-dial.
	for i := 0; i < 3; i++ {
		b.Add(rt.Node(i), voteMsg(p))
	}
	for i, ok := range b.Flush() {
		if !ok {
			t.Fatalf("loopback batch delivery %d failed after the v1 rejection", i)
		}
	}
	if !c.Deliver(rt.Node(7), voteMsg(p)) {
		t.Fatal("v1 delivery after the batch rejection failed to re-dial")
	}
}

// batchAckingListener acks complete batch frames until ackFrames have been
// answered, then kills the connection on the next frame — the window-death
// fixture.
func batchAckingListener(t *testing.T, ackFrames int) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var buf, out []byte
				acked := 0
				for {
					body, err := readFrame(conn, &buf)
					if err != nil || body[0] != frameBatch {
						return
					}
					if acked >= ackFrames {
						return // kill the conn with this frame unacked
					}
					r := &reader{b: body[1:]}
					seq, count, err := readBatchHeader(r)
					if err != nil {
						return
					}
					bits := make([]byte, (count+7)/8)
					for i := 0; i < count; i++ {
						bitmapSet(bits, i)
					}
					out = appendBatchAckFrame(out[:0], seq, bits, count)
					if _, err := conn.Write(out); err != nil {
						return
					}
					acked++
				}
			}(conn)
		}
	}()
	return ln
}

// TestBatchWindowConnDeath pins the window's failure isolation: with two
// frames in flight on one connection, a peer that acks the first and dies
// before the second fails exactly the second frame's deliveries — the acked
// frame's results survive, and the conduit re-dials for the next wave.
func TestBatchWindowConnDeath(t *testing.T) {
	rt, p := testRuntime(t, 32, 10)
	defer rt.Shutdown()
	ln := batchAckingListener(t, 1)
	defer ln.Close()
	c := listen(t, "tcp")
	defer c.Close()
	c.batchBytes = 1 // every Add seals its own frame
	c.Route(4, "tcp", ln.Addr().String())
	c.Route(5, "tcp", ln.Addr().String())

	b := c.NewBatch()
	b.Add(rt.Node(4), voteMsg(p)) // frame 1: acked
	b.Add(rt.Node(5), voteMsg(p)) // frame 2: connection dies unacked
	oks := b.Flush()
	if len(oks) != 2 {
		t.Fatalf("flush returned %d results, want 2", len(oks))
	}
	if !oks[0] {
		t.Fatal("acked frame's delivery reported lost")
	}
	if oks[1] {
		t.Fatal("unacked frame's delivery reported success after conn death")
	}
	// The next wave re-dials the stub (which acks one fresh frame per conn).
	b.Add(rt.Node(4), voteMsg(p))
	if oks := b.Flush(); !oks[0] {
		t.Fatal("batch after window death failed to re-dial")
	}
	if got := c.reconnects.Load(); got == 0 {
		t.Fatal("window death never counted as a reconnect")
	}
}

// TestConcurrentDeliverDuringBatch runs single Delivers and batch flushes
// against one conduit at once under the race detector: the two pending
// tables share a connection and its ack stream, and every completion must
// find its own waiter.
func TestConcurrentDeliverDuringBatch(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			rt, p := testRuntime(t, 64, 11)
			defer rt.Shutdown()
			c := listen(t, network)
			defer c.Close()
			const workers, each = 4, 4
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						if !c.Deliver(rt.Node(32+w*each+i), voteMsg(p)) {
							t.Errorf("concurrent single delivery %d/%d failed", w, i)
						}
					}
				}(w)
			}
			b := c.NewBatch()
			for wave := 0; wave < 2; wave++ {
				for i := 0; i < 8; i++ {
					b.Add(rt.Node(wave*8+i), voteMsg(p))
				}
				for i, ok := range b.Flush() {
					if !ok {
						t.Errorf("batch wave %d delivery %d failed", wave, i)
					}
				}
			}
			wg.Wait()
		})
	}
}

// TestShutdownReleasesResources is the transport goroleak bracket: a full
// run through the socket conduit, shut down through Runtime.Shutdown, leaves
// no conduit goroutines and (for unix) no socket file behind.
func TestShutdownReleasesResources(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			before := stdruntime.NumGoroutine()
			setup, _ := testSetup(t, 32, 6)
			c := listen(t, network)
			rt := runtime.New(runtime.Config{
				Topology: setup.Net,
				Faulty:   setup.Faulty,
				Faults:   setup.Faults,
				Counters: setup.Counters,
				Conduit:  c,
			}, setup.Agents)
			if _, err := rt.Run(context.Background(), setup.MaxRounds); err != nil {
				t.Fatal(err)
			}
			rt.Shutdown() // closes the conduit: runtime owns the transport
			if c.dir != "" {
				if _, err := os.Stat(c.dir); !os.IsNotExist(err) {
					t.Fatalf("unix socket dir %s survived Close (err=%v)", c.dir, err)
				}
			}
			deadline := time.Now().Add(5 * time.Second)
			for stdruntime.NumGoroutine() > before {
				if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked: %d running, want <= %d", stdruntime.NumGoroutine(), before)
				}
				time.Sleep(5 * time.Millisecond)
			}
			// Deliver after Close must fail fast, not re-dial a dead listener.
			if c.Deliver(rt.Node(0), runtime.Message{Kind: runtime.MsgVote}) {
				t.Fatal("delivery through a closed conduit reported success")
			}
		})
	}
}
