package netconduit

import (
	"context"
	"net"
	"os"
	stdruntime "runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
)

// networks are the two socket flavors every robustness property must hold on.
var networks = []string{"unix", "tcp"}

// testSetup builds a small prepared run whose nodes the socket tests deliver
// into.
func testSetup(t *testing.T, n int, seed uint64) (*core.RunSetup, core.Params) {
	t.Helper()
	p, err := core.NewParams(n, 2, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	setup, err := core.PrepareRun(core.RunConfig{
		Params: p,
		Colors: core.UniformColors(n, 2),
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return setup, p
}

// testRuntime starts node goroutines on the loss-free channel conduit, so the
// socket conduit under test can be driven and torn down independently of the
// runtime's lifecycle.
func testRuntime(t *testing.T, n int, seed uint64) (*runtime.Runtime, core.Params) {
	t.Helper()
	setup, p := testSetup(t, n, seed)
	rt := runtime.New(runtime.Config{
		Topology: setup.Net,
		Faulty:   setup.Faulty,
		Faults:   setup.Faults,
		Counters: setup.Counters,
	}, setup.Agents)
	return rt, p
}

// voteMsg is a well-formed protocol message that round-0 agents ignore
// (commitment phase) — safe to inject outside a coordinated round.
func voteMsg(p core.Params) runtime.Message {
	return runtime.Message{Kind: runtime.MsgVote, Round: 0, From: 1, Payload: core.Vote{P: p, Value: 1}}
}

func listen(t *testing.T, network string) *SocketConduit {
	t.Helper()
	c, err := Listen(network)
	if err != nil {
		t.Fatalf("Listen(%s): %v", network, err)
	}
	return c
}

// TestDeliverAfterNodeShutdown pins the inbound half of the loss contract: a
// frame that reaches the listener after its destination node has shut down is
// acked false — Deliver reports a transport loss, the connection survives,
// and nothing counts as a malformed-frame reject.
func TestDeliverAfterNodeShutdown(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			rt, p := testRuntime(t, 32, 1)
			c := listen(t, network)
			defer c.Close()
			if !c.Deliver(rt.Node(3), voteMsg(p)) {
				t.Fatal("delivery to a live node failed")
			}
			rt.Shutdown()
			if c.Deliver(rt.Node(3), voteMsg(p)) {
				t.Fatal("delivery to a stopped node reported success")
			}
			if got := c.rejects.Load(); got != 0 {
				t.Fatalf("well-formed frames counted as rejects: %d", got)
			}
		})
	}
}

// TestReconnectAfterConnKilled pins the reconnect path: killing the outbound
// connection mid-run makes the next Deliver re-dial (counted in reconnects)
// and succeed, instead of failing forever or wedging.
func TestReconnectAfterConnKilled(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			rt, p := testRuntime(t, 32, 2)
			defer rt.Shutdown()
			c := listen(t, network)
			defer c.Close()
			if !c.Deliver(rt.Node(0), voteMsg(p)) {
				t.Fatal("first delivery failed")
			}
			// One loopback peer exists now; yank its live connection out from
			// under it, as a peer crash or network partition would.
			c.mu.Lock()
			if len(c.peers) != 1 {
				c.mu.Unlock()
				t.Fatalf("expected 1 peer, have %d", len(c.peers))
			}
			var p0 *peer
			for _, pe := range c.peers {
				p0 = pe
			}
			c.mu.Unlock()
			p0.mu.Lock()
			pc := p0.pc
			p0.mu.Unlock()
			if pc == nil {
				t.Fatal("no live outbound connection after a delivery")
			}
			pc.conn.Close()
			// The ack reader notices and retires the connection; wait for that
			// so the next delivery deterministically takes the re-dial path.
			deadline := time.Now().Add(5 * time.Second)
			for {
				p0.mu.Lock()
				gone := p0.pc == nil
				p0.mu.Unlock()
				if gone {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("killed connection never retired")
				}
				time.Sleep(time.Millisecond)
			}
			if !c.Deliver(rt.Node(1), voteMsg(p)) {
				t.Fatal("delivery after connection kill failed")
			}
			if got := c.reconnects.Load(); got != 1 {
				t.Fatalf("reconnects = %d, want 1", got)
			}
		})
	}
}

// closeWriter is the half-close both net.TCPConn and net.UnixConn provide —
// it lets a test send a truncated frame and still observe the server's
// reaction on the read side.
type closeWriter interface{ CloseWrite() error }

// TestGarbageFramesRejected walks raw garbage into the listener — oversized
// length prefix, unknown frame type, unsupported codec version, truncated
// body — and pins that each one is connection-fatal (the writer sees EOF),
// counted as a reject, and leaves the conduit fully usable.
func TestGarbageFramesRejected(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			rt, p := testRuntime(t, 32, 3)
			defer rt.Shutdown()
			c := listen(t, network)
			defer c.Close()
			addr := c.Addr()
			cases := [][]byte{
				{0xFF, 0xFF, 0xFF, 0xFF},       // length prefix beyond MaxFrame
				{0, 0, 0, 3, 9, 9, 9},          // unknown frame type 9
				{0, 0, 0, 2, frameMessage, 99}, // message frame, codec version 99
				{0, 0, 0, 10, frameMessage, 2}, // body truncated by half-close
			}
			for i, frame := range cases {
				conn, err := net.Dial(addr.Network(), addr.String())
				if err != nil {
					t.Fatalf("case %d: dial: %v", i, err)
				}
				if _, err := conn.Write(frame); err != nil {
					t.Fatalf("case %d: write: %v", i, err)
				}
				conn.(closeWriter).CloseWrite()
				// The server must close the connection on us — garbage is
				// connection-fatal, not something to resynchronize past.
				if _, err := conn.Read(make([]byte, 1)); err == nil {
					t.Fatalf("case %d: server kept the connection open", i)
				}
				conn.Close()
			}
			if got := c.rejects.Load(); got != int64(len(cases)) {
				t.Fatalf("rejects = %d, want %d", got, len(cases))
			}
			// The coordinator-facing path must be untouched by all of it.
			if !c.Deliver(rt.Node(0), voteMsg(p)) {
				t.Fatal("delivery after garbage storm failed")
			}
		})
	}
}

// TestConcurrentDeliver exercises the conduit's concurrency contract under
// the race detector: many goroutines delivering through one shared peer
// connection, every ack finding its own waiter.
func TestConcurrentDeliver(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			const workers, each = 8, 8
			rt, p := testRuntime(t, workers*each, 4)
			defer rt.Shutdown()
			c := listen(t, network)
			defer c.Close()
			var wg sync.WaitGroup
			failed := make(chan int, workers*each)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						id := w*each + i
						if !c.Deliver(rt.Node(id), voteMsg(p)) {
							failed <- id
						}
					}
				}(w)
			}
			wg.Wait()
			close(failed)
			for id := range failed {
				t.Errorf("concurrent delivery to node %d failed", id)
			}
		})
	}
}

// TestRouteAcrossConduits pins the multi-listener seam: a node registered
// behind a second conduit's listener is reachable through Route, over a
// second outbound peer — the exact machinery a sharded deployment uses.
func TestRouteAcrossConduits(t *testing.T) {
	rt, p := testRuntime(t, 16, 5)
	defer rt.Shutdown()
	a := listen(t, "tcp")
	defer a.Close()
	b := listen(t, "unix")
	defer b.Close()
	b.Register(rt.Node(5))
	a.Route(5, b.Addr().Network(), b.Addr().String())
	if !a.Deliver(rt.Node(5), voteMsg(p)) {
		t.Fatal("routed delivery through the remote listener failed")
	}
	if !a.Deliver(rt.Node(2), voteMsg(p)) {
		t.Fatal("loopback delivery alongside a route failed")
	}
	a.mu.Lock()
	peers := len(a.peers)
	a.mu.Unlock()
	if peers != 2 {
		t.Fatalf("sender holds %d peers, want 2 (loopback + routed)", peers)
	}
	if got := b.rejects.Load(); got != 0 {
		t.Fatalf("remote listener rejected %d frames", got)
	}
}

// TestShutdownReleasesResources is the transport goroleak bracket: a full
// run through the socket conduit, shut down through Runtime.Shutdown, leaves
// no conduit goroutines and (for unix) no socket file behind.
func TestShutdownReleasesResources(t *testing.T) {
	for _, network := range networks {
		t.Run(network, func(t *testing.T) {
			before := stdruntime.NumGoroutine()
			setup, _ := testSetup(t, 32, 6)
			c := listen(t, network)
			rt := runtime.New(runtime.Config{
				Topology: setup.Net,
				Faulty:   setup.Faulty,
				Faults:   setup.Faults,
				Counters: setup.Counters,
				Conduit:  c,
			}, setup.Agents)
			if _, err := rt.Run(context.Background(), setup.MaxRounds); err != nil {
				t.Fatal(err)
			}
			rt.Shutdown() // closes the conduit: runtime owns the transport
			if c.dir != "" {
				if _, err := os.Stat(c.dir); !os.IsNotExist(err) {
					t.Fatalf("unix socket dir %s survived Close (err=%v)", c.dir, err)
				}
			}
			deadline := time.Now().Add(5 * time.Second)
			for stdruntime.NumGoroutine() > before {
				if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked: %d running, want <= %d", stdruntime.NumGoroutine(), before)
				}
				time.Sleep(5 * time.Millisecond)
			}
			// Deliver after Close must fail fast, not re-dial a dead listener.
			if c.Deliver(rt.Node(0), runtime.Message{Kind: runtime.MsgVote}) {
				t.Fatal("delivery through a closed conduit reported success")
			}
		})
	}
}
