// Package netconduit is the socket-backed rung of the transport ladder: a
// runtime.Conduit whose deliveries cross a real OS socket — TCP over the
// loopback interface or a Unix domain socket — instead of an in-process
// channel handoff. The protocol logic is untouched: the coordinator still
// delivers serially and waits for each message's completion event, so under
// the deterministic round-barrier scheduler a loopback socket is just a
// slower ChannelConduit and the runtime's transcript stays byte-identical to
// the simulator's (pinned by the equivalence suite in internal/runtime).
//
// # Frame format
//
// Every frame is a 4-byte big-endian length prefix followed by a body of at
// most MaxFrame bytes. The body's first byte is the frame type:
//
//	message frame: 1 | codec version | seq uvarint | kind byte | flags byte |
//	               round uvarint | from uvarint | to uvarint |
//	               [sent-at ticks varint, if flags&1] | payload
//	ack frame:     2 | seq uvarint | ok byte
//
// A message frame carries one runtime.Message to the node with index "to";
// the listener routes it into that node's mailbox and answers with an ack
// frame carrying the same sequence number, so Deliver keeps the conduit's
// synchronous round-trip contract (true only once the destination mailbox
// accepted the message). SentAt crosses the wire as monotonic ticks relative
// to the conduit's epoch — exact when sender and receiver share the conduit
// (the single-process loopback case); cross-process latency calibration is
// the sharded-serve follow-up's problem.
//
// The payload encoding is versioned (codecVersion) and covers exactly the
// concrete gossip.Payload types the protocol produces, tagged:
//
//	0 nil | 1 core.Intentions | 2 core.Vote | 3 core.IntentQuery |
//	4 core.CertQuery | 5 *core.Certificate
//
// Each payload starts with its Params (n, colors, gamma bits, protocol
// variant) so the receiver reconstructs the exact same core.Params — bit
// widths included — via core.NewParams + WithProtocol. Malformed frames
// (bad tag, truncated varint, oversized length, garbage trailing bytes) are
// connection-fatal: the receiver drops the connection rather than guess, and
// the sender's pending deliveries fail as transport losses.
package netconduit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/runtime"
)

// codecVersion is the message-frame payload encoding version. A receiver
// rejects frames speaking any other version instead of guessing.
const codecVersion = 1

// MaxFrame bounds one frame body. The largest regular protocol message is a
// certificate of O(log² n) bits, so a megabyte is orders of magnitude of
// headroom; anything larger is garbage and connection-fatal.
const MaxFrame = 1 << 20

// Frame types.
const (
	frameMessage byte = 1
	frameAck     byte = 2
)

// Payload tags.
const (
	payNil byte = iota
	payIntentions
	payVote
	payIntentQuery
	payCertQuery
	payCertificate
)

// flagSentAt marks a message frame that carries a SentAt timestamp.
const flagSentAt byte = 1

// errCodec is the class every malformed-frame failure belongs to.
var errCodec = errors.New("netconduit: malformed frame")

func codecErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errCodec, fmt.Sprintf(format, args...))
}

// variantCode maps a protocol variant to its stable wire byte.
func variantCode(v core.ProtocolVariant) (byte, error) {
	switch v {
	case "", core.ProtocolBaseline:
		return 0, nil
	case core.ProtocolLiveRetarget:
		return 1, nil
	case core.ProtocolRetransmit:
		return 2, nil
	case core.ProtocolRelaxed:
		return 3, nil
	}
	return 0, codecErr("unknown protocol variant %q", v)
}

// variantOf is variantCode's inverse.
func variantOf(code byte) (core.ProtocolVariant, error) {
	switch code {
	case 0:
		return core.ProtocolBaseline, nil
	case 1:
		return core.ProtocolLiveRetarget, nil
	case 2:
		return core.ProtocolRetransmit, nil
	case 3:
		return core.ProtocolRelaxed, nil
	}
	return "", codecErr("unknown protocol variant code %d", code)
}

// reader walks a frame body, latching the first decode failure.
type reader struct {
	b   []byte
	bad bool
}

func (r *reader) fail() {
	r.bad = true
	r.b = nil
}

func (r *reader) byte() byte {
	if len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) varint() int64 {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) u64() uint64 {
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

// paramsKey is the comparable identity of one encoded core.Params.
type paramsKey struct {
	n, colors        int
	gammaBits        uint64
	variant          byte
	passes, minVotes int
}

// paramsCache memoizes the last decoded Params per connection: a run speaks
// one parameter set, so after the first message every decode is a key
// comparison instead of a NewParams rebuild.
type paramsCache struct {
	key paramsKey
	p   core.Params
	ok  bool
}

// appendParams encodes p so the receiver can rebuild it exactly.
func appendParams(b []byte, p core.Params) ([]byte, error) {
	code, err := variantCode(p.Proto.Variant)
	if err != nil {
		return b, err
	}
	b = binary.AppendUvarint(b, uint64(p.N))
	b = binary.AppendUvarint(b, uint64(p.NumColors))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.Gamma))
	b = append(b, code)
	b = binary.AppendUvarint(b, uint64(p.Proto.Passes))
	b = binary.AppendUvarint(b, uint64(p.Proto.MinVotes))
	return b, nil
}

// readParams decodes and validates one Params block, rebuilding the derived
// fields (q, m, wire widths) through the same constructors the sender used.
func readParams(r *reader, cache *paramsCache) (core.Params, error) {
	key := paramsKey{
		n:         int(r.uvarint()),
		colors:    int(r.uvarint()),
		gammaBits: r.u64(),
	}
	key.variant = r.byte()
	key.passes = int(r.uvarint())
	key.minVotes = int(r.uvarint())
	if r.bad {
		return core.Params{}, codecErr("truncated params")
	}
	if cache.ok && cache.key == key {
		return cache.p, nil
	}
	variant, err := variantOf(key.variant)
	if err != nil {
		return core.Params{}, err
	}
	p, err := core.NewParams(key.n, key.colors, math.Float64frombits(key.gammaBits))
	if err != nil {
		return core.Params{}, codecErr("bad params: %v", err)
	}
	p, err = p.WithProtocol(core.Protocol{Variant: variant, Passes: key.passes, MinVotes: key.minVotes})
	if err != nil {
		return core.Params{}, codecErr("bad protocol: %v", err)
	}
	cache.key, cache.p, cache.ok = key, p, true
	return p, nil
}

// appendPayload encodes one concrete payload. An unknown payload type is a
// programming error — the conduit carries exactly the protocol's types — and
// is reported as an error so the caller can fail loudly instead of silently
// converting it into message loss.
func appendPayload(b []byte, p gossip.Payload) ([]byte, error) {
	switch m := p.(type) {
	case nil:
		return append(b, payNil), nil
	case core.Intentions:
		b = append(b, payIntentions)
		b, err := appendParams(b, m.P)
		if err != nil {
			return b, err
		}
		b = binary.AppendUvarint(b, uint64(len(m.Votes)))
		for _, v := range m.Votes {
			b = binary.AppendUvarint(b, v.H)
			b = binary.AppendVarint(b, int64(v.Z))
		}
		return b, nil
	case core.Vote:
		return appendVote(b, m)
	case *core.Vote:
		if m == nil {
			return append(b, payNil), nil
		}
		return appendVote(b, *m)
	case core.IntentQuery:
		b = append(b, payIntentQuery)
		return appendParams(b, m.P)
	case core.CertQuery:
		b = append(b, payCertQuery)
		return appendParams(b, m.P)
	case *core.Certificate:
		if m == nil {
			return append(b, payNil), nil
		}
		b = append(b, payCertificate)
		b, err := appendParams(b, m.P)
		if err != nil {
			return b, err
		}
		b = binary.AppendUvarint(b, m.K)
		b = binary.AppendUvarint(b, uint64(len(m.W)))
		for _, w := range m.W {
			b = binary.AppendVarint(b, int64(w.Voter))
			b = binary.AppendUvarint(b, w.Value)
		}
		b = binary.AppendVarint(b, int64(m.Color))
		b = binary.AppendVarint(b, int64(m.Owner))
		return b, nil
	}
	return b, codecErr("unencodable payload type %T", p)
}

func appendVote(b []byte, v core.Vote) ([]byte, error) {
	b = append(b, payVote)
	b, err := appendParams(b, v.P)
	if err != nil {
		return b, err
	}
	b = binary.AppendUvarint(b, v.Value)
	b = binary.AppendVarint(b, int64(v.Index))
	return b, nil
}

// readPayload decodes one payload block. List lengths are sanity-bounded by
// the bytes actually present, so a garbage count cannot trigger a huge
// allocation before the truncation is noticed.
func readPayload(r *reader, cache *paramsCache) (gossip.Payload, error) {
	switch tag := r.byte(); tag {
	case payNil:
		return nil, nil
	case payIntentions:
		p, err := readParams(r, cache)
		if err != nil {
			return nil, err
		}
		n := r.uvarint()
		if r.bad || n > uint64(len(r.b)) {
			return nil, codecErr("intentions count %d overruns frame", n)
		}
		votes := make([]core.Intent, n)
		for i := range votes {
			votes[i].H = r.uvarint()
			votes[i].Z = int32(r.varint())
		}
		if r.bad {
			return nil, codecErr("truncated intentions")
		}
		return core.Intentions{P: p, Votes: votes}, nil
	case payVote:
		p, err := readParams(r, cache)
		if err != nil {
			return nil, err
		}
		v := core.Vote{P: p, Value: r.uvarint(), Index: int32(r.varint())}
		if r.bad {
			return nil, codecErr("truncated vote")
		}
		return v, nil
	case payIntentQuery:
		p, err := readParams(r, cache)
		if err != nil {
			return nil, err
		}
		return core.IntentQuery{P: p}, nil
	case payCertQuery:
		p, err := readParams(r, cache)
		if err != nil {
			return nil, err
		}
		return core.CertQuery{P: p}, nil
	case payCertificate:
		p, err := readParams(r, cache)
		if err != nil {
			return nil, err
		}
		k := r.uvarint()
		n := r.uvarint()
		if r.bad || n > uint64(len(r.b)) {
			return nil, codecErr("certificate vote count %d overruns frame", n)
		}
		w := make([]core.WEntry, n)
		for i := range w {
			w[i].Voter = int32(r.varint())
			w[i].Value = r.uvarint()
		}
		cert := &core.Certificate{P: p, K: k, W: w, Color: core.Color(r.varint()), Owner: int32(r.varint())}
		if r.bad {
			return nil, codecErr("truncated certificate")
		}
		return cert, nil
	default:
		return nil, codecErr("unknown payload tag %d", tag)
	}
}

// appendMessageFrame encodes one delivery as a full frame (length prefix
// included) destined for node "to".
func appendMessageFrame(b []byte, seq uint64, to int, m runtime.Message, epoch time.Time) ([]byte, error) {
	start := len(b)
	b = append(b, 0, 0, 0, 0) // length prefix, patched below
	b = append(b, frameMessage, codecVersion)
	b = binary.AppendUvarint(b, seq)
	b = append(b, byte(m.Kind))
	var flags byte
	if !m.SentAt.IsZero() {
		flags |= flagSentAt
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(m.Round))
	b = binary.AppendUvarint(b, uint64(m.From))
	b = binary.AppendUvarint(b, uint64(to))
	if flags&flagSentAt != 0 {
		b = binary.AppendVarint(b, int64(m.SentAt.Sub(epoch)))
	}
	b, err := appendPayload(b, m.Payload)
	if err != nil {
		return b[:start], err
	}
	body := len(b) - start - 4
	if body > MaxFrame {
		return b[:start], codecErr("frame body %d exceeds MaxFrame", body)
	}
	binary.BigEndian.PutUint32(b[start:], uint32(body))
	return b, nil
}

// decodeMessage parses a message frame body (the bytes after the frame-type
// byte).
func decodeMessage(body []byte, epoch time.Time, cache *paramsCache) (seq uint64, to int, m runtime.Message, err error) {
	r := &reader{b: body}
	if v := r.byte(); v != codecVersion {
		if r.bad {
			return 0, 0, m, codecErr("empty message frame")
		}
		return 0, 0, m, codecErr("unsupported codec version %d", v)
	}
	seq = r.uvarint()
	kind := runtime.MsgKind(r.byte())
	flags := r.byte()
	m.Kind = kind
	m.Round = int(r.uvarint())
	m.From = int(r.uvarint())
	to = int(r.uvarint())
	if flags&flagSentAt != 0 {
		m.SentAt = epoch.Add(time.Duration(r.varint()))
	}
	if r.bad {
		return 0, 0, m, codecErr("truncated message header")
	}
	m.Payload, err = readPayload(r, cache)
	if err != nil {
		return 0, 0, m, err
	}
	if r.bad || len(r.b) != 0 {
		return 0, 0, m, codecErr("%d trailing bytes after payload", len(r.b))
	}
	return seq, to, m, nil
}

// appendAckFrame encodes one ack as a full frame (length prefix included).
func appendAckFrame(b []byte, seq uint64, ok bool) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0)
	b = append(b, frameAck)
	b = binary.AppendUvarint(b, seq)
	if ok {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	binary.BigEndian.PutUint32(b[start:], uint32(len(b)-start-4))
	return b
}

// decodeAck parses an ack frame body (the bytes after the frame-type byte).
func decodeAck(body []byte) (seq uint64, ok bool, err error) {
	r := &reader{b: body}
	seq = r.uvarint()
	okByte := r.byte()
	if r.bad || len(r.b) != 0 || okByte > 1 {
		return 0, false, codecErr("malformed ack")
	}
	return seq, okByte == 1, nil
}

// readFrame reads one length-prefixed frame body into *buf (grown as
// needed), returning the body slice. A length of zero or beyond MaxFrame is
// connection-fatal.
func readFrame(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, codecErr("frame length %d outside (0, %d]", n, MaxFrame)
	}
	if uint32(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	body := (*buf)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}
