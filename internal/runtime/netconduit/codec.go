// Package netconduit is the socket-backed rung of the transport ladder: a
// runtime.Conduit whose deliveries cross a real OS socket — TCP over the
// loopback interface or a Unix domain socket — instead of an in-process
// channel handoff. The protocol logic is untouched, and the runtime's
// transcript stays byte-identical to the simulator's (pinned by the
// equivalence suite in internal/runtime) on both of the conduit's paths:
// the serial one, where Deliver writes one message frame and waits for its
// ack, and the batched one (runtime.BatchConduit), where the coordinator
// stages a whole delivery wave and the conduit coalesces all same-peer
// messages of a flush into multi-message v2 frames — one write, one batched
// ack — with per-peer windows of in-flight frames settled at the barrier.
//
// # Frame format
//
// Every frame is a 4-byte big-endian length prefix followed by a body of at
// most MaxFrame bytes. The body's first byte is the frame type:
//
//	message frame: 1 | codec version (1) | seq uvarint | message body
//	ack frame:     2 | seq uvarint | ok byte
//	batch frame:   3 | batch version (2) | seq uvarint | count uvarint |
//	               count × message body
//	batch ack:     4 | seq uvarint | count uvarint | ⌈count/8⌉ bitmap bytes
//
// where one message body is
//
//	kind byte | flags byte | round uvarint | from uvarint | to uvarint |
//	[sent-at ticks varint, if flags&1] | payload
//
// A message frame carries one runtime.Message to the node with index "to";
// the listener routes it into that node's mailbox and answers with an ack
// frame carrying the same sequence number, so Deliver keeps the conduit's
// synchronous round-trip contract (true only once the destination mailbox
// accepted the message). A batch frame carries the bodies of one flush's
// same-peer messages back to back, in delivery order; the listener routes
// each body in sequence — preserving the per-destination FIFO order the
// round-barrier coordinator depends on — and answers with a single batch
// ack whose bitmap holds each body's mailbox result (bit i, LSB-first in
// byte i/8, is body i's Send result). Message bodies are self-delimiting,
// so the batch carries no per-body length. A v1-only reader that predates
// the batch frame rejects type 3 as unknown and drops the connection; the
// sender's window fails as transport losses and the next flush re-dials —
// mixed versions fail closed instead of corrupting a round. SentAt crosses
// the wire as monotonic ticks relative to the conduit's epoch — exact when
// sender and receiver share the conduit (the single-process loopback case);
// cross-process latency calibration is the sharded-serve follow-up's
// problem.
//
// The payload encoding is versioned (codecVersion) and covers exactly the
// concrete gossip.Payload types the protocol produces, tagged:
//
//	0 nil | 1 core.Intentions | 2 core.Vote | 3 core.IntentQuery |
//	4 core.CertQuery | 5 *core.Certificate
//
// Each payload starts with its Params (n, colors, gamma bits, protocol
// variant) so the receiver reconstructs the exact same core.Params — bit
// widths included — via core.NewParams + WithProtocol. Malformed frames
// (bad tag, truncated varint, oversized length, garbage trailing bytes) are
// connection-fatal: the receiver drops the connection rather than guess, and
// the sender's pending deliveries fail as transport losses.
package netconduit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/runtime"
)

// codecVersion is the message-frame payload encoding version. A receiver
// rejects frames speaking any other version instead of guessing.
const codecVersion = 1

// batchVersion is the batch-frame encoding version — v2 of the wire
// protocol; single-message v1 frames stay decodable alongside it.
const batchVersion = 2

// MaxFrame bounds one frame body. The largest regular protocol message is a
// certificate of O(log² n) bits, so a megabyte is orders of magnitude of
// headroom; anything larger is garbage and connection-fatal.
const MaxFrame = 1 << 20

// Frame types.
const (
	frameMessage  byte = 1
	frameAck      byte = 2
	frameBatch    byte = 3
	frameBatchAck byte = 4
)

// Payload tags.
const (
	payNil byte = iota
	payIntentions
	payVote
	payIntentQuery
	payCertQuery
	payCertificate
)

// flagSentAt marks a message frame that carries a SentAt timestamp.
const flagSentAt byte = 1

// errCodec is the class every malformed-frame failure belongs to.
var errCodec = errors.New("netconduit: malformed frame")

func codecErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errCodec, fmt.Sprintf(format, args...))
}

// variantCode maps a protocol variant to its stable wire byte.
func variantCode(v core.ProtocolVariant) (byte, error) {
	switch v {
	case "", core.ProtocolBaseline:
		return 0, nil
	case core.ProtocolLiveRetarget:
		return 1, nil
	case core.ProtocolRetransmit:
		return 2, nil
	case core.ProtocolRelaxed:
		return 3, nil
	}
	return 0, codecErr("unknown protocol variant %q", v)
}

// variantOf is variantCode's inverse.
func variantOf(code byte) (core.ProtocolVariant, error) {
	switch code {
	case 0:
		return core.ProtocolBaseline, nil
	case 1:
		return core.ProtocolLiveRetarget, nil
	case 2:
		return core.ProtocolRetransmit, nil
	case 3:
		return core.ProtocolRelaxed, nil
	}
	return "", codecErr("unknown protocol variant code %d", code)
}

// reader walks a frame body, latching the first decode failure.
type reader struct {
	b   []byte
	bad bool
}

func (r *reader) fail() {
	r.bad = true
	r.b = nil
}

func (r *reader) byte() byte {
	if len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) varint() int64 {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) u64() uint64 {
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

// paramsKey is the comparable identity of one encoded core.Params.
type paramsKey struct {
	n, colors        int
	gammaBits        uint64
	variant          byte
	passes, minVotes int
}

// paramsCache memoizes the last decoded Params per connection: a run speaks
// one parameter set, so after the first message every decode is a key
// comparison instead of a NewParams rebuild.
type paramsCache struct {
	key paramsKey
	p   core.Params
	ok  bool
}

// appendParams encodes p so the receiver can rebuild it exactly.
func appendParams(b []byte, p core.Params) ([]byte, error) {
	code, err := variantCode(p.Proto.Variant)
	if err != nil {
		return b, err
	}
	b = binary.AppendUvarint(b, uint64(p.N))
	b = binary.AppendUvarint(b, uint64(p.NumColors))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.Gamma))
	b = append(b, code)
	b = binary.AppendUvarint(b, uint64(p.Proto.Passes))
	b = binary.AppendUvarint(b, uint64(p.Proto.MinVotes))
	return b, nil
}

// readParams decodes and validates one Params block, rebuilding the derived
// fields (q, m, wire widths) through the same constructors the sender used.
func readParams(r *reader, cache *paramsCache) (core.Params, error) {
	key := paramsKey{
		n:         int(r.uvarint()),
		colors:    int(r.uvarint()),
		gammaBits: r.u64(),
	}
	key.variant = r.byte()
	key.passes = int(r.uvarint())
	key.minVotes = int(r.uvarint())
	if r.bad {
		return core.Params{}, codecErr("truncated params")
	}
	if cache.ok && cache.key == key {
		return cache.p, nil
	}
	variant, err := variantOf(key.variant)
	if err != nil {
		return core.Params{}, err
	}
	p, err := core.NewParams(key.n, key.colors, math.Float64frombits(key.gammaBits))
	if err != nil {
		return core.Params{}, codecErr("bad params: %v", err)
	}
	p, err = p.WithProtocol(core.Protocol{Variant: variant, Passes: key.passes, MinVotes: key.minVotes})
	if err != nil {
		return core.Params{}, codecErr("bad protocol: %v", err)
	}
	cache.key, cache.p, cache.ok = key, p, true
	return p, nil
}

// appendPayload encodes one concrete payload. An unknown payload type is a
// programming error — the conduit carries exactly the protocol's types — and
// is reported as an error so the caller can fail loudly instead of silently
// converting it into message loss.
func appendPayload(b []byte, p gossip.Payload) ([]byte, error) {
	switch m := p.(type) {
	case nil:
		return append(b, payNil), nil
	case core.Intentions:
		b = append(b, payIntentions)
		b, err := appendParams(b, m.P)
		if err != nil {
			return b, err
		}
		b = binary.AppendUvarint(b, uint64(len(m.Votes)))
		for _, v := range m.Votes {
			b = binary.AppendUvarint(b, v.H)
			b = binary.AppendVarint(b, int64(v.Z))
		}
		return b, nil
	case core.Vote:
		return appendVote(b, m)
	case *core.Vote:
		if m == nil {
			return append(b, payNil), nil
		}
		return appendVote(b, *m)
	case core.IntentQuery:
		b = append(b, payIntentQuery)
		return appendParams(b, m.P)
	case core.CertQuery:
		b = append(b, payCertQuery)
		return appendParams(b, m.P)
	case *core.Certificate:
		if m == nil {
			return append(b, payNil), nil
		}
		b = append(b, payCertificate)
		b, err := appendParams(b, m.P)
		if err != nil {
			return b, err
		}
		b = binary.AppendUvarint(b, m.K)
		b = binary.AppendUvarint(b, uint64(len(m.W)))
		for _, w := range m.W {
			b = binary.AppendVarint(b, int64(w.Voter))
			b = binary.AppendUvarint(b, w.Value)
		}
		b = binary.AppendVarint(b, int64(m.Color))
		b = binary.AppendVarint(b, int64(m.Owner))
		return b, nil
	}
	return b, codecErr("unencodable payload type %T", p)
}

func appendVote(b []byte, v core.Vote) ([]byte, error) {
	b = append(b, payVote)
	b, err := appendParams(b, v.P)
	if err != nil {
		return b, err
	}
	b = binary.AppendUvarint(b, v.Value)
	b = binary.AppendVarint(b, int64(v.Index))
	return b, nil
}

// readPayload decodes one payload block. List lengths are sanity-bounded by
// the bytes actually present, so a garbage count cannot trigger a huge
// allocation before the truncation is noticed.
func readPayload(r *reader, cache *paramsCache) (gossip.Payload, error) {
	switch tag := r.byte(); tag {
	case payNil:
		return nil, nil
	case payIntentions:
		p, err := readParams(r, cache)
		if err != nil {
			return nil, err
		}
		n := r.uvarint()
		if r.bad || n > uint64(len(r.b)) {
			return nil, codecErr("intentions count %d overruns frame", n)
		}
		votes := make([]core.Intent, n)
		for i := range votes {
			votes[i].H = r.uvarint()
			votes[i].Z = int32(r.varint())
		}
		if r.bad {
			return nil, codecErr("truncated intentions")
		}
		return core.Intentions{P: p, Votes: votes}, nil
	case payVote:
		p, err := readParams(r, cache)
		if err != nil {
			return nil, err
		}
		v := core.Vote{P: p, Value: r.uvarint(), Index: int32(r.varint())}
		if r.bad {
			return nil, codecErr("truncated vote")
		}
		return v, nil
	case payIntentQuery:
		p, err := readParams(r, cache)
		if err != nil {
			return nil, err
		}
		return core.IntentQuery{P: p}, nil
	case payCertQuery:
		p, err := readParams(r, cache)
		if err != nil {
			return nil, err
		}
		return core.CertQuery{P: p}, nil
	case payCertificate:
		p, err := readParams(r, cache)
		if err != nil {
			return nil, err
		}
		k := r.uvarint()
		n := r.uvarint()
		if r.bad || n > uint64(len(r.b)) {
			return nil, codecErr("certificate vote count %d overruns frame", n)
		}
		w := make([]core.WEntry, n)
		for i := range w {
			w[i].Voter = int32(r.varint())
			w[i].Value = r.uvarint()
		}
		cert := &core.Certificate{P: p, K: k, W: w, Color: core.Color(r.varint()), Owner: int32(r.varint())}
		if r.bad {
			return nil, codecErr("truncated certificate")
		}
		return cert, nil
	default:
		return nil, codecErr("unknown payload tag %d", tag)
	}
}

// appendMessageBody encodes one delivery's self-delimiting message body —
// everything after the per-frame header, shared between v1 message frames
// and v2 batch frames.
func appendMessageBody(b []byte, to int, m runtime.Message, epoch time.Time) ([]byte, error) {
	b = append(b, byte(m.Kind))
	var flags byte
	if !m.SentAt.IsZero() {
		flags |= flagSentAt
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(m.Round))
	b = binary.AppendUvarint(b, uint64(m.From))
	b = binary.AppendUvarint(b, uint64(to))
	if flags&flagSentAt != 0 {
		b = binary.AppendVarint(b, int64(m.SentAt.Sub(epoch)))
	}
	return appendPayload(b, m.Payload)
}

// readMessageBody decodes one message body, consuming exactly its bytes (the
// caller checks for trailing garbage once the frame is exhausted).
func readMessageBody(r *reader, epoch time.Time, cache *paramsCache) (to int, m runtime.Message, err error) {
	m.Kind = runtime.MsgKind(r.byte())
	flags := r.byte()
	m.Round = int(r.uvarint())
	m.From = int(r.uvarint())
	to = int(r.uvarint())
	if flags&flagSentAt != 0 {
		m.SentAt = epoch.Add(time.Duration(r.varint()))
	}
	if r.bad {
		return 0, m, codecErr("truncated message header")
	}
	m.Payload, err = readPayload(r, cache)
	if err != nil {
		return 0, m, err
	}
	if r.bad {
		return 0, m, codecErr("truncated message body")
	}
	return to, m, nil
}

// appendMessageFrame encodes one delivery as a full frame (length prefix
// included) destined for node "to".
func appendMessageFrame(b []byte, seq uint64, to int, m runtime.Message, epoch time.Time) ([]byte, error) {
	start := len(b)
	b = append(b, 0, 0, 0, 0) // length prefix, patched below
	b = append(b, frameMessage, codecVersion)
	b = binary.AppendUvarint(b, seq)
	b, err := appendMessageBody(b, to, m, epoch)
	if err != nil {
		return b[:start], err
	}
	body := len(b) - start - 4
	if body > MaxFrame {
		return b[:start], codecErr("frame body %d exceeds MaxFrame", body)
	}
	binary.BigEndian.PutUint32(b[start:], uint32(body))
	return b, nil
}

// decodeMessage parses a message frame body (the bytes after the frame-type
// byte).
func decodeMessage(body []byte, epoch time.Time, cache *paramsCache) (seq uint64, to int, m runtime.Message, err error) {
	r := &reader{b: body}
	if v := r.byte(); v != codecVersion {
		if r.bad {
			return 0, 0, m, codecErr("empty message frame")
		}
		return 0, 0, m, codecErr("unsupported codec version %d", v)
	}
	seq = r.uvarint()
	if r.bad {
		return 0, 0, m, codecErr("truncated message frame")
	}
	to, m, err = readMessageBody(r, epoch, cache)
	if err != nil {
		return 0, 0, m, err
	}
	if len(r.b) != 0 {
		return 0, 0, m, codecErr("%d trailing bytes after payload", len(r.b))
	}
	return seq, to, m, nil
}

// appendBatchFrame wraps count pre-encoded message bodies as one v2 batch
// frame (length prefix included).
func appendBatchFrame(b []byte, seq uint64, count int, bodies []byte) ([]byte, error) {
	start := len(b)
	b = append(b, 0, 0, 0, 0)
	b = append(b, frameBatch, batchVersion)
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(count))
	b = append(b, bodies...)
	body := len(b) - start - 4
	if body > MaxFrame {
		return b[:start], codecErr("batch frame body %d exceeds MaxFrame", body)
	}
	binary.BigEndian.PutUint32(b[start:], uint32(body))
	return b, nil
}

// readBatchHeader parses a batch frame's header (the bytes after the frame-
// type byte), leaving the reader positioned at the first message body. The
// count is sanity-bounded by the bytes present — each body is at least two
// bytes — so garbage cannot promise a huge batch.
func readBatchHeader(r *reader) (seq uint64, count int, err error) {
	if v := r.byte(); v != batchVersion {
		if r.bad {
			return 0, 0, codecErr("empty batch frame")
		}
		return 0, 0, codecErr("unsupported batch version %d", v)
	}
	seq = r.uvarint()
	n := r.uvarint()
	if r.bad || n == 0 || n > uint64(len(r.b)) {
		return 0, 0, codecErr("batch count %d overruns frame", n)
	}
	return seq, int(n), nil
}

// appendBatchAckFrame encodes one batch's result bitmap as a full frame:
// bit i (LSB-first within byte i/8) is message i's mailbox result.
func appendBatchAckFrame(b []byte, seq uint64, bits []byte, count int) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0)
	b = append(b, frameBatchAck)
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(count))
	b = append(b, bits...)
	binary.BigEndian.PutUint32(b[start:], uint32(len(b)-start-4))
	return b
}

// decodeBatchAck parses a batch ack frame body (the bytes after the frame-
// type byte). The returned bitmap aliases body.
func decodeBatchAck(body []byte) (seq uint64, bits []byte, count int, err error) {
	r := &reader{b: body}
	seq = r.uvarint()
	n := r.uvarint()
	if r.bad || n == 0 || len(r.b) != int(n+7)/8 {
		return 0, nil, 0, codecErr("malformed batch ack")
	}
	return seq, r.b, int(n), nil
}

// bitmapGet reads bit i of an LSB-first bitmap.
func bitmapGet(bits []byte, i int) bool { return bits[i/8]&(1<<(i%8)) != 0 }

// bitmapSet sets bit i of an LSB-first bitmap.
func bitmapSet(bits []byte, i int) { bits[i/8] |= 1 << (i % 8) }

// appendAckFrame encodes one ack as a full frame (length prefix included).
func appendAckFrame(b []byte, seq uint64, ok bool) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0)
	b = append(b, frameAck)
	b = binary.AppendUvarint(b, seq)
	if ok {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	binary.BigEndian.PutUint32(b[start:], uint32(len(b)-start-4))
	return b
}

// decodeAck parses an ack frame body (the bytes after the frame-type byte).
func decodeAck(body []byte) (seq uint64, ok bool, err error) {
	r := &reader{b: body}
	seq = r.uvarint()
	okByte := r.byte()
	if r.bad || len(r.b) != 0 || okByte > 1 {
		return 0, false, codecErr("malformed ack")
	}
	return seq, okByte == 1, nil
}

// readFrame reads one length-prefixed frame body into *buf (grown as
// needed), returning the body slice. A length of zero or beyond MaxFrame is
// connection-fatal. The length prefix is read into *buf too — a local
// array's slice would escape through the io.Reader call and cost an
// allocation per frame on the steady-state path.
func readFrame(r io.Reader, buf *[]byte) ([]byte, error) {
	if cap(*buf) < 4 {
		*buf = make([]byte, 64)
	}
	hdr := (*buf)[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 || n > MaxFrame {
		return nil, codecErr("frame length %d outside (0, %d]", n, MaxFrame)
	}
	if uint32(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	body := (*buf)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}
