package netconduit

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/runtime"
)

// BenchmarkSocketConduitRound measures one lockstep round when every
// delivery crosses a Unix-domain loopback socket, coalesced into v2 batch
// frames with bitmap acks — a handful of writes per round instead of a
// synchronous write→ack round trip per message. Read next to
// BenchmarkRuntimeRound (same scenario through the in-process channel
// conduit) it prices the socket rung of the transport ladder. Gated at
// n=1024 in BENCH_BASELINE.json with a wide ns threshold (kernel-timing-
// dominated) and a tight alloc budget guarding the pooled encode/ack path.
func BenchmarkSocketConduitRound(b *testing.B) {
	for _, n := range []int{128, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p, err := core.NewParams(n, 2, 3.0)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var rt *runtime.Runtime
			var setup *core.RunSetup
			rebuild := func() {
				if rt != nil {
					rt.Shutdown()
				}
				setup, err = core.PrepareRun(core.RunConfig{
					Params: p,
					Colors: core.UniformColors(n, 2),
					Seed:   1,
				})
				if err != nil {
					b.Fatal(err)
				}
				c, err := Listen("unix")
				if err != nil {
					b.Fatal(err)
				}
				rt = runtime.New(runtime.Config{
					Topology: setup.Net,
					Faulty:   setup.Faulty,
					Faults:   setup.Faults,
					Counters: setup.Counters,
					Trace:    setup.Trace,
					Drop:     setup.Drop,
					DropRand: setup.DropRand,
					Conduit:  c,
				}, setup.Agents)
			}
			rebuild()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rounds, err := rt.Run(ctx, 1)
				if err != nil {
					b.Fatal(err)
				}
				if rounds == 0 || rt.Round() >= setup.MaxRounds {
					b.StopTimer()
					rebuild()
					b.StartTimer()
				}
			}
			b.StopTimer()
			rt.Shutdown()
		})
	}
}
