package runtime

import (
	"sync"
	"time"

	"repro/internal/gossip"
)

// Node is one protocol participant running on its own goroutine: it drains
// its bounded mailbox, invokes the agent's phase logic for each message, and
// reports completion (with the action or pull reply the handler produced)
// back to the coordinator. The mailbox is the backpressure boundary — Send
// blocks while it is full — and the stop channel is the only shutdown
// signal, so a node never leaks: it exits as soon as Runtime.Shutdown
// closes the channel, whether idle or mid-queue.
type Node struct {
	id     int
	agent  gossip.Agent
	inbox  chan Message
	events chan<- event
	stop   <-chan struct{}
}

// event is a node's completion report for one processed message.
type event struct {
	id      int
	action  gossip.Action  // the Act result for MsgRound
	reply   gossip.Payload // the HandlePull result for MsgQuery
	latency time.Duration  // conduit delivery latency (timed only)
	timed   bool
}

// ID returns the node's index in the topology.
func (n *Node) ID() int { return n.id }

// Send enqueues a message into the node's mailbox, blocking while the
// mailbox is full (backpressure). It reports false — without delivering —
// once the runtime has shut down.
func (n *Node) Send(m Message) bool {
	// The stopped check comes first: with the mailbox non-full AND the stop
	// channel closed, a bare two-way select would pick a branch at random.
	select {
	case <-n.stop:
		return false
	default:
	}
	select {
	case n.inbox <- m:
		return true
	case <-n.stop:
		return false
	}
}

// run is the node goroutine: drain the mailbox until shutdown.
func (n *Node) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case m := <-n.inbox:
			n.handle(m)
		}
	}
}

// handle processes one message through the agent and reports completion.
// Every message gets exactly one completion event — the coordinator's
// lockstep depends on it.
func (n *Node) handle(m Message) {
	ev := event{id: n.id}
	if !m.SentAt.IsZero() {
		ev.latency = time.Since(m.SentAt)
		ev.timed = true
	}
	switch m.Kind {
	case MsgRound:
		ev.action = n.agent.Act(m.Round)
	case MsgPush, MsgVote:
		n.agent.HandlePush(m.Round, m.From, m.Payload)
	case MsgQuery:
		if m.From == n.id {
			// Self-pull: resolve locally, exactly the simulator's free
			// short-circuit — query and reply never cross a link.
			n.agent.HandlePullReply(m.Round, n.id, n.agent.HandlePull(m.Round, n.id, m.Payload))
		} else {
			ev.reply = n.agent.HandlePull(m.Round, m.From, m.Payload)
		}
	case MsgReply:
		n.agent.HandlePullReply(m.Round, m.From, m.Payload)
	}
	select {
	case n.events <- ev:
	case <-n.stop:
	}
}
