package runtime

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkRuntimeRound measures one lockstep round through the channel
// conduit: n goroutines activated, every push/vote/query/reply a real
// mailbox delivery, dispatched as pipelined waves and settled at the round
// barrier. Gated at n=1024 in BENCH_BASELINE.json with a wide ns threshold
// (goroutine rounds are scheduler-timing-dominated) and a tight alloc
// budget: the pipelined coordinator reuses its wave scratch, and a
// regression into per-message allocation must not land silently.
func BenchmarkRuntimeRound(b *testing.B) {
	for _, n := range []int{128, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p, err := core.NewParams(n, 2, 3.0)
			if err != nil {
				b.Fatal(err)
			}
			var rt *Runtime
			var setup *core.RunSetup
			rebuild := func() {
				if rt != nil {
					rt.Shutdown()
				}
				setup, err = core.PrepareRun(core.RunConfig{
					Params: p,
					Colors: core.UniformColors(n, 2),
					Seed:   1,
				})
				if err != nil {
					b.Fatal(err)
				}
				rt = New(Config{
					Topology: setup.Net,
					Faulty:   setup.Faulty,
					Faults:   setup.Faults,
					Counters: setup.Counters,
					Trace:    setup.Trace,
					Drop:     setup.Drop,
					DropRand: setup.DropRand,
				}, setup.Agents)
			}
			rebuild()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rt.round >= setup.MaxRounds {
					b.StopTimer()
					rebuild()
					b.StartTimer()
				}
				rt.step()
			}
			b.StopTimer()
			rt.Shutdown()
		})
	}
}
