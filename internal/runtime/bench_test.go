package runtime

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkRuntimeRound measures one lockstep round through the channel
// conduit: n goroutines activated, every push/vote/query/reply a real
// mailbox delivery with a completion event. Informational — the runtime
// trades the simulator's batch throughput for physical measurement, so this
// benchmark is not gated in BENCH_BASELINE.json; it exists to make the price
// of that trade visible next to the simulator's per-round numbers.
func BenchmarkRuntimeRound(b *testing.B) {
	for _, n := range []int{128, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p, err := core.NewParams(n, 2, 3.0)
			if err != nil {
				b.Fatal(err)
			}
			var rt *Runtime
			var setup *core.RunSetup
			rebuild := func() {
				if rt != nil {
					rt.Shutdown()
				}
				setup, err = core.PrepareRun(core.RunConfig{
					Params: p,
					Colors: core.UniformColors(n, 2),
					Seed:   1,
				})
				if err != nil {
					b.Fatal(err)
				}
				rt = New(Config{
					Topology: setup.Net,
					Faulty:   setup.Faulty,
					Faults:   setup.Faults,
					Counters: setup.Counters,
					Trace:    setup.Trace,
					Drop:     setup.Drop,
					DropRand: setup.DropRand,
				}, setup.Agents)
			}
			rebuild()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rt.round >= setup.MaxRounds {
					b.StopTimer()
					rebuild()
					b.StartTimer()
				}
				rt.step()
			}
			b.StopTimer()
			rt.Shutdown()
		})
	}
}
