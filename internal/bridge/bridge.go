// Package bridge converts between the public fairgossip API types and the
// internal execution-layer types, for tooling that needs both: commands
// like inspect and fairconsensus -trace resolve and validate scenarios
// through the public surface, then drop to internal/scenario for full-state
// access (core.RunConfig, trace sinks, agent transcripts) that the public
// API deliberately does not expose.
//
// fairgossip cannot export this conversion itself — its public signatures
// must not mention internal types — so it lives here, one way, with tests
// pinning it against the package-private conversion drifting.
package bridge

import (
	"repro/fairgossip"
	"repro/internal/scenario"
)

// ToInternal converts a public scenario to the execution-layer type. The
// structs are field-for-field identical (fairgossip's api tests pin that),
// so the conversion is a plain copy.
func ToInternal(s fairgossip.Scenario) scenario.Scenario {
	return scenario.Scenario{
		Name:          s.Name,
		N:             s.N,
		Colors:        s.Colors,
		ColorInit:     scenario.ColorInit(s.ColorInit),
		SplitFraction: s.SplitFraction,
		ZipfS:         s.ZipfS,
		Gamma:         s.Gamma,
		Topology:      s.Topology,
		Dynamics: scenario.Dynamics{
			Kind:   scenario.DynamicsKind(s.Dynamics.Kind),
			Birth:  s.Dynamics.Birth,
			Death:  s.Dynamics.Death,
			Beta:   s.Dynamics.Beta,
			Degree: s.Dynamics.Degree,
			Jitter: s.Dynamics.Jitter,
		},
		Protocol: scenario.Protocol{
			Variant:  scenario.ProtocolVariant(s.Protocol.Variant),
			TTL:      s.Protocol.TTL,
			MinVotes: s.Protocol.MinVotes,
		},
		Fault: scenario.FaultModel{
			Kind:   scenario.FaultKind(s.Fault.Kind),
			Alpha:  s.Fault.Alpha,
			Round:  s.Fault.Round,
			Period: s.Fault.Period,
			Drop:   s.Fault.Drop,
		},
		Scheduler: scenario.SchedulerKind(s.Scheduler),
		Coalition: s.Coalition,
		Deviation: s.Deviation,
		Seed:      s.Seed,
		Workers:   s.Workers,
		MaxTicks:  s.MaxTicks,
	}
}

// NewRunner builds an internal runner for a public scenario — the deep-
// access analogue of fairgossip.NewRunner.
func NewRunner(s fairgossip.Scenario) (*scenario.Runner, error) {
	return scenario.NewRunner(ToInternal(s))
}

// ResultToPublic snapshots an internal result into the public detached
// form, exactly as the fairgossip execution paths do — for tools that run
// through the internal runner (e.g. traced runs) but report through the
// public shape. Agents are deliberately dropped: the public contract is
// alias-free. Pinned against fairgossip's own conversion by this package's
// tests.
func ResultToPublic(res scenario.Result) fairgossip.Result {
	return fairgossip.Result{
		Failed: res.Outcome.Failed,
		Color:  int(res.Outcome.Color),
		Rounds: res.Rounds,
		Metrics: fairgossip.Metrics{
			Rounds:          res.Metrics.Rounds,
			Messages:        res.Metrics.Messages,
			Bits:            res.Metrics.Bits,
			MaxMessageBits:  res.Metrics.MaxMessageBits,
			Pushes:          res.Metrics.Pushes,
			Pulls:           res.Metrics.Pulls,
			UnansweredPulls: res.Metrics.UnansweredPulls,
		},
		Good: fairgossip.GoodExecution{
			VoteLowerOK:  res.Good.VoteLowerOK,
			VoteUpperOK:  res.Good.VoteUpperOK,
			DistinctK:    res.Good.DistinctK,
			CertsAgree:   res.Good.CertsAgree,
			MinVotes:     res.Good.MinVotes,
			MaxVotes:     res.Good.MaxVotes,
			ActiveAgents: res.Good.ActiveAgents,
		},
		HasGood:           res.HasGood,
		CoalitionColorWon: res.CoalitionColorWon,
	}
}
