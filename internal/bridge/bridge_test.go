package bridge

import (
	"context"
	"testing"

	"repro/fairgossip"
	"repro/internal/scenario"
)

// TestBridgeMatchesRegistry pins the conversion against the one fairgossip
// performs internally: since the public registry delegates to the internal
// one, looking a name up through both surfaces and converting must agree
// exactly, for every built-in scenario. A field the bridge forgets to copy
// shows up as a mismatch on whichever scenario exercises it.
func TestBridgeMatchesRegistry(t *testing.T) {
	for _, name := range fairgossip.Names() {
		pub, err := fairgossip.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := scenario.Lookup(name)
		if !ok {
			t.Fatalf("%s: registered publicly but not internally", name)
		}
		if got := ToInternal(pub); got != want {
			t.Errorf("%s: bridge conversion = %+v, want %+v", name, got, want)
		}
	}
}

// TestResultToPublicMatchesFairgossip pins the bridge's result conversion
// against the one inside fairgossip: running the same scenario at the same
// seed through both surfaces must produce identical public Results. A field
// added to Result/Metrics/GoodExecution but forgotten here shows up as a
// zero-value mismatch.
func TestResultToPublicMatchesFairgossip(t *testing.T) {
	pub := fairgossip.Scenario{
		N: 48, Colors: 2, Seed: 13,
		Fault: fairgossip.FaultModel{Kind: fairgossip.FaultPermanent, Alpha: 0.25, Drop: 0.05},
	}
	want, err := fairgossip.MustRunner(pub).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	inner, err := NewRunner(pub)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := ResultToPublic(res); got != want {
		t.Fatalf("bridge result conversion diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestBridgeDynamicsConversion pins the new dynamics axis through the bridge
// field by field (TestBridgeMatchesRegistry covers the dynamic builtins, but
// only at their registered parameter values), and proves the deep-access
// runner executes a dynamic scenario to the same public result fairgossip
// produces — including for a per-request parameterization no builtin uses.
func TestBridgeDynamicsConversion(t *testing.T) {
	pub := fairgossip.Scenario{
		N: 48, Colors: 2, Seed: 31,
		Dynamics: fairgossip.Dynamics{Kind: fairgossip.DynamicsEdgeMarkovian, Birth: 0.03, Death: 0.11},
	}
	got := ToInternal(pub).Dynamics
	want := scenario.Dynamics{Kind: scenario.DynamicsEdgeMarkovian, Birth: 0.03, Death: 0.11}
	if got != want {
		t.Fatalf("bridge dropped dynamics: got %+v, want %+v", got, want)
	}

	pubRes, err := fairgossip.MustRunner(pub).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	inner, err := NewRunner(pub)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ResultToPublic(res) != pubRes {
		t.Fatalf("dynamic deep-access run diverged from fairgossip:\ngot  %+v\nwant %+v", ResultToPublic(res), pubRes)
	}
}

// TestBridgeRunnerExecutes sanity-checks the deep-access path end to end.
func TestBridgeRunnerExecutes(t *testing.T) {
	r, err := NewRunner(fairgossip.Scenario{N: 16, Colors: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Agents) == 0 {
		t.Fatal("deep-access run carries no agents — that is its whole point")
	}
}
