package metrics

import (
	"fmt"
	"time"
)

// Live captures the observables that only exist once messages move through a
// real transport: wall-clock convergence time and per-message delivery
// latency. The simulator's round/message counters (Snapshot) measure the
// protocol; Live measures the runtime executing it. Latency quantiles are
// streaming estimates (stats.QuantileSketch) over every payload message the
// conduit carried — pushes, votes, pull queries, and pull replies — measured
// send-to-handler.
type Live struct {
	// WallClock is the total execution time of the run.
	WallClock time.Duration
	// Rounds is the number of rounds the runtime scheduler executed.
	Rounds int
	// Delivered counts the payload messages the conduit carried to a handler;
	// messages lost on the link or dropped in transport are not included.
	Delivered int64
	// Per-kind delivery counts: pushes (non-vote payloads), votes, pull
	// queries, and pull replies.
	Pushes, Votes, Queries, Replies int64
	// Latency quantiles over the delivered payload messages.
	LatencyP50, LatencyP99, LatencyMax time.Duration
}

// String renders the report compactly.
func (l Live) String() string {
	return fmt.Sprintf("wall=%s rounds=%d delivered=%d (push=%d vote=%d query=%d reply=%d) latency p50=%s p99=%s max=%s",
		l.WallClock.Round(time.Microsecond), l.Rounds, l.Delivered,
		l.Pushes, l.Votes, l.Queries, l.Replies,
		l.LatencyP50, l.LatencyP99, l.LatencyMax)
}
