package metrics

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCountersBasic(t *testing.T) {
	var c Counters
	c.AddRound()
	c.AddRound()
	c.AddMessage(10)
	c.AddMessage(30)
	c.AddMessage(20)
	c.AddPush()
	c.AddPull(true)
	c.AddPull(false)

	s := c.Snapshot()
	if s.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", s.Rounds)
	}
	if s.Messages != 3 {
		t.Errorf("Messages = %d, want 3", s.Messages)
	}
	if s.Bits != 60 {
		t.Errorf("Bits = %d, want 60", s.Bits)
	}
	if s.MaxMessageBits != 30 {
		t.Errorf("MaxMessageBits = %d, want 30", s.MaxMessageBits)
	}
	if s.Pushes != 1 || s.Pulls != 2 || s.UnansweredPulls != 1 {
		t.Errorf("ops snapshot = %+v", s)
	}
}

func TestCountersZeroValueUsable(t *testing.T) {
	var c Counters
	s := c.Snapshot()
	if s != (Snapshot{}) {
		t.Fatalf("zero Counters snapshot = %+v", s)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddMessage(w + 1)
				c.AddPush()
			}
		}(w)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Messages != workers*per {
		t.Errorf("Messages = %d, want %d", s.Messages, workers*per)
	}
	wantBits := int64(per * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8))
	if s.Bits != wantBits {
		t.Errorf("Bits = %d, want %d", s.Bits, wantBits)
	}
	if s.MaxMessageBits != workers {
		t.Errorf("MaxMessageBits = %d, want %d", s.MaxMessageBits, workers)
	}
}

func TestMaxMessageBitsMonotone(t *testing.T) {
	var c Counters
	c.AddMessage(100)
	c.AddMessage(5)
	if c.MaxMessageBits() != 100 {
		t.Fatalf("MaxMessageBits = %d, want 100", c.MaxMessageBits())
	}
}

func TestBitsForValues(t *testing.T) {
	cases := []struct {
		n    uint64
		want int
	}{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11}, {1 << 30, 30},
	}
	for _, tc := range cases {
		if got := BitsForValues(tc.n); got != tc.want {
			t.Errorf("BitsForValues(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestBitsForValuesProperty(t *testing.T) {
	// 2^bits >= n for every n, and bits is minimal.
	f := func(n uint32) bool {
		if n < 2 {
			return BitsForValues(uint64(n)) == 1
		}
		b := BitsForValues(uint64(n))
		return uint64(1)<<b >= uint64(n) && (b == 1 || uint64(1)<<(b-1) < uint64(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotString(t *testing.T) {
	var c Counters
	c.AddRound()
	c.AddMessage(8)
	if got := c.Snapshot().String(); got == "" {
		t.Fatal("empty String()")
	}
}

// TestShardedWritesMergeIdentically drives the same logical workload through
// different shard spreads — all on shard 0, striped across shards serially,
// and striped concurrently — and requires byte-identical snapshots: sums and
// maxes are commutative, so sharding must never be observable in the merge.
func TestShardedWritesMergeIdentically(t *testing.T) {
	deltas := make([]Delta, 64)
	for i := range deltas {
		deltas[i] = Delta{
			Rounds:     1,
			Messages:   int64(2 + i%5),
			Bits:       int64(100 * (i + 1)),
			MaxMsgBits: int64(50 + (i*37)%200),
			Pushes:     int64(i % 3),
			Pulls:      int64(i % 4),
			PullFails:  int64(i % 2),
		}
	}
	var flat Counters
	for _, d := range deltas {
		flat.AddDelta(0, d)
	}
	want := flat.Snapshot()

	var striped Counters
	for i, d := range deltas {
		striped.AddDelta(i, d)
	}
	if got := striped.Snapshot(); got != want {
		t.Fatalf("serial striping diverged: %+v != %+v", got, want)
	}

	for _, workers := range []int{2, 4, 16} {
		var conc Counters
		var wg sync.WaitGroup
		per := len(deltas) / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sh := conc.Shard(w)
				for _, d := range deltas[w*per : (w+1)*per] {
					sh.Add(d)
				}
			}(w)
		}
		wg.Wait()
		if got := conc.Snapshot(); got != want {
			t.Fatalf("workers=%d: concurrent striping diverged: %+v != %+v", workers, got, want)
		}
	}
}

func TestDeltaOfRoundTrip(t *testing.T) {
	var c Counters
	c.AddRound()
	c.AddPush()
	c.AddMessage(64)
	c.AddPull(true)
	c.AddMessage(128)
	c.AddPull(false)
	want := c.Snapshot()

	var folded Counters
	folded.AddDelta(7, DeltaOf(want))
	if got := folded.Snapshot(); got != want {
		t.Fatalf("DeltaOf round trip: %+v != %+v", got, want)
	}
}

func TestCountersReset(t *testing.T) {
	var c Counters
	for i := 0; i < ShardCount+3; i++ {
		c.AddDelta(i, Delta{Rounds: 1, Messages: 2, Bits: 3, MaxMsgBits: 9, Pushes: 1, Pulls: 1, PullFails: 1})
	}
	c.Reset()
	if got := c.Snapshot(); got != (Snapshot{}) {
		t.Fatalf("Reset left %+v", got)
	}
}
