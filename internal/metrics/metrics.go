// Package metrics accounts for the communication resources the paper bounds:
// number of rounds, number of point-to-point messages, total bits on the
// wire, and the largest single message. Protocol P is claimed to finish in
// O(log n) rounds with messages of O(log² n) bits and O(n log³ n) total
// communication; the engine feeds every delivery through a Counters value so
// experiments can report the measured quantities next to those bounds.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counters accumulates communication costs. All methods are safe for
// concurrent use; the engine may deliver from multiple goroutines.
type Counters struct {
	rounds     atomic.Int64
	messages   atomic.Int64
	bits       atomic.Int64
	maxMsgBits atomic.Int64
	pushes     atomic.Int64
	pulls      atomic.Int64
	pullFails  atomic.Int64 // pulls that received no reply (faulty/silent peer)
}

// AddRound records the completion of one synchronous round.
func (c *Counters) AddRound() { c.rounds.Add(1) }

// AddMessage records one delivered message of the given size in bits.
func (c *Counters) AddMessage(bits int) {
	c.messages.Add(1)
	c.bits.Add(int64(bits))
	for {
		cur := c.maxMsgBits.Load()
		if int64(bits) <= cur || c.maxMsgBits.CompareAndSwap(cur, int64(bits)) {
			return
		}
	}
}

// AddPush records a push operation (in addition to its AddMessage).
func (c *Counters) AddPush() { c.pushes.Add(1) }

// AddPull records a pull operation; answered reports whether the target
// replied.
func (c *Counters) AddPull(answered bool) {
	c.pulls.Add(1)
	if !answered {
		c.pullFails.Add(1)
	}
}

// Rounds returns the number of completed rounds.
func (c *Counters) Rounds() int { return int(c.rounds.Load()) }

// Messages returns the number of delivered messages.
func (c *Counters) Messages() int { return int(c.messages.Load()) }

// Bits returns the total delivered payload size in bits.
func (c *Counters) Bits() int64 { return c.bits.Load() }

// MaxMessageBits returns the size of the largest single delivered message.
func (c *Counters) MaxMessageBits() int { return int(c.maxMsgBits.Load()) }

// Pushes returns the number of push operations performed.
func (c *Counters) Pushes() int { return int(c.pushes.Load()) }

// Pulls returns the number of pull operations performed.
func (c *Counters) Pulls() int { return int(c.pulls.Load()) }

// UnansweredPulls returns the number of pulls that got no reply.
func (c *Counters) UnansweredPulls() int { return int(c.pullFails.Load()) }

// Snapshot is an immutable copy of the counters, convenient for aggregation
// after a trial finishes.
type Snapshot struct {
	Rounds          int
	Messages        int
	Bits            int64
	MaxMessageBits  int
	Pushes          int
	Pulls           int
	UnansweredPulls int
}

// Snapshot captures the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Rounds:          c.Rounds(),
		Messages:        c.Messages(),
		Bits:            c.Bits(),
		MaxMessageBits:  c.MaxMessageBits(),
		Pushes:          c.Pushes(),
		Pulls:           c.Pulls(),
		UnansweredPulls: c.UnansweredPulls(),
	}
}

// String renders a snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("rounds=%d msgs=%d bits=%d maxMsgBits=%d pushes=%d pulls=%d unanswered=%d",
		s.Rounds, s.Messages, s.Bits, s.MaxMessageBits, s.Pushes, s.Pulls, s.UnansweredPulls)
}

// BitsForValues returns the number of bits needed to address one of n
// distinct values, i.e. ⌈log₂ n⌉, with a minimum of 1.
func BitsForValues(n uint64) int {
	if n <= 2 {
		return 1
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
