// Package metrics accounts for the communication resources the paper bounds:
// number of rounds, number of point-to-point messages, total bits on the
// wire, and the largest single message. Protocol P is claimed to finish in
// O(log n) rounds with messages of O(log² n) bits and O(n log³ n) total
// communication; the engine feeds every delivery through a Counters value so
// experiments can report the measured quantities next to those bounds.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// ShardCount is the number of independent counter cells inside a Counters.
// Writers that know their worker index should spread across shards with
// Shard(worker); everything else lands on shard 0.
const ShardCount = 16

// cell is one shard of a Counters, padded out to its own pair of cache lines
// so concurrent writers on different shards never ping-pong a line between
// cores. All fields are atomics, so a cell is race-free even when two writers
// collide on one shard (they only lose the padding benefit, not correctness).
type cell struct {
	rounds     atomic.Int64
	messages   atomic.Int64
	bits       atomic.Int64
	maxMsgBits atomic.Int64
	pushes     atomic.Int64
	pulls      atomic.Int64
	pullFails  atomic.Int64
	_          [128 - 7*8]byte
}

func (c *cell) add(d Delta) {
	if d.Rounds != 0 {
		c.rounds.Add(d.Rounds)
	}
	if d.Messages != 0 {
		c.messages.Add(d.Messages)
	}
	if d.Bits != 0 {
		c.bits.Add(d.Bits)
	}
	if d.Pushes != 0 {
		c.pushes.Add(d.Pushes)
	}
	if d.Pulls != 0 {
		c.pulls.Add(d.Pulls)
	}
	if d.PullFails != 0 {
		c.pullFails.Add(d.PullFails)
	}
	for {
		cur := c.maxMsgBits.Load()
		if d.MaxMsgBits <= cur || c.maxMsgBits.CompareAndSwap(cur, d.MaxMsgBits) {
			return
		}
	}
}

// Counters accumulates communication costs. All methods are safe for
// concurrent use; the engine may deliver from multiple goroutines.
//
// Internally a Counters is sharded into ShardCount padded cells merged at
// Snapshot time. The single-writer convenience methods (AddRound, AddMessage,
// ...) all write shard 0; concurrent writers — e.g. Monte-Carlo trial workers
// folding per-trial results into one aggregate — should each write through
// their own Shard so the hot path never contends on a cache line. Because
// every quantity is a sum (or a max), the merged Snapshot is byte-identical
// regardless of how writes were spread across shards or interleaved in time.
type Counters struct {
	cells [ShardCount]cell
}

// Delta is a plain, non-atomic batch of counter increments. Single-threaded
// hot loops (the executor's delivery phase) tally into a Delta with ordinary
// stores and flush it into a Counters shard once per round, replacing
// per-message atomics with a handful per round.
type Delta struct {
	Rounds     int64
	Messages   int64
	Bits       int64
	MaxMsgBits int64
	Pushes     int64
	Pulls      int64
	PullFails  int64
}

// AddRound records the completion of one synchronous round.
func (d *Delta) AddRound() { d.Rounds++ }

// AddMessage records one delivered message of the given size in bits.
func (d *Delta) AddMessage(bits int) {
	d.Messages++
	d.Bits += int64(bits)
	if int64(bits) > d.MaxMsgBits {
		d.MaxMsgBits = int64(bits)
	}
}

// AddPush records a push operation (in addition to its AddMessage).
func (d *Delta) AddPush() { d.Pushes++ }

// AddPull records a pull operation; answered reports whether the target
// replied.
func (d *Delta) AddPull(answered bool) {
	d.Pulls++
	if !answered {
		d.PullFails++
	}
}

// DeltaOf converts a finished trial's Snapshot into a Delta, so aggregation
// layers can fold whole trials into a shared Counters with one call.
func DeltaOf(s Snapshot) Delta {
	return Delta{
		Rounds:     int64(s.Rounds),
		Messages:   int64(s.Messages),
		Bits:       s.Bits,
		MaxMsgBits: int64(s.MaxMessageBits),
		Pushes:     int64(s.Pushes),
		Pulls:      int64(s.Pulls),
		PullFails:  int64(s.UnansweredPulls),
	}
}

// Shard is a writer handle bound to one cell of a Counters. Handles for
// distinct shard indices write disjoint cache lines, so per-worker handles
// make concurrent accounting contention-free.
type Shard struct{ c *cell }

// Shard returns the writer handle for shard i (taken modulo ShardCount, so
// any worker index is a valid argument).
func (c *Counters) Shard(i int) Shard {
	return Shard{c: &c.cells[uintptr(i)%ShardCount]}
}

// Add folds a Delta into the shard.
func (s Shard) Add(d Delta) { s.c.add(d) }

// AddRound records the completion of one synchronous round.
func (s Shard) AddRound() { s.c.rounds.Add(1) }

// AddRound records the completion of one synchronous round.
func (c *Counters) AddRound() { c.cells[0].rounds.Add(1) }

// AddMessage records one delivered message of the given size in bits.
func (c *Counters) AddMessage(bits int) {
	c.cells[0].add(Delta{Messages: 1, Bits: int64(bits), MaxMsgBits: int64(bits)})
}

// AddPush records a push operation (in addition to its AddMessage).
func (c *Counters) AddPush() { c.cells[0].pushes.Add(1) }

// AddPull records a pull operation; answered reports whether the target
// replied.
func (c *Counters) AddPull(answered bool) {
	c.cells[0].pulls.Add(1)
	if !answered {
		c.cells[0].pullFails.Add(1)
	}
}

// AddDelta folds a batch of increments into shard i.
func (c *Counters) AddDelta(i int, d Delta) { c.Shard(i).Add(d) }

// Reset zeroes every shard, so pooled runs can reuse one Counters. It must
// not race with writers.
func (c *Counters) Reset() {
	for i := range c.cells {
		cl := &c.cells[i]
		cl.rounds.Store(0)
		cl.messages.Store(0)
		cl.bits.Store(0)
		cl.maxMsgBits.Store(0)
		cl.pushes.Store(0)
		cl.pulls.Store(0)
		cl.pullFails.Store(0)
	}
}

func (c *Counters) sum(f func(*cell) int64) int64 {
	var t int64
	for i := range c.cells {
		t += f(&c.cells[i])
	}
	return t
}

// Rounds returns the number of completed rounds.
func (c *Counters) Rounds() int {
	return int(c.sum(func(cl *cell) int64 { return cl.rounds.Load() }))
}

// Messages returns the number of delivered messages.
func (c *Counters) Messages() int {
	return int(c.sum(func(cl *cell) int64 { return cl.messages.Load() }))
}

// Bits returns the total delivered payload size in bits.
func (c *Counters) Bits() int64 {
	return c.sum(func(cl *cell) int64 { return cl.bits.Load() })
}

// MaxMessageBits returns the size of the largest single delivered message.
func (c *Counters) MaxMessageBits() int {
	var m int64
	for i := range c.cells {
		if v := c.cells[i].maxMsgBits.Load(); v > m {
			m = v
		}
	}
	return int(m)
}

// Pushes returns the number of push operations performed.
func (c *Counters) Pushes() int {
	return int(c.sum(func(cl *cell) int64 { return cl.pushes.Load() }))
}

// Pulls returns the number of pull operations performed.
func (c *Counters) Pulls() int {
	return int(c.sum(func(cl *cell) int64 { return cl.pulls.Load() }))
}

// UnansweredPulls returns the number of pulls that got no reply.
func (c *Counters) UnansweredPulls() int {
	return int(c.sum(func(cl *cell) int64 { return cl.pullFails.Load() }))
}

// Snapshot is an immutable copy of the counters, convenient for aggregation
// after a trial finishes.
type Snapshot struct {
	Rounds          int
	Messages        int
	Bits            int64
	MaxMessageBits  int
	Pushes          int
	Pulls           int
	UnansweredPulls int
}

// Snapshot merges every shard into the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Rounds:          c.Rounds(),
		Messages:        c.Messages(),
		Bits:            c.Bits(),
		MaxMessageBits:  c.MaxMessageBits(),
		Pushes:          c.Pushes(),
		Pulls:           c.Pulls(),
		UnansweredPulls: c.UnansweredPulls(),
	}
}

// String renders a snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("rounds=%d msgs=%d bits=%d maxMsgBits=%d pushes=%d pulls=%d unanswered=%d",
		s.Rounds, s.Messages, s.Bits, s.MaxMessageBits, s.Pushes, s.Pulls, s.UnansweredPulls)
}

// BitsForValues returns the number of bits needed to address one of n
// distinct values, i.e. ⌈log₂ n⌉, with a minimum of 1.
func BitsForValues(n uint64) int {
	if n <= 2 {
		return 1
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
