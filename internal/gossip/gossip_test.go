package gossip

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topo"
	"repro/internal/trace"
)

// word is a trivial payload.
type word struct {
	v    int
	bits int
}

func (w word) SizeBits() int { return w.bits }

// scriptAgent plays a fixed list of actions and records everything delivered
// to it.
type scriptAgent struct {
	id       int
	script   []Action
	pushes   []int // senders of received pushes
	pullSeen []int // senders of received pull requests
	replies  []int // values received via pull replies; -1 marks silence
	answer   Payload
	refuse   bool
}

func (a *scriptAgent) Act(round int) Action {
	if round < len(a.script) {
		return a.script[round]
	}
	return NoAction()
}

func (a *scriptAgent) HandlePush(round, from int, p Payload) {
	a.pushes = append(a.pushes, from)
}

func (a *scriptAgent) HandlePull(round, from int, q Payload) Payload {
	a.pullSeen = append(a.pullSeen, from)
	if a.refuse {
		return nil
	}
	if a.answer != nil {
		return a.answer
	}
	return word{v: a.id, bits: 8}
}

func (a *scriptAgent) HandlePullReply(round, from int, p Payload) {
	if p == nil {
		a.replies = append(a.replies, -1)
		return
	}
	a.replies = append(a.replies, p.(word).v)
}

func newScripted(n int) []*scriptAgent {
	agents := make([]*scriptAgent, n)
	for i := range agents {
		agents[i] = &scriptAgent{id: i}
	}
	return agents
}

func asAgents(ss []*scriptAgent) []Agent {
	out := make([]Agent, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

func TestPushDelivery(t *testing.T) {
	ss := newScripted(3)
	ss[0].script = []Action{PushTo(2, word{v: 7, bits: 16})}
	e := NewEngine(Config{Topology: topo.NewComplete(3)}, asAgents(ss))
	e.Step()
	if len(ss[2].pushes) != 1 || ss[2].pushes[0] != 0 {
		t.Fatalf("push not delivered: %v", ss[2].pushes)
	}
	if len(ss[1].pushes) != 0 {
		t.Fatal("push delivered to wrong node")
	}
	s := e.Counters().Snapshot()
	if s.Messages != 1 || s.Bits != 16 || s.Pushes != 1 || s.Rounds != 1 {
		t.Fatalf("counters = %+v", s)
	}
}

func TestPullExchange(t *testing.T) {
	ss := newScripted(2)
	ss[0].script = []Action{PullFrom(1, word{bits: 4})}
	ss[1].answer = word{v: 42, bits: 10}
	e := NewEngine(Config{Topology: topo.NewComplete(2)}, asAgents(ss))
	e.Step()
	if len(ss[1].pullSeen) != 1 || ss[1].pullSeen[0] != 0 {
		t.Fatalf("pull request not seen: %v", ss[1].pullSeen)
	}
	if len(ss[0].replies) != 1 || ss[0].replies[0] != 42 {
		t.Fatalf("pull reply not delivered: %v", ss[0].replies)
	}
	s := e.Counters().Snapshot()
	if s.Messages != 2 || s.Bits != 14 || s.Pulls != 1 || s.UnansweredPulls != 0 {
		t.Fatalf("counters = %+v", s)
	}
}

func TestPullFromFaultyGetsSilence(t *testing.T) {
	ss := newScripted(2)
	ss[0].script = []Action{PullFrom(1, word{bits: 4})}
	e := NewEngine(Config{
		Topology: topo.NewComplete(2),
		Faulty:   []bool{false, true},
	}, []Agent{ss[0], nil})
	e.Step()
	if len(ss[0].replies) != 1 || ss[0].replies[0] != -1 {
		t.Fatalf("expected silence, got %v", ss[0].replies)
	}
	if e.Counters().UnansweredPulls() != 1 {
		t.Fatal("unanswered pull not counted")
	}
}

func TestRefusedPullLooksLikeFault(t *testing.T) {
	ss := newScripted(2)
	ss[0].script = []Action{PullFrom(1, word{bits: 4})}
	ss[1].refuse = true
	e := NewEngine(Config{Topology: topo.NewComplete(2)}, asAgents(ss))
	e.Step()
	if len(ss[0].replies) != 1 || ss[0].replies[0] != -1 {
		t.Fatalf("refusal should look like silence, got %v", ss[0].replies)
	}
	if e.Counters().UnansweredPulls() != 1 {
		t.Fatal("refused pull not counted as unanswered")
	}
}

func TestPushToFaultyIsLostButCounted(t *testing.T) {
	ss := newScripted(2)
	ss[0].script = []Action{PushTo(1, word{bits: 8})}
	e := NewEngine(Config{
		Topology: topo.NewComplete(2),
		Faulty:   []bool{false, true},
	}, []Agent{ss[0], nil})
	e.Step()
	if e.Counters().Messages() != 1 {
		t.Fatal("push to faulty node should still cost a message")
	}
}

func TestFaultyAgentNeverActs(t *testing.T) {
	ss := newScripted(2)
	ss[1].script = []Action{PushTo(0, word{bits: 8}), PushTo(0, word{bits: 8})}
	e := NewEngine(Config{
		Topology: topo.NewComplete(2),
		Faulty:   []bool{false, true},
	}, asAgents(ss))
	e.Step()
	e.Step()
	if len(ss[0].pushes) != 0 {
		t.Fatal("faulty agent sent a message")
	}
}

func TestSelfPushAndPullAreLocalAndFree(t *testing.T) {
	ss := newScripted(1)
	ss[0].script = []Action{PushTo(0, word{v: 1, bits: 8}), PullFrom(0, word{bits: 4})}
	e := NewEngine(Config{Topology: topo.NewComplete(1)}, asAgents(ss))
	e.Step()
	e.Step()
	if len(ss[0].pushes) != 1 || len(ss[0].replies) != 1 || ss[0].replies[0] != 0 {
		t.Fatalf("self ops not delivered: pushes=%v replies=%v", ss[0].pushes, ss[0].replies)
	}
	if e.Counters().Messages() != 0 {
		t.Fatal("self messages were counted as communication")
	}
}

func TestTopologyViolationDropped(t *testing.T) {
	ss := newScripted(6)
	// Node 0 tries to push to node 3, which is not a ring neighbor.
	ss[0].script = []Action{PushTo(3, word{bits: 8})}
	var sink trace.Memory
	e := NewEngine(Config{Topology: topo.NewRing(6), Trace: &sink}, asAgents(ss))
	e.Step()
	if len(ss[3].pushes) != 0 {
		t.Fatal("illegal push delivered")
	}
	if e.DroppedActions() != 1 {
		t.Fatalf("DroppedActions = %d, want 1", e.DroppedActions())
	}
	if sink.CountKind(trace.KindDrop) != 1 {
		t.Fatal("drop not traced")
	}
}

func TestOutOfRangeTargetDropped(t *testing.T) {
	ss := newScripted(2)
	ss[0].script = []Action{PushTo(99, word{bits: 8}), PushTo(-1, word{bits: 8})}
	e := NewEngine(Config{Topology: topo.NewComplete(2)}, asAgents(ss))
	e.Step()
	e.Step()
	if e.DroppedActions() != 2 {
		t.Fatalf("DroppedActions = %d, want 2", e.DroppedActions())
	}
}

func TestMultipleReceiptsInOneRound(t *testing.T) {
	// The GOSSIP model allows a node to receive many messages per round.
	const n = 10
	ss := newScripted(n)
	for i := 1; i < n; i++ {
		ss[i].script = []Action{PushTo(0, word{v: i, bits: 8})}
	}
	e := NewEngine(Config{Topology: topo.NewComplete(n)}, asAgents(ss))
	e.Step()
	if len(ss[0].pushes) != n-1 {
		t.Fatalf("node 0 received %d pushes, want %d", len(ss[0].pushes), n-1)
	}
}

func TestDeliveryOrderIsByNodeID(t *testing.T) {
	const n = 8
	ss := newScripted(n)
	for i := 1; i < n; i++ {
		ss[i].script = []Action{PushTo(0, word{v: i, bits: 8})}
	}
	e := NewEngine(Config{Topology: topo.NewComplete(n), Workers: 4}, asAgents(ss))
	e.Step()
	for i, from := range ss[0].pushes {
		if from != i+1 {
			t.Fatalf("delivery order %v not sorted by node ID", ss[0].pushes)
		}
	}
}

// decidingAgent decides after a fixed round.
type decidingAgent struct {
	scriptAgent
	decideAt int
	round    int
}

func (d *decidingAgent) Act(round int) Action {
	d.round = round
	return NoAction()
}
func (d *decidingAgent) Decided() bool { return d.round >= d.decideAt }
func (d *decidingAgent) Output() int   { return 1 }

func TestRunStopsWhenAllDecided(t *testing.T) {
	agents := []Agent{
		&decidingAgent{decideAt: 3},
		&decidingAgent{decideAt: 5},
	}
	e := NewEngine(Config{Topology: topo.NewComplete(2)}, agents)
	ran := e.Run(100)
	if ran != 6 {
		t.Fatalf("Run executed %d rounds, want 6", ran)
	}
}

func TestRunHonorsMaxRounds(t *testing.T) {
	ss := newScripted(2) // never decide (no Decider interface)
	e := NewEngine(Config{Topology: topo.NewComplete(2)}, asAgents(ss))
	if ran := e.Run(7); ran != 7 {
		t.Fatalf("Run executed %d rounds, want 7", ran)
	}
}

func TestNewEnginePanicsOnMismatch(t *testing.T) {
	cases := []func(){
		func() { NewEngine(Config{Topology: topo.NewComplete(3)}, make([]Agent, 2)) },
		func() {
			NewEngine(Config{Topology: topo.NewComplete(1), Faulty: make([]bool, 2)},
				[]Agent{&scriptAgent{}})
		},
		func() { NewEngine(Config{Topology: topo.NewComplete(1)}, []Agent{nil}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// rumorAgent implements pull-based rumor spreading: informed agents answer
// pulls; everyone pulls a random peer until informed. This is the primitive
// the Find-Min phase builds on, and its O(log n) convergence is the paper's
// reference [19].
type rumorAgent struct {
	id       int
	n        int
	informed bool
	r        *rng.Source
}

func (a *rumorAgent) Act(round int) Action {
	if a.informed {
		return NoAction()
	}
	return PullFrom(a.r.Intn(a.n), word{bits: 1})
}
func (a *rumorAgent) HandlePush(round, from int, p Payload) {}
func (a *rumorAgent) HandlePull(round, from int, q Payload) Payload {
	if a.informed {
		return word{v: 1, bits: 1}
	}
	return word{v: 0, bits: 1}
}
func (a *rumorAgent) HandlePullReply(round, from int, p Payload) {
	if p != nil && p.(word).v == 1 {
		a.informed = true
	}
}
func (a *rumorAgent) Decided() bool { return a.informed }
func (a *rumorAgent) Output() int   { return 1 }

func TestRumorSpreadingLogarithmic(t *testing.T) {
	master := rng.New(1234)
	for _, n := range []int{64, 256, 1024} {
		agents := make([]Agent, n)
		for i := 0; i < n; i++ {
			agents[i] = &rumorAgent{id: i, n: n, informed: i == 0, r: master.Split(uint64(i))}
		}
		e := NewEngine(Config{Topology: topo.NewComplete(n), Workers: 1}, agents)
		ran := e.Run(10 * int(math.Log2(float64(n))))
		for i, a := range agents {
			if !a.(*rumorAgent).informed {
				t.Fatalf("n=%d: node %d not informed after %d rounds", n, i, ran)
			}
		}
		if float64(ran) > 6*math.Log2(float64(n)) {
			t.Errorf("n=%d: rumor took %d rounds, expected O(log n)≈%.0f", n, ran, math.Log2(float64(n)))
		}
	}
}

func TestEngineDeterminismAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) metrics.Snapshot {
		master := rng.New(77)
		const n = 128
		agents := make([]Agent, n)
		for i := 0; i < n; i++ {
			agents[i] = &rumorAgent{id: i, n: n, informed: i == 0, r: master.Split(uint64(i))}
		}
		var c metrics.Counters
		e := NewEngine(Config{Topology: topo.NewComplete(n), Workers: workers, Counters: &c}, agents)
		e.Run(200)
		return c.Snapshot()
	}
	base := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); got != base {
			t.Fatalf("workers=%d produced %+v, workers=1 produced %+v", w, got, base)
		}
	}
}

func TestAsyncEngineBasicDelivery(t *testing.T) {
	ss := newScripted(2)
	// Act receives the global tick number, so fill the script densely.
	for r := 0; r < 50; r++ {
		ss[0].script = append(ss[0].script, PushTo(1, word{v: 5, bits: 8}))
		ss[1].script = append(ss[1].script, PushTo(0, word{v: 6, bits: 8}))
	}
	// Seeded scheduler; over enough ticks both agents act.
	e := NewAsyncEngine(Config{Topology: topo.NewComplete(2)}, asAgents(ss), rng.New(3))
	for i := 0; i < 50; i++ {
		e.Tick()
	}
	if len(ss[0].pushes) == 0 || len(ss[1].pushes) == 0 {
		t.Fatalf("async pushes not delivered: %v %v", ss[0].pushes, ss[1].pushes)
	}
}

func TestAsyncEngineOneAgentPerTick(t *testing.T) {
	const n = 10
	ss := newScripted(n)
	for i := range ss {
		ss[i].script = []Action{PushTo((i+1)%n, word{bits: 8})}
		// Extend the script so every activation pushes.
		for r := 1; r < 100; r++ {
			ss[i].script = append(ss[i].script, PushTo((i+1)%n, word{bits: 8}))
		}
	}
	e := NewAsyncEngine(Config{Topology: topo.NewComplete(n)}, asAgents(ss), rng.New(9))
	const ticks = 40
	for i := 0; i < ticks; i++ {
		e.Tick()
	}
	if got := e.Counters().Messages(); got != ticks {
		t.Fatalf("async engine delivered %d messages over %d ticks, want exactly one per tick", got, ticks)
	}
}

func TestAsyncRumorSpreads(t *testing.T) {
	const n = 128
	master := rng.New(55)
	agents := make([]Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = &rumorAgent{id: i, n: n, informed: i == 0, r: master.Split(uint64(i))}
	}
	e := NewAsyncEngine(Config{Topology: topo.NewComplete(n)}, agents, rng.New(66))
	e.Run(100 * n)
	for i, a := range agents {
		if !a.(*rumorAgent).informed {
			t.Fatalf("async rumor: node %d not informed after %d ticks", i, e.TickCount())
		}
	}
}

func TestAsyncFaultyNeverWakes(t *testing.T) {
	ss := newScripted(3)
	for i := range ss {
		for r := 0; r < 100; r++ {
			ss[i].script = append(ss[i].script, PushTo((i+1)%3, word{bits: 8}))
		}
	}
	e := NewAsyncEngine(Config{
		Topology: topo.NewComplete(3),
		Faulty:   []bool{false, true, false},
	}, asAgents(ss), rng.New(4))
	for i := 0; i < 100; i++ {
		e.Tick()
	}
	if len(ss[2].pushes) != 0 {
		t.Fatal("faulty node 1 pushed to node 2")
	}
}
