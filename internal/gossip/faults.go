package gossip

// FaultSchedule describes which nodes are quiescent at a given point in
// scheduler time: r is the synchronous round number under Engine and the
// tick number under AsyncEngine. A quiescent node does not act, does not
// receive pushes, and does not answer pulls — the paper's permanently-faulty
// behaviour (Section 2), generalized over time so that crash-at-round-r and
// churn fault models are expressible without touching delivery semantics.
//
// Implementations must be pure functions of (r, u): the executor may consult
// them multiple times per round and from the parallel Act phase.
type FaultSchedule interface {
	Silent(r, u int) bool
}

// StaticFaults is the paper's worst-case permanent fault model: a fixed mask
// of nodes quiescent from round 0. A nil or empty mask means fault-free.
type StaticFaults []bool

// Silent reports whether u is masked.
func (f StaticFaults) Silent(r, u int) bool { return len(f) != 0 && f[u] }

// CrashSchedule runs the masked nodes honestly until round Round, then
// silences them permanently — a crash fault with a chosen onset.
type CrashSchedule struct {
	Mask  []bool
	Round int
}

// Silent reports whether u has crashed by round r.
func (c CrashSchedule) Silent(r, u int) bool {
	return r >= c.Round && len(c.Mask) != 0 && c.Mask[u]
}

// ChurnSchedule alternates the masked nodes between Period rounds up and
// Period rounds down, staggered by node ID so the affected cohort never
// disappears all at once. Period must be positive for the mask to have any
// effect.
type ChurnSchedule struct {
	Mask   []bool
	Period int
}

// Silent reports whether u is in a down interval at round r.
func (c ChurnSchedule) Silent(r, u int) bool {
	if c.Period <= 0 || len(c.Mask) == 0 || !c.Mask[u] {
		return false
	}
	return (r/c.Period+u)%2 == 1
}

// UnionFaults combines schedules: a node is silent when any member schedule
// silences it.
type UnionFaults []FaultSchedule

// Silent reports whether any member schedule silences u at round r.
func (s UnionFaults) Silent(r, u int) bool {
	for _, f := range s {
		if f.Silent(r, u) {
			return true
		}
	}
	return false
}
