package gossip

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topo"
	"repro/internal/trace"
)

func TestTraceEventsEmitted(t *testing.T) {
	ss := newScripted(3)
	ss[0].script = []Action{PushTo(1, word{bits: 8})}
	ss[2].script = []Action{PullFrom(1, word{bits: 4})}
	var sink trace.Memory
	e := NewEngine(Config{Topology: topo.NewComplete(3), Trace: &sink}, asAgents(ss))
	e.Step()
	if sink.CountKind(trace.KindPush) != 1 {
		t.Fatalf("push events = %d", sink.CountKind(trace.KindPush))
	}
	if sink.CountKind(trace.KindPull) != 1 {
		t.Fatalf("pull events = %d", sink.CountKind(trace.KindPull))
	}
}

func TestTracePullNoReplyNote(t *testing.T) {
	ss := newScripted(2)
	ss[0].script = []Action{PullFrom(1, word{bits: 4})}
	ss[1].refuse = true
	var sink trace.Memory
	e := NewEngine(Config{Topology: topo.NewComplete(2), Trace: &sink}, asAgents(ss))
	e.Step()
	evs := sink.Events()
	found := false
	for _, ev := range evs {
		if ev.Kind == trace.KindPull && ev.Note == "refused" {
			found = true
		}
	}
	if !found {
		t.Fatalf("refused pull not annotated: %v", evs)
	}
}

func TestExternalCountersShared(t *testing.T) {
	var c metrics.Counters
	ss := newScripted(2)
	ss[0].script = []Action{PushTo(1, word{bits: 8})}
	e := NewEngine(Config{Topology: topo.NewComplete(2), Counters: &c}, asAgents(ss))
	e.Step()
	if c.Messages() != 1 {
		t.Fatal("external counters not used")
	}
	if e.Counters() != &c {
		t.Fatal("Counters() returns a different object")
	}
}

func TestEngineRoundAccessor(t *testing.T) {
	ss := newScripted(2)
	e := NewEngine(Config{Topology: topo.NewComplete(2)}, asAgents(ss))
	if e.Round() != 0 {
		t.Fatal("initial round not 0")
	}
	e.Step()
	e.Step()
	if e.Round() != 2 {
		t.Fatalf("Round = %d", e.Round())
	}
}

func TestRunZeroMaxRounds(t *testing.T) {
	ss := newScripted(2)
	e := NewEngine(Config{Topology: topo.NewComplete(2)}, asAgents(ss))
	if ran := e.Run(0); ran != 0 {
		t.Fatalf("Run(0) executed %d rounds", ran)
	}
}

func TestAsyncEngineRunStopsOnDecided(t *testing.T) {
	agents := []Agent{
		&decidingAgent{decideAt: 0},
		&decidingAgent{decideAt: 0},
	}
	e := NewAsyncEngine(Config{Topology: topo.NewComplete(2)}, agents, rng.New(1))
	// decidingAgent.Decided is based on the last Act round; drive a few
	// ticks so both agents act.
	ran := e.Run(100)
	if ran > 20 {
		t.Fatalf("async Run did not stop early: %d ticks", ran)
	}
}

func TestAsyncEngineDroppedActions(t *testing.T) {
	ss := newScripted(6)
	for r := 0; r < 50; r++ {
		ss[0].script = append(ss[0].script, PushTo(3, word{bits: 8})) // chord on a ring
	}
	e := NewAsyncEngine(Config{Topology: topo.NewRing(6)}, asAgents(ss), rng.New(2))
	for i := 0; i < 60; i++ {
		e.Tick()
	}
	if e.DroppedActions() == 0 {
		t.Fatal("illegal async actions not dropped")
	}
	if len(ss[3].pushes) != 0 {
		t.Fatal("illegal async push delivered")
	}
}

func TestAsyncEnginePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched agents accepted")
		}
	}()
	NewAsyncEngine(Config{Topology: topo.NewComplete(3)}, make([]Agent, 2), rng.New(1))
}

func TestAsyncEngineAllFaulty(t *testing.T) {
	e := NewAsyncEngine(Config{
		Topology: topo.NewComplete(2),
		Faulty:   []bool{true, true},
	}, make([]Agent, 2), rng.New(1))
	e.Tick() // must not panic; ticks still advance
	if e.TickCount() != 1 {
		t.Fatalf("TickCount = %d", e.TickCount())
	}
}

func TestPayloadBitsNil(t *testing.T) {
	if PayloadBits(nil) != 0 {
		t.Fatal("nil payload has size")
	}
}

func TestSelfPullWithRefusingSelf(t *testing.T) {
	// A self-pull on an agent that refuses pulls delivers nil locally.
	ss := newScripted(1)
	ss[0].script = []Action{PullFrom(0, word{bits: 4})}
	ss[0].refuse = true
	e := NewEngine(Config{Topology: topo.NewComplete(1)}, asAgents(ss))
	e.Step()
	if len(ss[0].replies) != 1 || ss[0].replies[0] != -1 {
		t.Fatalf("self-refusal replies = %v", ss[0].replies)
	}
}
