// Package gossip implements the paper's communication model (Section 2): a
// synchronous network of n nodes where, in every round, each node actively
// performs at most one push or one pull operation towards one peer, while
// passively receiving any number of messages. Channels are secure: the engine
// stamps the true sender identity on every delivery, so agents can lie about
// payload content but never about who they are — exactly the paper's
// assumption that peers "cannot cheat each other about their IDs".
//
// Permanent worst-case faults (Section 2) are first-class: a faulty node is
// quiescent from round 0 — it never acts, never receives, and never answers a
// pull. An active agent that deliberately ignores a pull is indistinguishable
// from a faulty one at the puller, which is precisely the "pretend to be
// faulty" deviation the protocol must tolerate.
//
// The package also provides AsyncEngine, a sequential GOSSIP scheduler (one
// random node awake per tick) for the paper's second open problem.
package gossip

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Payload is any message content. SizeBits must return the wire size used
// for communication-complexity accounting; it should reflect the information
// content (e.g. a vote is O(log n) bits, a certificate O(log² n)).
type Payload interface {
	SizeBits() int
}

// ActionKind enumerates what an agent does with its one active operation.
type ActionKind uint8

// The three possible uses of a round's active slot.
const (
	ActNone ActionKind = iota
	ActPush
	ActPull
)

// Action is an agent's single active operation for a round.
type Action struct {
	Kind    ActionKind
	To      int
	Payload Payload // pushed content, or the pull query
}

// NoAction returns the idle action.
func NoAction() Action { return Action{Kind: ActNone} }

// PushTo builds a push action.
func PushTo(to int, p Payload) Action { return Action{Kind: ActPush, To: to, Payload: p} }

// PullFrom builds a pull action with the given query payload.
func PullFrom(to int, query Payload) Action { return Action{Kind: ActPull, To: to, Payload: query} }

// Agent is a protocol participant. The engine calls the methods in a fixed
// per-round order: Act for every agent first, then HandlePush deliveries,
// then HandlePull/HandlePullReply exchanges. Act and the handlers for one
// agent are never invoked concurrently; Act may run in parallel across
// different agents, so it must touch only its own agent's state.
type Agent interface {
	// Act returns the agent's single active operation for the round.
	Act(round int) Action
	// HandlePush receives a payload pushed by from in this round.
	HandlePush(round, from int, p Payload)
	// HandlePull answers a pull request; returning nil refuses to answer
	// (the puller observes the same silence a faulty node would produce).
	HandlePull(round, from int, query Payload) Payload
	// HandlePullReply receives the answer to this agent's pull. reply is nil
	// when the target was faulty, silent, or the pull was dropped.
	HandlePullReply(round, from int, reply Payload)
}

// Decider is implemented by agents that eventually fix an output. The engine
// uses it for early termination and outcome collection.
type Decider interface {
	// Decided reports whether the agent has reached a final state.
	Decided() bool
	// Output returns the final value (protocol-defined) once Decided.
	Output() int
}

// Config configures an Engine.
type Config struct {
	Topology topo.Topology
	// Faulty marks permanently faulty nodes; nil means fault-free. The slice
	// length must equal Topology.N().
	Faulty []bool
	// Counters receives communication accounting; nil allocates a private one.
	Counters *metrics.Counters
	// Trace receives events; nil disables tracing.
	Trace trace.Sink
	// Workers is the parallelism for the Act phase; 0 means GOMAXPROCS,
	// 1 forces sequential.
	Workers int
}

// Engine executes synchronous GOSSIP rounds over a set of agents.
type Engine struct {
	topo     topo.Topology
	agents   []Agent
	faulty   []bool
	counters *metrics.Counters
	sink     trace.Sink
	workers  int
	round    int
	actions  []Action // scratch, reused across rounds
	dropped  int      // actions dropped for violating the topology
}

// NewEngine builds an engine for the given agents. agents[i] is the agent at
// node i; entries for faulty nodes may be nil. It panics on size mismatches
// so misconfigured experiments fail loudly.
func NewEngine(cfg Config, agents []Agent) *Engine {
	n := cfg.Topology.N()
	if len(agents) != n {
		panic(fmt.Sprintf("gossip: %d agents for %d nodes", len(agents), n))
	}
	faulty := cfg.Faulty
	if faulty == nil {
		faulty = make([]bool, n)
	}
	if len(faulty) != n {
		panic(fmt.Sprintf("gossip: faulty mask has %d entries for %d nodes", len(faulty), n))
	}
	for i, a := range agents {
		if a == nil && !faulty[i] {
			panic(fmt.Sprintf("gossip: active node %d has no agent", i))
		}
	}
	counters := cfg.Counters
	if counters == nil {
		counters = &metrics.Counters{}
	}
	return &Engine{
		topo:     cfg.Topology,
		agents:   agents,
		faulty:   faulty,
		counters: counters,
		sink:     cfg.Trace,
		workers:  cfg.Workers,
		actions:  make([]Action, n),
	}
}

// Round returns the number of rounds executed so far.
func (e *Engine) Round() int { return e.round }

// Counters returns the engine's communication counters.
func (e *Engine) Counters() *metrics.Counters { return e.counters }

// DroppedActions returns how many actions were discarded because they
// addressed a non-neighbor or an out-of-range node.
func (e *Engine) DroppedActions() int { return e.dropped }

// Step executes one synchronous round: collect every active agent's action
// (possibly in parallel), deliver pushes in node-ID order, then resolve pulls
// in node-ID order. The fixed orders make executions deterministic for a
// given seed assignment regardless of Workers.
func (e *Engine) Step() {
	n := len(e.agents)
	round := e.round

	// Decision phase: agents choose their one active operation. Safe to
	// parallelize because Act only touches the agent's own state.
	par.ForN(e.workers, n, func(i int) {
		if e.faulty[i] || e.agents[i] == nil {
			e.actions[i] = NoAction()
			return
		}
		e.actions[i] = e.agents[i].Act(round)
	})

	// Validate actions against the topology.
	for u := range e.actions {
		a := &e.actions[u]
		if a.Kind == ActNone {
			continue
		}
		if a.To < 0 || a.To >= n || !e.topo.CanSend(u, a.To) {
			e.dropped++
			e.emit(trace.Event{Round: round, Kind: trace.KindDrop, From: u, To: a.To})
			*a = NoAction()
		}
	}

	// Push delivery phase (node-ID order).
	for u := 0; u < n; u++ {
		a := e.actions[u]
		if a.Kind != ActPush {
			continue
		}
		if u == a.To {
			// Self-push is a local operation: delivered, not counted.
			e.agents[u].HandlePush(round, u, a.Payload)
			continue
		}
		size := payloadBits(a.Payload)
		e.counters.AddPush()
		e.counters.AddMessage(size)
		e.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To})
		if e.faulty[a.To] {
			continue // pushed into the void; cost already incurred
		}
		e.agents[a.To].HandlePush(round, u, a.Payload)
	}

	// Pull phase (node-ID order). A pull is a query message followed by an
	// optional reply message; both are counted when they cross a link.
	for u := 0; u < n; u++ {
		a := e.actions[u]
		if a.Kind != ActPull {
			continue
		}
		if u == a.To {
			// Self-pull resolves locally, free of charge.
			reply := e.agents[u].HandlePull(round, u, a.Payload)
			e.agents[u].HandlePullReply(round, u, reply)
			continue
		}
		e.counters.AddMessage(payloadBits(a.Payload))
		if e.faulty[a.To] {
			e.counters.AddPull(false)
			e.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: a.To, Note: "no-reply"})
			e.agents[u].HandlePullReply(round, a.To, nil)
			continue
		}
		reply := e.agents[a.To].HandlePull(round, u, a.Payload)
		if reply == nil {
			e.counters.AddPull(false)
			e.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: a.To, Note: "refused"})
			e.agents[u].HandlePullReply(round, a.To, nil)
			continue
		}
		e.counters.AddPull(true)
		e.counters.AddMessage(payloadBits(reply))
		e.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: a.To})
		e.agents[u].HandlePullReply(round, a.To, reply)
	}

	e.counters.AddRound()
	e.round++
}

// Run executes rounds until every active Decider agent has decided, or until
// maxRounds have been executed. It returns the number of rounds run.
func (e *Engine) Run(maxRounds int) int {
	start := e.round
	for e.round-start < maxRounds {
		if e.allDecided() {
			break
		}
		e.Step()
	}
	return e.round - start
}

func (e *Engine) allDecided() bool {
	for i, a := range e.agents {
		if e.faulty[i] || a == nil {
			continue
		}
		d, ok := a.(Decider)
		if !ok || !d.Decided() {
			return false
		}
	}
	return true
}

func (e *Engine) emit(ev trace.Event) {
	if e.sink != nil {
		e.sink.Emit(ev)
	}
}

func payloadBits(p Payload) int {
	if p == nil {
		return 0
	}
	return p.SizeBits()
}

// AsyncEngine implements the sequential GOSSIP model from the paper's second
// open problem: at every tick exactly one agent, chosen uniformly at random
// among the active ones, wakes up and performs one push or pull. All other
// semantics (secure channels, quiescent faults, accounting) match Engine.
type AsyncEngine struct {
	topo     topo.Topology
	agents   []Agent
	faulty   []bool
	active   []int // indices of active nodes, for uniform waking
	counters *metrics.Counters
	sink     trace.Sink
	r        *rng.Source
	tick     int
	dropped  int
}

// NewAsyncEngine builds a sequential-GOSSIP engine; sched drives the wake-up
// choices. Panics mirror NewEngine's.
func NewAsyncEngine(cfg Config, agents []Agent, sched *rng.Source) *AsyncEngine {
	n := cfg.Topology.N()
	if len(agents) != n {
		panic(fmt.Sprintf("gossip: %d agents for %d nodes", len(agents), n))
	}
	faulty := cfg.Faulty
	if faulty == nil {
		faulty = make([]bool, n)
	}
	if len(faulty) != n {
		panic(fmt.Sprintf("gossip: faulty mask has %d entries for %d nodes", len(faulty), n))
	}
	var active []int
	for i := 0; i < n; i++ {
		if !faulty[i] {
			if agents[i] == nil {
				panic(fmt.Sprintf("gossip: active node %d has no agent", i))
			}
			active = append(active, i)
		}
	}
	counters := cfg.Counters
	if counters == nil {
		counters = &metrics.Counters{}
	}
	return &AsyncEngine{
		topo:     cfg.Topology,
		agents:   agents,
		faulty:   faulty,
		active:   active,
		counters: counters,
		sink:     cfg.Trace,
		r:        sched,
	}
}

// Tick wakes one uniformly random active agent and executes its action.
// The tick number is passed to the agent as its "round".
func (e *AsyncEngine) Tick() {
	if len(e.active) == 0 {
		e.tick++
		return
	}
	u := e.active[e.r.Intn(len(e.active))]
	a := e.agents[u].Act(e.tick)
	n := len(e.agents)
	switch {
	case a.Kind == ActNone:
	case a.To < 0 || a.To >= n || !e.topo.CanSend(u, a.To):
		e.dropped++
		if e.sink != nil {
			e.sink.Emit(trace.Event{Round: e.tick, Kind: trace.KindDrop, From: u, To: a.To})
		}
	case a.Kind == ActPush:
		if u == a.To {
			e.agents[u].HandlePush(e.tick, u, a.Payload)
			break
		}
		e.counters.AddPush()
		e.counters.AddMessage(payloadBits(a.Payload))
		if !e.faulty[a.To] {
			e.agents[a.To].HandlePush(e.tick, u, a.Payload)
		}
	case a.Kind == ActPull:
		if u == a.To {
			reply := e.agents[u].HandlePull(e.tick, u, a.Payload)
			e.agents[u].HandlePullReply(e.tick, u, reply)
			break
		}
		e.counters.AddMessage(payloadBits(a.Payload))
		if e.faulty[a.To] {
			e.counters.AddPull(false)
			e.agents[u].HandlePullReply(e.tick, a.To, nil)
			break
		}
		reply := e.agents[a.To].HandlePull(e.tick, u, a.Payload)
		if reply == nil {
			e.counters.AddPull(false)
			e.agents[u].HandlePullReply(e.tick, a.To, nil)
			break
		}
		e.counters.AddPull(true)
		e.counters.AddMessage(payloadBits(reply))
		e.agents[u].HandlePullReply(e.tick, a.To, reply)
	}
	e.counters.AddRound()
	e.tick++
}

// Run ticks until all active Decider agents decide or maxTicks elapse,
// returning the number of ticks executed.
func (e *AsyncEngine) Run(maxTicks int) int {
	start := e.tick
	for e.tick-start < maxTicks {
		done := true
		for _, u := range e.active {
			d, ok := e.agents[u].(Decider)
			if !ok || !d.Decided() {
				done = false
				break
			}
		}
		if done {
			break
		}
		e.Tick()
	}
	return e.tick - start
}

// Tick returns the number of executed ticks.
func (e *AsyncEngine) TickCount() int { return e.tick }

// Counters returns the engine's communication counters.
func (e *AsyncEngine) Counters() *metrics.Counters { return e.counters }

// DroppedActions returns how many actions violated the topology.
func (e *AsyncEngine) DroppedActions() int { return e.dropped }
