// Package gossip implements the paper's communication model (Section 2): a
// synchronous network of n nodes where, in every round, each node actively
// performs at most one push or one pull operation towards one peer, while
// passively receiving any number of messages. Channels are secure: the engine
// stamps the true sender identity on every delivery, so agents can lie about
// payload content but never about who they are — exactly the paper's
// assumption that peers "cannot cheat each other about their IDs".
//
// Faults are first-class and pluggable (FaultSchedule): the paper's permanent
// worst-case faults (a node quiescent from round 0 — it never acts, never
// receives, and never answers a pull), crash-at-round-r faults, and periodic
// churn. An active agent that deliberately ignores a pull is indistinguishable
// from a quiescent one at the puller, which is precisely the "pretend to be
// faulty" deviation the protocol must tolerate.
//
// Both execution models are thin schedulers over one shared executor that
// owns the delivery semantics exactly once: Engine runs synchronous rounds
// (every agent acts, then pushes and pulls resolve in node-ID order) and
// AsyncEngine runs the sequential GOSSIP model of the paper's second open
// problem (one random node awake per tick).
package gossip

import (
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Payload is any message content. SizeBits must return the wire size used
// for communication-complexity accounting; it should reflect the information
// content (e.g. a vote is O(log n) bits, a certificate O(log² n)).
type Payload interface {
	SizeBits() int
}

// ActionKind enumerates what an agent does with its one active operation.
type ActionKind uint8

// The three possible uses of a round's active slot.
const (
	ActNone ActionKind = iota
	ActPush
	ActPull
)

// Action is an agent's single active operation for a round.
type Action struct {
	Kind    ActionKind
	To      int
	Payload Payload // pushed content, or the pull query
}

// NoAction returns the idle action.
func NoAction() Action { return Action{Kind: ActNone} }

// PushTo builds a push action.
func PushTo(to int, p Payload) Action { return Action{Kind: ActPush, To: to, Payload: p} }

// PullFrom builds a pull action with the given query payload.
func PullFrom(to int, query Payload) Action { return Action{Kind: ActPull, To: to, Payload: query} }

// Agent is a protocol participant. The engine calls the methods in a fixed
// per-round order: Act for every agent first, then HandlePush deliveries,
// then HandlePull/HandlePullReply exchanges. Act and the handlers for one
// agent are never invoked concurrently; Act may run in parallel across
// different agents, so it must touch only its own agent's state.
type Agent interface {
	// Act returns the agent's single active operation for the round.
	Act(round int) Action
	// HandlePush receives a payload pushed by from in this round.
	HandlePush(round, from int, p Payload)
	// HandlePull answers a pull request; returning nil refuses to answer
	// (the puller observes the same silence a faulty node would produce).
	HandlePull(round, from int, query Payload) Payload
	// HandlePullReply receives the answer to this agent's pull. reply is nil
	// when the target was faulty, silent, or the pull was dropped.
	HandlePullReply(round, from int, reply Payload)
}

// Decider is implemented by agents that eventually fix an output. The engine
// uses it for early termination and outcome collection.
type Decider interface {
	// Decided reports whether the agent has reached a final state.
	Decided() bool
	// Output returns the final value (protocol-defined) once Decided.
	Output() int
}

// Config configures an Engine or AsyncEngine.
type Config struct {
	// Topology is the communication graph. A topo.Dynamic topology (a
	// per-round graph process) must be Started by the caller before the
	// engine is built — its round-0 edge set is part of run setup — and is
	// then advanced by the engine exactly once per round (or tick).
	Topology topo.Topology
	// Faulty marks permanently faulty nodes; nil means fault-free. The slice
	// length must equal Topology.N(). Nodes in this mask may have no agent.
	Faulty []bool
	// Faults optionally adds a dynamic quiescence schedule (crash, churn) on
	// top of Faulty. Nodes it silences must still have agents: they
	// participate whenever the schedule lets them.
	Faults FaultSchedule
	// Counters receives communication accounting; nil allocates a private one.
	Counters *metrics.Counters
	// Trace receives events; nil disables tracing.
	Trace trace.Sink
	// Workers is the parallelism for the Act phase; 0 means GOMAXPROCS,
	// 1 forces sequential.
	Workers int
	// Drop is the probabilistic message-loss rate: every message that crosses
	// a link — a push, a pull query, or a pull reply — is lost independently
	// with this probability. Self-operations are local and never lost. The
	// sender always pays the communication cost: it cannot know the message
	// was lost, and a puller whose query or reply is lost observes the same
	// silence a quiescent target would produce. Must be in [0, 1).
	Drop float64
	// DropRand supplies the loss randomness; required when Drop > 0. Loss is
	// drawn once per non-self message on the single delivery goroutine, so
	// executions stay deterministic for a given source.
	DropRand *rng.Source
	// Mem optionally supplies reusable engine memory, so a trial loop can run
	// many engines without reallocating per-round buffers. See EngineMem.
	Mem *EngineMem
}

// EngineMem holds an Engine plus its per-round scratch (action buffer,
// push/pull delivery order, fault-mask scratch) for reuse across runs. Pass
// the same EngineMem to successive NewEngine calls — never to two live
// engines at once — and the whole engine setup becomes allocation-free. The
// zero value is ready to use.
type EngineMem struct {
	engine Engine
}

// Engine executes synchronous GOSSIP rounds over a set of agents.
type Engine struct {
	x       executor
	workers int
	round   int
	actions []Action // scratch, reused across rounds
	pushes  []int32  // node IDs pushing this round, ascending
	pulls   []int32  // node IDs pulling this round, ascending
}

// NewEngine builds an engine for the given agents. agents[i] is the agent at
// node i; entries for faulty nodes may be nil. It panics on size mismatches
// so misconfigured experiments fail loudly. When cfg.Mem is set the returned
// engine reuses that memory instead of allocating.
func NewEngine(cfg Config, agents []Agent) *Engine {
	e := &Engine{}
	if cfg.Mem != nil {
		e = &cfg.Mem.engine
		e.round = 0
	}
	e.x.init(cfg, agents)
	e.workers = cfg.Workers
	if cap(e.actions) < len(agents) {
		e.actions = make([]Action, len(agents))
	}
	e.actions = e.actions[:len(agents)]
	return e
}

// act records node i's action for the round (NoAction when silenced).
func (e *Engine) act(round, i int) {
	if e.x.silent(round, i) {
		e.actions[i] = NoAction()
		return
	}
	e.actions[i] = e.x.agents[i].Act(round)
}

// Round returns the number of rounds executed so far.
func (e *Engine) Round() int { return e.round }

// Counters returns the engine's communication counters.
func (e *Engine) Counters() *metrics.Counters { return e.x.counters }

// DroppedActions returns how many actions were discarded because they
// addressed a non-neighbor or an out-of-range node.
func (e *Engine) DroppedActions() int { return e.x.dropped }

// Step executes one synchronous round: collect every active agent's action
// (possibly in parallel), deliver pushes in node-ID order, then resolve pulls
// in node-ID order. The fixed orders make executions deterministic for a
// given seed assignment regardless of Workers.
func (e *Engine) Step() {
	n := len(e.x.agents)
	round := e.round

	// A dynamic topology evolves at the round boundary: round 0 runs on the
	// edge set Start materialized, and every later round advances the process
	// exactly once, here, before any agent reads it. Between boundaries the
	// edge set is immutable, so the parallel Act phase below may sample peers
	// from it concurrently.
	if e.x.dyn != nil && round > 0 {
		e.x.dyn.Advance(round)
	}

	// Decision phase: agents choose their one active operation. Safe to
	// parallelize because Act only touches the agent's own state. The serial
	// path is open-coded: a closure capturing the changing round would
	// otherwise be this loop's only allocation.
	if e.workers == 1 || n < 32 {
		for i := 0; i < n; i++ {
			e.act(round, i)
		}
	} else {
		par.ForN(e.workers, n, func(i int) { e.act(round, i) })
	}

	// Validate actions against the topology while collecting this round's
	// delivery order into the reused push/pull index slices (ascending node
	// ID, exactly the order the scans they replace produced).
	e.pushes = e.pushes[:0]
	e.pulls = e.pulls[:0]
	for u := range e.actions {
		e.x.validate(round, u, &e.actions[u])
		switch e.actions[u].Kind {
		case ActPush:
			e.pushes = append(e.pushes, int32(u))
		case ActPull:
			e.pulls = append(e.pulls, int32(u))
		}
	}

	// Push delivery phase, then pull phase, both in node-ID order.
	for _, u := range e.pushes {
		e.x.deliverPush(round, int(u), e.actions[u])
	}
	for _, u := range e.pulls {
		e.x.resolvePull(round, int(u), e.actions[u])
	}

	e.x.endRound()
	e.round++
}

// Run executes rounds until every active Decider agent has decided, or until
// maxRounds have been executed. It returns the number of rounds run.
func (e *Engine) Run(maxRounds int) int {
	start := e.round
	for e.round-start < maxRounds {
		if e.allDecided() {
			break
		}
		e.Step()
	}
	return e.round - start
}

func (e *Engine) allDecided() bool {
	for i, a := range e.x.agents {
		if e.x.silent(e.round, i) || a == nil {
			continue
		}
		d, ok := a.(Decider)
		if !ok || !d.Decided() {
			return false
		}
	}
	return true
}

// AsyncEngine implements the sequential GOSSIP model from the paper's second
// open problem: at every tick exactly one agent, chosen uniformly at random
// among the active ones, wakes up and performs one push or pull. All other
// semantics (secure channels, quiescent faults, accounting) are the shared
// executor's and therefore match Engine exactly.
type AsyncEngine struct {
	x      executor
	active []int // indices of round-0-active nodes, for uniform waking
	r      *rng.Source
	tick   int
}

// NewAsyncEngine builds a sequential-GOSSIP engine; sched drives the wake-up
// choices. Panics mirror NewEngine's.
func NewAsyncEngine(cfg Config, agents []Agent, sched *rng.Source) *AsyncEngine {
	e := &AsyncEngine{r: sched}
	e.x.init(cfg, agents)
	for i := range agents {
		if !e.x.initial[i] {
			e.active = append(e.active, i)
		}
	}
	return e
}

// Tick wakes one uniformly random active agent and executes its action
// through the shared executor. The tick number is passed to the agent as its
// "round". A woken agent that the fault schedule currently silences sleeps
// through its wake-up: the tick elapses with no action.
func (e *AsyncEngine) Tick() {
	// A dynamic topology evolves once per tick (the sequential model's round),
	// whether or not anyone wakes: the graph process is time's, not the
	// agents'.
	if e.x.dyn != nil && e.tick > 0 {
		e.x.dyn.Advance(e.tick)
	}
	if len(e.active) == 0 {
		e.tick++
		return
	}
	u := e.active[e.r.Intn(len(e.active))]
	if !e.x.silent(e.tick, u) {
		a := e.x.agents[u].Act(e.tick)
		e.x.validate(e.tick, u, &a)
		e.x.exec(e.tick, u, a)
	}
	e.x.endRound()
	e.tick++
}

// Run ticks until all active Decider agents decide or maxTicks elapse,
// returning the number of ticks executed.
func (e *AsyncEngine) Run(maxTicks int) int {
	start := e.tick
	for e.tick-start < maxTicks {
		done := true
		for _, u := range e.active {
			d, ok := e.x.agents[u].(Decider)
			if !ok || !d.Decided() {
				done = false
				break
			}
		}
		if done {
			break
		}
		e.Tick()
	}
	return e.tick - start
}

// TickCount returns the number of executed ticks.
func (e *AsyncEngine) TickCount() int { return e.tick }

// Counters returns the engine's communication counters.
func (e *AsyncEngine) Counters() *metrics.Counters { return e.x.counters }

// DroppedActions returns how many actions violated the topology.
func (e *AsyncEngine) DroppedActions() int { return e.x.dropped }
