package gossip

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topo"
	"repro/internal/trace"
)

// executor is the single implementation of GOSSIP delivery semantics —
// topology validation, push/pull delivery, self-operation short-circuiting,
// fault silence, trace emission, and communication accounting — shared by
// the synchronous Engine and the sequential AsyncEngine. The schedulers
// decide when each agent acts; the executor decides what happens to the
// chosen action. Keeping these semantics in exactly one place is what makes
// the two execution models comparable experiment-for-experiment.
//
// Accounting goes through a plain (non-atomic) Delta tally: delivery always
// runs on one goroutine, so per-message atomics would be pure overhead. The
// tally is flushed into the shared Counters once per round/tick (endRound),
// keeping Counters reads exact at round granularity.
type executor struct {
	topo     topo.Topology
	dyn      topo.Dynamic // non-nil iff topo is a per-round graph process
	agents   []Agent
	initial  []bool        // round-0 fault mask (governs agent existence)
	faults   FaultSchedule // quiescence over time; never nil
	counters *metrics.Counters
	tally    metrics.Delta
	sink     trace.Sink
	dropped  int
	drop     float64     // per-message loss probability; 0 disables
	dropRand *rng.Source // loss randomness; non-nil iff drop > 0

	noFaults StaticFaults // scratch all-false mask, reused across runs
	union    UnionFaults  // scratch for combining static + dynamic faults
}

// init validates the configuration shared by both engines and panics on size
// mismatches so misconfigured experiments fail loudly. It fully reinitializes
// x, so a pooled executor can be reused across runs; slice capacity is the
// only state that survives.
func (x *executor) init(cfg Config, agents []Agent) {
	n := cfg.Topology.N()
	if len(agents) != n {
		panic(fmt.Sprintf("gossip: %d agents for %d nodes", len(agents), n))
	}
	faulty := cfg.Faulty
	if faulty == nil {
		x.noFaults = resizeBools(x.noFaults, n)
		faulty = x.noFaults
	}
	if len(faulty) != n {
		panic(fmt.Sprintf("gossip: faulty mask has %d entries for %d nodes", len(faulty), n))
	}
	for i, a := range agents {
		if a == nil && !faulty[i] {
			panic(fmt.Sprintf("gossip: active node %d has no agent", i))
		}
	}
	counters := cfg.Counters
	if counters == nil {
		counters = &metrics.Counters{}
	}
	var faults FaultSchedule = StaticFaults(faulty)
	if cfg.Faults != nil {
		x.union = append(x.union[:0], faults, cfg.Faults)
		faults = x.union
	}
	if cfg.Drop < 0 || cfg.Drop >= 1 {
		panic(fmt.Sprintf("gossip: drop probability %v outside [0, 1)", cfg.Drop))
	}
	if cfg.Drop > 0 && cfg.DropRand == nil {
		panic("gossip: Drop > 0 requires a DropRand source")
	}
	x.topo = cfg.Topology
	x.dyn, _ = cfg.Topology.(topo.Dynamic)
	x.agents = agents
	x.initial = faulty
	x.faults = faults
	x.counters = counters
	x.tally = metrics.Delta{}
	x.sink = cfg.Trace
	x.dropped = 0
	x.drop = cfg.Drop
	x.dropRand = cfg.DropRand
}

// lost draws one link crossing against the probabilistic message-loss model.
// It must be called exactly once per non-self message so that, for a fixed
// DropRand stream, executions remain deterministic. Loss is drawn on the
// single delivery goroutine only.
func (x *executor) lost() bool {
	return x.drop > 0 && x.dropRand.Bool(x.drop)
}

// resizeBools returns a false-filled slice of length n, reusing capacity.
func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// silent reports whether node u is quiescent at time r: silenced by the
// fault schedule, or a faulty node that never had an agent.
func (x *executor) silent(r, u int) bool {
	return x.agents[u] == nil || x.faults.Silent(r, u)
}

// validate enforces the topology on one action: an action addressed to an
// out-of-range node or a non-neighbor is dropped, traced, and replaced with
// NoAction.
func (x *executor) validate(round, u int, a *Action) {
	if a.Kind == ActNone {
		return
	}
	if a.To < 0 || a.To >= len(x.agents) || !x.topo.CanSend(u, a.To) {
		x.dropped++
		x.emit(trace.Event{Round: round, Kind: trace.KindDrop, From: u, To: a.To})
		*a = NoAction()
	}
}

// exec performs one validated action on behalf of node u.
func (x *executor) exec(round, u int, a Action) {
	switch a.Kind {
	case ActPush:
		x.deliverPush(round, u, a)
	case ActPull:
		x.resolvePull(round, u, a)
	}
}

// endRound accounts one completed round/tick and flushes the delivery tally
// into the shared counters (shard 0: delivery is single-goroutine).
func (x *executor) endRound() {
	x.tally.AddRound()
	x.counters.AddDelta(0, x.tally)
	x.tally = metrics.Delta{}
}

// deliverPush delivers one push. A push to a quiescent target is lost but
// its cost is still incurred — the sender cannot know.
func (x *executor) deliverPush(round, u int, a Action) {
	if u == a.To {
		// Self-push is a local operation: delivered, not counted.
		x.agents[u].HandlePush(round, u, a.Payload)
		return
	}
	x.tally.AddPush()
	x.tally.AddMessage(PayloadBits(a.Payload))
	if x.lost() {
		x.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To, Note: "lost"})
		return // lost on the link; cost already incurred
	}
	x.emit(trace.Event{Round: round, Kind: trace.KindPush, From: u, To: a.To})
	if x.silent(round, a.To) {
		return // pushed into the void; cost already incurred
	}
	x.agents[a.To].HandlePush(round, u, a.Payload)
}

// resolvePull resolves one pull: a query message followed by an optional
// reply message, both counted when they cross a link. A quiescent target and
// an agent that refuses to answer are indistinguishable at the puller.
func (x *executor) resolvePull(round, u int, a Action) {
	if u == a.To {
		// Self-pull resolves locally, free of charge.
		reply := x.agents[u].HandlePull(round, u, a.Payload)
		x.agents[u].HandlePullReply(round, u, reply)
		return
	}
	x.tally.AddMessage(PayloadBits(a.Payload))
	if x.lost() {
		x.tally.AddPull(false)
		x.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: a.To, Note: "query-lost"})
		x.agents[u].HandlePullReply(round, a.To, nil)
		return
	}
	if x.silent(round, a.To) {
		x.tally.AddPull(false)
		x.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: a.To, Note: "no-reply"})
		x.agents[u].HandlePullReply(round, a.To, nil)
		return
	}
	reply := x.agents[a.To].HandlePull(round, u, a.Payload)
	if reply == nil {
		x.tally.AddPull(false)
		x.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: a.To, Note: "refused"})
		x.agents[u].HandlePullReply(round, a.To, nil)
		return
	}
	x.tally.AddMessage(PayloadBits(reply))
	if x.lost() {
		x.tally.AddPull(false)
		x.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: a.To, Note: "reply-lost"})
		x.agents[u].HandlePullReply(round, a.To, nil)
		return
	}
	x.tally.AddPull(true)
	x.emit(trace.Event{Round: round, Kind: trace.KindPull, From: u, To: a.To})
	x.agents[u].HandlePullReply(round, a.To, reply)
}

func (x *executor) emit(ev trace.Event) {
	if x.sink != nil {
		x.sink.Emit(ev)
	}
}

// PayloadBits returns the accounted wire size of a payload: SizeBits for a
// real payload, 0 for nil. Every delivery layer (the executor here, the
// goroutine-per-node runtime) must account message sizes through this one
// helper so communication metrics agree across schedulers.
func PayloadBits(p Payload) int {
	if p == nil {
		return 0
	}
	return p.SizeBits()
}
