// Package par provides a minimal deterministic parallel-for used to spread
// independent work (agent decision steps, Monte-Carlo trials) across CPUs.
// Work is partitioned into contiguous index blocks so the mapping from index
// to goroutine is deterministic, and the function receives the index only —
// callers must ensure fn(i) touches only data owned by index i.
package par

import (
	"runtime"
	"sync"
)

// ForN invokes fn(i) for every i in [0, n), using up to workers goroutines.
// workers <= 1 (or small n) runs inline. ForN returns when all calls have
// completed. fn must not panic; a panic in a worker propagates to the caller
// of ForN via the usual goroutine crash semantics only after corrupting the
// wait, so callers should treat fn panics as fatal bugs.
func ForN(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < 32 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	block := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * block
		if lo >= n {
			break
		}
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Chunks partitions [0, n) into up to workers contiguous blocks and invokes
// fn(w, lo, hi) with the block's worker index, one goroutine per block (the
// caller's goroutine when a single block suffices). Unlike ForN it has no
// small-n sequential cutoff: even a handful of expensive items (Monte-Carlo
// trials) spread across workers. The worker index lets the callee pick
// per-worker resources — a pooled arena, a counter shard — without locking.
// The partition is deterministic: block w always covers the same index range
// for a given (workers, n).
func Chunks(workers, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	block := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * block
		if lo >= n {
			break
		}
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ForNChunked is like ForN but hands each worker whole (lo, hi) ranges,
// letting the callee amortize per-chunk setup (e.g. a scratch buffer).
func ForNChunked(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	block := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * block
		if lo >= n {
			break
		}
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
