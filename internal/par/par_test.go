package par

import (
	"sync/atomic"
	"testing"
)

func TestForNCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 31, 32, 33, 1000} {
			hits := make([]atomic.Int32, n)
			ForN(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForNNegativeN(t *testing.T) {
	called := false
	ForN(4, -3, func(int) { called = true })
	if called {
		t.Fatal("fn called for negative n")
	}
}

func TestForNChunkedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		for _, n := range []int{0, 1, 17, 256} {
			hits := make([]atomic.Int32, n)
			ForNChunked(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					return
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForNParallelismActuallyRuns(t *testing.T) {
	var total atomic.Int64
	ForN(8, 100000, func(i int) { total.Add(int64(i)) })
	want := int64(100000) * 99999 / 2
	if total.Load() != want {
		t.Fatalf("sum = %d, want %d", total.Load(), want)
	}
}
