// Package theory computes the paper's analytical predictions so experiments
// can print them next to measured values: the round schedule of Theorem 4,
// the message-size bound, and the concrete bad-event probability bounds
// behind Lemma 3's "good execution" argument (Definition 2), assembled from
// the same Chernoff and union-bound steps the proof sketches use.
//
// These are upper bounds on failure probabilities, not exact values; the
// experiments check that measured failure rates sit below them.
package theory

import (
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Rounds returns the protocol's deterministic round count, 4q + 1.
func Rounds(p core.Params) int { return p.TotalRounds() }

// ExpectedVotes returns the expected number of votes an active agent
// receives in the Voting phase: active·q/n (each of the active agents casts
// q votes to uniform targets).
func ExpectedVotes(p core.Params, active int) float64 {
	return float64(active) * float64(p.Q) / float64(p.N)
}

// UncoveredProb bounds the probability that some agent receives no
// commitment pull from any honest agent (the bad event against Definition 5
// property 1): n·(1−1/n)^(honest·q).
func UncoveredProb(p core.Params, honest int) float64 {
	perAgent := math.Exp(float64(honest*p.Q) * math.Log1p(-1.0/float64(p.N)))
	return clampProb(float64(p.N) * perAgent)
}

// VoteBoundProb bounds the probability that some active agent's vote count
// leaves [μ/4, 4μ] (the concrete (β₁, β₂) band used by the good-execution
// checker), via the package's Chernoff helpers and a union bound.
func VoteBoundProb(p core.Params, active int) float64 {
	mu := ExpectedVotes(p, active)
	if mu <= 0 {
		return 1
	}
	// Upper tail: Pr[X > 4μ] = Pr[X > (1+3)μ] ≤ exp(−9μ/4) (Lemma 8.1, δ=3).
	upper := ChernoffUpper(3, mu)
	// Lower tail: Pr[X < μ/4] ≤ exp(−(3/4)²μ/2).
	lower := ChernoffLower(0.75, mu)
	return clampProb(float64(active) * (upper + lower))
}

// CollisionProb bounds the probability that two agents share a k value:
// C(active, 2)/m (birthday union bound over uniform values in [m]).
func CollisionProb(p core.Params, active int) float64 {
	pairs := float64(active) * float64(active-1) / 2
	return clampProb(pairs / float64(p.M))
}

// BroadcastIncompleteProb bounds the probability that pull-based broadcast
// over the active agents has not completed after q rounds. After the rumor
// reaches half the agents, each remaining agent independently misses it with
// probability at most (1−a/(2n))^r over r rounds; the growth phase consumes
// about log₂ n rounds. The bound is loose but captures the γ dependence.
func BroadcastIncompleteProb(p core.Params, active int) float64 {
	growth := math.Log2(float64(p.N))
	rem := float64(p.Q) - growth
	if rem <= 0 {
		return 1
	}
	missProb := math.Exp(rem * math.Log1p(-float64(active)/(2*float64(p.N))))
	return clampProb(float64(active) * missProb)
}

// GoodExecutionBound returns a lower bound on Pr[G] (Lemma 3): one minus the
// union of the bad-event bounds above.
func GoodExecutionBound(p core.Params, active int) float64 {
	bad := UncoveredProb(p, active) +
		VoteBoundProb(p, active) +
		CollisionProb(p, active) +
		BroadcastIncompleteProb(p, active)
	if bad > 1 {
		return 0
	}
	return 1 - bad
}

// MaxMessageBits bounds the largest message: a certificate holding up to 4μ
// votes (the good-execution upper band) of (idBits + valueBits) each, plus
// header, k, color and owner fields.
func MaxMessageBits(p core.Params, active int) int {
	mu := ExpectedVotes(p, active)
	votes := int(math.Ceil(4 * mu))
	idBits := metrics.BitsForValues(uint64(p.N))
	valBits := metrics.BitsForValues(p.M)
	colorBits := metrics.BitsForValues(uint64(p.NumColors))
	return 2 + valBits + votes*(idBits+valBits) + colorBits + idBits
}

// MessageUpperBound bounds the total number of point-to-point messages: each
// of the active agents performs one operation per round; a pull costs a
// query and (at most) a reply, so at most 2·active messages per round over
// 4q+1 rounds.
func MessageUpperBound(p core.Params, active int) int {
	return (4*p.Q + 1) * 2 * active
}

// ChernoffUpper is Lemma 8's upper-tail bound for X = Σ Bernoulli with mean
// mu: Pr[X > (1+δ)μ] ≤ exp(−δ²μ/4) for δ ≤ 4, exp(−δμ) for δ > 4.
func ChernoffUpper(delta, mu float64) float64 {
	if delta <= 0 || mu <= 0 {
		return 1
	}
	if delta <= 4 {
		return clampProb(math.Exp(-delta * delta * mu / 4))
	}
	return clampProb(math.Exp(-delta * mu))
}

// ChernoffLower is the standard lower-tail bound Pr[X < (1−δ)μ] ≤
// exp(−δ²μ/2) for 0 < δ < 1.
func ChernoffLower(delta, mu float64) float64 {
	if delta <= 0 || delta >= 1 || mu <= 0 {
		return 1
	}
	return clampProb(math.Exp(-delta * delta * mu / 2))
}

func clampProb(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
