package theory

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestRoundsSchedule(t *testing.T) {
	p := core.MustParams(1024, 2, 3)
	if Rounds(p) != 4*p.Q+1 {
		t.Fatalf("Rounds = %d", Rounds(p))
	}
}

func TestExpectedVotes(t *testing.T) {
	p := core.MustParams(100, 2, 1)
	if got := ExpectedVotes(p, 100); got != float64(p.Q) {
		t.Fatalf("fault-free expected votes = %v, want q = %d", got, p.Q)
	}
	if got := ExpectedVotes(p, 50); got != float64(p.Q)/2 {
		t.Fatalf("half-active expected votes = %v", got)
	}
}

func TestProbabilitiesAreProbabilities(t *testing.T) {
	f := func(nRaw, activeRaw uint16, gammaRaw uint8) bool {
		n := int(nRaw)%2000 + 4
		active := int(activeRaw)%n + 1
		gamma := float64(gammaRaw%8) + 0.5
		p := core.MustParams(n, 2, gamma)
		for _, v := range []float64{
			UncoveredProb(p, active),
			VoteBoundProb(p, active),
			CollisionProb(p, active),
			BroadcastIncompleteProb(p, active),
			GoodExecutionBound(p, active),
		} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsImproveWithGamma(t *testing.T) {
	// All bad-event bounds must shrink (weakly) as γ grows.
	n, active := 512, 512
	prevBad := math.Inf(1)
	for _, gamma := range []float64{1, 2, 3, 5} {
		p := core.MustParams(n, 2, gamma)
		bad := UncoveredProb(p, active) + VoteBoundProb(p, active) + BroadcastIncompleteProb(p, active)
		if bad > prevBad+1e-12 {
			t.Fatalf("γ=%v made bounds worse: %v > %v", gamma, bad, prevBad)
		}
		prevBad = bad
	}
}

func TestGoodExecutionBoundReasonable(t *testing.T) {
	// At γ = 3 fault-free n = 512, the analytical bound should already be
	// non-trivial, and the measured success rate (≈ 1 per T5) must exceed it.
	p := core.MustParams(512, 2, 3)
	if b := GoodExecutionBound(p, 512); b < 0.5 {
		t.Fatalf("GoodExecutionBound = %v, expected a useful bound", b)
	}
	// At γ = 0.5 the bound collapses — consistent with observed failures.
	p = core.MustParams(512, 2, 0.5)
	if b := GoodExecutionBound(p, 512); b > 0.99 {
		t.Fatalf("tiny-γ bound = %v, expected collapse", b)
	}
}

func TestChernoffShapes(t *testing.T) {
	if ChernoffUpper(1, 100) >= ChernoffUpper(1, 10) {
		t.Fatal("upper bound not decreasing in μ")
	}
	if ChernoffUpper(5, 10) != clampProb(math.Exp(-50)) {
		t.Fatal("large-δ branch wrong")
	}
	if ChernoffLower(0.5, 100) >= ChernoffLower(0.5, 10) {
		t.Fatal("lower bound not decreasing in μ")
	}
	for _, bad := range []float64{ChernoffUpper(-1, 10), ChernoffLower(0, 10), ChernoffLower(1.5, 10), ChernoffUpper(1, 0)} {
		if bad != 1 {
			t.Fatal("degenerate inputs must return the trivial bound 1")
		}
	}
}

func TestMaxMessageBitsPolylog(t *testing.T) {
	for _, n := range []int{256, 4096, 65536} {
		p := core.MustParams(n, 2, 2)
		logn := math.Log2(float64(n))
		if got := float64(MaxMessageBits(p, n)); got > 40*logn*logn {
			t.Errorf("n=%d: bound %v > 40 log²n", n, got)
		}
	}
}

func TestMessageUpperBoundSubquadratic(t *testing.T) {
	p := core.MustParams(4096, 2, 3)
	if MessageUpperBound(p, 4096) >= 4096*4096/4 {
		t.Fatal("message bound not o(n²) at n=4096")
	}
}

func TestMeasuredWithinTheoryBounds(t *testing.T) {
	// Cross-check against a real execution: measured max message size and
	// total messages must respect the analytical bounds.
	const n = 256
	p := core.MustParams(n, 2, 3)
	res, err := core.Run(core.RunConfig{
		Params: p, Colors: core.UniformColors(n, 2), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MaxMessageBits > MaxMessageBits(p, n) {
		t.Errorf("measured max message %d bits > bound %d", res.Metrics.MaxMessageBits, MaxMessageBits(p, n))
	}
	if res.Metrics.Messages > MessageUpperBound(p, n) {
		t.Errorf("measured messages %d > bound %d", res.Metrics.Messages, MessageUpperBound(p, n))
	}
	if res.Rounds > Rounds(p)+1 {
		t.Errorf("measured rounds %d > schedule %d", res.Rounds, Rounds(p))
	}
}
