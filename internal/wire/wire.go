// Package wire provides a compact binary encoding for every Protocol P
// payload. The simulator exchanges payloads as Go values and accounts sizes
// via SizeBits; this package grounds those claims: a payload's encoded
// length matches its declared wire size up to per-field rounding, so the
// O(log² n) message bound is a property of real bytes, not of an estimate.
//
// The format is deliberately simple and self-contained (no reflection, no
// external schema): a one-byte tag followed by unsigned varints
// (encoding/binary's uvarint) for every field. Field widths therefore track
// log₂ of the value magnitudes — exactly the quantity the paper's analysis
// counts.
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// Payload tags.
const (
	tagIntentQuery byte = 1
	tagCertQuery   byte = 2
	tagVote        byte = 3
	tagIntentions  byte = 4
	tagCertificate byte = 5
)

// maxListLen bounds decoded list lengths, rejecting absurd inputs before
// allocation (a remote peer controls these bytes).
const maxListLen = 1 << 20

// Encode serializes a protocol payload.
func Encode(p any) ([]byte, error) {
	switch m := p.(type) {
	case core.IntentQuery:
		return []byte{tagIntentQuery}, nil
	case core.CertQuery:
		return []byte{tagCertQuery}, nil
	case core.Vote:
		buf := make([]byte, 1, 1+binary.MaxVarintLen64)
		buf[0] = tagVote
		return binary.AppendUvarint(buf, m.Value), nil
	case *core.Vote:
		if m == nil {
			return nil, fmt.Errorf("wire: nil vote")
		}
		return Encode(*m)
	case core.Intentions:
		buf := make([]byte, 1, 1+2+len(m.Votes)*2*binary.MaxVarintLen64)
		buf[0] = tagIntentions
		buf = binary.AppendUvarint(buf, uint64(len(m.Votes)))
		for _, in := range m.Votes {
			buf = binary.AppendUvarint(buf, in.H)
			buf = binary.AppendUvarint(buf, uint64(in.Z))
		}
		return buf, nil
	case *core.Certificate:
		if m == nil {
			return nil, fmt.Errorf("wire: nil certificate")
		}
		buf := make([]byte, 1, 16+len(m.W)*2*binary.MaxVarintLen64)
		buf[0] = tagCertificate
		buf = binary.AppendUvarint(buf, m.K)
		buf = binary.AppendUvarint(buf, uint64(len(m.W)))
		for _, e := range m.W {
			buf = binary.AppendUvarint(buf, uint64(e.Voter))
			buf = binary.AppendUvarint(buf, e.Value)
		}
		buf = binary.AppendUvarint(buf, uint64(int64(m.Color)+1)) // ⊥ = −1 → 0
		buf = binary.AppendUvarint(buf, uint64(m.Owner))
		return buf, nil
	default:
		return nil, fmt.Errorf("wire: unsupported payload %T", p)
	}
}

// Decode parses a payload previously produced by Encode. The params value
// supplies the context needed to rebuild payloads (the simulator embeds it in
// every payload for size accounting).
func Decode(data []byte, p core.Params) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("wire: empty payload")
	}
	r := reader{buf: data[1:]}
	switch data[0] {
	case tagIntentQuery:
		return core.IntentQuery{P: p}, r.finish()
	case tagCertQuery:
		return core.CertQuery{P: p}, r.finish()
	case tagVote:
		v := r.uvarint()
		if err := r.finish(); err != nil {
			return nil, err
		}
		return core.Vote{P: p, Value: v}, nil
	case tagIntentions:
		n := r.uvarint()
		if n > maxListLen {
			return nil, fmt.Errorf("wire: intention list of %d entries", n)
		}
		votes := make([]core.Intent, n)
		for i := range votes {
			votes[i].H = r.uvarint()
			votes[i].Z = int32(r.uvarint())
		}
		if err := r.finish(); err != nil {
			return nil, err
		}
		return core.Intentions{P: p, Votes: votes}, nil
	case tagCertificate:
		k := r.uvarint()
		n := r.uvarint()
		if n > maxListLen {
			return nil, fmt.Errorf("wire: vote list of %d entries", n)
		}
		w := make([]core.WEntry, n)
		for i := range w {
			w[i].Voter = int32(r.uvarint())
			w[i].Value = r.uvarint()
		}
		color := core.Color(int64(r.uvarint()) - 1)
		owner := int32(r.uvarint())
		if err := r.finish(); err != nil {
			return nil, err
		}
		return &core.Certificate{P: p, K: k, W: w, Color: color, Owner: owner}, nil
	default:
		return nil, fmt.Errorf("wire: unknown tag %d", data[0])
	}
}

// reader is a failure-latching uvarint cursor.
type reader struct {
	buf []byte
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("wire: truncated varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf))
	}
	return nil
}

// EncodedBits returns the exact encoded size of a payload in bits, or -1 if
// it cannot be encoded. Experiments use it to cross-check SizeBits.
func EncodedBits(p any) int {
	b, err := Encode(p)
	if err != nil {
		return -1
	}
	return 8 * len(b)
}
