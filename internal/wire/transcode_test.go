package wire

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topo"
)

// TestFullProtocolOverWire runs Protocol P end to end with every payload
// round-tripping through the binary encoding, and checks the execution is
// indistinguishable from a native one.
func TestFullProtocolOverWire(t *testing.T) {
	const n = 48
	p := core.MustParams(n, 2, core.DefaultGamma)
	colors := core.UniformColors(n, 2)
	net := topo.NewComplete(n)

	run := func(transcode bool) (core.Outcome, metrics.Snapshot) {
		master := rng.New(2024)
		agents := make([]gossip.Agent, n)
		inner := make([]*core.Agent, n)
		trans := make([]*Transcoder, 0, n)
		for i := 0; i < n; i++ {
			a := core.NewAgent(i, p, colors[i], net, master.Split(uint64(i)))
			inner[i] = a
			if transcode {
				tr := NewTranscoder(a, p)
				trans = append(trans, tr)
				agents[i] = tr
			} else {
				agents[i] = a
			}
		}
		var c metrics.Counters
		eng := gossip.NewEngine(gossip.Config{Topology: net, Counters: &c, Workers: 1}, agents)
		eng.Run(p.TotalRounds() + 1)
		for _, tr := range trans {
			for _, err := range tr.Errors {
				t.Fatalf("transcoding error: %v", err)
			}
		}
		parts := make([]core.Participant, n)
		for i := range inner {
			parts[i] = inner[i]
		}
		return core.CollectOutcome(parts, nil), c.Snapshot()
	}

	native, nm := run(false)
	wired, wm := run(true)
	if native.Failed || wired.Failed {
		t.Fatalf("runs failed: native %v, wired %v", native, wired)
	}
	if native.Color != wired.Color {
		t.Fatalf("outcome changed over the wire: %v vs %v", native, wired)
	}
	if nm.Messages != wm.Messages || nm.Rounds != wm.Rounds {
		t.Fatalf("communication changed over the wire: %+v vs %+v", nm, wm)
	}
}

func TestTranscoderDeciderPassthrough(t *testing.T) {
	p := core.MustParams(8, 2, 1)
	a := core.NewAgent(0, p, 0, topo.NewComplete(8), rng.New(1))
	tr := NewTranscoder(a, p)
	if tr.Decided() {
		t.Fatal("decided before run")
	}
	if tr.Output() != int(core.ColorBot) {
		t.Fatalf("Output = %d", tr.Output())
	}
}
