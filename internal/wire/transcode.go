package wire

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gossip"
)

// Transcoder wraps a gossip.Agent so that every payload it sends or receives
// makes a round trip through the binary encoding. Running a full protocol
// execution over transcoded agents proves the wire format carries everything
// the protocol needs — the strongest possible serialization test.
type Transcoder struct {
	Inner  gossip.Agent
	Params core.Params
	// Errors collects transcoding failures (nil on a clean run).
	Errors []error
}

// NewTranscoder wraps inner.
func NewTranscoder(inner gossip.Agent, p core.Params) *Transcoder {
	return &Transcoder{Inner: inner, Params: p}
}

func (t *Transcoder) transcode(p gossip.Payload) gossip.Payload {
	if p == nil {
		return nil
	}
	data, err := Encode(p)
	if err != nil {
		t.Errors = append(t.Errors, fmt.Errorf("encode %T: %w", p, err))
		return p
	}
	back, err := Decode(data, t.Params)
	if err != nil {
		t.Errors = append(t.Errors, fmt.Errorf("decode %T: %w", p, err))
		return p
	}
	pl, ok := back.(gossip.Payload)
	if !ok {
		t.Errors = append(t.Errors, fmt.Errorf("decoded %T is not a payload", back))
		return p
	}
	return pl
}

// Act transcodes the outgoing payload.
func (t *Transcoder) Act(round int) gossip.Action {
	a := t.Inner.Act(round)
	if a.Payload != nil {
		a.Payload = t.transcode(a.Payload)
	}
	return a
}

// HandlePush transcodes the incoming payload.
func (t *Transcoder) HandlePush(round, from int, p gossip.Payload) {
	t.Inner.HandlePush(round, from, t.transcode(p))
}

// HandlePull transcodes both the query and the reply.
func (t *Transcoder) HandlePull(round, from int, q gossip.Payload) gossip.Payload {
	reply := t.Inner.HandlePull(round, from, t.transcode(q))
	if reply == nil {
		return nil
	}
	return t.transcode(reply)
}

// HandlePullReply transcodes the incoming reply.
func (t *Transcoder) HandlePullReply(round, from int, reply gossip.Payload) {
	if reply != nil {
		reply = t.transcode(reply)
	}
	t.Inner.HandlePullReply(round, from, reply)
}

// Decided defers to the inner agent.
func (t *Transcoder) Decided() bool {
	d, ok := t.Inner.(gossip.Decider)
	return ok && d.Decided()
}

// Output defers to the inner agent.
func (t *Transcoder) Output() int {
	if d, ok := t.Inner.(gossip.Decider); ok {
		return d.Output()
	}
	return -1
}
