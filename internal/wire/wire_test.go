package wire

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/rng"
)

func roundtrip(t *testing.T, p core.Params, payload any) any {
	t.Helper()
	data, err := Encode(payload)
	if err != nil {
		t.Fatalf("Encode(%T): %v", payload, err)
	}
	got, err := Decode(data, p)
	if err != nil {
		t.Fatalf("Decode(%T): %v", payload, err)
	}
	return got
}

func TestRoundtripQueries(t *testing.T) {
	p := core.MustParams(16, 2, 1)
	if _, ok := roundtrip(t, p, core.IntentQuery{P: p}).(core.IntentQuery); !ok {
		t.Fatal("intent query type lost")
	}
	if _, ok := roundtrip(t, p, core.CertQuery{P: p}).(core.CertQuery); !ok {
		t.Fatal("cert query type lost")
	}
}

func TestRoundtripVote(t *testing.T) {
	p := core.MustParams(16, 2, 1)
	got := roundtrip(t, p, core.Vote{P: p, Value: 4095}).(core.Vote)
	if got.Value != 4095 {
		t.Fatalf("vote value = %d", got.Value)
	}
}

func TestRoundtripIntentions(t *testing.T) {
	p := core.MustParams(16, 2, 1)
	in := core.Intentions{P: p, Votes: []core.Intent{{H: 1, Z: 15}, {H: p.M, Z: 0}}}
	got := roundtrip(t, p, in).(core.Intentions)
	if len(got.Votes) != 2 || got.Votes[0] != in.Votes[0] || got.Votes[1] != in.Votes[1] {
		t.Fatalf("intentions = %v", got.Votes)
	}
}

func TestRoundtripCertificate(t *testing.T) {
	p := core.MustParams(16, 2, 1)
	cert := &core.Certificate{
		P: p, K: 77,
		W:     []core.WEntry{{Voter: 3, Value: 50}, {Voter: 9, Value: 27}},
		Color: 1, Owner: 12,
	}
	got := roundtrip(t, p, cert).(*core.Certificate)
	if !got.Equal(cert) {
		t.Fatalf("certificate mismatch: %v vs %v", got, cert)
	}
	// ⊥ color survives the shift encoding.
	cert.Color = core.ColorBot
	got = roundtrip(t, p, cert).(*core.Certificate)
	if got.Color != core.ColorBot {
		t.Fatalf("⊥ color = %d", got.Color)
	}
}

func TestRoundtripPropertyRandomCertificates(t *testing.T) {
	p := core.MustParams(1024, 8, 2)
	master := rng.New(5)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		w := make([]core.WEntry, r.Intn(20))
		for i := range w {
			w[i] = core.WEntry{Voter: int32(r.Intn(p.N)), Value: r.Uint64n(p.M) + 1}
		}
		cert := &core.Certificate{
			P: p, K: r.Uint64n(p.M), W: w,
			Color: core.Color(r.Intn(p.NumColors)), Owner: int32(r.Intn(p.N)),
		}
		data, err := Encode(cert)
		if err != nil {
			return false
		}
		back, err := Decode(data, p)
		if err != nil {
			return false
		}
		return back.(*core.Certificate).Equal(cert)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	p := core.MustParams(16, 2, 1)
	cases := [][]byte{
		nil,
		{},
		{99},            // unknown tag
		{tagVote},       // missing varint
		{tagVote, 0x80}, // truncated varint
		{tagIntentions, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // absurd length
		append([]byte{tagVote, 1}, 0xAA),                                            // trailing byte
	}
	for i, data := range cases {
		if _, err := Decode(data, p); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
}

func TestEncodeRejectsUnsupported(t *testing.T) {
	if _, err := Encode(42); err == nil {
		t.Fatal("unsupported type encoded")
	}
	if _, err := Encode((*core.Certificate)(nil)); err == nil {
		t.Fatal("nil certificate encoded")
	}
}

func TestEncodedBitsTracksDeclaredSize(t *testing.T) {
	// The simulator's SizeBits accounting and the real encoding must agree
	// within a small constant factor across n — both are Θ(log² n) for the
	// big payloads.
	for _, n := range []int{64, 1024, 16384} {
		p := core.MustParams(n, 2, 2)
		r := rng.New(uint64(n))
		votes := make([]core.Intent, p.Q)
		for i := range votes {
			votes[i] = core.Intent{H: r.Uint64n(p.M) + 1, Z: int32(r.Intn(p.N))}
		}
		in := core.Intentions{P: p, Votes: votes}
		enc := float64(EncodedBits(in))
		decl := float64(in.SizeBits())
		if enc > 3*decl || decl > 3*enc {
			t.Errorf("n=%d: encoded %v bits vs declared %v bits", n, enc, decl)
		}

		w := make([]core.WEntry, p.Q)
		for i := range w {
			w[i] = core.WEntry{Voter: int32(r.Intn(p.N)), Value: r.Uint64n(p.M) + 1}
		}
		cert := &core.Certificate{P: p, K: r.Uint64n(p.M), W: w, Color: 1, Owner: 5}
		enc = float64(EncodedBits(cert))
		decl = float64(cert.SizeBits())
		if enc > 3*decl || decl > 3*enc {
			t.Errorf("n=%d: cert encoded %v bits vs declared %v bits", n, enc, decl)
		}
	}
}

func TestEncodedBitsPolylog(t *testing.T) {
	// Real encoded certificate bytes are O(log² n).
	for _, n := range []int{256, 4096, 65536} {
		p := core.MustParams(n, 2, 2)
		w := make([]core.WEntry, p.Q)
		for i := range w {
			w[i] = core.WEntry{Voter: int32(i % p.N), Value: p.M - 1}
		}
		cert := &core.Certificate{P: p, K: p.M - 1, W: w, Color: 1, Owner: 5}
		logn := math.Log2(float64(n))
		if got := float64(EncodedBits(cert)); got > 25*logn*logn {
			t.Errorf("n=%d: encoded cert %v bits > 25·log²n = %v", n, got, 25*logn*logn)
		}
	}
}

func TestEncodedBitsUnsupported(t *testing.T) {
	if EncodedBits("nope") != -1 {
		t.Fatal("EncodedBits of unsupported type")
	}
}
