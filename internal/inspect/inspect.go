// Package inspect renders the internal state of a finished protocol
// execution as a human-readable transcript: who declared which votes, what
// every agent's lottery value came out to, which certificate won Find-Min,
// and what every verifier concluded. It exists for debugging and for
// teaching — `go run ./cmd/inspect -n 8` shows one complete election end to
// end on a screenful.
package inspect

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
)

// Report writes a full transcript of a finished cooperative execution to w.
// The result must come from core.Run (it needs the honest agents).
func Report(w io.Writer, res core.RunResult) {
	agents := res.Agents
	if len(agents) == 0 {
		fmt.Fprintln(w, "no active agents")
		return
	}
	p := agents[0].Params()

	fmt.Fprintf(w, "Protocol P execution — n=%d |Σ|=%d γ=%.1f q=%d m=%d\n",
		p.N, p.NumColors, p.Gamma, p.Q, p.M)
	// The Voting phase spans more than q rounds under the retransmit variant;
	// recover its end from the total schedule length instead of assuming 4q+1.
	votingEnd := p.TotalRounds() - 1 - 2*p.Q
	fmt.Fprintf(w, "schedule: commitment [0,%d) voting [%d,%d) find-min [%d,%d) coherence [%d,%d) verify @%d\n\n",
		p.Q, p.Q, votingEnd, votingEnd, votingEnd+p.Q, votingEnd+p.Q, votingEnd+2*p.Q, votingEnd+2*p.Q)

	// Voting-Intention + Voting phase digest.
	fmt.Fprintln(w, "== Voting (declared intentions → votes received) ==")
	fmt.Fprintf(w, "%-6s %-7s %-14s %-10s %s\n", "agent", "color", "declared→", "received", "k = ΣW mod m")
	for _, a := range agents {
		targets := make([]string, 0, len(a.Intentions()))
		for _, in := range a.Intentions() {
			targets = append(targets, fmt.Sprintf("%d", in.Z))
		}
		fmt.Fprintf(w, "%-6d %-7d %-14s %-10d %d\n",
			a.ID(), a.InitialColor(), ellipsis(strings.Join(targets, ","), 14),
			len(a.VotesReceived()), a.K())
	}

	// Lottery digest: sorted k values.
	fmt.Fprintln(w, "\n== Lottery (Find-Min over k) ==")
	type entry struct {
		id int
		k  uint64
	}
	entries := make([]entry, len(agents))
	for i, a := range agents {
		entries[i] = entry{id: a.ID(), k: a.K()}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].k < entries[j].k })
	show := len(entries)
	if show > 5 {
		show = 5
	}
	for i := 0; i < show; i++ {
		marker := " "
		if i == 0 {
			marker = "← minimum (legitimate winner)"
		}
		fmt.Fprintf(w, "  k=%-12d agent %-4d %s\n", entries[i].k, entries[i].id, marker)
	}
	if len(entries) > show {
		fmt.Fprintf(w, "  … %d more\n", len(entries)-show)
	}

	// Certificate agreement.
	fmt.Fprintln(w, "\n== Coherence (certificate agreement) ==")
	certs := map[string][]int{}
	for _, a := range agents {
		certs[a.MinCertificate().String()] = append(certs[a.MinCertificate().String()], a.ID())
	}
	for cs, ids := range certs {
		fmt.Fprintf(w, "  %s held by %d agents %s\n", cs, len(ids), ellipsisInts(ids, 8))
	}

	// Verification verdicts.
	fmt.Fprintln(w, "\n== Verification ==")
	accepted, failed := 0, 0
	for _, a := range agents {
		if a.Failed() {
			failed++
		} else {
			accepted++
		}
	}
	fmt.Fprintf(w, "  accepted: %d, failed: %d\n", accepted, failed)
	fmt.Fprintf(w, "  outcome: %s after %d rounds\n", res.Outcome, res.Rounds)
	fmt.Fprintf(w, "  good execution (Definition 2): %v (votes∈[%d,%d], distinct k: %v, certs agree: %v)\n",
		res.Good.Good(), res.Good.MinVotes, res.Good.MaxVotes, res.Good.DistinctK, res.Good.CertsAgree)
	fmt.Fprintf(w, "  communication: %s\n", res.Metrics)
}

func ellipsis(s string, max int) string {
	if len(s) <= max {
		return s
	}
	if max <= 1 {
		return "…"
	}
	return s[:max-1] + "…"
}

func ellipsisInts(ids []int, max int) string {
	sort.Ints(ids)
	if len(ids) <= max {
		return fmt.Sprintf("%v", ids)
	}
	return fmt.Sprintf("%v…", ids[:max])
}
