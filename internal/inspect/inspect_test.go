package inspect

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestReportContainsAllSections(t *testing.T) {
	const n = 8
	p := core.MustParams(n, 2, core.DefaultGamma)
	res, err := core.Run(core.RunConfig{
		Params: p, Colors: core.UniformColors(n, 2), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	Report(&sb, res)
	out := sb.String()
	for _, want := range []string{
		"Protocol P execution",
		"== Voting",
		"== Lottery",
		"← minimum",
		"== Coherence",
		"== Verification",
		"outcome:",
		"good execution",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// One voting row per agent.
	if got := strings.Count(out, "\n"); got < n+10 {
		t.Errorf("report suspiciously short (%d lines)", got)
	}
}

func TestReportEmpty(t *testing.T) {
	var sb strings.Builder
	Report(&sb, core.RunResult{})
	if !strings.Contains(sb.String(), "no active agents") {
		t.Fatal("empty result not handled")
	}
}

func TestEllipsisHelpers(t *testing.T) {
	if ellipsis("abcdef", 4) != "abc…" {
		t.Fatalf("ellipsis = %q", ellipsis("abcdef", 4))
	}
	if ellipsis("ab", 4) != "ab" {
		t.Fatal("short string truncated")
	}
	if ellipsis("abc", 1) != "…" {
		t.Fatal("max 1 mishandled")
	}
	if got := ellipsisInts([]int{3, 1, 2}, 8); got != "[1 2 3]" {
		t.Fatalf("ellipsisInts = %q", got)
	}
	if got := ellipsisInts([]int{5, 4, 3, 2}, 2); got != "[2 3]…" {
		t.Fatalf("ellipsisInts long = %q", got)
	}
}
