// Package stats provides the statistical machinery used to turn the paper's
// asymptotic "with high probability" claims into checkable empirical
// statements: summary statistics with confidence intervals, a chi-square
// goodness-of-fit test (for the fairness property of Theorem 4), total
// variation distance, Wilson score intervals for failure rates (Lemma 3,
// Theorem 7), and least-squares fits in transformed coordinates for the
// O(log n) / O(log² n) scaling laws.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // unbiased sample variance
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Running is a bounded-memory (Welford) accumulator for streaming samples:
// count, mean, variance, min, and max in O(1) space, numerically stable over
// millions of observations. The zero value is an empty accumulator. Use it
// where Summarize would require materializing the whole sample.
type Running struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Merge folds another accumulator into this one (Chan et al. parallel
// variance combination), so per-worker accumulators can be reduced.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.mean += d * float64(o.n) / float64(n)
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.n = n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}

// N returns the number of observations.
func (r *Running) N() int { return int(r.n) }

// Mean returns the running mean (0 for an empty accumulator).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// Summary converts the accumulator into a Summary. Median is not available
// from a bounded-memory stream of arbitrary values and is reported as NaN;
// use IntMedian when the observable is integral.
func (r *Running) Summary() Summary {
	return Summary{
		N:      int(r.n),
		Mean:   r.Mean(),
		Var:    r.Var(),
		Std:    r.Std(),
		Min:    r.Min(),
		Max:    r.Max(),
		Median: math.NaN(),
	}
}

// IntMedian computes exact order statistics of a stream of integers in
// memory proportional to the number of *distinct* values — constant for
// bounded observables like round counts or message sizes, regardless of how
// many trials stream through. The zero value is ready to use.
type IntMedian struct {
	counts map[int]int64
	n      int64
}

// Add folds one observation into the counting histogram.
func (m *IntMedian) Add(x int) {
	if m.counts == nil {
		m.counts = make(map[int]int64)
	}
	m.counts[x]++
	m.n++
}

// N returns the number of observations.
func (m *IntMedian) N() int { return int(m.n) }

// Median returns the exact sample median (mean of the two middle order
// statistics for even counts; 0 when empty).
func (m *IntMedian) Median() float64 {
	if m.n == 0 {
		return 0
	}
	keys := make([]int, 0, len(m.counts))
	for k := range m.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	lo := (m.n - 1) / 2 // 0-based ranks of the middle pair
	hi := m.n / 2
	var vlo, vhi float64
	var seen int64
	for _, k := range keys {
		c := m.counts[k]
		if seen <= lo && lo < seen+c {
			vlo = float64(k)
		}
		if seen <= hi && hi < seen+c {
			vhi = float64(k)
			break
		}
		seen += c
	}
	return (vlo + vhi) / 2
}

// Summarize computes a Summary of xs. It returns a zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(s.N-1)
		s.Std = math.Sqrt(s.Var)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// MeanCI95 returns the mean and the half-width of a 95% normal-approximation
// confidence interval for it.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	s := Summarize(xs)
	if s.N < 2 {
		return s.Mean, math.Inf(1)
	}
	return s.Mean, 1.959964 * s.Std / math.Sqrt(float64(s.N))
}

// WilsonCI95 returns the 95% Wilson score interval for a proportion with
// successes k out of n trials. The Wilson interval behaves sensibly for
// k = 0 and k = n, which matters when estimating w.h.p. failure rates that
// are often exactly zero in a finite sample.
func WilsonCI95(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959964
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// TotalVariation returns the total variation distance between two discrete
// distributions given as aligned probability slices. It panics if the slices
// have different lengths.
func TotalVariation(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: TotalVariation length mismatch")
	}
	d := 0.0
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d / 2
}

// Normalize returns counts scaled to sum to 1. A zero-total input returns a
// zero slice.
func Normalize(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// ChiSquareResult reports a goodness-of-fit test.
type ChiSquareResult struct {
	Stat   float64 // chi-square statistic
	DF     int     // degrees of freedom
	PValue float64 // upper-tail probability
}

// ChiSquareGOF tests observed counts against expected probabilities.
// Categories with zero expected probability must have zero observed count,
// otherwise the statistic is +Inf. Categories with zero expectation are
// dropped from the degrees of freedom.
func ChiSquareGOF(observed []int, expectedProb []float64) (ChiSquareResult, error) {
	if len(observed) != len(expectedProb) {
		return ChiSquareResult{}, fmt.Errorf("stats: observed has %d categories, expected %d", len(observed), len(expectedProb))
	}
	total := 0
	for _, o := range observed {
		total += o
	}
	if total == 0 {
		return ChiSquareResult{}, fmt.Errorf("stats: no observations")
	}
	stat := 0.0
	cats := 0
	for i, o := range observed {
		e := expectedProb[i] * float64(total)
		if e == 0 {
			if o != 0 {
				return ChiSquareResult{Stat: math.Inf(1), DF: 0, PValue: 0}, nil
			}
			continue
		}
		cats++
		d := float64(o) - e
		stat += d * d / e
	}
	df := cats - 1
	if df < 1 {
		return ChiSquareResult{Stat: stat, DF: df, PValue: 1}, nil
	}
	return ChiSquareResult{Stat: stat, DF: df, PValue: ChiSquareSurvival(stat, df)}, nil
}

// ChiSquareSurvival returns P[X >= x] for X ~ chi-square with df degrees of
// freedom, i.e. the upper regularized incomplete gamma Q(df/2, x/2).
func ChiSquareSurvival(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return regIncGammaQ(float64(df)/2, x/2)
}

// regIncGammaQ computes the upper regularized incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a) using the series for x < a+1 and the continued
// fraction otherwise (Numerical Recipes style, stdlib math only).
func regIncGammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinued(a, x)
}

func gammaPSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinued(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// LinearFit is a least-squares fit y ≈ Slope*x + Intercept with the
// coefficient of determination.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear fits ys against xs by ordinary least squares. It panics on
// length mismatch and returns a zero fit for fewer than two points.
func FitLinear(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: FitLinear length mismatch")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return LinearFit{}
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{Intercept: my}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit
}

// FitPowerOfLog fits y ≈ c · (log₂ x)^p for a fixed exponent p, returning c
// and the R² of the constrained fit. Used to check the O(log n) and
// O(log² n) claims: a good fit has R² near 1 and stable c across n.
func FitPowerOfLog(xs, ys []float64, p float64) (c, r2 float64) {
	if len(xs) != len(ys) {
		panic("stats: FitPowerOfLog length mismatch")
	}
	var num, den float64
	for i := range xs {
		b := math.Pow(math.Log2(xs[i]), p)
		num += b * ys[i]
		den += b * b
	}
	if den == 0 {
		return 0, 0
	}
	c = num / den
	var ssRes, ssTot, my float64
	for _, y := range ys {
		my += y
	}
	my /= float64(len(ys))
	for i := range xs {
		pred := c * math.Pow(math.Log2(xs[i]), p)
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	if ssTot == 0 {
		return c, 1
	}
	return c, 1 - ssRes/ssTot
}

// KSUniform computes the one-sample Kolmogorov–Smirnov statistic of xs
// against the Uniform(0,1) distribution and an approximate p-value from the
// asymptotic Kolmogorov distribution. Values must be pre-normalized into
// [0, 1]. It is used to test Claim 2 of Theorem 7: every agent's lottery
// value k/m must be uniform, also under coalition interference.
func KSUniform(xs []float64) (stat, pValue float64) {
	n := len(xs)
	if n == 0 {
		return 0, 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	d := 0.0
	for i, x := range sorted {
		lo := x - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - x
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d, ksSurvival(math.Sqrt(float64(n)) * d)
}

// ksSurvival is the asymptotic Kolmogorov survival function
// Q(t) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2k²t²).
func ksSurvival(t float64) float64 {
	if t <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k*k) * t * t)
		sum += sign * term
		sign = -sign
		if term < 1e-12 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Histogram counts xs into n equal-width buckets spanning [lo, hi]; values
// outside the range clamp to the end buckets.
func Histogram(xs []float64, lo, hi float64, n int) []int {
	if n <= 0 || hi <= lo {
		panic("stats: invalid Histogram parameters")
	}
	counts := make([]int, n)
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts
}
