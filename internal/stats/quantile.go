package stats

import "math/bits"

// QuantileSketch is a streaming quantile summary over non-negative int64
// observations (message latencies in nanoseconds, queue depths, sizes). Like
// Running it is single-pass and O(1) per observation, but instead of moments
// it keeps a histogram of exponential buckets — 16 sub-buckets per power of
// two — so any quantile is recoverable within a ≈ 6% relative error from a
// few KB of memory, independent of the stream length. Values below 16 are
// exact. The zero value is an empty sketch ready to use.
type QuantileSketch struct {
	count   int64
	min     int64
	max     int64
	buckets [sketchBuckets]int64
}

// sketchSubBits is the per-octave resolution: 2^4 sub-buckets per power of
// two bounds the relative quantization error by 2^-4.
const sketchSubBits = 4

// sketchBuckets covers the full non-negative int64 range: values below 2^4
// map to exact unit buckets, and each of the remaining 59 octaves gets 2^4
// sub-buckets.
const sketchBuckets = 1<<sketchSubBits + (63-sketchSubBits)<<sketchSubBits

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < 1<<sketchSubBits {
		return int(v)
	}
	octave := bits.Len64(uint64(v)) - 1
	sub := int(v>>(octave-sketchSubBits)) & (1<<sketchSubBits - 1)
	return (octave-sketchSubBits)<<sketchSubBits + 1<<sketchSubBits + sub
}

// bucketHigh returns the largest value a bucket holds — the conservative
// (upper-bound) estimate Quantile reports.
func bucketHigh(idx int) int64 {
	if idx < 1<<sketchSubBits {
		return int64(idx)
	}
	b := idx - 1<<sketchSubBits
	octave := b>>sketchSubBits + sketchSubBits
	sub := int64(b & (1<<sketchSubBits - 1))
	low := int64(1)<<octave + sub<<(octave-sketchSubBits)
	return low + int64(1)<<(octave-sketchSubBits) - 1
}

// Add records one observation. Negative values clamp to zero.
func (q *QuantileSketch) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if q.count == 0 || v < q.min {
		q.min = v
	}
	if v > q.max {
		q.max = v
	}
	q.count++
	q.buckets[bucketOf(v)]++
}

// Count returns the number of observations.
func (q *QuantileSketch) Count() int64 { return q.count }

// Min returns the smallest observation (0 when empty).
func (q *QuantileSketch) Min() int64 {
	if q.count == 0 {
		return 0
	}
	return q.min
}

// Max returns the largest observation (0 when empty).
func (q *QuantileSketch) Max() int64 { return q.max }

// Quantile returns an upper estimate of the p-quantile (p in [0, 1]): the
// value v such that at least ⌈p·count⌉ observations are ≤ v, rounded up to
// its bucket boundary and clamped into [Min, Max]. An empty sketch returns 0.
func (q *QuantileSketch) Quantile(p float64) int64 {
	if q.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(p * float64(q.count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range q.buckets {
		seen += c
		if seen >= rank {
			v := bucketHigh(i)
			if v < q.min {
				v = q.min
			}
			if v > q.max {
				v = q.max
			}
			return v
		}
	}
	return q.max
}

// Merge folds another sketch into q, as if q had observed other's stream too.
func (q *QuantileSketch) Merge(other *QuantileSketch) {
	if other.count == 0 {
		return
	}
	if q.count == 0 || other.min < q.min {
		q.min = other.min
	}
	if other.max > q.max {
		q.max = other.max
	}
	q.count += other.count
	for i, c := range other.buckets {
		q.buckets[i] += c
	}
}
