package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// exactQuantile is the reference the sketch is judged against.
func exactQuantile(sorted []int64, p float64) int64 {
	rank := int(p*float64(len(sorted))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func TestQuantileSketchSmallValuesExact(t *testing.T) {
	var q QuantileSketch
	for v := int64(0); v < 16; v++ {
		q.Add(v)
	}
	if q.Count() != 16 {
		t.Fatalf("count %d", q.Count())
	}
	if q.Min() != 0 || q.Max() != 15 {
		t.Fatalf("min=%d max=%d", q.Min(), q.Max())
	}
	// Values below 16 land in unit buckets, so quantiles are exact.
	if got := q.Quantile(0.5); got != 7 {
		t.Fatalf("p50 = %d, want 7", got)
	}
	if got := q.Quantile(1); got != 15 {
		t.Fatalf("p100 = %d, want 15", got)
	}
}

func TestQuantileSketchEmpty(t *testing.T) {
	var q QuantileSketch
	if q.Quantile(0.5) != 0 || q.Max() != 0 || q.Min() != 0 || q.Count() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
}

// TestQuantileSketchAccuracy bounds the relative error against exact
// quantiles on heavy-tailed data spanning many octaves — the latency-shaped
// workload the sketch exists for.
func TestQuantileSketchAccuracy(t *testing.T) {
	r := rng.New(77)
	const n = 200000
	var q QuantileSketch
	values := make([]int64, n)
	for i := range values {
		// Log-uniform over [1µs, 1s] in nanoseconds.
		v := int64(1000 * math.Pow(1e6, r.Float64()))
		values[i] = v
		q.Add(v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999} {
		got := float64(q.Quantile(p))
		want := float64(exactQuantile(values, p))
		if relErr := math.Abs(got-want) / want; relErr > 0.08 {
			t.Fatalf("p%.3f: sketch %v vs exact %v (rel err %.3f > 0.08)", p, got, want, relErr)
		}
	}
	if q.Max() != values[n-1] || q.Min() != values[0] {
		t.Fatalf("min/max not exact: %d/%d vs %d/%d", q.Min(), q.Max(), values[0], values[n-1])
	}
}

// TestQuantileSketchMonotone pins that quantiles are monotone in p and
// clamped to the observed range.
func TestQuantileSketchMonotone(t *testing.T) {
	r := rng.New(3)
	var q QuantileSketch
	for i := 0; i < 10000; i++ {
		q.Add(int64(r.Uint64n(1 << 40)))
	}
	prev := int64(-1)
	for p := 0.0; p <= 1.0; p += 0.05 {
		v := q.Quantile(p)
		if v < prev {
			t.Fatalf("quantile not monotone at p=%.2f: %d < %d", p, v, prev)
		}
		if v < q.Min() || v > q.Max() {
			t.Fatalf("quantile %d outside [%d, %d]", v, q.Min(), q.Max())
		}
		prev = v
	}
}

func TestQuantileSketchNegativeClamps(t *testing.T) {
	var q QuantileSketch
	q.Add(-5)
	if q.Min() != 0 || q.Max() != 0 || q.Quantile(0.5) != 0 {
		t.Fatal("negative observations must clamp to zero")
	}
}

func TestQuantileSketchMerge(t *testing.T) {
	r := rng.New(9)
	var a, b, whole QuantileSketch
	for i := 0; i < 50000; i++ {
		v := int64(r.Uint64n(1 << 30))
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merge lost observations")
	}
	for _, p := range []float64{0.1, 0.5, 0.99} {
		if a.Quantile(p) != whole.Quantile(p) {
			t.Fatalf("p%.2f: merged %d != whole-stream %d", p, a.Quantile(p), whole.Quantile(p))
		}
	}
	// Merging into an empty sketch copies the stream.
	var empty QuantileSketch
	empty.Merge(&whole)
	if empty.Count() != whole.Count() || empty.Min() != whole.Min() {
		t.Fatal("merge into empty sketch lost state")
	}
}

// TestBucketRoundTrip pins the bucket geometry: every value maps into a
// bucket whose bounds contain it, and bucket indexes are monotone.
func TestBucketRoundTrip(t *testing.T) {
	probe := []int64{0, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	prevIdx := -1
	for _, v := range probe {
		idx := bucketOf(v)
		if idx <= prevIdx && v != 0 {
			t.Fatalf("bucket index not increasing at %d", v)
		}
		if high := bucketHigh(idx); v > high {
			t.Fatalf("value %d above its bucket's upper bound %d", v, high)
		}
		if idx > 0 {
			if lowNeighbor := bucketHigh(idx - 1); v <= lowNeighbor {
				t.Fatalf("value %d not above previous bucket's bound %d", v, lowNeighbor)
			}
		}
		prevIdx = idx
	}
	if got := bucketOf(math.MaxInt64); got >= sketchBuckets {
		t.Fatalf("MaxInt64 bucket %d out of range %d", got, sketchBuckets)
	}
}
