package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	if !approx(s.Var, 2.5, 1e-12) {
		t.Fatalf("Var = %v, want 2.5", s.Var)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Fatalf("Median = %v, want 2.5", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty Summarize = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("single Summarize = %+v", s)
	}
}

func TestMeanCI95(t *testing.T) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i % 2) // mean 0.5, std 0.5
	}
	mean, hw := MeanCI95(xs)
	if !approx(mean, 0.5, 1e-9) {
		t.Fatalf("mean = %v", mean)
	}
	// 1.96 * 0.500025 / 100 ≈ 0.0098
	if !approx(hw, 0.0098, 0.0005) {
		t.Fatalf("half-width = %v", hw)
	}
}

func TestWilsonCI95(t *testing.T) {
	lo, hi := WilsonCI95(0, 100)
	if lo != 0 || hi < 0.02 || hi > 0.06 {
		t.Fatalf("Wilson(0,100) = [%v,%v]", lo, hi)
	}
	lo, hi = WilsonCI95(100, 100)
	if hi != 1 || lo > 0.98 || lo < 0.94 {
		t.Fatalf("Wilson(100,100) = [%v,%v]", lo, hi)
	}
	lo, hi = WilsonCI95(50, 100)
	if !approx((lo+hi)/2, 0.5, 0.01) || hi-lo > 0.25 {
		t.Fatalf("Wilson(50,100) = [%v,%v]", lo, hi)
	}
	lo, hi = WilsonCI95(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0,0) = [%v,%v]", lo, hi)
	}
}

func TestWilsonCIProperty(t *testing.T) {
	f := func(k, n uint16) bool {
		kk := int(k)
		nn := int(n)
		if nn == 0 {
			return true
		}
		kk %= nn + 1
		lo, hi := WilsonCI95(kk, nn)
		p := float64(kk) / float64(nn)
		return lo >= 0 && hi <= 1 && lo <= p+1e-12 && hi >= p-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalVariation(t *testing.T) {
	if tv := TotalVariation([]float64{1, 0}, []float64{0, 1}); tv != 1 {
		t.Fatalf("TV = %v, want 1", tv)
	}
	if tv := TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5}); tv != 0 {
		t.Fatalf("TV = %v, want 0", tv)
	}
	if tv := TotalVariation([]float64{0.7, 0.3}, []float64{0.5, 0.5}); !approx(tv, 0.2, 1e-12) {
		t.Fatalf("TV = %v, want 0.2", tv)
	}
}

func TestNormalize(t *testing.T) {
	p := Normalize([]int{1, 3})
	if !approx(p[0], 0.25, 1e-12) || !approx(p[1], 0.75, 1e-12) {
		t.Fatalf("Normalize = %v", p)
	}
	z := Normalize([]int{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize zero = %v", z)
	}
}

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Reference values from standard chi-square tables.
	cases := []struct {
		x   float64
		df  int
		p   float64
		tol float64
	}{
		{3.841, 1, 0.05, 0.001},
		{6.635, 1, 0.01, 0.001},
		{5.991, 2, 0.05, 0.001},
		{9.488, 4, 0.05, 0.001},
		{18.307, 10, 0.05, 0.001},
		{29.588, 42, 0.925, 0.01},
		{0, 5, 1, 0},
	}
	for _, c := range cases {
		got := ChiSquareSurvival(c.x, c.df)
		if !approx(got, c.p, c.tol) {
			t.Errorf("ChiSquareSurvival(%v, %d) = %v, want %v", c.x, c.df, got, c.p)
		}
	}
}

func TestChiSquareSurvivalMonotone(t *testing.T) {
	prev := 1.0
	for x := 0.0; x < 50; x += 0.5 {
		p := ChiSquareSurvival(x, 7)
		if p > prev+1e-12 {
			t.Fatalf("survival not monotone at x=%v: %v > %v", x, p, prev)
		}
		prev = p
	}
}

func TestChiSquareGOFUniform(t *testing.T) {
	// Perfectly uniform observations should give statistic 0, p-value 1.
	res, err := ChiSquareGOF([]int{100, 100, 100, 100}, []float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stat != 0 || res.DF != 3 || res.PValue != 1 {
		t.Fatalf("GOF uniform = %+v", res)
	}
}

func TestChiSquareGOFSkewed(t *testing.T) {
	// Extremely skewed observations should be rejected.
	res, err := ChiSquareGOF([]int{390, 10}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-10 {
		t.Fatalf("skewed GOF p-value = %v, want ~0", res.PValue)
	}
}

func TestChiSquareGOFZeroExpected(t *testing.T) {
	res, err := ChiSquareGOF([]int{10, 0}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue != 1 {
		t.Fatalf("degenerate GOF = %+v", res)
	}
	res, err = ChiSquareGOF([]int{10, 5}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Stat, 1) || res.PValue != 0 {
		t.Fatalf("impossible observation GOF = %+v", res)
	}
}

func TestChiSquareGOFErrors(t *testing.T) {
	if _, err := ChiSquareGOF([]int{1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := ChiSquareGOF([]int{0, 0}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("empty sample not rejected")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	f := FitLinear(xs, ys)
	if !approx(f.Slope, 2, 1e-12) || !approx(f.Intercept, 1, 1e-12) || !approx(f.R2, 1, 1e-12) {
		t.Fatalf("FitLinear = %+v", f)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	f := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 || f.Intercept != 2 {
		t.Fatalf("constant-x fit = %+v", f)
	}
	if g := FitLinear([]float64{1}, []float64{1}); g.Slope != 0 {
		t.Fatalf("single-point fit = %+v", g)
	}
}

func TestFitPowerOfLogExact(t *testing.T) {
	// y = 3·log₂(x)² exactly.
	xs := []float64{4, 16, 64, 256, 1024}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		l := math.Log2(x)
		ys[i] = 3 * l * l
	}
	c, r2 := FitPowerOfLog(xs, ys, 2)
	if !approx(c, 3, 1e-9) || !approx(r2, 1, 1e-9) {
		t.Fatalf("FitPowerOfLog = c=%v r2=%v", c, r2)
	}
}

func TestFitPowerOfLogLinear(t *testing.T) {
	xs := []float64{8, 32, 128, 512}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Log2(x)
	}
	c, r2 := FitPowerOfLog(xs, ys, 1)
	if !approx(c, 5, 1e-9) || r2 < 0.999 {
		t.Fatalf("FitPowerOfLog p=1: c=%v r2=%v", c, r2)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.1, 0.2, 0.6, 0.9, -5, 10}, 0, 1, 2)
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("Histogram = %v", h)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid Histogram did not panic")
		}
	}()
	Histogram(nil, 1, 0, 3)
}

func TestTotalVariationProperty(t *testing.T) {
	// TV is symmetric and within [0, 1] for probability vectors.
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		p := make([]float64, n)
		q := make([]float64, n)
		var sp, sq float64
		for i := 0; i < n; i++ {
			p[i] = math.Abs(raw[i])
			q[i] = math.Abs(raw[n+i])
			sp += p[i]
			sq += q[i]
		}
		if sp == 0 || sq == 0 {
			return true
		}
		for i := 0; i < n; i++ {
			p[i] /= sp
			q[i] /= sq
		}
		tv := TotalVariation(p, q)
		return tv >= -1e-12 && tv <= 1+1e-12 && approx(tv, TotalVariation(q, p), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKSUniformAcceptsUniform(t *testing.T) {
	// A low-discrepancy sequence is as uniform as it gets.
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = (float64(i) + 0.5) / 2000
	}
	stat, p := KSUniform(xs)
	if stat > 0.01 || p < 0.9 {
		t.Fatalf("uniform sequence: stat=%v p=%v", stat, p)
	}
}

func TestKSUniformRejectsSkewed(t *testing.T) {
	xs := make([]float64, 2000)
	for i := range xs {
		v := (float64(i) + 0.5) / 2000
		xs[i] = v * v // CDF sqrt(x), far from uniform
	}
	_, p := KSUniform(xs)
	if p > 1e-6 {
		t.Fatalf("skewed sample accepted: p=%v", p)
	}
}

func TestKSUniformEdgeCases(t *testing.T) {
	if stat, p := KSUniform(nil); stat != 0 || p != 1 {
		t.Fatalf("empty KS = %v, %v", stat, p)
	}
	// A single mid-point sample is maximally compatible.
	if _, p := KSUniform([]float64{0.5}); p < 0.5 {
		t.Fatalf("single-sample p = %v", p)
	}
}

func TestRunningMatchesSummarize(t *testing.T) {
	xs := make([]float64, 0, 1000)
	r := 1.0
	var run Running
	for i := 0; i < 1000; i++ {
		r = math.Mod(r*997.13+0.7, 37.0) // deterministic, uneven stream
		xs = append(xs, r)
		run.Add(r)
	}
	want := Summarize(xs)
	if run.N() != want.N {
		t.Fatalf("N = %d, want %d", run.N(), want.N)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"mean", run.Mean(), want.Mean},
		{"var", run.Var(), want.Var},
		{"std", run.Std(), want.Std},
		{"min", run.Min(), want.Min},
		{"max", run.Max(), want.Max},
	} {
		if math.Abs(c.got-c.want) > 1e-9*math.Max(1, math.Abs(c.want)) {
			t.Fatalf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestRunningMerge(t *testing.T) {
	var whole, a, b Running
	for i := 0; i < 500; i++ {
		x := float64((i*31)%97) / 7.0
		whole.Add(x)
		if i%3 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 || math.Abs(a.Var()-whole.Var()) > 1e-9 {
		t.Fatalf("merged moments (%v, %v) != whole (%v, %v)", a.Mean(), a.Var(), whole.Mean(), whole.Var())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged extremes diverged")
	}

	var empty Running
	empty.Merge(a)
	if empty.N() != a.N() || empty.Mean() != a.Mean() {
		t.Fatal("merge into empty lost data")
	}
}

func TestIntMedianMatchesSummarize(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 101} {
		var m IntMedian
		xs := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			v := (i * 13) % 23
			m.Add(v)
			xs = append(xs, float64(v))
		}
		if got, want := m.Median(), Summarize(xs).Median; got != want {
			t.Fatalf("n=%d: IntMedian = %v, Summarize median = %v", n, got, want)
		}
		if m.N() != n {
			t.Fatalf("n=%d: N = %d", n, m.N())
		}
	}
	var empty IntMedian
	if empty.Median() != 0 || empty.N() != 0 {
		t.Fatal("empty IntMedian not zero")
	}
}
