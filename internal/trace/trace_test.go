package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindRound: "round", KindPush: "push", KindPull: "pull",
		KindPhase: "phase", KindDecide: "decide", KindFail: "fail",
		KindDrop: "drop", KindCustom: "custom", Kind(99): "kind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestMemorySinkRecords(t *testing.T) {
	var m Memory
	m.Emit(Event{Round: 1, Kind: KindPush, From: 2, To: 3, Note: "x"})
	m.Emit(Event{Round: 1, Kind: KindPull, From: 3, To: 2})
	m.Emit(Event{Round: 2, Kind: KindPush, From: 0, To: 1})
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	if m.CountKind(KindPush) != 2 || m.CountKind(KindPull) != 1 || m.CountKind(KindFail) != 0 {
		t.Fatal("CountKind wrong")
	}
	evs := m.Events()
	if evs[0].Note != "x" || evs[2].Round != 2 {
		t.Fatalf("Events = %v", evs)
	}
	// Events returns a copy.
	evs[0].Note = "mutated"
	if m.Events()[0].Note != "x" {
		t.Fatal("Events did not copy")
	}
}

func TestMemorySinkConcurrent(t *testing.T) {
	var m Memory
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Emit(Event{Kind: KindCustom})
			}
		}()
	}
	wg.Wait()
	if m.Len() != 8000 {
		t.Fatalf("Len = %d, want 8000", m.Len())
	}
}

func TestWriterSink(t *testing.T) {
	var sb strings.Builder
	w := &Writer{W: &sb}
	w.Emit(Event{Round: 5, Kind: KindDecide, From: 1, To: -1, Note: "color=2"})
	out := sb.String()
	if !strings.Contains(out, "r=5") || !strings.Contains(out, "decide") || !strings.Contains(out, "color=2") {
		t.Fatalf("output = %q", out)
	}
}

func TestNullSink(t *testing.T) {
	Null{}.Emit(Event{}) // must not panic
}
