// Package trace offers a lightweight structured event sink for debugging
// protocol executions. The engine and protocol emit events through a Sink;
// production runs use Null (zero overhead beyond an interface call guarded by
// a nil check), tests and the CLI can install a Memory or Writer sink to see
// exactly which agent did what in which round.
package trace

import (
	"fmt"
	"io"
	"sync"
)

// Kind classifies trace events.
type Kind int

// Event kinds emitted by the engine and protocol.
const (
	KindRound  Kind = iota // a round boundary
	KindPush               // a push delivery
	KindPull               // a pull request/reply
	KindPhase              // an agent changed protocol phase
	KindDecide             // an agent decided a final color
	KindFail               // an agent declared protocol failure
	KindDrop               // engine dropped an illegal action
	KindCustom             // free-form protocol event
)

func (k Kind) String() string {
	switch k {
	case KindRound:
		return "round"
	case KindPush:
		return "push"
	case KindPull:
		return "pull"
	case KindPhase:
		return "phase"
	case KindDecide:
		return "decide"
	case KindFail:
		return "fail"
	case KindDrop:
		return "drop"
	case KindCustom:
		return "custom"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is a single trace record.
type Event struct {
	Round int
	Kind  Kind
	From  int // acting agent, -1 if not applicable
	To    int // peer agent, -1 if not applicable
	Note  string
}

func (e Event) String() string {
	return fmt.Sprintf("r=%d %s from=%d to=%d %s", e.Round, e.Kind, e.From, e.To, e.Note)
}

// Sink receives events. Implementations must be safe for concurrent use if
// the engine runs agent steps in parallel.
type Sink interface {
	Emit(Event)
}

// Null is a Sink that discards everything.
type Null struct{}

// Emit discards the event.
func (Null) Emit(Event) {}

// Memory is a Sink that records all events in order of emission.
type Memory struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (m *Memory) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (m *Memory) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Len returns the number of recorded events.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// CountKind returns how many recorded events have the given kind.
func (m *Memory) CountKind(k Kind) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Writer is a Sink that formats each event on its own line.
type Writer struct {
	mu sync.Mutex
	W  io.Writer
}

// Emit writes the event; write errors are ignored (tracing is best-effort).
func (w *Writer) Emit(e Event) {
	w.mu.Lock()
	fmt.Fprintln(w.W, e.String())
	w.mu.Unlock()
}
