package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps scenario names to full declarative settings, so CLIs
// can run `-scenario <name>` and experiments can share canonical settings.
var (
	regMu    sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a named scenario to the registry. The scenario is validated
// and stored with defaults applied, so Lookup always returns the fully
// effective setting — callers never have to remember WithDefaults themselves.
// Registering an invalid or duplicate name fails.
func Register(s Scenario) error {
	if s.Name == "" {
		return fmt.Errorf("scenario: cannot register a scenario without a name")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	s = s.WithDefaults()
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// MustRegister is Register that panics on error, for init-time tables.
func MustRegister(s Scenario) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the registered scenario by name.
func Lookup(name string) (Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names lists every registered scenario in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The built-in library: one named scenario per experiment axis the
// repository exercises, including the newer crash / churn / zipf settings.
func init() {
	for _, s := range []Scenario{
		{Name: "baseline", N: 256, Colors: 2, Seed: 1},
		{Name: "faulty-third", N: 256, Colors: 2, Seed: 1,
			Fault: FaultModel{Kind: FaultPermanent, Alpha: 1.0 / 3}},
		{Name: "leader-election", N: 64, ColorInit: ColorsLeader, Seed: 1},
		{Name: "split-70-30", N: 256, Colors: 2, ColorInit: ColorsSplit, SplitFraction: 0.7, Seed: 1},
		{Name: "zipf-skew", N: 256, Colors: 4, ColorInit: ColorsZipf, ZipfS: 1.2, Seed: 1},
		{Name: "ring", N: 128, Colors: 2, Topology: "ring", Seed: 1},
		{Name: "expander", N: 256, Colors: 2, Topology: "regular8", Seed: 1},
		{Name: "sequential", N: 96, Colors: 2, Scheduler: SchedulerAsync, Seed: 1},
		// With n = 256, γ = 3 the phases are q = 24 rounds: Voting spans
		// [24, 48). Crashing after it is tolerated; crashing inside it breaks
		// verification (unfulfilled binding declarations) — the pair brackets
		// the protocol's brittleness window.
		{Name: "crash-after-voting", N: 256, Colors: 2, Seed: 1,
			Fault: FaultModel{Kind: FaultCrash, Alpha: 0.25, Round: 50}},
		{Name: "crash-mid-voting", N: 256, Colors: 2, Seed: 1,
			Fault: FaultModel{Kind: FaultCrash, Alpha: 0.25, Round: 30}},
		{Name: "churn", N: 256, Colors: 2, Seed: 1,
			Fault: FaultModel{Kind: FaultChurn, Alpha: 0.3, Period: 8}},
		// Every node honest and always up, but every message crossing a link
		// is lost with probability 5% — the probabilistic message-loss axis.
		{Name: "lossy-links", N: 256, Colors: 2, Seed: 1,
			Fault: FaultModel{Drop: 0.05}},
		{Name: "adversary-min-k", N: 128, Colors: 2, Seed: 1,
			Coalition: 4, Deviation: "min-k-liar"},
		// Dynamic topologies: the graph itself churns while every node stays
		// up. The edge-Markovian rates keep a stationary degree of
		// ≈ (n−1)·birth/(birth+death) ≈ 21 while 10% of the present edges die
		// each round; the rewiring ring resamples a fifth of the cycle into
		// random chords every round.
		{Name: "edge-markovian", N: 128, Colors: 2, Seed: 1,
			Dynamics: Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.02, Death: 0.1}},
		{Name: "rewire-ring", N: 128, Colors: 2, Seed: 1,
			Dynamics: Dynamics{Kind: DynamicsRewireRing, Beta: 0.2}},
		// The implicit sparse generators: a fresh random 8-regular matching
		// every round (full edge turnover — the maximal-churn extreme), and
		// points on the torus drifting 1% of the unit square per round with
		// ≈ 12 expected neighbors (boundary-only churn with spatial locality).
		{Name: "regular-rematch", N: 128, Colors: 2, Seed: 1,
			Dynamics: Dynamics{Kind: DynamicsDRegular, Degree: 8}},
		{Name: "geometric-torus", N: 256, Colors: 2, Seed: 1,
			Dynamics: Dynamics{Kind: DynamicsGeometric, Degree: 12, Jitter: 0.01}},
		// Protocol variants, each paired with the adversity it targets. The
		// live-retarget run repeats "edge-markovian" (which collapses under
		// the baseline protocol) with advisory vote targets; the relaxed run
		// repeats "lossy-links" (baseline success 0%) with a 20-of-24
		// verification threshold; the retransmit run repeats it with a
		// 3-pass TTL, measuring what redelivery alone buys against loss.
		{Name: "live-retarget-churn", N: 128, Colors: 2, Seed: 1,
			Dynamics: Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.02, Death: 0.1},
			Protocol: Protocol{Variant: ProtocolLiveRetarget}},
		{Name: "retransmit-lossy", N: 256, Colors: 2, Seed: 1,
			Fault:    FaultModel{Drop: 0.05},
			Protocol: Protocol{Variant: ProtocolRetransmit, TTL: 3}},
		{Name: "relaxed-lossy", N: 256, Colors: 2, Seed: 1,
			Fault:    FaultModel{Drop: 0.05},
			Protocol: Protocol{Variant: ProtocolRelaxed, MinVotes: 20}},
		// Composite: k-of-q relaxed verification on the geometric torus —
		// does tolerating bounded per-voter violations buy back any of the
		// diameter-driven collapse E13 charted for this graph?
		{Name: "relaxed-geometric", N: 256, Colors: 2, Seed: 1,
			Dynamics: Dynamics{Kind: DynamicsGeometric, Degree: 12, Jitter: 0.01},
			Protocol: Protocol{Variant: ProtocolRelaxed, MinVotes: 20}},
	} {
		MustRegister(s)
	}
}
