// Package scenario is the declarative experiment layer of the repository:
// one Scenario value names everything that defines a protocol execution —
// network size, initial-opinion distribution, phase-length constant,
// topology, fault model, scheduler (synchronous rounds or sequential ticks),
// and an optional rational coalition — and one Runner executes it, for a
// single seed or as a seed-batched Monte-Carlo experiment, through a single
// code path shared by every CLI, example, and experiment table.
//
// The point of the indirection is that new experiment axes become one-field
// additions instead of new wiring: crash-at-round-r faults, periodic churn,
// and Zipf-skewed initial opinions are all expressed here and flow through
// the same unified gossip executor as the paper's original grid.
package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/rng"
	"repro/internal/topo"
)

// SchedulerKind selects the execution model.
type SchedulerKind string

// The two schedulers of the paper: synchronous rounds (Section 2) and the
// sequential one-agent-per-tick model (Section 4, open problem 2).
const (
	SchedulerSync  SchedulerKind = "sync"
	SchedulerAsync SchedulerKind = "async"
)

// ColorInit names the initial-opinion distribution.
type ColorInit string

// Supported initial color distributions.
const (
	// ColorsUniform assigns colors round-robin (core.UniformColors).
	ColorsUniform ColorInit = "uniform"
	// ColorsSplit gives the first ⌊SplitFraction·n⌋ nodes color 0, the rest
	// color 1 (core.SplitColors).
	ColorsSplit ColorInit = "split"
	// ColorsZipf draws each node's color from a Zipf law with exponent ZipfS
	// (core.ZipfColors) — the skewed-opinion workload.
	ColorsZipf ColorInit = "zipf"
	// ColorsLeader gives every node its own color, turning fair consensus
	// into fair leader election (core.LeaderElectionColors).
	ColorsLeader ColorInit = "leader"
)

// FaultKind names the fault model.
type FaultKind string

// Supported fault models.
const (
	FaultNone FaultKind = "none"
	// FaultPermanent is the paper's model: the first ⌊α·n⌋ nodes are
	// quiescent from round 0 and never get agents.
	FaultPermanent FaultKind = "permanent"
	// FaultCrash runs the first ⌊α·n⌋ nodes honestly until round Round, then
	// silences them permanently. The protocol's binding declarations make the
	// onset round decisive: a crash before the Voting phase behaves like a
	// permanent fault and is tolerated, a crash after Voting is harmless, but
	// a crash *during* Voting leaves declared votes unfulfilled and every
	// verifier holding the crashed node's declaration rejects the winning
	// certificate (VerifyCertificate's missing-vote direction) — success
	// collapses. That brittleness window is the measurement this axis exists
	// for.
	FaultCrash FaultKind = "crash"
	// FaultChurn alternates the first ⌊α·n⌋ nodes between Period rounds up
	// and Period rounds down, staggered by node ID. Nodes down during their
	// own Voting rounds leave declared votes unfulfilled, so churn spanning
	// the Voting phase drives the failure rate toward 1 (see FaultCrash) —
	// the honest-but-intermittent adversary is this protocol's worst case.
	FaultChurn FaultKind = "churn"
)

// DynamicsKind names the graph process that evolves the topology per round.
type DynamicsKind string

// Supported dynamic-topology processes.
const (
	// DynamicsNone leaves the scenario's static topology in place.
	DynamicsNone DynamicsKind = "none"
	// DynamicsEdgeMarkovian evolves every potential edge as its own two-state
	// Markov chain: absent edges appear with probability Birth and present
	// edges disappear with probability Death at each round boundary
	// (topo.EdgeMarkovian). Round 0 is drawn from the stationary law, so the
	// expected degree stays ≈ (n−1)·Birth/(Birth+Death) throughout.
	DynamicsEdgeMarkovian DynamicsKind = "edge-markovian"
	// DynamicsRewireRing keeps the n-cycle as substrate and, each round,
	// independently replaces every node's clockwise edge by a uniformly
	// random chord with probability Beta (topo.RewireRing) — Watts–Strogatz
	// rewiring resampled per round instead of frozen at construction.
	DynamicsRewireRing DynamicsKind = "rewire-ring"
	// DynamicsDRegular re-matches a random (approximately) Degree-regular
	// graph from scratch every round via configuration-model stub pairing
	// (topo.DRegular): consecutive rounds are independent, so nearly the
	// whole edge set turns over each round — the maximal-churn extreme at
	// fixed degree. The generator is implicit (O(n·Degree) state, no pair
	// population), so it scales to the full n range.
	DynamicsDRegular DynamicsKind = "d-regular"
	// DynamicsGeometric scatters n points on the unit torus, connects pairs
	// within radius √(Degree/(π·n)) (expected degree ≈ Degree), and moves
	// every point by a uniform per-axis offset in [−Jitter, Jitter] each
	// round (topo.Geometric). Jitter dials churn continuously from a frozen
	// geometric graph to full spatial re-mixing, while the graph keeps
	// spatial locality — the clique-free setting of the paper's open
	// problem. Implicit like d-regular: O(n + edges) state.
	DynamicsGeometric DynamicsKind = "geometric"
)

// Dynamics describes a per-round evolving topology — the graph-process
// analogue of churn: every node stays up, but who can talk to whom is
// redrawn at each round boundary. The zero value means a static topology.
// When active, the process replaces the scenario's Topology (which must be
// left at its default), and every run derives the evolution from its own
// seed, so dynamic runs are exactly as reproducible as static ones.
// Admission is keyed on memory that actually exists: every process is
// O(present edges), so scenarios are admitted up to n = topo.MaxDynamicN
// (= core.MaxN) with expected edge count at most topo.MaxDynamicEdges —
// million-node networks are fine as long as they are sparse.
type Dynamics struct {
	Kind DynamicsKind
	// Birth is the per-round appearance probability of an absent edge
	// (DynamicsEdgeMarkovian only), in [0, 1].
	Birth float64
	// Death is the per-round disappearance probability of a present edge
	// (DynamicsEdgeMarkovian only), in [0, 1]. Birth+Death must be positive.
	Death float64
	// Beta is the per-round rewiring probability of each ring edge
	// (DynamicsRewireRing only), in [0, 1].
	Beta float64
	// Degree is the per-node degree target: the exact stub count of
	// DynamicsDRegular (2 ≤ Degree < n, n·Degree even) or the expected
	// degree of DynamicsGeometric (≥ 1). Those two kinds only.
	Degree int
	// Jitter is the per-round, per-axis uniform displacement bound of
	// DynamicsGeometric points, in [0, 1]. 0 freezes the point set (a
	// static geometric graph). DynamicsGeometric only.
	Jitter float64
}

// Active reports whether d names a real graph process (anything but the zero
// value and the explicit "none").
func (d Dynamics) Active() bool { return d.Kind != "" && d.Kind != DynamicsNone }

// ProtocolVariant names a protocol variant (see core.ProtocolVariant).
type ProtocolVariant string

// Supported protocol variants. The baseline is the paper's Algorithm 1; the
// other three trade the binding-declaration property for delivery robustness
// in different ways (see the core package for the exact semantics).
const (
	// ProtocolBaseline runs Algorithm 1 unchanged — the default.
	ProtocolBaseline ProtocolVariant = "baseline"
	// ProtocolLiveRetarget re-samples vote targets from the current neighbor
	// set at send time; declared values stay binding, targets are advisory,
	// and verification drops the missing-vote direction.
	ProtocolLiveRetarget ProtocolVariant = "live-retarget"
	// ProtocolRetransmit re-pushes every vote to its declared target TTL
	// times in TTL voting passes of q rounds each (receivers dedup), keeping
	// strict verification at ≈ TTL× the voting message cost.
	ProtocolRetransmit ProtocolVariant = "retransmit"
	// ProtocolRelaxed accepts certificates with at least MinVotes of the q
	// per-voter consistency checks passing (k-of-q verification).
	ProtocolRelaxed ProtocolVariant = "relaxed"
)

// Protocol selects the protocol variant a scenario runs and its parameters.
// The zero value (and the explicit baseline) is Algorithm 1 unchanged. Like
// Dynamics, each variant accepts exactly its own parameters; stray fields are
// rejected so the canonical wire form stays unique.
type Protocol struct {
	// Variant names the protocol variant; "" defaults to baseline.
	Variant ProtocolVariant
	// TTL is the total number of times each vote is sent under
	// ProtocolRetransmit, in [2, core.MaxVotingPasses]; 0 defaults to 2.
	// The schedule grows to (3+TTL)·q+1 rounds. ProtocolRetransmit only.
	TTL int
	// MinVotes is the per-voter check threshold under ProtocolRelaxed, in
	// [1, q]; it must be explicit — a default would silently weaken
	// verification. ProtocolRelaxed only.
	MinVotes int
}

// Active reports whether p names a real variant (anything but the zero value
// and the explicit baseline).
func (p Protocol) Active() bool { return p.Variant != "" && p.Variant != ProtocolBaseline }

// FaultModel describes which nodes misbehave and how, plus the link-level
// loss model.
type FaultModel struct {
	Kind FaultKind
	// Alpha is the fraction of nodes affected, in [0, 1).
	Alpha float64
	// Round is the crash onset (FaultCrash only).
	Round int
	// Period is the up/down interval in rounds (FaultChurn only).
	Period int
	// Drop is the probabilistic message-loss rate, orthogonal to Kind: every
	// message crossing a link (push, pull query, pull reply) is lost
	// independently with this probability, generalizing per-node quiescence
	// to unreliable links. Senders still pay the communication cost, and a
	// puller cannot distinguish a lost exchange from a quiescent target. The
	// loss stream is derived from the run seed, so lossy runs reproduce.
	// Must be in [0, 1); 0 disables loss. Not supported in coalition runs.
	Drop float64
}

// Scenario is a complete declarative description of one experiment setting.
// The zero value of every optional field means "the default": uniform
// colors, the protocol's default γ, the complete graph, no faults, the
// synchronous scheduler, no coalition.
type Scenario struct {
	// Name identifies the scenario in the registry and in reports.
	Name string
	// N is the network size.
	N int
	// Colors is |Σ|; 0 defaults to 2. Ignored (forced to N) under
	// ColorsLeader.
	Colors int
	// ColorInit selects the initial-opinion distribution; "" = uniform.
	ColorInit ColorInit
	// SplitFraction is the color-0 share under ColorsSplit (default 0.5).
	SplitFraction float64
	// ZipfS is the Zipf exponent under ColorsZipf (default 1.0).
	ZipfS float64
	// Gamma is the phase-length constant γ; 0 defaults to core.DefaultGamma
	// (core.DefaultAsyncGamma under the async scheduler).
	Gamma float64
	// Topology names the communication graph: "complete" (default), "ring",
	// "regular<d>" (random d-regular, e.g. "regular8"), or "er" (Erdős–Rényi
	// with average degree 16). Seeded graphs are built from Seed once and
	// shared by every trial.
	Topology string
	// Dynamics optionally turns the communication graph into a per-round
	// evolving process (see Dynamics); the zero value keeps the static
	// Topology. Only supported under the sync scheduler, without coalitions.
	Dynamics Dynamics
	// Protocol optionally selects a protocol variant that trades the binding
	// declarations of Algorithm 1 for delivery robustness (see Protocol); the
	// zero value runs the paper's protocol unchanged. Only supported under
	// the sync scheduler, without coalitions — faults, loss, and dynamics
	// are allowed (tolerating them is the point of the variants).
	Protocol Protocol
	// Fault is the fault model; the zero value means fault-free.
	Fault FaultModel
	// Scheduler is sync or async; "" = sync.
	Scheduler SchedulerKind
	// Coalition is the number of deviating agents; 0 = cooperative run.
	Coalition int
	// Deviation names the coalition's strategy (rational.DeviationByName);
	// required when Coalition > 0.
	Deviation string
	// Seed drives all randomness; trial seeds are split off it.
	Seed uint64
	// Workers is the trial-level parallelism for Runner.Trials and the
	// engine Act-phase parallelism for single runs (0 = GOMAXPROCS).
	Workers int
	// MaxTicks bounds async runs; 0 = the adaptation's default budget.
	MaxTicks int
}

// WithDefaults returns a copy of s with every zero optional field replaced
// by its documented default. Runner normalizes scenarios on construction;
// this is exposed so callers can inspect the effective setting.
func (s Scenario) WithDefaults() Scenario {
	if s.Scheduler == "" {
		s.Scheduler = SchedulerSync
	}
	if s.ColorInit == "" {
		s.ColorInit = ColorsUniform
	}
	if s.ColorInit == ColorsSplit && s.SplitFraction == 0 {
		s.SplitFraction = 0.5
	}
	if s.ColorInit == ColorsZipf && s.ZipfS == 0 {
		s.ZipfS = 1.0
	}
	if s.ColorInit == ColorsLeader {
		s.Colors = s.N
	}
	if s.Colors == 0 {
		s.Colors = 2
	}
	if s.Gamma == 0 {
		if s.Scheduler == SchedulerAsync {
			s.Gamma = core.DefaultAsyncGamma
		} else {
			s.Gamma = core.DefaultGamma
		}
	}
	if s.Topology == "" {
		s.Topology = "complete"
	}
	if s.Dynamics.Kind == "" {
		s.Dynamics.Kind = DynamicsNone
	}
	if s.Protocol.Variant == "" {
		s.Protocol.Variant = ProtocolBaseline
	}
	if s.Protocol.Variant == ProtocolRetransmit && s.Protocol.TTL == 0 {
		s.Protocol.TTL = 2
	}
	if s.Fault.Kind == "" {
		s.Fault.Kind = FaultNone
	}
	return s
}

// Validate checks a (defaults-applied) scenario for consistency. It returns
// the first problem found, phrased for CLI users.
func (s Scenario) Validate() error {
	s = s.WithDefaults()
	if s.N < 2 || s.N > core.MaxN {
		return fmt.Errorf("scenario: n = %d out of range [2, %d]", s.N, core.MaxN)
	}
	if s.Colors < 1 || s.Colors > s.N {
		return fmt.Errorf("scenario: colors = %d out of range [1, n]", s.Colors)
	}
	switch s.ColorInit {
	case ColorsUniform, ColorsLeader:
	case ColorsSplit:
		if s.SplitFraction < 0 || s.SplitFraction > 1 {
			return fmt.Errorf("scenario: split fraction %v outside [0, 1]", s.SplitFraction)
		}
		if s.Colors < 2 {
			return fmt.Errorf("scenario: split colors need |Σ| >= 2")
		}
	case ColorsZipf:
		if s.ZipfS < 0 {
			return fmt.Errorf("scenario: zipf exponent %v must be >= 0", s.ZipfS)
		}
	default:
		return fmt.Errorf("scenario: unknown color init %q (uniform|split|zipf|leader)", s.ColorInit)
	}
	if s.Gamma <= 0 {
		return fmt.Errorf("scenario: gamma = %v must be positive", s.Gamma)
	}
	if _, err := parseTopology(s.Topology, s.N); err != nil {
		return err
	}
	// Each dynamics kind accepts exactly its own parameters. Stray fields are
	// a silent misconfiguration (a document that forgot "kind" — or set a
	// rate the chosen process ignores — would otherwise run with them
	// silently dropped), and rejecting them keeps the canonical form unique:
	// the wire codec round-trips every accepted document bit for bit.
	strayDegree := func(kind string) error {
		if s.Dynamics.Degree != 0 || s.Dynamics.Jitter != 0 {
			return fmt.Errorf("scenario: degree/jitter parameters belong to d-regular or geometric dynamics, not %s", kind)
		}
		return nil
	}
	switch s.Dynamics.Kind {
	case DynamicsNone:
		if s.Dynamics.Birth != 0 || s.Dynamics.Death != 0 || s.Dynamics.Beta != 0 {
			return fmt.Errorf("scenario: dynamics parameters need a kind (edge-markovian|rewire-ring|d-regular|geometric)")
		}
		if err := strayDegree("an inactive dynamics"); err != nil {
			return err
		}
	case DynamicsEdgeMarkovian:
		if err := strayDegree("edge-markovian"); err != nil {
			return err
		}
		if s.Dynamics.Birth < 0 || s.Dynamics.Birth > 1 {
			return fmt.Errorf("scenario: edge birth probability %v outside [0, 1]", s.Dynamics.Birth)
		}
		if s.Dynamics.Death < 0 || s.Dynamics.Death > 1 {
			return fmt.Errorf("scenario: edge death probability %v outside [0, 1]", s.Dynamics.Death)
		}
		if s.Dynamics.Birth+s.Dynamics.Death == 0 {
			return fmt.Errorf("scenario: edge-markovian dynamics need birth + death > 0")
		}
		if s.N > topo.MaxDynamicN {
			return fmt.Errorf("scenario: edge-markovian dynamics support n up to %d; n = %d exceeds it",
				topo.MaxDynamicN, s.N)
		}
		// Admission is keyed on the memory that will actually exist: the
		// process is O(present edges) everywhere (hash-set membership plus
		// incremental adjacency — no per-pair state), and the stationary law
		// keeps ≈ π·n(n−1)/2 edges alive at once.
		pi := s.Dynamics.Birth / (s.Dynamics.Birth + s.Dynamics.Death)
		if expected := pi * float64(s.N) * float64(s.N-1) / 2; expected > topo.MaxDynamicEdges {
			return fmt.Errorf("scenario: edge-markovian dynamics expect %.0f simultaneous edges (stationary density %.3g at n = %d), over the %d-edge adjacency budget — lower birth/(birth+death) or n",
				expected, pi, s.N, topo.MaxDynamicEdges)
		}
	case DynamicsRewireRing:
		if err := strayDegree("rewire-ring"); err != nil {
			return err
		}
		if s.Dynamics.Beta < 0 || s.Dynamics.Beta > 1 {
			return fmt.Errorf("scenario: rewiring probability %v outside [0, 1]", s.Dynamics.Beta)
		}
		if s.N < 3 {
			return fmt.Errorf("scenario: rewire-ring dynamics need n >= 3")
		}
	case DynamicsDRegular:
		if s.Dynamics.Birth != 0 || s.Dynamics.Death != 0 || s.Dynamics.Beta != 0 || s.Dynamics.Jitter != 0 {
			return fmt.Errorf("scenario: d-regular dynamics take only a degree")
		}
		if s.N < 3 {
			return fmt.Errorf("scenario: d-regular dynamics need n >= 3")
		}
		if s.Dynamics.Degree < 2 || s.Dynamics.Degree >= s.N {
			return fmt.Errorf("scenario: d-regular degree %d outside [2, n)", s.Dynamics.Degree)
		}
		if s.N*s.Dynamics.Degree%2 != 0 {
			return fmt.Errorf("scenario: d-regular dynamics need n·degree even (n = %d, degree = %d)",
				s.N, s.Dynamics.Degree)
		}
		if edges := s.N * s.Dynamics.Degree / 2; edges > topo.MaxDynamicEdges {
			return fmt.Errorf("scenario: d-regular dynamics hold %d simultaneous edges, over the %d-edge adjacency budget — lower degree or n",
				edges, topo.MaxDynamicEdges)
		}
	case DynamicsGeometric:
		if s.Dynamics.Birth != 0 || s.Dynamics.Death != 0 || s.Dynamics.Beta != 0 {
			return fmt.Errorf("scenario: geometric dynamics take only a degree and a jitter")
		}
		if s.Dynamics.Degree < 1 {
			return fmt.Errorf("scenario: geometric degree %d must be >= 1", s.Dynamics.Degree)
		}
		if s.Dynamics.Jitter < 0 || s.Dynamics.Jitter > 1 {
			return fmt.Errorf("scenario: geometric jitter %v outside [0, 1]", s.Dynamics.Jitter)
		}
		// The cell grid needs at least 4 cells per side, i.e. connection
		// radius √(degree/(π·n)) ≤ ¼ — denser settings approach the complete
		// graph, which the static topologies already cover.
		if radius := math.Sqrt(float64(s.Dynamics.Degree) / (math.Pi * float64(s.N))); radius > 0.25 {
			return fmt.Errorf("scenario: geometric degree %d at n = %d gives connection radius %.3f > 0.25 — raise n or lower degree",
				s.Dynamics.Degree, s.N, radius)
		}
		if edges := s.N * s.Dynamics.Degree / 2; edges > topo.MaxDynamicEdges {
			return fmt.Errorf("scenario: geometric dynamics expect %d simultaneous edges, over the %d-edge adjacency budget — lower degree or n",
				edges, topo.MaxDynamicEdges)
		}
	default:
		return fmt.Errorf("scenario: unknown dynamics kind %q (none|edge-markovian|rewire-ring|d-regular|geometric)",
			s.Dynamics.Kind)
	}
	if s.Dynamics.Active() {
		if s.Topology != "complete" {
			return fmt.Errorf("scenario: dynamics %q defines its own graph process; leave topology at its default",
				s.Dynamics.Kind)
		}
		if s.Scheduler == SchedulerAsync {
			return fmt.Errorf("scenario: dynamic topologies are only supported under the sync scheduler")
		}
		if s.Coalition > 0 {
			return fmt.Errorf("scenario: coalition runs do not support dynamic topologies")
		}
	}
	// Like dynamics, each protocol variant accepts exactly its own
	// parameters; a stray TTL or min-votes is a silent misconfiguration
	// (most likely a document that named the wrong variant) and rejecting it
	// keeps the canonical wire form unique.
	switch s.Protocol.Variant {
	case ProtocolBaseline:
		if s.Protocol.TTL != 0 || s.Protocol.MinVotes != 0 {
			return fmt.Errorf("scenario: protocol parameters need a variant (live-retarget|retransmit|relaxed)")
		}
	case ProtocolLiveRetarget:
		if s.Protocol.TTL != 0 || s.Protocol.MinVotes != 0 {
			return fmt.Errorf("scenario: the live-retarget protocol takes no parameters")
		}
	case ProtocolRetransmit:
		if s.Protocol.MinVotes != 0 {
			return fmt.Errorf("scenario: min-votes belongs to the relaxed protocol, not retransmit")
		}
		if s.Protocol.TTL < 2 || s.Protocol.TTL > core.MaxVotingPasses {
			return fmt.Errorf("scenario: retransmit ttl %d outside [2, %d]", s.Protocol.TTL, core.MaxVotingPasses)
		}
	case ProtocolRelaxed:
		if s.Protocol.TTL != 0 {
			return fmt.Errorf("scenario: ttl belongs to the retransmit protocol, not relaxed")
		}
		// q depends on n and γ, both already validated above.
		p, err := core.NewParams(s.N, s.Colors, s.Gamma)
		if err != nil {
			return err
		}
		if s.Protocol.MinVotes < 1 || s.Protocol.MinVotes > p.Q {
			return fmt.Errorf("scenario: relaxed min-votes %d outside [1, q] (q = %d at n = %d, gamma = %g)",
				s.Protocol.MinVotes, p.Q, s.N, s.Gamma)
		}
	default:
		return fmt.Errorf("scenario: unknown protocol variant %q (baseline|live-retarget|retransmit|relaxed)",
			s.Protocol.Variant)
	}
	if s.Protocol.Active() {
		if s.Scheduler == SchedulerAsync {
			return fmt.Errorf("scenario: protocol variants are only supported under the sync scheduler")
		}
		if s.Coalition > 0 {
			return fmt.Errorf("scenario: coalition runs do not support protocol variants")
		}
	}
	switch s.Fault.Kind {
	case FaultNone:
	case FaultPermanent, FaultCrash, FaultChurn:
		if s.Fault.Alpha < 0 || s.Fault.Alpha >= 1 {
			return fmt.Errorf("scenario: fault fraction %v outside [0, 1)", s.Fault.Alpha)
		}
		if s.Fault.Kind == FaultCrash && s.Fault.Round < 0 {
			return fmt.Errorf("scenario: crash round %d must be >= 0", s.Fault.Round)
		}
		if s.Fault.Kind == FaultChurn && s.Fault.Period < 1 {
			return fmt.Errorf("scenario: churn period %d must be >= 1", s.Fault.Period)
		}
	default:
		return fmt.Errorf("scenario: unknown fault kind %q (none|permanent|crash|churn)", s.Fault.Kind)
	}
	if s.Fault.Drop < 0 || s.Fault.Drop >= 1 {
		return fmt.Errorf("scenario: drop probability %v outside [0, 1)", s.Fault.Drop)
	}
	switch s.Scheduler {
	case SchedulerSync:
	case SchedulerAsync:
		if s.Coalition > 0 {
			return fmt.Errorf("scenario: coalitions are only supported under the sync scheduler")
		}
	default:
		return fmt.Errorf("scenario: unknown scheduler %q (sync|async)", s.Scheduler)
	}
	if s.Coalition > 0 {
		if s.Deviation == "" {
			return fmt.Errorf("scenario: coalition of %d needs a deviation name", s.Coalition)
		}
		if s.Fault.Kind == FaultCrash || s.Fault.Kind == FaultChurn {
			return fmt.Errorf("scenario: coalition runs support only permanent faults")
		}
		if s.Fault.Drop > 0 {
			return fmt.Errorf("scenario: coalition runs do not support message loss")
		}
		active := s.N - permanentFaultCount(s)
		if s.Coalition > active-1 {
			return fmt.Errorf("scenario: coalition of %d leaves no honest active agent (active = %d)",
				s.Coalition, active)
		}
	}
	if s.Coalition < 0 {
		return fmt.Errorf("scenario: coalition size %d must be >= 0", s.Coalition)
	}
	if s.MaxTicks < 0 {
		return fmt.Errorf("scenario: max ticks %d must be >= 0", s.MaxTicks)
	}
	return nil
}

func permanentFaultCount(s Scenario) int {
	if s.Fault.Kind != FaultPermanent {
		return 0
	}
	return int(s.Fault.Alpha * float64(s.N))
}

// Params derives the protocol parameters of the (defaults-applied) scenario,
// including the protocol variant — the single point where the scenario axis
// reaches the executor.
func (s Scenario) Params() (core.Params, error) {
	s = s.WithDefaults()
	p, err := core.NewParams(s.N, s.Colors, s.Gamma)
	if err != nil {
		return p, err
	}
	return p.WithProtocol(core.Protocol{
		Variant:  core.ProtocolVariant(s.Protocol.Variant),
		Passes:   s.Protocol.TTL,
		MinVotes: s.Protocol.MinVotes,
	})
}

// colorStreamSalt separates the Zipf color stream from every other use of
// the scenario seed.
const colorStreamSalt = 0xc0104a11

// BuildColors materializes the initial color vector of the
// (defaults-applied) scenario. Zipf draws come from a private stream derived
// from Seed, so they never perturb the execution's randomness.
func (s Scenario) BuildColors() []core.Color {
	s = s.WithDefaults()
	switch s.ColorInit {
	case ColorsSplit:
		return core.SplitColors(s.N, s.SplitFraction)
	case ColorsLeader:
		return core.LeaderElectionColors(s.N)
	case ColorsZipf:
		return core.ZipfColors(s.N, s.Colors, s.ZipfS, rng.New(rng.Mix64(s.Seed, colorStreamSalt)))
	default:
		return core.UniformColors(s.N, s.Colors)
	}
}

// BuildDynamics materializes a fresh, unstarted graph process for the
// (defaults-applied) scenario, or nil for static topologies. Unlike the
// static graph, a process is per-run mutable state and must never be shared:
// each run needs its own instance, which core.Run starts from the run seed
// (so two runs at one seed see bit-identical edge sets round for round).
func (s Scenario) BuildDynamics() topo.Dynamic {
	s = s.WithDefaults()
	switch s.Dynamics.Kind {
	case DynamicsEdgeMarkovian:
		return topo.NewEdgeMarkovian(s.N, s.Dynamics.Birth, s.Dynamics.Death)
	case DynamicsRewireRing:
		return topo.NewRewireRing(s.N, s.Dynamics.Beta)
	case DynamicsDRegular:
		return topo.NewDRegular(s.N, s.Dynamics.Degree)
	case DynamicsGeometric:
		return topo.NewGeometric(s.N, float64(s.Dynamics.Degree), s.Dynamics.Jitter)
	default:
		return nil
	}
}

// BuildTopology materializes the static communication graph of the
// (defaults-applied) scenario. Seeded graph families use Seed, so every
// trial of one scenario shares one graph. When the scenario has active
// Dynamics the static graph is only the nominal substrate — runs replace it
// with a per-run BuildDynamics process.
func (s Scenario) BuildTopology() (topo.Topology, error) {
	s = s.WithDefaults()
	build, err := parseTopology(s.Topology, s.N)
	if err != nil {
		return nil, err
	}
	return build(s.Seed), nil
}

// parseTopology validates a topology name against n and returns the builder,
// without constructing the graph — Validate uses it so that validation stays
// O(1) even for large seeded graph families.
func parseTopology(name string, n int) (func(seed uint64) topo.Topology, error) {
	switch low := strings.ToLower(name); {
	case low == "complete" || low == "":
		return func(uint64) topo.Topology { return topo.NewComplete(n) }, nil
	case low == "ring":
		if n < 3 {
			return nil, fmt.Errorf("scenario: ring topology needs n >= 3")
		}
		return func(uint64) topo.Topology { return topo.NewRing(n) }, nil
	case low == "er":
		return func(seed uint64) topo.Topology {
			return topo.NewErdosRenyi(n, 16.0/float64(n), seed)
		}, nil
	case strings.HasPrefix(low, "regular"):
		d, err := strconv.Atoi(strings.TrimPrefix(low, "regular"))
		if err != nil || d < 2 {
			return nil, fmt.Errorf("scenario: bad regular topology %q (want e.g. regular8 with degree >= 2)", name)
		}
		if n < 3 {
			return nil, fmt.Errorf("scenario: regular topology needs n >= 3")
		}
		return func(seed uint64) topo.Topology { return topo.NewRandomRegular(n, d, seed) }, nil
	default:
		return nil, fmt.Errorf("scenario: unknown topology %q (complete|ring|regular<d>|er)", name)
	}
}

// BuildFaults materializes the fault model of the (defaults-applied)
// scenario as the three pieces the protocol runners consume: the permanent
// round-0 mask (agentless nodes), the dynamic quiescence schedule, and the
// mask of agent-bearing nodes the schedule affects (excluded from agreement
// like faulty ones).
func (s Scenario) BuildFaults() (faulty []bool, sched gossip.FaultSchedule, unreliable []bool) {
	s = s.WithDefaults()
	if s.Fault.Kind == FaultNone || s.Fault.Alpha == 0 {
		return nil, nil, nil
	}
	mask := core.WorstCaseFaults(s.N, s.Fault.Alpha)
	switch s.Fault.Kind {
	case FaultPermanent:
		return mask, nil, nil
	case FaultCrash:
		return nil, gossip.CrashSchedule{Mask: mask, Round: s.Fault.Round}, mask
	case FaultChurn:
		return nil, gossip.ChurnSchedule{Mask: mask, Period: s.Fault.Period}, mask
	default:
		return nil, nil, nil
	}
}

// CoalitionMembers spreads the (defaults-applied) scenario's coalition
// deterministically across the active (non-faulty) ID space, matching the
// experiment harness's historical placement.
func (s Scenario) CoalitionMembers() []int {
	s = s.WithDefaults()
	if s.Coalition <= 0 {
		return nil
	}
	faulty, _, _ := s.BuildFaults()
	var active []int
	for i := 0; i < s.N; i++ {
		if faulty == nil || !faulty[i] {
			active = append(active, i)
		}
	}
	t := s.Coalition
	if t > len(active) {
		t = len(active)
	}
	members := make([]int, 0, t)
	seen := map[int]bool{}
	for i := 0; i < t; i++ {
		id := active[(i*len(active))/t]
		if !seen[id] {
			seen[id] = true
			members = append(members, id)
		}
	}
	return members
}
