// Package scenario is the declarative experiment layer of the repository:
// one Scenario value names everything that defines a protocol execution —
// network size, initial-opinion distribution, phase-length constant,
// topology, fault model, scheduler (synchronous rounds or sequential ticks),
// and an optional rational coalition — and one Runner executes it, for a
// single seed or as a seed-batched Monte-Carlo experiment, through a single
// code path shared by every CLI, example, and experiment table.
//
// The point of the indirection is that new experiment axes become one-field
// additions instead of new wiring: crash-at-round-r faults, periodic churn,
// and Zipf-skewed initial opinions are all expressed here and flow through
// the same unified gossip executor as the paper's original grid.
package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/rng"
	"repro/internal/topo"
)

// SchedulerKind selects the execution model.
type SchedulerKind string

// The two schedulers of the paper: synchronous rounds (Section 2) and the
// sequential one-agent-per-tick model (Section 4, open problem 2).
const (
	SchedulerSync  SchedulerKind = "sync"
	SchedulerAsync SchedulerKind = "async"
)

// ColorInit names the initial-opinion distribution.
type ColorInit string

// Supported initial color distributions.
const (
	// ColorsUniform assigns colors round-robin (core.UniformColors).
	ColorsUniform ColorInit = "uniform"
	// ColorsSplit gives the first ⌊SplitFraction·n⌋ nodes color 0, the rest
	// color 1 (core.SplitColors).
	ColorsSplit ColorInit = "split"
	// ColorsZipf draws each node's color from a Zipf law with exponent ZipfS
	// (core.ZipfColors) — the skewed-opinion workload.
	ColorsZipf ColorInit = "zipf"
	// ColorsLeader gives every node its own color, turning fair consensus
	// into fair leader election (core.LeaderElectionColors).
	ColorsLeader ColorInit = "leader"
)

// FaultKind names the fault model.
type FaultKind string

// Supported fault models.
const (
	FaultNone FaultKind = "none"
	// FaultPermanent is the paper's model: the first ⌊α·n⌋ nodes are
	// quiescent from round 0 and never get agents.
	FaultPermanent FaultKind = "permanent"
	// FaultCrash runs the first ⌊α·n⌋ nodes honestly until round Round, then
	// silences them permanently. The protocol's binding declarations make the
	// onset round decisive: a crash before the Voting phase behaves like a
	// permanent fault and is tolerated, a crash after Voting is harmless, but
	// a crash *during* Voting leaves declared votes unfulfilled and every
	// verifier holding the crashed node's declaration rejects the winning
	// certificate (VerifyCertificate's missing-vote direction) — success
	// collapses. That brittleness window is the measurement this axis exists
	// for.
	FaultCrash FaultKind = "crash"
	// FaultChurn alternates the first ⌊α·n⌋ nodes between Period rounds up
	// and Period rounds down, staggered by node ID. Nodes down during their
	// own Voting rounds leave declared votes unfulfilled, so churn spanning
	// the Voting phase drives the failure rate toward 1 (see FaultCrash) —
	// the honest-but-intermittent adversary is this protocol's worst case.
	FaultChurn FaultKind = "churn"
)

// FaultModel describes which nodes misbehave and how, plus the link-level
// loss model.
type FaultModel struct {
	Kind FaultKind
	// Alpha is the fraction of nodes affected, in [0, 1).
	Alpha float64
	// Round is the crash onset (FaultCrash only).
	Round int
	// Period is the up/down interval in rounds (FaultChurn only).
	Period int
	// Drop is the probabilistic message-loss rate, orthogonal to Kind: every
	// message crossing a link (push, pull query, pull reply) is lost
	// independently with this probability, generalizing per-node quiescence
	// to unreliable links. Senders still pay the communication cost, and a
	// puller cannot distinguish a lost exchange from a quiescent target. The
	// loss stream is derived from the run seed, so lossy runs reproduce.
	// Must be in [0, 1); 0 disables loss. Not supported in coalition runs.
	Drop float64
}

// Scenario is a complete declarative description of one experiment setting.
// The zero value of every optional field means "the default": uniform
// colors, the protocol's default γ, the complete graph, no faults, the
// synchronous scheduler, no coalition.
type Scenario struct {
	// Name identifies the scenario in the registry and in reports.
	Name string
	// N is the network size.
	N int
	// Colors is |Σ|; 0 defaults to 2. Ignored (forced to N) under
	// ColorsLeader.
	Colors int
	// ColorInit selects the initial-opinion distribution; "" = uniform.
	ColorInit ColorInit
	// SplitFraction is the color-0 share under ColorsSplit (default 0.5).
	SplitFraction float64
	// ZipfS is the Zipf exponent under ColorsZipf (default 1.0).
	ZipfS float64
	// Gamma is the phase-length constant γ; 0 defaults to core.DefaultGamma
	// (core.DefaultAsyncGamma under the async scheduler).
	Gamma float64
	// Topology names the communication graph: "complete" (default), "ring",
	// "regular<d>" (random d-regular, e.g. "regular8"), or "er" (Erdős–Rényi
	// with average degree 16). Seeded graphs are built from Seed once and
	// shared by every trial.
	Topology string
	// Fault is the fault model; the zero value means fault-free.
	Fault FaultModel
	// Scheduler is sync or async; "" = sync.
	Scheduler SchedulerKind
	// Coalition is the number of deviating agents; 0 = cooperative run.
	Coalition int
	// Deviation names the coalition's strategy (rational.DeviationByName);
	// required when Coalition > 0.
	Deviation string
	// Seed drives all randomness; trial seeds are split off it.
	Seed uint64
	// Workers is the trial-level parallelism for Runner.Trials and the
	// engine Act-phase parallelism for single runs (0 = GOMAXPROCS).
	Workers int
	// MaxTicks bounds async runs; 0 = the adaptation's default budget.
	MaxTicks int
}

// WithDefaults returns a copy of s with every zero optional field replaced
// by its documented default. Runner normalizes scenarios on construction;
// this is exposed so callers can inspect the effective setting.
func (s Scenario) WithDefaults() Scenario {
	if s.Scheduler == "" {
		s.Scheduler = SchedulerSync
	}
	if s.ColorInit == "" {
		s.ColorInit = ColorsUniform
	}
	if s.ColorInit == ColorsSplit && s.SplitFraction == 0 {
		s.SplitFraction = 0.5
	}
	if s.ColorInit == ColorsZipf && s.ZipfS == 0 {
		s.ZipfS = 1.0
	}
	if s.ColorInit == ColorsLeader {
		s.Colors = s.N
	}
	if s.Colors == 0 {
		s.Colors = 2
	}
	if s.Gamma == 0 {
		if s.Scheduler == SchedulerAsync {
			s.Gamma = core.DefaultAsyncGamma
		} else {
			s.Gamma = core.DefaultGamma
		}
	}
	if s.Topology == "" {
		s.Topology = "complete"
	}
	if s.Fault.Kind == "" {
		s.Fault.Kind = FaultNone
	}
	return s
}

// Validate checks a (defaults-applied) scenario for consistency. It returns
// the first problem found, phrased for CLI users.
func (s Scenario) Validate() error {
	s = s.WithDefaults()
	if s.N < 2 || s.N > core.MaxN {
		return fmt.Errorf("scenario: n = %d out of range [2, %d]", s.N, core.MaxN)
	}
	if s.Colors < 1 || s.Colors > s.N {
		return fmt.Errorf("scenario: colors = %d out of range [1, n]", s.Colors)
	}
	switch s.ColorInit {
	case ColorsUniform, ColorsLeader:
	case ColorsSplit:
		if s.SplitFraction < 0 || s.SplitFraction > 1 {
			return fmt.Errorf("scenario: split fraction %v outside [0, 1]", s.SplitFraction)
		}
		if s.Colors < 2 {
			return fmt.Errorf("scenario: split colors need |Σ| >= 2")
		}
	case ColorsZipf:
		if s.ZipfS < 0 {
			return fmt.Errorf("scenario: zipf exponent %v must be >= 0", s.ZipfS)
		}
	default:
		return fmt.Errorf("scenario: unknown color init %q (uniform|split|zipf|leader)", s.ColorInit)
	}
	if s.Gamma <= 0 {
		return fmt.Errorf("scenario: gamma = %v must be positive", s.Gamma)
	}
	if _, err := parseTopology(s.Topology, s.N); err != nil {
		return err
	}
	switch s.Fault.Kind {
	case FaultNone:
	case FaultPermanent, FaultCrash, FaultChurn:
		if s.Fault.Alpha < 0 || s.Fault.Alpha >= 1 {
			return fmt.Errorf("scenario: fault fraction %v outside [0, 1)", s.Fault.Alpha)
		}
		if s.Fault.Kind == FaultCrash && s.Fault.Round < 0 {
			return fmt.Errorf("scenario: crash round %d must be >= 0", s.Fault.Round)
		}
		if s.Fault.Kind == FaultChurn && s.Fault.Period < 1 {
			return fmt.Errorf("scenario: churn period %d must be >= 1", s.Fault.Period)
		}
	default:
		return fmt.Errorf("scenario: unknown fault kind %q (none|permanent|crash|churn)", s.Fault.Kind)
	}
	if s.Fault.Drop < 0 || s.Fault.Drop >= 1 {
		return fmt.Errorf("scenario: drop probability %v outside [0, 1)", s.Fault.Drop)
	}
	switch s.Scheduler {
	case SchedulerSync:
	case SchedulerAsync:
		if s.Coalition > 0 {
			return fmt.Errorf("scenario: coalitions are only supported under the sync scheduler")
		}
	default:
		return fmt.Errorf("scenario: unknown scheduler %q (sync|async)", s.Scheduler)
	}
	if s.Coalition > 0 {
		if s.Deviation == "" {
			return fmt.Errorf("scenario: coalition of %d needs a deviation name", s.Coalition)
		}
		if s.Fault.Kind == FaultCrash || s.Fault.Kind == FaultChurn {
			return fmt.Errorf("scenario: coalition runs support only permanent faults")
		}
		if s.Fault.Drop > 0 {
			return fmt.Errorf("scenario: coalition runs do not support message loss")
		}
		active := s.N - permanentFaultCount(s)
		if s.Coalition > active-1 {
			return fmt.Errorf("scenario: coalition of %d leaves no honest active agent (active = %d)",
				s.Coalition, active)
		}
	}
	if s.Coalition < 0 {
		return fmt.Errorf("scenario: coalition size %d must be >= 0", s.Coalition)
	}
	if s.MaxTicks < 0 {
		return fmt.Errorf("scenario: max ticks %d must be >= 0", s.MaxTicks)
	}
	return nil
}

func permanentFaultCount(s Scenario) int {
	if s.Fault.Kind != FaultPermanent {
		return 0
	}
	return int(s.Fault.Alpha * float64(s.N))
}

// Params derives the protocol parameters of the (defaults-applied) scenario.
func (s Scenario) Params() (core.Params, error) {
	s = s.WithDefaults()
	return core.NewParams(s.N, s.Colors, s.Gamma)
}

// colorStreamSalt separates the Zipf color stream from every other use of
// the scenario seed.
const colorStreamSalt = 0xc0104a11

// BuildColors materializes the initial color vector of the
// (defaults-applied) scenario. Zipf draws come from a private stream derived
// from Seed, so they never perturb the execution's randomness.
func (s Scenario) BuildColors() []core.Color {
	s = s.WithDefaults()
	switch s.ColorInit {
	case ColorsSplit:
		return core.SplitColors(s.N, s.SplitFraction)
	case ColorsLeader:
		return core.LeaderElectionColors(s.N)
	case ColorsZipf:
		return core.ZipfColors(s.N, s.Colors, s.ZipfS, rng.New(rng.Mix64(s.Seed, colorStreamSalt)))
	default:
		return core.UniformColors(s.N, s.Colors)
	}
}

// BuildTopology materializes the communication graph of the
// (defaults-applied) scenario. Seeded graph families use Seed, so every
// trial of one scenario shares one graph.
func (s Scenario) BuildTopology() (topo.Topology, error) {
	s = s.WithDefaults()
	build, err := parseTopology(s.Topology, s.N)
	if err != nil {
		return nil, err
	}
	return build(s.Seed), nil
}

// parseTopology validates a topology name against n and returns the builder,
// without constructing the graph — Validate uses it so that validation stays
// O(1) even for large seeded graph families.
func parseTopology(name string, n int) (func(seed uint64) topo.Topology, error) {
	switch low := strings.ToLower(name); {
	case low == "complete" || low == "":
		return func(uint64) topo.Topology { return topo.NewComplete(n) }, nil
	case low == "ring":
		if n < 3 {
			return nil, fmt.Errorf("scenario: ring topology needs n >= 3")
		}
		return func(uint64) topo.Topology { return topo.NewRing(n) }, nil
	case low == "er":
		return func(seed uint64) topo.Topology {
			return topo.NewErdosRenyi(n, 16.0/float64(n), seed)
		}, nil
	case strings.HasPrefix(low, "regular"):
		d, err := strconv.Atoi(strings.TrimPrefix(low, "regular"))
		if err != nil || d < 2 {
			return nil, fmt.Errorf("scenario: bad regular topology %q (want e.g. regular8 with degree >= 2)", name)
		}
		if n < 3 {
			return nil, fmt.Errorf("scenario: regular topology needs n >= 3")
		}
		return func(seed uint64) topo.Topology { return topo.NewRandomRegular(n, d, seed) }, nil
	default:
		return nil, fmt.Errorf("scenario: unknown topology %q (complete|ring|regular<d>|er)", name)
	}
}

// BuildFaults materializes the fault model of the (defaults-applied)
// scenario as the three pieces the protocol runners consume: the permanent
// round-0 mask (agentless nodes), the dynamic quiescence schedule, and the
// mask of agent-bearing nodes the schedule affects (excluded from agreement
// like faulty ones).
func (s Scenario) BuildFaults() (faulty []bool, sched gossip.FaultSchedule, unreliable []bool) {
	s = s.WithDefaults()
	if s.Fault.Kind == FaultNone || s.Fault.Alpha == 0 {
		return nil, nil, nil
	}
	mask := core.WorstCaseFaults(s.N, s.Fault.Alpha)
	switch s.Fault.Kind {
	case FaultPermanent:
		return mask, nil, nil
	case FaultCrash:
		return nil, gossip.CrashSchedule{Mask: mask, Round: s.Fault.Round}, mask
	case FaultChurn:
		return nil, gossip.ChurnSchedule{Mask: mask, Period: s.Fault.Period}, mask
	default:
		return nil, nil, nil
	}
}

// CoalitionMembers spreads the (defaults-applied) scenario's coalition
// deterministically across the active (non-faulty) ID space, matching the
// experiment harness's historical placement.
func (s Scenario) CoalitionMembers() []int {
	s = s.WithDefaults()
	if s.Coalition <= 0 {
		return nil
	}
	faulty, _, _ := s.BuildFaults()
	var active []int
	for i := 0; i < s.N; i++ {
		if faulty == nil || !faulty[i] {
			active = append(active, i)
		}
	}
	t := s.Coalition
	if t > len(active) {
		t = len(active)
	}
	members := make([]int, 0, t)
	seen := map[int]bool{}
	for i := 0; i < t; i++ {
		id := active[(i*len(active))/t]
		if !seen[id] {
			seen[id] = true
			members = append(members, id)
		}
	}
	return members
}
