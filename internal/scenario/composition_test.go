package scenario

import (
	"testing"

	"repro/internal/trace"
)

// TestVariantDynamicsValidationParity pins the Protocol × Dynamics
// composition rule: the dynamics axis validates identically under every
// protocol variant. A dynamics configuration the baseline accepts must be
// accepted by all three variants, and one it rejects must be rejected by all
// three — no variant quietly gains or loses a graph process.
func TestVariantDynamicsValidationParity(t *testing.T) {
	variants := []struct {
		label string
		proto Protocol
	}{
		{"live-retarget", Protocol{Variant: ProtocolLiveRetarget}},
		{"retransmit", Protocol{Variant: ProtocolRetransmit, TTL: 3}},
		{"relaxed", Protocol{Variant: ProtocolRelaxed, MinVotes: 10}},
	}
	dynamics := []struct {
		label string
		shape func(*Scenario)
	}{
		{"static", func(*Scenario) {}},
		{"edge-markovian", func(s *Scenario) {
			s.Dynamics = Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.02, Death: 0.1}
		}},
		{"rewire-ring", func(s *Scenario) {
			s.Dynamics = Dynamics{Kind: DynamicsRewireRing, Beta: 0.1}
		}},
		{"d-regular", func(s *Scenario) {
			s.Dynamics = Dynamics{Kind: DynamicsDRegular, Degree: 8}
		}},
		{"geometric", func(s *Scenario) {
			s.Dynamics = Dynamics{Kind: DynamicsGeometric, Degree: 8, Jitter: 0.01}
		}},
		{"reject: unknown kind", func(s *Scenario) {
			s.Dynamics = Dynamics{Kind: "wormhole"}
		}},
		{"reject: dynamics + explicit topology", func(s *Scenario) {
			s.Dynamics = Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.02, Death: 0.1}
			s.Topology = "ring"
		}},
		{"reject: edge-markovian without rates", func(s *Scenario) {
			s.Dynamics = Dynamics{Kind: DynamicsEdgeMarkovian}
		}},
		{"reject: stray degree on edge-markovian", func(s *Scenario) {
			s.Dynamics = Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.02, Death: 0.1, Degree: 8}
		}},
	}
	for _, d := range dynamics {
		base := Scenario{N: 64, Colors: 2, Seed: 1}
		d.shape(&base)
		baseErr := base.WithDefaults().Validate()
		for _, v := range variants {
			s := Scenario{N: 64, Colors: 2, Seed: 1, Protocol: v.proto}
			d.shape(&s)
			err := s.WithDefaults().Validate()
			if (err == nil) != (baseErr == nil) {
				t.Errorf("%s × %s: variant verdict %v, baseline verdict %v — dynamics must validate identically under every variant",
					v.label, d.label, err, baseErr)
			}
		}
	}
}

// TestCompositeTranscriptDeterministicAcrossWorkers pins worker-count
// determinism for the registered variant-on-dynamic-graph composite: the
// relaxed verifier on the jittering geometric torus replays byte-identically
// regardless of Act-phase parallelism, the same contract
// TestProtocolTranscriptDeterministicAcrossWorkers pins for the simpler
// variant scenarios.
func TestCompositeTranscriptDeterministicAcrossWorkers(t *testing.T) {
	base, ok := Lookup("relaxed-geometric")
	if !ok {
		t.Fatal("relaxed-geometric builtin not registered")
	}
	transcript := func(workers int) []trace.Event {
		s := base
		s.Workers = workers
		r := MustRunner(s)
		sink := &trace.Memory{}
		r.Trace = sink
		if _, err := r.RunSeed(17); err != nil {
			t.Fatal(err)
		}
		return sink.Events()
	}
	want := transcript(1)
	if len(want) == 0 {
		t.Fatal("empty transcript")
	}
	for _, workers := range []int{0, 2, 4} {
		got := transcript(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: transcript has %d events, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: event %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}
