package scenario

import (
	"testing"

	"repro/internal/trace"
)

func TestRunnerSyncCooperative(t *testing.T) {
	r := MustRunner(Scenario{N: 64, Colors: 2, Seed: 5, Workers: 1})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Failed {
		t.Fatal("cooperative fault-free run failed")
	}
	if !res.HasGood || !res.Good.Good() {
		t.Fatalf("expected a good execution, got %+v", res.Good)
	}
	if res.Metrics.Messages == 0 || res.Rounds == 0 {
		t.Fatalf("metrics not collected: %+v", res.Metrics)
	}
	if len(res.Agents) != 64 {
		t.Fatalf("agents = %d", len(res.Agents))
	}
}

func TestRunnerAsync(t *testing.T) {
	r := MustRunner(Scenario{N: 32, Colors: 2, Scheduler: SchedulerAsync, Seed: 5})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HasGood {
		t.Fatal("async run claims a good-execution check")
	}
	if res.Rounds == 0 || res.Metrics.Messages == 0 {
		t.Fatalf("async run recorded nothing: rounds=%d metrics=%+v", res.Rounds, res.Metrics)
	}
}

func TestRunnerGame(t *testing.T) {
	r := MustRunner(Scenario{N: 64, Colors: 2, Coalition: 3, Deviation: "min-k-liar", Seed: 5})
	if len(r.CoalitionMembers()) != 3 {
		t.Fatalf("members = %v", r.CoalitionMembers())
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The min-k liar forges an inconsistent certificate; honest agents must
	// not crown its color (the run fails or an honest color wins).
	if res.CoalitionColorWon {
		t.Fatal("min-k liar won against Protocol P")
	}
}

func TestRunnerCrashStillSucceeds(t *testing.T) {
	// A quarter of the network crashing after Commitment leaves Ω(n) active
	// agents, so the protocol should still reach consensus among the rest.
	ok := 0
	r := MustRunner(Scenario{N: 96, Colors: 2, Seed: 6, Workers: 1,
		Fault: FaultModel{Kind: FaultCrash, Alpha: 0.25, Round: 40}})
	results, err := r.Trials(20)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if !res.Outcome.Failed {
			ok++
		}
	}
	if ok < 15 {
		t.Fatalf("crash-fault success %d/20, want >= 15", ok)
	}
}

func TestRunnerChurnRuns(t *testing.T) {
	r := MustRunner(Scenario{N: 96, Colors: 2, Seed: 6, Workers: 1, Gamma: 4,
		Fault: FaultModel{Kind: FaultChurn, Alpha: 0.2, Period: 6}})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages == 0 {
		t.Fatal("churn run recorded no traffic")
	}
}

func TestTrialsDeterministicAcrossWorkers(t *testing.T) {
	base := Scenario{N: 48, Colors: 2, Seed: 11}
	s1 := base
	s1.Workers = 1
	s4 := base
	s4.Workers = 4
	r1, err := MustRunner(s1).Trials(8)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := MustRunner(s4).Trials(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].Outcome != r4[i].Outcome || r1[i].Metrics != r4[i].Metrics {
			t.Fatalf("trial %d differs across worker counts", i)
		}
	}
}

// TestDynamicTranscriptDeterministicAcrossWorkers pins the strongest form of
// dynamics determinism: not just equal Results but byte-identical run
// transcripts — every push, pull, and topology-drop event in the same order —
// regardless of the engine's Act-phase parallelism. Delivery (and therefore
// trace emission and graph advancement) stays on one goroutine; only the
// decision phase fans out.
func TestDynamicTranscriptDeterministicAcrossWorkers(t *testing.T) {
	for _, base := range dynamicScenarios() {
		transcript := func(workers int) []trace.Event {
			s := base
			s.Workers = workers
			r := MustRunner(s)
			sink := &trace.Memory{}
			r.Trace = sink
			if _, err := r.RunSeed(99); err != nil {
				t.Fatal(err)
			}
			return sink.Events()
		}
		want := transcript(1)
		if len(want) == 0 {
			t.Fatalf("%s: empty transcript", base.Name)
		}
		drops := 0
		for _, ev := range want {
			if ev.Kind == trace.KindDrop {
				drops++
			}
		}
		if drops == 0 {
			t.Fatalf("%s: no topology drops — the graph is not actually churning under the run", base.Name)
		}
		for _, workers := range []int{0, 2, 4} {
			got := transcript(workers)
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: transcript has %d events, want %d", base.Name, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: event %d = %+v, want %+v", base.Name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTrialSeedsDisjointAcrossScenarios(t *testing.T) {
	// The collision-prone pattern this replaces (seed+n+α·1e6) repeated
	// across sweep cells; split-derived seeds must not.
	a := MustRunner(Scenario{N: 48, Seed: 1}).TrialSeeds(64)
	b := MustRunner(Scenario{N: 48, Seed: 2}).TrialSeeds(64)
	seen := map[uint64]bool{}
	for _, s := range append(a, b...) {
		if seen[s] {
			t.Fatalf("seed %d repeats across scenarios", s)
		}
		seen[s] = true
	}
}

func TestRunnerTopologyAndSeedStability(t *testing.T) {
	r := MustRunner(Scenario{N: 64, Topology: "regular8", Seed: 3})
	if r.Topology().Degree(0) != 8 {
		t.Fatalf("degree = %d", r.Topology().Degree(0))
	}
	// Same scenario, same seed: identical outcome.
	x, err := r.RunSeed(42)
	if err != nil {
		t.Fatal(err)
	}
	y, err := MustRunner(Scenario{N: 64, Topology: "regular8", Seed: 3}).RunSeed(42)
	if err != nil {
		t.Fatal(err)
	}
	if x.Outcome != y.Outcome || x.Metrics != y.Metrics {
		t.Fatal("same scenario+seed produced different runs")
	}
}

func TestEquilibriumConfigFromScenario(t *testing.T) {
	r := MustRunner(Scenario{N: 64, Coalition: 2, Deviation: "cert-forger", Seed: 5})
	cfg, err := r.EquilibriumConfig(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Deviation.Name() != "cert-forger" || len(cfg.Coalition) != 2 || cfg.Trials != 10 {
		t.Fatalf("config malformed: %+v", cfg)
	}
	if _, err := MustRunner(Scenario{N: 64}).EquilibriumConfig(10, 1); err == nil {
		t.Fatal("cooperative scenario produced an equilibrium config")
	}
}
