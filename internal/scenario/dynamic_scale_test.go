package scenario

import (
	"testing"

	"repro/internal/topo"
)

// scale16k is the churn-at-scale operating point the sparse engine exists
// for: n = 16384 (4× the dense engine's hard cap), stationary degree 64
// (π ≈ 0.0039 — the sparse regime), death = 0.2%/round, just inside the
// sub-0.5% band E12 studies. Expected present edges ≈ 524k, far under the
// MaxDynamicEdges admission budget.
func scale16k() Scenario {
	const n, deg, death = 16384, 64, 0.002
	pi := float64(deg) / float64(n-1)
	return Scenario{
		N: n, Colors: 2, Seed: 9, Workers: 1,
		Dynamics: Dynamics{
			Kind:  DynamicsEdgeMarkovian,
			Birth: death * pi / (1 - pi),
			Death: death,
		},
	}
}

// TestDynamicScenarioAtScaleValidates pins the raised admission bounds: the
// n = 16384 sparse operating point is admissible, the same point was over
// the dense engine's n ≤ 4096 cap, and the two remaining bounds (bitset size
// and expected-edge budget) still reject what they should.
func TestDynamicScenarioAtScaleValidates(t *testing.T) {
	s := scale16k()
	if err := s.Validate(); err != nil {
		t.Fatalf("n = %d sparse scenario rejected: %v", s.N, err)
	}
	if s.N <= 4096 {
		t.Fatalf("scale scenario n = %d does not exceed the old dense-engine cap", s.N)
	}
	dense := s
	dense.Dynamics.Birth, dense.Dynamics.Death = 0.1, 0.1 // π = 1/2: 67M expected edges
	if err := dense.Validate(); err == nil {
		t.Fatal("dense n = 16384 scenario passed the expected-edge budget")
	}
	huge := s
	huge.N = topo.MaxDynamicN + 1
	if err := huge.Validate(); err == nil {
		t.Fatalf("n = %d scenario passed the bitset bound", huge.N)
	}
}

// TestDynamicScenarioAtScaleCompletesBatch runs a real trial batch at
// n = 16384 end to end — the workload the Θ(flips) engine unlocks (the
// dense engine would pay ~1.3·10⁸ Bernoulli draws plus a full CSR rebuild
// per round here, ~10¹⁰ operations per trial). Success is not asserted
// (0.2%/round churn is past the protocol's tolerance at this size); what is
// pinned is that validation, pooled execution, and result plumbing all hold
// at a size the subsystem previously rejected.
func TestDynamicScenarioAtScaleCompletesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second n = 16384 batch skipped in -short mode")
	}
	r := MustRunner(scale16k())
	buf := make([]Result, 3)
	if err := r.TrialsInto(buf); err != nil {
		t.Fatal(err)
	}
	for i, res := range buf {
		if res.Rounds <= 0 {
			t.Errorf("trial %d: no rounds recorded", i)
		}
		if res.Metrics.Messages <= 0 {
			t.Errorf("trial %d: no messages recorded", i)
		}
	}
}
