package scenario

import (
	"testing"

	"repro/internal/topo"
)

// scale16k is the churn-at-scale operating point the sparse engine exists
// for: n = 16384 (4× the dense engine's hard cap), stationary degree 64
// (π ≈ 0.0039 — the sparse regime), death = 0.2%/round, just inside the
// sub-0.5% band E12 studies. Expected present edges ≈ 524k, far under the
// MaxDynamicEdges admission budget.
func scale16k() Scenario {
	const n, deg, death = 16384, 64, 0.002
	pi := float64(deg) / float64(n-1)
	return Scenario{
		N: n, Colors: 2, Seed: 9, Workers: 1,
		Dynamics: Dynamics{
			Kind:  DynamicsEdgeMarkovian,
			Birth: death * pi / (1 - pi),
			Death: death,
		},
	}
}

// TestDynamicScenarioAtScaleValidates pins the raised admission bounds: the
// n = 16384 sparse operating point is admissible, the same point was over
// the dense engine's n ≤ 4096 cap, and the remaining bounds (the global size
// cap and the expected-edge budget) still reject what they should.
func TestDynamicScenarioAtScaleValidates(t *testing.T) {
	s := scale16k()
	if err := s.Validate(); err != nil {
		t.Fatalf("n = %d sparse scenario rejected: %v", s.N, err)
	}
	if s.N <= 4096 {
		t.Fatalf("scale scenario n = %d does not exceed the old dense-engine cap", s.N)
	}
	dense := s
	dense.Dynamics.Birth, dense.Dynamics.Death = 0.3, 0.2 // π = 0.6: 80M expected edges
	if err := dense.Validate(); err == nil {
		t.Fatal("dense n = 16384 scenario passed the expected-edge budget")
	}
	huge := s
	huge.N = topo.MaxDynamicN + 1
	if err := huge.Validate(); err == nil {
		t.Fatalf("n = %d scenario passed the size cap", huge.N)
	}
}

// scale100k is the million-node refactor's admission showcase: n = 10⁵ —
// 3× the presence bitset's old hard cap, where that bitset alone would have
// been n²/8 = 1.25 GB — at stationary degree 64 (3.2M expected edges, well
// inside the MaxDynamicEdges budget now that admission is keyed on edges).
func scale100k() Scenario {
	const n, deg, death = 100_000, 64, 0.002
	pi := float64(deg) / float64(n-1)
	return Scenario{
		N: n, Colors: 2, Seed: 11, Workers: 1,
		Dynamics: Dynamics{
			Kind:  DynamicsEdgeMarkovian,
			Birth: death * pi / (1 - pi),
			Death: death,
		},
	}
}

// TestDynamicScenarioLargeN is the large-n smoke: the n = 10⁵ operating
// point validates — it sat far beyond the old n ≤ 32768 cap — and a small
// batch completes end to end through pooled execution. The new implicit
// generators validate at the same size. Success is not asserted (0.2%/round
// churn is past the protocol's tolerance here); completing with plumbing
// intact is the claim.
func TestDynamicScenarioLargeN(t *testing.T) {
	s := scale100k()
	if err := s.Validate(); err != nil {
		t.Fatalf("n = %d sparse scenario rejected: %v", s.N, err)
	}
	for _, dyn := range []Dynamics{
		{Kind: DynamicsDRegular, Degree: 8},
		{Kind: DynamicsGeometric, Degree: 8, Jitter: 0.001},
	} {
		alt := s
		alt.Dynamics = dyn
		if err := alt.Validate(); err != nil {
			t.Fatalf("n = %d %s scenario rejected: %v", s.N, dyn.Kind, err)
		}
	}
	if testing.Short() {
		t.Skip("n = 10⁵ trial batch skipped in -short mode")
	}
	r := MustRunner(s)
	buf := make([]Result, 2)
	if err := r.TrialsInto(buf); err != nil {
		t.Fatal(err)
	}
	for i, res := range buf {
		if res.Rounds <= 0 {
			t.Errorf("trial %d: no rounds recorded", i)
		}
		if res.Metrics.Messages <= 0 {
			t.Errorf("trial %d: no messages recorded", i)
		}
	}
}

// TestDynamicScenarioAtScaleCompletesBatch runs a real trial batch at
// n = 16384 end to end — the workload the Θ(flips) engine unlocks (the
// dense engine would pay ~1.3·10⁸ Bernoulli draws plus a full CSR rebuild
// per round here, ~10¹⁰ operations per trial). Success is not asserted
// (0.2%/round churn is past the protocol's tolerance at this size); what is
// pinned is that validation, pooled execution, and result plumbing all hold
// at a size the subsystem previously rejected.
func TestDynamicScenarioAtScaleCompletesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second n = 16384 batch skipped in -short mode")
	}
	r := MustRunner(scale16k())
	buf := make([]Result, 3)
	if err := r.TrialsInto(buf); err != nil {
		t.Fatal(err)
	}
	for i, res := range buf {
		if res.Rounds <= 0 {
			t.Errorf("trial %d: no rounds recorded", i)
		}
		if res.Metrics.Messages <= 0 {
			t.Errorf("trial %d: no messages recorded", i)
		}
	}
}
