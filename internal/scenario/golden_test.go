package scenario_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"repro/internal/scenario"
	"repro/internal/trace"
)

// The fixtures under testdata/ were captured from the pre-refactor engines
// (the seed tree's separate Engine.Step and AsyncEngine.Tick
// implementations) with byte-exact trace and counter output. These tests
// pin the unified executor — and the whole scenario → core → gossip stack
// above it — to that behaviour: any drift in delivery order, fault
// silencing, accounting, or trace emission shows up as a byte diff.
//
// Regenerate with GOLDEN_UPDATE=1 only when a semantic change is intended.

func syncGoldenBytes(t *testing.T) []byte {
	t.Helper()
	r := scenario.MustRunner(scenario.Scenario{
		N: 24, Colors: 3, Gamma: 2,
		Fault:   scenario.FaultModel{Kind: scenario.FaultPermanent, Alpha: 0.25},
		Seed:    12345,
		Workers: 1,
	})
	var buf bytes.Buffer
	r.Trace = &trace.Writer{W: &buf}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "rounds=%d outcome=%s\n", res.Rounds, res.Outcome)
	fmt.Fprintf(&buf, "metrics=%+v\n", res.Metrics)
	fmt.Fprintf(&buf, "good=%v minVotes=%d maxVotes=%d distinctK=%v certsAgree=%v\n",
		res.Good.Good(), res.Good.MinVotes, res.Good.MaxVotes, res.Good.DistinctK, res.Good.CertsAgree)
	return buf.Bytes()
}

func asyncGoldenBytes(t *testing.T) []byte {
	t.Helper()
	r := scenario.MustRunner(scenario.Scenario{
		N: 16, Colors: 2,
		Scheduler: scenario.SchedulerAsync,
		Seed:      777,
	})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return []byte(fmt.Sprintf("ticks=%d outcome=%s\n", res.Rounds, res.Outcome))
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: unified executor output diverged from the pre-refactor fixture\n got %d bytes, want %d bytes",
			path, len(got), len(want))
	}
}

func TestGoldenSyncExecutorMatchesPreRefactorEngine(t *testing.T) {
	checkGolden(t, "testdata/golden_sync.txt", syncGoldenBytes(t))
}

func TestGoldenAsyncExecutorMatchesPreRefactorEngine(t *testing.T) {
	checkGolden(t, "testdata/golden_async.txt", asyncGoldenBytes(t))
}
