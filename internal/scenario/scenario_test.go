package scenario

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestWithDefaults(t *testing.T) {
	s := Scenario{N: 64}.WithDefaults()
	if s.Scheduler != SchedulerSync || s.ColorInit != ColorsUniform ||
		s.Colors != 2 || s.Gamma != core.DefaultGamma ||
		s.Topology != "complete" || s.Fault.Kind != FaultNone {
		t.Fatalf("unexpected defaults: %+v", s)
	}
	a := Scenario{N: 64, Scheduler: SchedulerAsync}.WithDefaults()
	if a.Gamma != core.DefaultAsyncGamma {
		t.Fatalf("async default gamma = %v", a.Gamma)
	}
	l := Scenario{N: 48, ColorInit: ColorsLeader}.WithDefaults()
	if l.Colors != 48 {
		t.Fatalf("leader colors = %d, want n", l.Colors)
	}
	sp := Scenario{N: 64, ColorInit: ColorsSplit}.WithDefaults()
	if sp.SplitFraction != 0.5 {
		t.Fatalf("split default fraction = %v", sp.SplitFraction)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
		want string
	}{
		{"tiny n", Scenario{N: 1}, "out of range"},
		{"too many colors", Scenario{N: 4, Colors: 9}, "colors"},
		{"bad color init", Scenario{N: 64, ColorInit: "rainbow"}, "color init"},
		{"bad split", Scenario{N: 64, ColorInit: ColorsSplit, SplitFraction: 1.5}, "split fraction"},
		{"bad zipf", Scenario{N: 64, ColorInit: ColorsZipf, ZipfS: -1}, "zipf"},
		{"negative gamma", Scenario{N: 64, Gamma: -2}, "gamma"},
		{"bad topology", Scenario{N: 64, Topology: "torus"}, "topology"},
		{"bad fault kind", Scenario{N: 64, Fault: FaultModel{Kind: "meteor"}}, "fault kind"},
		{"bad alpha", Scenario{N: 64, Fault: FaultModel{Kind: FaultPermanent, Alpha: 1}}, "fault fraction"},
		{"bad churn period", Scenario{N: 64, Fault: FaultModel{Kind: FaultChurn, Alpha: 0.2}}, "churn period"},
		{"bad crash round", Scenario{N: 64, Fault: FaultModel{Kind: FaultCrash, Alpha: 0.2, Round: -1}}, "crash round"},
		{"bad scheduler", Scenario{N: 64, Scheduler: "warp"}, "scheduler"},
		{"async coalition", Scenario{N: 64, Scheduler: SchedulerAsync, Coalition: 2, Deviation: "min-k-liar"}, "sync"},
		{"coalition without deviation", Scenario{N: 64, Coalition: 2}, "deviation"},
		{"coalition with churn", Scenario{N: 64, Coalition: 2, Deviation: "min-k-liar",
			Fault: FaultModel{Kind: FaultChurn, Alpha: 0.2, Period: 4}}, "permanent"},
		{"oversized coalition", Scenario{N: 8, Coalition: 8, Deviation: "min-k-liar"}, "honest"},
		{"negative max ticks", Scenario{N: 64, MaxTicks: -1}, "max ticks"},
		{"bad dynamics kind", Scenario{N: 64,
			Dynamics: Dynamics{Kind: "teleport"}}, "dynamics kind"},
		{"dynamics rates without kind", Scenario{N: 64,
			Dynamics: Dynamics{Birth: 0.5, Death: 0.2}}, "need a kind"},
		{"dynamics beta under none", Scenario{N: 64,
			Dynamics: Dynamics{Kind: DynamicsNone, Beta: 0.3}}, "need a kind"},
		{"bad edge birth", Scenario{N: 64,
			Dynamics: Dynamics{Kind: DynamicsEdgeMarkovian, Birth: -0.1, Death: 0.5}}, "birth"},
		{"bad edge death", Scenario{N: 64,
			Dynamics: Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.1, Death: 1.5}}, "death"},
		{"frozen edge chain", Scenario{N: 64,
			Dynamics: Dynamics{Kind: DynamicsEdgeMarkovian}}, "birth + death"},
		{"edge-markovian too dense", Scenario{N: 32768,
			Dynamics: Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.1, Death: 0.1}}, "adjacency budget"},
		{"degree under edge-markovian", Scenario{N: 64,
			Dynamics: Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.1, Death: 0.1, Degree: 8}}, "degree/jitter"},
		{"jitter under none", Scenario{N: 64,
			Dynamics: Dynamics{Jitter: 0.1}}, "degree/jitter"},
		{"d-regular bad degree", Scenario{N: 64,
			Dynamics: Dynamics{Kind: DynamicsDRegular, Degree: 1}}, "outside [2, n)"},
		{"d-regular odd product", Scenario{N: 63,
			Dynamics: Dynamics{Kind: DynamicsDRegular, Degree: 3}}, "even"},
		{"d-regular stray rate", Scenario{N: 64,
			Dynamics: Dynamics{Kind: DynamicsDRegular, Degree: 4, Birth: 0.1}}, "only a degree"},
		{"d-regular over budget", Scenario{N: 1 << 20,
			Dynamics: Dynamics{Kind: DynamicsDRegular, Degree: 130}}, "adjacency budget"},
		{"geometric zero degree", Scenario{N: 64,
			Dynamics: Dynamics{Kind: DynamicsGeometric}}, "degree"},
		{"geometric bad jitter", Scenario{N: 64,
			Dynamics: Dynamics{Kind: DynamicsGeometric, Degree: 4, Jitter: 2}}, "jitter"},
		{"geometric too dense", Scenario{N: 64,
			Dynamics: Dynamics{Kind: DynamicsGeometric, Degree: 63}}, "radius"},
		{"geometric stray rate", Scenario{N: 64,
			Dynamics: Dynamics{Kind: DynamicsGeometric, Degree: 4, Beta: 0.1}}, "only a degree"},
		{"bad rewire beta", Scenario{N: 64,
			Dynamics: Dynamics{Kind: DynamicsRewireRing, Beta: 2}}, "rewiring probability"},
		{"dynamics with static topology", Scenario{N: 64, Topology: "ring",
			Dynamics: Dynamics{Kind: DynamicsRewireRing, Beta: 0.2}}, "leave topology"},
		{"dynamics under async", Scenario{N: 64, Scheduler: SchedulerAsync,
			Dynamics: Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.1, Death: 0.1}}, "sync scheduler"},
		{"dynamics with coalition", Scenario{N: 64, Coalition: 2, Deviation: "min-k-liar",
			Dynamics: Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.1, Death: 0.1}}, "coalition"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := (Scenario{N: 64}).Validate(); err != nil {
		t.Fatalf("minimal scenario invalid: %v", err)
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	s := Scenario{Name: "test-roundtrip", N: 32, Colors: 2, Seed: 9}
	if err := Register(s); err != nil {
		t.Fatal(err)
	}
	got, ok := Lookup("test-roundtrip")
	if !ok {
		t.Fatal("registered scenario not found")
	}
	// Register stores the defaults-applied scenario, so Lookup hands back the
	// fully effective setting — not the sparse literal that was registered.
	if got != s.WithDefaults() {
		t.Fatalf("lookup = %+v, want %+v", got, s.WithDefaults())
	}
	if err := Register(s); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration: %v", err)
	}
	if err := Register(Scenario{N: 32}); err == nil {
		t.Fatal("nameless registration should fail")
	}
	if err := Register(Scenario{Name: "test-bad", N: 1}); err == nil {
		t.Fatal("invalid scenario registration should fail")
	}
	found := false
	for _, name := range Names() {
		if name == "test-roundtrip" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names() misses registered scenario")
	}
}

func TestBuiltinsAreRunnable(t *testing.T) {
	for _, name := range Names() {
		if strings.HasPrefix(name, "test-") {
			continue
		}
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("builtin %q vanished", name)
		}
		if _, err := NewRunner(s); err != nil {
			t.Errorf("builtin %q does not construct: %v", name, err)
		}
	}
}

func TestBuildColorsDistributions(t *testing.T) {
	u := Scenario{N: 10, Colors: 2}.BuildColors()
	if len(u) != 10 || u[0] != 0 || u[1] != 1 {
		t.Fatalf("uniform colors = %v", u)
	}
	sp := Scenario{N: 10, ColorInit: ColorsSplit, SplitFraction: 0.7}.BuildColors()
	zeros := 0
	for _, c := range sp {
		if c == 0 {
			zeros++
		}
	}
	if zeros != 7 {
		t.Fatalf("split 0.7 gave %d zeros", zeros)
	}
	z1 := Scenario{N: 400, Colors: 4, ColorInit: ColorsZipf, ZipfS: 1.5, Seed: 3}.BuildColors()
	z2 := Scenario{N: 400, Colors: 4, ColorInit: ColorsZipf, ZipfS: 1.5, Seed: 3}.BuildColors()
	for i := range z1 {
		if z1[i] != z2[i] {
			t.Fatal("zipf colors not deterministic in the seed")
		}
	}
	counts := make([]int, 4)
	for _, c := range z1 {
		counts[c]++
	}
	if !(counts[0] > counts[1] && counts[1] > counts[3]) {
		t.Fatalf("zipf skew not monotone: %v", counts)
	}
}

func TestBuildFaultsShapes(t *testing.T) {
	f, sched, unrel := Scenario{N: 100}.BuildFaults()
	if f != nil || sched != nil || unrel != nil {
		t.Fatal("fault-free scenario built faults")
	}
	f, sched, unrel = Scenario{N: 100, Fault: FaultModel{Kind: FaultPermanent, Alpha: 0.25}}.BuildFaults()
	if sched != nil || unrel != nil || countTrue(f) != 25 {
		t.Fatalf("permanent: %v %v %v", countTrue(f), sched, unrel)
	}
	f, sched, unrel = Scenario{N: 100, Fault: FaultModel{Kind: FaultCrash, Alpha: 0.25, Round: 10}}.BuildFaults()
	if f != nil || sched == nil || countTrue(unrel) != 25 {
		t.Fatal("crash faults malformed")
	}
	if sched.Silent(9, 0) || !sched.Silent(10, 0) || sched.Silent(10, 99) {
		t.Fatal("crash schedule wrong onset")
	}
	f, sched, unrel = Scenario{N: 100, Fault: FaultModel{Kind: FaultChurn, Alpha: 0.2, Period: 4}}.BuildFaults()
	if f != nil || sched == nil || countTrue(unrel) != 20 {
		t.Fatal("churn faults malformed")
	}
	up, down := 0, 0
	for r := 0; r < 32; r++ {
		if sched.Silent(r, 0) {
			down++
		} else {
			up++
		}
	}
	if up != 16 || down != 16 {
		t.Fatalf("churn duty cycle %d up / %d down, want 16/16", up, down)
	}
}

func TestCoalitionMembersAvoidFaulty(t *testing.T) {
	s := Scenario{N: 100, Coalition: 5, Deviation: "min-k-liar",
		Fault: FaultModel{Kind: FaultPermanent, Alpha: 0.3}}
	faulty, _, _ := s.BuildFaults()
	members := s.CoalitionMembers()
	if len(members) != 5 {
		t.Fatalf("got %d members", len(members))
	}
	for _, m := range members {
		if faulty[m] {
			t.Fatalf("member %d is faulty", m)
		}
	}
}

func countTrue(xs []bool) int {
	n := 0
	for _, x := range xs {
		if x {
			n++
		}
	}
	return n
}
