package scenario

import (
	"testing"

	"repro/internal/trace"
)

// protocolScenarios are the variant settings the determinism tests sweep:
// one per variant, each paired with the adverse condition that exercises its
// distinctive code path — re-sampled targets under churn for live-retarget,
// redelivery and receiver dedup under loss for retransmit, the violation-
// counting verifier under loss for relaxed.
func protocolScenarios() []Scenario {
	return []Scenario{
		{Name: "lr", N: 48, Colors: 2, Seed: 31,
			Dynamics: Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.02, Death: 0.08},
			Protocol: Protocol{Variant: ProtocolLiveRetarget}},
		{Name: "rt", N: 48, Colors: 2, Seed: 37,
			Fault:    FaultModel{Drop: 0.05},
			Protocol: Protocol{Variant: ProtocolRetransmit, TTL: 3}},
		{Name: "rx", N: 48, Colors: 2, Seed: 41,
			Fault:    FaultModel{Drop: 0.05},
			Protocol: Protocol{Variant: ProtocolRelaxed, MinVotes: 12}},
	}
}

// TestProtocolTrialsDeterministicAcrossWorkers pins the batch-level
// determinism contract for every variant: results are identical no matter
// how trials are spread over workers. Live-retarget is the variant this
// guards hardest — its send-time target sampling runs in the parallel Act
// phase, so it must draw only from per-agent state.
func TestProtocolTrialsDeterministicAcrossWorkers(t *testing.T) {
	for _, base := range protocolScenarios() {
		want, err := MustRunner(base).Trials(12)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 4} {
			s := base
			s.Workers = workers
			got, err := MustRunner(s).Trials(12)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i].Outcome != want[i].Outcome || got[i].Metrics != want[i].Metrics ||
					got[i].Rounds != want[i].Rounds || got[i].Good != want[i].Good {
					t.Fatalf("%s workers=%d trial %d: variant batch diverged", base.Name, workers, i)
				}
			}
		}
	}
}

// TestProtocolTrialsMatchRunSeed pins that pooled variant batches are
// unobservable against the unpooled single-run path — in particular that the
// retransmit receiver's dedup set and the enlarged voting schedule reset
// cleanly between pooled trials.
func TestProtocolTrialsMatchRunSeed(t *testing.T) {
	for _, s := range protocolScenarios() {
		r := MustRunner(s)
		batch, err := r.Trials(8)
		if err != nil {
			t.Fatal(err)
		}
		for i, seed := range r.TrialSeeds(8) {
			single, err := MustRunner(s).RunSeed(seed)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i].Outcome != single.Outcome || batch[i].Metrics != single.Metrics ||
				batch[i].Rounds != single.Rounds || batch[i].Good != single.Good {
				t.Fatalf("%s trial %d: pooled variant result diverged from RunSeed", s.Name, i)
			}
		}
	}
}

// TestProtocolStreamMatchesTrials pins Stream ≡ Trials for every variant in
// every chunking, at a parallel worker count.
func TestProtocolStreamMatchesTrials(t *testing.T) {
	for _, base := range protocolScenarios() {
		s := base
		s.Workers = 3
		want, err := MustRunner(s).Trials(9)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 4, 9, 32} {
			next := 0
			err := MustRunner(s).Stream(StreamOptions{Trials: 9, Chunk: chunk},
				func(i int, res *Result) {
					if i != next {
						t.Fatalf("%s chunk %d: observed trial %d, want %d", s.Name, chunk, i, next)
					}
					next++
					if res.Outcome != want[i].Outcome || res.Metrics != want[i].Metrics {
						t.Fatalf("%s chunk %d trial %d: stream diverged from batch", s.Name, chunk, i)
					}
				})
			if err != nil {
				t.Fatal(err)
			}
			if next != 9 {
				t.Fatalf("%s chunk %d: observed %d trials, want 9", s.Name, chunk, next)
			}
		}
	}
}

// TestProtocolTranscriptDeterministicAcrossWorkers pins the strongest form
// of variant determinism: byte-identical run transcripts — every push, pull,
// and drop in the same order — regardless of Act-phase parallelism. For
// live-retarget this proves send-time target sampling is confined to the
// deterministic per-agent stream; for retransmit, that the redelivery rounds
// replay identically.
func TestProtocolTranscriptDeterministicAcrossWorkers(t *testing.T) {
	for _, base := range protocolScenarios() {
		transcript := func(workers int) []trace.Event {
			s := base
			s.Workers = workers
			r := MustRunner(s)
			sink := &trace.Memory{}
			r.Trace = sink
			if _, err := r.RunSeed(99); err != nil {
				t.Fatal(err)
			}
			return sink.Events()
		}
		want := transcript(1)
		if len(want) == 0 {
			t.Fatalf("%s: empty transcript", base.Name)
		}
		for _, workers := range []int{0, 2, 4} {
			got := transcript(workers)
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: transcript has %d events, want %d", base.Name, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: event %d = %+v, want %+v", base.Name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRetransmitTrialsAllocBudget pins the retransmit batch path to the same
// absolute allocation budget as the default hot path (TestTrialsAllocBudget):
// the extra TTL·q redelivery rounds reuse the preallocated vote messages and
// the dedup set is an amortized flat slice, so a warmed batch must not
// allocate per pass, per redelivery, or per dedup probe.
func TestRetransmitTrialsAllocBudget(t *testing.T) {
	r := MustRunner(Scenario{N: 256, Colors: 2, Seed: 1, Workers: 1,
		Fault:    FaultModel{Kind: FaultPermanent, Alpha: 0.3},
		Protocol: Protocol{Variant: ProtocolRetransmit, TTL: 3}})
	buf := make([]Result, 8)
	// Warm the worker pool (and each agent's dedup set high-water mark).
	if err := r.TrialsInto(buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if err := r.TrialsInto(buf); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 1024
	if allocs > budget {
		t.Fatalf("warmed 8-trial retransmit batch allocates %v objects, budget %d: a redelivery or dedup path is allocating per vote", allocs, budget)
	}
}
