package scenario

import (
	"testing"

	"repro/internal/metrics"
)

// The batched paths (Trials / TrialsInto / Stream) run over pooled per-worker
// state; these tests pin the contract that pooling must not be observable:
// same results as per-seed RunSeed, in any chunking, at any worker count.

func TestTrialsMatchesRunSeed(t *testing.T) {
	s := Scenario{N: 64, Colors: 2, Seed: 9, Workers: 2,
		Fault: FaultModel{Kind: FaultPermanent, Alpha: 0.25}}
	r := MustRunner(s)
	batch, err := r.Trials(10)
	if err != nil {
		t.Fatal(err)
	}
	seeds := r.TrialSeeds(10)
	for i, seed := range seeds {
		single, err := MustRunner(s).RunSeed(seed)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Outcome != single.Outcome || batch[i].Metrics != single.Metrics ||
			batch[i].Rounds != single.Rounds || batch[i].Good != single.Good {
			t.Fatalf("trial %d: pooled batch result diverged from RunSeed", i)
		}
		if batch[i].Agents != nil {
			t.Fatalf("trial %d: batched result leaked pooled agents", i)
		}
	}
}

func TestStreamMatchesTrials(t *testing.T) {
	s := Scenario{N: 48, Colors: 2, Seed: 4, Workers: 3}
	want, err := MustRunner(s).Trials(11)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 3, 11, 64} {
		next := 0
		err := MustRunner(s).Stream(StreamOptions{Trials: 11, Chunk: chunk},
			func(i int, res *Result) {
				if i != next {
					t.Fatalf("chunk %d: observed trial %d, want %d (order broken)", chunk, i, next)
				}
				next++
				if res.Outcome != want[i].Outcome || res.Metrics != want[i].Metrics {
					t.Fatalf("chunk %d trial %d: stream result diverged from batch", chunk, i)
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		if next != 11 {
			t.Fatalf("chunk %d: observed %d trials, want 11", chunk, next)
		}
	}
}

// TestStreamAggregateDeterministicAcrossWorkers is the sharded-counter
// determinism check: workers write disjoint metrics shards concurrently, and
// the merged Snapshot must be byte-identical for any worker count — and equal
// to the scalar sum of the per-trial snapshots.
func TestStreamAggregateDeterministicAcrossWorkers(t *testing.T) {
	base := Scenario{N: 64, Colors: 2, Seed: 21,
		Fault: FaultModel{Kind: FaultPermanent, Alpha: 0.25}}
	const trials = 24

	var wantAgg metrics.Counters
	results, err := MustRunner(base).Trials(trials)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		wantAgg.AddDelta(0, metrics.DeltaOf(res.Metrics))
	}
	want := wantAgg.Snapshot()

	for _, workers := range []int{1, 2, 4} {
		s := base
		s.Workers = workers
		var agg metrics.Counters
		err := MustRunner(s).Stream(StreamOptions{Trials: trials, Chunk: 8, Aggregate: &agg}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := agg.Snapshot(); got != want {
			t.Fatalf("workers=%d: aggregate snapshot %+v, want %+v", workers, got, want)
		}
	}
}

// dynamicScenarios are the graph-process settings the determinism tests
// sweep: one per process kind, small enough to run hundreds of trials.
func dynamicScenarios() []Scenario {
	return []Scenario{
		{Name: "em", N: 48, Colors: 2, Seed: 17,
			Dynamics: Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.02, Death: 0.08}},
		{Name: "rr", N: 48, Colors: 2, Seed: 23,
			Dynamics: Dynamics{Kind: DynamicsRewireRing, Beta: 0.3}},
	}
}

// TestDynamicTrialsDeterministicAcrossWorkers pins the dynamics determinism
// contract at the batch level: the per-run graph process is reseeded from
// each trial seed, so results are identical no matter how trials are spread
// over workers — including the pooled process instances being reused in
// different trial orders.
func TestDynamicTrialsDeterministicAcrossWorkers(t *testing.T) {
	for _, base := range dynamicScenarios() {
		want, err := MustRunner(base).Trials(12)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 4} {
			s := base
			s.Workers = workers
			got, err := MustRunner(s).Trials(12)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i].Outcome != want[i].Outcome || got[i].Metrics != want[i].Metrics ||
					got[i].Rounds != want[i].Rounds || got[i].Good != want[i].Good {
					t.Fatalf("%s workers=%d trial %d: dynamic batch diverged", base.Name, workers, i)
				}
			}
		}
	}
}

// TestDynamicTrialsMatchRunSeed pins that pooled dynamic batches (worker-
// held process instances, reused across trials) are unobservable against the
// unpooled single-run path (a fresh process per run).
func TestDynamicTrialsMatchRunSeed(t *testing.T) {
	for _, s := range dynamicScenarios() {
		r := MustRunner(s)
		batch, err := r.Trials(8)
		if err != nil {
			t.Fatal(err)
		}
		for i, seed := range r.TrialSeeds(8) {
			single, err := MustRunner(s).RunSeed(seed)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i].Outcome != single.Outcome || batch[i].Metrics != single.Metrics ||
				batch[i].Rounds != single.Rounds || batch[i].Good != single.Good {
				t.Fatalf("%s trial %d: pooled dynamic result diverged from RunSeed", s.Name, i)
			}
		}
	}
}

// TestDynamicStreamMatchesTrials pins Stream ≡ Trials for dynamic scenarios
// in every chunking, at a parallel worker count.
func TestDynamicStreamMatchesTrials(t *testing.T) {
	for _, base := range dynamicScenarios() {
		s := base
		s.Workers = 3
		want, err := MustRunner(s).Trials(9)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 4, 9, 32} {
			next := 0
			err := MustRunner(s).Stream(StreamOptions{Trials: 9, Chunk: chunk},
				func(i int, res *Result) {
					if i != next {
						t.Fatalf("%s chunk %d: observed trial %d, want %d", s.Name, chunk, i, next)
					}
					next++
					if res.Outcome != want[i].Outcome || res.Metrics != want[i].Metrics {
						t.Fatalf("%s chunk %d trial %d: stream diverged from batch", s.Name, chunk, i)
					}
				})
			if err != nil {
				t.Fatal(err)
			}
			if next != 9 {
				t.Fatalf("%s chunk %d: observed %d trials, want 9", s.Name, chunk, next)
			}
		}
	}
}

// TestDynamicTrialsAllocBudget pins the edge-Markovian batch path's own
// allocation budget, in absolute terms. An n=128 process runs ~85 rounds per
// trial over 8128 potential pairs, so per-edge (or even per-round) garbage
// would show up as thousands-to-millions of objects per batch; the pooled
// sparse process must instead contribute (nearly) nothing: a warmed batch
// measures ~50 allocations whatever the failure rate, and the budgets below
// leave room only for scheduling noise and a rare adjacency regrow.
//
// Historically the churny budget could only be pinned *relative* to an
// equally-failing static baseline, because every rejecting verifier in a
// failing run built a fmt.Errorf (~n error constructions per failed trial).
// Those paths now return pre-declared sentinels (core.ErrVoteMismatch and
// friends), so failing batches are as allocation-flat as succeeding ones and
// the budget is absolute.
func TestDynamicTrialsAllocBudget(t *testing.T) {
	measure := func(s Scenario) float64 {
		r := MustRunner(s)
		buf := make([]Result, 8)
		// Warm the worker pool (and, for the dynamic scenario, the process's
		// adjacency high-water mark).
		if err := r.TrialsInto(buf); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(3, func() {
			if err := r.TrialsInto(buf); err != nil {
				t.Fatal(err)
			}
		})
	}
	const budget = 256
	// Success mode first: death = 0 makes the stationary law π = 1, so the
	// process starts complete and stays complete — every run succeeds and the
	// Verification failure path never runs, yet Advance still executes its
	// per-round sampling work (every birth coin lands on a present pair and
	// is discarded). This isolates the graph process's own contribution.
	clean := measure(Scenario{N: 128, Colors: 2, Seed: 1, Workers: 1,
		Dynamics: Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.02, Death: 0}})
	if clean > budget {
		t.Fatalf("warmed 8-trial dynamic batch (success mode) allocates %v objects, budget %d: the graph process is allocating per round",
			clean, budget)
	}
	// Churn mode: ~270 edges flip per round and every run fails, driving each
	// verifier through the rejection paths — which must stay allocation-free.
	churny := measure(Scenario{N: 128, Colors: 2, Seed: 1, Workers: 1,
		Dynamics: Dynamics{Kind: DynamicsEdgeMarkovian, Birth: 0.02, Death: 0.1}})
	if churny > budget {
		t.Fatalf("warmed 8-trial churny batch allocates %v objects, budget %d: the graph process or the verify rejection path is allocating per round, per edge, or per rejection",
			churny, budget)
	}
	// The failing *static* path (5% message loss collapses success the same
	// way) is pinned by the same absolute budget: rejection cost must not
	// depend on why votes went missing.
	lossy := measure(Scenario{N: 128, Colors: 2, Seed: 1, Workers: 1,
		Fault: FaultModel{Drop: 0.05}})
	if lossy > budget {
		t.Fatalf("warmed 8-trial lossy batch allocates %v objects, budget %d: the verify rejection path is allocating per rejection",
			lossy, budget)
	}
}

func TestTrialsAllocBudget(t *testing.T) {
	r := MustRunner(Scenario{N: 256, Colors: 2, Seed: 1, Workers: 1,
		Fault: FaultModel{Kind: FaultPermanent, Alpha: 0.3}})
	buf := make([]Result, 8)
	// Warm the worker pool.
	if err := r.TrialsInto(buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if err := r.TrialsInto(buf); err != nil {
			t.Fatal(err)
		}
	})
	// One warmed 8-trial n=256 batch allocated ~444k objects before the
	// overhaul and ~100 after; the budget pins the new steady state with
	// headroom for map rehashing and Go-version variance.
	const budget = 1024
	if allocs > budget {
		t.Fatalf("warmed 8-trial batch allocates %v objects, budget %d", allocs, budget)
	}
}
