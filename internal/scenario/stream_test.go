package scenario

import (
	"testing"

	"repro/internal/metrics"
)

// The batched paths (Trials / TrialsInto / Stream) run over pooled per-worker
// state; these tests pin the contract that pooling must not be observable:
// same results as per-seed RunSeed, in any chunking, at any worker count.

func TestTrialsMatchesRunSeed(t *testing.T) {
	s := Scenario{N: 64, Colors: 2, Seed: 9, Workers: 2,
		Fault: FaultModel{Kind: FaultPermanent, Alpha: 0.25}}
	r := MustRunner(s)
	batch, err := r.Trials(10)
	if err != nil {
		t.Fatal(err)
	}
	seeds := r.TrialSeeds(10)
	for i, seed := range seeds {
		single, err := MustRunner(s).RunSeed(seed)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Outcome != single.Outcome || batch[i].Metrics != single.Metrics ||
			batch[i].Rounds != single.Rounds || batch[i].Good != single.Good {
			t.Fatalf("trial %d: pooled batch result diverged from RunSeed", i)
		}
		if batch[i].Agents != nil {
			t.Fatalf("trial %d: batched result leaked pooled agents", i)
		}
	}
}

func TestStreamMatchesTrials(t *testing.T) {
	s := Scenario{N: 48, Colors: 2, Seed: 4, Workers: 3}
	want, err := MustRunner(s).Trials(11)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 3, 11, 64} {
		next := 0
		err := MustRunner(s).Stream(StreamOptions{Trials: 11, Chunk: chunk},
			func(i int, res *Result) {
				if i != next {
					t.Fatalf("chunk %d: observed trial %d, want %d (order broken)", chunk, i, next)
				}
				next++
				if res.Outcome != want[i].Outcome || res.Metrics != want[i].Metrics {
					t.Fatalf("chunk %d trial %d: stream result diverged from batch", chunk, i)
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		if next != 11 {
			t.Fatalf("chunk %d: observed %d trials, want 11", chunk, next)
		}
	}
}

// TestStreamAggregateDeterministicAcrossWorkers is the sharded-counter
// determinism check: workers write disjoint metrics shards concurrently, and
// the merged Snapshot must be byte-identical for any worker count — and equal
// to the scalar sum of the per-trial snapshots.
func TestStreamAggregateDeterministicAcrossWorkers(t *testing.T) {
	base := Scenario{N: 64, Colors: 2, Seed: 21,
		Fault: FaultModel{Kind: FaultPermanent, Alpha: 0.25}}
	const trials = 24

	var wantAgg metrics.Counters
	results, err := MustRunner(base).Trials(trials)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		wantAgg.AddDelta(0, metrics.DeltaOf(res.Metrics))
	}
	want := wantAgg.Snapshot()

	for _, workers := range []int{1, 2, 4} {
		s := base
		s.Workers = workers
		var agg metrics.Counters
		err := MustRunner(s).Stream(StreamOptions{Trials: trials, Chunk: 8, Aggregate: &agg}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := agg.Snapshot(); got != want {
			t.Fatalf("workers=%d: aggregate snapshot %+v, want %+v", workers, got, want)
		}
	}
}

func TestTrialsAllocBudget(t *testing.T) {
	r := MustRunner(Scenario{N: 256, Colors: 2, Seed: 1, Workers: 1,
		Fault: FaultModel{Kind: FaultPermanent, Alpha: 0.3}})
	buf := make([]Result, 8)
	// Warm the worker pool.
	if err := r.TrialsInto(buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if err := r.TrialsInto(buf); err != nil {
			t.Fatal(err)
		}
	})
	// One warmed 8-trial n=256 batch allocated ~444k objects before the
	// overhaul and ~100 after; the budget pins the new steady state with
	// headroom for map rehashing and Go-version variance.
	const budget = 1024
	if allocs > budget {
		t.Fatalf("warmed 8-trial batch allocates %v objects, budget %d", allocs, budget)
	}
}
