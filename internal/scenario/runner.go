package scenario

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/rational"
	"repro/internal/rng"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Result is the outcome of one scenario execution, unified across the sync,
// async, and game paths.
type Result struct {
	Outcome core.Outcome
	// Rounds is the synchronous round count, or the tick count under the
	// async scheduler.
	Rounds  int
	Metrics metrics.Snapshot
	// Good is the Definition-2 check; valid only when HasGood (sync
	// cooperative runs).
	Good    core.GoodExecution
	HasGood bool
	// CoalitionColorWon reports whether a coalition member's color won
	// (game runs only).
	CoalitionColorWon bool
	// Agents exposes the honest agents of single sync runs (Run / RunSeed)
	// for deeper inspection. Batched paths (Trials, TrialsInto, Stream) run
	// over pooled per-worker state whose agents are recycled trial to trial,
	// so their Results never carry Agents — everything else in a Result is a
	// plain value and safe to retain.
	Agents []*core.Agent
}

// Runner executes a validated scenario. Construct with NewRunner; a Runner
// is immutable except for Trace, safe to reuse across seeds, and safe for
// concurrent batched calls (each batch worker draws a private run pool from
// the runner's free list).
type Runner struct {
	s       Scenario
	params  core.Params
	net     topo.Topology
	dev     rational.Deviation // nil unless the scenario has a coalition
	members []int

	// Materialized once: every trial of a scenario shares the same colors and
	// fault model, and all three are read-only during runs.
	colors     []core.Color
	faulty     []bool
	sched      gossip.FaultSchedule
	unreliable []bool

	pools *freeList[*core.RunPool] // reusable run-pool free list for batched trials
	dyns  *freeList[topo.Dynamic]  // reusable graph-process free list (dynamic scenarios only)

	// Trace optionally receives engine events on every subsequent run.
	Trace trace.Sink
}

// freeList is a concurrency-safe free list of reusable per-worker run state:
// core.RunPools, and — for dynamic scenarios — private graph-process
// instances (core.Run re-Starts a pooled process from every trial seed, so
// reuse is unobservable). It lives behind a pointer so the Runner value
// stays trivially copyable.
type freeList[T any] struct {
	mu    sync.Mutex
	build func() T
	free  []T
}

func newFreeList[T any](build func() T) *freeList[T] {
	return &freeList[T]{build: build}
}

func (l *freeList[T]) get() T {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.free); n > 0 {
		v := l.free[n-1]
		l.free = l.free[:n-1]
		return v
	}
	return l.build()
}

func (l *freeList[T]) put(v T) {
	l.mu.Lock()
	l.free = append(l.free, v)
	l.mu.Unlock()
}

// NewRunner validates s (after applying defaults) and prepares everything
// shared across its runs: protocol parameters, the (seeded) topology, the
// initial colors, the fault model, the deviation, and the coalition
// placement.
func NewRunner(s Scenario) (*Runner, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	params, err := s.Params()
	if err != nil {
		return nil, err
	}
	net, err := s.BuildTopology()
	if err != nil {
		return nil, err
	}
	r := &Runner{s: s, params: params, net: net,
		pools: newFreeList(func() *core.RunPool { return &core.RunPool{} })}
	if s.Dynamics.Active() {
		r.dyns = newFreeList(s.BuildDynamics)
	}
	r.colors = s.BuildColors()
	r.faulty, r.sched, r.unreliable = s.BuildFaults()
	if s.Coalition > 0 {
		dev, err := rational.DeviationByName(s.Deviation)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		r.dev = dev
		r.members = s.CoalitionMembers()
	}
	return r, nil
}

// MustRunner is NewRunner that panics on error, for tests and examples.
func MustRunner(s Scenario) *Runner {
	r, err := NewRunner(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Scenario returns the defaults-applied scenario the runner executes.
func (r *Runner) Scenario() Scenario { return r.s }

// Params returns the derived protocol parameters.
func (r *Runner) Params() core.Params { return r.params }

// Topology returns the materialized static communication graph. For dynamic
// scenarios this is only the nominal substrate; each run replaces it with a
// private graph-process instance (see runTopology).
func (r *Runner) Topology() topo.Topology { return r.net }

// runTopology returns the communication graph for one unpooled run: the
// shared static graph, or — for dynamic scenarios — a fresh graph-process
// instance, since the process is per-run mutable state. core.Run starts the
// instance from the run seed.
func (r *Runner) runTopology() topo.Topology {
	if r.dyns == nil {
		return r.net
	}
	return r.s.BuildDynamics()
}

// CoalitionMembers returns the deviating agents' IDs (nil for cooperative
// scenarios).
func (r *Runner) CoalitionMembers() []int { return append([]int(nil), r.members...) }

// RunConfig assembles the core-level configuration of one cooperative sync
// execution at the given seed — the hook for callers that need core.Run's
// full result (e.g. the transcript inspector).
func (r *Runner) RunConfig(seed uint64) core.RunConfig {
	faulty, sched, unreliable := r.s.BuildFaults()
	return core.RunConfig{
		Params:     r.params,
		Colors:     r.s.BuildColors(),
		Faulty:     faulty,
		Faults:     sched,
		Unreliable: unreliable,
		Seed:       seed,
		Drop:       r.s.Fault.Drop,
		Topology:   r.runTopology(),
		Workers:    r.s.Workers,
		Trace:      r.Trace,
	}
}

// GameConfig assembles the rational-layer configuration of one game
// execution at the given seed.
func (r *Runner) GameConfig(seed uint64) rational.GameConfig {
	faulty, _, _ := r.s.BuildFaults()
	return rational.GameConfig{
		Params:    r.params,
		Colors:    r.s.BuildColors(),
		Faulty:    faulty,
		Coalition: append([]int(nil), r.members...),
		Deviation: r.dev,
		Seed:      seed,
		Workers:   r.s.Workers,
		Topology:  r.net,
	}
}

// EquilibriumConfig assembles a paired honest-vs-deviating evaluation
// (Theorem 7) from a coalition scenario: trials runs of each profile with
// the scenario's coalition, deviation, and fault model.
func (r *Runner) EquilibriumConfig(trials int, chi float64) (rational.EquilibriumConfig, error) {
	if r.dev == nil {
		return rational.EquilibriumConfig{}, fmt.Errorf("scenario: %q has no coalition to evaluate", r.s.Name)
	}
	faulty, _, _ := r.s.BuildFaults()
	return rational.EquilibriumConfig{
		Params:    r.params,
		Colors:    r.s.BuildColors(),
		Faulty:    faulty,
		Coalition: append([]int(nil), r.members...),
		Deviation: r.dev,
		Utility:   rational.Utility{Chi: chi},
		Topology:  r.net,
		Trials:    trials,
		Seed:      r.s.Seed,
		Workers:   r.s.Workers,
	}, nil
}

// asyncConfig assembles the sequential-model configuration at a seed.
func (r *Runner) asyncConfig(seed uint64) core.AsyncRunConfig {
	faulty, sched, unreliable := r.s.BuildFaults()
	return core.AsyncRunConfig{
		Params:     r.params,
		Colors:     r.s.BuildColors(),
		Faulty:     faulty,
		Faults:     sched,
		Unreliable: unreliable,
		Seed:       seed,
		MaxTicks:   r.s.MaxTicks,
		Drop:       r.s.Fault.Drop,
		Topology:   r.net,
		Trace:      r.Trace,
	}
}

// Run executes the scenario once at its own seed.
func (r *Runner) Run() (Result, error) { return r.RunSeed(r.s.Seed) }

// RunSeed executes the scenario once at the given seed through the path its
// scheduler and coalition select.
func (r *Runner) RunSeed(seed uint64) (Result, error) {
	switch {
	case r.s.Scheduler == SchedulerAsync:
		res, err := core.RunAsyncResult(r.asyncConfig(seed))
		if err != nil {
			return Result{}, err
		}
		return Result{Outcome: res.Outcome, Rounds: res.Ticks, Metrics: res.Metrics}, nil

	case r.dev != nil:
		res, err := rational.RunGame(r.GameConfig(seed))
		if err != nil {
			return Result{}, err
		}
		return Result{
			Outcome:           res.Outcome,
			Rounds:            r.params.TotalRounds(),
			Metrics:           res.Metrics,
			CoalitionColorWon: res.CoalitionColorWon,
			Agents:            res.HonestAgents,
		}, nil

	default:
		res, err := core.Run(r.RunConfig(seed))
		if err != nil {
			return Result{}, err
		}
		return Result{
			Outcome: res.Outcome,
			Rounds:  res.Rounds,
			Metrics: res.Metrics,
			Good:    res.Good,
			HasGood: true,
			Agents:  res.Agents,
		}, nil
	}
}

// TrialSeeds derives the seeds of a trials-sized Monte-Carlo batch by
// splitting the scenario seed, so distinct scenarios (and distinct sweep
// cells) get collision-free seed sets and results are independent of the
// worker count.
func (r *Runner) TrialSeeds(trials int) []uint64 {
	base := rng.New(r.s.Seed)
	seeds := make([]uint64, trials)
	for i := range seeds {
		seeds[i] = trialSeed(base, i)
	}
	return seeds
}

// trialSeed derives the seed of trial i without allocating; it equals
// TrialSeeds(i+1)[i].
func trialSeed(base *rng.Source, i int) uint64 {
	var s rng.Source
	base.SplitInto(uint64(i), &s)
	return s.Uint64()
}

// Trials executes a seed-batched Monte-Carlo experiment: trials independent
// runs at split-off seeds, parallelized across the scenario's Workers. The
// per-run engine parallelism is forced to 1 (trial-level parallelism
// dominates and keeps runs deterministic). Results carry no Agents — see
// Result — but are otherwise identical to running RunSeed per trial seed.
func (r *Runner) Trials(trials int) ([]Result, error) {
	out := make([]Result, trials)
	if err := r.TrialsInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// TrialsInto is Trials writing into a caller-owned slice (len(dst) trials),
// so a loop that re-aggregates batches can reuse one buffer. Each worker
// draws a reusable run pool from the runner, so steady-state batches allocate
// almost nothing.
func (r *Runner) TrialsInto(dst []Result) error {
	return r.TrialsIntoContext(context.Background(), dst)
}

// TrialsIntoContext is TrialsInto with cancellation: every batch worker
// checks ctx before each trial, so cancellation stops the batch promptly
// mid-flight regardless of the worker count. A cancelled batch returns an
// error wrapping ctx's error (errors.Is(err, context.Canceled) holds) and
// leaves dst partially written.
func (r *Runner) TrialsIntoContext(ctx context.Context, dst []Result) error {
	return r.runBatch(ctx, rng.New(r.s.Seed), 0, dst, nil)
}

// runBatch executes trials start..start+len(dst) of the scenario's seed
// stream into dst, spread over the scenario's Workers. Per-trial metrics are
// optionally folded into agg, each worker writing its own counter shard.
// Each worker re-checks ctx between trials and abandons its chunk once the
// context is done.
func (r *Runner) runBatch(ctx context.Context, base *rng.Source, start int, dst []Result, agg *metrics.Counters) error {
	if len(dst) == 0 {
		return nil
	}
	pooled := r.dev == nil && r.s.Scheduler != SchedulerAsync
	errs := make([]error, len(dst))
	par.Chunks(r.s.Workers, len(dst), func(worker, lo, hi int) {
		var pool *core.RunPool
		var dyn topo.Dynamic
		if pooled {
			pool = r.pools.get()
			defer r.pools.put(pool)
			if r.dyns != nil {
				dyn = r.dyns.get()
				defer r.dyns.put(dyn)
			}
		}
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			seed := trialSeed(base, start+i)
			if pooled {
				dst[i], errs[i] = r.runPooled(seed, pool, dyn)
			} else {
				serial := *r
				serial.s.Workers = 1
				serial.Trace = nil
				dst[i], errs[i] = serial.RunSeed(seed)
			}
			dst[i].Agents = nil // batched results must not alias pool reuse
			if agg != nil && errs[i] == nil {
				agg.AddDelta(worker, metrics.DeltaOf(dst[i].Metrics))
			}
		}
	})
	// Report a real execution error over a cancellation: the former names
	// the trial that broke, the latter only that the caller gave up.
	var ctxErr error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			ctxErr = err
		default:
			return err
		}
	}
	if ctxErr != nil {
		return fmt.Errorf("scenario: trials interrupted: %w", ctxErr)
	}
	return nil
}

// runPooled is the cooperative-sync trial path: one core.Run over the
// runner's cached colors/faults and the worker's reusable pool. dyn, when
// non-nil, is the worker's private graph-process instance; core.Run re-Starts
// it from the trial seed, so reuse across trials is unobservable.
func (r *Runner) runPooled(seed uint64, pool *core.RunPool, dyn topo.Dynamic) (Result, error) {
	net := r.net
	if dyn != nil {
		net = dyn
	}
	res, err := core.Run(core.RunConfig{
		Params:     r.params,
		Colors:     r.colors,
		Faulty:     r.faulty,
		Faults:     r.sched,
		Unreliable: r.unreliable,
		Seed:       seed,
		Drop:       r.s.Fault.Drop,
		Topology:   net,
		Workers:    1,
		Pool:       pool,
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Outcome: res.Outcome,
		Rounds:  res.Rounds,
		Metrics: res.Metrics,
		Good:    res.Good,
		HasGood: true,
	}, nil
}

// StreamOptions configures Runner.Stream.
type StreamOptions struct {
	// Trials is the total number of Monte-Carlo trials.
	Trials int
	// Chunk is how many trials are executed (and buffered) at a time; the
	// stream's memory footprint is O(Chunk), independent of Trials. 0 picks a
	// default that keeps every worker busy.
	Chunk int
	// Aggregate optionally accumulates every trial's communication metrics
	// into one sharded Counters: each batch worker writes its own shard, so
	// aggregation never contends, and the merged Snapshot is identical
	// regardless of the worker count.
	Aggregate *metrics.Counters
}

// DefaultStreamChunk is the Stream chunk size when StreamOptions.Chunk is 0.
const DefaultStreamChunk = 256

// Stream executes a bounded-memory Monte-Carlo experiment: exactly
// opts.Trials runs at the same split-off seeds Trials would use, buffered
// opts.Chunk at a time, with observe invoked sequentially in trial order
// (observe may therefore accumulate running statistics without locking).
// The Result passed to observe is only valid during the call — it is reused
// for a later trial — and, like every batched result, carries no Agents.
// Million-trial cells run in memory constant in Trials.
func (r *Runner) Stream(opts StreamOptions, observe func(trial int, res *Result)) error {
	return r.StreamContext(context.Background(), opts, observe)
}

// StreamContext is Stream with cancellation: the batch workers re-check ctx
// between trials, so cancelling stops the stream promptly mid-chunk — no
// further chunks start, observe is not called for the abandoned chunk, and
// the returned error wraps ctx's error (errors.Is(err, context.Canceled)).
func (r *Runner) StreamContext(ctx context.Context, opts StreamOptions, observe func(trial int, res *Result)) error {
	if opts.Trials < 0 {
		return fmt.Errorf("scenario: stream of %d trials", opts.Trials)
	}
	chunk := opts.Chunk
	if chunk <= 0 {
		chunk = DefaultStreamChunk
	}
	if chunk > opts.Trials {
		chunk = opts.Trials
	}
	if chunk == 0 {
		return nil
	}
	buf := make([]Result, chunk)
	base := rng.New(r.s.Seed)
	for start := 0; start < opts.Trials; start += chunk {
		n := chunk
		if rest := opts.Trials - start; n > rest {
			n = rest
		}
		if err := r.runBatch(ctx, base, start, buf[:n], opts.Aggregate); err != nil {
			return err
		}
		if observe != nil {
			for i := range buf[:n] {
				observe(start+i, &buf[i])
			}
		}
	}
	return nil
}
