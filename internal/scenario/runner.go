package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/rational"
	"repro/internal/rng"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Result is the outcome of one scenario execution, unified across the sync,
// async, and game paths.
type Result struct {
	Outcome core.Outcome
	// Rounds is the synchronous round count, or the tick count under the
	// async scheduler.
	Rounds  int
	Metrics metrics.Snapshot
	// Good is the Definition-2 check; valid only when HasGood (sync
	// cooperative runs).
	Good    core.GoodExecution
	HasGood bool
	// CoalitionColorWon reports whether a coalition member's color won
	// (game runs only).
	CoalitionColorWon bool
	// Agents exposes the honest agents of sync runs for deeper inspection.
	Agents []*core.Agent
}

// Runner executes a validated scenario. Construct with NewRunner; a Runner
// is immutable except for Trace and safe to reuse across seeds.
type Runner struct {
	s       Scenario
	params  core.Params
	net     topo.Topology
	dev     rational.Deviation // nil unless the scenario has a coalition
	members []int

	// Trace optionally receives engine events on every subsequent run.
	Trace trace.Sink
}

// NewRunner validates s (after applying defaults) and prepares everything
// shared across its runs: protocol parameters, the (seeded) topology, the
// deviation, and the coalition placement.
func NewRunner(s Scenario) (*Runner, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	params, err := s.Params()
	if err != nil {
		return nil, err
	}
	net, err := s.BuildTopology()
	if err != nil {
		return nil, err
	}
	r := &Runner{s: s, params: params, net: net}
	if s.Coalition > 0 {
		dev, err := rational.DeviationByName(s.Deviation)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		r.dev = dev
		r.members = s.CoalitionMembers()
	}
	return r, nil
}

// MustRunner is NewRunner that panics on error, for tests and examples.
func MustRunner(s Scenario) *Runner {
	r, err := NewRunner(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Scenario returns the defaults-applied scenario the runner executes.
func (r *Runner) Scenario() Scenario { return r.s }

// Params returns the derived protocol parameters.
func (r *Runner) Params() core.Params { return r.params }

// Topology returns the materialized communication graph.
func (r *Runner) Topology() topo.Topology { return r.net }

// CoalitionMembers returns the deviating agents' IDs (nil for cooperative
// scenarios).
func (r *Runner) CoalitionMembers() []int { return append([]int(nil), r.members...) }

// RunConfig assembles the core-level configuration of one cooperative sync
// execution at the given seed — the hook for callers that need core.Run's
// full result (e.g. the transcript inspector).
func (r *Runner) RunConfig(seed uint64) core.RunConfig {
	faulty, sched, unreliable := r.s.BuildFaults()
	return core.RunConfig{
		Params:     r.params,
		Colors:     r.s.BuildColors(),
		Faulty:     faulty,
		Faults:     sched,
		Unreliable: unreliable,
		Seed:       seed,
		Topology:   r.net,
		Workers:    r.s.Workers,
		Trace:      r.Trace,
	}
}

// GameConfig assembles the rational-layer configuration of one game
// execution at the given seed.
func (r *Runner) GameConfig(seed uint64) rational.GameConfig {
	faulty, _, _ := r.s.BuildFaults()
	return rational.GameConfig{
		Params:    r.params,
		Colors:    r.s.BuildColors(),
		Faulty:    faulty,
		Coalition: append([]int(nil), r.members...),
		Deviation: r.dev,
		Seed:      seed,
		Workers:   r.s.Workers,
		Topology:  r.net,
	}
}

// EquilibriumConfig assembles a paired honest-vs-deviating evaluation
// (Theorem 7) from a coalition scenario: trials runs of each profile with
// the scenario's coalition, deviation, and fault model.
func (r *Runner) EquilibriumConfig(trials int, chi float64) (rational.EquilibriumConfig, error) {
	if r.dev == nil {
		return rational.EquilibriumConfig{}, fmt.Errorf("scenario: %q has no coalition to evaluate", r.s.Name)
	}
	faulty, _, _ := r.s.BuildFaults()
	return rational.EquilibriumConfig{
		Params:    r.params,
		Colors:    r.s.BuildColors(),
		Faulty:    faulty,
		Coalition: append([]int(nil), r.members...),
		Deviation: r.dev,
		Utility:   rational.Utility{Chi: chi},
		Topology:  r.net,
		Trials:    trials,
		Seed:      r.s.Seed,
		Workers:   r.s.Workers,
	}, nil
}

// asyncConfig assembles the sequential-model configuration at a seed.
func (r *Runner) asyncConfig(seed uint64) core.AsyncRunConfig {
	faulty, sched, unreliable := r.s.BuildFaults()
	return core.AsyncRunConfig{
		Params:     r.params,
		Colors:     r.s.BuildColors(),
		Faulty:     faulty,
		Faults:     sched,
		Unreliable: unreliable,
		Seed:       seed,
		MaxTicks:   r.s.MaxTicks,
		Topology:   r.net,
		Trace:      r.Trace,
	}
}

// Run executes the scenario once at its own seed.
func (r *Runner) Run() (Result, error) { return r.RunSeed(r.s.Seed) }

// RunSeed executes the scenario once at the given seed through the path its
// scheduler and coalition select.
func (r *Runner) RunSeed(seed uint64) (Result, error) {
	switch {
	case r.s.Scheduler == SchedulerAsync:
		res, err := core.RunAsyncResult(r.asyncConfig(seed))
		if err != nil {
			return Result{}, err
		}
		return Result{Outcome: res.Outcome, Rounds: res.Ticks, Metrics: res.Metrics}, nil

	case r.dev != nil:
		res, err := rational.RunGame(r.GameConfig(seed))
		if err != nil {
			return Result{}, err
		}
		return Result{
			Outcome:           res.Outcome,
			Rounds:            r.params.TotalRounds(),
			Metrics:           res.Metrics,
			CoalitionColorWon: res.CoalitionColorWon,
			Agents:            res.HonestAgents,
		}, nil

	default:
		res, err := core.Run(r.RunConfig(seed))
		if err != nil {
			return Result{}, err
		}
		return Result{
			Outcome: res.Outcome,
			Rounds:  res.Rounds,
			Metrics: res.Metrics,
			Good:    res.Good,
			HasGood: true,
			Agents:  res.Agents,
		}, nil
	}
}

// TrialSeeds derives the seeds of a trials-sized Monte-Carlo batch by
// splitting the scenario seed, so distinct scenarios (and distinct sweep
// cells) get collision-free seed sets and results are independent of the
// worker count.
func (r *Runner) TrialSeeds(trials int) []uint64 {
	base := rng.New(r.s.Seed)
	seeds := make([]uint64, trials)
	for i := range seeds {
		seeds[i] = base.Split(uint64(i)).Uint64()
	}
	return seeds
}

// Trials executes a seed-batched Monte-Carlo experiment: trials independent
// runs at split-off seeds, parallelized across the scenario's Workers. The
// per-run engine parallelism is forced to 1 (trial-level parallelism
// dominates and keeps runs deterministic).
func (r *Runner) Trials(trials int) ([]Result, error) {
	seeds := r.TrialSeeds(trials)
	serial := *r
	serial.s.Workers = 1
	serial.Trace = nil
	out := make([]Result, trials)
	errs := make([]error, trials)
	par.ForN(r.s.Workers, trials, func(i int) {
		out[i], errs[i] = serial.RunSeed(seeds[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
