package topo

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// This file implements the implicit sparse graph processes: dynamic
// topologies that never materialize — or even index — the Θ(n²) pair
// population. Where the edge-Markovian chain samples *which* pairs flip out
// of all n(n−1)/2, the processes here are generated from O(n·degree) state
// directly (a stub array, a point set), so every per-round quantity is
// O(n·degree) by construction and million-node networks at bounded degree
// are as cheap per node as small ones. Both implement Dynamic; see that
// interface for the lifecycle, determinism, and concurrency contract.

// DRegular is the per-round re-matched random (approximately) d-regular
// graph: the configuration model, resampled fresh at every round boundary.
// Each node carries d stubs; a round shuffles the n·d stub array and pairs
// consecutive stubs, dropping self-loops and duplicate edges — so degrees
// are ≤ d, equal to d for all but the O(1) expected nodes caught in a
// dropped pairing, and every round's graph is independent of the last. This
// is the maximal-churn counterpart to the edge-Markovian chain's tunable
// persistence: the whole edge set turns over every round (Flips ≈ edge
// count), which makes it the stress extreme for protocols whose analysis
// assumes edges persist between rounds.
//
// Cost per round is Θ(n·d) shuffle plus Θ(edges) set maintenance; memory is
// O(n·d). Construct with NewDRegular, then Start.
type DRegular struct {
	n, d    int
	name    string
	r       rng.Source
	stubs   []int32    // n·d entries; stub i belongs to node i/d
	adj     [][]int32  // per-node neighbor lists, carved from one slab
	sets    [2]pairSet // current and previous round's edge sets (ping-pong)
	cur     int        // index of the current round's set
	flips   int
	started bool
}

var _ Dynamic = (*DRegular)(nil)

// NewDRegular returns an (unstarted) re-matched d-regular process on n
// nodes. It panics unless 3 ≤ n ≤ MaxDynamicN, 2 ≤ d < n, and n·d is even
// (a d-regular graph on n nodes exists only for even n·d — an odd stub
// count would leave one stub permanently unmatched).
func NewDRegular(n, d int) *DRegular {
	if n < 3 || n > MaxDynamicN {
		panic(fmt.Sprintf("topo: NewDRegular needs 3 <= n <= %d", MaxDynamicN))
	}
	if d < 2 || d >= n {
		panic("topo: NewDRegular needs 2 <= d < n")
	}
	if n*d%2 != 0 {
		panic("topo: NewDRegular needs n·d even")
	}
	return &DRegular{n: n, d: d, name: fmt.Sprintf("d-regular(%d)", d)}
}

// Start derives the process randomness from seed and materializes the
// round-0 matching.
func (dr *DRegular) Start(seed uint64) {
	dr.r.Reseed(seed)
	if dr.stubs == nil {
		dr.stubs = make([]int32, dr.n*dr.d)
		dr.adj = make([][]int32, dr.n)
		slab := make([]int32, dr.n*dr.d)
		for u := range dr.adj {
			dr.adj[u] = slab[u*dr.d : u*dr.d : (u+1)*dr.d]
		}
	}
	// The stub array must be re-canonicalized: shuffling permutes it, so a
	// pooled instance would otherwise start its Fisher–Yates walk from the
	// previous run's final order and break same-seed determinism.
	for i := range dr.stubs {
		dr.stubs[i] = int32(i / dr.d)
	}
	dr.sets[0].Clear()
	dr.sets[1].Clear()
	dr.rematch()
	dr.flips = 0 // round 0 is a draw, not a change
	dr.started = true
}

// Advance re-matches every stub for the new round.
func (dr *DRegular) Advance(round int) {
	if !dr.started {
		panic("topo: DRegular.Advance before Start")
	}
	dr.rematch()
}

// rematch shuffles the stub array, pairs consecutive stubs into edges
// (self-loops and duplicates dropped), and computes Flips as the symmetric
// difference against the previous round's edge set.
func (dr *DRegular) rematch() {
	old := &dr.sets[dr.cur]
	dr.cur ^= 1
	cur := &dr.sets[dr.cur]
	cur.Clear()
	stubs := dr.stubs
	for i := len(stubs) - 1; i > 0; i-- {
		j := dr.r.Intn(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	for u := range dr.adj {
		dr.adj[u] = dr.adj[u][:0]
	}
	common := 0
	for k := 0; k+1 < len(stubs); k += 2 {
		u, v := stubs[k], stubs[k+1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		pk := pack(u, v)
		if cur.Has(pk) {
			continue
		}
		cur.Add(pk)
		dr.adj[u] = append(dr.adj[u], v)
		dr.adj[v] = append(dr.adj[v], u)
		if old.Has(pk) {
			common++
		}
	}
	dr.flips = old.Len() + cur.Len() - 2*common
}

// N returns the node count.
func (dr *DRegular) N() int { return dr.n }

// CanSend reports whether the edge (u, v) is present this round; self-sends
// are always allowed.
func (dr *DRegular) CanSend(u, v int) bool {
	if u < 0 || u >= dr.n || v < 0 || v >= dr.n {
		return false
	}
	if u == v {
		return true
	}
	if u > v {
		u, v = v, u
	}
	return dr.sets[dr.cur].Has(pack(int32(u), int32(v)))
}

// SamplePeer draws uniformly from u's current neighbor set; an isolated node
// can only talk to itself, matching the static adjacency graphs.
func (dr *DRegular) SamplePeer(u int, r *rng.Source) int {
	ns := dr.adj[u]
	if len(ns) == 0 {
		return u
	}
	return int(ns[r.Intn(len(ns))])
}

// Degree returns u's current degree.
func (dr *DRegular) Degree(u int) int { return len(dr.adj[u]) }

// Name identifies the process and its degree in reports.
func (dr *DRegular) Name() string { return dr.name }

// EdgeCount returns the number of edges currently present (analysis hook).
func (dr *DRegular) EdgeCount() int { return dr.sets[dr.cur].Len() }

// Flips reports how many edges the last Advance changed.
func (dr *DRegular) Flips() int { return dr.flips }

// Geometric is the jittered random geometric graph on the unit torus: n
// points, an edge wherever two points lie within the connection radius
// r = √(deg/(π·n)) (so the expected degree is ≈ deg), and per-round motion —
// each round every point moves by an independent uniform offset in
// [−jitter, jitter] per axis, wrapping around. Edges churn only along the
// moving radius boundary, so jitter dials churn continuously from a frozen
// geometric graph (jitter = 0) toward full spatial re-mixing, while the
// graph keeps the locality structure the clique-free topologies of the
// paper's open problem ask about.
//
// The generator is implicit: membership is the O(1) distance predicate, and
// adjacency is rebuilt each round with a cell grid (cells no smaller than r,
// 3×3 windows), so a round costs O(n + edges) expected and memory is
// O(n + edges) — no pair population anywhere. Construct with NewGeometric,
// then Start.
type Geometric struct {
	n       int
	deg     float64 // target expected degree
	jitter  float64
	radius  float64
	r2      float64 // radius², the membership predicate's constant
	name    string
	r       rng.Source
	x, y    []float64 // current positions
	ox, oy  []float64 // previous round's positions (flip accounting)
	adj     [][]int32
	m       int     // cells per side of the grid, ⌊1/radius⌋
	cellOf  []int32 // cell index of each point, this round
	cellOff []int32 // CSR offsets over cells (m²+1)
	cellCur []int32 // fill cursors, scratch
	cellPts []int32 // point ids, cell-major
	oldEdge int     // previous round's edge count
	flips   int
	started bool
}

var _ Dynamic = (*Geometric)(nil)

// NewGeometric returns an (unstarted) jittered geometric process on n torus
// points with target expected degree deg. It panics unless
// 2 ≤ n ≤ MaxDynamicN, deg > 0 with connection radius √(deg/(π·n)) ≤ ¼
// (the cell grid needs at least 4 cells per side — at larger radii raise n
// or lower deg; the graph would be near-complete anyway), and jitter lies
// in [0, 1].
func NewGeometric(n int, deg, jitter float64) *Geometric {
	if n < 2 || n > MaxDynamicN {
		panic(fmt.Sprintf("topo: NewGeometric needs 2 <= n <= %d", MaxDynamicN))
	}
	if !(deg > 0) {
		panic("topo: NewGeometric needs deg > 0")
	}
	if jitter < 0 || jitter > 1 {
		panic("topo: NewGeometric needs jitter in [0, 1]")
	}
	radius := math.Sqrt(deg / (math.Pi * float64(n)))
	if radius > 0.25 {
		panic(fmt.Sprintf("topo: NewGeometric radius %.3f > 0.25 — deg %g too dense for n = %d", radius, deg, n))
	}
	return &Geometric{
		n:      n,
		deg:    deg,
		jitter: jitter,
		radius: radius,
		r2:     radius * radius,
		m:      int(1 / radius),
		name:   fmt.Sprintf("geometric(%g,%g)", deg, jitter),
	}
}

// Start derives the process randomness from seed, scatters the points
// uniformly, and materializes the round-0 edge set.
func (g *Geometric) Start(seed uint64) {
	g.r.Reseed(seed)
	if g.x == nil {
		g.x = make([]float64, g.n)
		g.y = make([]float64, g.n)
		g.ox = make([]float64, g.n)
		g.oy = make([]float64, g.n)
		g.cellOf = make([]int32, g.n)
		g.cellPts = make([]int32, g.n)
		g.cellOff = make([]int32, g.m*g.m+1)
		g.cellCur = make([]int32, g.m*g.m)
		g.adj = make([][]int32, g.n)
		// Degrees are ≈ Poisson(deg); seed capacities past the mean so
		// steady-state rebuilds essentially never regrow a list.
		cap0 := int(g.deg+5*math.Sqrt(g.deg+1)) + 8
		if cap0 > g.n-1 {
			cap0 = g.n - 1
		}
		slab := make([]int32, g.n*cap0)
		for u := range g.adj {
			g.adj[u] = slab[u*cap0 : u*cap0 : (u+1)*cap0]
		}
	}
	for u := 0; u < g.n; u++ {
		g.x[u] = g.r.Float64()
		g.y[u] = g.r.Float64()
	}
	g.build()
	g.flips = 0 // round 0 is a draw, not a change
	g.started = true
}

// Advance jitters every point and rebuilds the edge set for the new round.
func (g *Geometric) Advance(round int) {
	if !g.started {
		panic("topo: Geometric.Advance before Start")
	}
	g.x, g.ox = g.ox, g.x
	g.y, g.oy = g.oy, g.y
	for u := 0; u < g.n; u++ {
		g.x[u] = wrapUnit(g.ox[u] + g.jitter*(2*g.r.Float64()-1))
		g.y[u] = wrapUnit(g.oy[u] + g.jitter*(2*g.r.Float64()-1))
	}
	g.build()
}

// wrapUnit maps a coordinate back onto the unit torus [0, 1).
func wrapUnit(p float64) float64 { return p - math.Floor(p) }

// torusDist2 is the squared torus distance between two points, the O(1)
// membership predicate: an edge is present iff torusDist2 ≤ radius².
func torusDist2(ax, ay, bx, by float64) float64 {
	dx := math.Abs(ax - bx)
	if dx > 0.5 {
		dx = 1 - dx
	}
	dy := math.Abs(ay - by)
	if dy > 0.5 {
		dy = 1 - dy
	}
	return dx*dx + dy*dy
}

// build bins the points into the cell grid, rebuilds the adjacency from 3×3
// cell windows (cells are at least radius wide, so the window covers every
// candidate within range — on the torus too, since m ≥ 4 keeps the wrapped
// window duplicate-free), and computes Flips against the previous round's
// positions: an edge is born if its endpoints were out of range last round,
// and the deaths are the previous edges not re-found, counted as
// oldEdge − survivors without storing the old edge set at all — last round's
// membership is just the distance predicate on the old positions.
func (g *Geometric) build() {
	m := g.m
	for i := range g.cellOff {
		g.cellOff[i] = 0
	}
	for u := 0; u < g.n; u++ {
		g.cellOf[u] = g.cellIndex(g.x[u], g.y[u])
		g.cellOff[g.cellOf[u]+1]++
	}
	for c := 0; c < m*m; c++ {
		g.cellOff[c+1] += g.cellOff[c]
	}
	copy(g.cellCur, g.cellOff[:m*m])
	for u := 0; u < g.n; u++ {
		c := g.cellOf[u]
		g.cellPts[g.cellCur[c]] = int32(u)
		g.cellCur[c]++
	}
	for u := range g.adj {
		g.adj[u] = g.adj[u][:0]
	}
	edges, births, survivors := 0, 0, 0
	for u := 0; u < g.n; u++ {
		cu := int(g.cellOf[u])
		cx, cy := cu%m, cu/m
		for dy := -1; dy <= 1; dy++ {
			yy := cy + dy
			if yy < 0 {
				yy += m
			} else if yy >= m {
				yy -= m
			}
			for dx := -1; dx <= 1; dx++ {
				xx := cx + dx
				if xx < 0 {
					xx += m
				} else if xx >= m {
					xx -= m
				}
				c := yy*m + xx
				for _, v32 := range g.cellPts[g.cellOff[c]:g.cellOff[c+1]] {
					v := int(v32)
					if v <= u {
						continue
					}
					if torusDist2(g.x[u], g.y[u], g.x[v], g.y[v]) <= g.r2 {
						g.adj[u] = append(g.adj[u], int32(v))
						g.adj[v] = append(g.adj[v], int32(u))
						edges++
						if torusDist2(g.ox[u], g.oy[u], g.ox[v], g.oy[v]) <= g.r2 {
							survivors++
						} else {
							births++
						}
					}
				}
			}
		}
	}
	g.flips = births + (g.oldEdge - survivors)
	g.oldEdge = edges
}

// cellIndex bins a point; the clamp guards the x·m float product rounding
// up to m for coordinates just below 1.
func (g *Geometric) cellIndex(x, y float64) int32 {
	ix := int(x * float64(g.m))
	if ix >= g.m {
		ix = g.m - 1
	}
	iy := int(y * float64(g.m))
	if iy >= g.m {
		iy = g.m - 1
	}
	return int32(iy*g.m + ix)
}

// N returns the node count.
func (g *Geometric) N() int { return g.n }

// CanSend reports whether u and v are within the connection radius this
// round; self-sends are always allowed. This is the same predicate build
// materializes, so CanSend and the neighbor lists can never disagree.
func (g *Geometric) CanSend(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	if u == v {
		return true
	}
	return torusDist2(g.x[u], g.y[u], g.x[v], g.y[v]) <= g.r2
}

// SamplePeer draws uniformly from u's current neighbor set; an isolated node
// can only talk to itself, matching the static adjacency graphs.
func (g *Geometric) SamplePeer(u int, r *rng.Source) int {
	ns := g.adj[u]
	if len(ns) == 0 {
		return u
	}
	return int(ns[r.Intn(len(ns))])
}

// Degree returns u's current degree.
func (g *Geometric) Degree(u int) int { return len(g.adj[u]) }

// Name identifies the process, its target degree, and its jitter in reports.
func (g *Geometric) Name() string { return g.name }

// EdgeCount returns the number of edges currently present (analysis hook).
func (g *Geometric) EdgeCount() int { return g.oldEdge }

// Flips reports how many edges the last Advance changed.
func (g *Geometric) Flips() int { return g.flips }

// Radius returns the connection radius (analysis hook).
func (g *Geometric) Radius() float64 { return g.radius }
