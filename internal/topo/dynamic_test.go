package topo

import (
	"testing"

	"repro/internal/rng"
)

// edgeSet flattens a topology's current edge set into a canonical string of
// bits, for byte-identity comparisons across instances and rounds.
func edgeSet(t Topology) []bool {
	n := t.N()
	out := make([]bool, 0, n*(n-1)/2)
	for u := 0; u < n-1; u++ {
		for v := u + 1; v < n; v++ {
			out = append(out, t.CanSend(u, v))
		}
	}
	return out
}

func equalEdges(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dynamicInvariants checks the Topology contract on the process's current
// edge set: symmetric CanSend, Degree consistent with CanSend, handshake
// lemma, and SamplePeer only ever returning sendable peers.
func dynamicInvariants(t *testing.T, g Dynamic, r *rng.Source) {
	t.Helper()
	n := g.N()
	total := 0
	for u := 0; u < n; u++ {
		count := 0
		for v := 0; v < n; v++ {
			if u == v {
				if !g.CanSend(u, v) {
					t.Fatalf("%s: self-send refused at %d", g.Name(), u)
				}
				continue
			}
			if g.CanSend(u, v) != g.CanSend(v, u) {
				t.Fatalf("%s: CanSend not symmetric at (%d,%d)", g.Name(), u, v)
			}
			if g.CanSend(u, v) {
				count++
			}
		}
		if count != g.Degree(u) {
			t.Fatalf("%s: degree(%d) = %d but CanSend count = %d", g.Name(), u, g.Degree(u), count)
		}
		total += count
		for i := 0; i < 4; i++ {
			if p := g.SamplePeer(u, r); !g.CanSend(u, p) {
				t.Fatalf("%s: sampled unreachable peer %d from %d", g.Name(), p, u)
			}
		}
	}
	if total%2 != 0 {
		t.Fatalf("%s: odd degree sum %d (handshake lemma)", g.Name(), total)
	}
}

func TestDynamicInvariantsPerRound(t *testing.T) {
	r := rng.New(5)
	for _, g := range []Dynamic{
		NewEdgeMarkovian(23, 0.1, 0.3),
		NewEdgeMarkovian(16, 1, 1),
		NewRewireRing(17, 0.4),
		NewRewireRing(8, 1),
		NewDRegular(24, 4),
		NewDRegular(15, 2),
		NewGeometric(40, 6, 0.05),
		NewGeometric(25, 3, 0),
	} {
		g.Start(42)
		dynamicInvariants(t, g, r)
		for round := 1; round <= 6; round++ {
			g.Advance(round)
			dynamicInvariants(t, g, r)
		}
	}
}

// TestDynamicSameSeedByteIdentical pins the determinism contract: two
// instances started from one seed produce bit-identical edge sets round for
// round, and Start fully resets a reused instance.
func TestDynamicSameSeedByteIdentical(t *testing.T) {
	build := []func() Dynamic{
		func() Dynamic { return NewEdgeMarkovian(20, 0.05, 0.2) },
		func() Dynamic { return NewRewireRing(20, 0.3) },
		func() Dynamic { return NewDRegular(20, 4) },
		func() Dynamic { return NewGeometric(30, 4, 0.1) },
	}
	for _, mk := range build {
		a, b := mk(), mk()
		a.Start(7)
		// Desynchronize b's history before starting, to prove Start resets.
		b.Start(999)
		b.Advance(1)
		b.Advance(2)
		b.Start(7)
		for round := 0; round <= 8; round++ {
			if round > 0 {
				a.Advance(round)
				b.Advance(round)
			}
			if !equalEdges(edgeSet(a), edgeSet(b)) {
				t.Fatalf("%s: round %d edge sets diverged for equal seeds", a.Name(), round)
			}
		}
		c := mk()
		c.Start(8)
		if equalEdges(edgeSet(a), edgeSet(c)) {
			t.Fatalf("%s: different seeds produced identical round-8 edge sets", a.Name())
		}
	}
}

// TestEdgeMarkovianStationaryDegree checks that the round-0 draw and the
// evolved process both hover around the stationary mean degree π(n−1).
func TestEdgeMarkovianStationaryDegree(t *testing.T) {
	const n = 96
	birth, death := 0.05, 0.15
	pi := birth / (birth + death)
	want := pi * float64(n-1)
	g := NewEdgeMarkovian(n, birth, death)
	g.Start(3)
	check := func(when string) {
		total := 0
		for u := 0; u < n; u++ {
			total += g.Degree(u)
		}
		mean := float64(total) / float64(n)
		if mean < want*0.7 || mean > want*1.3 {
			t.Fatalf("%s: mean degree %.1f, want ≈ %.1f", when, mean, want)
		}
	}
	check("round 0")
	for round := 1; round <= 30; round++ {
		g.Advance(round)
	}
	check("round 30")
}

// TestEdgeMarkovianChurns checks that edges actually turn over: the round-r
// edge set must differ from round 0, and a dead edge must be able to return.
func TestEdgeMarkovianChurns(t *testing.T) {
	g := NewEdgeMarkovian(32, 0.2, 0.5)
	g.Start(11)
	before := edgeSet(g)
	g.Advance(1)
	if equalEdges(before, edgeSet(g)) {
		t.Fatal("advance with birth=0.2, death=0.5 changed nothing")
	}
}

// TestRewireRingBetaZeroIsStaticRing pins the β = 0 degeneration: every
// round is exactly the cycle graph.
func TestRewireRingBetaZeroIsStaticRing(t *testing.T) {
	const n = 12
	g := NewRewireRing(n, 0)
	g.Start(4)
	ring := NewRing(n)
	for round := 0; round <= 4; round++ {
		if round > 0 {
			g.Advance(round)
		}
		if !equalEdges(edgeSet(g), edgeSet(ring)) {
			t.Fatalf("round %d: β = 0 rewire-ring is not the static ring", round)
		}
		for u := 0; u < n; u++ {
			if g.Degree(u) != 2 {
				t.Fatalf("round %d: degree(%d) = %d on the β = 0 ring", round, u, g.Degree(u))
			}
		}
	}
}

// TestRewireRingEveryNodeReachesSomeone pins that rewiring never isolates a
// node: each node always owns one outgoing edge.
func TestRewireRingEveryNodeReachesSomeone(t *testing.T) {
	g := NewRewireRing(15, 1)
	g.Start(6)
	for round := 0; round <= 5; round++ {
		if round > 0 {
			g.Advance(round)
		}
		for u := 0; u < 15; u++ {
			if g.Degree(u) < 1 {
				t.Fatalf("round %d: node %d isolated", round, u)
			}
		}
	}
}

// TestDynamicAdvanceAllocBudget pins the per-round allocation budget of both
// graph processes: after warm-up (edge list, neighbor lists, and scratch at
// their high-water marks) advancing a round must not allocate per flip — the
// budget leaves room only for a rare buffer regrow on an unusually dense
// round.
func TestDynamicAdvanceAllocBudget(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    Dynamic
	}{
		{"edge-markovian", NewEdgeMarkovian(128, 0.02, 0.1)},
		{"rewire-ring", NewRewireRing(256, 0.3)},
		{"d-regular", NewDRegular(256, 8)},
		{"geometric", NewGeometric(400, 8, 0.02)},
	} {
		tc.g.Start(1)
		round := 1
		for ; round <= 50; round++ { // warm to the steady-state high-water mark
			tc.g.Advance(round)
		}
		allocs := testing.AllocsPerRun(100, func() {
			tc.g.Advance(round)
			round++
		})
		if allocs > 1 {
			t.Errorf("%s: %.1f allocations per round after warm-up, budget 1", tc.name, allocs)
		}
	}
}

// TestDynamicStartReusesMemory pins that pooled reuse (Start on a warmed
// instance) allocates nothing, so batched dynamic trials stay cheap.
func TestDynamicStartReusesMemory(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    Dynamic
	}{
		{"edge-markovian", NewEdgeMarkovian(64, 0.05, 0.2)},
		{"d-regular", NewDRegular(64, 6)},
		{"geometric", NewGeometric(100, 5, 0.05)},
	} {
		tc.g.Start(1)
		for r := 1; r <= 20; r++ {
			tc.g.Advance(r)
		}
		seed := uint64(2)
		allocs := testing.AllocsPerRun(50, func() {
			tc.g.Start(seed)
			seed++
		})
		if allocs > 1 {
			t.Errorf("%s: Start on a warmed process allocates %.1f objects, budget 1", tc.name, allocs)
		}
	}
}

func TestDynamicPanics(t *testing.T) {
	cases := []func(){
		func() { NewEdgeMarkovian(1, 0.1, 0.1) },
		func() { NewEdgeMarkovian(MaxDynamicN+1, 0.1, 0.1) },
		func() { NewEdgeMarkovian(10, -0.1, 0.1) },
		func() { NewEdgeMarkovian(10, 0.1, 1.5) },
		func() { NewEdgeMarkovian(10, 0, 0) },
		func() { NewRewireRing(2, 0.5) },
		func() { NewRewireRing(10, -0.5) },
		func() { NewRewireRing(10, 1.5) },
		func() { NewDRegular(2, 2) },
		func() { NewDRegular(MaxDynamicN+2, 2) },
		func() { NewDRegular(10, 1) },
		func() { NewDRegular(10, 10) },
		func() { NewDRegular(5, 3) }, // odd n·d
		func() { NewGeometric(1, 0.5, 0) },
		func() { NewGeometric(MaxDynamicN+1, 4, 0) },
		func() { NewGeometric(100, 0, 0.1) },
		func() { NewGeometric(100, 50, 0) }, // radius beyond the grid bound
		func() { NewGeometric(100, 4, -0.1) },
		func() { NewGeometric(100, 4, 1.5) },
		func() { NewEdgeMarkovian(10, 0.1, 0.1).Advance(1) }, // before Start
		func() { NewRewireRing(10, 0.1).Advance(1) },         // before Start
		func() { NewDRegular(10, 2).Advance(1) },             // before Start
		func() { NewGeometric(100, 4, 0.1).Advance(1) },      // before Start
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
