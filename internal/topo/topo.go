// Package topo defines the communication topologies agents gossip over.
//
// The paper analyzes Protocol P on the complete graph (Section 2); the other
// topologies here (ring, random regular, Erdős–Rényi) exist to explore the
// paper's first open problem — rational fair consensus on other graph
// classes (Section 4).
//
// A Topology answers two questions for the engine and the agents: which peers
// may node u contact (adjacency, enforced by the engine even for deviating
// agents), and how an honest agent samples a peer "u.a.r." as the protocol
// prescribes. On the complete graph the sample space is all of [n] including
// u itself, exactly as the paper's "chosen u.a.r. in [n]"; on restricted
// graphs it is the neighbor set.
package topo

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Topology describes who can talk to whom.
type Topology interface {
	// N is the number of nodes; nodes are identified by 0..N-1.
	N() int
	// CanSend reports whether u may address a message to v. Self-sends are
	// always allowed (they are local no-ops).
	CanSend(u, v int) bool
	// SamplePeer returns a peer for u drawn uniformly from u's sample space
	// (all of [n] on the complete graph, the neighbor list otherwise).
	SamplePeer(u int, r *rng.Source) int
	// Degree returns the number of distinct peers u may contact (excluding u).
	Degree(u int) int
	// Name identifies the topology in reports.
	Name() string
}

// Complete is the complete graph on n nodes, the paper's setting. SamplePeer
// draws uniformly from [n] including u, matching the protocol's "u.a.r. in
// [n]" choices.
type Complete struct{ n int }

// NewComplete returns the complete graph on n nodes. It panics if n < 1.
func NewComplete(n int) Complete {
	if n < 1 {
		panic("topo: NewComplete needs n >= 1")
	}
	return Complete{n: n}
}

// N returns the node count.
func (c Complete) N() int { return c.n }

// CanSend allows every pair.
func (c Complete) CanSend(u, v int) bool {
	return u >= 0 && u < c.n && v >= 0 && v < c.n
}

// SamplePeer draws uniformly from all n nodes, including u itself.
func (c Complete) SamplePeer(u int, r *rng.Source) int { return r.Intn(c.n) }

// Degree is n-1 on the complete graph.
func (c Complete) Degree(u int) int { return c.n - 1 }

// Name returns "complete".
func (c Complete) Name() string { return "complete" }

// adjacency is a shared implementation for explicit-neighbor-list graphs.
type adjacency struct {
	name  string
	neigh [][]int32
}

func (a *adjacency) N() int { return len(a.neigh) }

func (a *adjacency) CanSend(u, v int) bool {
	if u < 0 || u >= len(a.neigh) || v < 0 || v >= len(a.neigh) {
		return false
	}
	if u == v {
		return true
	}
	ns := a.neigh[u]
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= int32(v) })
	return i < len(ns) && ns[i] == int32(v)
}

func (a *adjacency) SamplePeer(u int, r *rng.Source) int {
	ns := a.neigh[u]
	if len(ns) == 0 {
		return u // isolated node can only talk to itself
	}
	return int(ns[r.Intn(len(ns))])
}

func (a *adjacency) Degree(u int) int { return len(a.neigh[u]) }

func (a *adjacency) Name() string { return a.name }

// buildAdjacency converts an edge set into sorted neighbor lists.
func buildAdjacency(name string, n int, edges map[[2]int32]struct{}) *adjacency {
	a := &adjacency{name: name, neigh: make([][]int32, n)}
	for e := range edges {
		a.neigh[e[0]] = append(a.neigh[e[0]], e[1])
		a.neigh[e[1]] = append(a.neigh[e[1]], e[0])
	}
	for u := range a.neigh {
		ns := a.neigh[u]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	return a
}

// NewRing returns the cycle graph on n nodes (each node adjacent to its two
// ring neighbors). It panics if n < 3.
func NewRing(n int) Topology {
	if n < 3 {
		panic("topo: NewRing needs n >= 3")
	}
	edges := make(map[[2]int32]struct{}, n)
	for u := 0; u < n; u++ {
		v := (u + 1) % n
		edges[edgeKey(u, v)] = struct{}{}
	}
	return buildAdjacency(fmt.Sprintf("ring"), n, edges)
}

// NewRandomRegular returns a random (approximately) d-regular graph built as
// the union of ⌈d/2⌉ uniformly random Hamiltonian cycles with duplicate edges
// removed. For d ≪ n the result is d-regular except for the rare duplicate,
// and is connected by construction. It panics if n < 3 or d < 2.
func NewRandomRegular(n, d int, seed uint64) Topology {
	if n < 3 || d < 2 {
		panic("topo: NewRandomRegular needs n >= 3 and d >= 2")
	}
	r := rng.New(seed)
	edges := make(map[[2]int32]struct{}, n*d/2)
	cycles := (d + 1) / 2
	for c := 0; c < cycles; c++ {
		p := r.Perm(n)
		for i := 0; i < n; i++ {
			u, v := p[i], p[(i+1)%n]
			edges[edgeKey(u, v)] = struct{}{}
		}
	}
	return buildAdjacency(fmt.Sprintf("regular-%d", d), n, edges)
}

// NewErdosRenyi returns a G(n, p) random graph. Connectivity is not
// guaranteed; isolated nodes can only message themselves. It panics for
// invalid n or p outside [0, 1].
func NewErdosRenyi(n int, p float64, seed uint64) Topology {
	if n < 1 || p < 0 || p > 1 {
		panic("topo: invalid Erdős–Rényi parameters")
	}
	r := rng.New(seed)
	edges := make(map[[2]int32]struct{})
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bool(p) {
				edges[edgeKey(u, v)] = struct{}{}
			}
		}
	}
	return buildAdjacency(fmt.Sprintf("er-%.3f", p), n, edges)
}

func edgeKey(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}

// IsConnected reports whether every node can reach node 0 (BFS). The complete
// graph is always connected; random graphs may not be.
func IsConnected(t Topology) bool {
	n := t.N()
	if n == 0 {
		return true
	}
	// Use CanSend over explicit lists when available for speed.
	adj, ok := t.(*adjacency)
	visited := make([]bool, n)
	queue := []int{0}
	visited[0] = true
	seen := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if ok {
			for _, v32 := range adj.neigh[u] {
				v := int(v32)
				if !visited[v] {
					visited[v] = true
					seen++
					queue = append(queue, v)
				}
			}
			continue
		}
		for v := 0; v < n; v++ {
			if v != u && !visited[v] && t.CanSend(u, v) {
				visited[v] = true
				seen++
				queue = append(queue, v)
			}
		}
	}
	return seen == n
}
