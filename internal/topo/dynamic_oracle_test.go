package topo

import (
	"testing"

	"repro/internal/rng"
)

// This file pins the hash-set membership refactor against a presence-bitset
// oracle: the pre-refactor engine kept one bit per potential pair, and
// swapping that bitset for the O(present-edges) pairSet must not change a
// single observable bit — same seed, same edge sets, same SamplePeer streams,
// round for round, including across pooled reuse. The oracle below is a
// faithful reimplementation of the bitset engine (identical skip-sampling
// draws, identical swap-remove bookkeeping, dense membership); it is Θ(n²/64)
// memory and exists only as a small-n test reference.

// bitsetRefEdgeMarkovian mirrors EdgeMarkovian except that membership is a
// dense presence bitset over pair indices.
type bitsetRefEdgeMarkovian struct {
	n            int
	birth, death float64
	r            rng.Source
	bits         []uint64
	edges        []uint64
	adj          [][]int32
	deadPos      []int32
	born         []uint64
}

func newBitsetRef(n int, birth, death float64) *bitsetRefEdgeMarkovian {
	return &bitsetRefEdgeMarkovian{n: n, birth: birth, death: death}
}

func (b *bitsetRefEdgeMarkovian) pairs() int { return b.n * (b.n - 1) / 2 }

func (b *bitsetRefEdgeMarkovian) pairIndex(u, v int) int {
	return u*(2*b.n-u-1)/2 + (v - u - 1)
}

// pairAt delegates to the production decode: the decode itself is pinned
// separately by the round-trip test, and sharing it keeps the oracle focused
// on the one thing under test — membership representation.
func (b *bitsetRefEdgeMarkovian) pairAt(i int) (u, v int32) {
	e := EdgeMarkovian{n: b.n}
	return e.pairAt(i)
}

func (b *bitsetRefEdgeMarkovian) start(seed uint64) {
	b.r.Reseed(seed)
	words := (b.pairs() + 63) / 64
	if b.bits == nil {
		b.bits = make([]uint64, words)
		b.adj = make([][]int32, b.n)
	}
	clear(b.bits)
	for u := range b.adj {
		b.adj[u] = b.adj[u][:0]
	}
	b.edges = b.edges[:0]
	pi := b.birth / (b.birth + b.death)
	for i, p := b.r.SkipPast(0, pi), uint64(b.pairs()); i < p; i = b.r.SkipPast(i+1, pi) {
		b.insert(b.pairAt(int(i)))
	}
}

func (b *bitsetRefEdgeMarkovian) advance() {
	b.born = b.born[:0]
	for i, p := b.r.SkipPast(0, b.birth), uint64(b.pairs()); i < p; i = b.r.SkipPast(i+1, b.birth) {
		if b.bits[i>>6]&(1<<(i&63)) == 0 {
			u, v := b.pairAt(int(i))
			b.born = append(b.born, pack(u, v))
		}
	}
	b.deadPos = b.deadPos[:0]
	for i, p := b.r.SkipPast(0, b.death), uint64(len(b.edges)); i < p; i = b.r.SkipPast(i+1, b.death) {
		b.deadPos = append(b.deadPos, int32(i))
	}
	for k := len(b.deadPos) - 1; k >= 0; k-- {
		b.removeAt(int(b.deadPos[k]))
	}
	for _, pk := range b.born {
		b.insert(unpack(pk))
	}
}

func (b *bitsetRefEdgeMarkovian) insert(u, v int32) {
	i := b.pairIndex(int(u), int(v))
	b.bits[i>>6] |= 1 << (i & 63)
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
	b.edges = append(b.edges, pack(u, v))
}

func (b *bitsetRefEdgeMarkovian) removeAt(pos int) {
	u, v := unpack(b.edges[pos])
	i := b.pairIndex(int(u), int(v))
	b.bits[i>>6] &^= 1 << (i & 63)
	b.dropNeighbor(u, v)
	b.dropNeighbor(v, u)
	last := len(b.edges) - 1
	b.edges[pos] = b.edges[last]
	b.edges = b.edges[:last]
}

func (b *bitsetRefEdgeMarkovian) dropNeighbor(u, v int32) {
	ns := b.adj[u]
	for k, w := range ns {
		if w == v {
			last := len(ns) - 1
			ns[k] = ns[last]
			b.adj[u] = ns[:last]
			return
		}
	}
	panic("oracle adjacency desynchronized")
}

func (b *bitsetRefEdgeMarkovian) canSend(u, v int) bool {
	if u == v {
		return true
	}
	if u > v {
		u, v = v, u
	}
	i := b.pairIndex(u, v)
	return b.bits[i>>6]&(1<<(i&63)) != 0
}

func (b *bitsetRefEdgeMarkovian) samplePeer(u int, r *rng.Source) int {
	ns := b.adj[u]
	if len(ns) == 0 {
		return u
	}
	return int(ns[r.Intn(len(ns))])
}

// TestEdgeMarkovianMatchesBitsetOracle runs the production engine and the
// bitset oracle in lockstep across sizes, rates, seeds, and pooled reuse
// (repeated Start on the same warmed instances), requiring byte-identical
// edge sets and SamplePeer streams every round.
func TestEdgeMarkovianMatchesBitsetOracle(t *testing.T) {
	cases := []struct {
		n            int
		birth, death float64
	}{
		{2, 0.5, 0.5},
		{17, 0.05, 0.2},
		{33, 0.3, 0.3},
		{64, 0.01, 0.5},
		{97, 0.9, 0.1}, // dense regime: long probe runs in the hash set
	}
	for _, tc := range cases {
		g := NewEdgeMarkovian(tc.n, tc.birth, tc.death)
		ref := newBitsetRef(tc.n, tc.birth, tc.death)
		// Three Starts per instance pair: pooled reuse must reset the hash
		// set as completely as clearing the bitset did.
		for run := 0; run < 3; run++ {
			seed := uint64(31*run) + 7
			g.Start(seed)
			ref.start(seed)
			rg, rr := rng.New(seed^0xabcd), rng.New(seed^0xabcd)
			for round := 0; round <= 8; round++ {
				if round > 0 {
					g.Advance(round)
					ref.advance()
				}
				if len(g.edges) != len(ref.edges) {
					t.Fatalf("n=%d b=%g d=%g run %d round %d: edge count %d vs oracle %d",
						tc.n, tc.birth, tc.death, run, round, len(g.edges), len(ref.edges))
				}
				for i := range g.edges {
					if g.edges[i] != ref.edges[i] {
						t.Fatalf("n=%d b=%g d=%g run %d round %d: edge list diverges at %d",
							tc.n, tc.birth, tc.death, run, round, i)
					}
				}
				for u := 0; u < tc.n; u++ {
					for v := u + 1; v < tc.n; v++ {
						if g.CanSend(u, v) != ref.canSend(u, v) {
							t.Fatalf("n=%d b=%g d=%g run %d round %d: CanSend(%d,%d) diverges",
								tc.n, tc.birth, tc.death, run, round, u, v)
						}
					}
					for k := 0; k < 3; k++ {
						if got, want := g.SamplePeer(u, rg), ref.samplePeer(u, rr); got != want {
							t.Fatalf("n=%d b=%g d=%g run %d round %d: SamplePeer(%d) = %d, oracle %d",
								tc.n, tc.birth, tc.death, run, round, u, got, want)
						}
					}
				}
			}
		}
	}
}
