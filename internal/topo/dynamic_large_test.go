package topo

import (
	"math"
	"runtime"
	"testing"
)

// This file carries the large-n acceptance checks for the O(edges) membership
// refactor: heap footprint proportional to present edges (not pairs), and a
// million-node process that starts, advances, and stays allocation-free per
// round. Both are skipped under -short; the CI test job runs them.

// heapAlloc returns the live-heap size after a forced collection, so deltas
// measure retained structures rather than transient garbage.
func heapAlloc() int64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return int64(m.HeapAlloc)
}

// edgeMarkovianAtDegree builds a process with stationary mean degree deg.
func edgeMarkovianAtDegree(n int, deg float64, death float64) *EdgeMarkovian {
	pi := deg / float64(n-1)
	return NewEdgeMarkovian(n, death*pi/(1-pi), death)
}

// TestEdgeMarkovianHeapFootprint pins the tentpole memory claim with
// runtime.MemStats: an n = 10⁵ process at degree 64 must retain a few
// multiples of edge-count × entry-size, where an entry spans the membership
// table (≤ 16 bytes per edge at maximum load, doubled table worst case),
// the packed edge list, and two int32 neighbor-list slots plus slab headroom.
// The dense presence bitset this replaced would alone retain n²/8 = 1.25 GB
// and fail the budget by an order of magnitude.
func TestEdgeMarkovianHeapFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n footprint check skipped in -short mode")
	}
	const (
		n   = 100_000
		deg = 64.0
	)
	edges := deg * n / 2
	// Worst-case bytes per present edge: 2×8 for a just-doubled hash table,
	// 2×8 for a just-doubled edge list, 2×4 adjacency entries — plus the
	// adjacency slab's variance headroom (cap0/mean ≈ 1.75). Budget three
	// multiples of a 48-byte entry to stay assertive but unflaky.
	budget := int64(3 * 48 * edges)
	before := heapAlloc()
	g := edgeMarkovianAtDegree(n, deg, 0.002)
	g.Start(1)
	delta := heapAlloc() - before
	if delta > budget {
		t.Fatalf("n=%d degree-%g process retains %d MiB, budget %d MiB (Θ(n²) structure reintroduced?)",
			n, deg, delta>>20, budget>>20)
	}
	if got, want := float64(g.EdgeCount()), edges; math.Abs(got-want) > 6*math.Sqrt(want) {
		t.Fatalf("round-0 edge count %d, want ≈ %d", g.EdgeCount(), int(want))
	}
	runtime.KeepAlive(g)
}

// TestEdgeMarkovianMillionNodes is the acceptance check at the lifted cap:
// n = 2²⁰ (degree ≈ 64) Starts, holds ~2²⁵ edges, Advances with Θ(flips)
// work, and allocates nothing per round once warm.
func TestEdgeMarkovianMillionNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node check skipped in -short mode")
	}
	const n = 1 << 20
	g := edgeMarkovianAtDegree(n, 64, 0.002)
	g.Start(3)
	want := 64.0 * n / 2
	if got := float64(g.EdgeCount()); math.Abs(got-want) > 6*math.Sqrt(want) {
		t.Fatalf("round-0 edge count %d, want ≈ %d", g.EdgeCount(), int(want))
	}
	round := 1
	for ; round <= 5; round++ { // warm scratch buffers to their high-water marks
		g.Advance(round)
	}
	if g.Flips() == 0 {
		t.Fatal("no flips at death=0.002 over 2²⁵ edges")
	}
	allocs := testing.AllocsPerRun(3, func() {
		g.Advance(round)
		round++
	})
	if allocs != 0 {
		t.Errorf("million-node Advance allocates %.1f objects per round after warm-up, want 0", allocs)
	}
}
