package topo

import (
	"math"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// This file pins the sparse edge-Markovian engine's *distributional*
// correctness: skip-sampling must be exchangeable with the dense per-pair
// Bernoulli scan it replaced. The dense reference below is an independent
// reimplementation of the old engine (one coin per pair per round); the
// sparse engine is compared against it — and against the analytic stationary
// law — on edge counts, degree histograms, and per-round flip counts over
// many seeds. All seeds are fixed, so the checks are deterministic.

// denseEdgeMarkovian is the Θ(n²) reference: one Bernoulli draw per
// potential pair per round, presence in a plain bool slice.
type denseEdgeMarkovian struct {
	n            int
	birth, death float64
	r            *rng.Source
	present      []bool
}

func newDenseRef(n int, birth, death float64) *denseEdgeMarkovian {
	return &denseEdgeMarkovian{n: n, birth: birth, death: death,
		present: make([]bool, n*(n-1)/2)}
}

func (d *denseEdgeMarkovian) start(seed uint64) {
	d.r = rng.New(seed)
	pi := d.birth / (d.birth + d.death)
	for i := range d.present {
		d.present[i] = d.r.Bool(pi)
	}
}

func (d *denseEdgeMarkovian) advance() (flips int) {
	for i := range d.present {
		if d.present[i] {
			if d.r.Bool(d.death) {
				d.present[i] = false
				flips++
			}
		} else if d.r.Bool(d.birth) {
			d.present[i] = true
			flips++
		}
	}
	return flips
}

func (d *denseEdgeMarkovian) edgeCount() int {
	c := 0
	for _, p := range d.present {
		if p {
			c++
		}
	}
	return c
}

func (d *denseEdgeMarkovian) degrees() []int {
	deg := make([]int, d.n)
	i := 0
	for u := 0; u < d.n-1; u++ {
		for v := u + 1; v < d.n; v++ {
			if d.present[i] {
				deg[u]++
				deg[v]++
			}
			i++
		}
	}
	return deg
}

// distParams is the small-n operating point shared by the distributional
// checks: π = 1/3 over 276 pairs, so means and variances are big enough to
// test and small enough to sample a few hundred times.
const (
	distN     = 24
	distBirth = 0.1
	distDeath = 0.2
	distSeeds = 300
)

// sampleEngines runs both engines over fresh seeds and returns, per engine,
// the round-`rounds` edge counts and pooled degree histograms.
func sampleEngines(t *testing.T, rounds int) (sparseEC, denseEC []float64, sparseDeg, denseDeg map[int]int) {
	t.Helper()
	sparseDeg = make(map[int]int)
	denseDeg = make(map[int]int)
	g := NewEdgeMarkovian(distN, distBirth, distDeath)
	d := newDenseRef(distN, distBirth, distDeath)
	for seed := uint64(0); seed < distSeeds; seed++ {
		g.Start(1000 + seed)
		d.start(5000 + seed)
		for r := 1; r <= rounds; r++ {
			g.Advance(r)
			d.advance()
		}
		sparseEC = append(sparseEC, float64(g.EdgeCount()))
		denseEC = append(denseEC, float64(d.edgeCount()))
		for u := 0; u < distN; u++ {
			sparseDeg[g.Degree(u)]++
		}
		for _, dg := range d.degrees() {
			denseDeg[dg]++
		}
	}
	return sparseEC, denseEC, sparseDeg, denseDeg
}

func meanSD(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)-1))
	return mean, sd
}

// TestEdgeMarkovianEdgeCountMatchesDenseReference compares the sparse
// engine's stationary edge-count distribution against both the dense
// reference and the analytic Binomial(P, π) law, at round 0 (the Start draw)
// and after several Advance rounds (stationarity preservation).
func TestEdgeMarkovianEdgeCountMatchesDenseReference(t *testing.T) {
	pi := distBirth / (distBirth + distDeath)
	pairs := float64(distN * (distN - 1) / 2)
	wantMean := pi * pairs
	wantSD := math.Sqrt(pairs * pi * (1 - pi))
	// The sample mean of distSeeds draws has sd wantSD/√distSeeds; 5σ keeps
	// the fixed-seed check deterministic-safe.
	tol := 5 * wantSD / math.Sqrt(distSeeds)
	for _, rounds := range []int{0, 6} {
		sparseEC, denseEC, _, _ := sampleEngines(t, rounds)
		sm, ssd := meanSD(sparseEC)
		dm, _ := meanSD(denseEC)
		if math.Abs(sm-wantMean) > tol {
			t.Errorf("round %d: sparse edge-count mean %.1f, want %.1f ± %.1f", rounds, sm, wantMean, tol)
		}
		if math.Abs(dm-wantMean) > tol {
			t.Errorf("round %d: dense edge-count mean %.1f, want %.1f ± %.1f (reference itself broken?)", rounds, dm, wantMean, tol)
		}
		if math.Abs(sm-dm) > 2*tol {
			t.Errorf("round %d: sparse mean %.1f vs dense mean %.1f differ beyond ±%.1f", rounds, sm, dm, 2*tol)
		}
		// Variance must match the binomial too — a skip-sampler that, say,
		// correlated neighboring pairs would shift it even with the mean right.
		if ssd < wantSD*0.75 || ssd > wantSD*1.35 {
			t.Errorf("round %d: sparse edge-count sd %.2f, want ≈ %.2f", rounds, ssd, wantSD)
		}
	}
}

// TestEdgeMarkovianDegreeChiSquare pools node degrees over many seeds and
// chi-square-tests the sparse engine's histogram against the analytic
// Binomial(n−1, π) pmf, and against the dense reference's histogram.
func TestEdgeMarkovianDegreeChiSquare(t *testing.T) {
	pi := distBirth / (distBirth + distDeath)
	_, _, sparseDeg, denseDeg := sampleEngines(t, 4)
	total := float64(distSeeds * distN)

	// Binomial(n−1, π) pmf, tails pooled so every expected bin count is ≥ 5.
	m := distN - 1
	pmf := make([]float64, m+1)
	for k := 0; k <= m; k++ {
		pmf[k] = math.Exp(lchoose(m, k) + float64(k)*math.Log(pi) + float64(m-k)*math.Log(1-pi))
	}
	lo, hi := 0, m
	for pmf[lo]*total < 5 {
		lo++
	}
	for pmf[hi]*total < 5 {
		hi--
	}
	chi := func(hist map[int]int, expect func(k int) float64) float64 {
		stat := 0.0
		for k := lo; k <= hi; k++ {
			obs := 0.0
			if k == lo || k == hi { // pooled tails
				for d, c := range hist {
					if (k == lo && d <= lo) || (k == hi && d >= hi) {
						obs += float64(c)
					}
				}
			} else {
				obs = float64(hist[k])
			}
			exp := expect(k)
			stat += (obs - exp) * (obs - exp) / exp
		}
		return stat
	}
	expectBinom := func(k int) float64 {
		p := pmf[k]
		if k == lo {
			p = 0
			for j := 0; j <= lo; j++ {
				p += pmf[j]
			}
		}
		if k == hi {
			p = 0
			for j := hi; j <= m; j++ {
				p += pmf[j]
			}
		}
		return p * total
	}
	// Degrees within one graph are weakly dependent (each edge feeds two
	// nodes), which inflates the statistic slightly — the thresholds are
	// therefore several times the 0.001 critical value for these df rather
	// than a sharp test. A wrong sampler (bias in the skip length, a missed
	// row in the pair decode) overshoots these by orders of magnitude.
	df := float64(hi - lo)
	limit := 4 * (df + 3*math.Sqrt(2*df))
	if stat := chi(sparseDeg, expectBinom); stat > limit {
		t.Errorf("sparse degree chi-square %.1f vs Binomial(%d, %.3f), limit %.1f", stat, m, pi, limit)
	}
	if stat := chi(denseDeg, expectBinom); stat > limit {
		t.Errorf("dense degree chi-square %.1f vs Binomial(%d, %.3f), limit %.1f (reference itself broken?)", stat, m, pi, limit)
	}
}

// lchoose is log C(n, k) via lgamma.
func lchoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// TestEdgeMarkovianFlipExpectation checks the per-round flip count: at
// stationarity the expected number of events is death·E[present] +
// birth·E[absent] = 2·death·π·P, and Flips must track it — that is the whole
// Θ(flips) claim. The dense reference's own flip count is averaged alongside
// as a cross-check.
func TestEdgeMarkovianFlipExpectation(t *testing.T) {
	pi := distBirth / (distBirth + distDeath)
	pairs := float64(distN * (distN - 1) / 2)
	want := 2 * distDeath * pi * pairs // death·πP + birth·(1−π)P, equal at stationarity
	const rounds = 40
	g := NewEdgeMarkovian(distN, distBirth, distDeath)
	d := newDenseRef(distN, distBirth, distDeath)
	var sparseSum, denseSum float64
	samples := 0
	for seed := uint64(0); seed < 60; seed++ {
		g.Start(2000 + seed)
		d.start(7000 + seed)
		for r := 1; r <= rounds; r++ {
			g.Advance(r)
			sparseSum += float64(g.Flips())
			denseSum += float64(d.advance())
			samples++
		}
	}
	sparseMean := sparseSum / float64(samples)
	denseMean := denseSum / float64(samples)
	// Per-round flips ~ sum of two binomials with total sd ≈ √want; the mean
	// over `samples` rounds is tight, but rounds within a run are dependent,
	// so allow a generous 10% band.
	if math.Abs(sparseMean-want) > want*0.1 {
		t.Errorf("sparse mean flips/round %.2f, want %.2f ± 10%%", sparseMean, want)
	}
	if math.Abs(denseMean-want) > want*0.1 {
		t.Errorf("dense mean flips/round %.2f, want %.2f ± 10%% (reference itself broken?)", denseMean, want)
	}
}

// TestEdgeMarkovianIncrementalMatchesRebuild is the structural property test
// behind the incremental adjacency: after any Start/Advance history, the
// neighbor lists, present-edge list, and membership set must describe
// exactly the same graph a from-scratch rebuild would — same edges, no
// duplicates, positions consistent.
func TestEdgeMarkovianIncrementalMatchesRebuild(t *testing.T) {
	check := func(g *EdgeMarkovian) bool {
		n := g.n
		// Rebuild the adjacency from the membership set alone.
		wantAdj := make([][]int32, n)
		edgeCount := 0
		for u := 0; u < n-1; u++ {
			for v := u + 1; v < n; v++ {
				if g.present.Has(pack(int32(u), int32(v))) {
					wantAdj[u] = append(wantAdj[u], int32(v))
					wantAdj[v] = append(wantAdj[v], int32(u))
					edgeCount++
				}
			}
		}
		if edgeCount != len(g.edges) || g.present.Len() != len(g.edges) {
			return false
		}
		// The present-edge list must hold each present pair exactly once,
		// canonically packed.
		seen := make(map[uint64]bool, len(g.edges))
		for _, pk := range g.edges {
			u, v := unpack(pk)
			if u < 0 || v < 0 || int(u) >= n || int(v) >= n || u >= v || seen[pk] {
				return false
			}
			if !g.present.Has(pk) {
				return false
			}
			seen[pk] = true
		}
		// Neighbor lists equal the rebuild as sets (the incremental lists are
		// unordered by design).
		for u := 0; u < n; u++ {
			got := slices.Clone(g.adj[u])
			slices.Sort(got)
			if !slices.Equal(got, wantAdj[u]) {
				return false
			}
		}
		return true
	}
	f := func(seed uint64, extra uint8) bool {
		for _, rates := range [][2]float64{{0.15, 0.3}, {0.02, 0.9}, {1, 1}, {0.3, 0}} {
			g := NewEdgeMarkovian(19, rates[0], rates[1])
			g.Start(seed)
			if !check(g) {
				return false
			}
			rounds := 2 + int(extra%6)
			for r := 1; r <= rounds; r++ {
				g.Advance(r)
				if !check(g) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeMarkovianPairAtRoundTrips pins the pair-index decode against the
// encode over every pair of several sizes (including the decode's float
// boundary behavior at the largest supported n).
func TestEdgeMarkovianPairAtRoundTrips(t *testing.T) {
	for _, n := range []int{2, 3, 24, 257} {
		g := NewEdgeMarkovian(n, 0.1, 0.1)
		i := 0
		for u := 0; u < n-1; u++ {
			for v := u + 1; v < n; v++ {
				gu, gv := g.pairAt(i)
				if int(gu) != u || int(gv) != v {
					t.Fatalf("n=%d: pairAt(%d) = (%d,%d), want (%d,%d)", n, i, gu, gv, u, v)
				}
				i++
			}
		}
	}
	// At the size cap (n = 2²⁰, pairs ≈ 5.5×10¹¹ — the exactness audit on
	// pairs() is what keeps the decode float path inside 2⁵³ here), check the
	// extremes and a row-boundary sweep rather than all pairs.
	g := NewEdgeMarkovian(MaxDynamicN, 0.001, 0.5)
	last := g.pairs() - 1
	for _, i := range []int{0, 1, MaxDynamicN - 2, MaxDynamicN - 1, last, last - 1} {
		u, v := g.pairAt(i)
		if u < 0 || v <= u || int(v) >= MaxDynamicN || g.pairIndex(int(u), int(v)) != i {
			t.Fatalf("n=%d: pairAt(%d) = (%d,%d) does not round-trip", MaxDynamicN, i, u, v)
		}
	}
	for row := 0; row < MaxDynamicN-1; row += 1021 {
		i := g.rowBase(row)
		if u, v := g.pairAt(i); int(u) != row || int(v) != row+1 {
			t.Fatalf("n=%d: pairAt(rowBase(%d)) = (%d,%d), want (%d,%d)", MaxDynamicN, row, u, v, row, row+1)
		}
		if i > 0 {
			if u, v := g.pairAt(i - 1); int(u) != row-1 || int(v) != MaxDynamicN-1 {
				t.Fatalf("n=%d: pairAt(rowBase(%d)-1) = (%d,%d), want (%d,%d)", MaxDynamicN, row, u, v, row-1, MaxDynamicN-1)
			}
		}
	}
}
