package topo

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// Adjacency graphs must satisfy the handshake lemma and symmetric CanSend.
func TestAdjacencyInvariants(t *testing.T) {
	graphs := []Topology{
		NewRing(17),
		NewRandomRegular(50, 4, 3),
		NewRandomRegular(61, 6, 8),
		NewErdosRenyi(40, 0.2, 5),
	}
	for _, g := range graphs {
		n := g.N()
		total := 0
		for u := 0; u < n; u++ {
			total += g.Degree(u)
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				if g.CanSend(u, v) != g.CanSend(v, u) {
					t.Fatalf("%s: CanSend not symmetric at (%d,%d)", g.Name(), u, v)
				}
			}
		}
		if total%2 != 0 {
			t.Fatalf("%s: odd degree sum %d (handshake lemma)", g.Name(), total)
		}
	}
}

func TestDegreeMatchesCanSend(t *testing.T) {
	g := NewErdosRenyi(30, 0.3, 7)
	for u := 0; u < 30; u++ {
		count := 0
		for v := 0; v < 30; v++ {
			if v != u && g.CanSend(u, v) {
				count++
			}
		}
		if count != g.Degree(u) {
			t.Fatalf("degree(%d) = %d but CanSend count = %d", u, g.Degree(u), count)
		}
	}
}

func TestSamplePeerAlwaysSendable(t *testing.T) {
	r := rng.New(11)
	f := func(seed uint64, which uint8) bool {
		var g Topology
		switch which % 4 {
		case 0:
			g = NewComplete(20)
		case 1:
			g = NewRing(20)
		case 2:
			g = NewRandomRegular(20, 4, seed)
		default:
			g = NewErdosRenyi(20, 0.3, seed)
		}
		for u := 0; u < g.N(); u++ {
			for i := 0; i < 5; i++ {
				v := g.SamplePeer(u, r)
				if !g.CanSend(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRegularDifferentSeedsDiffer(t *testing.T) {
	a := NewRandomRegular(60, 4, 1)
	b := NewRandomRegular(60, 4, 2)
	same := true
	for u := 0; u < 60 && same; u++ {
		for v := 0; v < 60; v++ {
			if a.CanSend(u, v) != b.CanSend(u, v) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

// TestDynamicDeterminismProperty is the quick-check form of the dynamics
// determinism contract: for arbitrary seeds and either process, two
// instances started from the same seed agree bit-for-bit on every round's
// edge set, and so do their SamplePeer draws when fed equal agent streams —
// the property that makes dynamic runs reproducible across worker counts.
func TestDynamicDeterminismProperty(t *testing.T) {
	f := func(seed uint64, which uint8, rounds uint8) bool {
		mk := func() Dynamic {
			switch which % 4 {
			case 0:
				return NewEdgeMarkovian(18, 0.15, 0.35)
			case 1:
				return NewRewireRing(18, 0.5)
			case 2:
				return NewDRegular(18, 4)
			default:
				return NewGeometric(18, 2, 0.15)
			}
		}
		a, b := mk(), mk()
		a.Start(seed)
		b.Start(seed)
		ra, rb := rng.New(seed+1), rng.New(seed+1)
		total := 2 + int(rounds%8)
		for round := 0; round < total; round++ {
			if round > 0 {
				a.Advance(round)
				b.Advance(round)
			}
			for u := 0; u < 18; u++ {
				for v := u + 1; v < 18; v++ {
					if a.CanSend(u, v) != b.CanSend(u, v) {
						return false
					}
				}
				if a.SamplePeer(u, ra) != b.SamplePeer(u, rb) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicSamplePeerAlwaysSendable extends the static sampling property
// to evolving edge sets: at every round, SamplePeer only returns peers the
// engine would accept.
func TestDynamicSamplePeerAlwaysSendable(t *testing.T) {
	r := rng.New(13)
	f := func(seed uint64, which uint8) bool {
		var g Dynamic
		switch which % 4 {
		case 0:
			g = NewEdgeMarkovian(20, 0.2, 0.4)
		case 1:
			g = NewRewireRing(20, 0.6)
		case 2:
			g = NewDRegular(20, 5)
		default:
			g = NewGeometric(20, 2, 0.1)
		}
		g.Start(seed)
		for round := 0; round < 5; round++ {
			if round > 0 {
				g.Advance(round)
			}
			for u := 0; u < g.N(); u++ {
				for i := 0; i < 4; i++ {
					if v := g.SamplePeer(u, r); !g.CanSend(u, v) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyPanics(t *testing.T) {
	cases := []func(){
		func() { NewRing(2) },
		func() { NewRandomRegular(2, 4, 1) },
		func() { NewRandomRegular(10, 1, 1) },
		func() { NewErdosRenyi(0, 0.5, 1) },
		func() { NewErdosRenyi(10, -0.1, 1) },
		func() { NewErdosRenyi(10, 1.1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
