package topo

import (
	"math"
	"testing"
)

// symmetricDiff counts edges present in exactly one of two edge-set
// snapshots (as produced by edgeSet) — the ground truth for Flips.
func symmetricDiff(a, b []bool) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// TestDRegularDegrees pins the configuration-model construction: every
// degree is ≤ d, and since self-loops and duplicates are rare for d ≪ n the
// mean degree stays within a hair of d.
func TestDRegularDegrees(t *testing.T) {
	const n, d = 500, 8
	g := NewDRegular(n, d)
	g.Start(17)
	for round := 0; round <= 5; round++ {
		if round > 0 {
			g.Advance(round)
		}
		total := 0
		for u := 0; u < n; u++ {
			deg := g.Degree(u)
			if deg > d {
				t.Fatalf("round %d: degree(%d) = %d exceeds d = %d", round, u, deg, d)
			}
			total += deg
		}
		if mean := float64(total) / n; mean < d-0.5 {
			t.Fatalf("round %d: mean degree %.2f, want ≈ %d (too many dropped pairings)", round, mean, d)
		}
	}
}

// TestDRegularFlipsExact pins Flips against the explicit symmetric
// difference of consecutive edge-set snapshots.
func TestDRegularFlipsExact(t *testing.T) {
	g := NewDRegular(60, 4)
	g.Start(5)
	if g.Flips() != 0 {
		t.Fatalf("Flips = %d right after Start, want 0", g.Flips())
	}
	prev := edgeSet(g)
	for round := 1; round <= 6; round++ {
		g.Advance(round)
		cur := edgeSet(g)
		if want := symmetricDiff(prev, cur); g.Flips() != want {
			t.Fatalf("round %d: Flips = %d, symmetric difference = %d", round, g.Flips(), want)
		}
		prev = cur
	}
}

// TestDRegularFullChurn pins the process's role as the maximal-churn
// extreme: consecutive matchings are independent, so nearly every edge
// flips — the symmetric difference stays close to twice the edge count.
func TestDRegularFullChurn(t *testing.T) {
	const n, d = 400, 6
	g := NewDRegular(n, d)
	g.Start(9)
	for round := 1; round <= 4; round++ {
		edges := g.EdgeCount()
		g.Advance(round)
		if g.Flips() < 3*edges/2 {
			t.Fatalf("round %d: only %d flips over ~%d edges — matchings too correlated", round, g.Flips(), edges)
		}
	}
}

// TestGeometricMatchesBruteForce rebuilds the geometric graph by the O(n²)
// distance predicate each round and requires the cell-grid adjacency, the
// CanSend predicate, and Flips to agree with it exactly — including across
// the torus wrap, which the scattered points exercise from round 0.
func TestGeometricMatchesBruteForce(t *testing.T) {
	const n = 200
	g := NewGeometric(n, 6, 0.08)
	g.Start(23)
	var prev []bool
	for round := 0; round <= 5; round++ {
		if round > 0 {
			g.Advance(round)
		}
		edges := 0
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				want := torusDist2(g.x[u], g.y[u], g.x[v], g.y[v]) <= g.r2
				if g.CanSend(u, v) != want {
					t.Fatalf("round %d: CanSend(%d,%d) = %v, distance predicate %v", round, u, v, g.CanSend(u, v), want)
				}
				inAdj := false
				for _, w := range g.adj[u] {
					if int(w) == v {
						inAdj = true
						break
					}
				}
				if inAdj != want {
					t.Fatalf("round %d: adjacency(%d,%d) = %v, distance predicate %v", round, u, v, inAdj, want)
				}
				if want {
					edges++
				}
			}
		}
		if g.EdgeCount() != edges {
			t.Fatalf("round %d: EdgeCount = %d, brute force %d", round, g.EdgeCount(), edges)
		}
		cur := edgeSet(g)
		if round > 0 {
			if want := symmetricDiff(prev, cur); g.Flips() != want {
				t.Fatalf("round %d: Flips = %d, symmetric difference = %d", round, g.Flips(), want)
			}
		}
		prev = cur
	}
}

// TestGeometricJitterZeroFrozen pins the jitter = 0 degeneration: the point
// set never moves, so every round is the same graph and Flips stays 0.
func TestGeometricJitterZeroFrozen(t *testing.T) {
	g := NewGeometric(120, 5, 0)
	g.Start(3)
	base := edgeSet(g)
	for round := 1; round <= 4; round++ {
		g.Advance(round)
		if g.Flips() != 0 {
			t.Fatalf("round %d: Flips = %d with jitter 0", round, g.Flips())
		}
		if !equalEdges(base, edgeSet(g)) {
			t.Fatalf("round %d: edge set moved with jitter 0", round)
		}
	}
}

// TestGeometricDegreeNearTarget checks the radius calibration: the mean
// degree of a scattered point set should land near the deg parameter
// (expected degree ≈ π r² n for a uniform point and r = √(deg/(π n))).
func TestGeometricDegreeNearTarget(t *testing.T) {
	const n, deg = 3000, 12.0
	g := NewGeometric(n, deg, 0.01)
	g.Start(8)
	for round := 0; round <= 2; round++ {
		if round > 0 {
			g.Advance(round)
		}
		total := 0
		for u := 0; u < n; u++ {
			total += g.Degree(u)
		}
		mean := float64(total) / n
		if math.Abs(mean-deg) > deg*0.15 {
			t.Fatalf("round %d: mean degree %.2f, want ≈ %g ± 15%%", round, mean, deg)
		}
	}
}

// TestGeometricChurnScalesWithJitter checks the knob the churn sweeps turn:
// more jitter, more flips, and small jitter gives per-round churn far below
// the edge count (the regime the consensus experiments need).
func TestGeometricChurnScalesWithJitter(t *testing.T) {
	const n, deg = 2000, 8.0
	flipsAt := func(jitter float64) float64 {
		g := NewGeometric(n, deg, jitter)
		g.Start(4)
		sum := 0
		for round := 1; round <= 10; round++ {
			g.Advance(round)
			sum += g.Flips()
		}
		return float64(sum) / 10
	}
	small, large := flipsAt(0.0005), flipsAt(0.01)
	if small <= 0 {
		t.Fatal("no churn at jitter 0.0005")
	}
	if large < 4*small {
		t.Fatalf("flips/round %.1f at jitter 0.01 vs %.1f at 0.0005 — churn not scaling with jitter", large, small)
	}
	if edges := deg * n / 2; small > 0.25*edges {
		t.Fatalf("flips/round %.1f at jitter 0.0005 is not a low-churn regime over ~%.0f edges", small, edges)
	}
}
