package topo

import (
	"testing"

	"repro/internal/rng"
)

// TestPairSetDifferential drives the hash set through a long random
// Add/Remove/Has trace against a plain map, over a small key space so probe
// runs collide and deletions routinely punch holes inside runs — the regime
// backward-shift deletion must survive.
func TestPairSetDifferential(t *testing.T) {
	r := rng.New(99)
	var s pairSet
	ref := make(map[uint64]bool)
	const keySpace = 300 // small enough to revisit keys constantly
	for step := 0; step < 200000; step++ {
		k := uint64(r.Intn(keySpace)) + 1 // keys must be nonzero
		switch r.Intn(3) {
		case 0:
			s.Add(k)
			ref[k] = true
		case 1:
			s.Remove(k)
			delete(ref, k)
		default:
			if s.Has(k) != ref[k] {
				t.Fatalf("step %d: Has(%d) = %v, want %v", step, k, s.Has(k), ref[k])
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, s.Len(), len(ref))
		}
	}
	for k := uint64(1); k <= keySpace; k++ {
		if s.Has(k) != ref[k] {
			t.Fatalf("final: Has(%d) = %v, want %v", k, s.Has(k), ref[k])
		}
	}
}

// TestPairSetDeleteRestoresLayout pins the tombstone-free claim in its
// strongest form: removing a key leaves the table byte-identical to a run
// that never inserted it, for every choice of removed key in a colliding
// workload.
func TestPairSetDeleteRestoresLayout(t *testing.T) {
	r := rng.New(7)
	keys := make([]uint64, 40)
	for i := range keys {
		keys[i] = uint64(r.Intn(1<<10)) + 1
	}
	for skip := range keys {
		var with, without pairSet
		for _, k := range keys {
			with.Add(k)
		}
		with.Remove(keys[skip])
		dup := false
		for i, k := range keys {
			if i != skip && k == keys[skip] {
				dup = true
			}
		}
		if dup {
			continue // the key survives via its duplicate; layouts legitimately differ
		}
		for i, k := range keys {
			if i != skip {
				without.Add(k)
			}
		}
		if len(with.slots) != len(without.slots) {
			t.Fatalf("skip %d: table sizes differ (%d vs %d)", skip, len(with.slots), len(without.slots))
		}
		for i := range with.slots {
			if with.slots[i] != without.slots[i] {
				t.Fatalf("skip %d: slot %d differs after delete (%d vs %d)", skip, i, with.slots[i], without.slots[i])
			}
		}
	}
}

// TestPairSetSteadyStateAllocs pins the pooled-reuse contract: once a table
// has grown to its high-water capacity, churn at constant size and
// Clear/refill cycles allocate nothing.
func TestPairSetSteadyStateAllocs(t *testing.T) {
	var s pairSet
	const live = 1000
	for k := uint64(1); k <= live; k++ {
		s.Add(k)
	}
	next := uint64(live + 1)
	allocs := testing.AllocsPerRun(200, func() {
		s.Remove(next - live) // oldest live key
		s.Add(next)
		next++
	})
	if allocs != 0 {
		t.Errorf("constant-size churn allocates %.1f objects per op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() {
		s.Clear()
		for k := uint64(1); k <= live; k++ {
			s.Add(k)
		}
	})
	if allocs != 0 {
		t.Errorf("Clear/refill cycle allocates %.1f objects, want 0", allocs)
	}
}

// TestPairSetReserve checks that Reserve pre-sizes for the requested load and
// that subsequent fills up to that count do not grow the table.
func TestPairSetReserve(t *testing.T) {
	var s pairSet
	s.Reserve(10000)
	before := len(s.slots)
	if before == 0 || 4*10000 > 3*before {
		t.Fatalf("Reserve(10000) left %d slots, above the ¾ load ceiling", before)
	}
	for k := uint64(1); k <= 10000; k++ {
		s.Add(k)
	}
	if len(s.slots) != before {
		t.Fatalf("table grew from %d to %d slots despite Reserve", before, len(s.slots))
	}
}
