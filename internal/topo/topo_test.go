package topo

import (
	"testing"

	"repro/internal/rng"
)

func TestCompleteBasics(t *testing.T) {
	c := NewComplete(10)
	if c.N() != 10 || c.Name() != "complete" || c.Degree(3) != 9 {
		t.Fatalf("Complete basics wrong: %+v", c)
	}
	for u := 0; u < 10; u++ {
		for v := 0; v < 10; v++ {
			if !c.CanSend(u, v) {
				t.Fatalf("CanSend(%d,%d) = false on complete graph", u, v)
			}
		}
	}
	if c.CanSend(0, 10) || c.CanSend(-1, 0) {
		t.Fatal("CanSend allowed out-of-range node")
	}
}

func TestCompleteSamplePeerIncludesSelfAndIsUniform(t *testing.T) {
	// The paper samples u.a.r. in [n] including the caller; check uniformity.
	c := NewComplete(8)
	r := rng.New(5)
	counts := make([]int, 8)
	const draws = 80000
	for i := 0; i < draws; i++ {
		counts[c.SamplePeer(3, r)]++
	}
	for v, cnt := range counts {
		if cnt < 9000 || cnt > 11000 {
			t.Fatalf("peer %d sampled %d times, want ~10000", v, cnt)
		}
	}
	if counts[3] == 0 {
		t.Fatal("self never sampled; complete graph must include self per the paper")
	}
}

func TestCompletePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewComplete(0) did not panic")
		}
	}()
	NewComplete(0)
}

func TestRingStructure(t *testing.T) {
	g := NewRing(6)
	if g.N() != 6 || g.Name() != "ring" {
		t.Fatalf("ring basics: n=%d name=%s", g.N(), g.Name())
	}
	for u := 0; u < 6; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("ring degree(%d) = %d", u, g.Degree(u))
		}
		next := (u + 1) % 6
		prev := (u + 5) % 6
		if !g.CanSend(u, next) || !g.CanSend(u, prev) {
			t.Fatalf("ring missing edge at %d", u)
		}
		far := (u + 3) % 6
		if g.CanSend(u, far) && far != u {
			t.Fatalf("ring has chord %d-%d", u, far)
		}
	}
	if !g.CanSend(2, 2) {
		t.Fatal("self-send must be allowed")
	}
	if !IsConnected(g) {
		t.Fatal("ring not connected")
	}
}

func TestRingSamplePeerOnlyNeighbors(t *testing.T) {
	g := NewRing(10)
	r := rng.New(7)
	for i := 0; i < 1000; i++ {
		v := g.SamplePeer(4, r)
		if v != 3 && v != 5 {
			t.Fatalf("ring SamplePeer(4) = %d", v)
		}
	}
}

func TestRandomRegularDegreeAndConnectivity(t *testing.T) {
	for _, d := range []int{2, 4, 6} {
		g := NewRandomRegular(100, d, 42)
		if !IsConnected(g) {
			t.Fatalf("regular-%d not connected", d)
		}
		total := 0
		for u := 0; u < 100; u++ {
			deg := g.Degree(u)
			if deg > d || deg < 2 {
				t.Fatalf("regular-%d degree(%d) = %d", d, u, deg)
			}
			total += deg
		}
		// Union of cycles with dedup: average degree close to d.
		if avg := float64(total) / 100; avg < float64(d)-1 {
			t.Fatalf("regular-%d average degree %.2f too low", d, avg)
		}
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a := NewRandomRegular(50, 4, 9)
	b := NewRandomRegular(50, 4, 9)
	for u := 0; u < 50; u++ {
		for v := 0; v < 50; v++ {
			if a.CanSend(u, v) != b.CanSend(u, v) {
				t.Fatalf("same seed produced different graphs at (%d,%d)", u, v)
			}
		}
	}
}

func TestErdosRenyiEdgeDensity(t *testing.T) {
	const n, p = 200, 0.1
	g := NewErdosRenyi(n, p, 11)
	edges := 0
	for u := 0; u < n; u++ {
		edges += g.Degree(u)
	}
	edges /= 2
	want := p * float64(n) * float64(n-1) / 2
	if float64(edges) < 0.8*want || float64(edges) > 1.2*want {
		t.Fatalf("ER edges = %d, want ~%.0f", edges, want)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	empty := NewErdosRenyi(20, 0, 1)
	for u := 0; u < 20; u++ {
		if empty.Degree(u) != 0 {
			t.Fatal("p=0 graph has edges")
		}
		// Isolated nodes sample themselves.
		if v := empty.SamplePeer(u, rng.New(1)); v != u {
			t.Fatalf("isolated SamplePeer = %d, want self", v)
		}
	}
	full := NewErdosRenyi(20, 1, 1)
	for u := 0; u < 20; u++ {
		if full.Degree(u) != 19 {
			t.Fatalf("p=1 degree(%d) = %d", u, full.Degree(u))
		}
	}
	if !IsConnected(full) || IsConnected(empty) == true && empty.N() > 1 {
		t.Fatal("connectivity misreported on extreme graphs")
	}
}

func TestSamplePeerRespectsAdjacency(t *testing.T) {
	g := NewRandomRegular(64, 4, 3)
	r := rng.New(99)
	for u := 0; u < 64; u++ {
		for i := 0; i < 50; i++ {
			v := g.SamplePeer(u, r)
			if v != u && !g.CanSend(u, v) {
				t.Fatalf("SamplePeer(%d) = %d not adjacent", u, v)
			}
		}
	}
}

func TestIsConnectedOnComplete(t *testing.T) {
	if !IsConnected(NewComplete(17)) {
		t.Fatal("complete graph reported disconnected")
	}
	if !IsConnected(NewComplete(1)) {
		t.Fatal("K1 reported disconnected")
	}
}
