package topo

// pairSet is an open-addressing hash set of packed pair ids (pack(u, v) with
// u < v) — the O(present-edges) membership structure behind the dynamic
// processes' O(1) CanSend. It replaces the dense presence bitset, whose n²/8
// bytes were the last Θ(n²) structure in the package and the reason the
// dynamic cap sat at n = 32768.
//
// Design, in the order the constraints arrive:
//
//   - Keys are nonzero: pack(0, 0) is not a valid edge (endpoints satisfy
//     u < v), so the zero word doubles as the empty-slot sentinel and a
//     cleared table is all-zeros — Clear is one memclr, no per-slot state.
//   - Linear probing with a strong 64→64 mix (the splitmix64 finalizer) keeps
//     probe sequences short at the ¾ maximum load factor; the table doubles
//     when load would exceed it, so lookups stay O(1) expected.
//   - Deletion is tombstone-free backward-shift: after removing a key, the
//     probe run behind it is compacted by moving back every entry whose home
//     slot lies at or before the hole. No tombstones means no slow drift of
//     probe lengths under the birth/death churn the edge-Markovian process
//     generates — a Remove leaves the table exactly as if the key had never
//     been inserted, so load and probe cost depend only on the live keys.
//   - The only allocation is table growth. A pooled process that has reached
//     its high-water capacity re-Starts and Advances with zero allocations
//     (Clear retains capacity), which is what the allocation-budget tests pin.
type pairSet struct {
	slots []uint64 // power-of-two length; 0 = empty
	n     int      // live keys
}

// hashPair is the splitmix64 finalizer: a bijective 64→64 mix whose low bits
// depend on every input bit, as linear probing's slot = hash & mask requires.
// The raw packed key is far too regular to probe with directly (v lives in
// the low word, so consecutive edges of one node would collide in runs).
func hashPair(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// Len returns the number of keys present.
func (s *pairSet) Len() int { return s.n }

// Has reports whether key k is present. k must be nonzero.
func (s *pairSet) Has(k uint64) bool {
	if len(s.slots) == 0 {
		return false
	}
	mask := uint64(len(s.slots) - 1)
	for i := hashPair(k) & mask; ; i = (i + 1) & mask {
		switch s.slots[i] {
		case k:
			return true
		case 0:
			return false
		}
	}
}

// Add inserts key k (a no-op if present). k must be nonzero.
func (s *pairSet) Add(k uint64) {
	if 4*(s.n+1) > 3*len(s.slots) {
		s.grow()
	}
	mask := uint64(len(s.slots) - 1)
	i := hashPair(k) & mask
	for s.slots[i] != 0 {
		if s.slots[i] == k {
			return
		}
		i = (i + 1) & mask
	}
	s.slots[i] = k
	s.n++
}

// Remove deletes key k (a no-op if absent), compacting the probe run behind
// it by backward shift so the table stays tombstone-free.
func (s *pairSet) Remove(k uint64) {
	if len(s.slots) == 0 {
		return
	}
	mask := uint64(len(s.slots) - 1)
	i := hashPair(k) & mask
	for s.slots[i] != k {
		if s.slots[i] == 0 {
			return
		}
		i = (i + 1) & mask
	}
	// Walk the run after the hole; an entry may move back into the hole iff
	// its home slot is cyclically at or before the hole — equivalently its
	// current displacement covers the hole: (j − home) mod cap ≥ (j − i) mod cap.
	j := i
	for {
		j = (j + 1) & mask
		v := s.slots[j]
		if v == 0 {
			break
		}
		if (j-hashPair(v))&mask >= (j-i)&mask {
			s.slots[i] = v
			i = j
		}
	}
	s.slots[i] = 0
	s.n--
}

// Clear empties the set, retaining capacity for pooled reuse.
func (s *pairSet) Clear() {
	clear(s.slots)
	s.n = 0
}

// Reserve grows the table so it can hold at least want keys without further
// growth — Start calls it with the expected edge count so the round-0 fill
// does not rehash log(edges) times.
func (s *pairSet) Reserve(want int) {
	for 4*want > 3*len(s.slots) {
		s.grow()
	}
}

// grow doubles the table (minimum 16 slots) and reinserts every key.
func (s *pairSet) grow() {
	size := 16
	if len(s.slots) > 0 {
		size = 2 * len(s.slots)
	}
	old := s.slots
	s.slots = make([]uint64, size)
	mask := uint64(size - 1)
	for _, k := range old {
		if k == 0 {
			continue
		}
		i := hashPair(k) & mask
		for s.slots[i] != 0 {
			i = (i + 1) & mask
		}
		s.slots[i] = k
	}
}
