package topo

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// This file implements dynamic topologies: graph processes whose edge set
// evolves between rounds, the graph-process analogue of churn. Where a fault
// schedule silences whole nodes over time, a Dynamic topology keeps every
// node up but rewrites who can talk to whom — the setting the source paper's
// "networks whose structure is not fixed" motivation points at.
//
// Lifecycle: a process is constructed once per run (it is mutable per-round
// state and must never be shared across concurrent runs), Start(seed) derives
// all of its randomness and materializes the round-0 edge set, and the engine
// calls Advance(r) exactly once per round boundary, in order, on the single
// delivery goroutine. Between Advance calls the edge set is immutable, so the
// engine's parallel Act phase may read it (CanSend, SamplePeer, Degree)
// concurrently. Two processes started from the same seed produce bit-identical
// edge sets round for round, independent of worker counts — the determinism
// contract the property tests pin.
//
// Cost model: the edge-Markovian process pays for events, not pairs. Advance
// draws the pairs that actually flip by geometric skip-sampling (inverse-CDF
// waiting times, distributionally identical to one Bernoulli coin per pair —
// see rng.SkipPast) and maintains the adjacency incrementally (present-edge
// list plus per-node neighbor lists, swap-remove on death, append on birth),
// so a round costs O(expected flips + touched degrees) instead of the Θ(n²)
// per-pair scan and full CSR rebuild it replaces. Memory is O(present edges),
// not O(pairs): membership behind O(1) CanSend is a pairSet (open-addressing
// hash set over packed pair ids, ~16 bytes per present edge at maximum load)
// rather than the n²/8-byte presence bitset it replaces — at n = 2²⁰ the
// bitset would be 64 GB while a degree-64 process carries ~2³⁵ times less
// state than it has pairs. Per-node neighbor-list capacity is seeded from the
// stationary mean degree out of one shared backing slab, so a million-node
// process costs a handful of allocations, not one per node. Steady state
// allocates nothing per round; the allocation-budget tests enforce that the
// process cannot silently allocate per flip.
//
// Seed mapping: the skip-sampling engine consumes randomness per event where
// the per-pair scan it replaced consumed one draw per pair, so a given seed
// maps to a different (equally distributed) edge-set evolution than it did
// under the dense engine. Same-seed determinism is unchanged; recorded
// numbers from dynamic experiments (E12) were re-derived when the mapping
// changed.

// Dynamic is a Topology whose edge set evolves between rounds.
type Dynamic interface {
	Topology
	// Start derives the process randomness from seed and materializes the
	// round-0 edge set. It fully resets the process, so a pooled instance can
	// be reused across runs.
	Start(seed uint64)
	// Advance evolves the edge set from round-1 to round. The engine calls it
	// exactly once per round, in increasing round order, on the delivery
	// goroutine; callers must have called Start first.
	Advance(round int)
	// Flips reports how many edges the last Advance changed (births plus
	// deaths; 0 right after Start) — the event count the sparse engine's
	// per-round cost is proportional to, surfaced so benchmarks can report
	// work per round.
	Flips() int
}

// MaxDynamicN bounds the network size of the dynamic graph processes. With
// membership held in a hash set over present edges there is no per-pair state
// left anywhere, so the bound is no longer a memory guard — it only pins the
// range the pair-index arithmetic and the packed u<<32|v 32-bit-endpoint
// encoding are tested over, and it matches core.MaxN so every admissible
// network size admits a dynamic topology. Admission is keyed on edges: what
// actually bounds a process's footprint is MaxDynamicEdges below.
const MaxDynamicN = 1 << 20

// MaxDynamicEdges bounds the expected number of simultaneously present edges
// a scenario may ask a dynamic process to maintain — π·n(n−1)/2 with
// π = birth/(birth+death) for the edge-Markovian chain, n·d/2 for the
// degree-parameterized generators. A present edge costs ~30 bytes across the
// membership set (≤16 at maximum load), the packed edge list, and two
// neighbor-list entries, so the cap keeps a worst-case process around 2 GB —
// large enough for degree ≈ 128 at n = 2²⁰. The bound lives in scenario
// validation, not the constructors: direct topo users may exceed it knowingly.
const MaxDynamicEdges = 1 << 26

// csr is the per-round adjacency of the rewiring-ring process:
// off[u]..off[u+1] indexes u's neighbors in flat, ascending. cur is the fill
// cursor scratch. All three reuse capacity across rounds.
type csr struct {
	off  []int32
	cur  []int32
	flat []int32
}

// reset sizes the offset/cursor slices for n nodes and zeroes the offsets.
func (c *csr) reset(n int) {
	if cap(c.off) < n+1 {
		c.off = make([]int32, n+1)
		c.cur = make([]int32, n)
	}
	c.off = c.off[:n+1]
	c.cur = c.cur[:n]
	for i := range c.off {
		c.off[i] = 0
	}
}

// finish turns per-node counts (accumulated in off[u+1]) into offsets and
// sizes flat for the total, growing with headroom so fluctuating edge counts
// do not reallocate every round.
func (c *csr) finish(n int) {
	for u := 0; u < n; u++ {
		c.off[u+1] += c.off[u]
	}
	total := int(c.off[n])
	if cap(c.flat) < total {
		c.flat = make([]int32, total, total+total/4+64)
	}
	c.flat = c.flat[:total]
	copy(c.cur, c.off[:n])
}

// add appends the undirected edge (u, v) to both adjacency lists.
func (c *csr) add(u, v int32) {
	c.flat[c.cur[u]] = v
	c.cur[u]++
	c.flat[c.cur[v]] = u
	c.cur[v]++
}

func (c *csr) neighbors(u int) []int32 { return c.flat[c.off[u]:c.off[u+1]] }

// samplePeer draws uniformly from u's neighbor list; an isolated node can
// only talk to itself, matching the static adjacency graphs.
func (c *csr) samplePeer(u int, r *rng.Source) int {
	ns := c.neighbors(u)
	if len(ns) == 0 {
		return u
	}
	return int(ns[r.Intn(len(ns))])
}

// EdgeMarkovian is the edge-Markovian evolving graph G(t): every potential
// edge of the n-clique runs its own two-state Markov chain, appearing with
// probability birth and disappearing with probability death at each round
// boundary, all chains driven by one seed-derived stream. The round-0 edge
// set is drawn from the chain's stationary law, so the process is stationary
// from the first round: expected degree ≈ π·(n−1) with π = birth/(birth+death),
// and a present edge's half-life is governed by death — the knob the churn
// experiments sweep.
//
// The implementation is sparse: instead of flipping one coin per potential
// pair, Advance draws exactly the flipping pairs by geometric skip-sampling
// over the present-edge list (deaths) and over the full pair population with
// present pairs discarded (births) — each absent pair is still born
// independently with probability birth, so the per-round edge-set
// distribution is identical to the dense per-pair scan's. The adjacency is
// maintained incrementally: a death swap-removes the edge from the packed
// edge list and both endpoints' neighbor lists, a birth appends. A round
// therefore costs O(birth·pairs + death·edges) expected draws plus the
// touched degrees — Θ(expected flips) whenever the stationary density is
// bounded away from 1 — rather than Θ(n²).
//
// Construct with NewEdgeMarkovian, then Start; see Dynamic for the lifecycle
// and concurrency contract.
type EdgeMarkovian struct {
	n       int
	birth   float64
	death   float64
	name    string
	r       rng.Source
	present pairSet   // membership over packed pair ids, O(present edges)
	edges   []uint64  // present-edge list, packed u<<32|v, unordered
	adj     [][]int32 // adj[u] is u's neighbor list, unordered
	deadPos []int32   // scratch: edge-list positions dying this round
	born    []uint64  // scratch: packed pairs born this round
	flips   int
	started bool
}

var _ Dynamic = (*EdgeMarkovian)(nil)

// NewEdgeMarkovian returns an (unstarted) edge-Markovian process on n nodes.
// It panics unless 2 ≤ n ≤ MaxDynamicN, birth and death lie in [0, 1], and
// birth+death > 0 (a chain with both rates zero never mixes and has no
// stationary law to draw round 0 from).
func NewEdgeMarkovian(n int, birth, death float64) *EdgeMarkovian {
	if n < 2 || n > MaxDynamicN {
		panic(fmt.Sprintf("topo: NewEdgeMarkovian needs 2 <= n <= %d", MaxDynamicN))
	}
	if birth < 0 || birth > 1 || death < 0 || death > 1 || birth+death == 0 {
		panic("topo: NewEdgeMarkovian needs birth, death in [0, 1] with birth+death > 0")
	}
	return &EdgeMarkovian{
		n:     n,
		birth: birth,
		death: death,
		name:  fmt.Sprintf("edge-markovian(%g,%g)", birth, death),
	}
}

// pairs returns the number of potential edges.
//
// Integer-exactness audit for the n ≤ MaxDynamicN = 2²⁰ range (pinned by
// TestEdgeMarkovianPairAtRoundTrips at the cap):
//
//   - pairs = n(n−1)/2 ≈ 5.5×10¹¹ at the cap. The intermediate n·(n−1) ≈ 2⁴⁰
//     is far below the 2⁶³ int overflow line, and pairs itself is < 2⁵³, so
//     float64(pairs) — the stationary-edge expectation Start reserves for —
//     is exact.
//   - pairIndex's intermediate u·(2n−u−1) is maximized near u = n at < 2n²
//     ≤ 2⁴¹: overflow-free on int with 22 bits to spare.
//   - pairAt's float path squares nf = n − 0.5 < 2²⁰, so nf·nf < 2⁴⁰ and
//     2·float64(i) < 2⁴¹ are both exactly representable (< 2⁵³); the only
//     inexact step is the Sqrt, whose ±1-ulp error the integer fixup loops
//     absorb.
func (e *EdgeMarkovian) pairs() int { return e.n * (e.n - 1) / 2 }

// pairIndex maps u < v to the row-major index of the pair among all u' < v'.
func (e *EdgeMarkovian) pairIndex(u, v int) int {
	return u*(2*e.n-u-1)/2 + (v - u - 1)
}

// rowBase is pairIndex(u, u+1): the first pair index of row u.
func (e *EdgeMarkovian) rowBase(u int) int { return u * (2*e.n - u - 1) / 2 }

// pairAt inverts pairIndex: it decodes a row-major pair index into (u, v)
// with u < v. The row comes from the quadratic formula and is fixed up with
// exact integer comparisons, so float rounding cannot misplace a pair (every
// quantity entering the arithmetic is ≤ 2n² < 2⁵³, exactly representable —
// see the audit on pairs).
func (e *EdgeMarkovian) pairAt(i int) (u, v int32) {
	nf := float64(e.n) - 0.5
	row := int(nf - math.Sqrt(nf*nf-2*float64(i)))
	if row < 0 {
		row = 0
	}
	if row > e.n-2 {
		row = e.n - 2
	}
	for row > 0 && e.rowBase(row) > i {
		row--
	}
	for row < e.n-2 && e.rowBase(row+1) <= i {
		row++
	}
	return int32(row), int32(row + 1 + i - e.rowBase(row))
}

// pack encodes an edge's endpoints for the present-edge list.
func pack(u, v int32) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// unpack decodes pack.
func unpack(p uint64) (u, v int32) { return int32(p >> 32), int32(uint32(p)) }

// Start draws the round-0 edge set from the stationary law π = b/(b+d), by
// the same skip-sampling Advance uses: O(expected edges) draws, not O(n²).
func (e *EdgeMarkovian) Start(seed uint64) {
	e.r.Reseed(seed)
	e.present.Clear()
	pi := e.birth / (e.birth + e.death)
	// Pre-size the membership table for the stationary edge count so the
	// round-0 fill does not rehash its way up through doublings. The hint is
	// clamped: a caller knowingly past MaxDynamicEdges grows incrementally
	// rather than asking for one oversized table up front.
	if want := int(pi * float64(e.pairs())); want > 0 {
		if want > MaxDynamicEdges {
			want = MaxDynamicEdges
		}
		e.present.Reserve(want)
	}
	if e.adj == nil {
		e.adj = make([][]int32, e.n)
		// Seed each neighbor list's capacity well past the stationary mean
		// degree, so steady-state appends essentially never regrow — the
		// allocation budgets pin warmed Starts and Advances near zero. The
		// lists are carved from one shared slab: at n = 2²⁰ a per-node make
		// would be a million allocations before the first round.
		mean := pi * float64(e.n-1)
		cap0 := int(mean+5*math.Sqrt(mean+1)) + 8
		if cap0 > e.n-1 {
			cap0 = e.n - 1
		}
		slab := make([]int32, e.n*cap0)
		for u := range e.adj {
			e.adj[u] = slab[u*cap0 : u*cap0 : (u+1)*cap0]
		}
	} else {
		for u := range e.adj {
			e.adj[u] = e.adj[u][:0]
		}
	}
	e.edges = e.edges[:0]
	for i, p := e.r.SkipPast(0, pi), uint64(e.pairs()); i < p; i = e.r.SkipPast(i+1, pi) {
		e.insert(e.pairAt(int(i)))
	}
	e.flips = 0
	e.started = true
}

// Advance flips every potential edge once — in distribution: present edges
// die with probability death, absent edges are born with probability birth.
// Only the flipping pairs are materialized; see the type comment for the
// sampling argument and the cost model.
func (e *EdgeMarkovian) Advance(round int) {
	if !e.started {
		panic("topo: EdgeMarkovian.Advance before Start")
	}
	// Births: skip-scan the full pair population with probability birth.
	// A coin landing on a present pair is discarded (present pairs are not
	// birth-eligible), which leaves every absent pair born independently
	// with probability birth. Presence is tested against the start-of-round
	// state — deaths are applied only after this scan — so a pair dying this
	// round cannot also be reborn in the same round.
	e.born = e.born[:0]
	for i, p := e.r.SkipPast(0, e.birth), uint64(e.pairs()); i < p; i = e.r.SkipPast(i+1, e.birth) {
		u, v := e.pairAt(int(i))
		if pk := pack(u, v); !e.present.Has(pk) {
			e.born = append(e.born, pk)
		}
	}
	// Deaths: skip-scan the start-of-round present-edge list with
	// probability death. Positions come out ascending and are applied in
	// descending order, so a swap-remove only ever moves in an edge from
	// beyond every still-condemned position.
	e.deadPos = e.deadPos[:0]
	for i, p := e.r.SkipPast(0, e.death), uint64(len(e.edges)); i < p; i = e.r.SkipPast(i+1, e.death) {
		e.deadPos = append(e.deadPos, int32(i))
	}
	for k := len(e.deadPos) - 1; k >= 0; k-- {
		e.removeAt(int(e.deadPos[k]))
	}
	for _, pk := range e.born {
		e.insert(unpack(pk))
	}
	e.flips = len(e.deadPos) + len(e.born)
}

// insert adds the absent edge (u, v) to the membership set, both neighbor
// lists, and the present-edge list.
func (e *EdgeMarkovian) insert(u, v int32) {
	e.present.Add(pack(u, v))
	e.adj[u] = append(e.adj[u], v)
	e.adj[v] = append(e.adj[v], u)
	e.edges = append(e.edges, pack(u, v))
}

// removeAt deletes the present edge at position pos of the edge list from
// the membership set, both neighbor lists, and the list itself (swap-remove).
func (e *EdgeMarkovian) removeAt(pos int) {
	u, v := unpack(e.edges[pos])
	e.present.Remove(pack(u, v))
	e.dropNeighbor(u, v)
	e.dropNeighbor(v, u)
	last := len(e.edges) - 1
	e.edges[pos] = e.edges[last]
	e.edges = e.edges[:last]
}

// dropNeighbor swap-removes v from u's neighbor list — the O(degree) scan is
// the "touched degrees" term of the per-round cost.
func (e *EdgeMarkovian) dropNeighbor(u, v int32) {
	ns := e.adj[u]
	for k, w := range ns {
		if w == v {
			last := len(ns) - 1
			ns[k] = ns[last]
			e.adj[u] = ns[:last]
			return
		}
	}
	panic("topo: EdgeMarkovian adjacency desynchronized from edge list")
}

// N returns the node count.
func (e *EdgeMarkovian) N() int { return e.n }

// CanSend reports whether the edge (u, v) is present this round; self-sends
// are always allowed.
func (e *EdgeMarkovian) CanSend(u, v int) bool {
	if u < 0 || u >= e.n || v < 0 || v >= e.n {
		return false
	}
	if u == v {
		return true
	}
	if u > v {
		u, v = v, u
	}
	return e.present.Has(pack(int32(u), int32(v)))
}

// SamplePeer draws uniformly from u's current neighbor set; an isolated node
// can only talk to itself, matching the static adjacency graphs.
func (e *EdgeMarkovian) SamplePeer(u int, r *rng.Source) int {
	ns := e.adj[u]
	if len(ns) == 0 {
		return u
	}
	return int(ns[r.Intn(len(ns))])
}

// Degree returns u's current degree.
func (e *EdgeMarkovian) Degree(u int) int { return len(e.adj[u]) }

// Name identifies the process and its rates in reports.
func (e *EdgeMarkovian) Name() string { return e.name }

// EdgeCount returns the number of edges currently present (analysis hook).
func (e *EdgeMarkovian) EdgeCount() int { return len(e.edges) }

// Flips reports how many edges the last Advance changed.
func (e *EdgeMarkovian) Flips() int { return e.flips }

// RewireRing is the per-round rewiring variant of the ring builder: the
// n-cycle is the substrate, and at every round boundary each node's clockwise
// edge is independently replaced, with probability beta, by a chord to a peer
// chosen uniformly at random (the Watts–Strogatz rewiring step, resampled
// fresh every round rather than frozen at construction). beta = 0 reproduces
// the static ring round for round; beta = 1 is a fresh random functional
// graph every round. Unlike the edge-Markovian chain this process is
// inherently Θ(n) per round — all n clockwise edges are redrawn — which is
// already proportional to its event count.
//
// Construct with NewRewireRing, then Start; see Dynamic for the lifecycle and
// concurrency contract.
type RewireRing struct {
	n       int
	beta    float64
	name    string
	r       rng.Source
	target  []int32 // target[u] is the endpoint of u's clockwise edge this round
	adj     csr
	flips   int
	started bool
}

var _ Dynamic = (*RewireRing)(nil)

// NewRewireRing returns an (unstarted) rewiring-ring process on n nodes. It
// panics unless n ≥ 3 and beta lies in [0, 1].
func NewRewireRing(n int, beta float64) *RewireRing {
	if n < 3 {
		panic("topo: NewRewireRing needs n >= 3")
	}
	if beta < 0 || beta > 1 {
		panic("topo: NewRewireRing needs beta in [0, 1]")
	}
	return &RewireRing{n: n, beta: beta, name: fmt.Sprintf("rewire-ring(%g)", beta)}
}

// Start materializes the round-0 edge set.
func (rr *RewireRing) Start(seed uint64) {
	rr.r.Reseed(seed)
	if cap(rr.target) < rr.n {
		rr.target = make([]int32, rr.n)
	}
	rr.target = rr.target[:rr.n]
	rr.redraw()
	// redraw's re-target count diffed against whatever a pooled instance
	// held before; round 0 is a draw, not a change, so Flips starts at 0.
	rr.flips = 0
	rr.started = true
}

// Advance redraws every node's clockwise edge for the new round.
func (rr *RewireRing) Advance(round int) {
	if !rr.started {
		panic("topo: RewireRing.Advance before Start")
	}
	rr.redraw()
}

// redraw resamples each node's edge and rebuilds the adjacency. A reciprocal
// pair (u and v picking each other) is one edge, owned by the smaller
// endpoint, so neighbor lists stay duplicate-free.
func (rr *RewireRing) redraw() {
	n := rr.n
	changed := 0
	for u := 0; u < n; u++ {
		v := u + 1
		if v == n {
			v = 0
		}
		if rr.r.Bool(rr.beta) {
			v = rr.r.IntnExcept(n, u)
		}
		if rr.target[u] != int32(v) {
			changed++
		}
		rr.target[u] = int32(v)
	}
	rr.flips = changed
	rr.adj.reset(n)
	for u := 0; u < n; u++ {
		v := int(rr.target[u])
		if rr.owns(u, v) {
			rr.adj.off[u+1]++
			rr.adj.off[v+1]++
		}
	}
	rr.adj.finish(n)
	for u := 0; u < n; u++ {
		v := int(rr.target[u])
		if rr.owns(u, v) {
			rr.adj.add(int32(u), int32(v))
		}
	}
}

// owns reports whether u's drawn edge (u, v) is materialized from u's side:
// always, unless v drew the reciprocal edge and has the smaller ID.
func (rr *RewireRing) owns(u, v int) bool {
	return !(int(rr.target[v]) == u && v < u)
}

// N returns the node count.
func (rr *RewireRing) N() int { return rr.n }

// CanSend reports whether the edge (u, v) is present this round; self-sends
// are always allowed.
func (rr *RewireRing) CanSend(u, v int) bool {
	if u < 0 || u >= rr.n || v < 0 || v >= rr.n {
		return false
	}
	if u == v {
		return true
	}
	return int(rr.target[u]) == v || int(rr.target[v]) == u
}

// SamplePeer draws uniformly from u's current neighbor set.
func (rr *RewireRing) SamplePeer(u int, r *rng.Source) int { return rr.adj.samplePeer(u, r) }

// Degree returns u's current degree.
func (rr *RewireRing) Degree(u int) int { return len(rr.adj.neighbors(u)) }

// Name identifies the process and its rewiring rate in reports.
func (rr *RewireRing) Name() string { return rr.name }

// Flips reports how many clockwise edges the last Advance re-targeted.
func (rr *RewireRing) Flips() int { return rr.flips }
