package topo

import (
	"fmt"

	"repro/internal/rng"
)

// This file implements dynamic topologies: graph processes whose edge set
// evolves between rounds, the graph-process analogue of churn. Where a fault
// schedule silences whole nodes over time, a Dynamic topology keeps every
// node up but rewrites who can talk to whom — the setting the source paper's
// "networks whose structure is not fixed" motivation points at.
//
// Lifecycle: a process is constructed once per run (it is mutable per-round
// state and must never be shared across concurrent runs), Start(seed) derives
// all of its randomness and materializes the round-0 edge set, and the engine
// calls Advance(r) exactly once per round boundary, in order, on the single
// delivery goroutine. Between Advance calls the edge set is immutable, so the
// engine's parallel Act phase may read it (CanSend, SamplePeer, Degree)
// concurrently. Two processes started from the same seed produce bit-identical
// edge sets round for round, independent of worker counts — the determinism
// contract the property tests pin.
//
// Both implementations rebuild a compact CSR adjacency (off/flat) per round
// into reused buffers, so the steady state allocates nothing per round; the
// allocation-budget tests enforce that the process cannot silently allocate
// per edge.

// Dynamic is a Topology whose edge set evolves between rounds.
type Dynamic interface {
	Topology
	// Start derives the process randomness from seed and materializes the
	// round-0 edge set. It fully resets the process, so a pooled instance can
	// be reused across runs.
	Start(seed uint64)
	// Advance evolves the edge set from round-1 to round. The engine calls it
	// exactly once per round, in increasing round order, on the delivery
	// goroutine; callers must have called Start first.
	Advance(round int)
}

// MaxDynamicN bounds the network size of processes that keep per-pair state
// (the edge-Markovian model stores one bit and up to two adjacency entries
// per potential edge, O(n²) in total).
const MaxDynamicN = 4096

// csr is the per-round adjacency shared by the dynamic implementations:
// off[u]..off[u+1] indexes u's neighbors in flat, ascending. cur is the fill
// cursor scratch. All three reuse capacity across rounds.
type csr struct {
	off  []int32
	cur  []int32
	flat []int32
}

// reset sizes the offset/cursor slices for n nodes and zeroes the offsets.
func (c *csr) reset(n int) {
	if cap(c.off) < n+1 {
		c.off = make([]int32, n+1)
		c.cur = make([]int32, n)
	}
	c.off = c.off[:n+1]
	c.cur = c.cur[:n]
	for i := range c.off {
		c.off[i] = 0
	}
}

// finish turns per-node counts (accumulated in off[u+1]) into offsets and
// sizes flat for the total, growing with headroom so fluctuating edge counts
// do not reallocate every round.
func (c *csr) finish(n int) {
	for u := 0; u < n; u++ {
		c.off[u+1] += c.off[u]
	}
	total := int(c.off[n])
	if cap(c.flat) < total {
		c.flat = make([]int32, total, total+total/4+64)
	}
	c.flat = c.flat[:total]
	copy(c.cur, c.off[:n])
}

// add appends the undirected edge (u, v) to both adjacency lists.
func (c *csr) add(u, v int32) {
	c.flat[c.cur[u]] = v
	c.cur[u]++
	c.flat[c.cur[v]] = u
	c.cur[v]++
}

func (c *csr) neighbors(u int) []int32 { return c.flat[c.off[u]:c.off[u+1]] }

// samplePeer draws uniformly from u's neighbor list; an isolated node can
// only talk to itself, matching the static adjacency graphs.
func (c *csr) samplePeer(u int, r *rng.Source) int {
	ns := c.neighbors(u)
	if len(ns) == 0 {
		return u
	}
	return int(ns[r.Intn(len(ns))])
}

// EdgeMarkovian is the edge-Markovian evolving graph G(t): every potential
// edge of the n-clique runs its own two-state Markov chain, appearing with
// probability birth and disappearing with probability death at each round
// boundary, all chains driven by one seed-derived stream. The round-0 edge
// set is drawn from the chain's stationary law, so the process is stationary
// from the first round: expected degree ≈ π·(n−1) with π = birth/(birth+death),
// and a present edge's half-life is governed by death — the knob the churn
// experiments sweep.
//
// Construct with NewEdgeMarkovian, then Start; see Dynamic for the lifecycle
// and concurrency contract.
type EdgeMarkovian struct {
	n       int
	birth   float64
	death   float64
	name    string
	r       rng.Source
	bits    []uint64 // presence bitset over pair indices (u<v, row-major)
	adj     csr
	started bool
}

var _ Dynamic = (*EdgeMarkovian)(nil)

// NewEdgeMarkovian returns an (unstarted) edge-Markovian process on n nodes.
// It panics unless 2 ≤ n ≤ MaxDynamicN, birth and death lie in [0, 1], and
// birth+death > 0 (a chain with both rates zero never mixes and has no
// stationary law to draw round 0 from).
func NewEdgeMarkovian(n int, birth, death float64) *EdgeMarkovian {
	if n < 2 || n > MaxDynamicN {
		panic(fmt.Sprintf("topo: NewEdgeMarkovian needs 2 <= n <= %d", MaxDynamicN))
	}
	if birth < 0 || birth > 1 || death < 0 || death > 1 || birth+death == 0 {
		panic("topo: NewEdgeMarkovian needs birth, death in [0, 1] with birth+death > 0")
	}
	return &EdgeMarkovian{
		n:     n,
		birth: birth,
		death: death,
		name:  fmt.Sprintf("edge-markovian(%g,%g)", birth, death),
	}
}

// pairs returns the number of potential edges.
func (e *EdgeMarkovian) pairs() int { return e.n * (e.n - 1) / 2 }

// pairIndex maps u < v to the row-major index of the pair among all u' < v'.
func (e *EdgeMarkovian) pairIndex(u, v int) int {
	return u*(2*e.n-u-1)/2 + (v - u - 1)
}

// Start draws the round-0 edge set from the stationary law π = b/(b+d).
func (e *EdgeMarkovian) Start(seed uint64) {
	e.r.Reseed(seed)
	words := (e.pairs() + 63) / 64
	if cap(e.bits) < words {
		e.bits = make([]uint64, words)
	}
	e.bits = e.bits[:words]
	for i := range e.bits {
		e.bits[i] = 0
	}
	pi := e.birth / (e.birth + e.death)
	for i, p := 0, e.pairs(); i < p; i++ {
		if e.r.Bool(pi) {
			e.bits[i>>6] |= 1 << (i & 63)
		}
	}
	e.rebuild()
	e.started = true
}

// Advance flips every potential edge once: present edges die with probability
// death, absent edges are born with probability birth.
func (e *EdgeMarkovian) Advance(round int) {
	if !e.started {
		panic("topo: EdgeMarkovian.Advance before Start")
	}
	for i, p := 0, e.pairs(); i < p; i++ {
		w, b := i>>6, uint64(1)<<(i&63)
		if e.bits[w]&b != 0 {
			if e.r.Bool(e.death) {
				e.bits[w] &^= b
			}
		} else if e.r.Bool(e.birth) {
			e.bits[w] |= b
		}
	}
	e.rebuild()
}

// rebuild rematerializes the CSR adjacency from the presence bitset into the
// reused buffers (two passes: degree counts, then fills; neighbor lists come
// out ascending).
func (e *EdgeMarkovian) rebuild() {
	n := e.n
	e.adj.reset(n)
	i := 0
	for u := 0; u < n-1; u++ {
		for v := u + 1; v < n; v++ {
			if e.bits[i>>6]&(1<<(i&63)) != 0 {
				e.adj.off[u+1]++
				e.adj.off[v+1]++
			}
			i++
		}
	}
	e.adj.finish(n)
	i = 0
	for u := 0; u < n-1; u++ {
		for v := u + 1; v < n; v++ {
			if e.bits[i>>6]&(1<<(i&63)) != 0 {
				e.adj.add(int32(u), int32(v))
			}
			i++
		}
	}
}

// N returns the node count.
func (e *EdgeMarkovian) N() int { return e.n }

// CanSend reports whether the edge (u, v) is present this round; self-sends
// are always allowed.
func (e *EdgeMarkovian) CanSend(u, v int) bool {
	if u < 0 || u >= e.n || v < 0 || v >= e.n {
		return false
	}
	if u == v {
		return true
	}
	if u > v {
		u, v = v, u
	}
	i := e.pairIndex(u, v)
	return e.bits[i>>6]&(1<<(i&63)) != 0
}

// SamplePeer draws uniformly from u's current neighbor set.
func (e *EdgeMarkovian) SamplePeer(u int, r *rng.Source) int { return e.adj.samplePeer(u, r) }

// Degree returns u's current degree.
func (e *EdgeMarkovian) Degree(u int) int { return len(e.adj.neighbors(u)) }

// Name identifies the process and its rates in reports.
func (e *EdgeMarkovian) Name() string { return e.name }

// EdgeCount returns the number of edges currently present (analysis hook).
func (e *EdgeMarkovian) EdgeCount() int { return len(e.adj.flat) / 2 }

// RewireRing is the per-round rewiring variant of the ring builder: the
// n-cycle is the substrate, and at every round boundary each node's clockwise
// edge is independently replaced, with probability beta, by a chord to a peer
// chosen uniformly at random (the Watts–Strogatz rewiring step, resampled
// fresh every round rather than frozen at construction). beta = 0 reproduces
// the static ring round for round; beta = 1 is a fresh random functional
// graph every round.
//
// Construct with NewRewireRing, then Start; see Dynamic for the lifecycle and
// concurrency contract.
type RewireRing struct {
	n       int
	beta    float64
	name    string
	r       rng.Source
	target  []int32 // target[u] is the endpoint of u's clockwise edge this round
	adj     csr
	started bool
}

var _ Dynamic = (*RewireRing)(nil)

// NewRewireRing returns an (unstarted) rewiring-ring process on n nodes. It
// panics unless n ≥ 3 and beta lies in [0, 1].
func NewRewireRing(n int, beta float64) *RewireRing {
	if n < 3 {
		panic("topo: NewRewireRing needs n >= 3")
	}
	if beta < 0 || beta > 1 {
		panic("topo: NewRewireRing needs beta in [0, 1]")
	}
	return &RewireRing{n: n, beta: beta, name: fmt.Sprintf("rewire-ring(%g)", beta)}
}

// Start materializes the round-0 edge set.
func (rr *RewireRing) Start(seed uint64) {
	rr.r.Reseed(seed)
	if cap(rr.target) < rr.n {
		rr.target = make([]int32, rr.n)
	}
	rr.target = rr.target[:rr.n]
	rr.redraw()
	rr.started = true
}

// Advance redraws every node's clockwise edge for the new round.
func (rr *RewireRing) Advance(round int) {
	if !rr.started {
		panic("topo: RewireRing.Advance before Start")
	}
	rr.redraw()
}

// redraw resamples each node's edge and rebuilds the adjacency. A reciprocal
// pair (u and v picking each other) is one edge, owned by the smaller
// endpoint, so neighbor lists stay duplicate-free.
func (rr *RewireRing) redraw() {
	n := rr.n
	for u := 0; u < n; u++ {
		v := u + 1
		if v == n {
			v = 0
		}
		if rr.r.Bool(rr.beta) {
			v = rr.r.IntnExcept(n, u)
		}
		rr.target[u] = int32(v)
	}
	rr.adj.reset(n)
	for u := 0; u < n; u++ {
		v := int(rr.target[u])
		if rr.owns(u, v) {
			rr.adj.off[u+1]++
			rr.adj.off[v+1]++
		}
	}
	rr.adj.finish(n)
	for u := 0; u < n; u++ {
		v := int(rr.target[u])
		if rr.owns(u, v) {
			rr.adj.add(int32(u), int32(v))
		}
	}
}

// owns reports whether u's drawn edge (u, v) is materialized from u's side:
// always, unless v drew the reciprocal edge and has the smaller ID.
func (rr *RewireRing) owns(u, v int) bool {
	return !(int(rr.target[v]) == u && v < u)
}

// N returns the node count.
func (rr *RewireRing) N() int { return rr.n }

// CanSend reports whether the edge (u, v) is present this round; self-sends
// are always allowed.
func (rr *RewireRing) CanSend(u, v int) bool {
	if u < 0 || u >= rr.n || v < 0 || v >= rr.n {
		return false
	}
	if u == v {
		return true
	}
	return int(rr.target[u]) == v || int(rr.target[v]) == u
}

// SamplePeer draws uniformly from u's current neighbor set.
func (rr *RewireRing) SamplePeer(u int, r *rng.Source) int { return rr.adj.samplePeer(u, r) }

// Degree returns u's current degree.
func (rr *RewireRing) Degree(u int) int { return len(rr.adj.neighbors(u)) }

// Name identifies the process and its rewiring rate in reports.
func (rr *RewireRing) Name() string { return rr.name }
