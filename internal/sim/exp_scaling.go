package sim

import (
	"context"
	"fmt"
	"math"

	"repro/fairgossip"
	"repro/internal/core"
	"repro/internal/rational"
)

// ScalingOptions configures E11: how the equilibrium degrades as the
// coalition grows beyond the theorem's t = o(n/log n) regime.
type ScalingOptions struct {
	N         int
	Gamma     float64
	Fractions []float64 // coalition sizes as fractions of n
	Trials    int
	Seed      uint64
	Workers   int
}

// DefaultScalingOptions is the full sweep.
func DefaultScalingOptions() ScalingOptions {
	return ScalingOptions{
		N: 256, Gamma: core.DefaultGamma,
		Fractions: []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.96},
		Trials:    150,
		Seed:      11,
	}
}

// QuickScalingOptions is a scaled-down sweep for tests.
func QuickScalingOptions() ScalingOptions {
	return ScalingOptions{
		N: 64, Gamma: core.DefaultGamma,
		Fractions: []float64{0.1, 0.5, 0.9},
		Trials:    60,
		Seed:      11,
	}
}

// RunE11CoalitionScaling regenerates E11: the min-k liar's win rate as the
// coalition fraction grows. Theorem 7 needs t = o(n/log n); the forgery is
// caught as long as at least one honest agent pulled the ringleader's
// binding declaration (Definition 5, property 1), which fails with
// probability ≈ (1−1/n)^(honest·q). The sweep shows the equilibrium holding
// far beyond the theorem's regime and collapsing only when honest coverage
// itself collapses — the theorem's hypothesis is sufficient, with a
// quantified safety margin.
func RunE11CoalitionScaling(o ScalingOptions) []*Table {
	e11 := &Table{
		ID:    "E11",
		Title: fmt.Sprintf("Equilibrium degradation at n = %d: forgeries vs coalition fraction", o.N),
		Columns: []string{"deviation", "t", "t/n", "t·log₂n/n", "coalition win", "fail rate",
			"Pr[uncovered] (theory)"},
	}
	n := o.N
	p := core.MustParams(n, 2, o.Gamma)
	for devIdx, dev := range []rational.Deviation{rational.MinKLiar{}, rational.CertForger{}} {
		for _, frac := range o.Fractions {
			t := int(frac * float64(n))
			if t < 1 {
				t = 1
			}
			if t > n-2 {
				t = n - 2
			}
			results, err := fairgossip.MustRunner(fairgossip.Scenario{
				N: n, Colors: 2, Gamma: o.Gamma,
				Coalition: t, Deviation: dev.Name(),
				Seed:    ConfigSeed(o.Seed, uint64(devIdx), uint64(t)),
				Workers: o.Workers,
			}).Trials(context.Background(), o.Trials)
			if err != nil {
				panic(err)
			}
			fails, wins := 0, 0
			for _, r := range results {
				if r.Failed {
					fails++
				}
				if r.CoalitionColorWon {
					wins++
				}
			}
			// Probability that no honest agent pulls the ringleader during
			// Commitment — the event that lets a forgery through:
			// (1 − 1/n)^(honest·q), computed per-agent (not the union bound).
			uncovered := math.Exp(float64((n-t)*p.Q) * math.Log1p(-1.0/float64(n)))
			tt := float64(o.Trials)
			logn := float64(p.Q) / o.Gamma
			e11.AddRow(dev.Name(), I(t), F(float64(t)/float64(n)), F(float64(t)*logn/float64(n)),
				Pct(float64(wins)/tt), Pct(float64(fails)/tt), F(uncovered))
		}
	}
	e11.AddNote("theorem regime is t·log n = o(n) (fourth column ≪ 1)")
	e11.AddNote("min-k-liar forges a W inconsistent even with its own coalition's binding declarations, so it dies at any t; cert-forger harvests declarations and is the real boundary probe")
	return []*Table{e11}
}
