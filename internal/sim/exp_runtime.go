package sim

import (
	"context"
	"fmt"
	"time"

	"repro/fairgossip"
)

// RuntimeOptions configures E15, the simulator-vs-runtime comparison: the
// same scenarios executed by the round-loop simulator and by the
// goroutine-per-node message-passing runtime, which reports the observables
// the simulator cannot — wall-clock convergence time and per-message
// delivery-latency quantiles.
type RuntimeOptions struct {
	// Sizes are the network sizes of the sweep.
	Sizes  []int
	Trials int
	Seed   uint64
	// Workers is the simulator's engine parallelism for the timed sim runs
	// (0 = all CPUs); the runtime always uses one goroutine per node.
	Workers int
}

// DefaultRuntimeOptions is the full experiment.
func DefaultRuntimeOptions() RuntimeOptions {
	return RuntimeOptions{Sizes: []int{128, 1024, 4096}, Trials: 3, Seed: 15}
}

// QuickRuntimeOptions is a scaled-down variant for tests.
func QuickRuntimeOptions() RuntimeOptions {
	return RuntimeOptions{Sizes: []int{64, 128}, Trials: 2, Seed: 15}
}

// RunE15Runtime regenerates E15: simulated rounds versus real execution.
// Both engines run the identical protocol off the identical seeds — the
// runtime is transcript-equivalent to the simulator, so "rounds" is the same
// number measured two ways and the table panics if the engines ever
// disagree. What the runtime adds is the physical layer: every round is n
// concurrent goroutines exchanging real messages through bounded mailboxes,
// so each cell also reports how long convergence takes on the wall and how
// long an individual message spends in flight (streaming p50/p99 over every
// delivered payload message).
func RunE15Runtime(o RuntimeOptions) []*Table {
	e15 := &Table{
		ID:    "E15",
		Title: "Simulator vs message-passing runtime: rounds, wall-clock convergence, and per-message latency",
		Columns: []string{"n", "rounds", "sim ms", "runtime ms", "delivered",
			"lat p50 µs", "lat p99 µs", "trials"},
	}
	cell := 0
	for _, n := range o.Sizes {
		var simMS, rtMS, rounds, delivered, p50, p99 float64
		for trial := 0; trial < o.Trials; trial++ {
			sc := fairgossip.Scenario{
				N: n, Colors: 2,
				Seed:    ConfigSeed(o.Seed, uint64(cell)),
				Workers: o.Workers,
			}
			cell++
			r := fairgossip.MustRunner(sc)

			start := time.Now()
			simRes, err := r.Run(context.Background())
			if err != nil {
				panic(err)
			}
			simMS += float64(time.Since(start).Microseconds()) / 1e3

			rep, err := r.RunLive(context.Background(), fairgossip.LiveOptions{})
			if err != nil {
				panic(err)
			}
			if rep.Result != simRes {
				panic(fmt.Sprintf("E15: engines diverged at n=%d seed=%d:\nsim     %+v\nruntime %+v",
					n, sc.Seed, simRes, rep.Result))
			}
			rtMS += float64(rep.WallClock.Microseconds()) / 1e3
			rounds += float64(rep.Result.Rounds)
			delivered += float64(rep.Delivered)
			p50 += float64(rep.LatencyP50.Nanoseconds()) / 1e3
			p99 += float64(rep.LatencyP99.Nanoseconds()) / 1e3
		}
		t := float64(o.Trials)
		e15.AddRow(I(n), F(rounds/t), F(simMS/t), F(rtMS/t), F(delivered/t),
			F(p50/t), F(p99/t), I(o.Trials))
	}
	e15.AddNote("both engines execute the identical protocol off identical seeds (transcript-equivalent; the rounds column is checked to match run by run); sim ms is the round-loop simulator's wall time, runtime ms is the goroutine-per-node runtime's — one goroutine and bounded mailbox per agent, every message a real channel delivery")
	e15.AddNote("lat p50/p99 are streaming quantiles over every delivered payload message (push/vote/query/reply), measured send-to-handler through the in-process channel conduit; the gap between them and the runtime/sim wall-clock ratio is the price of physically moving each message the simulator only counts")
	return []*Table{e15}
}

// TransportOptions configures E16, the transport ladder: the same runtime
// executions with every delivery crossing the in-process channel, a
// Unix-domain socket, or a TCP loopback socket.
type TransportOptions struct {
	// Sizes are the network sizes of the sweep.
	Sizes  []int
	Trials int
	Seed   uint64
	// Workers is accepted for interface symmetry with the other experiments;
	// the runtime always uses one goroutine per node.
	Workers int
}

// DefaultTransportOptions is the full experiment.
func DefaultTransportOptions() TransportOptions {
	return TransportOptions{Sizes: []int{128, 1024}, Trials: 3, Seed: 16}
}

// QuickTransportOptions is a scaled-down variant for tests.
func QuickTransportOptions() TransportOptions {
	return TransportOptions{Sizes: []int{64}, Trials: 2, Seed: 16}
}

// RunE16Transports regenerates E16: the price of each rung on the transport
// ladder. Every row is the same protocol execution off the same seeds — the
// transports are transcript-equivalent, and the table panics if the outcome
// ever depends on how the bytes moved — so the wall-clock and latency columns
// isolate pure transport cost: channel is a mailbox handoff, unix adds a
// kernel round trip per message (frame out, ack back), tcp adds the loopback
// TCP stack on top.
func RunE16Transports(o TransportOptions) []*Table {
	e16 := &Table{
		ID:    "E16",
		Title: "Transport ladder: channel vs Unix-domain vs TCP loopback — wall-clock and per-message latency",
		Columns: []string{"n", "transport", "rounds", "wall ms", "delivered",
			"lat p50 µs", "lat p99 µs", "trials"},
	}
	for _, n := range o.Sizes {
		baselines := make([]fairgossip.Result, o.Trials)
		for _, transport := range []string{"channel", "unix", "tcp"} {
			var wallMS, rounds, delivered, p50, p99 float64
			for trial := 0; trial < o.Trials; trial++ {
				sc := fairgossip.Scenario{
					N: n, Colors: 2,
					Seed: ConfigSeed(o.Seed, uint64(n)*uint64(o.Trials)+uint64(trial)),
				}
				rep, err := fairgossip.MustRunner(sc).RunLive(context.Background(),
					fairgossip.LiveOptions{Transport: transport})
				if err != nil {
					panic(err)
				}
				if transport == "channel" {
					baselines[trial] = rep.Result
				} else if rep.Result != baselines[trial] {
					panic(fmt.Sprintf("E16: %s diverged from channel at n=%d seed=%d:\nchannel %+v\n%s %+v",
						transport, n, sc.Seed, baselines[trial], transport, rep.Result))
				}
				wallMS += float64(rep.WallClock.Microseconds()) / 1e3
				rounds += float64(rep.Result.Rounds)
				delivered += float64(rep.Delivered)
				p50 += float64(rep.LatencyP50.Nanoseconds()) / 1e3
				p99 += float64(rep.LatencyP99.Nanoseconds()) / 1e3
			}
			t := float64(o.Trials)
			e16.AddRow(I(n), transport, F(rounds/t), F(wallMS/t), F(delivered/t),
				F(p50/t), F(p99/t), I(o.Trials))
		}
	}
	e16.AddNote("all three transports execute the identical protocol off identical seeds and are checked to produce the identical Result — the transport moves the bytes, never the outcome — so wall ms and the latency quantiles isolate transport cost alone")
	e16.AddNote("unix and tcp deliveries cross a real OS socket as length-prefixed binary frames, dispatched in pipelined round waves: all same-peer messages of a flush coalesce into one multi-message v2 frame answered by one bitmap ack, so a round costs a handful of writes instead of a synchronous write→ack round trip per message")
	e16.AddNote("pipelining closed most of the socket gap: at n=1024 the pre-batching ladder read channel 558 ms, unix 2699 ms (4.8×), tcp 3893 ms (7.0×); batched it reads unix ≈1.9× and tcp ≈2.3× of the channel wall — the lat columns now price wave turnaround (send stamped at wave dispatch, handled when the coalesced frame lands), not a lone message's hop")
	return []*Table{e16}
}
