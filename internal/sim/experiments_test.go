package sim

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment tests run the scaled-down (Quick) configurations and check
// both structure (tables well-formed) and substance (the paper's claims hold
// at test scale).

func findTable(t *testing.T, tables []*Table, id string) *Table {
	t.Helper()
	for _, tb := range tables {
		if tb.ID == id {
			return tb
		}
	}
	t.Fatalf("table %s not produced", id)
	return nil
}

func cell(t *testing.T, tb *Table, row int, col string) string {
	t.Helper()
	for i, c := range tb.Columns {
		if c == col {
			return tb.Rows[row][i]
		}
	}
	t.Fatalf("table %s has no column %q", tb.ID, col)
	return ""
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v / 100
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float %q", s)
	}
	return v
}

func TestT1RoundsLogarithmic(t *testing.T) {
	tables := RunT1Rounds(QuickPerfOptions())
	t1 := findTable(t, tables, "T1")
	if len(t1.Rows) != len(QuickPerfOptions().Sizes) {
		t.Fatalf("T1 rows = %d", len(t1.Rows))
	}
	// rounds/log₂n must be roughly constant (the O(log n) claim).
	first := parseF(t, cell(t, t1, 0, "rounds/log₂n"))
	last := parseF(t, cell(t, t1, len(t1.Rows)-1, "rounds/log₂n"))
	if last > 2*first || first > 2*last {
		t.Fatalf("rounds/log n drifted: %v → %v", first, last)
	}
	f1 := findTable(t, tables, "F1")
	if !f1.Series || len(f1.Rows) == 0 {
		t.Fatal("F1 series missing")
	}
}

func TestT2MessageSizePolylog(t *testing.T) {
	t2 := findTable(t, RunT2MessageSize(QuickPerfOptions()), "T2")
	// bits/log₂²n must not grow with n.
	first := parseF(t, cell(t, t2, 0, "bits/log₂²n"))
	last := parseF(t, cell(t, t2, len(t2.Rows)-1, "bits/log₂²n"))
	if last > 2*first {
		t.Fatalf("message size growing faster than log²n: %v → %v", first, last)
	}
}

func TestT3CommunicationSubquadratic(t *testing.T) {
	t3 := findTable(t, RunT3Communication(QuickPerfOptions()), "T3")
	// The P/LOCAL message ratio must shrink as n grows.
	first := parseF(t, cell(t, t3, 0, "msg ratio P/LOCAL"))
	last := parseF(t, cell(t, t3, len(t3.Rows)-1, "msg ratio P/LOCAL"))
	if last >= first {
		t.Fatalf("message ratio not shrinking: %v → %v", first, last)
	}
}

func TestT4FairnessHolds(t *testing.T) {
	tables := RunT4Fairness(QuickFairnessOptions())
	t4 := findTable(t, tables, "T4")
	for r := range t4.Rows {
		if tv := parseF(t, cell(t, t4, r, "TV distance")); tv > 0.15 {
			t.Errorf("row %d (%s): TV = %v", r, t4.Rows[r][0], tv)
		}
		if p := parseF(t, cell(t, t4, r, "chi² p-value")); p < 1e-4 {
			t.Errorf("row %d (%s): fairness rejected, p = %v", r, t4.Rows[r][0], p)
		}
	}
	f2 := findTable(t, tables, "F2")
	if len(f2.Rows) == 0 {
		t.Fatal("F2 empty")
	}
}

func TestT5FaultsGammaMatters(t *testing.T) {
	t5 := findTable(t, RunT5Faults(QuickFaultOptions()), "T5")
	// With γ = 3 the protocol must succeed at α = 0 and α = 0.4.
	ok := map[string]float64{}
	for r := range t5.Rows {
		key := cell(t, t5, r, "gamma") + "@" + cell(t, t5, r, "alpha")
		ok[key] = parsePct(t, cell(t, t5, r, "success"))
	}
	if ok["3@0"] < 0.95 {
		t.Errorf("γ=3 α=0 success = %v", ok["3@0"])
	}
	if ok["3@0.4"] < 0.9 {
		t.Errorf("γ=3 α=0.4 success = %v", ok["3@0.4"])
	}
}

func TestT6EquilibriumHoldsEverywhere(t *testing.T) {
	tables := RunT6Equilibrium(QuickEquilibriumOptions())
	t6 := findTable(t, tables, "T6")
	for r := range t6.Rows {
		if v := cell(t, t6, r, "equilibrium?"); v != "HOLDS" {
			t.Errorf("row %d (%s, t=%s): %s", r, t6.Rows[r][0], t6.Rows[r][1], v)
		}
	}
	if len(findTable(t, tables, "F3").Rows) != len(t6.Rows) {
		t.Fatal("F3 rows mismatch")
	}
}

func TestT7AblationShowsTheft(t *testing.T) {
	t7 := findTable(t, RunT7Ablation(QuickAblationOptions()), "T7")
	// Row 1: naive + liar — the liar owns the lottery.
	if w := parsePct(t, cell(t, t7, 1, "liar-color win")); w < 0.95 {
		t.Errorf("naive liar win = %v, expected ≈ 1", w)
	}
	// Row 2: Protocol P + liar — theft collapses.
	if w := parsePct(t, cell(t, t7, 2, "liar-color win")); w > 0.25 {
		t.Errorf("P liar win = %v, expected ≈ 0", w)
	}
}

func TestT8BaselinesStructure(t *testing.T) {
	t8 := findTable(t, RunT8Baselines(QuickBaselineOptions()), "T8")
	if len(t8.Rows) != 4 {
		t.Fatalf("T8 rows = %d, want 4", len(t8.Rows))
	}
	// The un-committed LOCAL baseline must be fully riggable...
	if w := parsePct(t, cell(t, t8, 2, "cheater win")); w < 0.95 {
		t.Errorf("rusher win without commitment = %v", w)
	}
	// ...while Protocol P resists its strongest single cheater.
	if w := parsePct(t, cell(t, t8, 0, "cheater win")); w > 0.25 {
		t.Errorf("P cheater win = %v", w)
	}
	// Polling is fully absorbed by a stubborn agent.
	if w := parsePct(t, cell(t, t8, 3, "cheater win")); w < 0.9 {
		t.Errorf("stubborn takeover of polling = %v", w)
	}
}

func TestE9TopologiesExpanderVsRing(t *testing.T) {
	e9 := findTable(t, RunE9Topologies(QuickTopologyOptions()), "E9")
	rates := map[string]float64{}
	for r := range e9.Rows {
		rates[e9.Rows[r][0]] = parsePct(t, cell(t, e9, r, "success"))
	}
	if rates["complete"] < 0.95 {
		t.Errorf("complete success = %v", rates["complete"])
	}
	if rates["regular-8"] < 0.8 {
		t.Errorf("regular-8 success = %v", rates["regular-8"])
	}
	if rates["ring"] > rates["complete"] {
		t.Errorf("ring (%v) outperformed complete (%v)?", rates["ring"], rates["complete"])
	}
}

func TestE10AsyncMostlySucceedsAndFair(t *testing.T) {
	e10 := findTable(t, RunE10Async(QuickAsyncOptions()), "E10")
	for r := range e10.Rows {
		if s := parsePct(t, cell(t, e10, r, "success")); s < 0.8 {
			t.Errorf("async n=%s success = %v", e10.Rows[r][0], s)
		}
	}
}

// TestE12DynamicsChurnCollapse pins the dynamic-topology finding: the static
// baseline succeeds essentially always, success is (weakly) monotone
// decreasing in the edge-Markovian churn rate, and past ~2%/round churn the
// protocol has collapsed — vote pushes bound to long-dead edges leave
// declarations unfulfilled, so verifiers reject.
func TestE12DynamicsChurnCollapse(t *testing.T) {
	e12 := findTable(t, RunE12Dynamics(QuickDynamicsOptions()), "E12")
	if len(e12.Rows) < 6 {
		t.Fatalf("E12 has %d rows", len(e12.Rows))
	}
	var lastEM = -1.0
	for r := range e12.Rows {
		proc := e12.Rows[r][0]
		succ := parsePct(t, cell(t, e12, r, "success"))
		churn := parseF(t, cell(t, e12, r, "churn/round"))
		switch {
		case proc == "static complete":
			if succ < 0.9 {
				t.Errorf("static baseline success = %v", succ)
			}
		case proc == "edge-markovian":
			if lastEM >= 0 && succ > lastEM+0.1 {
				t.Errorf("churn %v: success %v not (weakly) decreasing (prev %v)", churn, succ, lastEM)
			}
			lastEM = succ
			if churn >= 0.02 && succ > 0.1 {
				t.Errorf("churn %v: success %v — expected collapse past 2%%/round", churn, succ)
			}
		}
	}
}

// TestE13ChurnAtScaleShape pins the churn-at-scale sweep's structure: one
// edge-markovian row per (n, death) cell plus the three implicit-generator
// comparison rows, every cell actually runs (rounds > 0), and the full-
// rematch d-regular row — no edge survives a round, so every cross-round
// binding declaration dies — cannot out-succeed the gentlest geometric row.
func TestE13ChurnAtScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial churn sweep skipped in -short mode")
	}
	o := QuickChurnScaleOptions()
	e13 := findTable(t, RunE13ChurnAtScale(o), "E13")
	want := len(o.Ns)*len(o.Deaths) + 3
	if len(e13.Rows) != want {
		t.Fatalf("E13 has %d rows, want %d", len(e13.Rows), want)
	}
	var rematch, gentleGeo = -1.0, -1.0
	for r := range e13.Rows {
		if rounds := parseF(t, cell(t, e13, r, "mean rounds")); rounds <= 0 {
			t.Errorf("row %d (%s): no rounds recorded", r, e13.Rows[r][0])
		}
		succ := parsePct(t, cell(t, e13, r, "success"))
		switch e13.Rows[r][0] {
		case "d-regular rematch":
			rematch = succ
		case "geometric torus":
			if gentleGeo < 0 { // first geometric row carries the smallest jitter
				gentleGeo = succ
			}
		}
	}
	if rematch < 0 || gentleGeo < 0 {
		t.Fatal("comparison rows missing")
	}
	if rematch > gentleGeo+0.1 {
		t.Errorf("full rematch success %v exceeds gentle geometric drift %v", rematch, gentleGeo)
	}
}

func TestRunAllQuickProducesAllTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-suite run skipped in -short mode")
	}
	tables := RunAllQuick(0)
	want := []string{"T0", "T1", "F1", "T2", "T3", "T4", "F2", "T5", "T6", "F3", "T7", "T8", "E9", "E10", "E11", "E12", "E12b", "E13", "E14", "E15", "E16"}
	got := map[string]bool{}
	for _, tb := range tables {
		got[tb.ID] = true
		if len(tb.Rows) == 0 {
			t.Errorf("table %s is empty", tb.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("missing table %s", id)
		}
	}
}

func TestE11EquilibriumDegradesOnlyAtHugeCoalitions(t *testing.T) {
	e11 := findTable(t, RunE11CoalitionScaling(QuickScalingOptions()), "E11")
	// Small coalitions: neither forgery ever wins.
	for r := 0; r < len(e11.Rows); r++ {
		frac := parseF(t, cell(t, e11, r, "t/n"))
		win := parsePct(t, cell(t, e11, r, "coalition win"))
		if frac <= 0.15 && win > 0.05 {
			t.Errorf("row %d: small coalition (%v) won %v", r, frac, win)
		}
		// Everywhere: a forgery either wins (huge coalitions only) or the
		// run fails; honest-consensus-with-forgery-circulating is impossible.
		fail := parsePct(t, cell(t, e11, r, "fail rate"))
		if win+fail < 0.85 {
			t.Errorf("row %d: win %v + fail %v leaves unexplained mass", r, win, fail)
		}
	}
}
