package sim

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/fairgossip"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// PerfOptions configures the performance experiments T1–T3 and figure F1.
type PerfOptions struct {
	Sizes   []int
	Alphas  []float64 // fault fractions for the F1 series
	Gamma   float64
	Trials  int
	Seed    uint64
	Workers int
}

// DefaultPerfOptions is the full laptop-scale sweep.
func DefaultPerfOptions() PerfOptions {
	return PerfOptions{
		Sizes:  []int{128, 256, 512, 1024, 2048, 4096},
		Alphas: []float64{0, 0.3, 0.6},
		Gamma:  2,
		Trials: 10,
		Seed:   1,
	}
}

// QuickPerfOptions is a scaled-down sweep for tests.
func QuickPerfOptions() PerfOptions {
	return PerfOptions{
		Sizes:  []int{64, 128, 256},
		Alphas: []float64{0, 0.3},
		Gamma:  2,
		Trials: 5,
		Seed:   1,
	}
}

type perfSample struct {
	rounds  int
	msgs    int
	bits    int64
	maxBits int
	failed  bool
}

// perfCache memoizes measure results across T0–T3, which sweep the same
// (n, α) grid; keys include every input that affects the outcome, so cached
// results are identical to recomputed ones.
var perfCache sync.Map

type perfKey struct {
	n      int
	alpha  float64
	gamma  float64
	trials int
	seed   uint64
}

func (o PerfOptions) measure(n int, alpha float64) []perfSample {
	key := perfKey{n: n, alpha: alpha, gamma: o.Gamma, trials: o.Trials, seed: o.Seed}
	if v, ok := perfCache.Load(key); ok {
		return v.([]perfSample)
	}
	samples := o.measureUncached(n, alpha)
	perfCache.Store(key, samples)
	return samples
}

func (o PerfOptions) measureUncached(n int, alpha float64) []perfSample {
	sc := fairgossip.Scenario{
		N: n, Colors: 2, Gamma: o.Gamma,
		Seed:    ConfigSeed(o.Seed, uint64(n), math.Float64bits(alpha)),
		Workers: o.Workers,
	}
	if alpha > 0 {
		sc.Fault = fairgossip.FaultModel{Kind: fairgossip.FaultPermanent, Alpha: alpha}
	}
	results, err := fairgossip.MustRunner(sc).Trials(context.Background(), o.Trials)
	if err != nil {
		panic(err)
	}
	samples := make([]perfSample, len(results))
	for i, res := range results {
		samples[i] = perfSample{
			rounds:  res.Rounds,
			msgs:    res.Metrics.Messages,
			bits:    res.Metrics.Bits,
			maxBits: res.Metrics.MaxMessageBits,
			failed:  res.Failed,
		}
	}
	return samples
}

// RunT1Rounds regenerates T1 (Theorem 4: O(log n) rounds) and the F1 series.
func RunT1Rounds(o PerfOptions) []*Table {
	t1 := &Table{
		ID:      "T1",
		Title:   "Consensus rounds vs n (Theorem 4: O(log n))",
		Columns: []string{"n", "q=⌈γlog₂n⌉", "rounds(med)", "rounds/log₂n", "fail"},
	}
	f1 := &Table{
		ID:      "F1",
		Title:   "Figure: rounds vs n, one series per fault fraction α",
		Columns: []string{"n", "alpha", "rounds"},
		Series:  true,
	}
	var xs, ys []float64
	for _, n := range o.Sizes {
		p := core.MustParams(n, 2, o.Gamma)
		samples := o.measure(n, 0)
		var rounds []float64
		fails := 0
		for _, s := range samples {
			rounds = append(rounds, float64(s.rounds))
			if s.failed {
				fails++
			}
		}
		med := stats.Summarize(rounds).Median
		logn := math.Log2(float64(n))
		t1.AddRow(I(n), I(p.Q), F(med), F(med/logn), fmt.Sprintf("%d/%d", fails, len(samples)))
		xs = append(xs, float64(n))
		ys = append(ys, med)
	}
	c, r2 := stats.FitPowerOfLog(xs, ys, 1)
	t1.AddNote("fit rounds ≈ %.2f·log₂n with R² = %.4f (γ = %.1f; schedule is 4q+1)", c, r2, o.Gamma)

	for _, alpha := range o.Alphas {
		for _, n := range o.Sizes {
			samples := o.measure(n, alpha)
			var rounds []float64
			for _, s := range samples {
				rounds = append(rounds, float64(s.rounds))
			}
			f1.AddRow(I(n), F(alpha), F(stats.Summarize(rounds).Median))
		}
	}
	return []*Table{t1, f1}
}

// RunT2MessageSize regenerates T2 (Theorem 4: messages of O(log² n) bits).
func RunT2MessageSize(o PerfOptions) []*Table {
	t2 := &Table{
		ID:      "T2",
		Title:   "Maximum message size vs n (Theorem 4: O(log² n) bits)",
		Columns: []string{"n", "maxMsgBits(med)", "bits/log₂²n", "avgMsgBits"},
	}
	var xs, ys []float64
	for _, n := range o.Sizes {
		samples := o.measure(n, 0)
		var maxBits []float64
		var avg float64
		for _, s := range samples {
			maxBits = append(maxBits, float64(s.maxBits))
			avg += float64(s.bits) / float64(s.msgs)
		}
		avg /= float64(len(samples))
		med := stats.Summarize(maxBits).Median
		l := math.Log2(float64(n))
		t2.AddRow(I(n), F(med), F(med/(l*l)), F(avg))
		xs = append(xs, float64(n))
		ys = append(ys, med)
	}
	c, r2 := stats.FitPowerOfLog(xs, ys, 2)
	t2.AddNote("fit maxMsgBits ≈ %.2f·log₂²n with R² = %.4f", c, r2)
	return []*Table{t2}
}

// RunT3Communication regenerates T3: total communication of Protocol P
// (O(n log³ n) claimed) against the Ω(n²) LOCAL-model baseline.
func RunT3Communication(o PerfOptions) []*Table {
	t3 := &Table{
		ID:      "T3",
		Title:   "Total communication: Protocol P vs LOCAL-model election (Abstract: o(n²) vs Ω(n²))",
		Columns: []string{"n", "P msgs", "P bits", "LOCAL msgs", "LOCAL bits", "msg ratio P/LOCAL", "P bits/(n·log₂³n)"},
	}
	crossed := false
	for _, n := range o.Sizes {
		samples := o.measure(n, 0)
		var msgs, bits float64
		for _, s := range samples {
			msgs += float64(s.msgs)
			bits += float64(s.bits)
		}
		msgs /= float64(len(samples))
		bits /= float64(len(samples))

		lr, err := baseline.RunLocalSum(baseline.LocalSumConfig{
			N: n, Colors: core.UniformColors(n, 2), Seed: o.Seed, CommitReveal: true,
		})
		if err != nil {
			panic(err)
		}
		ratio := msgs / float64(lr.Messages)
		l := math.Log2(float64(n))
		t3.AddRow(I(n), F(msgs), F(bits), I(lr.Messages), I(int(lr.Bits)),
			F(ratio), F(bits/(float64(n)*l*l*l)))
		if !crossed && ratio < 1 {
			crossed = true
			t3.AddNote("crossover: P uses fewer messages than the LOCAL baseline from n = %d on", n)
		}
	}
	t3.AddNote("LOCAL baseline is the commit-reveal modular-sum election (2 rounds, 2·|A|·(n−1) messages)")
	return []*Table{t3}
}

// BitsForValues re-exports the metrics helper for experiment code readability.
func BitsForValues(n uint64) int { return metrics.BitsForValues(n) }
