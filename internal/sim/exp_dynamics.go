package sim

import (
	"context"
	"fmt"

	"repro/fairgossip"
)

// DynamicsOptions configures E12, the dynamic-topology experiment: Protocol P
// on graphs whose edge set evolves per round — the graph-process analogue of
// churn, and the natural sharpening of open problem 1 (other graph classes)
// toward the paper's motivating "networks whose structure is not fixed".
type DynamicsOptions struct {
	N       int
	Gamma   float64
	Trials  int
	Seed    uint64
	Workers int
}

// DefaultDynamicsOptions is the full experiment.
func DefaultDynamicsOptions() DynamicsOptions {
	return DynamicsOptions{N: 128, Trials: 120, Seed: 12}
}

// QuickDynamicsOptions is a scaled-down variant for tests.
func QuickDynamicsOptions() DynamicsOptions {
	return DynamicsOptions{N: 64, Trials: 30, Seed: 12}
}

// RunE12Dynamics regenerates E12: success and round count of Protocol P as a
// function of the per-round edge churn rate. The edge-Markovian rows hold the
// stationary degree fixed at ≈ (n−1)/4 (birth = death/3) and sweep the death
// rate, so the only thing that varies is how fast the same-density graph
// turns over; the rewiring-ring rows sweep the Watts–Strogatz β of a
// per-round-resampled ring. The mechanism under test is the binding
// declarations: a Voting-phase push addressed to a peer sampled rounds
// earlier is dropped if that edge has meanwhile died, and every unfulfilled
// declaration is a reason for verifiers to reject — the same brittleness
// lossy links and mid-voting crashes expose.
func RunE12Dynamics(o DynamicsOptions) []*Table {
	e12 := &Table{
		ID: "E12",
		Title: fmt.Sprintf("Dynamic topologies at n = %d: Protocol P vs per-round edge churn",
			o.N),
		Columns: []string{"process", "churn/round", "success", "mean rounds", "trials"},
	}
	type row struct {
		label string
		churn float64
		dyn   fairgossip.Dynamics
	}
	rows := []row{
		{"static complete", 0, fairgossip.Dynamics{}},
	}
	// Fixed stationary density π = 1/4; death is the per-edge churn rate.
	for _, death := range []float64{0.001, 0.005, 0.02, 0.1} {
		rows = append(rows, row{"edge-markovian", death, fairgossip.Dynamics{
			Kind: fairgossip.DynamicsEdgeMarkovian, Birth: death / 3, Death: death,
		}})
	}
	for _, beta := range []float64{0, 0.25} {
		rows = append(rows, row{"rewire-ring", beta, fairgossip.Dynamics{
			Kind: fairgossip.DynamicsRewireRing, Beta: beta,
		}})
	}
	for i, rw := range rows {
		r := fairgossip.MustRunner(fairgossip.Scenario{
			N: o.N, Colors: 2, Gamma: o.Gamma,
			Dynamics: rw.dyn,
			Seed:     ConfigSeed(o.Seed, uint64(i)),
			Workers:  o.Workers,
		})
		results, err := r.Trials(context.Background(), o.Trials)
		if err != nil {
			panic(err)
		}
		succ, rounds := 0, 0
		for _, res := range results {
			if !res.Failed {
				succ++
			}
			rounds += res.Rounds
		}
		e12.AddRow(rw.label, F(rw.churn),
			Pct(float64(succ)/float64(o.Trials)),
			F(float64(rounds)/float64(o.Trials)), I(o.Trials))
	}
	e12.AddNote("edge-markovian rows share one stationary degree ≈ (n−1)/4; only the turnover rate varies")
	e12.AddNote("the protocol tolerates only sub-0.5%%/round edge churn: votes are bound to peers sampled up to 2q rounds earlier, and each vote lost to a dead edge is an unfulfilled declaration — the same collapse as 5%% message loss or a mid-voting crash")
	return []*Table{e12}
}
