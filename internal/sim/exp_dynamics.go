package sim

import (
	"context"
	"fmt"

	"repro/fairgossip"
)

// DynamicsOptions configures E12, the dynamic-topology experiment: Protocol P
// on graphs whose edge set evolves per round — the graph-process analogue of
// churn, and the natural sharpening of open problem 1 (other graph classes)
// toward the paper's motivating "networks whose structure is not fixed".
type DynamicsOptions struct {
	N       int
	Gamma   float64
	Trials  int
	Seed    uint64
	Workers int
	// ScaleNs are the network sizes of the E12b churn-at-scale sweep, run at
	// the fixed stationary degree ScaleDegree in the sub-0.5%/round regime
	// the E12 finding cares about. The sweep exists because the sparse
	// Θ(flips) engine opened sizes the dense engine's n ≤ 4096 bound (and
	// its Θ(n²) per round) made unreachable.
	ScaleNs []int
	// ScaleDeaths are the per-round edge death rates of the E12b sweep.
	ScaleDeaths []float64
	// ScaleDegree is the stationary mean degree held fixed across the E12b
	// sweep (birth is derived per n); 0 defaults to 64.
	ScaleDegree int
	// ScaleTrials is the per-cell trial count of the E12b sweep; it is
	// deliberately smaller than Trials because a single n = 16384 trial costs
	// seconds, not milliseconds.
	ScaleTrials int
}

// DefaultDynamicsOptions is the full experiment.
func DefaultDynamicsOptions() DynamicsOptions {
	return DynamicsOptions{
		N: 128, Trials: 120, Seed: 12,
		ScaleNs:     []int{1024, 4096, 16384},
		ScaleDeaths: []float64{0.001, 0.002, 0.005},
		ScaleTrials: 10,
	}
}

// QuickDynamicsOptions is a scaled-down variant for tests.
func QuickDynamicsOptions() DynamicsOptions {
	return DynamicsOptions{
		N: 64, Trials: 30, Seed: 12,
		ScaleNs:     []int{256, 1024},
		ScaleDeaths: []float64{0.001, 0.005},
		ScaleTrials: 8,
	}
}

// RunE12Dynamics regenerates E12 and E12b: success and round count of
// Protocol P as a function of the per-round edge churn rate, at one size
// (E12) and across sizes (E12b).
//
// The E12 edge-Markovian rows hold the stationary degree fixed at ≈ (n−1)/4
// (birth = death/3) and sweep the death rate, so the only thing that varies
// is how fast the same-density graph turns over; the rewiring-ring rows
// sweep the Watts–Strogatz β of a per-round-resampled ring. The mechanism
// under test is the binding declarations: a Voting-phase push addressed to a
// peer sampled rounds earlier is dropped if that edge has meanwhile died,
// and every unfulfilled declaration is a reason for verifiers to reject —
// the same brittleness lossy links and mid-voting crashes expose.
//
// E12b asks how that churn boundary moves with network size: it holds the
// stationary degree fixed at an n-independent ScaleDegree (the sparse
// regime: density π = deg/(n−1) falls as n grows) and sweeps death rates in
// the sub-0.5%/round band across ScaleNs. Larger networks run more rounds
// (q grows with log n) and bind votes for longer, so the tolerable churn
// rate shrinks as n grows.
func RunE12Dynamics(o DynamicsOptions) []*Table {
	e12 := &Table{
		ID: "E12",
		Title: fmt.Sprintf("Dynamic topologies at n = %d: Protocol P vs per-round edge churn",
			o.N),
		Columns: []string{"process", "churn/round", "success", "mean rounds", "trials"},
	}
	type row struct {
		label string
		churn float64
		dyn   fairgossip.Dynamics
	}
	rows := []row{
		{"static complete", 0, fairgossip.Dynamics{}},
	}
	// Fixed stationary density π = 1/4; death is the per-edge churn rate.
	for _, death := range []float64{0.001, 0.005, 0.02, 0.1} {
		rows = append(rows, row{"edge-markovian", death, fairgossip.Dynamics{
			Kind: fairgossip.DynamicsEdgeMarkovian, Birth: death / 3, Death: death,
		}})
	}
	for _, beta := range []float64{0, 0.25} {
		rows = append(rows, row{"rewire-ring", beta, fairgossip.Dynamics{
			Kind: fairgossip.DynamicsRewireRing, Beta: beta,
		}})
	}
	for i, rw := range rows {
		succ, rounds := dynamicsCell(fairgossip.Scenario{
			N: o.N, Colors: 2, Gamma: o.Gamma,
			Dynamics: rw.dyn,
			Seed:     ConfigSeed(o.Seed, uint64(i)),
			Workers:  o.Workers,
		}, o.Trials)
		e12.AddRow(rw.label, F(rw.churn), Pct(succ), F(rounds), I(o.Trials))
	}
	e12.AddNote("edge-markovian rows share one stationary degree ≈ (n−1)/4; only the turnover rate varies")
	e12.AddNote("the protocol tolerates only sub-0.5%%/round edge churn: votes are bound to peers sampled up to 2q rounds earlier, and each vote lost to a dead edge is an unfulfilled declaration — the same collapse as 5%% message loss or a mid-voting crash")

	deg := o.ScaleDegree
	if deg == 0 {
		deg = 64
	}
	if o.ScaleTrials == 0 {
		o.ScaleTrials = 10 // like ScaleDegree, options predating E12b get the default
	}
	e12b := &Table{
		ID: "E12b",
		Title: fmt.Sprintf("Churn at scale: Protocol P vs per-round edge churn, stationary degree %d",
			deg),
		Columns: []string{"n", "death/round", "success", "mean rounds", "trials"},
	}
	cell := 0
	for _, n := range o.ScaleNs {
		pi := float64(deg) / float64(n-1)
		for _, death := range o.ScaleDeaths {
			succ, rounds := dynamicsCell(fairgossip.Scenario{
				N: n, Colors: 2, Gamma: o.Gamma,
				Dynamics: fairgossip.Dynamics{
					Kind:  fairgossip.DynamicsEdgeMarkovian,
					Birth: death * pi / (1 - pi), // stationary law pinned at π = deg/(n−1)
					Death: death,
				},
				Seed:    ConfigSeed(o.Seed, 1000+uint64(cell)),
				Workers: o.Workers,
			}, o.ScaleTrials)
			e12b.AddRow(I(n), F(death), Pct(succ), F(rounds), I(o.ScaleTrials))
			cell++
		}
	}
	e12b.AddNote("every cell shares the same expected degree; only n and the turnover rate vary — the sweep the sparse Θ(flips) engine makes affordable (the dense engine paid Θ(n²) per round and stopped at n = 4096)")
	e12b.AddNote("the churn boundary tightens with n: more rounds (q ∝ log n) mean longer-lived binding declarations, so the same per-edge death rate kills more declared votes per run")
	return []*Table{e12, e12b}
}

// dynamicsCell runs one (scenario, trials) cell and returns the success rate
// and mean round count.
func dynamicsCell(sc fairgossip.Scenario, trials int) (successRate, meanRounds float64) {
	results, err := fairgossip.MustRunner(sc).Trials(context.Background(), trials)
	if err != nil {
		panic(err)
	}
	succ, rounds := 0, 0
	for _, res := range results {
		if !res.Failed {
			succ++
		}
		rounds += res.Rounds
	}
	return float64(succ) / float64(trials), float64(rounds) / float64(trials)
}
