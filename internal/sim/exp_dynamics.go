package sim

import (
	"context"
	"fmt"

	"repro/fairgossip"
)

// DynamicsOptions configures E12, the dynamic-topology experiment: Protocol P
// on graphs whose edge set evolves per round — the graph-process analogue of
// churn, and the natural sharpening of open problem 1 (other graph classes)
// toward the paper's motivating "networks whose structure is not fixed".
type DynamicsOptions struct {
	N       int
	Gamma   float64
	Trials  int
	Seed    uint64
	Workers int
	// ScaleNs are the network sizes of the E12b churn-at-scale sweep, run at
	// the fixed stationary degree ScaleDegree in the sub-0.5%/round regime
	// the E12 finding cares about. The sweep exists because the sparse
	// Θ(flips) engine opened sizes the dense engine's n ≤ 4096 bound (and
	// its Θ(n²) per round) made unreachable.
	ScaleNs []int
	// ScaleDeaths are the per-round edge death rates of the E12b sweep.
	ScaleDeaths []float64
	// ScaleDegree is the stationary mean degree held fixed across the E12b
	// sweep (birth is derived per n); 0 defaults to 64.
	ScaleDegree int
	// ScaleTrials is the per-cell trial count of the E12b sweep; it is
	// deliberately smaller than Trials because a single n = 16384 trial costs
	// seconds, not milliseconds.
	ScaleTrials int
}

// DefaultDynamicsOptions is the full experiment.
func DefaultDynamicsOptions() DynamicsOptions {
	return DynamicsOptions{
		N: 128, Trials: 120, Seed: 12,
		ScaleNs:     []int{1024, 4096, 16384},
		ScaleDeaths: []float64{0.001, 0.002, 0.005},
		ScaleTrials: 10,
	}
}

// QuickDynamicsOptions is a scaled-down variant for tests.
func QuickDynamicsOptions() DynamicsOptions {
	return DynamicsOptions{
		N: 64, Trials: 30, Seed: 12,
		ScaleNs:     []int{256, 1024},
		ScaleDeaths: []float64{0.001, 0.005},
		ScaleTrials: 8,
	}
}

// RunE12Dynamics regenerates E12 and E12b: success and round count of
// Protocol P as a function of the per-round edge churn rate, at one size
// (E12) and across sizes (E12b).
//
// The E12 edge-Markovian rows hold the stationary degree fixed at ≈ (n−1)/4
// (birth = death/3) and sweep the death rate, so the only thing that varies
// is how fast the same-density graph turns over; the rewiring-ring rows
// sweep the Watts–Strogatz β of a per-round-resampled ring. The mechanism
// under test is the binding declarations: a Voting-phase push addressed to a
// peer sampled rounds earlier is dropped if that edge has meanwhile died,
// and every unfulfilled declaration is a reason for verifiers to reject —
// the same brittleness lossy links and mid-voting crashes expose.
//
// E12b asks how that churn boundary moves with network size: it holds the
// stationary degree fixed at an n-independent ScaleDegree (the sparse
// regime: density π = deg/(n−1) falls as n grows) and sweeps death rates in
// the sub-0.5%/round band across ScaleNs. Larger networks run more rounds
// (q grows with log n) and bind votes for longer, so the tolerable churn
// rate shrinks as n grows.
func RunE12Dynamics(o DynamicsOptions) []*Table {
	e12 := &Table{
		ID: "E12",
		Title: fmt.Sprintf("Dynamic topologies at n = %d: Protocol P vs per-round edge churn",
			o.N),
		Columns: []string{"process", "churn/round", "success", "mean rounds", "trials"},
	}
	type row struct {
		label string
		churn float64
		dyn   fairgossip.Dynamics
	}
	rows := []row{
		{"static complete", 0, fairgossip.Dynamics{}},
	}
	// Fixed stationary density π = 1/4; death is the per-edge churn rate.
	for _, death := range []float64{0.001, 0.005, 0.02, 0.1} {
		rows = append(rows, row{"edge-markovian", death, fairgossip.Dynamics{
			Kind: fairgossip.DynamicsEdgeMarkovian, Birth: death / 3, Death: death,
		}})
	}
	for _, beta := range []float64{0, 0.25} {
		rows = append(rows, row{"rewire-ring", beta, fairgossip.Dynamics{
			Kind: fairgossip.DynamicsRewireRing, Beta: beta,
		}})
	}
	for i, rw := range rows {
		succ, rounds := dynamicsCell(fairgossip.Scenario{
			N: o.N, Colors: 2, Gamma: o.Gamma,
			Dynamics: rw.dyn,
			Seed:     ConfigSeed(o.Seed, uint64(i)),
			Workers:  o.Workers,
		}, o.Trials)
		e12.AddRow(rw.label, F(rw.churn), Pct(succ), F(rounds), I(o.Trials))
	}
	e12.AddNote("edge-markovian rows share one stationary degree ≈ (n−1)/4; only the turnover rate varies")
	e12.AddNote("the protocol tolerates only sub-0.5%%/round edge churn: votes are bound to peers sampled up to 2q rounds earlier, and each vote lost to a dead edge is an unfulfilled declaration — the same collapse as 5%% message loss or a mid-voting crash")

	deg := o.ScaleDegree
	if deg == 0 {
		deg = 64
	}
	if o.ScaleTrials == 0 {
		o.ScaleTrials = 10 // like ScaleDegree, options predating E12b get the default
	}
	e12b := &Table{
		ID: "E12b",
		Title: fmt.Sprintf("Churn at scale: Protocol P vs per-round edge churn, stationary degree %d",
			deg),
		Columns: []string{"n", "death/round", "success", "mean rounds", "trials"},
	}
	cell := 0
	for _, n := range o.ScaleNs {
		pi := float64(deg) / float64(n-1)
		for _, death := range o.ScaleDeaths {
			succ, rounds := dynamicsCell(fairgossip.Scenario{
				N: n, Colors: 2, Gamma: o.Gamma,
				Dynamics: fairgossip.Dynamics{
					Kind:  fairgossip.DynamicsEdgeMarkovian,
					Birth: death * pi / (1 - pi), // stationary law pinned at π = deg/(n−1)
					Death: death,
				},
				Seed:    ConfigSeed(o.Seed, 1000+uint64(cell)),
				Workers: o.Workers,
			}, o.ScaleTrials)
			e12b.AddRow(I(n), F(death), Pct(succ), F(rounds), I(o.ScaleTrials))
			cell++
		}
	}
	e12b.AddNote("every cell shares the same expected degree; only n and the turnover rate vary — the sweep the sparse Θ(flips) engine makes affordable (the dense engine paid Θ(n²) per round and stopped at n = 4096)")
	e12b.AddNote("the churn boundary tightens with n: more rounds (q ∝ log n) mean longer-lived binding declarations, so the same per-edge death rate kills more declared votes per run")
	return []*Table{e12, e12b}
}

// ChurnScaleOptions configures E13, the million-node churn sweep: Protocol P
// on implicitly represented sparse dynamic graphs at sizes the per-pair
// engines could never admit. The O(present-edges) membership set lifted the
// dynamic-topology cap from n = 32768 to n = 2²⁰, and E13 is the experiment
// that cap was lifted for.
type ChurnScaleOptions struct {
	// Ns are the edge-Markovian sweep sizes, ascending; the largest runs
	// LargeTrials per cell instead of Trials (a million-node trial costs
	// minutes, not seconds).
	Ns []int
	// Deaths are the per-round edge death rates swept at every n.
	Deaths []float64
	// Degree is the expected degree held fixed across every row (birth is
	// derived per n); 0 defaults to 64.
	Degree int
	// Trials is the per-cell trial count at every n except the largest.
	Trials int
	// LargeTrials is the per-cell trial count at the largest n.
	LargeTrials int
	// AltN is the size of the comparison rows that run the implicit sparse
	// generators — a per-round re-matched random d-regular graph and a
	// geometric torus under positional jitter — next to the edge-Markovian
	// cells; 0 disables them.
	AltN    int
	Gamma   float64
	Seed    uint64
	Workers int
}

// DefaultChurnScaleOptions is the full experiment: n ∈ {10⁵, 10⁶}.
func DefaultChurnScaleOptions() ChurnScaleOptions {
	return ChurnScaleOptions{
		Ns:     []int{100_000, 1_000_000},
		Deaths: []float64{0.0001, 0.002},
		Degree: 64, Trials: 3, LargeTrials: 2,
		AltN: 100_000, Seed: 13,
	}
}

// QuickChurnScaleOptions is a scaled-down variant for tests.
func QuickChurnScaleOptions() ChurnScaleOptions {
	return ChurnScaleOptions{
		Ns:     []int{2048, 8192},
		Deaths: []float64{0.0005, 0.002},
		Degree: 32, Trials: 4, LargeTrials: 3,
		AltN: 2048, Seed: 13,
	}
}

// RunE13ChurnAtScale regenerates E13: Protocol P under per-round graph churn
// at n ∈ Ns — the sweep the O(edges) membership refactor unlocks. Every row
// holds the expected degree fixed (the sparse regime: density falls as 1/n),
// so the independent variables are the network size and the turnover law:
//
//   - edge-markovian rows sweep the per-edge death rate with birth pinned to
//     the stationary degree, the same law as E12b but at 6×–60× its largest
//     size;
//   - the d-regular row resamples the entire matching every round — the
//     full-turnover extreme (churn column 1): no edge survives, so every
//     binding declaration addressed more than a round back is dead;
//   - the geometric rows drift torus points by a per-round jitter (churn
//     column = jitter): churn is boundary-only and spatially correlated,
//     the gentlest turnover law at the same degree.
//
// The million-node cells pin the asymptotic trend of the E12 finding: the
// tolerable churn rate keeps shrinking as q ∝ log n stretches the binding
// window — at 0.01%/round success has already fallen to ~2/3 by n = 10⁵ and
// ~1/2 by n = 10⁶, and 0.2%/round is total collapse at both sizes. The
// geometric rows fail at every jitter for a different reason: a connection
// radius r ~ sqrt(deg/n) gives the torus a Θ(1/r) diameter, so Find-Min
// starves exactly as it does on the ring (E9) — spatial locality, not
// turnover, is what kills the complete-graph protocol there.
func RunE13ChurnAtScale(o ChurnScaleOptions) []*Table {
	deg := o.Degree
	if deg == 0 {
		deg = 64
	}
	e13 := &Table{
		ID: "E13",
		Title: fmt.Sprintf("Churn at n up to %d: Protocol P on implicit sparse dynamic graphs, expected degree %d",
			o.Ns[len(o.Ns)-1], deg),
		Columns: []string{"process", "n", "churn", "success", "mean rounds", "trials"},
	}
	cell := 0
	run := func(label string, n int, churn float64, trials int, dyn fairgossip.Dynamics) {
		succ, rounds := dynamicsCell(fairgossip.Scenario{
			N: n, Colors: 2, Gamma: o.Gamma,
			Dynamics: dyn,
			Seed:     ConfigSeed(o.Seed, uint64(cell)),
			Workers:  o.Workers,
		}, trials)
		e13.AddRow(label, I(n), F(churn), Pct(succ), F(rounds), I(trials))
		cell++
	}
	for i, n := range o.Ns {
		trials := o.Trials
		if i == len(o.Ns)-1 && o.LargeTrials > 0 {
			trials = o.LargeTrials
		}
		pi := float64(deg) / float64(n-1)
		for _, death := range o.Deaths {
			run("edge-markovian", n, death, trials, fairgossip.Dynamics{
				Kind:  fairgossip.DynamicsEdgeMarkovian,
				Birth: death * pi / (1 - pi), // stationary law pinned at π = deg/(n−1)
				Death: death,
			})
		}
	}
	if o.AltN > 0 {
		run("d-regular rematch", o.AltN, 1, o.Trials, fairgossip.Dynamics{
			Kind: fairgossip.DynamicsDRegular, Degree: deg,
		})
		for _, jitter := range []float64{0.001, 0.01} {
			run("geometric torus", o.AltN, jitter, o.Trials, fairgossip.Dynamics{
				Kind: fairgossip.DynamicsGeometric, Degree: deg, Jitter: jitter,
			})
		}
	}
	e13.AddNote("churn column: per-edge death rate (edge-markovian), 1 = full per-round rematch (d-regular), per-round positional jitter (geometric)")
	e13.AddNote("every cell holds expected degree %d — memory is O(edges), so n = 10⁶ at ~3·10⁷ edges is admissible where the old per-pair engines stopped at n = 32768", deg)
	e13.AddNote("geometric failures are diameter-driven, not churn-driven: r ~ sqrt(deg/n) means Θ(1/r) hops across the torus, the same Find-Min starvation as the ring in E9")
	if o.AltN > 0 {
		// The relaxed-geometric composite (the registered builtin, scaled to
		// this sweep): does E14's loss-tolerant k-of-q verification buy back
		// any of the diameter-driven collapse? Measured here rather than
		// asserted, because the answer — no — is the point: relaxation
		// forgives bounded per-voter violations, and a starved Find-Min is
		// not a bounded violation.
		q := fairgossip.MustRunner(fairgossip.Scenario{
			N: o.AltN, Colors: 2, Gamma: o.Gamma, Seed: 1,
		}).Params().Q
		minVotes := q - 4
		if minVotes < 1 {
			minVotes = 1
		}
		succ, _ := dynamicsCell(fairgossip.Scenario{
			N: o.AltN, Colors: 2, Gamma: o.Gamma,
			Dynamics: fairgossip.Dynamics{Kind: fairgossip.DynamicsGeometric, Degree: deg, Jitter: 0.01},
			Protocol: fairgossip.Protocol{Variant: fairgossip.ProtocolRelaxed, MinVotes: minVotes},
			Seed:     ConfigSeed(o.Seed, uint64(cell)),
			Workers:  o.Workers,
		}, o.Trials)
		e13.AddNote("relaxed-geometric composite (k=%d/%d relaxed verification on the jitter-0.01 torus, n = %d): success %s — relaxation buys back none of the collapse, confirming it is diameter-driven; bounded per-voter forgiveness cannot manufacture the votes a Θ(1/r)-hop graph never delivers", minVotes, q, o.AltN, Pct(succ))
	}
	return []*Table{e13}
}

// dynamicsCell runs one (scenario, trials) cell and returns the success rate
// and mean round count.
func dynamicsCell(sc fairgossip.Scenario, trials int) (successRate, meanRounds float64) {
	results, err := fairgossip.MustRunner(sc).Trials(context.Background(), trials)
	if err != nil {
		panic(err)
	}
	succ, rounds := 0, 0
	for _, res := range results {
		if !res.Failed {
			succ++
		}
		rounds += res.Rounds
	}
	return float64(succ) / float64(trials), float64(rounds) / float64(trials)
}
