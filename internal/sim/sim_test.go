package sim

import (
	"strings"
	"testing"
)

func TestTableAddRowAndString(t *testing.T) {
	tb := &Table{ID: "TX", Title: "test", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.AddNote("hello %d", 5)
	s := tb.String()
	for _, want := range []string{"TX", "test", "a", "bb", "333", "note: hello 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTableAddRowPanicsOnMismatch(t *testing.T) {
	tb := &Table{ID: "TX", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row accepted")
		}
	}()
	tb.AddRow("only one")
}

func TestTableCSV(t *testing.T) {
	tb := &Table{ID: "TX", Columns: []string{"a", "b"}}
	tb.AddRow("1", "x,y")
	tb.AddRow("2", `say "hi"`)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `1,"x,y"` {
		t.Fatalf("quoted comma row = %q", lines[1])
	}
	if lines[2] != `2,"say ""hi"""` {
		t.Fatalf("quoted quote row = %q", lines[2])
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %q", F(1.23456))
	}
	if Pct(0.5) != "50.0%" {
		t.Errorf("Pct = %q", Pct(0.5))
	}
	if I(42) != "42" {
		t.Errorf("I = %q", I(42))
	}
}

func TestParallelTrialsDeterministic(t *testing.T) {
	f := func(i int, seed uint64) uint64 { return seed ^ uint64(i) }
	a := ParallelTrials(100, 1, 7, f)
	b := ParallelTrials(100, 8, 7, f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs across worker counts", i)
		}
	}
	c := ParallelTrials(100, 4, 8, f)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different master seeds produced %d/100 equal trial results", same)
	}
}

func TestCountTrueAndMeans(t *testing.T) {
	if CountTrue([]bool{true, false, true}) != 2 {
		t.Fatal("CountTrue wrong")
	}
	if Means([]float64{1, 2, 3}) != 2 {
		t.Fatal("Means wrong")
	}
	if Means(nil) != 0 {
		t.Fatal("Means(nil) wrong")
	}
}
