package sim

import (
	"context"
	"fmt"
	"math"

	"repro/fairgossip"
	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/stats"
)

// FairnessOptions configures T4 (fairness) and the F2 scatter series.
type FairnessOptions struct {
	N       int
	Gamma   float64
	Trials  int
	Seed    uint64
	Workers int
	// LeaderN is the (smaller) network used for the leader-election case,
	// where the number of categories equals n.
	LeaderN      int
	LeaderTrials int
}

// DefaultFairnessOptions is the full experiment.
func DefaultFairnessOptions() FairnessOptions {
	return FairnessOptions{
		N: 512, Gamma: core.DefaultGamma, Trials: 1200, Seed: 4,
		LeaderN: 64, LeaderTrials: 3000,
	}
}

// QuickFairnessOptions is a scaled-down variant for tests.
func QuickFairnessOptions() FairnessOptions {
	return FairnessOptions{
		N: 64, Gamma: core.DefaultGamma, Trials: 250, Seed: 4,
		LeaderN: 16, LeaderTrials: 500,
	}
}

type fairnessCase struct {
	name string
	sc   fairgossip.Scenario
}

func (o FairnessOptions) cases() []fairnessCase {
	return []fairnessCase{
		{"50/50", fairgossip.Scenario{N: o.N, Colors: 2, ColorInit: fairgossip.ColorsSplit, SplitFraction: 0.5}},
		{"90/10", fairgossip.Scenario{N: o.N, Colors: 2, ColorInit: fairgossip.ColorsSplit, SplitFraction: 0.9}},
		{"uniform-8", fairgossip.Scenario{N: o.N, Colors: 8}},
	}
}

// RunT4Fairness regenerates T4 (Theorem 4 fairness: Pr[winner = c] equals
// the initial fraction supporting c) and the F2 scatter series.
func RunT4Fairness(o FairnessOptions) []*Table {
	t4 := &Table{
		ID:      "T4",
		Title:   fmt.Sprintf("Fairness at n = %d (Theorem 4): winner distribution vs initial support", o.N),
		Columns: []string{"distribution", "trials", "fails", "TV distance", "chi² p-value"},
	}
	f2 := &Table{
		ID:      "F2",
		Title:   "Figure: initial support fraction vs empirical win rate (y = x is perfect fairness)",
		Columns: []string{"case", "color", "initial fraction", "win rate"},
		Series:  true,
	}

	runCase := func(name string, sc fairgossip.Scenario, trials int, seedSalt uint64) {
		sc.Gamma = o.Gamma
		sc.Seed = ConfigSeed(o.Seed, seedSalt)
		sc.Workers = o.Workers
		r := fairgossip.MustRunner(sc)
		// The expected distribution needs the materialized color vector,
		// which the public API does not expose — go through the bridge.
		colors := bridge.ToInternal(r.Scenario()).BuildColors()
		numColors := r.Params().Colors
		results, err := r.Trials(context.Background(), trials)
		if err != nil {
			panic(err)
		}
		wins := make([]int, numColors)
		fails := 0
		for _, res := range results {
			if res.Failed {
				fails++
				continue
			}
			wins[res.Color]++
		}
		expected := make([]float64, numColors)
		for _, c := range colors {
			expected[c] += 1.0 / float64(len(colors))
		}
		gof, err := stats.ChiSquareGOF(wins, expected)
		if err != nil {
			panic(err)
		}
		tv := stats.TotalVariation(stats.Normalize(wins), expected)
		t4.AddRow(name, I(trials), I(fails), F(tv), F(gof.PValue))
		for c := 0; c < numColors; c++ {
			winRate := float64(wins[c]) / float64(trials-fails)
			f2.AddRow(name, I(c), F(expected[c]), F(winRate))
		}
	}

	for i, fc := range o.cases() {
		runCase(fc.name, fc.sc, o.Trials, uint64(i)*97)
	}
	runCase(fmt.Sprintf("leader-election (n=%d)", o.LeaderN),
		fairgossip.Scenario{N: o.LeaderN, ColorInit: fairgossip.ColorsLeader}, o.LeaderTrials, 7777)

	t4.AddNote("expected: TV near 0 and p-value not small — the winner distribution matches initial support")
	return []*Table{t4, f2}
}

// FaultOptions configures T5 (Lemma 3: good executions under worst-case
// permanent faults).
type FaultOptions struct {
	N       int
	Alphas  []float64
	Gammas  []float64
	Trials  int
	Seed    uint64
	Workers int
}

// DefaultFaultOptions is the full grid.
func DefaultFaultOptions() FaultOptions {
	return FaultOptions{
		N:      256,
		Alphas: []float64{0, 0.2, 0.4, 0.6, 0.8},
		Gammas: []float64{1, 2, 3, 4},
		Trials: 150,
		Seed:   5,
	}
}

// QuickFaultOptions is a scaled-down grid for tests.
func QuickFaultOptions() FaultOptions {
	return FaultOptions{
		N:      64,
		Alphas: []float64{0, 0.4},
		Gammas: []float64{1, 3},
		Trials: 40,
		Seed:   5,
	}
}

// RunT5Faults regenerates T5 (Lemma 3): success and good-execution rates as
// the fault fraction α and the phase-length constant γ vary.
func RunT5Faults(o FaultOptions) []*Table {
	t5 := &Table{
		ID:      "T5",
		Title:   fmt.Sprintf("Fault tolerance at n = %d (Lemma 3): success and Definition-2 rates", o.N),
		Columns: []string{"alpha", "gamma", "success", "success CI95", "good-exec", "minVotes(med)"},
	}
	for _, gamma := range o.Gammas {
		for _, alpha := range o.Alphas {
			sc := fairgossip.Scenario{
				N: o.N, Colors: 2, Gamma: gamma,
				Seed:    ConfigSeed(o.Seed, math.Float64bits(gamma), math.Float64bits(alpha)),
				Workers: o.Workers,
			}
			if alpha > 0 {
				sc.Fault = fairgossip.FaultModel{Kind: fairgossip.FaultPermanent, Alpha: alpha}
			}
			results, err := fairgossip.MustRunner(sc).Trials(context.Background(), o.Trials)
			if err != nil {
				panic(err)
			}
			okCount, goodCount := 0, 0
			var minVotes []float64
			for _, r := range results {
				if r.Success() {
					okCount++
				}
				if r.Good.Good() {
					goodCount++
				}
				minVotes = append(minVotes, float64(r.Good.MinVotes))
			}
			lo, hi := stats.WilsonCI95(okCount, o.Trials)
			t5.AddRow(F(alpha), F(gamma),
				Pct(float64(okCount)/float64(o.Trials)),
				fmt.Sprintf("[%s,%s]", Pct(lo), Pct(hi)),
				Pct(float64(goodCount)/float64(o.Trials)),
				F(stats.Summarize(minVotes).Median))
		}
	}
	t5.AddNote("Lemma 3 predicts success w.h.p. for any constant α < 1 given a large enough γ(α)")
	return []*Table{t5}
}
