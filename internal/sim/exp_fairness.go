package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// FairnessOptions configures T4 (fairness) and the F2 scatter series.
type FairnessOptions struct {
	N       int
	Gamma   float64
	Trials  int
	Seed    uint64
	Workers int
	// LeaderN is the (smaller) network used for the leader-election case,
	// where the number of categories equals n.
	LeaderN      int
	LeaderTrials int
}

// DefaultFairnessOptions is the full experiment.
func DefaultFairnessOptions() FairnessOptions {
	return FairnessOptions{
		N: 512, Gamma: core.DefaultGamma, Trials: 1200, Seed: 4,
		LeaderN: 64, LeaderTrials: 3000,
	}
}

// QuickFairnessOptions is a scaled-down variant for tests.
func QuickFairnessOptions() FairnessOptions {
	return FairnessOptions{
		N: 64, Gamma: core.DefaultGamma, Trials: 250, Seed: 4,
		LeaderN: 16, LeaderTrials: 500,
	}
}

type fairnessCase struct {
	name      string
	colors    []core.Color
	numColors int
}

func (o FairnessOptions) cases() []fairnessCase {
	return []fairnessCase{
		{"50/50", core.SplitColors(o.N, 0.5), 2},
		{"90/10", core.SplitColors(o.N, 0.9), 2},
		{"uniform-8", core.UniformColors(o.N, 8), 8},
	}
}

// RunT4Fairness regenerates T4 (Theorem 4 fairness: Pr[winner = c] equals
// the initial fraction supporting c) and the F2 scatter series.
func RunT4Fairness(o FairnessOptions) []*Table {
	t4 := &Table{
		ID:      "T4",
		Title:   fmt.Sprintf("Fairness at n = %d (Theorem 4): winner distribution vs initial support", o.N),
		Columns: []string{"distribution", "trials", "fails", "TV distance", "chi² p-value"},
	}
	f2 := &Table{
		ID:      "F2",
		Title:   "Figure: initial support fraction vs empirical win rate (y = x is perfect fairness)",
		Columns: []string{"case", "color", "initial fraction", "win rate"},
		Series:  true,
	}

	runCase := func(name string, n int, colors []core.Color, numColors, trials int, seedSalt uint64) {
		p := core.MustParams(n, numColors, o.Gamma)
		type out struct {
			failed bool
			color  core.Color
		}
		outs := ParallelTrials(trials, o.Workers, o.Seed+seedSalt, func(i int, seed uint64) out {
			res, err := core.Run(core.RunConfig{Params: p, Colors: colors, Seed: seed, Workers: 1})
			if err != nil {
				panic(err)
			}
			return out{failed: res.Outcome.Failed, color: res.Outcome.Color}
		})
		wins := make([]int, numColors)
		fails := 0
		for _, r := range outs {
			if r.failed {
				fails++
				continue
			}
			wins[r.color]++
		}
		expected := make([]float64, numColors)
		for _, c := range colors {
			expected[c] += 1.0 / float64(n)
		}
		gof, err := stats.ChiSquareGOF(wins, expected)
		if err != nil {
			panic(err)
		}
		tv := stats.TotalVariation(stats.Normalize(wins), expected)
		t4.AddRow(name, I(trials), I(fails), F(tv), F(gof.PValue))
		for c := 0; c < numColors; c++ {
			winRate := float64(wins[c]) / float64(trials-fails)
			f2.AddRow(name, I(c), F(expected[c]), F(winRate))
		}
	}

	for i, fc := range o.cases() {
		runCase(fc.name, o.N, fc.colors, fc.numColors, o.Trials, uint64(i)*97)
	}
	runCase(fmt.Sprintf("leader-election (n=%d)", o.LeaderN), o.LeaderN,
		core.LeaderElectionColors(o.LeaderN), o.LeaderN, o.LeaderTrials, 7777)

	t4.AddNote("expected: TV near 0 and p-value not small — the winner distribution matches initial support")
	return []*Table{t4, f2}
}

// FaultOptions configures T5 (Lemma 3: good executions under worst-case
// permanent faults).
type FaultOptions struct {
	N       int
	Alphas  []float64
	Gammas  []float64
	Trials  int
	Seed    uint64
	Workers int
}

// DefaultFaultOptions is the full grid.
func DefaultFaultOptions() FaultOptions {
	return FaultOptions{
		N:      256,
		Alphas: []float64{0, 0.2, 0.4, 0.6, 0.8},
		Gammas: []float64{1, 2, 3, 4},
		Trials: 150,
		Seed:   5,
	}
}

// QuickFaultOptions is a scaled-down grid for tests.
func QuickFaultOptions() FaultOptions {
	return FaultOptions{
		N:      64,
		Alphas: []float64{0, 0.4},
		Gammas: []float64{1, 3},
		Trials: 40,
		Seed:   5,
	}
}

// RunT5Faults regenerates T5 (Lemma 3): success and good-execution rates as
// the fault fraction α and the phase-length constant γ vary.
func RunT5Faults(o FaultOptions) []*Table {
	t5 := &Table{
		ID:      "T5",
		Title:   fmt.Sprintf("Fault tolerance at n = %d (Lemma 3): success and Definition-2 rates", o.N),
		Columns: []string{"alpha", "gamma", "success", "success CI95", "good-exec", "minVotes(med)"},
	}
	for _, gamma := range o.Gammas {
		for _, alpha := range o.Alphas {
			p := core.MustParams(o.N, 2, gamma)
			colors := core.UniformColors(o.N, 2)
			var faulty []bool
			if alpha > 0 {
				faulty = core.WorstCaseFaults(o.N, alpha)
			}
			type out struct {
				ok       bool
				good     bool
				minVotes int
			}
			outs := ParallelTrials(o.Trials, o.Workers,
				o.Seed+uint64(gamma*10)+uint64(alpha*1000)*13,
				func(i int, seed uint64) out {
					res, err := core.Run(core.RunConfig{
						Params: p, Colors: colors, Faulty: faulty, Seed: seed, Workers: 1,
					})
					if err != nil {
						panic(err)
					}
					return out{
						ok:       !res.Outcome.Failed,
						good:     res.Good.Good(),
						minVotes: res.Good.MinVotes,
					}
				})
			okCount, goodCount := 0, 0
			var minVotes []float64
			for _, r := range outs {
				if r.ok {
					okCount++
				}
				if r.good {
					goodCount++
				}
				minVotes = append(minVotes, float64(r.minVotes))
			}
			lo, hi := stats.WilsonCI95(okCount, o.Trials)
			t5.AddRow(F(alpha), F(gamma),
				Pct(float64(okCount)/float64(o.Trials)),
				fmt.Sprintf("[%s,%s]", Pct(lo), Pct(hi)),
				Pct(float64(goodCount)/float64(o.Trials)),
				F(stats.Summarize(minVotes).Median))
		}
	}
	t5.AddNote("Lemma 3 predicts success w.h.p. for any constant α < 1 given a large enough γ(α)")
	return []*Table{t5}
}
