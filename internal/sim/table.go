// Package sim is the experiment harness: it regenerates, as tables and CSV
// series, every empirical claim in the paper (see DESIGN.md's experiment
// index T1–T8, E9–E10), running Monte-Carlo trials in parallel across CPUs
// with per-trial deterministic seeds.
package sim

import (
	"fmt"
	"strings"
)

// Table is one experiment artifact: a titled grid with optional notes.
// Series is set for figure data meant to be consumed as CSV (plotted), as
// opposed to read as a table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	Series  bool
}

// AddRow appends a row; it panics if the cell count does not match the
// column count (tables are experiment outputs — mismatches are bugs).
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("sim: row has %d cells for %d columns in %s", len(cells), len(t.Columns), t.ID))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			sb.WriteString(cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// Pct formats a rate as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }
