package sim

import (
	"context"
	"fmt"

	"repro/fairgossip"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/stats"
)

// BaselineOptions configures T8, the side-by-side protocol comparison.
type BaselineOptions struct {
	N       int
	Gamma   float64
	Trials  int
	Seed    uint64
	Workers int
}

// DefaultBaselineOptions is the full comparison.
func DefaultBaselineOptions() BaselineOptions {
	return BaselineOptions{N: 256, Gamma: core.DefaultGamma, Trials: 300, Seed: 8}
}

// QuickBaselineOptions is a scaled-down variant for tests.
func QuickBaselineOptions() BaselineOptions {
	return BaselineOptions{N: 64, Gamma: core.DefaultGamma, Trials: 80, Seed: 8}
}

// RunT8Baselines regenerates T8: Protocol P vs the LOCAL-model election vs
// Hassin–Peleg polling on rounds, communication, fairness, and robustness to
// a single cheater.
func RunT8Baselines(o BaselineOptions) []*Table {
	t8 := &Table{
		ID:    "T8",
		Title: fmt.Sprintf("Protocol comparison at n = %d (related-work positioning, §1)", o.N),
		Columns: []string{"protocol", "rounds(mean)", "msgs(mean)", "bits(mean)",
			"fairness TV", "cheater win", "notes"},
	}
	n := o.N
	colors := core.SplitColors(n, 0.5)
	const cheater = 3 // supports color 0, fair share 50%

	type out struct {
		failed   bool
		color    core.Color
		rounds   float64
		msgs     float64
		bits     float64
		cheatWon bool
	}

	summarize := func(name string, outs []out, cheaterOuts []out, note string) {
		wins := make([]int, 2)
		fails := 0
		var rounds, msgs, bits float64
		for _, r := range outs {
			rounds += r.rounds
			msgs += r.msgs
			bits += r.bits
			if r.failed {
				fails++
				continue
			}
			wins[r.color]++
		}
		t := float64(len(outs))
		tv := stats.TotalVariation(stats.Normalize(wins), []float64{0.5, 0.5})
		cheatWins := 0
		for _, r := range cheaterOuts {
			if r.cheatWon {
				cheatWins++
			}
		}
		t8.AddRow(name, F(rounds/t), F(msgs/t), F(bits/t), F(tv),
			Pct(float64(cheatWins)/float64(len(cheaterOuts))), note)
	}

	// Protocol P, via the scenario layer.
	pRes, err := fairgossip.MustRunner(fairgossip.Scenario{
		N: n, Colors: 2, ColorInit: fairgossip.ColorsSplit, SplitFraction: 0.5,
		Gamma: o.Gamma, Seed: ConfigSeed(o.Seed, 0), Workers: o.Workers,
	}).Trials(context.Background(), o.Trials)
	if err != nil {
		panic(err)
	}
	pHonest := make([]out, len(pRes))
	for i, r := range pRes {
		pHonest[i] = out{failed: r.Failed, color: core.Color(r.Color),
			rounds: float64(r.Rounds), msgs: float64(r.Metrics.Messages), bits: float64(r.Metrics.Bits)}
	}
	pCheatRes, err := fairgossip.MustRunner(fairgossip.Scenario{
		N: n, Colors: 2, ColorInit: fairgossip.ColorsSplit, SplitFraction: 0.5,
		Gamma: o.Gamma, Coalition: 1, Deviation: "min-k-liar",
		Seed: ConfigSeed(o.Seed, 1), Workers: o.Workers,
	}).Trials(context.Background(), o.Trials)
	if err != nil {
		panic(err)
	}
	pCheat := make([]out, len(pCheatRes))
	for i, r := range pCheatRes {
		pCheat[i] = out{cheatWon: r.CoalitionColorWon && r.Success()}
	}
	summarize("Protocol P", pHonest, pCheat, "whp t-strong equilibrium; o(n²) msgs")

	// LOCAL modular-sum election (commit-reveal).
	localHonest := ParallelTrials(o.Trials, o.Workers, o.Seed+2, func(i int, seed uint64) out {
		res, err := baseline.RunLocalSum(baseline.LocalSumConfig{
			N: n, Colors: colors, Seed: seed, CommitReveal: true,
		})
		if err != nil {
			panic(err)
		}
		return out{failed: res.Outcome.Failed, color: res.Outcome.Color,
			rounds: float64(res.Rounds), msgs: float64(res.Messages), bits: float64(res.Bits)}
	})
	localCheat := ParallelTrials(o.Trials, o.Workers, o.Seed+3, func(i int, seed uint64) out {
		res, err := baseline.RunLocalSum(baseline.LocalSumConfig{
			N: n, Colors: colors, Seed: seed, CommitReveal: true, HasRusher: true, Rusher: cheater,
		})
		if err != nil {
			panic(err)
		}
		return out{cheatWon: res.Leader == cheater}
	})
	summarize("LOCAL sum (commit-reveal)", localHonest, localCheat, "fair & rush-proof but Ω(n²) msgs")

	// LOCAL modular-sum election without commitment, rushed.
	localNaiveCheat := ParallelTrials(o.Trials, o.Workers, o.Seed+4, func(i int, seed uint64) out {
		res, err := baseline.RunLocalSum(baseline.LocalSumConfig{
			N: n, Colors: colors, Seed: seed, HasRusher: true, Rusher: cheater,
		})
		if err != nil {
			panic(err)
		}
		return out{cheatWon: res.Leader == cheater}
	})
	summarize("LOCAL sum (no commitment)", localHonest, localNaiveCheat, "a rusher picks the leader at will")

	// Hassin–Peleg polling.
	pollHonest := ParallelTrials(o.Trials, o.Workers, o.Seed+5, func(i int, seed uint64) out {
		res, err := baseline.RunPolling(baseline.PollingConfig{
			N: n, NumColors: 2, Colors: colors, Seed: seed,
		})
		if err != nil {
			panic(err)
		}
		return out{failed: res.Outcome.Failed, color: res.Outcome.Color,
			rounds: float64(res.Rounds), msgs: float64(res.Metrics.Messages), bits: float64(res.Metrics.Bits)}
	})
	// Polling has no cheater model in [15]; a stubborn agent that never
	// updates its color drags the whole network to it, so report that.
	pollCheat := ParallelTrials(o.Trials, o.Workers, o.Seed+6, func(i int, seed uint64) out {
		res, err := baseline.RunPollingStubborn(baseline.PollingConfig{
			N: n, NumColors: 2, Colors: colors, Seed: seed,
		}, cheater)
		if err != nil {
			panic(err)
		}
		return out{cheatWon: !res.Outcome.Failed && res.Outcome.Color == colors[cheater]}
	})
	summarize("HP polling", pollHonest, pollCheat, "fair in expectation; Θ(n) rounds; no rational defense")

	t8.AddNote("cheater = the strongest single-agent deviation each protocol admits (min-k liar / rusher / stubborn agent)")
	return []*Table{t8}
}
