package sim

import (
	"repro/internal/par"
	"repro/internal/rng"
)

// ParallelTrials runs f for indices 0..trials-1 across workers goroutines and
// collects the results in order. Each trial receives a seed derived
// deterministically from (seed, i), so results are identical regardless of
// the worker count — the property that lets experiments be both parallel and
// reproducible.
func ParallelTrials[T any](trials, workers int, seed uint64, f func(i int, trialSeed uint64) T) []T {
	out := make([]T, trials)
	base := rng.New(seed)
	seeds := make([]uint64, trials)
	for i := range seeds {
		seeds[i] = base.Uint64()
	}
	par.ForN(workers, trials, func(i int) {
		out[i] = f(i, seeds[i])
	})
	return out
}

// ConfigSeed derives a per-configuration seed from a master seed and the
// cell's coordinates by hashing through the rng mixer, so no two sweep cells
// share trial seed streams (additive salts like seed+n+α·1e6 can collide).
func ConfigSeed(master uint64, coords ...uint64) uint64 {
	s := master
	for _, c := range coords {
		s = rng.Mix64(s, c)
	}
	return s
}

// CountTrue returns how many elements are true.
func CountTrue(xs []bool) int {
	n := 0
	for _, x := range xs {
		if x {
			n++
		}
	}
	return n
}

// Means averages a slice of float64 samples.
func Means(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
