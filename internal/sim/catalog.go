package sim

// CatalogEntry describes one experiment runner: the table/figure IDs it
// regenerates and a one-line summary. The catalog is what
// `experiments -list` prints, and what keeps the CLI's -only dispatch honest
// — a test pins that every catalog ID is runnable and every produced table
// is catalogued.
type CatalogEntry struct {
	// IDs are the artifact IDs the runner produces, in output order.
	IDs []string
	// Line is the one-line description.
	Line string
}

// Catalog lists every registered experiment in index order.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{[]string{"T0"}, "closed-form predictions of Theorem 4 (q, rounds, message size) across n"},
		{[]string{"T1", "F1"}, "empirical round count vs the O(log n) bound, with the convergence figure"},
		{[]string{"T2"}, "maximum message size vs the O(log n) bound"},
		{[]string{"T3"}, "total communication vs the O(n polylog n) bound"},
		{[]string{"T4", "F2"}, "fairness: winning-color distribution vs the uniform ideal, with the figure"},
		{[]string{"T5"}, "fault tolerance under the Lemma 3 regimes: permanent, crash, churn"},
		{[]string{"T6", "F3"}, "equilibrium: deviation payoffs vs obedience across the rational library"},
		{[]string{"T7"}, "ablation: which protocol ingredient buys which guarantee"},
		{[]string{"T8"}, "baseline comparison against simpler gossip consensus protocols"},
		{[]string{"E9"}, "open problem 1: Protocol P on sparse static topologies"},
		{[]string{"E10"}, "open problem 2: the sequential local-clock (async) adaptation"},
		{[]string{"E11"}, "coalition scaling: rational deviations as coalition size grows"},
		{[]string{"E12", "E12b"}, "dynamic graphs: edge-Markovian and rewiring churn, plus the size sweep"},
		{[]string{"E13"}, "churn at scale: the sparse engine's million-node tolerance frontier"},
		{[]string{"E14"}, "protocol variants: the loss/churn/crash tolerance frontier per variant"},
		{[]string{"E15"}, "simulator vs message-passing runtime: wall-clock convergence and per-message latency"},
		{[]string{"E16"}, "transport ladder: channel vs Unix-domain vs TCP loopback sockets"},
	}
}
