package sim

import (
	"context"
	"fmt"

	"repro/fairgossip"
	"repro/internal/baseline"
	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/rational"
)

// EquilibriumOptions configures T6 (Theorem 7) and the F3 series.
type EquilibriumOptions struct {
	N             int
	Gamma         float64
	CoalitionSize []int
	Chi           float64
	Trials        int
	Seed          uint64
	Workers       int
}

// DefaultEquilibriumOptions is the full experiment.
func DefaultEquilibriumOptions() EquilibriumOptions {
	return EquilibriumOptions{
		N: 256, Gamma: core.DefaultGamma,
		CoalitionSize: []int{1, 4, 16},
		Chi:           1,
		Trials:        200,
		Seed:          6,
	}
}

// QuickEquilibriumOptions is a scaled-down variant for tests.
func QuickEquilibriumOptions() EquilibriumOptions {
	return EquilibriumOptions{
		N: 64, Gamma: core.DefaultGamma,
		CoalitionSize: []int{1, 4},
		Chi:           1,
		Trials:        60,
		Seed:          6,
	}
}

// RunT6Equilibrium regenerates T6 (Theorem 7: whp t-strong equilibrium): for
// every deviation and coalition size, the coalition's win rate stays at its
// fair share and no member profits significantly. It also emits the F3
// series (utility gain vs t per deviation).
func RunT6Equilibrium(o EquilibriumOptions) []*Table {
	t6 := &Table{
		ID:    "T6",
		Title: fmt.Sprintf("Equilibrium at n = %d (Theorem 7): deviations never profit", o.N),
		Columns: []string{"deviation", "t", "fair share", "honest win", "dev win",
			"honest fail", "dev fail", "max gain", "min gain", "equilibrium?"},
	}
	f3 := &Table{
		ID:      "F3",
		Title:   "Figure: per-member max utility gain vs coalition size t (≤ 0 means no profit)",
		Columns: []string{"deviation", "t", "maxGain", "minGain"},
		Series:  true,
	}
	for devIdx, dev := range rational.AllDeviations() {
		for _, t := range o.CoalitionSize {
			// The paired honest-vs-deviating utility evaluation needs the
			// rational layer's full config, so T6 declares publicly and
			// derives through the bridge.
			r, err := bridge.NewRunner(fairgossip.Scenario{
				N: o.N, Colors: 2, Gamma: o.Gamma,
				Coalition: t, Deviation: dev.Name(),
				Seed:    ConfigSeed(o.Seed, uint64(devIdx), uint64(t)),
				Workers: o.Workers,
			})
			if err != nil {
				panic(err)
			}
			cfg, err := r.EquilibriumConfig(o.Trials, o.Chi)
			if err != nil {
				panic(err)
			}
			rep, err := rational.EvaluateEquilibrium(cfg)
			if err != nil {
				panic(err)
			}
			verdict := "HOLDS"
			if !rep.SomeMemberDoesNotProfit() {
				verdict = "VIOLATED"
			}
			t6.AddRow(dev.Name(), I(t), Pct(rep.FairShare),
				Pct(rep.HonestCoalitionWinRate), Pct(rep.DevCoalitionWinRate),
				Pct(rep.HonestFailRate), Pct(rep.DevFailRate),
				F(rep.MaxGain), F(rep.MinGain), verdict)
			f3.AddRow(dev.Name(), I(t), F(rep.MaxGain), F(rep.MinGain))
		}
	}
	t6.AddNote("χ = %.1f; gains are per-member mean utility differences (dev − honest) over %d paired trials", o.Chi, o.Trials)
	t6.AddNote("HOLDS = at least one coalition member shows no statistically significant gain (Definition 1)")
	return []*Table{t6, f3}
}

// AblationOptions configures T7 (why the commitment/verification machinery
// exists).
type AblationOptions struct {
	N       int
	Gamma   float64
	Trials  int
	Seed    uint64
	Workers int
}

// DefaultAblationOptions is the full experiment.
func DefaultAblationOptions() AblationOptions {
	return AblationOptions{N: 256, Gamma: core.DefaultGamma, Trials: 300, Seed: 7}
}

// QuickAblationOptions is a scaled-down variant for tests.
func QuickAblationOptions() AblationOptions {
	return AblationOptions{N: 64, Gamma: core.DefaultGamma, Trials: 80, Seed: 7}
}

// RunT7Ablation regenerates T7: the naive min-gossip protocol (no
// commitment, no verification) against Protocol P, both facing a single
// min-k liar.
func RunT7Ablation(o AblationOptions) []*Table {
	t7 := &Table{
		ID:      "T7",
		Title:   fmt.Sprintf("Ablation at n = %d: remove commitment+verification and a single liar owns the lottery", o.N),
		Columns: []string{"protocol", "adversary", "liar-color win", "fail rate"},
	}
	colors := core.UniformColors(o.N, 2)
	p := core.MustParams(o.N, 2, o.Gamma)
	const liar = 5

	// Naive protocol, honest.
	type out struct {
		failed  bool
		liarWon bool
	}
	naiveHonest := ParallelTrials(o.Trials, o.Workers, o.Seed, func(i int, seed uint64) out {
		res, err := baseline.RunNaive(baseline.NaiveConfig{Params: p, Colors: colors, Seed: seed})
		if err != nil {
			panic(err)
		}
		return out{failed: res.Outcome.Failed, liarWon: !res.Outcome.Failed && res.Outcome.Color == colors[liar]}
	})
	// Naive protocol with a liar.
	naiveLiar := ParallelTrials(o.Trials, o.Workers, o.Seed+1, func(i int, seed uint64) out {
		res, err := baseline.RunNaive(baseline.NaiveConfig{
			Params: p, Colors: colors, Seed: seed, HasLiar: true, Liar: liar,
		})
		if err != nil {
			panic(err)
		}
		return out{failed: res.Outcome.Failed, liarWon: res.LiarWon}
	})
	// Protocol P with the same kind of liar (a MinKLiar coalition of one,
	// placed by the scenario layer).
	pResults, err := fairgossip.MustRunner(fairgossip.Scenario{
		N: o.N, Colors: 2, Gamma: o.Gamma,
		Coalition: 1, Deviation: "min-k-liar",
		Seed:    ConfigSeed(o.Seed, 2),
		Workers: o.Workers,
	}).Trials(context.Background(), o.Trials)
	if err != nil {
		panic(err)
	}
	pLiar := make([]out, len(pResults))
	for i, res := range pResults {
		pLiar[i] = out{failed: res.Failed, liarWon: res.CoalitionColorWon}
	}

	row := func(name, adv string, outs []out) {
		fails, wins := 0, 0
		for _, r := range outs {
			if r.failed {
				fails++
			}
			if r.liarWon {
				wins++
			}
		}
		t := float64(len(outs))
		t7.AddRow(name, adv, Pct(float64(wins)/t), Pct(float64(fails)/t))
	}
	row("naive min-gossip", "none", naiveHonest)
	row("naive min-gossip", "1 min-k liar", naiveLiar)
	row("Protocol P", "1 min-k liar", pLiar)
	t7.AddNote("liar supports color %d, whose fair share is 50%%; naive+liar win ≈ 100%% shows the lottery is stolen", colors[liar])
	t7.AddNote("Protocol P converts the theft attempt into detection: the liar's color win rate collapses and runs fail instead")
	return []*Table{t7}
}
