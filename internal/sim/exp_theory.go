package sim

import (
	"repro/fairgossip"
	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/theory"
	"repro/internal/wire"
)

// RunT0Predictions emits T0: the protocol parameters and the paper's
// analytical predictions next to single-run measurements — a reference sheet
// for reading T1–T5. It also cross-checks the simulator's declared message
// sizes against real serialized bytes (internal/wire).
func RunT0Predictions(o PerfOptions) []*Table {
	t0 := &Table{
		ID:    "T0",
		Title: "Parameters and analytical predictions (γ = " + F(o.Gamma) + ")",
		Columns: []string{"n", "q", "rounds=4q+1", "E[votes]", "Pr[G] bound",
			"maxMsg bound(bits)", "maxMsg measured", "maxMsg wire", "msgs bound", "msgs measured"},
	}
	for _, n := range o.Sizes {
		p := core.MustParams(n, 2, o.Gamma)
		// The wire cross-check needs the agents' actual certificates, so this
		// table runs through the bridge (public scenario, internal result).
		runner, err := bridge.NewRunner(fairgossip.Scenario{
			N: n, Colors: 2, Gamma: o.Gamma, Seed: o.Seed, Workers: o.Workers,
		})
		if err != nil {
			panic(err)
		}
		res, err := runner.Run()
		if err != nil {
			panic(err)
		}
		// Serialize the largest certificate actually produced to get true
		// wire bytes.
		wireBits := 0
		for _, a := range res.Agents {
			if c := a.MinCertificate(); c != nil {
				if b := wire.EncodedBits(c); b > wireBits {
					wireBits = b
				}
			}
		}
		t0.AddRow(I(n), I(p.Q), I(theory.Rounds(p)),
			F(theory.ExpectedVotes(p, n)),
			F(theory.GoodExecutionBound(p, n)),
			I(theory.MaxMessageBits(p, n)),
			I(res.Metrics.MaxMessageBits),
			I(wireBits),
			I(theory.MessageUpperBound(p, n)),
			I(res.Metrics.Messages))
	}
	t0.AddNote("Pr[G] bound is the Lemma 3 union bound (loose); measured success rates in T5 must exceed it")
	t0.AddNote("'wire' is the exact size of the largest minimal certificate under internal/wire's varint encoding")
	return []*Table{t0}
}
