package sim

import (
	"context"
	"fmt"

	"repro/fairgossip"
	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/stats"
)

// TopologyOptions configures E9, the first open problem of Section 4:
// Protocol P on graph classes other than the complete graph.
type TopologyOptions struct {
	N       int
	Gamma   float64
	Trials  int
	Seed    uint64
	Workers int
}

// DefaultTopologyOptions is the full experiment.
func DefaultTopologyOptions() TopologyOptions {
	return TopologyOptions{N: 256, Gamma: core.DefaultGamma, Trials: 150, Seed: 9}
}

// QuickTopologyOptions is a scaled-down variant for tests.
func QuickTopologyOptions() TopologyOptions {
	return TopologyOptions{N: 64, Gamma: core.DefaultGamma, Trials: 40, Seed: 9}
}

// RunE9Topologies regenerates E9: success rate and fairness of Protocol P on
// the complete graph (its analyzed setting) versus ring, random-regular, and
// Erdős–Rényi graphs. The protocol was only proven for the complete graph;
// expanders are expected to behave well (pull gossip still converges in
// O(log n)) while the ring's Θ(n) diameter starves the Find-Min phase.
func RunE9Topologies(o TopologyOptions) []*Table {
	e9 := &Table{
		ID:      "E9",
		Title:   fmt.Sprintf("Open problem 1 at n = %d: Protocol P beyond the complete graph", o.N),
		Columns: []string{"topology", "degree", "success", "fairness TV", "trials"},
	}
	for i, name := range []string{"complete", "regular8", "er", "ring"} {
		r := fairgossip.MustRunner(fairgossip.Scenario{
			N: o.N, Colors: 2, ColorInit: fairgossip.ColorsSplit, SplitFraction: 0.5,
			Gamma: o.Gamma, Topology: name,
			Seed:    ConfigSeed(o.Seed, uint64(i)),
			Workers: o.Workers,
		})
		results, err := r.Trials(context.Background(), o.Trials)
		if err != nil {
			panic(err)
		}
		wins := make([]int, 2)
		fails := 0
		for _, res := range results {
			if res.Failed {
				fails++
				continue
			}
			wins[res.Color]++
		}
		tv := 1.0
		if fails < o.Trials {
			tv = stats.TotalVariation(stats.Normalize(wins), []float64{0.5, 0.5})
		}
		// Degree/name come from the materialized graph, which the public API
		// does not expose — rebuild it through the bridge.
		tp, err := bridge.ToInternal(r.Scenario()).BuildTopology()
		if err != nil {
			panic(err)
		}
		e9.AddRow(tp.Name(), I(tp.Degree(0)), Pct(float64(o.Trials-fails)/float64(o.Trials)), F(tv), I(o.Trials))
	}
	e9.AddNote("the paper proves P only on the complete graph; expander-like graphs retain it empirically, the ring starves Find-Min (diameter Θ(n) ≫ q rounds)")
	return []*Table{e9}
}

// AsyncOptions configures E10, the second open problem of Section 4: the
// sequential (one random agent per tick) GOSSIP model.
type AsyncOptions struct {
	Sizes   []int
	Gamma   float64
	Trials  int
	Seed    uint64
	Workers int
}

// DefaultAsyncOptions is the full experiment.
func DefaultAsyncOptions() AsyncOptions {
	return AsyncOptions{Sizes: []int{64, 128, 256}, Gamma: core.DefaultAsyncGamma, Trials: 150, Seed: 10}
}

// QuickAsyncOptions is a scaled-down variant for tests.
func QuickAsyncOptions() AsyncOptions {
	return AsyncOptions{Sizes: []int{32, 64}, Gamma: core.DefaultAsyncGamma, Trials: 50, Seed: 10}
}

// RunE10Async regenerates E10: the local-clock adaptation of Protocol P in
// the sequential GOSSIP model — success rate, fairness, and ticks consumed
// (normalized by n·(7q+1), the expected schedule length).
func RunE10Async(o AsyncOptions) []*Table {
	e10 := &Table{
		ID:      "E10",
		Title:   "Open problem 2: sequential GOSSIP (one random agent per tick), local-clock adaptation",
		Columns: []string{"n", "success", "fairness TV", "ticks(mean)", "ticks/(n·acts)"},
	}
	for _, n := range o.Sizes {
		p := core.MustParams(n, 2, o.Gamma)
		results, err := fairgossip.MustRunner(fairgossip.Scenario{
			N: n, Colors: 2, ColorInit: fairgossip.ColorsSplit, SplitFraction: 0.5,
			Gamma: o.Gamma, Scheduler: fairgossip.SchedulerAsync,
			Seed:    ConfigSeed(o.Seed, uint64(n)),
			Workers: o.Workers,
		}).Trials(context.Background(), o.Trials)
		if err != nil {
			panic(err)
		}
		wins := make([]int, 2)
		fails := 0
		ticks := 0.0
		for _, r := range results {
			ticks += float64(r.Rounds)
			if r.Failed {
				fails++
				continue
			}
			wins[r.Color]++
		}
		ticks /= float64(o.Trials)
		tv := 1.0
		if fails < o.Trials {
			tv = stats.TotalVariation(stats.Normalize(wins), []float64{0.5, 0.5})
		}
		e10.AddRow(I(n), Pct(float64(o.Trials-fails)/float64(o.Trials)), F(tv),
			F(ticks), F(ticks/float64(n*p.TotalActivations())))
	}
	e10.AddNote("adaptation: per-agent activation clocks, a 2q settle gap after Voting, 2q Find-Min activations, γ = %.0f", o.Gamma)
	e10.AddNote("failures are boundary losses from clock skew; no equilibrium claim is made in this model")
	return []*Table{e10}
}

// RunAll executes every experiment with its default options and returns all
// tables in index order. This is what cmd/experiments prints.
func RunAll(workers int) []*Table {
	var tables []*Table
	perf := DefaultPerfOptions()
	perf.Workers = workers
	tables = append(tables, RunT0Predictions(perf)...)
	tables = append(tables, RunT1Rounds(perf)...)
	tables = append(tables, RunT2MessageSize(perf)...)
	tables = append(tables, RunT3Communication(perf)...)

	fair := DefaultFairnessOptions()
	fair.Workers = workers
	tables = append(tables, RunT4Fairness(fair)...)

	faults := DefaultFaultOptions()
	faults.Workers = workers
	tables = append(tables, RunT5Faults(faults)...)

	eq := DefaultEquilibriumOptions()
	eq.Workers = workers
	tables = append(tables, RunT6Equilibrium(eq)...)

	abl := DefaultAblationOptions()
	abl.Workers = workers
	tables = append(tables, RunT7Ablation(abl)...)

	bl := DefaultBaselineOptions()
	bl.Workers = workers
	tables = append(tables, RunT8Baselines(bl)...)

	tp := DefaultTopologyOptions()
	tp.Workers = workers
	tables = append(tables, RunE9Topologies(tp)...)

	as := DefaultAsyncOptions()
	as.Workers = workers
	tables = append(tables, RunE10Async(as)...)

	sc := DefaultScalingOptions()
	sc.Workers = workers
	tables = append(tables, RunE11CoalitionScaling(sc)...)

	dy := DefaultDynamicsOptions()
	dy.Workers = workers
	tables = append(tables, RunE12Dynamics(dy)...)

	cs := DefaultChurnScaleOptions()
	cs.Workers = workers
	tables = append(tables, RunE13ChurnAtScale(cs)...)

	pv := DefaultProtocolOptions()
	pv.Workers = workers
	tables = append(tables, RunE14ProtocolVariants(pv)...)

	rt := DefaultRuntimeOptions()
	rt.Workers = workers
	tables = append(tables, RunE15Runtime(rt)...)

	tr := DefaultTransportOptions()
	tr.Workers = workers
	tables = append(tables, RunE16Transports(tr)...)
	return tables
}

// RunAllQuick executes every experiment with scaled-down options (used by
// tests and the -quick CLI flag).
func RunAllQuick(workers int) []*Table {
	var tables []*Table
	perf := QuickPerfOptions()
	perf.Workers = workers
	tables = append(tables, RunT0Predictions(perf)...)
	tables = append(tables, RunT1Rounds(perf)...)
	tables = append(tables, RunT2MessageSize(perf)...)
	tables = append(tables, RunT3Communication(perf)...)

	fair := QuickFairnessOptions()
	fair.Workers = workers
	tables = append(tables, RunT4Fairness(fair)...)

	faults := QuickFaultOptions()
	faults.Workers = workers
	tables = append(tables, RunT5Faults(faults)...)

	eq := QuickEquilibriumOptions()
	eq.Workers = workers
	tables = append(tables, RunT6Equilibrium(eq)...)

	abl := QuickAblationOptions()
	abl.Workers = workers
	tables = append(tables, RunT7Ablation(abl)...)

	bl := QuickBaselineOptions()
	bl.Workers = workers
	tables = append(tables, RunT8Baselines(bl)...)

	tp := QuickTopologyOptions()
	tp.Workers = workers
	tables = append(tables, RunE9Topologies(tp)...)

	as := QuickAsyncOptions()
	as.Workers = workers
	tables = append(tables, RunE10Async(as)...)

	sc := QuickScalingOptions()
	sc.Workers = workers
	tables = append(tables, RunE11CoalitionScaling(sc)...)

	dy := QuickDynamicsOptions()
	dy.Workers = workers
	tables = append(tables, RunE12Dynamics(dy)...)

	cs := QuickChurnScaleOptions()
	cs.Workers = workers
	tables = append(tables, RunE13ChurnAtScale(cs)...)

	pv := QuickProtocolOptions()
	pv.Workers = workers
	tables = append(tables, RunE14ProtocolVariants(pv)...)

	rt := QuickRuntimeOptions()
	rt.Workers = workers
	tables = append(tables, RunE15Runtime(rt)...)

	tr := QuickTransportOptions()
	tr.Workers = workers
	tables = append(tables, RunE16Transports(tr)...)
	return tables
}
